// AutoML job service demo: a live serving fabric stays up — answering
// tenant traffic with zero failed requests — while a resumable AutoHEnsGNN
// search job runs in the background, publishes its winning model into the
// versioned registry, and atomically rolls the fleet onto it.
//
// Default (demo) mode:
//   1. Bootstrap: a quick hierarchical job publishes version 1.
//   2. A ServingFabric serves the graph; traffic starts flowing.
//   3. A gradient-search job is submitted to the JobQueue mid-traffic; when
//      it finishes it publishes version 2, refreshes the registry, and
//      Rollout(2) flips the fleet between batches (the publish -> rollout
//      handshake). Traffic keeps flowing throughout.
//   4. The demo asserts zero failed requests and that both versions served.
//
// CI (kill/resume) modes, driven by .github/workflows jobs-smoke:
//   autohens_jobs --submit ID --store DIR [--algo hierarchical|adaptive|gradient]
//       creates the job spec in a durable JobStore and exits.
//   autohens_jobs --run ID --store DIR [--kill-after N]
//       recovers dead-worker state, then runs (or resumes) the job; with
//       --kill-after N the process SIGKILLs itself after the N-th
//       checkpoint write, exactly like a power-cut worker. The dataset is
//       rebuilt deterministically from constants, so independent processes
//       drive the same job to the same bytes.
//
// Usage:
//   autohens_jobs [--queries Q] [--seed S] [--root DIR]
//   autohens_jobs --submit ID --store DIR [--algo A] [--publish V]
//   autohens_jobs --run ID --store DIR [--kill-after N]
#include <sys/stat.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "fabric/fabric.h"
#include "fabric/loadgen.h"
#include "graph/synthetic.h"
#include "jobs/job_queue.h"
#include "jobs/search_job.h"
#include "obs/metrics.h"
#include "serve/model_registry.h"
#include "util/thread_pool.h"

namespace {

const char* FlagValue(int argc, char** argv, const char* name,
                      const char* fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return fallback;
}

bool HasFlag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

// The demo dataset is a pure function of these constants: every process
// (demo, CI submit, CI run, CI resume) sees the identical graph and split.
ahg::Graph MakeJobGraph() {
  ahg::SyntheticConfig cfg;
  cfg.num_nodes = 120;
  cfg.num_classes = 3;
  cfg.feature_dim = 8;
  cfg.avg_degree = 5.0;
  cfg.homophily = 0.85;
  cfg.feature_signal = 1.0;
  cfg.seed = 131;
  return ahg::GenerateSbmGraph(cfg);
}

ahg::DataSplit MakeJobSplit(const ahg::Graph& graph) {
  ahg::Rng rng(132);
  return ahg::RandomSplit(graph, 0.6, 0.2, &rng);
}

ahg::jobs::SearchJobSpec MakeSpec(const std::string& job_id,
                                  ahg::jobs::JobAlgo algo, int publish_version,
                                  uint64_t seed) {
  ahg::jobs::SearchJobSpec spec;
  spec.job_id = job_id;
  spec.dataset = "sbm120";
  spec.algo = algo;
  spec.candidates = {{"GCN", {}}, {"SGC", {}}, {"SAGE", {}}};
  spec.candidates[0].config.family = ahg::ModelFamily::kGcn;
  spec.candidates[1].config.family = ahg::ModelFamily::kSgc;
  spec.candidates[2].config.family = ahg::ModelFamily::kSageMean;
  for (auto& candidate : spec.candidates) {
    candidate.config.hidden_dim = 8;
    candidate.config.num_layers = 2;
    candidate.config.dropout = 0.1;
  }
  spec.pool_size = 2;
  spec.k = 1;
  spec.proxy_bagging = 1;
  spec.proxy_num_threads = 1;
  spec.train.max_epochs = 8;
  spec.train.patience = 8;
  spec.train.learning_rate = 2e-2;
  spec.gradient_max_epochs = 8;
  spec.gradient_patience = 8;
  spec.gradient_checkpoint_every = 2;
  spec.seed = seed;
  spec.publish_version = publish_version;
  return spec;
}

ahg::jobs::JobAlgo ParseAlgo(const char* name) {
  if (std::strcmp(name, "hierarchical") == 0) {
    return ahg::jobs::JobAlgo::kHierarchical;
  }
  if (std::strcmp(name, "adaptive") == 0) {
    return ahg::jobs::JobAlgo::kAdaptive;
  }
  return ahg::jobs::JobAlgo::kGradient;
}

// --submit: persist the spec and exit (the CI driver runs it separately).
int SubmitMain(int argc, char** argv) {
  const std::string job_id = FlagValue(argc, argv, "--submit", "");
  const std::string store_dir = FlagValue(argc, argv, "--store", "");
  if (job_id.empty() || store_dir.empty()) {
    std::fprintf(stderr, "--submit ID and --store DIR are required\n");
    return 2;
  }
  ahg::jobs::JobStore store(store_dir);
  const ahg::jobs::SearchJobSpec spec =
      MakeSpec(job_id, ParseAlgo(FlagValue(argc, argv, "--algo", "gradient")),
               std::atoi(FlagValue(argc, argv, "--publish", "0")),
               static_cast<uint64_t>(
                   std::atoll(FlagValue(argc, argv, "--seed", "77"))));
  ahg::Status s = store.CreateJob(spec);
  if (!s.ok()) {
    std::fprintf(stderr, "submit failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("submitted %s (algo %s) to %s\n", job_id.c_str(),
              ahg::jobs::JobAlgoName(spec.algo), store_dir.c_str());
  return 0;
}

// --run: recover + run (or resume) one attempt, optionally dying by SIGKILL
// after the N-th checkpoint write.
int RunMain(int argc, char** argv) {
  const std::string job_id = FlagValue(argc, argv, "--run", "");
  const std::string store_dir = FlagValue(argc, argv, "--store", "");
  if (job_id.empty() || store_dir.empty()) {
    std::fprintf(stderr, "--run ID and --store DIR are required\n");
    return 2;
  }
  ahg::SetNumThreads(1);  // one deterministic kernel schedule for all runs
  ahg::jobs::JobStore store(store_dir);
  auto recovered = store.RecoverInterrupted();
  if (!recovered.ok()) {
    std::fprintf(stderr, "recover failed: %s\n",
                 recovered.status().ToString().c_str());
    return 1;
  }
  for (const std::string& id : recovered.value()) {
    std::printf("recovered dead-worker job %s\n", id.c_str());
  }
  const ahg::Graph graph = MakeJobGraph();
  const ahg::DataSplit split = MakeJobSplit(graph);
  ahg::jobs::JobEnv env;
  env.graph = &graph;
  env.split = &split;
  env.kill_after_checkpoints =
      std::atoi(FlagValue(argc, argv, "--kill-after", "0"));
  ahg::jobs::SearchJob job(&store, job_id);
  auto out = job.Run(env);
  if (!out.ok()) {
    std::fprintf(stderr, "run failed: %s\n", out.status().ToString().c_str());
    return 1;
  }
  std::printf("job %s -> %s (resumed=%d, checkpoints=%d, ensemble=%s)\n",
              job_id.c_str(),
              ahg::jobs::JobStatusName(out.value().status),
              out.value().resumed ? 1 : 0, out.value().checkpoints_written,
              out.value().ensemble_dir.c_str());
  return out.value().status == ahg::jobs::JobStatus::kPublished ? 0 : 3;
}

int DemoMain(int argc, char** argv) {
  const int queries = std::atoi(FlagValue(argc, argv, "--queries", "2000"));
  const uint64_t seed = static_cast<uint64_t>(
      std::atoll(FlagValue(argc, argv, "--seed", "17")));
  const char* tmp = std::getenv("TMPDIR");
  const std::string root =
      FlagValue(argc, argv, "--root",
                (std::string(tmp ? tmp : "/tmp") + "/autohens_jobs").c_str());
  ::mkdir(root.c_str(), 0755);  // JobStore/registry create only their leaf
  const std::string store_dir = root + "/store";
  const std::string registry_dir = root + "/registry";

  const ahg::Graph graph = MakeJobGraph();
  const ahg::DataSplit split = MakeJobSplit(graph);

  // --- 1. Bootstrap: publish version 1 with a quick hierarchical job ---
  ahg::jobs::JobStore store(store_dir);
  ahg::serve::ModelRegistry registry(registry_dir);
  {
    ahg::jobs::SearchJobSpec boot = MakeSpec(
        "bootstrap-v1", ahg::jobs::JobAlgo::kHierarchical, /*publish=*/1,
        seed);
    ahg::Status s = store.CreateJob(boot);
    if (!s.ok()) {
      std::fprintf(stderr, "bootstrap submit failed: %s (stale --root?)\n",
                   s.ToString().c_str());
      return 1;
    }
    ahg::jobs::JobEnv env;
    env.graph = &graph;
    env.split = &split;
    env.registry_dir = registry_dir;
    env.registry = &registry;
    ahg::jobs::SearchJob boot_job(&store, "bootstrap-v1");
    auto out = boot_job.Run(env);
    if (!out.ok()) {
      std::fprintf(stderr, "bootstrap failed: %s\n",
                   out.status().ToString().c_str());
      return 1;
    }
    std::printf("bootstrap published v1 (val acc %.3f)\n",
                out.value().ensemble_val_accuracy);
  }

  // --- 2. Boot the serving fabric on version 1 ---
  ahg::fabric::FabricOptions options;
  options.num_shards = 2;
  options.batcher.max_batch_size = 16;
  options.batcher.deadline_ms = 0.0;
  options.batcher.max_queue_delay_ms = 1.0;
  ahg::fabric::ServingFabric fabric(options);
  if (!fabric.ServeGraph(&graph, &registry).ok() ||
      !fabric.Rollout(1).ok()) {
    std::fprintf(stderr, "fabric bootstrap failed\n");
    return 1;
  }

  // --- 3. Queue the real search; serve traffic while it runs ---
  ahg::jobs::JobEnv queue_env;
  queue_env.graph = &graph;
  queue_env.split = &split;
  queue_env.registry_dir = registry_dir;
  queue_env.registry = &registry;
  queue_env.fabric = &fabric;
  ahg::jobs::JobQueue queue(&store, queue_env);

  ahg::fabric::ZipfianSampler popularity(graph.num_nodes(), 0.99);
  ahg::Rng node_rng(seed ^ 0x90b5ULL);
  std::map<int, int> served_by_version;
  int failed = 0;
  bool submitted = false;
  for (int q = 0; q < queries; ++q) {
    if (q == queries / 4 && !submitted) {
      // The upgrade search starts here; traffic never stops.
      ahg::Status s = queue.Submit(MakeSpec(
          "search-v2", ahg::jobs::JobAlgo::kGradient, /*publish=*/2, seed));
      if (!s.ok()) {
        std::fprintf(stderr, "submit failed: %s\n", s.ToString().c_str());
        return 1;
      }
      submitted = true;
      std::printf("... submitted search-v2 at query %d\n", q);
    }
    const int node = popularity.Sample(&node_rng);
    ahg::serve::QueryResult result = fabric.Query(node).get();
    if (result.status.ok()) {
      ++served_by_version[result.served_version];
    } else {
      ++failed;
    }
  }
  queue.WaitIdle();
  auto outcome = queue.Outcome("search-v2");
  if (!outcome.ok() ||
      outcome.value().status != ahg::jobs::JobStatus::kPublished) {
    std::fprintf(stderr, "search-v2 did not publish\n");
    return 1;
  }
  std::printf("search-v2 published v%d (val acc %.3f, pool:",
              outcome.value().published_version,
              outcome.value().ensemble_val_accuracy);
  for (const std::string& name : outcome.value().pool_names) {
    std::printf(" %s", name.c_str());
  }
  std::printf(")\n");

  // --- 4. Post-rollout traffic must all land on version 2 ---
  int v2_after = 0;
  for (int q = 0; q < queries / 4; ++q) {
    const int node = popularity.Sample(&node_rng);
    ahg::serve::QueryResult result = fabric.Query(node).get();
    if (!result.status.ok()) {
      ++failed;
    } else if (result.served_version == 2) {
      ++served_by_version[2], ++v2_after;
    } else {
      ++served_by_version[result.served_version];
    }
  }
  fabric.Drain();

  std::printf("\nanswers by served version:\n");
  for (const auto& [version, count] : served_by_version) {
    std::printf("  v%-2d %d\n", version, count);
  }
  if (failed > 0) std::printf("  failed %d\n", failed);
  std::printf("jobs counters: started=%lld checkpoints=%lld published=%lld\n",
              static_cast<long long>(ahg::obs::MetricsRegistry::Global()
                                         .GetCounter("jobs.started")
                                         ->Value()),
              static_cast<long long>(ahg::obs::MetricsRegistry::Global()
                                         .GetCounter("jobs.checkpoints")
                                         ->Value()),
              static_cast<long long>(ahg::obs::MetricsRegistry::Global()
                                         .GetCounter("jobs.published")
                                         ->Value()));

  // The demo's contract: no failed requests, both versions served, and the
  // fleet finished pinned to the search job's version.
  if (failed > 0 || served_by_version[1] == 0 || served_by_version[2] == 0 ||
      v2_after != queries / 4 || fabric.pinned_version() != 2) {
    std::fprintf(stderr,
                 "FAIL: expected zero failures, both versions served, and "
                 "all post-rollout traffic on v2\n");
    return 1;
  }
  std::printf("OK: zero failed requests across the rollout\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (HasFlag(argc, argv, "--submit")) return SubmitMain(argc, argv);
  if (HasFlag(argc, argv, "--run")) return RunMain(argc, argv);
  return DemoMain(argc, argv);
}
