// Command-line runner for AutoGraph-format datasets — the shape of the
// actual competition submission: point it at a dataset directory and it
// trains AutoHEnsGNN under the directory's time budget and writes
// predictions.
//
// Usage:
//   autograph_cli --data DIR [--algo adaptive|gradient] [--pool N] [--k K]
//                 [--seed S] [--out FILE] [--nas] [--threads T]
//                 [--reorder none|rcm|hub|shuffle]
//                 [--trace-out FILE] [--metrics-out FILE]
//
// --reorder applies a locality pass (graph/reorder.h) before training: the
// graph is relabeled internally, the train/val split is projected through
// the permutation, and prediction ids are translated back so the written
// file always refers to the original node ids. graph.* gauges capture the
// before/after layout quality.
//
// --trace-out enables tracing and writes a chrome://tracing JSON timeline
// of the whole run (pipeline stages, training epochs, SpMM/GEMM kernels);
// --metrics-out writes the process metrics registry as TSV at exit.
//
// --threads T pins the kernel thread count (SpMM/GEMM row-parallelism);
// when omitted the hardware default is used. Results are bitwise identical
// for every T (fixed row partitioning, no atomic reductions).
//
// With --nas, a random-architecture-search pass (the paper's future-work
// extension) injects two proxy-ranked novel configurations into the
// candidate pool before selection. When --data is omitted a demo dataset is
// generated under /tmp first.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "core/autohens.h"
#include "core/nas_random.h"
#include "graph/reorder.h"
#include "graph/split.h"
#include "graph/statistics.h"
#include "graph/synthetic.h"
#include "io/autograph_format.h"
#include "models/model_zoo.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace {

const char* FlagValue(int argc, char** argv, const char* name,
                      const char* fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return fallback;
}

bool HasFlag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ahg;
  const std::string trace_out = FlagValue(argc, argv, "--trace-out", "");
  const std::string metrics_out = FlagValue(argc, argv, "--metrics-out", "");
  if (!trace_out.empty()) obs::TraceRecorder::Instance().Enable();
  const int threads = std::atoi(FlagValue(argc, argv, "--threads", "0"));
  if (threads > 0) SetNumThreads(threads);
  std::printf("kernel threads: %d\n", GetNumThreads());
  std::string data_dir = FlagValue(argc, argv, "--data", "");
  if (data_dir.empty()) {
    // Demo mode: publish a synthetic dataset first.
    data_dir = "/tmp/autograph_cli_demo";
    Graph truth = MakePresetGraph("A", /*seed=*/7);
    Rng rng(1);
    DataSplit official = RandomSplit(truth, 0.4, 0.0, &rng);
    Status s = WriteAutographDataset(data_dir, truth, official.train,
                                     official.test, 90.0);
    if (!s.ok()) {
      std::fprintf(stderr, "demo dataset write failed: %s\n",
                   s.ToString().c_str());
      return 1;
    }
    std::printf("no --data given; demo dataset written to %s\n",
                data_dir.c_str());
  }

  auto dataset = ReadAutographDataset(data_dir);
  if (!dataset.ok()) {
    std::fprintf(stderr, "cannot read %s: %s\n", data_dir.c_str(),
                 dataset.status().ToString().c_str());
    return 1;
  }
  const AutographDataset& ds = dataset.value();
  std::printf("dataset: %d nodes, %lld edges, %d classes, budget %.0fs\n",
              ds.graph.num_nodes(),
              static_cast<long long>(ds.graph.num_edges()),
              ds.graph.num_classes(), ds.time_budget_seconds);

  AutoHEnsConfig config;
  config.pool_size = std::atoi(FlagValue(argc, argv, "--pool", "3"));
  config.k = std::atoi(FlagValue(argc, argv, "--k", "3"));
  config.algo = std::strcmp(FlagValue(argc, argv, "--algo", "adaptive"),
                            "gradient") == 0
                    ? SearchAlgo::kGradient
                    : SearchAlgo::kAdaptive;
  config.seed = std::strtoull(FlagValue(argc, argv, "--seed", "42"), nullptr,
                              10);
  config.proxy.dataset_ratio = 0.3;
  config.proxy.bagging = 2;
  config.proxy.train.max_epochs = 25;
  config.train.max_epochs = 50;
  config.train.patience = 10;
  config.train.num_threads = threads;  // 0 = keep the global setting
  config.train.learning_rate = 2e-2;
  // Memory-plane fast path: both switches are bitwise-neutral, so they can
  // be flipped per run without changing predictions.
  config.train.pooling = HasFlag(argc, argv, "--pooling");
  config.train.fusion = HasFlag(argc, argv, "--fusion");
  config.proxy.train.pooling = config.train.pooling;
  config.proxy.train.fusion = config.train.fusion;
  config.bagging_splits = 2;
  config.time_budget_seconds = ds.time_budget_seconds;

  Rng rng(config.seed);
  DataSplit split = RandomSplit(ds.graph, 0.75, 0.25, &rng);
  split.test.clear();  // unlabeled in the competition setting

  // Optional locality pass. The split above and the prediction ids below
  // stay external; translation happens exactly once at each boundary.
  StatusOr<ReorderStrategy> strategy_or =
      ParseReorderStrategy(FlagValue(argc, argv, "--reorder", "none"));
  if (!strategy_or.ok()) {
    std::fprintf(stderr, "%s\n", strategy_or.status().ToString().c_str());
    return 1;
  }
  Graph graph = ds.graph;
  if (strategy_or.value() != ReorderStrategy::kNone) {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    const GraphStatistics before = ComputeStatistics(ds.graph);
    PublishGraphGauges(before, &reg);
    graph = ReorderGraph(ds.graph, strategy_or.value(), config.seed);
    const GraphStatistics after = ComputeStatistics(graph);
    PublishGraphGauges(after, &reg, "reordered_");
    std::printf("reorder=%s: bandwidth %lld -> %lld, mean column gap "
                "%.1f -> %.1f\n",
                ReorderStrategyName(strategy_or.value()),
                static_cast<long long>(before.bandwidth),
                static_cast<long long>(after.bandwidth),
                before.mean_column_gap, after.mean_column_gap);
    split = ProjectSplit(graph.permutation(), split);
  }

  std::vector<CandidateSpec> candidates = CompactCandidatePool();
  if (HasFlag(argc, argv, "--nas")) {
    NasSearchConfig nas;
    nas.num_samples = 8;
    nas.top_to_keep = 2;
    nas.proxy = config.proxy;
    nas.seed = config.seed ^ 0x7a5ULL;
    std::vector<CandidateSpec> novel =
        RandomArchitectureSearch(ds.graph, candidates, nas);
    std::printf("NAS injected %zu novel configs into the pool\n",
                novel.size());
    candidates.insert(candidates.end(), novel.begin(), novel.end());
  }

  auto result_or = RunAutoHEnsGnnChecked(graph, split, candidates, config);
  if (!result_or.ok()) {
    std::fprintf(stderr, "autohens failed: %s\n",
                 result_or.status().ToString().c_str());
    return 1;
  }
  const AutoHEnsResult& result = result_or.value();
  std::printf("pool:");
  for (size_t j = 0; j < result.pool_names.size(); ++j) {
    std::printf(" %s(beta=%.2f)", result.pool_names[j].c_str(),
                result.beta[j]);
  }
  std::printf("\nvalidation accuracy %.3f; stages: sel %.1fs search %.1fs "
              "retrain %.1fs (%d bagging rounds)\n",
              result.val_accuracy, result.selection_seconds,
              result.search_seconds, result.retrain_seconds,
              result.bagging_rounds_run);

  const std::string out_path =
      FlagValue(argc, argv, "--out", (data_dir + "/predictions.tsv").c_str());
  std::ofstream out(out_path);
  if (!out.is_open()) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  for (int node : ds.test_nodes) {
    out << node << "\t"
        << result.probs.ArgMaxRow(ToInternalId(graph.permutation(), node))
        << "\n";
  }
  out.flush();
  if (!out.good()) {
    std::fprintf(stderr, "short write to %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %zu predictions to %s\n", ds.test_nodes.size(),
              out_path.c_str());

  if (!trace_out.empty()) {
    Status s = obs::TraceRecorder::Instance().WriteChromeTrace(trace_out);
    if (!s.ok()) {
      std::fprintf(stderr, "trace write failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("wrote trace to %s (load via chrome://tracing)\n",
                trace_out.c_str());
  }
  if (!metrics_out.empty()) {
    Status s = obs::MetricsRegistry::Global().WriteTsv(metrics_out);
    if (!s.ok()) {
      std::fprintf(stderr, "metrics write failed: %s\n",
                   s.ToString().c_str());
      return 1;
    }
    std::printf("wrote metrics to %s\n", metrics_out.c_str());
  }
  return 0;
}
