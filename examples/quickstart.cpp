// Quickstart: run the full AutoHEnsGNN pipeline on a synthetic dataset.
//
//   1. generate a graph (stand-in for a real node-classification task)
//   2. split train/val/test
//   3. let AutoHEnsGNN select a pool, search the hierarchical ensemble's
//      configuration and produce bagged predictions
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "core/autohens.h"
#include "graph/split.h"
#include "graph/synthetic.h"
#include "models/model_zoo.h"

int main() {
  using namespace ahg;

  // A Cora-sized synthetic graph (preset "A" mirrors the statistics of the
  // first anonymous KDD Cup dataset).
  Graph graph = MakePresetGraph("A", /*seed=*/2020);
  Rng rng(1);
  DataSplit split = RandomSplit(graph, /*train_fraction=*/0.4,
                                /*val_fraction=*/0.2, &rng);
  std::printf("graph: %d nodes, %lld edges, %d classes, %d features\n",
              graph.num_nodes(), static_cast<long long>(graph.num_edges()),
              graph.num_classes(), graph.feature_dim());

  AutoHEnsConfig config;
  config.pool_size = 3;
  config.k = 3;
  config.algo = SearchAlgo::kGradient;
  config.proxy.dataset_ratio = 0.3;
  config.proxy.bagging = 2;
  config.proxy.model_ratio = 0.5;
  config.proxy.train.max_epochs = 30;
  config.proxy.train.patience = 6;
  config.train.max_epochs = 60;
  config.train.patience = 10;
  config.train.learning_rate = 2e-2;
  config.gradient.max_epochs = 30;
  config.bagging_splits = 2;
  config.seed = 7;

  // The candidate zoo: 20+ architecture variants ranked by proxy evaluation.
  std::vector<CandidateSpec> candidates = CompactCandidatePool();
  AutoHEnsResult result = RunAutoHEnsGnn(graph, split, candidates, config);

  std::printf("\nselected pool (via proxy evaluation):\n");
  for (size_t j = 0; j < result.pool_names.size(); ++j) {
    std::printf("  %-16s beta=%.3f layers=[", result.pool_names[j].c_str(),
                result.beta[j]);
    for (size_t k = 0; k < result.layers[j].size(); ++k) {
      std::printf("%s%d", k ? ", " : "", result.layers[j][k]);
    }
    std::printf("]\n");
  }
  std::printf("\nstage times: selection %.1fs, search %.1fs, retrain %.1fs\n",
              result.selection_seconds, result.search_seconds,
              result.retrain_seconds);
  std::printf("validation accuracy: %.3f\n", result.val_accuracy);
  std::printf("test accuracy:       %.3f\n", result.test_accuracy);
  return 0;
}
