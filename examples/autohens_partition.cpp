// Partitioned execution-plane demo: serving one graph from K edge-cut
// parts instead of K full replicas.
//
// Boots a ServingFabric in partitioned mode: the seeded multilevel
// partitioner cuts an SBM graph into num_shards parts, each part holds
// only its owned nodes plus a halo appendix, and one PartitionedEngine
// serves the whole graph through per-part batchers. The demo
//   1. prints the partition plan (owned/halo sizes, cut fraction, balance),
//   2. replays a seeded zipfian query mix and checks every answer bitwise
//      against a lone single-engine reference,
//   3. rolls the fleet to version 2 mid-replay (atomic pin flip),
//   4. streams a mutation batch (edge adds + feature updates) through
//      SubmitMutation/PublishStream — the delta routes through the plan
//      with per-stage halo exchange — and re-verifies bitwise against a
//      cold engine on the mutated graph.
//
// Usage:
//   autohens_partition [--shards N] [--nodes V] [--queries Q] [--seed S]
//                      [--reorder none|rcm|hub|shuffle]
//                      [--registry-root DIR]
//
// --reorder runs the locality pass before the plan is built, so every part
// CSR, feature block, and layer state lives in permuted order. Query and
// mutation ids stay external; both the partitioned engine and the lone
// reference translate at their boundaries, so the bitwise verification is
// unchanged — CI runs `--reorder rcm` as the partitioned conformance gate.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "dyn/mutation.h"
#include "dyn/snapshot.h"
#include "fabric/fabric.h"
#include "fabric/loadgen.h"
#include "graph/reorder.h"
#include "graph/synthetic.h"
#include "nn/linear.h"
#include "partition/plan.h"
#include "serve/inference_engine.h"
#include "serve/model_registry.h"
#include "util/rng.h"

namespace {

const char* FlagValue(int argc, char** argv, const char* name,
                      const char* fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return fallback;
}

ahg::Status PublishVersion(const std::string& dir, const ahg::Graph& graph,
                           int version, uint64_t seed) {
  ahg::ModelConfig cfg;
  cfg.family = version == 1 ? ahg::ModelFamily::kGcn : ahg::ModelFamily::kSgc;
  cfg.in_dim = graph.feature_dim();
  cfg.hidden_dim = 16;
  cfg.num_layers = 2;
  cfg.seed = seed;
  std::unique_ptr<ahg::GnnModel> zoo = ahg::BuildModel(cfg);
  ahg::Rng head_rng(seed ^ 0x5ca1ab1eULL);
  ahg::Linear head(zoo->params(), cfg.hidden_dim, graph.num_classes(),
                   /*bias=*/true, &head_rng);
  return ahg::serve::ModelRegistry::Publish(
      dir, version, cfg, zoo->params()->Snapshot(), graph.num_classes());
}

// Bitwise check of `count` zipfian-sampled answers against reference rows.
int VerifyReplay(ahg::fabric::ServingFabric* fabric, const ahg::Matrix& ref1,
                 const ahg::Matrix* ref2, int count, ahg::Rng* rng,
                 ahg::fabric::ZipfianSampler* popularity, int* mismatches) {
  int flipped_at = -1;
  for (int q = 0; q < count; ++q) {
    if (ref2 != nullptr && q == count / 2) {
      if (!fabric->Rollout(2).ok()) return -2;
      flipped_at = q;
    }
    const int node = popularity->Sample(rng);
    const ahg::serve::QueryResult result = fabric->Query(node).get();
    if (!result.status.ok()) {
      ++*mismatches;
      continue;
    }
    const ahg::Matrix& ref = result.served_version == 2 && ref2 ? *ref2 : ref1;
    if (std::memcmp(result.probs.data(), ref.Row(node),
                    result.probs.size() * sizeof(double)) != 0) {
      ++*mismatches;
    }
  }
  fabric->Drain();
  return flipped_at;
}

int Main(int argc, char** argv) {
  const int shards = std::atoi(FlagValue(argc, argv, "--shards", "4"));
  const int nodes = std::atoi(FlagValue(argc, argv, "--nodes", "3000"));
  const int queries = std::atoi(FlagValue(argc, argv, "--queries", "2000"));
  const uint64_t seed = static_cast<uint64_t>(
      std::atoll(FlagValue(argc, argv, "--seed", "17")));
  const char* tmp = std::getenv("TMPDIR");
  const std::string root = FlagValue(
      argc, argv, "--registry-root",
      (std::string(tmp ? tmp : "/tmp") + "/autohens_partition").c_str());

  ahg::SyntheticConfig cfg;
  cfg.num_nodes = nodes;
  cfg.num_classes = 4;
  cfg.feature_dim = 16;
  cfg.avg_degree = 5.0;
  cfg.seed = seed;
  ahg::Graph graph = ahg::GenerateSbmGraph(cfg);

  ahg::StatusOr<ahg::ReorderStrategy> strategy_or =
      ahg::ParseReorderStrategy(FlagValue(argc, argv, "--reorder", "none"));
  if (!strategy_or.ok()) {
    std::fprintf(stderr, "%s\n", strategy_or.status().ToString().c_str());
    return 1;
  }
  if (strategy_or.value() != ahg::ReorderStrategy::kNone) {
    graph = ahg::ReorderGraph(graph, strategy_or.value(), seed);
    std::printf("reorder=%s applied before partitioning\n",
                ahg::ReorderStrategyName(strategy_or.value()));
  }

  std::filesystem::remove_all(root);
  for (int version : {1, 2}) {
    ahg::Status published =
        PublishVersion(root, graph, version, seed + 10 + version);
    if (!published.ok()) {
      std::fprintf(stderr, "publish v%d failed: %s\n", version,
                   published.ToString().c_str());
      return 1;
    }
  }
  ahg::serve::ModelRegistry registry(root);
  if (!registry.Refresh().ok()) {
    std::fprintf(stderr, "registry load failed\n");
    return 1;
  }

  ahg::fabric::FabricOptions options;
  options.num_shards = shards;
  options.batcher.max_batch_size = 16;
  options.batcher.deadline_ms = 0.0;
  options.batcher.max_queue_delay_ms = 2.0;
  ahg::fabric::ServingFabric fabric(options);
  ahg::Status served = fabric.ServePartitioned(&graph, &registry);
  if (!served.ok()) {
    std::fprintf(stderr, "ServePartitioned: %s\n", served.ToString().c_str());
    return 1;
  }
  if (!fabric.Rollout(1).ok()) {
    std::fprintf(stderr, "initial rollout failed\n");
    return 1;
  }

  const ahg::partition::PartitionPlan& plan =
      fabric.partitioned_engine()->plan();
  std::printf("partition plan: %d nodes -> %d parts, cut %.1f%%, "
              "balance %.3f\n",
              graph.num_nodes(), plan.num_parts,
              100.0 * plan.metrics.edge_cut_fraction,
              plan.metrics.balance_factor);
  for (int p = 0; p < plan.num_parts; ++p) {
    std::printf("  part %d: %5d owned + %5d halo\n", p,
                plan.parts[p].num_owned(), plan.parts[p].num_halo());
  }

  // Single-engine reference rows for both published versions.
  ahg::serve::InferenceEngine reference(&graph, ahg::serve::EngineOptions{});
  auto ref1 = reference.PredictAll(*registry.Version(1));
  auto ref2 = reference.PredictAll(*registry.Version(2));
  if (!ref1.ok() || !ref2.ok()) {
    std::fprintf(stderr, "reference forward failed\n");
    return 1;
  }

  ahg::Rng node_rng(seed ^ 0xfab51c);
  ahg::fabric::ZipfianSampler popularity(graph.num_nodes(), 0.99);
  int mismatches = 0;
  const int flipped_at = VerifyReplay(&fabric, ref1.value(), &ref2.value(),
                                      queries, &node_rng, &popularity,
                                      &mismatches);
  if (flipped_at == -2) {
    std::fprintf(stderr, "rollout failed\n");
    return 1;
  }
  std::printf("\nreplayed %d queries (rolled to v2 at query %d): "
              "%d bitwise mismatches\n",
              queries, flipped_at, mismatches);

  // Stream a mutation batch through the plan and re-verify against a cold
  // engine on the mutated graph.
  std::vector<double> feat(static_cast<size_t>(graph.feature_dim()), 0.25);
  std::vector<ahg::dyn::Mutation> batch = {
      ahg::dyn::Mutation::AddEdge(1, graph.num_nodes() / 2),
      ahg::dyn::Mutation::AddEdge(2, graph.num_nodes() - 1),
      ahg::dyn::Mutation::UpdateFeatures(0, feat),
      ahg::dyn::Mutation::UpdateFeatures(graph.num_nodes() / 3, feat),
  };
  for (const ahg::dyn::Mutation& m : batch) {
    auto seq = fabric.SubmitMutation(ahg::fabric::kDefaultTenant, m);
    if (!seq.ok()) {
      std::fprintf(stderr, "submit: %s\n", seq.status().ToString().c_str());
      return 1;
    }
  }
  ahg::Status published = fabric.PublishStream(ahg::fabric::kDefaultTenant);
  if (!published.ok()) {
    std::fprintf(stderr, "publish stream: %s\n",
                 published.ToString().c_str());
    return 1;
  }
  std::printf("streamed %zu mutations through the plan (snapshot v%llu, "
              "%lld halo rows exchanged so far)\n",
              batch.size(),
              static_cast<unsigned long long>(
                  fabric.partitioned_engine()->snapshot_version()),
              static_cast<long long>(
                  fabric.partitioned_engine()->rows_exchanged()));

  auto snap = ahg::dyn::GraphSnapshot::FromGraph(graph);
  if (!snap.ok()) return 1;
  auto next = snap.value().Apply(batch);
  if (!next.ok()) return 1;
  ahg::Graph mutated = next.value().first.MaterializeGraph();
  ahg::serve::InferenceEngine cold(&mutated, ahg::serve::EngineOptions{});
  auto mref = cold.PredictAll(*registry.Version(2));
  if (!mref.ok()) return 1;
  int post_mismatches = 0;
  VerifyReplay(&fabric, mref.value(), nullptr, queries / 2, &node_rng,
               &popularity, &post_mismatches);
  std::printf("replayed %d post-mutation queries: %d bitwise mismatches\n",
              queries / 2, post_mismatches);

  if (mismatches + post_mismatches > 0) {
    std::fprintf(stderr, "FAIL: partitioned answers diverged\n");
    return 1;
  }
  std::printf("\nall answers bitwise identical to the single-engine "
              "reference\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Main(argc, argv); }
