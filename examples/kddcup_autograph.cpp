// End-to-end simulation of the KDD Cup 2020 AutoGraph challenge protocol:
//
//   1. a "competition server" writes a dataset directory in the AutoGraph
//      on-disk format (Table X of the paper): edge/feature/label files plus
//      a config.yml carrying the time budget — test labels withheld;
//   2. the "participant" (this binary) reads the directory, runs
//      AutoHEnsGNN_Adaptive under the time budget (the variant the winning
//      team submitted, Section IV-E), and writes predictions.tsv;
//   3. the "server" scores the predictions against the held-back labels.
//
// Run: ./build/examples/kddcup_autograph [dataset_dir]
#include <cstdio>
#include <fstream>

#include "core/autohens.h"
#include "graph/split.h"
#include "graph/synthetic.h"
#include "io/autograph_format.h"
#include "models/model_zoo.h"

int main(int argc, char** argv) {
  using namespace ahg;
  const std::string dir =
      argc > 1 ? argv[1] : "/tmp/autograph_dataset_demo";

  // --- competition server side: publish the dataset ---------------------
  Graph truth = MakePresetGraph("B", /*seed=*/2020);
  Rng rng(11);
  DataSplit official = RandomSplit(truth, /*train=*/0.4, /*val=*/0.0, &rng);
  Status write_status = WriteAutographDataset(
      dir, truth, official.train, official.test, /*time_budget=*/120.0);
  if (!write_status.ok()) {
    std::fprintf(stderr, "write failed: %s\n",
                 write_status.ToString().c_str());
    return 1;
  }
  std::printf("dataset published to %s (test labels withheld)\n",
              dir.c_str());

  // --- participant side: no access to test labels -----------------------
  auto dataset = ReadAutographDataset(dir);
  if (!dataset.ok()) {
    std::fprintf(stderr, "read failed: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }
  const AutographDataset& ds = dataset.value();
  std::printf("loaded: %d nodes, %lld edges, budget %.0fs\n",
              ds.graph.num_nodes(),
              static_cast<long long>(ds.graph.num_edges()),
              ds.time_budget_seconds);

  // Carve a validation set out of the observed training nodes.
  Rng part_rng(5);
  DataSplit split = RandomSplit(ds.graph, /*train=*/0.75, /*val=*/0.25,
                                &part_rng);
  split.test.clear();  // the participant has no labeled test set

  AutoHEnsConfig config;
  config.pool_size = 3;
  config.k = 3;
  config.algo = SearchAlgo::kAdaptive;  // the submitted memory-safe variant
  config.proxy.dataset_ratio = 0.3;
  config.proxy.bagging = 2;
  config.proxy.train.max_epochs = 25;
  config.proxy.train.patience = 6;
  config.train.max_epochs = 50;
  config.train.patience = 10;
  config.train.learning_rate = 2e-2;
  config.bagging_splits = 2;
  config.time_budget_seconds = ds.time_budget_seconds;
  config.seed = 42;
  AutoHEnsResult result =
      RunAutoHEnsGnn(ds.graph, split, CompactCandidatePool(), config);

  // Write predictions for the official test nodes.
  const std::string pred_path = dir + "/predictions.tsv";
  {
    std::ofstream out(pred_path);
    for (int node : ds.test_nodes) {
      out << node << "\t" << result.probs.ArgMaxRow(node) << "\n";
    }
  }
  std::printf("pool: ");
  for (const auto& name : result.pool_names) std::printf("%s ", name.c_str());
  std::printf("\nwrote %s (validation accuracy %.3f)\n", pred_path.c_str(),
              result.val_accuracy);

  // --- server side again: score against withheld labels -----------------
  int correct = 0, total = 0;
  std::ifstream preds(pred_path);
  int node = 0, pred = 0;
  while (preds >> node >> pred) {
    ++total;
    correct += truth.labels()[node] == pred;
  }
  std::printf("server-side test accuracy: %.3f (%d/%d)\n",
              static_cast<double>(correct) / total, correct, total);
  return 0;
}
