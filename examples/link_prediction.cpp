// Link prediction with a hierarchical ensemble (the Table VIII setting):
// two encoder architectures (N = 2), each a graph self-ensemble of K = 3
// differently-seeded members, scores averaged within an architecture and
// weighted by validation AUC across architectures.
//
// Run: ./build/examples/link_prediction
#include <cstdio>
#include <vector>

#include "core/search_adaptive.h"
#include "graph/split.h"
#include "graph/synthetic.h"
#include "metrics/metrics.h"
#include "tasks/train_link.h"

int main() {
  using namespace ahg;
  Graph graph = MakePresetGraph("cora-syn", /*seed=*/31);
  Rng rng(3);
  LinkSplit split = MakeLinkSplit(graph, /*val=*/0.05, /*test=*/0.10, &rng);
  std::printf("link split: %zu train / %zu val / %zu test positive edges\n",
              split.train_pos.size(), split.val_pos.size(),
              split.test_pos.size());

  TrainConfig tcfg;
  tcfg.max_epochs = 60;
  tcfg.patience = 10;
  tcfg.learning_rate = 1e-2;

  const std::vector<int> val_labels =
      LinkLabels(static_cast<int>(split.val_pos.size()),
                 static_cast<int>(split.val_neg.size()));
  const std::vector<int> test_labels =
      LinkLabels(static_cast<int>(split.test_pos.size()),
                 static_cast<int>(split.test_neg.size()));

  // N = 2 encoder families, K = 3 seeds each.
  std::vector<ModelFamily> families{ModelFamily::kGcn, ModelFamily::kSgc};
  std::vector<std::vector<double>> per_family_val, per_family_test;
  std::vector<double> family_val_auc;
  for (size_t f = 0; f < families.size(); ++f) {
    std::vector<double> val_sum, test_sum;
    for (int k = 0; k < 3; ++k) {
      ModelConfig mcfg;
      mcfg.family = families[f];
      mcfg.hidden_dim = 24;
      mcfg.num_layers = 2;
      mcfg.dropout = 0.1;
      mcfg.seed = 100 * (f + 1) + k;
      TrainConfig run = tcfg;
      run.seed = mcfg.seed + 1;
      LinkTrainResult r = TrainLinkModel(mcfg, split, run);
      std::printf("  family %zu member %d: val AUC %.3f\n", f, k, r.val_auc);
      if (val_sum.empty()) {
        val_sum = r.val_scores;
        test_sum = r.test_scores;
      } else {
        for (size_t i = 0; i < val_sum.size(); ++i)
          val_sum[i] += r.val_scores[i];
        for (size_t i = 0; i < test_sum.size(); ++i)
          test_sum[i] += r.test_scores[i];
      }
    }
    for (auto& v : val_sum) v /= 3.0;
    for (auto& v : test_sum) v /= 3.0;
    family_val_auc.push_back(RocAuc(val_sum, val_labels));
    per_family_val.push_back(std::move(val_sum));
    per_family_test.push_back(std::move(test_sum));
    std::printf("family %zu GSE: val AUC %.3f\n", f, family_val_auc.back());
  }

  // Adaptive beta (Eqn 8) from per-family validation AUC.
  std::vector<double> beta = AdaptiveBeta(family_val_auc,
                                          graph.AverageDegree(),
                                          /*epsilon=*/3, /*gamma=*/8000,
                                          /*lambda=*/5);
  std::vector<double> combined(per_family_test[0].size(), 0.0);
  for (size_t f = 0; f < families.size(); ++f) {
    for (size_t i = 0; i < combined.size(); ++i) {
      combined[i] += beta[f] * per_family_test[f][i];
    }
  }
  std::printf("\nensemble weights: beta = [%.3f, %.3f]\n", beta[0], beta[1]);
  std::printf("hierarchical ensemble test AUC: %.3f\n",
              RocAuc(combined, test_labels));
  return 0;
}
