// Dynamic-graph streaming demo: the serving path under live mutations.
//
// Builds a synthetic SBM graph, stands up a StreamingServer (snapshot v0 +
// cold propagation for an untrained GCN), then replays a randomized stream
// of unweighted mutations — edge inserts/deletes, feature updates, node
// adds — in batches. Each ApplyPending() folds one batch into a new
// copy-on-write GraphSnapshot version and patches the cached hidden states
// incrementally over the k-hop dirty rows; queries keep serving across
// every version swap.
//
// At the end the stream's final predictions are checked against a
// from-scratch rebuild: MaterializeGraph() + a fresh InferenceEngine that
// recomputes propagation cold. The dynamic subsystem guarantees bitwise
// equality, so the comparison is exact (memcmp), not a tolerance test.
// With --assert-match a mismatch (or any rejected batch) exits non-zero —
// the CI dyn-smoke contract.
//
// Usage:
//   autohens_stream [--nodes N] [--mutations M] [--batch B] [--seed S]
//                   [--reorder none|rcm|hub|shuffle]
//                   [--assert-match] [--metrics-out FILE]
//
// --reorder runs the locality pass on the base graph before the server is
// created AND re-runs it whenever a DeltaCsr compaction fires mid-stream
// (compaction is the re-reorder point: overlays fold into fresh bases, the
// cached layer states are row-gathered with zero FLOPs). The final memcmp
// against the cold rebuild holds either way — that is the conformance gate
// CI runs with `--reorder rcm --assert-match`.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "dyn/mutation.h"
#include "dyn/snapshot.h"
#include "dyn/stream_server.h"
#include "graph/reorder.h"
#include "graph/synthetic.h"
#include "nn/linear.h"
#include "obs/metrics.h"
#include "serve/inference_engine.h"
#include "serve/model_registry.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace {

const char* FlagValue(int argc, char** argv, const char* name,
                      const char* fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return fallback;
}

bool HasFlag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

// A random valid mutation against the server's current snapshot.
// Unweighted (weight 1.0) so degree arithmetic stays integral and the
// final cross-path comparison against the rebuilt Graph is bitwise exact.
ahg::dyn::Mutation RandomMutation(const ahg::dyn::GraphSnapshot& snap,
                                  ahg::Rng* rng) {
  using ahg::dyn::Mutation;
  const int n = snap.num_nodes();
  while (true) {
    const int kind = static_cast<int>(rng->UniformInt(10));
    if (kind < 4) {  // add edge
      const int u = static_cast<int>(rng->UniformInt(n));
      const int v = static_cast<int>(rng->UniformInt(n));
      if (u == v || snap.HasEdge(u, v)) continue;
      return Mutation::AddEdge(u, v);
    }
    if (kind < 7) {  // remove a random existing edge
      // Mutations speak external ids; the raw adjacency lives in the
      // snapshot's (possibly locality-reordered) internal order, so the
      // row lookup and the sampled column both cross the boundary once.
      const int u = static_cast<int>(rng->UniformInt(n));
      const ahg::dyn::DeltaCsr::RowRef row =
          snap.raw_adjacency().Row(snap.ToInternal(u));
      if (row.nnz == 0) continue;
      const int v = snap.ToExternal(row.cols[rng->UniformInt(row.nnz)]);
      return Mutation::RemoveEdge(u, v);
    }
    if (kind < 9) {  // feature update
      const int u = static_cast<int>(rng->UniformInt(n));
      std::vector<double> f(snap.feature_dim());
      for (double& x : f) x = rng->Normal();
      return Mutation::UpdateFeatures(u, std::move(f));
    }
    std::vector<double> f(snap.feature_dim());  // add node
    for (double& x : f) x = rng->Normal();
    return Mutation::AddNode(
        std::move(f),
        static_cast<int>(rng->UniformInt(snap.num_classes())));
  }
}

bool BitwiseEqual(const ahg::Matrix& a, const ahg::Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (int r = 0; r < a.rows(); ++r) {
    if (std::memcmp(a.Row(r), b.Row(r),
                    static_cast<size_t>(a.cols()) * sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ahg;
  using namespace ahg::dyn;

  // Defaults keep batches inside the incremental regime: an edge mutation
  // dirties both endpoints plus every renormalized neighbor row, and the
  // propagator expands that seed one hop per layer, so ~10 scattered
  // mutations reach a few thousand of 12000 rows — under the 50 %
  // full-refresh fallback threshold.
  const int num_nodes = std::atoi(FlagValue(argc, argv, "--nodes", "12000"));
  const int num_mutations =
      std::atoi(FlagValue(argc, argv, "--mutations", "1000"));
  const int batch = std::atoi(FlagValue(argc, argv, "--batch", "10"));
  const uint64_t seed =
      static_cast<uint64_t>(std::atoll(FlagValue(argc, argv, "--seed", "29")));
  const bool assert_match = HasFlag(argc, argv, "--assert-match");
  const bool pooling = HasFlag(argc, argv, "--pooling");
  const std::string metrics_out = FlagValue(argc, argv, "--metrics-out", "");

  SyntheticConfig cfg;
  cfg.name = "streaming";
  cfg.num_nodes = num_nodes;
  cfg.num_classes = 5;
  cfg.feature_dim = 16;
  cfg.avg_degree = 5.0;
  cfg.seed = seed;
  Graph graph = GenerateSbmGraph(cfg);
  std::printf("base graph: %d nodes, %lld edges\n", graph.num_nodes(),
              static_cast<long long>(graph.num_edges()));

  StatusOr<ReorderStrategy> strategy_or =
      ParseReorderStrategy(FlagValue(argc, argv, "--reorder", "none"));
  if (!strategy_or.ok()) {
    std::fprintf(stderr, "%s\n", strategy_or.status().ToString().c_str());
    return 1;
  }
  const ReorderStrategy reorder = strategy_or.value();
  if (reorder != ReorderStrategy::kNone) {
    graph = ReorderGraph(graph, reorder, seed);
    std::printf("reorder=%s applied to the base graph; compaction re-runs "
                "it mid-stream\n",
                ReorderStrategyName(reorder));
  }

  // Untrained GCN in ServableModel layout (zoo weights, head W, head b);
  // the demo exercises the serving plumbing, not accuracy.
  serve::ServableModel model;
  model.version = 1;
  model.num_classes = graph.num_classes();
  model.config.family = ModelFamily::kGcn;
  model.config.in_dim = graph.feature_dim();
  model.config.hidden_dim = 32;
  model.config.num_layers = 2;
  model.config.seed = seed ^ 0xabcdULL;
  std::unique_ptr<GnnModel> zoo = BuildModel(model.config);
  Rng head_rng(model.config.seed ^ 0x5ca1ab1eULL);
  Linear head(zoo->params(), model.config.hidden_dim, model.num_classes,
              /*bias=*/true, &head_rng);
  model.params = zoo->params()->Snapshot();

  StreamOptions stream_options;
  stream_options.refresh.pooling = pooling;
  stream_options.reorder = reorder;
  stream_options.reorder_seed = seed;
  auto server_or = StreamingServer::Create(graph, model, stream_options);
  if (!server_or.ok()) {
    std::fprintf(stderr, "server create failed: %s\n",
                 server_or.status().ToString().c_str());
    return 1;
  }
  StreamingServer& server = *server_or.value();

  Rng rng(seed ^ 0x57ea3ULL);
  Stopwatch replay;
  int64_t incremental = 0, full = 0, rows_refreshed = 0, rejected = 0;
  int submitted = 0;
  while (submitted < num_mutations) {
    const int take = std::min(batch, num_mutations - submitted);
    for (int i = 0; i < take; ++i) {
      server.Submit(RandomMutation(*server.snapshot(), &rng));
    }
    submitted += take;
    auto stats = server.ApplyPending();
    if (!stats.ok()) {
      std::fprintf(stderr, "batch rejected: %s\n",
                   stats.status().ToString().c_str());
      ++rejected;
      continue;
    }
    stats.value().incremental ? ++incremental : ++full;
    rows_refreshed += stats.value().rows_refreshed;
    // A query in the middle of the stream: serving never blocks on apply.
    auto probs = server.PredictNodes({0, 1, 2});
    if (!probs.ok()) {
      std::fprintf(stderr, "mid-stream predict failed: %s\n",
                   probs.status().ToString().c_str());
      return 1;
    }
  }
  const double replay_s = replay.ElapsedSeconds();

  std::shared_ptr<const GraphSnapshot> final_snap = server.snapshot();
  std::printf(
      "replayed %d mutations in %d batches (%.3fs): v%llu, %d nodes, "
      "%lld edges\n",
      submitted, static_cast<int>(incremental + full + rejected), replay_s,
      static_cast<unsigned long long>(server.version()),
      final_snap->num_nodes(),
      static_cast<long long>(final_snap->num_edges()));
  std::printf(
      "refreshes: %lld incremental, %lld full, %lld rows patched, "
      "%lld rejected batches\n",
      static_cast<long long>(incremental), static_cast<long long>(full),
      static_cast<long long>(rows_refreshed),
      static_cast<long long>(rejected));

  // From-scratch oracle: rebuild the final graph and recompute propagation
  // cold on a fresh static engine. The stream's incrementally patched
  // predictions must agree bitwise.
  Stopwatch rebuild_watch;
  Graph rebuilt = final_snap->MaterializeGraph();
  serve::InferenceEngine engine(&rebuilt, serve::EngineOptions{});
  std::vector<int> nodes;
  for (int i = 0; i < rebuilt.num_nodes(); ++i) nodes.push_back(i);
  auto streamed = server.PredictNodes(nodes);
  auto statically = engine.PredictNodes(model, nodes);
  if (!streamed.ok() || !statically.ok()) {
    std::fprintf(stderr, "final predictions failed: %s / %s\n",
                 streamed.status().ToString().c_str(),
                 statically.status().ToString().c_str());
    return 1;
  }
  const bool match = BitwiseEqual(streamed.value(), statically.value());
  std::printf("from-scratch rebuild check (%.3fs): %s\n",
              rebuild_watch.ElapsedSeconds(),
              match ? "bitwise match over all nodes" : "MISMATCH");

  if (!metrics_out.empty()) {
    if (Status s = obs::MetricsRegistry::Global().WriteTsv(metrics_out);
        !s.ok()) {
      std::fprintf(stderr, "metrics write failed: %s\n",
                   s.ToString().c_str());
      return 1;
    }
    std::printf("metrics written to %s\n", metrics_out.c_str());
  }

  if (assert_match && (!match || rejected > 0)) {
    std::fprintf(stderr,
                 "FAIL: match=%d rejected_batches=%lld under --assert-match\n",
                 match ? 1 : 0, static_cast<long long>(rejected));
    return 1;
  }
  return 0;
}
