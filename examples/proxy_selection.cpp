// Demonstrates proxy evaluation (Section III-B): rank the full candidate
// zoo cheaply on a sampled subgraph with a shrunken model, compare the
// ranking against the expensive "accurate" evaluation, and report the
// Kendall rank correlation and speedup — the Figure 3 quantities.
//
// Run: ./build/examples/proxy_selection
#include <cstdio>
#include <vector>

#include "core/proxy_eval.h"
#include "graph/synthetic.h"
#include "metrics/kendall.h"
#include "models/model_zoo.h"

int main() {
  using namespace ahg;
  Graph graph = MakePresetGraph("A", /*seed=*/5);
  std::vector<CandidateSpec> pool = DefaultCandidatePool();
  std::printf("ranking %zu candidates on dataset A analog...\n", pool.size());

  TrainConfig train;
  train.max_epochs = 30;
  train.patience = 6;
  train.learning_rate = 2e-2;

  ProxyConfig accurate;
  accurate.dataset_ratio = 1.0;
  accurate.bagging = 3;
  accurate.model_ratio = 1.0;
  accurate.train = train;
  ProxyEvalResult accurate_result =
      ProxyEvaluate(pool, graph, accurate, /*seed=*/1);

  ProxyConfig proxy;
  proxy.dataset_ratio = 0.3;  // D_proxy
  proxy.bagging = 3;          // B_proxy
  proxy.model_ratio = 0.5;    // M_proxy
  proxy.train = train;
  ProxyEvalResult proxy_result = ProxyEvaluate(pool, graph, proxy, /*seed=*/1);

  // Align scores by candidate name for the rank correlation.
  std::vector<double> accurate_scores, proxy_scores;
  for (const CandidateSpec& spec : pool) {
    for (const auto& s : accurate_result.ranked) {
      if (s.name == spec.name) accurate_scores.push_back(s.mean_val_accuracy);
    }
    for (const auto& s : proxy_result.ranked) {
      if (s.name == spec.name) proxy_scores.push_back(s.mean_val_accuracy);
    }
  }

  std::printf("\n%-18s %10s %10s\n", "candidate", "accurate", "proxy");
  for (size_t i = 0; i < pool.size(); ++i) {
    std::printf("%-18s %10.3f %10.3f\n", pool[i].name.c_str(),
                accurate_scores[i], proxy_scores[i]);
  }
  std::printf("\ntop-3 by proxy evaluation: ");
  for (int i = 0; i < 3; ++i) {
    std::printf("%s ", proxy_result.ranked[i].name.c_str());
  }
  std::printf("\nKendall tau (proxy vs accurate): %.3f\n",
              KendallTau(proxy_scores, accurate_scores));
  std::printf("speedup: %.1fx (%.1fs -> %.1fs)\n",
              accurate_result.total_seconds / proxy_result.total_seconds,
              accurate_result.total_seconds, proxy_result.total_seconds);
  return 0;
}
