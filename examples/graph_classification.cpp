// Graph classification with a hierarchical ensemble (the Table IX setting)
// on a PROTEINS-like synthetic set: N = 2 architectures x K = 3 seeds,
// probabilities averaged within an architecture and weighted by validation
// accuracy across architectures.
//
// Run: ./build/examples/graph_classification
#include <cstdio>
#include <vector>

#include "core/search_adaptive.h"
#include "ensemble/baselines.h"
#include "graph/graph_set.h"
#include "metrics/metrics.h"
#include "tasks/train_graph.h"

int main() {
  using namespace ahg;
  ProteinsLikeConfig pcfg;
  pcfg.num_graphs = 240;
  pcfg.seed = 9;
  GraphSet set = GenerateProteinsLike(pcfg);
  Rng rng(4);
  GraphSetSplit split = RandomGraphSetSplit(set, 0.6, 0.2, &rng);
  std::printf("set: %zu graphs (%zu train / %zu val / %zu test)\n",
              set.graphs.size(), split.train.size(), split.val.size(),
              split.test.size());

  TrainConfig tcfg;
  tcfg.max_epochs = 50;
  tcfg.patience = 10;
  tcfg.learning_rate = 1e-2;

  std::vector<ModelFamily> families{ModelFamily::kGin, ModelFamily::kGcn};
  std::vector<Matrix> family_probs;
  std::vector<double> family_val_acc;
  double avg_degree = 0.0;
  for (const Graph& g : set.graphs) avg_degree += g.AverageDegree();
  avg_degree /= static_cast<double>(set.graphs.size());

  for (size_t f = 0; f < families.size(); ++f) {
    std::vector<Matrix> member_probs;
    for (int k = 0; k < 3; ++k) {
      ModelConfig mcfg;
      mcfg.family = families[f];
      mcfg.hidden_dim = 16;
      mcfg.num_layers = 3;
      mcfg.dropout = 0.2;
      mcfg.seed = 50 * (f + 1) + k;
      TrainConfig run = tcfg;
      run.seed = mcfg.seed ^ 0xc0ffeeULL;
      GraphTrainResult r = TrainGraphClassifier(mcfg, set, split, run);
      std::printf("  family %zu member %d: val acc %.3f\n", f, k,
                  r.val_accuracy);
      member_probs.push_back(std::move(r.probs));
    }
    Matrix gse = AverageProbs(member_probs);
    family_val_acc.push_back(Accuracy(gse, set.labels, split.val));
    std::printf("family %zu GSE: val acc %.3f\n", f, family_val_acc.back());
    family_probs.push_back(std::move(gse));
  }

  std::vector<double> beta = AdaptiveBeta(family_val_acc, avg_degree,
                                          /*epsilon=*/3, /*gamma=*/8000,
                                          /*lambda=*/5);
  Matrix combined = WeightedProbs(family_probs, beta);
  std::printf("\nensemble weights: beta = [%.3f, %.3f]\n", beta[0], beta[1]);
  std::printf("hierarchical ensemble test accuracy: %.3f\n",
              Accuracy(combined, set.labels, split.test));
  return 0;
}
