// Sharded multi-tenant serving-fabric demo: the fleet deployment shape.
//
// Boots a ServingFabric with N engine shards, pins three tenants of mixed
// sizes ("retail", "ads", "social") onto the consistent-hash ring — each
// tenant brings its own SBM graph and its own versioned model registry —
// then replays a seeded zipfian query mix from the deterministic traffic
// simulator. Halfway through the replay every registry Refresh()es to
// version 2 and a single Rollout(2) flips the whole fleet atomically: each
// answer carries the version that served it, so the tail of the replay
// demonstrates the no-torn-reads rollout. Per-shard ServeStats tables and
// the fabric.* counters are printed at the end.
//
// Usage:
//   autohens_fabric [--shards N] [--queries Q] [--seed S]
//                   [--registry-root DIR] [--metrics-out FILE]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fabric/fabric.h"
#include "fabric/loadgen.h"
#include "graph/synthetic.h"
#include "nn/linear.h"
#include "obs/metrics.h"
#include "serve/inference_engine.h"
#include "serve/model_registry.h"
#include "serve/serve_stats.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace {

const char* FlagValue(int argc, char** argv, const char* name,
                      const char* fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return fallback;
}

struct Tenant {
  std::string name;
  ahg::Graph graph;
  std::unique_ptr<ahg::serve::ModelRegistry> registry;
  std::string dir;
};

ahg::Graph MakeGraph(int num_nodes, uint64_t seed) {
  ahg::SyntheticConfig cfg;
  cfg.num_nodes = num_nodes;
  cfg.num_classes = 4;
  cfg.feature_dim = 16;
  cfg.avg_degree = 5.0;
  cfg.seed = seed;
  return ahg::GenerateSbmGraph(cfg);
}

// Publishes an (untrained) snapshot of the zoo + head as `version`.
ahg::Status PublishVersion(const std::string& dir, const ahg::Graph& graph,
                           int version, uint64_t seed) {
  ahg::ModelConfig cfg;
  cfg.family = ahg::ModelFamily::kGcn;
  cfg.in_dim = graph.feature_dim();
  cfg.hidden_dim = 16;
  cfg.num_layers = 2;
  cfg.seed = seed;
  std::unique_ptr<ahg::GnnModel> zoo = ahg::BuildModel(cfg);
  ahg::Rng head_rng(seed ^ 0x5ca1ab1eULL);
  ahg::Linear head(zoo->params(), cfg.hidden_dim, graph.num_classes(),
                   /*bias=*/true, &head_rng);
  return ahg::serve::ModelRegistry::Publish(
      dir, version, cfg, zoo->params()->Snapshot(), graph.num_classes());
}

int Main(int argc, char** argv) {
  const int shards = std::atoi(FlagValue(argc, argv, "--shards", "3"));
  const int queries = std::atoi(FlagValue(argc, argv, "--queries", "3000"));
  const uint64_t seed = static_cast<uint64_t>(
      std::atoll(FlagValue(argc, argv, "--seed", "17")));
  const char* tmp = std::getenv("TMPDIR");
  const std::string root = FlagValue(
      argc, argv, "--registry-root",
      (std::string(tmp ? tmp : "/tmp") + "/autohens_fabric").c_str());
  const std::string metrics_out =
      FlagValue(argc, argv, "--metrics-out", "");

  // Mixed tenant sizes: the weights below also drive the traffic mix.
  std::vector<Tenant> tenants;
  tenants.push_back({"retail", MakeGraph(600, seed + 1), nullptr, ""});
  tenants.push_back({"ads", MakeGraph(300, seed + 2), nullptr, ""});
  tenants.push_back({"social", MakeGraph(900, seed + 3), nullptr, ""});
  std::error_code ec;
  std::filesystem::create_directories(root, ec);  // Publish creates one level
  for (Tenant& tenant : tenants) {
    tenant.dir = root + "/" + tenant.name;
    std::filesystem::remove_all(tenant.dir);
    for (int version : {1, 2}) {
      ahg::Status published = PublishVersion(
          tenant.dir, tenant.graph, version, seed + 10 + version);
      if (!published.ok()) {
        std::fprintf(stderr, "publish v%d failed for %s: %s\n", version,
                     tenant.name.c_str(), published.ToString().c_str());
        return 1;
      }
    }
    tenant.registry =
        std::make_unique<ahg::serve::ModelRegistry>(tenant.dir);
    if (!tenant.registry->Refresh().ok()) {
      std::fprintf(stderr, "registry load failed for %s\n",
                   tenant.name.c_str());
      return 1;
    }
  }

  ahg::fabric::FabricOptions options;
  options.num_shards = shards;
  options.batcher.max_batch_size = 16;
  options.batcher.deadline_ms = 0.0;
  options.batcher.max_queue_delay_ms = 2.0;
  options.router_queue_limit = 1024;
  ahg::fabric::ServingFabric fabric(options);
  for (Tenant& tenant : tenants) {
    ahg::Status added =
        fabric.AddTenant(tenant.name, &tenant.graph, tenant.registry.get());
    if (!added.ok()) {
      std::fprintf(stderr, "AddTenant %s: %s\n", tenant.name.c_str(),
                   added.ToString().c_str());
      return 1;
    }
    std::printf("tenant %-7s -> shard %d (%d nodes)\n", tenant.name.c_str(),
                fabric.ShardOfTenant(tenant.name),
                tenant.graph.num_nodes());
  }
  // Serve version 1 first; version 2 is already published and loaded, so
  // the mid-replay flip below is a pure pin change.
  if (!fabric.Rollout(1).ok()) {
    std::fprintf(stderr, "initial rollout failed\n");
    return 1;
  }

  // Seeded zipfian tenant/node mix from the traffic simulator.
  ahg::fabric::TrafficOptions traffic;
  traffic.seed = seed;
  traffic.num_nodes = 1;  // node drawn per tenant below
  traffic.tenant_weights = {2.0, 1.0, 3.0};  // retail : ads : social
  traffic.closed_loop_clients = 1;
  ahg::fabric::TrafficSimulator sim(traffic);
  std::vector<ahg::fabric::ZipfianSampler> popularity;
  popularity.reserve(tenants.size());
  for (const Tenant& tenant : tenants) {
    popularity.emplace_back(tenant.graph.num_nodes(), 0.99);
  }

  ahg::Rng node_rng(seed ^ 0xfab51c);
  std::map<int, int> served_by_version;
  int failed = 0;
  for (int q = 0; q < queries; ++q) {
    if (q == queries / 2) {
      // Fleet-wide atomic flip: after this call returns, no answer is ever
      // served by version 1 again — and no batch mixes the two.
      ahg::Status rolled = fabric.Rollout(2);
      if (!rolled.ok()) {
        std::fprintf(stderr, "rollout failed: %s\n",
                     rolled.ToString().c_str());
        return 1;
      }
      std::printf("... rolled fleet to version 2 at query %d\n", q);
    }
    const ahg::fabric::Arrival arrival = sim.NextQuery(0);
    const size_t t = static_cast<size_t>(arrival.tenant);
    const int node = popularity[t].Sample(&node_rng);
    ahg::serve::QueryResult result =
        fabric.QueryTenant(tenants[t].name, node).get();
    if (result.status.ok()) {
      ++served_by_version[result.served_version];
    } else {
      ++failed;
    }
  }
  fabric.Drain();

  std::printf("\nanswers by served version:\n");
  for (const auto& [version, count] : served_by_version) {
    std::printf("  v%-2d %d\n", version, count);
  }
  if (failed > 0) std::printf("  failed %d\n", failed);

  for (int s = 0; s < fabric.num_shards(); ++s) {
    std::printf("\n--- shard %d (%d tenants) ---\n%s", s,
                fabric.shard(s).num_tenants(),
                ahg::serve::FormatStatsTable(
                    fabric.shard(s).stats().Snapshot())
                    .c_str());
  }
  std::printf("\nfabric counters: routed=%lld shed=%lld rollouts=%lld\n",
              static_cast<long long>(ahg::obs::MetricsRegistry::Global()
                                         .GetCounter("fabric.routed")
                                         ->Value()),
              static_cast<long long>(ahg::obs::MetricsRegistry::Global()
                                         .GetCounter("fabric.shed")
                                         ->Value()),
              static_cast<long long>(ahg::obs::MetricsRegistry::Global()
                                         .GetCounter("fabric.rollouts")
                                         ->Value()));

  if (!metrics_out.empty()) {
    ahg::Status wrote =
        ahg::obs::MetricsRegistry::Global().WriteTsv(metrics_out);
    if (!wrote.ok()) {
      std::fprintf(stderr, "failed to write %s: %s\n", metrics_out.c_str(),
                   wrote.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", metrics_out.c_str());
  }

  // The demo's own sanity contract: both versions served, no failures.
  if (failed > 0 || served_by_version[1] == 0 || served_by_version[2] == 0) {
    std::fprintf(stderr, "FAIL: expected answers from both versions and no "
                         "failed queries\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Main(argc, argv); }
