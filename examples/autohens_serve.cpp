// Inference-serving demo: the deployment shape of this repo. Bootstraps a
// versioned model registry (training two GCN generations on a synthetic
// SBM graph when the registry is empty), then replays a synthetic query
// trace through the batched serving stack — ModelRegistry (hot-swap under
// an RW lock) -> RequestBatcher (micro-batches, deadlines, admission
// control) -> InferenceEngine (frozen forward + PropagationCache) — and
// prints the ServeStats table. Halfway through the trace the registry is
// Refresh()ed so the second half is served by the newest version, the
// production hot-swap motion.
//
// Usage:
//   autohens_serve [--registry DIR] [--nodes N] [--queries Q] [--batch B]
//                  [--serve-threads T] [--deadline-ms D] [--queue-limit L]
//                  [--max-queue-delay-ms M] [--seed S]
//                  [--reorder none|rcm|hub|shuffle]
//                  [--assert-no-violations] [--trace-out FILE]
//                  [--metrics-out FILE] [--report-interval-s R]
//
// --reorder relabels the serving graph with a locality pass before the
// engine is built; query node ids stay external (the engine translates at
// its boundary) and graph.* gauges record the layout before/after.
//
// --assert-no-violations exits non-zero when any request misses its
// deadline or is rejected — the CI smoke contract.
//
// Observability: --trace-out enables tracing and writes a chrome://tracing
// JSON timeline (queue waits, batch execution, cache hits/misses, SpMM);
// --metrics-out dumps the process metrics registry as TSV at exit;
// --report-interval-s R prints a one-line metrics summary every R seconds
// while the trace replays (0 disables; default 1).
#include <cstdio>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "graph/reorder.h"
#include "graph/split.h"
#include "graph/statistics.h"
#include "graph/synthetic.h"
#include "nn/linear.h"
#include "nn/optimizer.h"
#include "autodiff/ops.h"
#include "serve/inference_engine.h"
#include "serve/model_registry.h"
#include "serve/propagation_cache.h"
#include "obs/metrics.h"
#include "obs/reporter.h"
#include "obs/trace.h"
#include "serve/request_batcher.h"
#include "serve/serve_stats.h"
#include "tensor/alloc_tracker.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace {

const char* FlagValue(int argc, char** argv, const char* name,
                      const char* fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return fallback;
}

bool HasFlag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

// Trains a GCN + classifier head for a few epochs and returns the weight
// snapshot in ServableModel layout (zoo weights, head W, head b).
std::vector<ahg::Matrix> TrainGeneration(const ahg::Graph& graph,
                                         const ahg::DataSplit& split,
                                         ahg::ModelConfig* config,
                                         uint64_t seed) {
  using namespace ahg;
  config->family = ModelFamily::kGcn;
  config->in_dim = graph.feature_dim();
  config->hidden_dim = 32;
  config->num_layers = 2;
  config->seed = seed;
  std::unique_ptr<GnnModel> model = BuildModel(*config);
  Rng head_rng(config->seed ^ 0x5ca1ab1eULL);
  Linear head(model->params(), config->hidden_dim, graph.num_classes(),
              /*bias=*/true, &head_rng);
  Adam optimizer(model->params()->params(), AdamConfig{});
  Rng dropout_rng(seed ^ 0x2badULL);
  Var features = MakeConstant(graph.features());
  for (int epoch = 0; epoch < 20; ++epoch) {
    model->params()->ZeroGrad();
    GnnContext ctx{&graph, /*training=*/true, &dropout_rng};
    Var logits = head.Apply(model->LayerOutputs(ctx, features).back());
    Backward(MaskedCrossEntropy(logits, graph.labels(), split.train));
    optimizer.Step();
  }
  return model->params()->Snapshot();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ahg;
  using namespace ahg::serve;

  const std::string registry_dir =
      FlagValue(argc, argv, "--registry", "/tmp/autohens_serve_registry");
  const int num_nodes = std::atoi(FlagValue(argc, argv, "--nodes", "4000"));
  const int num_queries =
      std::atoi(FlagValue(argc, argv, "--queries", "2000"));
  const int batch = std::atoi(FlagValue(argc, argv, "--batch", "32"));
  const int serve_threads =
      std::atoi(FlagValue(argc, argv, "--serve-threads", "2"));
  const double deadline_ms =
      std::atof(FlagValue(argc, argv, "--deadline-ms", "30000"));
  const int queue_limit =
      std::atoi(FlagValue(argc, argv, "--queue-limit", "100000"));
  const uint64_t seed =
      static_cast<uint64_t>(std::atoll(FlagValue(argc, argv, "--seed", "17")));
  const bool assert_no_violations =
      HasFlag(argc, argv, "--assert-no-violations");
  const double max_queue_delay_ms =
      std::atof(FlagValue(argc, argv, "--max-queue-delay-ms", "10"));
  const bool pooling = HasFlag(argc, argv, "--pooling");
  const std::string trace_out = FlagValue(argc, argv, "--trace-out", "");
  const std::string metrics_out = FlagValue(argc, argv, "--metrics-out", "");
  const double report_interval_s =
      std::atof(FlagValue(argc, argv, "--report-interval-s", "1"));
  if (!trace_out.empty()) obs::TraceRecorder::Instance().Enable();

  // The serving graph (stands in for the production graph snapshot).
  SyntheticConfig graph_cfg;
  graph_cfg.name = "serving";
  graph_cfg.num_nodes = num_nodes;
  graph_cfg.num_classes = 5;
  graph_cfg.feature_dim = 32;
  graph_cfg.avg_degree = 6.0;
  graph_cfg.seed = seed;
  Graph graph = GenerateSbmGraph(graph_cfg);
  std::printf("serving graph: %d nodes, %lld edges, %d classes\n",
              graph.num_nodes(), static_cast<long long>(graph.num_edges()),
              graph.num_classes());

  // Optional locality pass: everything downstream (training, engine, trace
  // replay) runs on the reordered graph; query ids remain external and the
  // engine translates them at its boundary.
  StatusOr<ReorderStrategy> strategy_or =
      ParseReorderStrategy(FlagValue(argc, argv, "--reorder", "none"));
  if (!strategy_or.ok()) {
    std::fprintf(stderr, "%s\n", strategy_or.status().ToString().c_str());
    return 1;
  }
  if (strategy_or.value() != ReorderStrategy::kNone) {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    const GraphStatistics before = ComputeStatistics(graph);
    PublishGraphGauges(before, &reg);
    graph = ReorderGraph(graph, strategy_or.value(), seed);
    const GraphStatistics after = ComputeStatistics(graph);
    PublishGraphGauges(after, &reg, "reordered_");
    std::printf("reorder=%s: bandwidth %lld -> %lld, mean column gap "
                "%.1f -> %.1f\n",
                ReorderStrategyName(strategy_or.value()),
                static_cast<long long>(before.bandwidth),
                static_cast<long long>(after.bandwidth),
                before.mean_column_gap, after.mean_column_gap);
  }

  Rng split_rng(seed);
  DataSplit split = RandomSplit(graph, 0.6, 0.2, &split_rng);

  // Bootstrap the registry with one generation when it has no manifest; the
  // second generation is trained and published mid-trace so every run
  // exercises a real hot swap.
  {
    ModelRegistry probe(registry_dir);
    Status s = probe.Refresh();
    if (s.code() == Status::Code::kNotFound) {
      std::printf("bootstrapping registry in %s\n", registry_dir.c_str());
      ModelConfig config;
      Stopwatch train_watch;
      std::vector<Matrix> params =
          TrainGeneration(graph, split, &config, seed + 1);
      Status pub = ModelRegistry::Publish(registry_dir, 1, config, params,
                                          graph.num_classes());
      if (!pub.ok()) {
        std::fprintf(stderr, "publish failed: %s\n", pub.ToString().c_str());
        return 1;
      }
      std::printf("published v1 (trained %.1fs)\n",
                  train_watch.ElapsedSeconds());
    } else if (!s.ok()) {
      std::fprintf(stderr, "registry refresh failed: %s\n",
                   s.ToString().c_str());
      return 1;
    }
  }

  ModelRegistry registry(registry_dir);
  if (Status s = registry.Refresh(); !s.ok()) {
    std::fprintf(stderr, "registry refresh failed: %s\n", s.ToString().c_str());
    return 1;
  }
  if (Status s = registry.ValidateCompatibility(graph); !s.ok()) {
    std::fprintf(stderr, "registry/graph mismatch: %s\n",
                 s.ToString().c_str());
    return 1;
  }
  std::printf("registry: %zu versions, active v%d\n",
              registry.Versions().size(), registry.active_version());

  ServeStats stats;
  EngineOptions engine_options;
  engine_options.pooling = pooling;
  engine_options.fusion = pooling;  // both bitwise-neutral; one switch here
  InferenceEngine engine(&graph, engine_options, &stats);
  if (Status s = engine.Warm(*registry.Active()); !s.ok()) {
    std::fprintf(stderr, "cache warm failed: %s\n", s.ToString().c_str());
    return 1;
  }

  BatcherOptions options;
  options.max_batch_size = batch;
  options.queue_limit = queue_limit;
  options.deadline_ms = deadline_ms;
  options.num_threads = serve_threads;
  options.max_queue_delay_ms = max_queue_delay_ms;
  RequestBatcher batcher(&engine, &registry, options, &stats);

  // Periodic one-line health report while the trace replays, driven off the
  // shared stats block; stops (dtor) before the final table prints.
  auto reporter = std::make_unique<obs::PeriodicReporter>(
      report_interval_s, [&stats] {
        ServeStatsSnapshot s = stats.Snapshot();
        std::printf("[report] completed=%lld qps=%.0f p50=%.2fms p99=%.2fms "
                    "cache_hit=%lld/%lld batches=%lld\n",
                    static_cast<long long>(s.completed), s.qps,
                    s.p50_latency_ms, s.p99_latency_ms,
                    static_cast<long long>(s.cache_hits),
                    static_cast<long long>(s.cache_hits + s.cache_misses),
                    static_cast<long long>(s.batches));
      });

  // Synthetic query trace: uniform-random nodes; halfway through, a new
  // generation is published and hot-swapped in while serving continues.
  Rng trace_rng(seed ^ 0xfeedULL);
  std::vector<std::future<QueryResult>> futures;
  futures.reserve(num_queries);
  Stopwatch replay;
  for (int q = 0; q < num_queries; ++q) {
    if (q == num_queries / 2) {
      const int next_version = registry.active_version() + 1;
      ModelConfig config;
      std::vector<Matrix> params =
          TrainGeneration(graph, split, &config, seed + next_version);
      if (Status s = ModelRegistry::Publish(registry_dir, next_version,
                                            config, params,
                                            graph.num_classes());
          !s.ok()) {
        std::fprintf(stderr, "mid-trace publish failed: %s\n",
                     s.ToString().c_str());
        return 1;
      }
      batcher.Drain();  // let in-flight batches finish on the old version
      if (Status s = registry.Refresh(); !s.ok()) {
        std::fprintf(stderr, "mid-trace refresh failed: %s\n",
                     s.ToString().c_str());
        return 1;
      }
      std::printf("hot-swapped to v%d at query %d\n",
                  registry.active_version(), q);
    }
    futures.push_back(
        batcher.Enqueue(static_cast<int>(trace_rng.UniformInt(num_nodes))));
  }
  batcher.Drain();
  reporter.reset();  // stop reporting before the summary prints
  const double replay_seconds = replay.ElapsedSeconds();

  int64_t answered = 0;
  for (auto& future : futures) {
    if (future.get().status.ok()) ++answered;
  }
  std::printf("replayed %d queries in %.3fs (%lld answered)\n\n", num_queries,
              replay_seconds, static_cast<long long>(answered));

  ServeStatsSnapshot snap = stats.Snapshot();
  std::printf("%s", FormatStatsTable(snap).c_str());
  std::printf("  alloc_tracker_bytes   %lld (peak %lld)\n",
              static_cast<long long>(AllocTracker::CurrentBytes()),
              static_cast<long long>(AllocTracker::PeakBytes()));
  std::printf("  cache_entries         %lld\n",
              static_cast<long long>(engine.cache().num_entries()));

  if (!trace_out.empty()) {
    if (Status s = obs::TraceRecorder::Instance().WriteChromeTrace(trace_out);
        !s.ok()) {
      std::fprintf(stderr, "trace write failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("  trace                 %s\n", trace_out.c_str());
  }
  if (!metrics_out.empty()) {
    if (Status s = obs::MetricsRegistry::Global().WriteTsv(metrics_out);
        !s.ok()) {
      std::fprintf(stderr, "metrics write failed: %s\n",
                   s.ToString().c_str());
      return 1;
    }
    std::printf("  metrics               %s\n", metrics_out.c_str());
  }

  if (assert_no_violations &&
      (snap.deadline_violations > 0 || snap.rejected > 0 ||
       snap.failed > 0)) {
    std::fprintf(stderr,
                 "FAIL: %lld deadline violations, %lld rejected, %lld "
                 "failed\n",
                 static_cast<long long>(snap.deadline_violations),
                 static_cast<long long>(snap.rejected),
                 static_cast<long long>(snap.failed));
    return 1;
  }
  return 0;
}
