// Search-job bench: the cost of durability. Two questions, one JSON
// artifact:
//
//   checkpoint overhead   the same gradient-search job is run to completion
//                         at several checkpoint intervals; the widest
//                         interval is the near-zero-overhead baseline, and
//                         each run reports wall clock, checkpoints written,
//                         final checkpoint bytes, and the amortized ms per
//                         checkpoint relative to that baseline
//   resume wall-clock     a worker is forked and SIGKILLed after its K-th
//                         checkpoint (K sweeps early/mid/late stages), then
//                         the job is recovered and resumed to publication;
//                         the resume attempt's wall clock shows how much of
//                         the run a checkpoint actually buys back. Every
//                         resumed ensemble is byte-compared against an
//                         uninterrupted twin — any mismatch fails the bench
//                         so CI gates on resume determinism.
//
// Usage: search_jobs [--fast] [--json-out FILE] [--trace-out F]
//                    [--metrics-out F]
#include <dirent.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/bench_util.h"
#include "graph/synthetic.h"
#include "jobs/job_store.h"
#include "jobs/search_job.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace ahg::jobs {
namespace {

struct IntervalReport {
  int interval = 0;
  double wall_ms = 0.0;
  int checkpoints = 0;
  int64_t checkpoint_bytes = 0;  // final on-disk snapshot size
  double overhead_ms_per_ckpt = 0.0;  // vs the widest-interval baseline
};

struct ResumeReport {
  int kill_after = 0;      // checkpoints survived before SIGKILL
  double full_ms = 0.0;    // uninterrupted twin wall clock
  double resume_ms = 0.0;  // recover + resume attempt to published
  bool bitwise_identical = false;
};

Graph BenchGraph(bool fast) {
  SyntheticConfig cfg;
  cfg.num_nodes = fast ? 90 : 240;
  cfg.num_classes = 3;
  cfg.feature_dim = 8;
  cfg.avg_degree = 5.0;
  cfg.homophily = 0.85;
  cfg.seed = 211;
  return GenerateSbmGraph(cfg);
}

SearchJobSpec BenchSpec(const std::string& job_id, bool fast, int interval) {
  SearchJobSpec spec;
  spec.job_id = job_id;
  spec.dataset = "bench_sbm";
  spec.algo = JobAlgo::kGradient;
  spec.candidates = {{"GCN", {}}, {"SGC", {}}, {"SAGE", {}}};
  spec.candidates[0].config.family = ModelFamily::kGcn;
  spec.candidates[1].config.family = ModelFamily::kSgc;
  spec.candidates[2].config.family = ModelFamily::kSageMean;
  for (auto& candidate : spec.candidates) {
    candidate.config.hidden_dim = 8;
    candidate.config.num_layers = 2;
    candidate.config.dropout = 0.1;
  }
  spec.pool_size = 2;
  spec.k = 1;
  spec.proxy_bagging = 1;
  spec.proxy_num_threads = 1;
  spec.train.max_epochs = fast ? 8 : 20;
  spec.train.patience = spec.train.max_epochs;
  spec.train.learning_rate = 2e-2;
  spec.gradient_max_epochs = fast ? 8 : 20;
  spec.gradient_patience = spec.gradient_max_epochs;
  spec.gradient_checkpoint_every = interval;
  spec.seed = 77;
  return spec;
}

int64_t FileBytes(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 ? static_cast<int64_t>(st.st_size)
                                        : 0;
}

std::vector<std::string> ListDirFiles(const std::string& dir) {
  std::vector<std::string> names;
  if (DIR* d = ::opendir(dir.c_str())) {
    while (dirent* e = ::readdir(d)) {
      if (e->d_name[0] != '.') names.emplace_back(e->d_name);
    }
    ::closedir(d);
  }
  std::sort(names.begin(), names.end());
  return names;
}

std::string ReadBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

bool DirsIdentical(const std::string& a, const std::string& b) {
  const auto fa = ListDirFiles(a);
  if (fa != ListDirFiles(b) || fa.empty()) return false;
  for (const std::string& name : fa) {
    if (ReadBytes(a + "/" + name) != ReadBytes(b + "/" + name)) return false;
  }
  return true;
}

std::string FreshRoot(const std::string& tag) {
  const char* tmp = std::getenv("TMPDIR");
  const std::string root = std::string(tmp ? tmp : "/tmp") +
                           "/search_jobs_bench_" + tag + "_" +
                           std::to_string(::getpid());
  std::string cmd = "rm -rf " + root;
  if (std::system(cmd.c_str()) != 0) std::exit(2);
  ::mkdir(root.c_str(), 0755);
  return root;
}

// Runs `job_id` (already created in `store`) to publication in-process.
SearchJobOutcome RunToPublished(JobStore* store, const std::string& job_id,
                                const Graph& graph, const DataSplit& split) {
  JobEnv env;
  env.graph = &graph;
  env.split = &split;
  SearchJob job(store, job_id);
  auto out = job.Run(env);
  if (!out.ok() || out.value().status != JobStatus::kPublished) {
    std::fprintf(stderr, "job %s did not publish\n", job_id.c_str());
    std::exit(2);
  }
  return out.value();
}

// Forks a worker that dies by SIGKILL after `kill_after` checkpoint writes.
void ForkAndKill(const std::string& store_dir, const std::string& job_id,
                 const Graph& graph, const DataSplit& split, int kill_after) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    SetNumThreads(1);
    JobStore store(store_dir);
    JobEnv env;
    env.graph = &graph;
    env.split = &split;
    env.kill_after_checkpoints = kill_after;
    SearchJob job(&store, job_id);
    auto out = job.Run(env);
    ::_exit(out.ok() ? 0 : 17);
  }
  int wstatus = 0;
  ::waitpid(pid, &wstatus, 0);
  if (!WIFSIGNALED(wstatus) || WTERMSIG(wstatus) != SIGKILL) {
    std::fprintf(stderr, "worker survived a kill_after=%d run\n", kill_after);
    std::exit(2);
  }
}

std::string JsonReport(bool fast, const Graph& graph,
                       const std::vector<IntervalReport>& intervals,
                       const std::vector<ResumeReport>& resumes,
                       bool all_identical) {
  std::string json = "{\n";
  json += "  \"bench\": \"search_jobs\",\n";
  json += "  \"schema_version\": 1,\n";
  json += StrFormat(
      "  \"config\": {\"num_nodes\": %d, \"num_classes\": %d, "
      "\"algo\": \"gradient\", \"fast\": %s, \"seed\": 77},\n",
      graph.num_nodes(), graph.num_classes(), fast ? "true" : "false");
  json += "  \"checkpoint_overhead\": [\n";
  for (size_t i = 0; i < intervals.size(); ++i) {
    const IntervalReport& run = intervals[i];
    json += StrFormat(
        "    {\"interval\": %d, \"wall_ms\": %.2f, \"checkpoints\": %d, "
        "\"checkpoint_bytes\": %lld, \"overhead_ms_per_checkpoint\": %.3f}%s\n",
        run.interval, run.wall_ms, run.checkpoints,
        static_cast<long long>(run.checkpoint_bytes), run.overhead_ms_per_ckpt,
        i + 1 < intervals.size() ? "," : "");
  }
  json += "  ],\n";
  json += "  \"resume\": [\n";
  for (size_t i = 0; i < resumes.size(); ++i) {
    const ResumeReport& run = resumes[i];
    json += StrFormat(
        "    {\"kill_after_checkpoints\": %d, \"full_run_ms\": %.2f, "
        "\"resume_ms\": %.2f, \"bitwise_identical\": %s}%s\n",
        run.kill_after, run.full_ms, run.resume_ms,
        run.bitwise_identical ? "true" : "false",
        i + 1 < resumes.size() ? "," : "");
  }
  json += "  ],\n";
  json += StrFormat(
      "  \"assertions\": {\"resume_bitwise_identical\": %s}\n",
      all_identical ? "true" : "false");
  json += "}\n";
  return json;
}

int Main(int argc, char** argv) {
  const bool fast = bench::FastMode(argc, argv);
  const bench::ObsFlags obs_flags = bench::ParseObsFlags(argc, argv);
  std::string json_out;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json-out") == 0) json_out = argv[i + 1];
  }
  SetNumThreads(1);  // single schedule: forked workers must match the parent

  const Graph graph = BenchGraph(fast);
  Rng split_rng(212);
  const DataSplit split = RandomSplit(graph, 0.6, 0.2, &split_rng);

  // --- Checkpoint overhead vs interval ---
  const std::vector<int> kIntervals =
      fast ? std::vector<int>{2, 8} : std::vector<int>{1, 2, 4, 8};
  std::vector<IntervalReport> intervals;
  for (const int interval : kIntervals) {
    const std::string root = FreshRoot("ivl" + std::to_string(interval));
    JobStore store(root);
    SearchJobSpec spec = BenchSpec("overhead", fast, interval);
    if (!store.CreateJob(spec).ok()) std::exit(2);
    Stopwatch watch;
    const SearchJobOutcome out =
        RunToPublished(&store, "overhead", graph, split);
    IntervalReport report;
    report.interval = interval;
    report.wall_ms = watch.ElapsedSeconds() * 1e3;
    report.checkpoints = out.checkpoints_written;
    report.checkpoint_bytes = FileBytes(root + "/overhead/checkpoint.bin");
    intervals.push_back(report);
  }
  // Baseline = the widest interval (fewest checkpoints). The division is
  // noisy on a busy machine; the artifact keeps the raw wall clocks too.
  const IntervalReport& baseline = intervals.back();
  for (IntervalReport& run : intervals) {
    const int extra = run.checkpoints - baseline.checkpoints;
    run.overhead_ms_per_ckpt =
        extra > 0 ? (run.wall_ms - baseline.wall_ms) / extra : 0.0;
  }

  // --- Resume wall-clock, with the determinism gate ---
  const std::vector<int> kKillAfter =
      fast ? std::vector<int>{1, 4} : std::vector<int>{1, 3, 6, 9};
  std::vector<ResumeReport> resumes;
  bool all_identical = true;
  for (const int kill_after : kKillAfter) {
    const std::string root = FreshRoot("kill" + std::to_string(kill_after));
    JobStore store(root);
    SearchJobSpec spec = BenchSpec("victim", fast, /*interval=*/2);
    if (!store.CreateJob(spec).ok()) std::exit(2);
    spec.job_id = "twin";
    if (!store.CreateJob(spec).ok()) std::exit(2);

    ResumeReport report;
    report.kill_after = kill_after;
    Stopwatch full_watch;
    RunToPublished(&store, "twin", graph, split);
    report.full_ms = full_watch.ElapsedSeconds() * 1e3;

    ForkAndKill(root, "victim", graph, split, kill_after);
    Stopwatch resume_watch;
    if (!store.RecoverInterrupted().ok()) std::exit(2);
    RunToPublished(&store, "victim", graph, split);
    report.resume_ms = resume_watch.ElapsedSeconds() * 1e3;
    report.bitwise_identical =
        DirsIdentical(root + "/victim/ensemble", root + "/twin/ensemble");
    all_identical = all_identical && report.bitwise_identical;
    resumes.push_back(report);
  }

  bench::TablePrinter overhead_table(
      {"interval", "wall_ms", "ckpts", "ckpt_bytes", "ms/ckpt"});
  for (const IntervalReport& run : intervals) {
    overhead_table.AddRow({std::to_string(run.interval),
                           StrFormat("%.1f", run.wall_ms),
                           std::to_string(run.checkpoints),
                           std::to_string(run.checkpoint_bytes),
                           StrFormat("%.3f", run.overhead_ms_per_ckpt)});
  }
  std::printf("checkpoint overhead vs interval (gradient search):\n");
  overhead_table.Print();
  bench::TablePrinter resume_table(
      {"kill_after", "full_ms", "resume_ms", "bitwise"});
  for (const ResumeReport& run : resumes) {
    resume_table.AddRow({std::to_string(run.kill_after),
                         StrFormat("%.1f", run.full_ms),
                         StrFormat("%.1f", run.resume_ms),
                         run.bitwise_identical ? "yes" : "NO"});
  }
  std::printf("\nresume wall-clock after SIGKILL at the K-th checkpoint:\n");
  resume_table.Print();

  const std::string json =
      JsonReport(fast, graph, intervals, resumes, all_identical);
  if (!json_out.empty()) {
    std::ofstream out(json_out);
    out << json;
    if (!out.good()) {
      std::fprintf(stderr, "failed to write %s\n", json_out.c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", json_out.c_str());
  } else {
    std::printf("\n%s", json.c_str());
  }
  if (!bench::FlushObsOutputs(obs_flags)) return 1;
  if (!all_identical) {
    std::fprintf(stderr, "FAIL: a resumed ensemble diverged from its twin\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace ahg::jobs

int main(int argc, char** argv) { return ahg::jobs::Main(argc, argv); }
