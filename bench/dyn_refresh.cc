// Dynamic-graph refresh bench: incremental propagation patch vs cold full
// recompute on a 50k-node SBM graph (GCN, hidden 64, L = 2).
//
// Mutation batches are built from BFS-ordered seed prefixes so the final
// L-hop dirty set lands near a target fraction of the graph: 1%, 5% and
// 20%. For each scenario the bench times
//
//   apply   GraphSnapshot::Apply of the batch (COW row rebuilds)
//   inc     IncrementalPropagator::Refresh (dirty rows + frontier only)
//   full    a cold ComputeFull on the same snapshot (the baseline every
//           static serving path would pay)
//
// and verifies the patched hidden states stay bitwise identical to the
// cold recompute. The ISSUE acceptance criterion is asserted in-process:
// incremental must be >= 5x faster than full at <= 5% dirty; the process
// exits non-zero otherwise so CI can gate on it.
//
// A final scenario streams edge-add batches until DeltaCsr compaction
// fires, re-reorders the folded snapshot with the locality pass (the same
// compaction-is-the-re-reorder-point rule stream_server.cc applies),
// row-gathers the propagator state into the new order, and re-asserts the
// 5x bound at <= 5% dirty on the reordered snapshot.
//
// Usage: dyn_refresh [--fast] [--trace-out FILE] [--metrics-out FILE]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/bench_util.h"
#include "dyn/incremental.h"
#include "dyn/snapshot.h"
#include "graph/reorder.h"
#include "graph/synthetic.h"
#include "nn/linear.h"
#include "serve/model_registry.h"
#include "util/bitset.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace ahg::dyn {
namespace {

// BFS order over the snapshot's raw adjacency, restarting on every
// component, so seed prefixes are spatially clustered.
std::vector<int> BfsOrder(const GraphSnapshot& snap) {
  const int n = snap.num_nodes();
  std::vector<int> order;
  order.reserve(n);
  DynamicBitset seen(n);
  for (int root = 0; root < n; ++root) {
    if (seen.Test(root)) continue;
    seen.Set(root);
    std::deque<int> queue = {root};
    while (!queue.empty()) {
      const int u = queue.front();
      queue.pop_front();
      order.push_back(u);
      const DeltaCsr::RowRef row = snap.raw_adjacency().Row(u);
      for (int64_t e = 0; e < row.nnz; ++e) {
        if (seen.Set(row.cols[e])) queue.push_back(row.cols[e]);
      }
    }
  }
  return order;
}

// Final dirty fraction a feature-update seed set would reach after
// `hops` frontier expansions (mirrors IncrementalPropagator's dirty-set
// math with an empty adjacency-dirty set).
double ExpandedFraction(const GraphSnapshot& snap,
                        const std::vector<int>& seeds, int hops) {
  const int n = snap.num_nodes();
  DynamicBitset frontier(n);
  for (int s : seeds) frontier.Set(s);
  for (int h = 0; h < hops; ++h) {
    DynamicBitset next(n);
    for (int r : frontier.ToSortedVector()) {
      const DeltaCsr::RowRef row = snap.adjacency().Row(r);
      for (int64_t e = 0; e < row.nnz; ++e) next.Set(row.cols[e]);
    }
    frontier = std::move(next);
  }
  return static_cast<double>(frontier.Count()) / n;
}

// Largest BFS prefix whose L-hop expansion stays at or under `target`
// (binary search; expansions are cheap bitset sweeps).
std::vector<int> SeedsForTarget(const GraphSnapshot& snap,
                                const std::vector<int>& bfs, int hops,
                                double target) {
  int lo = 1, hi = static_cast<int>(bfs.size());
  while (lo < hi) {
    const int mid = lo + (hi - lo + 1) / 2;
    std::vector<int> prefix(bfs.begin(), bfs.begin() + mid);
    if (ExpandedFraction(snap, prefix, hops) <= target) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return std::vector<int>(bfs.begin(), bfs.begin() + lo);
}

bool BitwiseEqual(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (int r = 0; r < a.rows(); ++r) {
    if (std::memcmp(a.Row(r), b.Row(r),
                    static_cast<size_t>(a.cols()) * sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

int Main(int argc, char** argv) {
  const bool fast = ahg::bench::FastMode(argc, argv);
  const ahg::bench::ObsFlags obs_flags =
      ahg::bench::ParseObsFlags(argc, argv);

  SyntheticConfig cfg;
  cfg.name = "dyn-bench";
  cfg.num_nodes = fast ? 5000 : 50000;
  cfg.num_classes = 5;
  cfg.feature_dim = 32;
  cfg.avg_degree = 6.0;
  cfg.seed = 7;
  Graph graph = GenerateSbmGraph(cfg);

  serve::ServableModel model;
  model.version = 1;
  model.num_classes = graph.num_classes();
  model.config.family = ModelFamily::kGcn;
  model.config.in_dim = graph.feature_dim();
  model.config.hidden_dim = 64;
  model.config.num_layers = 2;
  model.config.seed = 11;
  std::unique_ptr<GnnModel> zoo = BuildModel(model.config);
  Rng head_rng(model.config.seed ^ 0x5ca1ab1eULL);
  Linear head(zoo->params(), model.config.hidden_dim, model.num_classes,
              /*bias=*/true, &head_rng);
  model.params = zoo->params()->Snapshot();
  std::vector<Matrix> layer_params(model.params.begin(),
                                   model.params.end() - 2);

  auto snap_or = GraphSnapshot::FromGraph(graph);
  if (!snap_or.ok()) {
    std::fprintf(stderr, "snapshot: %s\n",
                 snap_or.status().ToString().c_str());
    return 1;
  }
  GraphSnapshot snap = std::move(snap_or).value();

  RefreshOptions refresh_options;
  refresh_options.full_refresh_fraction = 0.6;  // keep 20% incremental
  IncrementalPropagator prop(model.config, std::move(layer_params),
                             refresh_options);
  Stopwatch cold_watch;
  prop.FullRefresh(snap);
  const double cold_ms = cold_watch.ElapsedMillis();
  std::printf("dyn_refresh: %d nodes, %lld edges, cold refresh %.1f ms\n",
              snap.num_nodes(), static_cast<long long>(snap.num_edges()),
              cold_ms);

  Rng rng(23);

  ahg::bench::TablePrinter table(
      {"dirty_target", "dirty_actual", "seeds", "apply_ms", "inc_ms",
       "full_ms", "speedup"});
  bool ok = true;
  // One timed feature-update scenario at `target` dirty fraction; rows of
  // the table. Recomputes the BFS order each time because edge-add batches
  // (the compaction scenario below) change the structure mid-bench.
  auto run_scenario = [&](double target, const std::string& label) {
    const std::vector<int> bfs = BfsOrder(snap);
    std::vector<int> seeds =
        SeedsForTarget(snap, bfs, model.config.num_layers, target);
    std::vector<Mutation> batch;
    batch.reserve(seeds.size());
    for (int s : seeds) {
      std::vector<double> f(snap.feature_dim());
      for (double& x : f) x = rng.Normal();
      batch.push_back(Mutation::UpdateFeatures(s, std::move(f)));
    }

    Stopwatch apply_watch;
    auto applied = snap.Apply(batch);
    const double apply_ms = apply_watch.ElapsedMillis();
    if (!applied.ok()) {
      std::fprintf(stderr, "apply: %s\n",
                   applied.status().ToString().c_str());
      return false;
    }
    auto [next, delta] = std::move(applied).value();
    snap = std::move(next);

    Stopwatch inc_watch;
    auto stats = prop.Refresh(snap, delta);
    const double inc_ms = inc_watch.ElapsedMillis();
    if (!stats.ok() || !stats.value().incremental) {
      std::fprintf(stderr, "refresh did not take the incremental path\n");
      return false;
    }

    Stopwatch full_watch;
    Matrix oracle = prop.ComputeFull(snap);
    const double full_ms = full_watch.ElapsedMillis();
    if (!BitwiseEqual(*prop.hidden(), oracle)) {
      std::fprintf(stderr, "incremental result diverged from cold oracle\n");
      return false;
    }

    const double speedup = full_ms / inc_ms;
    table.AddRow({label,
                  StrFormat("%.2f%%", stats.value().dirty_fraction * 100.0),
                  StrFormat("%d", static_cast<int>(seeds.size())),
                  StrFormat("%.2f", apply_ms), StrFormat("%.2f", inc_ms),
                  StrFormat("%.2f", full_ms), StrFormat("%.1fx", speedup)});
    if (target <= 0.05 && speedup < 5.0) {
      std::fprintf(stderr,
                   "FAIL: %s dirty speedup %.1fx below the 5x bound\n",
                   label.c_str(), speedup);
      return false;
    }
    return true;
  };
  for (double target : {0.01, 0.05, 0.20}) {
    ok = run_scenario(target, StrFormat("%.0f%%", target * 100.0)) && ok;
  }

  // Compaction-triggered re-reorder mid-stream: edge-add batches push the
  // adjacency overlay past the 25% compaction threshold, the fold is the
  // re-reorder point (mirroring stream_server.cc), the propagator's hidden
  // state is row-gathered into the new order (zero FLOPs), and the <= 5%
  // dirty incremental bound is re-asserted on the reordered snapshot.
  Rng edge_rng(31);
  bool compacted = false;
  for (int round = 0; round < 8 && !compacted; ++round) {
    std::vector<Mutation> adds;
    const int pairs = snap.num_nodes() / 8;
    adds.reserve(pairs);
    auto has_edge = [&snap](int u, int v) {
      const DeltaCsr::RowRef row =
          snap.raw_adjacency().Row(snap.ToInternal(u));
      const int vi = snap.ToInternal(v);
      for (int64_t e = 0; e < row.nnz; ++e) {
        if (row.cols[e] == vi) return true;
      }
      return false;
    };
    std::unordered_set<int64_t> in_batch;
    while (static_cast<int>(adds.size()) < pairs) {
      const int u = edge_rng.UniformInt(snap.num_nodes());
      int v = edge_rng.UniformInt(snap.num_nodes());
      if (v == u) v = (v + 1) % snap.num_nodes();
      const int64_t key = static_cast<int64_t>(std::min(u, v)) *
                              snap.num_nodes() +
                          std::max(u, v);
      if (!in_batch.insert(key).second || has_edge(u, v)) continue;
      adds.push_back(Mutation::AddEdge(u, v));
    }
    auto applied = snap.Apply(adds);
    if (!applied.ok()) {
      std::fprintf(stderr, "edge apply: %s\n",
                   applied.status().ToString().c_str());
      return 1;
    }
    compacted = applied.value().second.compacted;
    snap = std::move(applied.value().first);
    auto stats = prop.Refresh(snap, applied.value().second);
    if (!stats.ok()) {
      std::fprintf(stderr, "refresh after edge batch failed\n");
      return 1;
    }
  }
  if (!compacted) {
    std::fprintf(stderr, "compaction never fired; scenario invalid\n");
    return 1;
  }
  ReorderResult reordered = snap.Reordered(ReorderStrategy::kRcm, 29);
  prop.ApplyReorder(reordered.remap, reordered.snapshot.version());
  snap = std::move(reordered.snapshot);
  if (!BitwiseEqual(*prop.hidden(), prop.ComputeFull(snap))) {
    std::fprintf(stderr, "re-reordered hidden state diverged from cold "
                         "oracle\n");
    return 1;
  }
  ok = run_scenario(0.05, "5%+reorder") && ok;
  table.Print();

  if (!ahg::bench::FlushObsOutputs(obs_flags)) return 1;
  if (!ok) return 1;
  std::printf("dyn_refresh: incremental >= 5x at <= 5%% dirty: PASS\n");
  return 0;
}

}  // namespace
}  // namespace ahg::dyn

int main(int argc, char** argv) { return ahg::dyn::Main(argc, argv); }
