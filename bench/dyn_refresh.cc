// Dynamic-graph refresh bench: incremental propagation patch vs cold full
// recompute on a 50k-node SBM graph (GCN, hidden 64, L = 2).
//
// Mutation batches are built from BFS-ordered seed prefixes so the final
// L-hop dirty set lands near a target fraction of the graph: 1%, 5% and
// 20%. For each scenario the bench times
//
//   apply   GraphSnapshot::Apply of the batch (COW row rebuilds)
//   inc     IncrementalPropagator::Refresh (dirty rows + frontier only)
//   full    a cold ComputeFull on the same snapshot (the baseline every
//           static serving path would pay)
//
// and verifies the patched hidden states stay bitwise identical to the
// cold recompute. The ISSUE acceptance criterion is asserted in-process:
// incremental must be >= 5x faster than full at <= 5% dirty; the process
// exits non-zero otherwise so CI can gate on it.
//
// Usage: dyn_refresh [--fast] [--trace-out FILE] [--metrics-out FILE]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/bench_util.h"
#include "dyn/incremental.h"
#include "dyn/snapshot.h"
#include "graph/synthetic.h"
#include "nn/linear.h"
#include "serve/model_registry.h"
#include "util/bitset.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace ahg::dyn {
namespace {

// BFS order over the snapshot's raw adjacency, restarting on every
// component, so seed prefixes are spatially clustered.
std::vector<int> BfsOrder(const GraphSnapshot& snap) {
  const int n = snap.num_nodes();
  std::vector<int> order;
  order.reserve(n);
  DynamicBitset seen(n);
  for (int root = 0; root < n; ++root) {
    if (seen.Test(root)) continue;
    seen.Set(root);
    std::deque<int> queue = {root};
    while (!queue.empty()) {
      const int u = queue.front();
      queue.pop_front();
      order.push_back(u);
      const DeltaCsr::RowRef row = snap.raw_adjacency().Row(u);
      for (int64_t e = 0; e < row.nnz; ++e) {
        if (seen.Set(row.cols[e])) queue.push_back(row.cols[e]);
      }
    }
  }
  return order;
}

// Final dirty fraction a feature-update seed set would reach after
// `hops` frontier expansions (mirrors IncrementalPropagator's dirty-set
// math with an empty adjacency-dirty set).
double ExpandedFraction(const GraphSnapshot& snap,
                        const std::vector<int>& seeds, int hops) {
  const int n = snap.num_nodes();
  DynamicBitset frontier(n);
  for (int s : seeds) frontier.Set(s);
  for (int h = 0; h < hops; ++h) {
    DynamicBitset next(n);
    for (int r : frontier.ToSortedVector()) {
      const DeltaCsr::RowRef row = snap.adjacency().Row(r);
      for (int64_t e = 0; e < row.nnz; ++e) next.Set(row.cols[e]);
    }
    frontier = std::move(next);
  }
  return static_cast<double>(frontier.Count()) / n;
}

// Largest BFS prefix whose L-hop expansion stays at or under `target`
// (binary search; expansions are cheap bitset sweeps).
std::vector<int> SeedsForTarget(const GraphSnapshot& snap,
                                const std::vector<int>& bfs, int hops,
                                double target) {
  int lo = 1, hi = static_cast<int>(bfs.size());
  while (lo < hi) {
    const int mid = lo + (hi - lo + 1) / 2;
    std::vector<int> prefix(bfs.begin(), bfs.begin() + mid);
    if (ExpandedFraction(snap, prefix, hops) <= target) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return std::vector<int>(bfs.begin(), bfs.begin() + lo);
}

bool BitwiseEqual(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (int r = 0; r < a.rows(); ++r) {
    if (std::memcmp(a.Row(r), b.Row(r),
                    static_cast<size_t>(a.cols()) * sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

int Main(int argc, char** argv) {
  const bool fast = ahg::bench::FastMode(argc, argv);
  const ahg::bench::ObsFlags obs_flags =
      ahg::bench::ParseObsFlags(argc, argv);

  SyntheticConfig cfg;
  cfg.name = "dyn-bench";
  cfg.num_nodes = fast ? 5000 : 50000;
  cfg.num_classes = 5;
  cfg.feature_dim = 32;
  cfg.avg_degree = 6.0;
  cfg.seed = 7;
  Graph graph = GenerateSbmGraph(cfg);

  serve::ServableModel model;
  model.version = 1;
  model.num_classes = graph.num_classes();
  model.config.family = ModelFamily::kGcn;
  model.config.in_dim = graph.feature_dim();
  model.config.hidden_dim = 64;
  model.config.num_layers = 2;
  model.config.seed = 11;
  std::unique_ptr<GnnModel> zoo = BuildModel(model.config);
  Rng head_rng(model.config.seed ^ 0x5ca1ab1eULL);
  Linear head(zoo->params(), model.config.hidden_dim, model.num_classes,
              /*bias=*/true, &head_rng);
  model.params = zoo->params()->Snapshot();
  std::vector<Matrix> layer_params(model.params.begin(),
                                   model.params.end() - 2);

  auto snap_or = GraphSnapshot::FromGraph(graph);
  if (!snap_or.ok()) {
    std::fprintf(stderr, "snapshot: %s\n",
                 snap_or.status().ToString().c_str());
    return 1;
  }
  GraphSnapshot snap = std::move(snap_or).value();

  RefreshOptions refresh_options;
  refresh_options.full_refresh_fraction = 0.6;  // keep 20% incremental
  IncrementalPropagator prop(model.config, std::move(layer_params),
                             refresh_options);
  Stopwatch cold_watch;
  prop.FullRefresh(snap);
  const double cold_ms = cold_watch.ElapsedMillis();
  std::printf("dyn_refresh: %d nodes, %lld edges, cold refresh %.1f ms\n",
              snap.num_nodes(), static_cast<long long>(snap.num_edges()),
              cold_ms);

  const std::vector<int> bfs = BfsOrder(snap);
  Rng rng(23);

  ahg::bench::TablePrinter table(
      {"dirty_target", "dirty_actual", "seeds", "apply_ms", "inc_ms",
       "full_ms", "speedup"});
  bool ok = true;
  for (double target : {0.01, 0.05, 0.20}) {
    std::vector<int> seeds =
        SeedsForTarget(snap, bfs, model.config.num_layers, target);
    std::vector<Mutation> batch;
    batch.reserve(seeds.size());
    for (int s : seeds) {
      std::vector<double> f(snap.feature_dim());
      for (double& x : f) x = rng.Normal();
      batch.push_back(Mutation::UpdateFeatures(s, std::move(f)));
    }

    Stopwatch apply_watch;
    auto applied = snap.Apply(batch);
    const double apply_ms = apply_watch.ElapsedMillis();
    if (!applied.ok()) {
      std::fprintf(stderr, "apply: %s\n",
                   applied.status().ToString().c_str());
      return 1;
    }
    auto [next, delta] = std::move(applied).value();
    snap = std::move(next);

    Stopwatch inc_watch;
    auto stats = prop.Refresh(snap, delta);
    const double inc_ms = inc_watch.ElapsedMillis();
    if (!stats.ok() || !stats.value().incremental) {
      std::fprintf(stderr, "refresh did not take the incremental path\n");
      return 1;
    }

    Stopwatch full_watch;
    Matrix oracle = prop.ComputeFull(snap);
    const double full_ms = full_watch.ElapsedMillis();
    if (!BitwiseEqual(*prop.hidden(), oracle)) {
      std::fprintf(stderr, "incremental result diverged from cold oracle\n");
      return 1;
    }

    const double speedup = full_ms / inc_ms;
    table.AddRow({StrFormat("%.0f%%", target * 100.0),
                  StrFormat("%.2f%%", stats.value().dirty_fraction * 100.0),
                  StrFormat("%d", static_cast<int>(seeds.size())),
                  StrFormat("%.2f", apply_ms), StrFormat("%.2f", inc_ms),
                  StrFormat("%.2f", full_ms), StrFormat("%.1fx", speedup)});
    if (target <= 0.05 && speedup < 5.0) {
      std::fprintf(stderr,
                   "FAIL: %.0f%% dirty speedup %.1fx below the 5x bound\n",
                   target * 100.0, speedup);
      ok = false;
    }
  }
  table.Print();

  if (!ahg::bench::FlushObsOutputs(obs_flags)) return 1;
  if (!ok) return 1;
  std::printf("dyn_refresh: incremental >= 5x at <= 5%% dirty: PASS\n");
  return 0;
}

}  // namespace
}  // namespace ahg::dyn

int main(int argc, char** argv) { return ahg::dyn::Main(argc, argv); }
