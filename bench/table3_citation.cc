// Table III: citation benchmarks (Cora/Citeseer/Pubmed analogs) under the
// fixed Planetoid protocol (20 labeled nodes per class, 500 validation,
// 1000 test) with no outer bagging — exactly the paper's setting.
#include <cstdio>
#include <map>

#include "common/bench_util.h"
#include "graph/synthetic.h"
#include "metrics/wilcoxon.h"

int main(int argc, char** argv) {
  using namespace ahg;
  using namespace ahg::bench;
  const bool fast = FastMode(argc, argv);

  std::printf(
      "== Table III: Cora / Citeseer / Pubmed (synthetic analogs) ==\n"
      "Paper reference (accuracy %%):\n"
      "  GCN 81.5/70.3/79.0  GAT 83.0/72.5/79.0  GCNII 85.5/73.4/80.2\n"
      "  L-ensemble 85.9/76.0/82.9  AutoHEnsGNN Ada. 86.1/76.3/83.5  "
      "Grad. 86.5/76.9/84.0\n\n");

  const std::vector<std::string> datasets{"cora-syn", "citeseer-syn",
                                          "pubmed-syn"};
  RosterOptions options;
  options.repeats = fast ? 1 : 2;
  options.bagging = 1;  // the paper does not bag on the fixed public splits
  options.per_class_split = true;
  options.train = DefaultBenchTrain();
  if (fast) options.train.max_epochs = 12;
  options.singles = PaperSingleRoster();
  options.pool_n = 3;
  options.k = 3;
  options.seed = 77;

  std::vector<std::string> method_order;
  std::map<std::string, std::map<std::string, std::string>> cells;
  std::map<std::string, std::vector<double>> grad_scores, lens_scores;
  for (const std::string& name : datasets) {
    Graph graph = MakePresetGraph(name, /*seed=*/300 + name[0]);
    std::vector<MethodScores> results = RunNodeRoster(graph, options);
    for (const MethodScores& m : results) {
      if (cells.find(m.method) == cells.end()) method_order.push_back(m.method);
      cells[m.method][name] = MeanStdCell(m.test_accs);
      if (m.method == "AutoHEnsGNN(Gradient)") grad_scores[name] = m.test_accs;
      if (m.method == "L-ensemble") lens_scores[name] = m.test_accs;
    }
    std::printf("[dataset %s done]\n", name.c_str());
  }

  std::printf("\nMeasured (mean±std over %d repeats, Planetoid splits):\n",
              options.repeats);
  TablePrinter table({"Method", "Cora*", "Citeseer*", "Pubmed*"});
  for (const std::string& method : method_order) {
    std::vector<std::string> row{method};
    for (const std::string& d : datasets) row.push_back(cells[method][d]);
    table.AddRow(std::move(row));
  }
  table.Print();

  std::vector<double> grad_all, lens_all;
  for (const std::string& d : datasets) {
    grad_all.insert(grad_all.end(), grad_scores[d].begin(),
                    grad_scores[d].end());
    lens_all.insert(lens_all.end(), lens_scores[d].begin(),
                    lens_scores[d].end());
  }
  std::printf(
      "\nWilcoxon signed-rank (Gradient vs L-ensemble, two-sided): "
      "p = %.4f\n",
      WilcoxonSignedRankTest(grad_all, lens_all));
  return 0;
}
