// Serving-path throughput bench: quantifies what the PropagationCache buys
// on a 10k-node SBM graph.
//
//   cold   first single-node query on a fresh engine (pays the one-time
//          propagation precompute)
//   warm   subsequent single-node queries (dense row gather + head MLP)
//   batch  cache-warm micro-batched serving through the RequestBatcher at
//          max_batch_size 1 / 8 / 64
//   naive  the no-cache baseline: every query re-runs the full-graph
//          eval forward and reads one row
//
// The bench asserts the ISSUE acceptance criterion in its counters:
// cache-warm batched qps must be >= 5x the naive per-query qps. Exits
// non-zero when the bound does not hold, so CI can gate on it.
//
// Usage: serve_throughput [--fast] [--trace-out FILE] [--metrics-out FILE]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "common/bench_util.h"
#include "graph/synthetic.h"
#include "nn/linear.h"
#include "serve/inference_engine.h"
#include "serve/model_registry.h"
#include "serve/request_batcher.h"
#include "serve/serve_stats.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace ahg::serve {
namespace {

double MedianMs(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

int Main(int argc, char** argv) {
  const bool fast = ahg::bench::FastMode(argc, argv);
  const ahg::bench::ObsFlags obs_flags =
      ahg::bench::ParseObsFlags(argc, argv);

  SyntheticConfig cfg;
  cfg.name = "serve-bench";
  cfg.num_nodes = fast ? 2000 : 10000;
  cfg.num_classes = 5;
  cfg.feature_dim = 32;
  cfg.avg_degree = 6.0;
  cfg.seed = 7;
  Graph graph = GenerateSbmGraph(cfg);

  // Publish one GCN generation through the registry so the bench exercises
  // the real deployment path (save -> manifest -> load -> serve).
  ModelConfig model_cfg;
  model_cfg.family = ModelFamily::kGcn;
  model_cfg.in_dim = graph.feature_dim();
  model_cfg.hidden_dim = 32;
  model_cfg.num_layers = 2;
  model_cfg.seed = 11;
  std::unique_ptr<GnnModel> zoo = BuildModel(model_cfg);
  Rng head_rng(model_cfg.seed ^ 0x5ca1ab1eULL);
  Linear head(zoo->params(), model_cfg.hidden_dim, graph.num_classes(),
              /*bias=*/true, &head_rng);

  const char* tmp = std::getenv("TMPDIR");
  const std::string dir =
      std::string(tmp ? tmp : "/tmp") + "/serve_throughput_registry";
  std::filesystem::remove_all(dir);
  if (!ModelRegistry::Publish(dir, 1, model_cfg, zoo->params()->Snapshot(),
                              graph.num_classes())
           .ok()) {
    std::fprintf(stderr, "publish failed\n");
    return 1;
  }
  ModelRegistry registry(dir);
  if (!registry.Refresh().ok() ||
      !registry.ValidateCompatibility(graph).ok()) {
    std::fprintf(stderr, "registry load failed\n");
    return 1;
  }
  std::shared_ptr<const ServableModel> model = registry.Active();

  const int warm_queries = fast ? 200 : 1000;
  const int naive_queries = fast ? 3 : 5;
  Rng node_rng(99);

  // Cold: first query on a fresh engine pays the propagation precompute.
  InferenceEngine cold_engine(&graph, EngineOptions{});
  Stopwatch cold_watch;
  if (auto r = cold_engine.PredictNodes(*model, {0}); !r.ok()) {
    std::fprintf(stderr, "cold query failed: %s\n",
                 r.status().ToString().c_str());
    return 1;
  }
  const double cold_ms = cold_watch.ElapsedMillis();

  // Warm: single-node queries against the populated cache.
  std::vector<double> warm_samples;
  warm_samples.reserve(warm_queries);
  for (int q = 0; q < warm_queries; ++q) {
    const std::vector<int> node = {
        static_cast<int>(node_rng.UniformInt(graph.num_nodes()))};
    Stopwatch watch;
    if (!cold_engine.PredictNodes(*model, node).ok()) return 1;
    warm_samples.push_back(watch.ElapsedMillis());
  }
  const double warm_ms = MedianMs(std::move(warm_samples));

  // Naive baseline: each query re-runs the full-graph eval forward.
  Stopwatch naive_watch;
  for (int q = 0; q < naive_queries; ++q) {
    Matrix probs = InferenceEngine::TrainingPathProbs(*model, graph);
    (void)probs(static_cast<int>(node_rng.UniformInt(graph.num_nodes())), 0);
  }
  const double naive_ms = naive_watch.ElapsedMillis() / naive_queries;
  const double naive_qps = 1e3 / naive_ms;

  // Cache-warm batched serving through the full stack at several batch
  // caps. Requests are pre-enqueued so the drain measures steady state.
  ahg::bench::TablePrinter table(
      {"path", "batch", "queries", "median_ms", "qps", "vs_naive"});
  table.AddRow({"cold_first_query", "1", "1",
                StrFormat("%.2f", cold_ms), StrFormat("%.1f", 1e3 / cold_ms),
                "-"});
  table.AddRow({"warm_single", "1", std::to_string(warm_queries),
                StrFormat("%.4f", warm_ms), StrFormat("%.1f", 1e3 / warm_ms),
                StrFormat("%.1fx", naive_ms / warm_ms)});
  table.AddRow({"naive_full_forward", "1", std::to_string(naive_queries),
                StrFormat("%.2f", naive_ms), StrFormat("%.1f", naive_qps),
                "1.0x"});

  double best_batched_qps = 0.0;
  for (int batch : {1, 8, 64}) {
    ServeStats stats;
    InferenceEngine engine(&graph, EngineOptions{}, &stats);
    if (!engine.Warm(*model).ok()) return 1;
    BatcherOptions options;
    options.max_batch_size = batch;
    options.queue_limit = 1 << 20;
    options.deadline_ms = 60000.0;
    options.num_threads = 2;
    RequestBatcher batcher(&engine, &registry, options, &stats);

    const int queries = fast ? 500 : 2000;
    std::vector<std::future<QueryResult>> futures;
    futures.reserve(queries);
    Stopwatch watch;
    for (int q = 0; q < queries; ++q) {
      futures.push_back(batcher.Enqueue(
          static_cast<int>(node_rng.UniformInt(graph.num_nodes()))));
    }
    batcher.Drain();
    const double seconds = watch.ElapsedSeconds();
    for (auto& f : futures) {
      if (!f.get().status.ok()) {
        std::fprintf(stderr, "batched query failed\n");
        return 1;
      }
    }
    const double qps = queries / seconds;
    best_batched_qps = std::max(best_batched_qps, qps);
    table.AddRow({"warm_batched", std::to_string(batch),
                  std::to_string(queries),
                  StrFormat("%.4f", 1e3 * seconds / queries),
                  StrFormat("%.1f", qps),
                  StrFormat("%.1fx", qps / naive_qps)});
  }
  table.Print();

  if (!ahg::bench::FlushObsOutputs(obs_flags)) return 1;

  const double speedup = best_batched_qps / naive_qps;
  std::printf("\ncache-warm batched vs naive full-forward: %.1fx "
              "(required >= 5.0x)\n",
              speedup);
  if (speedup < 5.0) {
    std::fprintf(stderr, "FAIL: speedup %.2fx below the 5x bound\n", speedup);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace ahg::serve

int main(int argc, char** argv) { return ahg::serve::Main(argc, argv); }
