// Figure 8 (appendix C): search-stage wall-clock time as the pool size N
// grows, Cora analog. Expected shape (paper): AutoHEnsGNN_Adaptive grows
// linearly in N (it probe-trains every model separately), while
// AutoHEnsGNN_Gradient grows far more slowly (one joint gradient
// optimization regardless of N).
#include <cstdio>

#include "common/bench_util.h"
#include "core/search_adaptive.h"
#include "core/search_gradient.h"
#include "graph/synthetic.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  using namespace ahg;
  using namespace ahg::bench;
  const bool fast = FastMode(argc, argv);

  std::printf(
      "== Figure 8: search time vs pool size N (Cora analog) ==\n"
      "Expected shape: Adaptive ~linear in N; Gradient ~flat (bi-level "
      "joint search).\n\n");

  Graph graph = MakePresetGraph("cora-syn", /*seed=*/4096);
  Rng rng(6);
  DataSplit split = RandomSplit(graph, 0.4, 0.2, &rng);
  TrainConfig train = DefaultBenchTrain();
  train.max_epochs = fast ? 8 : 20;
  std::vector<CandidateSpec> roster{
      FindCandidate("GCN"), FindCandidate("TAGC"), FindCandidate("SGC"),
      FindCandidate("GraphSAGE-mean"), FindCandidate("GCNII")};

  TablePrinter table({"N", "Adaptive search (s)", "Gradient search (s)"});
  const std::vector<int> n_values = fast ? std::vector<int>{1, 2}
                                         : std::vector<int>{1, 2, 3, 4, 5};
  for (int n : n_values) {
    std::vector<CandidateSpec> pool(roster.begin(), roster.begin() + n);

    AdaptiveSearchConfig ada;
    ada.k = 3;
    ada.train = train;
    ada.seed = 8;
    AdaptiveSearchResult ada_result = SearchAdaptive(pool, graph, split, ada);

    GradientSearchConfig grad;
    grad.k = 3;
    grad.max_epochs = train.max_epochs;
    grad.patience = 5;
    grad.train = train;
    grad.seed = 9;
    GradientSearchResult grad_result =
        SearchGradient(pool, graph, split, grad);

    table.AddRow({std::to_string(n),
                  FormatFloat(ada_result.search_seconds, 1),
                  FormatFloat(grad_result.search_seconds, 1)});
    std::printf("[N=%d done]\n", n);
  }
  std::printf("\n");
  table.Print();
  return 0;
}
