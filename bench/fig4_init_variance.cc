// Figure 4: variance caused by weight initialization. GAT is retrained many
// times on a FIXED split with only the seed changing, with and without
// graph self-ensemble (K = 3); GSE must shrink the min-max spread several-
// fold and lift the mean, as in the paper (A: 4.3% -> 1.1%, C: 4.9% ->
// 1.0%).
#include <cstdio>

#include "common/bench_util.h"
#include "core/hierarchical.h"
#include "graph/synthetic.h"
#include "metrics/aggregate.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  using namespace ahg;
  using namespace ahg::bench;
  const bool fast = FastMode(argc, argv);

  std::printf(
      "== Figure 4: initialization variance, GAT vs GAT+GSE (K=3) ==\n"
      "Paper reference: spread 4.3%% -> 1.1%% on A, 4.9%% -> 1.0%% on C "
      "(100 runs).\n\n");

  const int runs = fast ? 3 : 8;
  TrainConfig train = DefaultBenchTrain();
  train.max_epochs = fast ? 10 : 32;
  CandidateSpec gat = FindCandidate("GAT");

  TablePrinter table({"Dataset", "Method", "mean±std", "min", "max",
                      "spread"});
  for (const char* dataset : {"A", "C"}) {
    Graph graph = MakePresetGraph(dataset, /*seed=*/64);
    Rng rng(5);
    DataSplit split = RandomSplit(graph, 0.4, 0.2, &rng);  // fixed split

    std::vector<double> single_accs, gse_accs;
    for (int run = 0; run < runs; ++run) {
      {
        ModelConfig mcfg = gat.config;
        mcfg.seed = 10000 + run;
        TrainConfig tcfg = train;
        tcfg.seed = mcfg.seed ^ 0x99ULL;
        single_accs.push_back(
            TrainSingleNodeModel(mcfg, graph, split, tcfg).test_accuracy);
      }
      {
        const int max_l = gat.config.num_layers;
        HierarchicalResult gse =
            TrainGse(gat, {max_l, std::max(1, max_l - 1), max_l}, graph,
                     split, train, /*seed=*/20000 + 100 * run);
        gse_accs.push_back(gse.test_accuracy);
      }
    }
    for (const auto& [label, accs] :
         {std::pair<const char*, std::vector<double>&>{"GAT", single_accs},
          {"GAT+GSE", gse_accs}}) {
      RunStats s = Summarize(accs);
      table.AddRow({dataset, label, FormatMeanStd(s, true),
                    FormatFloat(100 * s.min, 1), FormatFloat(100 * s.max, 1),
                    FormatFloat(100 * (s.max - s.min), 1)});
    }
    std::printf("[dataset %s done: %d runs each]\n", dataset, runs);
  }
  std::printf("\n");
  table.Print();
  return 0;
}
