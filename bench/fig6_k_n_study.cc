// Figure 6: hierarchical-ensemble hyper-parameters on the Cora analog —
// accuracy as the pool size N (at K = 3) and the self-ensemble size K (at
// N = 3) vary. Expected shape (paper): N saturates quickly (N = 3 is near
// the best; large N admits weak models), K grows monotonically with
// diminishing returns.
#include <cstdio>

#include "common/bench_util.h"
#include "core/hierarchical.h"
#include "core/search_adaptive.h"
#include "graph/synthetic.h"
#include "metrics/aggregate.h"
#include "util/string_util.h"

namespace {

using namespace ahg;
using namespace ahg::bench;

// Hierarchical ensemble with the first `n` pool entries and `k` seeds per
// entry; adaptive beta, default deepest layers.
double RunPoint(const Graph& graph, const DataSplit& split,
                const std::vector<CandidateSpec>& ranked_pool, int n, int k,
                const TrainConfig& train, uint64_t seed) {
  std::vector<CandidateSpec> pool(ranked_pool.begin(),
                                  ranked_pool.begin() + n);
  AdaptiveSearchConfig acfg;
  acfg.k = k;
  acfg.train = train;
  acfg.seed = seed;
  AdaptiveSearchResult search = SearchAdaptive(pool, graph, split, acfg);
  return TrainHierarchicalEnsemble(pool, search.layers, search.beta, graph,
                                   split, train, seed ^ 0x1717ULL)
      .test_accuracy;
}

}  // namespace

int main(int argc, char** argv) {
  const bool fast = FastMode(argc, argv);

  std::printf(
      "== Figure 6: K and N study (Cora analog) ==\n"
      "Paper reference: accuracy peaks near N=3 (86.5) and rises "
      "monotonically in K\n"
      "with diminishing returns (K=3 the efficiency sweet spot).\n\n");

  Graph graph = MakePresetGraph("cora-syn", /*seed=*/512);
  TrainConfig train = DefaultBenchTrain();
  train.max_epochs = fast ? 10 : 28;
  const int repeats = fast ? 1 : 2;

  // Pool ranked once by proxy evaluation over a diverse roster.
  std::vector<CandidateSpec> roster = PaperSingleRoster();
  std::vector<int> ranked =
      PoolByProxyEval(graph, roster, static_cast<int>(roster.size()), train,
                      /*seed=*/5);
  std::vector<CandidateSpec> ranked_pool;
  for (int idx : ranked) ranked_pool.push_back(roster[idx]);

  TablePrinter table({"Sweep", "Value", "test acc (mean±std)"});
  const std::vector<int> n_values = fast ? std::vector<int>{1, 3}
                                         : std::vector<int>{1, 3, 5};
  for (int n : n_values) {
    std::vector<double> accs;
    for (int rep = 0; rep < repeats; ++rep) {
      Rng rng(100 + rep);
      DataSplit split = PerClassSplit(graph, 20, 500, 1000, &rng);
      accs.push_back(RunPoint(graph, split, ranked_pool, n, /*k=*/3, train,
                              900 + 31ULL * rep));
    }
    table.AddRow({"pool size N (K=3)", std::to_string(n),
                  MeanStdCell(accs)});
    std::printf("[N=%d done]\n", n);
  }
  const std::vector<int> k_values = fast ? std::vector<int>{1, 3}
                                         : std::vector<int>{1, 3, 5};
  for (int k : k_values) {
    std::vector<double> accs;
    for (int rep = 0; rep < repeats; ++rep) {
      Rng rng(200 + rep);
      DataSplit split = PerClassSplit(graph, 20, 500, 1000, &rng);
      accs.push_back(RunPoint(graph, split, ranked_pool, /*n=*/3, k, train,
                              1700 + 31ULL * rep));
    }
    table.AddRow({"self-ensemble K (N=3)", std::to_string(k),
                  MeanStdCell(accs)});
    std::printf("[K=%d done]\n", k);
  }
  std::printf("\n");
  table.Print();
  return 0;
}
