// Table VIII: link prediction AUC on the citation analogs. The paper's six
// specialized baselines (WalkPooling, S-VGAE, ...) are closed-source /
// task-specific systems; we substitute GNN-encoder + dot-product-decoder
// baselines from our zoo, then reproduce the ensemble roster: D-ensemble,
// L-ensemble (learned weights on validation), and AutoHEnsGNN with K = 3
// seeds per encoder and N = 2 encoder families, as in the paper's setup.
// Alpha (depth) is chosen by probe grid search and beta adaptively (Ada.)
// or by validation-gradient descent (Grad.), the first-order reduction of
// Algorithm 1 for this task.
#include <cmath>
#include <cstdio>
#include <map>

#include "autodiff/ops.h"
#include "common/bench_util.h"
#include "core/search_adaptive.h"
#include "graph/synthetic.h"
#include "metrics/metrics.h"
#include "nn/optimizer.h"
#include "tasks/train_link.h"

namespace {

using namespace ahg;

std::vector<double> AverageScores(
    const std::vector<std::vector<double>>& members) {
  std::vector<double> out(members[0].size(), 0.0);
  for (const auto& m : members) {
    for (size_t i = 0; i < out.size(); ++i) out[i] += m[i];
  }
  for (auto& v : out) v /= static_cast<double>(members.size());
  return out;
}

std::vector<double> WeightedScores(
    const std::vector<std::vector<double>>& members,
    const std::vector<double>& weights) {
  std::vector<double> out(members[0].size(), 0.0);
  for (size_t m = 0; m < members.size(); ++m) {
    for (size_t i = 0; i < out.size(); ++i) {
      out[i] += weights[m] * members[m][i];
    }
  }
  return out;
}

// Learns softmax weights over member score columns by minimizing BCE of the
// logit-combined score on the validation pairs.
std::vector<double> LearnScoreWeights(
    const std::vector<std::vector<double>>& val_scores,
    const std::vector<int>& val_labels) {
  const int n = static_cast<int>(val_scores.size());
  const int m = static_cast<int>(val_scores[0].size());
  std::vector<Var> logit_terms;
  for (const auto& scores : val_scores) {
    Matrix col(m, 1);
    for (int i = 0; i < m; ++i) {
      const double p = std::clamp(scores[i], 1e-6, 1.0 - 1e-6);
      col(i, 0) = std::log(p / (1.0 - p));
    }
    logit_terms.push_back(MakeConstant(std::move(col)));
  }
  std::vector<double> targets(val_labels.begin(), val_labels.end());
  Var w = MakeParam(Matrix(1, n));
  AdamConfig acfg;
  acfg.learning_rate = 0.05;
  acfg.weight_decay = 0.0;
  Adam adam({w}, acfg);
  for (int step = 0; step < 150; ++step) {
    w->ZeroGrad();
    Backward(BceWithLogits(SoftmaxWeightedSum(logit_terms, w), targets));
    adam.Step();
  }
  Matrix norm = RowSoftmax(w->value);
  std::vector<double> out(n);
  for (int i = 0; i < n; ++i) out[i] = norm(0, i);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ahg::bench;
  const bool fast = FastMode(argc, argv);

  std::printf(
      "== Table VIII: link prediction AUC (citation analogs) ==\n"
      "Paper reference (AUC %%): best specialized baseline (WalkPooling) "
      "95.9/98.7/95.9;\n"
      "  D-ens 95.2/98.0/95.5, L-ens 95.9/98.6/96.4,\n"
      "  AutoHEnsGNN Ada. 97.3/99.7/97.6, Grad. 97.4/99.8/97.5 "
      "(Cora/Pubmed/Citeseer)\n"
      "Expected shape: hierarchical ensemble beats single encoders and flat "
      "ensembles.\n\n");

  const std::vector<std::string> datasets{"cora-syn", "pubmed-syn",
                                          "citeseer-syn"};
  const std::vector<std::pair<std::string, ModelFamily>> encoders{
      {"GCN-enc", ModelFamily::kGcn},
      {"SAGE-enc", ModelFamily::kSageMean},
      {"SGC-enc", ModelFamily::kSgc},
      {"GAT-enc", ModelFamily::kGat}};
  const int repeats = fast ? 1 : 2;
  const int k = 3;
  const int pool_n = 2;

  TrainConfig tcfg;
  tcfg.max_epochs = fast ? 10 : 35;
  tcfg.patience = 8;
  tcfg.learning_rate = 1e-2;

  std::vector<std::string> method_order;
  std::map<std::string, std::map<std::string, std::string>> cells;
  for (const std::string& name : datasets) {
    Graph graph = MakePresetGraph(name, /*seed=*/600 + name[0]);
    std::map<std::string, std::vector<double>> aucs;
    for (int rep = 0; rep < repeats; ++rep) {
      Rng rng(900 + 31 * rep);
      LinkSplit split = MakeLinkSplit(graph, 0.05, 0.10, &rng);
      const std::vector<int> val_labels =
          LinkLabels(static_cast<int>(split.val_pos.size()),
                     static_cast<int>(split.val_neg.size()));
      const std::vector<int> test_labels =
          LinkLabels(static_cast<int>(split.test_pos.size()),
                     static_cast<int>(split.test_neg.size()));

      // Single encoders (depth 2).
      struct EncoderRun {
        double val_auc;
        std::vector<double> val_scores, test_scores;
      };
      std::vector<EncoderRun> singles;
      for (size_t e = 0; e < encoders.size(); ++e) {
        ModelConfig mcfg;
        mcfg.family = encoders[e].second;
        mcfg.hidden_dim = 24;
        mcfg.num_layers = 2;
        mcfg.dropout = 0.1;
        mcfg.seed = 10 * (e + 1) + rep;
        TrainConfig run = tcfg;
        run.seed = mcfg.seed ^ 0x1ee7ULL;
        LinkTrainResult r = TrainLinkModel(mcfg, split, run);
        aucs[encoders[e].first].push_back(r.test_auc);
        singles.push_back({r.val_auc, r.val_scores, r.test_scores});
      }

      // Pool: top-N encoders by validation AUC.
      std::vector<int> order(encoders.size());
      for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
      std::sort(order.begin(), order.end(), [&](int a, int b) {
        return singles[a].val_auc > singles[b].val_auc;
      });
      order.resize(pool_n);

      std::vector<std::vector<double>> pool_val, pool_test;
      for (int idx : order) {
        pool_val.push_back(singles[idx].val_scores);
        pool_test.push_back(singles[idx].test_scores);
      }
      aucs["D-ensemble"].push_back(
          RocAuc(AverageScores(pool_test), test_labels));
      std::vector<double> learned = LearnScoreWeights(pool_val, val_labels);
      aucs["L-ensemble"].push_back(
          RocAuc(WeightedScores(pool_test, learned), test_labels));

      // AutoHEnsGNN: per encoder family, probe depths 1..3, take the best,
      // train K = 3 seeds at that depth, average (GSE), then combine with
      // adaptive or validation-learned beta.
      std::vector<std::vector<double>> gse_val, gse_test;
      std::vector<double> gse_val_auc;
      for (int idx : order) {
        double best_val = -1.0;
        int best_depth = 2;
        for (int depth = 1; depth <= 3; ++depth) {
          ModelConfig probe;
          probe.family = encoders[idx].second;
          probe.hidden_dim = 16;
          probe.num_layers = depth;
          probe.dropout = 0.1;
          probe.seed = 777 + depth;
          TrainConfig run = tcfg;
          run.max_epochs = tcfg.max_epochs / 2 + 2;
          LinkTrainResult r = TrainLinkModel(probe, split, run);
          if (r.val_auc > best_val) {
            best_val = r.val_auc;
            best_depth = depth;
          }
        }
        std::vector<std::vector<double>> member_val, member_test;
        for (int seed = 0; seed < k; ++seed) {
          ModelConfig mcfg;
          mcfg.family = encoders[idx].second;
          mcfg.hidden_dim = 24;
          mcfg.num_layers = best_depth;
          mcfg.dropout = 0.1;
          mcfg.seed = 3000 + 100 * idx + seed;
          TrainConfig run = tcfg;
          run.seed = mcfg.seed ^ 0xfeedULL;
          LinkTrainResult r = TrainLinkModel(mcfg, split, run);
          member_val.push_back(std::move(r.val_scores));
          member_test.push_back(std::move(r.test_scores));
        }
        gse_val.push_back(AverageScores(member_val));
        gse_test.push_back(AverageScores(member_test));
        gse_val_auc.push_back(RocAuc(gse_val.back(), val_labels));
      }
      std::vector<double> ada_beta =
          AdaptiveBeta(gse_val_auc, graph.AverageDegree(), 3, 8000, 5);
      aucs["AutoHEnsGNN(Adaptive)"].push_back(
          RocAuc(WeightedScores(gse_test, ada_beta), test_labels));
      std::vector<double> grad_beta = LearnScoreWeights(gse_val, val_labels);
      aucs["AutoHEnsGNN(Gradient)"].push_back(
          RocAuc(WeightedScores(gse_test, grad_beta), test_labels));
    }
    for (const auto& [method, values] : aucs) {
      if (cells.find(method) == cells.end()) method_order.push_back(method);
      cells[method][name] = MeanStdCell(values);
    }
    std::printf("[dataset %s done]\n", name.c_str());
  }

  std::printf("\nMeasured AUC (mean±std over %d repeats):\n", repeats);
  TablePrinter table({"Method", "Cora*", "Pubmed*", "Citeseer*"});
  for (const std::string& method : method_order) {
    std::vector<std::string> row{method};
    for (const std::string& d : datasets) row.push_back(cells[method][d]);
    table.AddRow(std::move(row));
  }
  table.Print();
  return 0;
}
