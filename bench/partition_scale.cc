// Partition memory-scaling bench: proves the ISSUE-9 headline — the peak
// resident footprint of partitioned serving scales like ~1/K plus the halo
// appendix, against the replicated-shard baseline that copies the whole
// graph per shard.
//
// Phases, per part count (default {1, 2, 4}):
//   conformance  every measured engine must answer bitwise identical to a
//                lone InferenceEngine on a node sample — always asserted;
//                any mismatch exits non-zero so CI gates on it
//   replicated   AllocTracker peak delta of one full Graph copy + engine +
//                Warm: what ONE shard of the replicated fabric keeps
//                resident (the fabric multiplies this by num_shards)
//   partitioned  AllocTracker peak delta of PartitionedEngine::Create +
//                Warm at K parts, divided by K = per-part resident peak;
//                PartResidentBytes() reports the steady-state per-part
//                bytes (features + local CSR + per-version states)
//
// The gate: at the largest part count the per-part partitioned peak must
// be <= max_part_fraction (default 0.45) of the replicated per-shard peak.
// The halo appendix is why the bound is 0.45 and not 0.25 at K=4.
//
// Usage: partition_scale [--fast] [--parts N] [--json-out FILE]
//                        [--max-part-fraction F]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "common/bench_util.h"
#include "graph/synthetic.h"
#include "nn/linear.h"
#include "partition/partitioned_engine.h"
#include "serve/inference_engine.h"
#include "serve/model_registry.h"
#include "tensor/alloc_tracker.h"
#include "util/string_util.h"

namespace ahg::partition {
namespace {

struct PartReport {
  int part = 0;
  int owned = 0;
  int halo = 0;
  int64_t resident_bytes = 0;
};

struct RunReport {
  int parts = 0;
  double edge_cut_fraction = 0.0;
  double balance_factor = 1.0;
  int halo_nodes = 0;
  int64_t build_peak_bytes = 0;      // AllocTracker peak delta, whole build
  int64_t per_part_peak_bytes = 0;   // build_peak_bytes / parts
  double fraction_of_replicated = 0.0;
  std::vector<PartReport> per_part;
};

bool CheckConformance(PartitionedEngine* engine, const Matrix& reference,
                      const serve::ServableModel& model, int num_nodes,
                      int sample, uint64_t seed) {
  Rng rng(seed);
  std::vector<int> nodes;
  nodes.reserve(static_cast<size_t>(sample));
  for (int i = 0; i < sample; ++i) {
    nodes.push_back(static_cast<int>(rng.UniformInt(num_nodes)));
  }
  auto got = engine->PredictNodes(model, nodes);
  if (!got.ok()) {
    std::fprintf(stderr, "conformance forward failed: %s\n",
                 got.status().ToString().c_str());
    return false;
  }
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (std::memcmp(got.value().Row(static_cast<int>(i)),
                    reference.Row(nodes[i]),
                    static_cast<size_t>(reference.cols()) * sizeof(double)) !=
        0) {
      std::fprintf(stderr,
                   "conformance MISMATCH: parts=%d node=%d is not bitwise "
                   "identical to the single-engine reference\n",
                   engine->num_parts(), nodes[i]);
      return false;
    }
  }
  return true;
}

std::string JsonReport(const SyntheticConfig& cfg, bool fast, uint64_t seed,
                       const std::vector<int>& part_counts,
                       int conformance_sample, bool conformance_pass,
                       int64_t replicated_peak_bytes,
                       const std::vector<RunReport>& runs,
                       double max_part_fraction, bool fraction_pass) {
  std::string json = "{\n";
  json += "  \"bench\": \"partition_scale\",\n";
  json += "  \"schema_version\": 1,\n";
  json += StrFormat(
      "  \"config\": {\"num_nodes\": %d, \"feature_dim\": %d, "
      "\"num_classes\": %d, \"avg_degree\": %.1f, \"fast\": %s, "
      "\"seed\": %llu, \"part_counts\": [",
      cfg.num_nodes, cfg.feature_dim, cfg.num_classes, cfg.avg_degree,
      fast ? "true" : "false", static_cast<unsigned long long>(seed));
  for (size_t i = 0; i < part_counts.size(); ++i) {
    json += (i ? ", " : "") + std::to_string(part_counts[i]);
  }
  json += "]},\n";
  json += StrFormat(
      "  \"conformance\": {\"checked_nodes\": %d, \"bitwise_identical\": "
      "%s},\n",
      conformance_sample, conformance_pass ? "true" : "false");
  json += StrFormat("  \"replicated_peak_bytes\": %lld,\n",
                    static_cast<long long>(replicated_peak_bytes));
  json += "  \"runs\": [\n";
  for (size_t r = 0; r < runs.size(); ++r) {
    const RunReport& run = runs[r];
    json += StrFormat(
        "    {\"parts\": %d, \"edge_cut_fraction\": %.4f, "
        "\"balance_factor\": %.4f, \"halo_nodes\": %d, "
        "\"build_peak_bytes\": %lld, \"per_part_peak_bytes\": %lld, "
        "\"fraction_of_replicated\": %.4f, \"per_part\": [",
        run.parts, run.edge_cut_fraction, run.balance_factor, run.halo_nodes,
        static_cast<long long>(run.build_peak_bytes),
        static_cast<long long>(run.per_part_peak_bytes),
        run.fraction_of_replicated);
    for (size_t p = 0; p < run.per_part.size(); ++p) {
      const PartReport& part = run.per_part[p];
      json += StrFormat(
          "%s{\"part\": %d, \"owned\": %d, \"halo\": %d, "
          "\"resident_bytes\": %lld}",
          p ? ", " : "", part.part, part.owned, part.halo,
          static_cast<long long>(part.resident_bytes));
    }
    json += "]}";
    json += (r + 1 < runs.size()) ? ",\n" : "\n";
  }
  json += "  ],\n";
  json += StrFormat(
      "  \"assertions\": {\"conformance_pass\": %s, \"max_part_fraction\": "
      "%.2f, \"fraction_measured\": %.4f, \"fraction_pass\": %s}\n",
      conformance_pass ? "true" : "false", max_part_fraction,
      runs.empty() ? 0.0 : runs.back().fraction_of_replicated,
      fraction_pass ? "true" : "false");
  json += "}\n";
  return json;
}

int Main(int argc, char** argv) {
  const bool fast = ahg::bench::FastMode(argc, argv);
  int parts_flag = 0;
  std::string json_out;
  double max_part_fraction = 0.45;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--parts") == 0 && i + 1 < argc) {
      parts_flag = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--json-out") == 0 && i + 1 < argc) {
      json_out = argv[++i];
    } else if (std::strcmp(argv[i], "--max-part-fraction") == 0 &&
               i + 1 < argc) {
      max_part_fraction = std::atof(argv[++i]);
    }
  }
  std::vector<int> part_counts = {1, 2, 4};
  if (parts_flag > 0) {
    part_counts = {1};
    if (parts_flag != 1) part_counts.push_back(parts_flag);
  }

  // Same graph family as bench/fabric_load so the two artifacts compare
  // the same serving problem: replicate-per-shard vs partition-per-part.
  SyntheticConfig cfg;
  cfg.name = "partition-bench";
  cfg.num_nodes = fast ? 2000 : 50000;
  cfg.num_classes = 5;
  cfg.feature_dim = 32;
  cfg.avg_degree = 6.0;
  cfg.seed = 7;
  Graph graph = GenerateSbmGraph(cfg);

  ModelConfig model_cfg;
  model_cfg.family = ModelFamily::kGcn;
  model_cfg.in_dim = graph.feature_dim();
  model_cfg.hidden_dim = 32;
  model_cfg.num_layers = 2;
  model_cfg.seed = 11;
  std::unique_ptr<GnnModel> zoo = BuildModel(model_cfg);
  Rng head_rng(model_cfg.seed ^ 0x5ca1ab1eULL);
  Linear head(zoo->params(), model_cfg.hidden_dim, graph.num_classes(),
              /*bias=*/true, &head_rng);
  serve::ServableModel model;
  model.version = 1;
  model.num_classes = graph.num_classes();
  model.config = model_cfg;
  model.params = zoo->params()->Snapshot();

  serve::InferenceEngine reference(&graph, serve::EngineOptions{});
  auto reference_probs = reference.PredictAll(model);
  if (!reference_probs.ok()) {
    std::fprintf(stderr, "reference forward failed\n");
    return 1;
  }

  const uint64_t seed = 29;
  const int conformance_sample = fast ? 200 : 500;

  // Replicated baseline: what one shard of the replicated fabric keeps
  // resident — a full graph copy plus its engine's warmed state.
  int64_t replicated_peak = 0;
  {
    AllocTracker::ResetPeak();
    const int64_t before = AllocTracker::CurrentBytes();
    Graph replica = graph;  // the per-shard copy ServeGraph makes
    serve::InferenceEngine engine(&replica, serve::EngineOptions{});
    auto warm = engine.PredictAll(model);
    if (!warm.ok()) {
      std::fprintf(stderr, "replicated warm failed\n");
      return 1;
    }
    replicated_peak = AllocTracker::PeakBytes() - before;
  }

  bool conformance_pass = true;
  std::vector<RunReport> runs;
  for (int parts : part_counts) {
    AllocTracker::ResetPeak();
    const int64_t before = AllocTracker::CurrentBytes();
    auto engine_or = PartitionedEngine::Create(graph, parts);
    if (!engine_or.ok()) {
      std::fprintf(stderr, "create failed: %s\n",
                   engine_or.status().ToString().c_str());
      return 1;
    }
    PartitionedEngine& engine = *engine_or.value();
    if (!engine.Warm(model).ok()) {
      std::fprintf(stderr, "partitioned warm failed\n");
      return 1;
    }
    const int64_t build_peak = AllocTracker::PeakBytes() - before;

    if (!CheckConformance(&engine, reference_probs.value(), model,
                          graph.num_nodes(), conformance_sample, seed)) {
      conformance_pass = false;
    }

    RunReport report;
    report.parts = parts;
    report.edge_cut_fraction = engine.plan().metrics.edge_cut_fraction;
    report.balance_factor = engine.plan().metrics.balance_factor;
    report.halo_nodes = engine.plan().halo_nodes_total;
    report.build_peak_bytes = build_peak;
    report.per_part_peak_bytes = build_peak / parts;
    report.fraction_of_replicated =
        replicated_peak > 0 ? static_cast<double>(report.per_part_peak_bytes) /
                                  static_cast<double>(replicated_peak)
                            : 0.0;
    for (int p = 0; p < parts; ++p) {
      PartReport part_report;
      part_report.part = p;
      part_report.owned = engine.plan().parts[p].num_owned();
      part_report.halo = engine.plan().parts[p].num_halo();
      part_report.resident_bytes = engine.PartResidentBytes(p);
      report.per_part.push_back(part_report);
    }
    runs.push_back(std::move(report));
  }

  ahg::bench::TablePrinter table({"parts", "cut_frac", "balance", "halo",
                                  "per_part_peak_mb", "vs_replicated"});
  for (const RunReport& run : runs) {
    table.AddRow({std::to_string(run.parts),
                  StrFormat("%.4f", run.edge_cut_fraction),
                  StrFormat("%.3f", run.balance_factor),
                  std::to_string(run.halo_nodes),
                  StrFormat("%.2f", static_cast<double>(
                                        run.per_part_peak_bytes) /
                                        (1024.0 * 1024.0)),
                  StrFormat("%.3fx", run.fraction_of_replicated)});
  }
  table.Print();
  std::printf("\nreplicated per-shard peak: %.2f MB\n",
              static_cast<double>(replicated_peak) / (1024.0 * 1024.0));
  std::printf("conformance (bitwise vs single engine, %d nodes x %zu part "
              "counts): %s\n",
              conformance_sample, part_counts.size(),
              conformance_pass ? "PASS" : "FAIL");

  const bool fraction_pass =
      !runs.empty() && runs.back().parts >= 2 &&
      runs.back().fraction_of_replicated <= max_part_fraction;
  const std::string json = JsonReport(
      cfg, fast, seed, part_counts, conformance_sample, conformance_pass,
      replicated_peak, runs, max_part_fraction,
      runs.empty() || runs.back().parts < 2 ? true : fraction_pass);
  if (!json_out.empty()) {
    std::ofstream out(json_out);
    out << json;
    if (!out.good()) {
      std::fprintf(stderr, "failed to write %s\n", json_out.c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_out.c_str());
  } else {
    std::fputs(json.c_str(), stdout);
  }

  if (!conformance_pass) {
    std::fprintf(stderr,
                 "FAIL: partitioned serving is not bitwise conformant\n");
    return 1;
  }
  if (!runs.empty() && runs.back().parts >= 2 && !fraction_pass) {
    std::fprintf(stderr,
                 "FAIL: per-part peak at %d parts is %.3fx the replicated "
                 "per-shard peak (required <= %.2fx)\n",
                 runs.back().parts, runs.back().fraction_of_replicated,
                 max_part_fraction);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace ahg::partition

int main(int argc, char** argv) { return ahg::partition::Main(argc, argv); }
