// Fabric load bench: a seeded, deterministic traffic simulator driving the
// sharded serving fabric, reporting a GNNBENCH-style JSON artifact.
//
// Phases, per shard count (default {1, 2, 4}; --shards N runs {1, N}):
//   conformance  a node sample served through the fabric must be bitwise
//                identical to a single unsharded InferenceEngine — always
//                asserted; any mismatch exits non-zero so CI gates on it
//   closed loop  K clients issue think-time-0 queries back to back for a
//                fixed wall-clock window: completed / elapsed = the
//                fabric's saturation QPS at that shard count
//   open loop    the simulator's nonhomogeneous Poisson schedule (zipfian
//                node popularity, diurnal sinusoid, burst windows) is
//                replayed on the wall clock; per-shard p50/p99 latency,
//                cache hit rate and router shed counts are reported
//
// The scaling ratio (saturation at N shards / at 1 shard) is always
// reported; --assert-scaling additionally fails the run when the largest
// shard count does not reach >= 2x — opt-in because the bound is only
// meaningful on a multi-core host (CI smoke runs are single-core).
//
// Usage: fabric_load [--fast] [--shards N] [--json-out FILE]
//                    [--assert-scaling] [--trace-out F] [--metrics-out F]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/bench_util.h"
#include "fabric/fabric.h"
#include "fabric/loadgen.h"
#include "graph/synthetic.h"
#include "nn/linear.h"
#include "serve/inference_engine.h"
#include "serve/model_registry.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace ahg::fabric {
namespace {

struct ShardReport {
  int shard = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double cache_hit_rate = 0.0;
  int64_t completed = 0;
};

struct RunReport {
  int shards = 0;
  double saturation_qps = 0.0;
  double scaling = 1.0;           // vs the 1-shard run
  double offered_qps = 0.0;       // open-loop envelope average
  int64_t open_completed = 0;
  int64_t open_shed = 0;
  std::vector<ShardReport> per_shard;
};

FabricOptions MakeFabricOptions(int shards) {
  FabricOptions options;
  options.num_shards = shards;
  options.batcher.max_batch_size = 16;
  options.batcher.deadline_ms = 0.0;  // latency is measured, not enforced
  options.batcher.max_queue_delay_ms = 1.0;
  options.batcher.num_threads = 1;
  options.router_queue_limit = 512;
  return options;
}

// Serves `graph` at `shards` shards and verifies a sampled node set against
// the reference rows bitwise. Returns false on any mismatch.
bool CheckConformance(const Graph& graph, const serve::ModelRegistry& registry,
                      const Matrix& reference, int shards, int sample,
                      uint64_t seed) {
  ServingFabric fabric(MakeFabricOptions(shards));
  if (!fabric.ServeGraph(&graph, &registry).ok()) return false;
  Rng rng(seed);
  std::vector<int> nodes;
  nodes.reserve(static_cast<size_t>(sample));
  for (int i = 0; i < sample; ++i) {
    nodes.push_back(static_cast<int>(rng.UniformInt(graph.num_nodes())));
  }
  std::vector<std::future<serve::QueryResult>> futures;
  futures.reserve(nodes.size());
  for (int node : nodes) futures.push_back(fabric.Query(node));
  fabric.Drain();
  for (size_t i = 0; i < nodes.size(); ++i) {
    serve::QueryResult result = futures[i].get();
    if (!result.status.ok()) {
      std::fprintf(stderr, "conformance query failed: %s\n",
                   result.status.ToString().c_str());
      return false;
    }
    if (static_cast<int>(result.probs.size()) != reference.cols() ||
        std::memcmp(result.probs.data(), reference.Row(nodes[i]),
                    result.probs.size() * sizeof(double)) != 0) {
      std::fprintf(stderr,
                   "conformance MISMATCH: shards=%d node=%d is not bitwise "
                   "identical to the single-engine reference\n",
                   shards, nodes[i]);
      return false;
    }
  }
  return true;
}

// Closed loop: `clients` threads issue think-time-0 queries for `seconds`.
double MeasureSaturation(ServingFabric* fabric, TrafficSimulator* sim,
                         int clients, double seconds) {
  std::atomic<bool> stop{false};
  std::atomic<int64_t> completed{0};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  Stopwatch watch;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([fabric, sim, c, &stop, &completed] {
      while (!stop.load(std::memory_order_relaxed)) {
        const Arrival query = sim->NextQuery(c);
        if (fabric->Query(query.node).get().status.ok()) {
          completed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true);
  for (std::thread& t : threads) t.join();
  fabric->Drain();
  return static_cast<double>(completed.load()) / watch.ElapsedSeconds();
}

// Open loop: replay the simulator's schedule on the wall clock.
void ReplayOpenLoop(ServingFabric* fabric, const TrafficSimulator& sim,
                    RunReport* report) {
  const std::vector<Arrival> schedule = sim.OpenLoopSchedule();
  std::vector<std::future<serve::QueryResult>> futures;
  futures.reserve(schedule.size());
  const auto start = std::chrono::steady_clock::now();
  for (const Arrival& arrival : schedule) {
    std::this_thread::sleep_until(
        start + std::chrono::duration<double, std::milli>(arrival.time_ms));
    futures.push_back(fabric->Query(arrival.node));
  }
  fabric->Drain();
  for (auto& future : futures) {
    const serve::QueryResult result = future.get();
    if (result.status.ok()) {
      ++report->open_completed;
    } else if (result.status.code() == Status::Code::kResourceExhausted) {
      ++report->open_shed;
    }
  }
}

std::string JsonReport(const SyntheticConfig& cfg, bool fast, uint64_t seed,
                       const TrafficOptions& traffic,
                       const std::vector<int>& shard_counts,
                       int conformance_sample, bool conformance_pass,
                       const std::vector<RunReport>& runs,
                       bool scaling_asserted, double scaling_required) {
  std::string json = "{\n";
  json += "  \"bench\": \"fabric_load\",\n";
  json += "  \"schema_version\": 1,\n";
  json += StrFormat(
      "  \"config\": {\"num_nodes\": %d, \"feature_dim\": %d, "
      "\"num_classes\": %d, \"fast\": %s, \"seed\": %llu, "
      "\"zipf_exponent\": %.3f, \"base_qps\": %.1f, \"duration_s\": %.3f, "
      "\"burst_multiplier\": %.2f, \"shard_counts\": [",
      cfg.num_nodes, cfg.feature_dim, cfg.num_classes, fast ? "true" : "false",
      static_cast<unsigned long long>(seed), traffic.zipf_exponent,
      traffic.base_qps, traffic.duration_s, traffic.burst_multiplier);
  for (size_t i = 0; i < shard_counts.size(); ++i) {
    json += (i ? ", " : "") + std::to_string(shard_counts[i]);
  }
  json += "]},\n";
  json += StrFormat(
      "  \"conformance\": {\"checked_nodes\": %d, \"bitwise_identical\": "
      "%s},\n",
      conformance_sample, conformance_pass ? "true" : "false");
  json += "  \"runs\": [\n";
  for (size_t r = 0; r < runs.size(); ++r) {
    const RunReport& run = runs[r];
    json += StrFormat(
        "    {\"shards\": %d, \"saturation_qps\": %.1f, "
        "\"scaling_vs_one_shard\": %.3f, \"open_loop\": {\"offered_qps\": "
        "%.1f, \"completed\": %lld, \"shed\": %lld}, \"per_shard\": [",
        run.shards, run.saturation_qps, run.scaling, run.offered_qps,
        static_cast<long long>(run.open_completed),
        static_cast<long long>(run.open_shed));
    for (size_t s = 0; s < run.per_shard.size(); ++s) {
      const ShardReport& shard = run.per_shard[s];
      json += StrFormat(
          "%s{\"shard\": %d, \"p50_ms\": %.4f, \"p99_ms\": %.4f, "
          "\"cache_hit_rate\": %.4f, \"completed\": %lld}",
          s ? ", " : "", shard.shard, shard.p50_ms, shard.p99_ms,
          shard.cache_hit_rate, static_cast<long long>(shard.completed));
    }
    json += "]}";
    json += (r + 1 < runs.size()) ? ",\n" : "\n";
  }
  json += "  ],\n";
  json += StrFormat(
      "  \"assertions\": {\"conformance_pass\": %s, \"scaling_asserted\": "
      "%s, \"scaling_required\": %.1f, \"scaling_measured\": %.3f}\n",
      conformance_pass ? "true" : "false", scaling_asserted ? "true" : "false",
      scaling_required, runs.empty() ? 0.0 : runs.back().scaling);
  json += "}\n";
  return json;
}

int Main(int argc, char** argv) {
  const bool fast = ahg::bench::FastMode(argc, argv);
  const ahg::bench::ObsFlags obs_flags = ahg::bench::ParseObsFlags(argc, argv);
  int shards_flag = 0;
  std::string json_out;
  bool assert_scaling = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards_flag = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--json-out") == 0 && i + 1 < argc) {
      json_out = argv[++i];
    } else if (std::strcmp(argv[i], "--assert-scaling") == 0) {
      assert_scaling = true;
    }
  }
  std::vector<int> shard_counts = {1, 2, 4};
  if (shards_flag > 0) {
    shard_counts = {1};
    if (shards_flag != 1) shard_counts.push_back(shards_flag);
  }

  SyntheticConfig cfg;
  cfg.name = "fabric-bench";
  cfg.num_nodes = fast ? 2000 : 50000;
  cfg.num_classes = 5;
  cfg.feature_dim = 32;
  cfg.avg_degree = 6.0;
  cfg.seed = 7;
  Graph graph = GenerateSbmGraph(cfg);

  ModelConfig model_cfg;
  model_cfg.family = ModelFamily::kGcn;
  model_cfg.in_dim = graph.feature_dim();
  model_cfg.hidden_dim = 32;
  model_cfg.num_layers = 2;
  model_cfg.seed = 11;
  std::unique_ptr<GnnModel> zoo = BuildModel(model_cfg);
  Rng head_rng(model_cfg.seed ^ 0x5ca1ab1eULL);
  Linear head(zoo->params(), model_cfg.hidden_dim, graph.num_classes(),
              /*bias=*/true, &head_rng);

  const char* tmp = std::getenv("TMPDIR");
  const std::string dir =
      std::string(tmp ? tmp : "/tmp") + "/fabric_load_registry";
  std::filesystem::remove_all(dir);
  if (!serve::ModelRegistry::Publish(dir, 1, model_cfg,
                                     zoo->params()->Snapshot(),
                                     graph.num_classes())
           .ok()) {
    std::fprintf(stderr, "publish failed\n");
    return 1;
  }
  serve::ModelRegistry registry(dir);
  if (!registry.Refresh().ok() ||
      !registry.ValidateCompatibility(graph).ok()) {
    std::fprintf(stderr, "registry load failed\n");
    return 1;
  }

  // Single-engine reference rows for the conformance gate.
  serve::InferenceEngine reference(&graph, serve::EngineOptions{});
  auto reference_probs = reference.PredictAll(*registry.Active());
  if (!reference_probs.ok()) {
    std::fprintf(stderr, "reference forward failed\n");
    return 1;
  }

  const uint64_t seed = 29;
  const int conformance_sample = fast ? 200 : 500;
  bool conformance_pass = true;
  for (int shards : shard_counts) {
    if (!CheckConformance(graph, registry, reference_probs.value(), shards,
                          conformance_sample, seed)) {
      conformance_pass = false;
    }
  }

  TrafficOptions traffic;
  traffic.seed = seed;
  traffic.num_nodes = graph.num_nodes();
  traffic.zipf_exponent = 0.99;
  traffic.duration_s = fast ? 0.5 : 2.0;
  traffic.base_qps = fast ? 800.0 : 2000.0;
  traffic.diurnal_amplitude = 0.5;
  traffic.diurnal_period_s = traffic.duration_s;
  traffic.burst_multiplier = 2.0;
  traffic.burst_fraction = 0.2;
  traffic.num_bursts = 2;
  traffic.closed_loop_clients = 4;

  const double closed_seconds = fast ? 0.4 : 2.0;
  std::vector<RunReport> runs;
  for (int shards : shard_counts) {
    TrafficSimulator sim(traffic);
    ServingFabric fabric(MakeFabricOptions(shards));
    if (!fabric.ServeGraph(&graph, &registry).ok()) return 1;
    // Rollout(1) warms every shard's propagation product, so both phases
    // measure steady state instead of the one-time precompute.
    if (!fabric.Rollout(1).ok()) return 1;

    RunReport report;
    report.shards = shards;
    report.saturation_qps = MeasureSaturation(
        &fabric, &sim, traffic.closed_loop_clients, closed_seconds);
    report.scaling =
        runs.empty() ? 1.0 : report.saturation_qps / runs[0].saturation_qps;

    // Latency phase starts from clean per-shard counters.
    for (int s = 0; s < shards; ++s) fabric.shard(s).stats().Reset();
    ReplayOpenLoop(&fabric, sim, &report);
    report.offered_qps = sim.ExpectedOpenLoopArrivals() / traffic.duration_s;
    for (int s = 0; s < shards; ++s) {
      const serve::ServeStatsSnapshot snap =
          fabric.shard(s).stats().Snapshot();
      ShardReport shard_report;
      shard_report.shard = s;
      shard_report.p50_ms = snap.p50_latency_ms;
      shard_report.p99_ms = snap.p99_latency_ms;
      const int64_t lookups = snap.cache_hits + snap.cache_misses;
      shard_report.cache_hit_rate =
          lookups > 0 ? static_cast<double>(snap.cache_hits) / lookups : 0.0;
      shard_report.completed = snap.completed;
      report.per_shard.push_back(shard_report);
    }
    runs.push_back(std::move(report));
  }

  ahg::bench::TablePrinter table({"shards", "saturation_qps", "scaling",
                                  "open_completed", "open_shed", "p50_ms",
                                  "p99_ms", "hit_rate"});
  for (const RunReport& run : runs) {
    double p50 = 0.0, p99 = 0.0, hit = 0.0;
    for (const ShardReport& s : run.per_shard) {
      p50 = std::max(p50, s.p50_ms);
      p99 = std::max(p99, s.p99_ms);
      hit += s.cache_hit_rate;
    }
    if (!run.per_shard.empty()) hit /= static_cast<double>(run.per_shard.size());
    table.AddRow({std::to_string(run.shards),
                  StrFormat("%.1f", run.saturation_qps),
                  StrFormat("%.2fx", run.scaling),
                  std::to_string(run.open_completed),
                  std::to_string(run.open_shed), StrFormat("%.4f", p50),
                  StrFormat("%.4f", p99), StrFormat("%.3f", hit)});
  }
  table.Print();
  std::printf("\nconformance (bitwise vs single engine, %d nodes x %zu "
              "shard counts): %s\n",
              conformance_sample, shard_counts.size(),
              conformance_pass ? "PASS" : "FAIL");

  const double scaling_required = 2.0;
  const std::string json = JsonReport(
      cfg, fast, seed, traffic, shard_counts, conformance_sample,
      conformance_pass, runs, assert_scaling, scaling_required);
  if (!json_out.empty()) {
    std::ofstream out(json_out);
    out << json;
    if (!out.good()) {
      std::fprintf(stderr, "failed to write %s\n", json_out.c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_out.c_str());
  } else {
    std::fputs(json.c_str(), stdout);
  }
  if (!ahg::bench::FlushObsOutputs(obs_flags)) return 1;

  if (!conformance_pass) {
    std::fprintf(stderr, "FAIL: sharded serving is not bitwise conformant\n");
    return 1;
  }
  if (assert_scaling && !runs.empty() &&
      runs.back().scaling < scaling_required) {
    std::fprintf(stderr,
                 "FAIL: %d-shard saturation scaling %.2fx below the "
                 "required %.1fx (run on a multi-core host)\n",
                 runs.back().shards, runs.back().scaling, scaling_required);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace ahg::fabric

int main(int argc, char** argv) { return ahg::fabric::Main(argc, argv); }
