// Extra ablation (beyond the paper's tables): full-batch vs neighbor-
// sampled mini-batch training on the arxiv analog — the scalability lever
// DESIGN.md calls out. Mini-batching should stay within a couple points of
// full-batch accuracy while bounding the per-step working set (peak tensor
// memory) well below the full-graph tape.
#include <cstdio>

#include "common/bench_util.h"
#include "graph/synthetic.h"
#include "tasks/train_node_minibatch.h"
#include "tensor/alloc_tracker.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  using namespace ahg;
  using namespace ahg::bench;
  const bool fast = FastMode(argc, argv);

  std::printf(
      "== Ablation: full-batch vs neighbor-sampled mini-batch (arxiv "
      "analog) ==\n"
      "Expected shape: comparable accuracy; mini-batch bounds the per-step "
      "tape memory.\n\n");

  Graph graph = MakePresetGraph("arxiv-syn", /*seed=*/2022);
  Rng rng(3);
  DataSplit split = RandomSplit(graph, 0.5, 0.2, &rng);
  ModelConfig mcfg;
  mcfg.family = ModelFamily::kSageMean;
  mcfg.hidden_dim = 24;
  mcfg.num_layers = 2;
  mcfg.dropout = 0.2;
  mcfg.seed = 4;
  TrainConfig tcfg = DefaultBenchTrain();
  tcfg.max_epochs = fast ? 4 : 25;
  tcfg.patience = 6;
  tcfg.lr_decay_every = 6;

  TablePrinter table({"Trainer", "test acc", "train (s)", "peak (MB)"});
  {
    AllocTracker::ResetPeak();
    NodeTrainResult full = TrainSingleNodeModel(mcfg, graph, split, tcfg);
    table.AddRow({"full-batch", FormatFloat(100 * full.test_accuracy, 1),
                  FormatFloat(full.train_seconds, 1),
                  FormatFloat(AllocTracker::PeakBytes() / 1048576.0, 1)});
  }
  for (int batch_size : {512, 2048}) {
    MinibatchConfig mb;
    mb.batch_size = batch_size;
    mb.fanout = 8;
    AllocTracker::ResetPeak();
    NodeTrainResult mini =
        TrainSingleNodeModelMinibatch(mcfg, graph, split, tcfg, mb);
    table.AddRow({StrFormat("mini-batch %d @ fanout 8", batch_size),
                  FormatFloat(100 * mini.test_accuracy, 1),
                  FormatFloat(mini.train_seconds, 1),
                  FormatFloat(AllocTracker::PeakBytes() / 1048576.0, 1)});
  }
  table.Print();
  std::printf("\nNote: mini-batch peak includes the periodic full-graph "
              "evaluation forward; per-step training memory is the batch "
              "closure only.\n");
  return 0;
}
