// Table VI: runtime statistics on the ogbn-arxiv analog — wall-clock time
// and peak tensor memory per pipeline stage (model selection / search /
// training) for AutoHEnsGNN Adaptive & Gradient, the L/D-ensemble and Goyal
// baselines (shared selection + plain training), Ensemble+PE, and the naive
// ensemble of the full candidate zoo without proxy evaluation.
//
// The paper measures GPU memory with nvidia-smi; we reproduce the column
// with the tensor engine's allocation tracker (peak bytes of live matrices).
#include <cstdio>
#include <cstring>
#include <string>

#include "common/bench_util.h"
#include "core/proxy_eval.h"
#include "core/search_adaptive.h"
#include "core/search_gradient.h"
#include "core/hierarchical.h"
#include "graph/synthetic.h"
#include "tensor/alloc_tracker.h"
#include "tensor/pool.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace {

double PeakMb() {
  return static_cast<double>(ahg::AllocTracker::PeakBytes()) / (1024.0 * 1024.0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ahg;
  using namespace ahg::bench;
  const bool fast = FastMode(argc, argv);
  std::string json_out;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json-out") == 0) json_out = argv[i + 1];
  }

  std::printf(
      "== Table VI: runtime statistics (arxiv analog) ==\n"
      "Paper reference (P40 GPU, seconds / peak GB):\n"
      "  selection 12410s@10.2G shared; Adaptive search 511s@2.8G, train "
      "8989s;\n"
      "  Gradient search 696s@6.9G, train 8121s; Ensemble w/o PE "
      "52730s@19.4G.\n"
      "Expected shape: PE cuts selection time/memory vs naive ensemble; "
      "Gradient search\n"
      "uses more memory but less total time than Adaptive; Ensemble+PE is "
      "cheapest overall.\n\n");

  Graph graph = MakePresetGraph("arxiv-syn", /*seed=*/2022);
  TrainConfig train = DefaultBenchTrain();
  train.max_epochs = fast ? 6 : 18;
  train.patience = 6;
  train.lr_decay_every = 6;
  std::vector<CandidateSpec> zoo;
  for (const char* name :
       {"GCN", "GAT", "GraphSAGE-mean", "SGC", "GCNII", "DAGNN", "TAGC",
        "APPNP"}) {
    CandidateSpec spec = FindCandidate(name);
    spec.config.hidden_dim = 24;
    zoo.push_back(spec);
  }
  const int pool_n = 2, k = 2;
  Rng rng(4);
  DataSplit split = RandomSplit(graph, 0.5, 0.2, &rng);

  TablePrinter table({"Method", "Select(s)", "SelPeak(MB)", "Search(s)",
                      "SearchPeak(MB)", "Train(s)", "TrainPeak(MB)",
                      "Total(s)"});

  // --- shared proxy-evaluation selection stage --------------------------
  AllocTracker::ResetPeak();
  Stopwatch sel_watch;
  ProxyConfig proxy;
  proxy.dataset_ratio = 0.3;
  proxy.bagging = 2;
  proxy.model_ratio = 0.5;
  proxy.train = train;
  ProxyEvalResult ranking = ProxyEvaluate(zoo, graph, proxy, /*seed=*/5);
  const double select_s = sel_watch.ElapsedSeconds();
  const double select_mb = PeakMb();
  std::vector<CandidateSpec> pool = SelectTopCandidates(ranking, pool_n);

  // --- naive ensemble: "accurate" evaluation of the whole zoo, no proxy --
  AllocTracker::ResetPeak();
  Stopwatch naive_watch;
  ProxyConfig accurate = proxy;
  accurate.dataset_ratio = 1.0;
  accurate.model_ratio = 1.0;
  accurate.bagging = 1;
  ProxyEvaluate(zoo, graph, accurate, /*seed=*/5);
  const double naive_s = naive_watch.ElapsedSeconds();
  const double naive_mb = PeakMb();
  table.AddRow({"Ensemble (no PE)", FormatFloat(naive_s, 1),
                FormatFloat(naive_mb, 1), "-", "-", "-", "-",
                FormatFloat(naive_s, 1)});

  // --- Ensemble + PE: selection plus one plain training pass per model --
  AllocTracker::ResetPeak();
  Stopwatch pe_train_watch;
  std::vector<SingleRun> pe_models =
      TrainSingles(graph, pool, split, /*bagging=*/1, 0.2, train, 7);
  const double pe_train_s = pe_train_watch.ElapsedSeconds();
  const double pe_train_mb = PeakMb();
  table.AddRow({"Ensemble + PE", FormatFloat(select_s, 1),
                FormatFloat(select_mb, 1), "-", "-",
                FormatFloat(pe_train_s, 1), FormatFloat(pe_train_mb, 1),
                FormatFloat(select_s + pe_train_s, 1)});

  // --- D/L-ensemble & Goyal: K-seed members per pool model, no search ---
  AllocTracker::ResetPeak();
  Stopwatch baseline_watch;
  for (const CandidateSpec& spec : pool) {
    std::vector<int> layers(k, spec.config.num_layers);
    TrainGse(spec, layers, graph, split, train, /*seed=*/11);
  }
  const double baseline_s = baseline_watch.ElapsedSeconds();
  const double baseline_mb = PeakMb();
  table.AddRow({"D/L-ens, Goyal", FormatFloat(select_s, 1),
                FormatFloat(select_mb, 1), "-", "-",
                FormatFloat(baseline_s, 1), FormatFloat(baseline_mb, 1),
                FormatFloat(select_s + baseline_s, 1)});

  // --- AutoHEnsGNN_Adaptive ---------------------------------------------
  AllocTracker::ResetPeak();
  Stopwatch ada_search_watch;
  AdaptiveSearchConfig ada;
  ada.k = k;
  ada.train = train;
  ada.seed = 13;
  AdaptiveSearchResult ada_result = SearchAdaptive(pool, graph, split, ada);
  const double ada_search_s = ada_search_watch.ElapsedSeconds();
  const double ada_search_mb = PeakMb();
  AllocTracker::ResetPeak();
  Stopwatch ada_train_watch;
  TrainHierarchicalEnsemble(pool, ada_result.layers, ada_result.beta, graph,
                            split, train, /*seed=*/15);
  const double ada_train_s = ada_train_watch.ElapsedSeconds();
  const double ada_train_mb = PeakMb();
  table.AddRow({"AutoHEnsGNN(Adaptive)", FormatFloat(select_s, 1),
                FormatFloat(select_mb, 1), FormatFloat(ada_search_s, 1),
                FormatFloat(ada_search_mb, 1), FormatFloat(ada_train_s, 1),
                FormatFloat(ada_train_mb, 1),
                FormatFloat(select_s + ada_search_s + ada_train_s, 1)});

  // --- AutoHEnsGNN_Gradient: joint search on the proxy model -------------
  AllocTracker::ResetPeak();
  Stopwatch grad_search_watch;
  GradientSearchConfig grad;
  grad.k = k;
  grad.max_epochs = fast ? 5 : 15;
  grad.train = train;
  grad.seed = 17;
  // The paper additionally shrinks the search stage with the proxy model;
  // we keep full width so the joint-co-training vs per-model-probing memory
  // contrast is visible at CPU scale.
  GradientSearchResult grad_result =
      SearchGradient(pool, graph, split, grad);
  const double grad_search_s = grad_search_watch.ElapsedSeconds();
  const double grad_search_mb = PeakMb();
  AllocTracker::ResetPeak();
  Stopwatch grad_train_watch;
  TrainHierarchicalEnsemble(pool, grad_result.layers, grad_result.beta, graph,
                            split, train, /*seed=*/19);
  const double grad_train_s = grad_train_watch.ElapsedSeconds();
  const double grad_train_mb = PeakMb();
  table.AddRow({"AutoHEnsGNN(Gradient)", FormatFloat(select_s, 1),
                FormatFloat(select_mb, 1), FormatFloat(grad_search_s, 1),
                FormatFloat(grad_search_mb, 1), FormatFloat(grad_train_s, 1),
                FormatFloat(grad_train_mb, 1),
                FormatFloat(select_s + grad_search_s + grad_train_s, 1)});

  table.Print();
  std::printf(
      "\nNote: \"Peak\" is the tensor engine's live-allocation high-water "
      "mark (the CPU analog of the paper's nvidia-smi column).\n");

  // --- memory-plane fast path: the same training run with the MatrixPool
  // --- off and on. Peak includes pool-idle bytes (the GPU-allocator-pool
  // --- analog), so the pooled peak reflects resident memory honestly while
  // --- allocation count shows the heap-traffic reduction.
  const CandidateSpec mem_spec = FindCandidate("GCN");
  auto train_once = [&](bool pooling) {
    AllocTracker::ResetPeak();
    const int64_t allocs0 = AllocTracker::AllocationCount();
    TrainConfig tcfg = train;
    tcfg.pooling = pooling;
    tcfg.fusion = pooling;
    Stopwatch watch;
    TrainSingleNodeModel(mem_spec.config, graph, split, tcfg);
    struct {
      double seconds, peak_mb;
      long long allocs;
    } r{watch.ElapsedSeconds(), PeakMb(),
        static_cast<long long>(AllocTracker::AllocationCount() - allocs0)};
    return r;
  };
  const auto plain = train_once(false);
  const auto pooled = train_once(true);
  TablePrinter mem_table({"MemoryPlane", "Train(s)", "Peak(MB)", "Allocs"});
  mem_table.AddRow({"pooling off", FormatFloat(plain.seconds, 2),
                    FormatFloat(plain.peak_mb, 1),
                    std::to_string(plain.allocs)});
  mem_table.AddRow({"pooling+fusion on", FormatFloat(pooled.seconds, 2),
                    FormatFloat(pooled.peak_mb, 1),
                    std::to_string(pooled.allocs)});
  std::printf("\n");
  mem_table.Print();

  if (!json_out.empty()) {
    std::FILE* f = std::fopen(json_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_out.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"memory_plane\": {\n"
                 "    \"baseline\": {\"train_s\": %.3f, \"peak_mb\": %.1f, "
                 "\"allocs\": %lld},\n"
                 "    \"pooled\": {\"train_s\": %.3f, \"peak_mb\": %.1f, "
                 "\"allocs\": %lld}\n"
                 "  }\n"
                 "}\n",
                 plain.seconds, plain.peak_mb, plain.allocs, pooled.seconds,
                 pooled.peak_mb, pooled.allocs);
    std::fclose(f);
    std::printf("wrote %s\n", json_out.c_str());
  }
  return 0;
}
