// Figure 3: proxy-evaluation analysis on dataset A and the Cora analog.
// Three sweeps per dataset — proxy dataset ratio D_proxy, proxy bagging
// B_proxy, proxy model ratio M_proxy — reporting the Kendall rank
// correlation against accurate evaluation and the training-time speedup.
#include <cstdio>

#include "common/bench_util.h"
#include "core/proxy_eval.h"
#include "graph/synthetic.h"
#include "metrics/kendall.h"
#include "util/string_util.h"

namespace {

using namespace ahg;

std::vector<double> ScoresInPoolOrder(const std::vector<CandidateSpec>& pool,
                                      const ProxyEvalResult& result) {
  std::vector<double> scores;
  for (const CandidateSpec& spec : pool) {
    for (const CandidateScore& s : result.ranked) {
      if (s.name == spec.name) {
        scores.push_back(s.mean_val_accuracy);
        break;
      }
    }
  }
  return scores;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ahg::bench;
  const bool fast = FastMode(argc, argv);

  std::printf(
      "== Figure 3: proxy evaluation — Kendall tau & speedup ==\n"
      "Paper reference: D_proxy=30%% gives tau 0.836 (A) / 0.841 (Cora) at "
      "4.7x / 2.6x;\n"
      "  B_proxy=6 balances tau and variance; M_proxy=50%% gives tau "
      "0.758/0.795 at 10.4x/5.7x.\n"
      "Expected shape: tau rises and speedup falls as each proxy knob "
      "approaches 1.\n\n");

  // A diverse sub-zoo keeps the sweep affordable on one core.
  std::vector<CandidateSpec> pool;
  for (const char* name :
       {"GCN", "GAT", "GraphSAGE-mean", "GraphSAGE-pool", "TAGC", "SGC",
        "APPNP", "GCNII", "GIN", "MixHop", "DAGNN", "DNA"}) {
    pool.push_back(FindCandidate(name));
  }
  TrainConfig train = DefaultBenchTrain();
  train.max_epochs = fast ? 8 : 20;
  train.patience = 6;

  for (const char* dataset : {"A", "cora-syn"}) {
    Graph graph = MakePresetGraph(dataset, /*seed=*/42);
    std::printf("--- dataset %s ---\n", dataset);

    ProxyConfig accurate;
    accurate.dataset_ratio = 1.0;
    accurate.bagging = fast ? 1 : 3;
    accurate.model_ratio = 1.0;
    accurate.train = train;
    ProxyEvalResult accurate_result =
        ProxyEvaluate(pool, graph, accurate, /*seed=*/3);
    std::vector<double> accurate_scores =
        ScoresInPoolOrder(pool, accurate_result);
    std::printf("accurate evaluation: %.1fs\n",
                accurate_result.total_seconds);

    auto sweep = [&](const char* label, ProxyConfig cfg) {
      ProxyEvalResult r = ProxyEvaluate(pool, graph, cfg, /*seed=*/3);
      const double tau =
          KendallTau(ScoresInPoolOrder(pool, r), accurate_scores);
      std::printf("  %-22s tau=%.3f  speedup=%4.1fx  (%.1fs)\n", label, tau,
                  accurate_result.total_seconds / r.total_seconds,
                  r.total_seconds);
    };

    std::printf("sweep D_proxy (B=%d, M=0.5):\n", accurate.bagging);
    for (double d : {0.1, 0.3, 0.6, 1.0}) {
      ProxyConfig cfg = accurate;
      cfg.dataset_ratio = d;
      cfg.model_ratio = 0.5;
      sweep(StrFormat("D_proxy=%.0f%%", 100 * d).c_str(), cfg);
    }
    std::printf("sweep B_proxy (D=0.3, M=0.5):\n");
    for (int b : {1, 3, 6}) {
      if (fast && b > 3) continue;
      ProxyConfig cfg = accurate;
      cfg.dataset_ratio = 0.3;
      cfg.model_ratio = 0.5;
      cfg.bagging = b;
      sweep(StrFormat("B_proxy=%d", b).c_str(), cfg);
    }
    std::printf("sweep M_proxy (D=0.3, B=%d):\n", accurate.bagging);
    for (double m : {0.1, 0.5, 1.0}) {
      ProxyConfig cfg = accurate;
      cfg.dataset_ratio = 0.3;
      cfg.model_ratio = m;
      sweep(StrFormat("M_proxy=%.0f%%", 100 * m).c_str(), cfg);
    }
    std::printf("\n");
  }
  return 0;
}
