// google-benchmark microbenchmarks of the tensor/autodiff kernels the whole
// system is built on: GEMM, SpMM, the GAT edge-softmax aggregation, and a
// full GCN forward+backward step — plus a threads=1/2/4 sweep of the
// row-parallel SpMM/GEMM kernels on a 50k-node SBM graph that reports the
// parallel speedup directly (counters `speedup_vs_1t`).
//
// Accepts --trace-out FILE / --metrics-out FILE in addition to the standard
// google-benchmark flags (ours are stripped before benchmark::Initialize,
// which rejects flags it does not know).
#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "autodiff/graph_ops.h"
#include "common/bench_util.h"
#include "autodiff/ops.h"
#include "graph/synthetic.h"
#include "models/model.h"
#include "models/model_zoo.h"
#include "nn/linear.h"
#include "tensor/matrix.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace {

using namespace ahg;

void BM_MatMul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  Matrix a = Matrix::Gaussian(n, 64, 1.0, &rng);
  Matrix b = Matrix::Gaussian(64, 64, 1.0, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * int64_t{n} * 64 * 64);
}
BENCHMARK(BM_MatMul)->Arg(256)->Arg(1024)->Arg(4096);

const Graph& BenchGraph() {
  static const Graph* graph = [] {
    SyntheticConfig cfg;
    cfg.num_nodes = 3000;
    cfg.num_classes = 5;
    cfg.feature_dim = 64;
    cfg.avg_degree = 8.0;
    cfg.seed = 3;
    return new Graph(GenerateSbmGraph(cfg));
  }();
  return *graph;
}

void BM_Spmm(benchmark::State& state) {
  const Graph& g = BenchGraph();
  Rng rng(2);
  Matrix x = Matrix::Gaussian(g.num_nodes(), static_cast<int>(state.range(0)),
                              1.0, &rng);
  const SparseMatrix& adj = g.Adjacency(AdjacencyKind::kSymNorm);
  for (auto _ : state) {
    benchmark::DoNotOptimize(adj.Spmm(x));
  }
  state.SetItemsProcessed(state.iterations() * adj.nnz() * state.range(0));
}
BENCHMARK(BM_Spmm)->Arg(16)->Arg(64);

void BM_GatAggregate(benchmark::State& state) {
  const Graph& g = BenchGraph();
  Rng rng(4);
  const SparseMatrix& adj = g.Adjacency(AdjacencyKind::kRawSelfLoops);
  Var h = MakeConstant(Matrix::Gaussian(g.num_nodes(), 32, 1.0, &rng));
  Var s_src = MakeConstant(Matrix::Gaussian(g.num_nodes(), 1, 1.0, &rng));
  Var s_dst = MakeConstant(Matrix::Gaussian(g.num_nodes(), 1, 1.0, &rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(GatAggregate(adj, s_src, s_dst, h, 0.2));
  }
}
BENCHMARK(BM_GatAggregate);

void BM_GcnTrainStep(benchmark::State& state) {
  const Graph& g = BenchGraph();
  ModelConfig cfg;
  cfg.family = ModelFamily::kGcn;
  cfg.in_dim = g.feature_dim();
  cfg.hidden_dim = 32;
  cfg.num_layers = 2;
  cfg.dropout = 0.0;
  cfg.seed = 5;
  std::unique_ptr<GnnModel> model = BuildModel(cfg);
  Rng head_rng(6);
  Linear head(model->params(), 32, g.num_classes(), true, &head_rng);
  Var features = MakeConstant(g.features());
  std::vector<int> mask;
  for (int i = 0; i < g.num_nodes(); i += 3) mask.push_back(i);
  Rng dropout_rng(7);
  for (auto _ : state) {
    model->params()->ZeroGrad();
    GnnContext ctx{&g, true, &dropout_rng};
    Var logits = head.Apply(model->LayerOutputs(ctx, features).back());
    Var loss = MaskedCrossEntropy(logits, g.labels(), mask);
    Backward(loss);
    benchmark::DoNotOptimize(loss->value(0, 0));
  }
}
BENCHMARK(BM_GcnTrainStep);

// ---------------------------------------------------------------------------
// Thread-scaling sweep: the same kernels at threads = 1/2/4 on a graph big
// enough (50k nodes, ~800k directed edges) that row-parallelism dominates
// scheduling overhead. items_per_second across the /threads:N lines gives
// the scaling curve; BM_SpmmSpeedup additionally reports the ratio.
// ---------------------------------------------------------------------------

const Graph& BenchGraphLarge() {
  static const Graph* graph = [] {
    SyntheticConfig cfg;
    cfg.num_nodes = 50000;
    cfg.num_classes = 10;
    cfg.feature_dim = 16;
    cfg.avg_degree = 16.0;
    cfg.seed = 11;
    return new Graph(GenerateSbmGraph(cfg));
  }();
  return *graph;
}

void BM_SpmmThreads(benchmark::State& state) {
  ScopedNumThreads threads(static_cast<int>(state.range(0)));
  const Graph& g = BenchGraphLarge();
  Rng rng(12);
  Matrix x = Matrix::Gaussian(g.num_nodes(), 64, 1.0, &rng);
  const SparseMatrix& adj = g.Adjacency(AdjacencyKind::kSymNorm);
  for (auto _ : state) {
    benchmark::DoNotOptimize(adj.Spmm(x));
  }
  state.SetItemsProcessed(state.iterations() * adj.nnz() * 64);
}
BENCHMARK(BM_SpmmThreads)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_SpmmTransposedThreads(benchmark::State& state) {
  ScopedNumThreads threads(static_cast<int>(state.range(0)));
  const Graph& g = BenchGraphLarge();
  Rng rng(13);
  Matrix x = Matrix::Gaussian(g.num_nodes(), 64, 1.0, &rng);
  const SparseMatrix& adj = g.Adjacency(AdjacencyKind::kSymNorm);
  adj.TransposedCached();  // exclude the one-time transpose build
  for (auto _ : state) {
    benchmark::DoNotOptimize(adj.SpmmTransposed(x));
  }
  state.SetItemsProcessed(state.iterations() * adj.nnz() * 64);
}
BENCHMARK(BM_SpmmTransposedThreads)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_MatMulThreads(benchmark::State& state) {
  ScopedNumThreads threads(static_cast<int>(state.range(0)));
  Rng rng(14);
  Matrix a = Matrix::Gaussian(50000, 64, 1.0, &rng);
  Matrix b = Matrix::Gaussian(64, 64, 1.0, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * int64_t{50000} * 64 * 64);
}
BENCHMARK(BM_MatMulThreads)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_MatMulTransAThreads(benchmark::State& state) {
  // The backward GEMM (grad_W = X^T dY): chunked deterministic reduction.
  ScopedNumThreads threads(static_cast<int>(state.range(0)));
  Rng rng(15);
  Matrix a = Matrix::Gaussian(50000, 64, 1.0, &rng);
  Matrix b = Matrix::Gaussian(50000, 64, 1.0, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMulTransA(a, b));
  }
  state.SetItemsProcessed(state.iterations() * int64_t{50000} * 64 * 64);
}
BENCHMARK(BM_MatMulTransAThreads)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

// Times SpMM at 1/2/4 threads inside one benchmark run and reports the
// speedup ratios as counters (speedup_2t, speedup_4t).
void BM_SpmmSpeedup(benchmark::State& state) {
  const Graph& g = BenchGraphLarge();
  Rng rng(16);
  Matrix x = Matrix::Gaussian(g.num_nodes(), 64, 1.0, &rng);
  const SparseMatrix& adj = g.Adjacency(AdjacencyKind::kSymNorm);
  auto best_seconds = [&](int nthreads) {
    ScopedNumThreads scoped(nthreads);
    double best = 1e300;
    for (int rep = 0; rep < 5; ++rep) {
      Stopwatch watch;
      benchmark::DoNotOptimize(adj.Spmm(x));
      best = std::min(best, watch.ElapsedSeconds());
    }
    return best;
  };
  double t1 = 0.0, t2 = 0.0, t4 = 0.0;
  for (auto _ : state) {
    t1 = best_seconds(1);
    t2 = best_seconds(2);
    t4 = best_seconds(4);
  }
  state.counters["t1_ms"] = 1e3 * t1;
  state.counters["speedup_2t"] = t1 / t2;
  state.counters["speedup_4t"] = t1 / t4;
}
BENCHMARK(BM_SpmmSpeedup)->Iterations(1)->UseRealTime();

void BM_BackwardOverhead(benchmark::State& state) {
  // Chain of elementwise ops: measures tape traversal cost.
  Rng rng(8);
  Var p = MakeParam(Matrix::Gaussian(512, 32, 1.0, &rng));
  for (auto _ : state) {
    p->ZeroGrad();
    Var h = p;
    for (int i = 0; i < 16; ++i) h = Tanh(h);
    Backward(SumAll(h));
    benchmark::DoNotOptimize(p->grad.data());
  }
}
BENCHMARK(BM_BackwardOverhead);

}  // namespace

int main(int argc, char** argv) {
  const ahg::bench::ObsFlags obs_flags =
      ahg::bench::ParseObsFlags(argc, argv);
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if ((std::strcmp(argv[i], "--trace-out") == 0 ||
         std::strcmp(argv[i], "--metrics-out") == 0) &&
        i + 1 < argc) {
      ++i;  // skip the flag and its value
      continue;
    }
    args.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return ahg::bench::FlushObsOutputs(obs_flags) ? 0 : 1;
}
