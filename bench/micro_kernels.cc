// google-benchmark microbenchmarks of the tensor/autodiff kernels the whole
// system is built on: GEMM, SpMM, the GAT edge-softmax aggregation, and a
// full GCN forward+backward step — plus a threads=1/2/4 sweep of the
// row-parallel SpMM/GEMM kernels on a 50k-node SBM graph that reports the
// parallel speedup directly (counters `speedup_vs_1t`).
//
// Accepts --trace-out FILE / --metrics-out FILE in addition to the standard
// google-benchmark flags (ours are stripped before benchmark::Initialize,
// which rejects flags it does not know). --json-out FILE switches to a
// deterministic measurement suite (GEMM/SpMM ns/op plus the GCN train step
// with the memory plane off and on) and writes the BENCH_kernels.json
// schema the perf-smoke CI job diffs against.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "autodiff/graph_ops.h"
#include "common/bench_util.h"
#include "autodiff/ops.h"
#include "kernels/dispatch.h"
#include "graph/synthetic.h"
#include "models/model.h"
#include "models/model_zoo.h"
#include "nn/linear.h"
#include "tensor/alloc_tracker.h"
#include "tensor/matrix.h"
#include "tensor/pool.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace {

using namespace ahg;

void BM_MatMul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  Matrix a = Matrix::Gaussian(n, 64, 1.0, &rng);
  Matrix b = Matrix::Gaussian(64, 64, 1.0, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * int64_t{n} * 64 * 64);
}
BENCHMARK(BM_MatMul)->Arg(256)->Arg(1024)->Arg(4096);

const Graph& BenchGraph() {
  static const Graph* graph = [] {
    SyntheticConfig cfg;
    cfg.num_nodes = 3000;
    cfg.num_classes = 5;
    cfg.feature_dim = 64;
    cfg.avg_degree = 8.0;
    cfg.seed = 3;
    return new Graph(GenerateSbmGraph(cfg));
  }();
  return *graph;
}

void BM_Spmm(benchmark::State& state) {
  const Graph& g = BenchGraph();
  Rng rng(2);
  Matrix x = Matrix::Gaussian(g.num_nodes(), static_cast<int>(state.range(0)),
                              1.0, &rng);
  const SparseMatrix& adj = g.Adjacency(AdjacencyKind::kSymNorm);
  for (auto _ : state) {
    benchmark::DoNotOptimize(adj.Spmm(x));
  }
  state.SetItemsProcessed(state.iterations() * adj.nnz() * state.range(0));
}
BENCHMARK(BM_Spmm)->Arg(16)->Arg(64);

void BM_GatAggregate(benchmark::State& state) {
  const Graph& g = BenchGraph();
  Rng rng(4);
  const SparseMatrix& adj = g.Adjacency(AdjacencyKind::kRawSelfLoops);
  Var h = MakeConstant(Matrix::Gaussian(g.num_nodes(), 32, 1.0, &rng));
  Var s_src = MakeConstant(Matrix::Gaussian(g.num_nodes(), 1, 1.0, &rng));
  Var s_dst = MakeConstant(Matrix::Gaussian(g.num_nodes(), 1, 1.0, &rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(GatAggregate(adj, s_src, s_dst, h, 0.2));
  }
}
BENCHMARK(BM_GatAggregate);

// One full GCN train step (forward, masked loss, backward) on the bench
// graph; `pooling`/`fusion` select the memory-plane fast path. Shared by
// the google-benchmark wrappers and the --json-out suite.
class GcnStepHarness {
 public:
  GcnStepHarness() : g_(BenchGraph()), dropout_rng_(7) {
    ModelConfig cfg;
    cfg.family = ModelFamily::kGcn;
    cfg.in_dim = g_.feature_dim();
    cfg.hidden_dim = 32;
    cfg.num_layers = 2;
    cfg.dropout = 0.0;
    cfg.seed = 5;
    model_ = BuildModel(cfg);
    Rng head_rng(6);
    head_ = std::make_unique<Linear>(model_->params(), 32, g_.num_classes(),
                                     true, &head_rng);
    features_ = MakeConstant(g_.features());
    for (int i = 0; i < g_.num_nodes(); i += 3) mask_.push_back(i);
  }

  double Step() {
    model_->params()->ZeroGrad();
    GnnContext ctx{&g_, true, &dropout_rng_};
    Var logits = head_->Apply(model_->LayerOutputs(ctx, features_).back());
    Var loss = MaskedCrossEntropy(logits, g_.labels(), mask_);
    Backward(loss);
    return loss->value(0, 0);
  }

 private:
  const Graph& g_;
  Rng dropout_rng_;
  std::unique_ptr<GnnModel> model_;
  std::unique_ptr<Linear> head_;
  Var features_;
  std::vector<int> mask_;
};

void BM_GcnTrainStep(benchmark::State& state) {
  GcnStepHarness harness;
  for (auto _ : state) {
    benchmark::DoNotOptimize(harness.Step());
  }
}
BENCHMARK(BM_GcnTrainStep);

void BM_GcnTrainStepPooled(benchmark::State& state) {
  ScopedMemPlane plane(/*pooling=*/true, /*fusion=*/true);
  ScopedArena arena;
  GcnStepHarness harness;
  for (auto _ : state) {
    benchmark::DoNotOptimize(harness.Step());
  }
  const MatrixPoolStats stats = MatrixPool::Global().Stats();
  state.counters["pool_hit_rate"] =
      stats.hits + stats.misses > 0
          ? static_cast<double>(stats.hits) / (stats.hits + stats.misses)
          : 0.0;
}
BENCHMARK(BM_GcnTrainStepPooled);

// ---------------------------------------------------------------------------
// Thread-scaling sweep: the same kernels at threads = 1/2/4 on a graph big
// enough (50k nodes, ~800k directed edges) that row-parallelism dominates
// scheduling overhead. items_per_second across the /threads:N lines gives
// the scaling curve; BM_SpmmSpeedup additionally reports the ratio.
// ---------------------------------------------------------------------------

const Graph& BenchGraphLarge() {
  static const Graph* graph = [] {
    SyntheticConfig cfg;
    cfg.num_nodes = 50000;
    cfg.num_classes = 10;
    cfg.feature_dim = 16;
    cfg.avg_degree = 16.0;
    cfg.seed = 11;
    return new Graph(GenerateSbmGraph(cfg));
  }();
  return *graph;
}

void BM_SpmmThreads(benchmark::State& state) {
  ScopedNumThreads threads(static_cast<int>(state.range(0)));
  const Graph& g = BenchGraphLarge();
  Rng rng(12);
  Matrix x = Matrix::Gaussian(g.num_nodes(), 64, 1.0, &rng);
  const SparseMatrix& adj = g.Adjacency(AdjacencyKind::kSymNorm);
  for (auto _ : state) {
    benchmark::DoNotOptimize(adj.Spmm(x));
  }
  state.SetItemsProcessed(state.iterations() * adj.nnz() * 64);
}
BENCHMARK(BM_SpmmThreads)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_SpmmTransposedThreads(benchmark::State& state) {
  ScopedNumThreads threads(static_cast<int>(state.range(0)));
  const Graph& g = BenchGraphLarge();
  Rng rng(13);
  Matrix x = Matrix::Gaussian(g.num_nodes(), 64, 1.0, &rng);
  const SparseMatrix& adj = g.Adjacency(AdjacencyKind::kSymNorm);
  adj.TransposedCached();  // exclude the one-time transpose build
  for (auto _ : state) {
    benchmark::DoNotOptimize(adj.SpmmTransposed(x));
  }
  state.SetItemsProcessed(state.iterations() * adj.nnz() * 64);
}
BENCHMARK(BM_SpmmTransposedThreads)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_MatMulThreads(benchmark::State& state) {
  ScopedNumThreads threads(static_cast<int>(state.range(0)));
  Rng rng(14);
  Matrix a = Matrix::Gaussian(50000, 64, 1.0, &rng);
  Matrix b = Matrix::Gaussian(64, 64, 1.0, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * int64_t{50000} * 64 * 64);
}
BENCHMARK(BM_MatMulThreads)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_MatMulTransAThreads(benchmark::State& state) {
  // The backward GEMM (grad_W = X^T dY): chunked deterministic reduction.
  ScopedNumThreads threads(static_cast<int>(state.range(0)));
  Rng rng(15);
  Matrix a = Matrix::Gaussian(50000, 64, 1.0, &rng);
  Matrix b = Matrix::Gaussian(50000, 64, 1.0, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMulTransA(a, b));
  }
  state.SetItemsProcessed(state.iterations() * int64_t{50000} * 64 * 64);
}
BENCHMARK(BM_MatMulTransAThreads)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

// Times SpMM at 1/2/4 threads inside one benchmark run and reports the
// speedup ratios as counters (speedup_2t, speedup_4t).
void BM_SpmmSpeedup(benchmark::State& state) {
  const Graph& g = BenchGraphLarge();
  Rng rng(16);
  Matrix x = Matrix::Gaussian(g.num_nodes(), 64, 1.0, &rng);
  const SparseMatrix& adj = g.Adjacency(AdjacencyKind::kSymNorm);
  auto best_seconds = [&](int nthreads) {
    ScopedNumThreads scoped(nthreads);
    double best = 1e300;
    for (int rep = 0; rep < 5; ++rep) {
      Stopwatch watch;
      benchmark::DoNotOptimize(adj.Spmm(x));
      best = std::min(best, watch.ElapsedSeconds());
    }
    return best;
  };
  double t1 = 0.0, t2 = 0.0, t4 = 0.0;
  for (auto _ : state) {
    t1 = best_seconds(1);
    t2 = best_seconds(2);
    t4 = best_seconds(4);
  }
  state.counters["t1_ms"] = 1e3 * t1;
  state.counters["speedup_2t"] = t1 / t2;
  state.counters["speedup_4t"] = t1 / t4;
}
BENCHMARK(BM_SpmmSpeedup)->Iterations(1)->UseRealTime();

// ---------------------------------------------------------------------------
// --json-out FILE: a small deterministic measurement suite for the
// perf-smoke CI job. Timing fields are informational (machine-dependent);
// the allocation counters are deterministic per build and are what CI
// hard-fails on. Schema: bench/BENCH_kernels.json (the committed baseline).
// ---------------------------------------------------------------------------

struct StepSuiteResult {
  double ns_op = 0.0;
  int64_t allocs_per_step = 0;
  int64_t bytes_per_step = 0;
  double pool_hit_rate = 0.0;
};

StepSuiteResult MeasureGcnStep(bool pooling, bool fusion) {
  constexpr int kWarmup = 3;
  constexpr int kSteps = 10;
  ScopedMemPlane plane(pooling, fusion);
  ScopedArena arena(pooling);
  GcnStepHarness harness;
  for (int i = 0; i < kWarmup; ++i) harness.Step();
  const int64_t allocs0 = AllocTracker::AllocationCount();
  const int64_t bytes0 = AllocTracker::TotalAllocatedBytes();
  const MatrixPoolStats pool0 = MatrixPool::Global().Stats();
  Stopwatch watch;
  for (int i = 0; i < kSteps; ++i) harness.Step();
  const double seconds = watch.ElapsedSeconds();
  StepSuiteResult r;
  r.ns_op = 1e9 * seconds / kSteps;
  r.allocs_per_step = (AllocTracker::AllocationCount() - allocs0) / kSteps;
  r.bytes_per_step = (AllocTracker::TotalAllocatedBytes() - bytes0) / kSteps;
  const MatrixPoolStats pool1 = MatrixPool::Global().Stats();
  const int64_t hits = pool1.hits - pool0.hits;
  const int64_t misses = pool1.misses - pool0.misses;
  r.pool_hit_rate =
      hits + misses > 0 ? static_cast<double>(hits) / (hits + misses) : 0.0;
  return r;
}

double MeasureNsPerOp(int reps, const std::function<void()>& op) {
  op();  // warm
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    Stopwatch watch;
    op();
    best = std::min(best, watch.ElapsedSeconds());
  }
  return 1e9 * best;
}

bool WriteKernelsJson(const std::string& path) {
  Rng rng(21);
  Matrix a = Matrix::Gaussian(1024, 64, 1.0, &rng);
  Matrix b = Matrix::Gaussian(64, 64, 1.0, &rng);
  const Graph& g = BenchGraph();
  Matrix x = Matrix::Gaussian(g.num_nodes(), 64, 1.0, &rng);
  const SparseMatrix& adj = g.Adjacency(AdjacencyKind::kSymNorm);

  // Scalar-tier reference timings for the kernel-level speedup rows.
  double matmul_scalar_ns = 0.0, spmm_scalar_ns = 0.0;
  {
    ahg::kernels::ScopedTier scalar(ahg::kernels::Tier::kScalar);
    matmul_scalar_ns =
        MeasureNsPerOp(5, [&] { benchmark::DoNotOptimize(MatMul(a, b)); });
    spmm_scalar_ns =
        MeasureNsPerOp(5, [&] { benchmark::DoNotOptimize(adj.Spmm(x)); });
  }
  // Active (best supported / env-forced) tier with autotuning live.
  const char* tier_name = ahg::kernels::TierName(ahg::kernels::ActiveTier());
  const double matmul_ns =
      MeasureNsPerOp(5, [&] { benchmark::DoNotOptimize(MatMul(a, b)); });
  const double spmm_ns =
      MeasureNsPerOp(5, [&] { benchmark::DoNotOptimize(adj.Spmm(x)); });

  // The memory-plane comparison (baseline vs pooled) is pinned to the
  // scalar tier so its speedup stays comparable to the committed baseline
  // from before the SIMD backend existed; `tuned` then runs the pooled
  // plane on the active tier with the autotuner warm — the full fast path.
  StepSuiteResult baseline, pooled;
  {
    ahg::kernels::ScopedTier scalar(ahg::kernels::Tier::kScalar);
    baseline = MeasureGcnStep(false, false);
    pooled = MeasureGcnStep(true, true);
  }
  const StepSuiteResult tuned = MeasureGcnStep(true, true);
  const double speedup =
      pooled.ns_op > 0.0 ? baseline.ns_op / pooled.ns_op : 0.0;
  const double alloc_reduction =
      baseline.allocs_per_step > 0
          ? 1.0 - static_cast<double>(pooled.allocs_per_step) /
                      static_cast<double>(baseline.allocs_per_step)
          : 0.0;
  const double tuned_vs_baseline =
      tuned.ns_op > 0.0 ? baseline.ns_op / tuned.ns_op : 0.0;
  const double tuned_vs_pooled =
      tuned.ns_op > 0.0 ? pooled.ns_op / tuned.ns_op : 0.0;

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fprintf(f,
               "{\n"
               "  \"matmul_1024x64x64_ns_op\": %.0f,\n"
               "  \"spmm_3000n_64c_ns_op\": %.0f,\n"
               "  \"kernel_tier\": \"%s\",\n"
               "  \"simd\": {\n"
               "    \"matmul_scalar_ns_op\": %.0f,\n"
               "    \"matmul_speedup\": %.3f,\n"
               "    \"spmm_scalar_ns_op\": %.0f,\n"
               "    \"spmm_speedup\": %.3f\n"
               "  },\n"
               "  \"gcn_train_step\": {\n"
               "    \"baseline\": {\"ns_op\": %.0f, \"allocs_per_step\": "
               "%lld, \"bytes_per_step\": %lld},\n"
               "    \"pooled\": {\"ns_op\": %.0f, \"allocs_per_step\": %lld, "
               "\"bytes_per_step\": %lld, \"pool_hit_rate\": %.4f},\n"
               "    \"tuned\": {\"ns_op\": %.0f, \"allocs_per_step\": %lld, "
               "\"pool_hit_rate\": %.4f, \"tier\": \"%s\",\n"
               "      \"speedup_vs_baseline\": %.3f, "
               "\"speedup_vs_pooled\": %.3f},\n"
               "    \"speedup\": %.3f,\n"
               "    \"alloc_reduction\": %.4f\n"
               "  }\n"
               "}\n",
               matmul_ns, spmm_ns, tier_name, matmul_scalar_ns,
               matmul_ns > 0.0 ? matmul_scalar_ns / matmul_ns : 0.0,
               spmm_scalar_ns, spmm_ns > 0.0 ? spmm_scalar_ns / spmm_ns : 0.0,
               baseline.ns_op,
               static_cast<long long>(baseline.allocs_per_step),
               static_cast<long long>(baseline.bytes_per_step), pooled.ns_op,
               static_cast<long long>(pooled.allocs_per_step),
               static_cast<long long>(pooled.bytes_per_step),
               pooled.pool_hit_rate, tuned.ns_op,
               static_cast<long long>(tuned.allocs_per_step),
               tuned.pool_hit_rate, tier_name, tuned_vs_baseline,
               tuned_vs_pooled, speedup, alloc_reduction);
  std::fclose(f);
  std::printf("wrote %s (baseline %lld allocs/step -> pooled %lld, "
              "pool speedup %.2fx, tuned[%s] %.2fx vs pooled)\n",
              path.c_str(), static_cast<long long>(baseline.allocs_per_step),
              static_cast<long long>(pooled.allocs_per_step), speedup,
              tier_name, tuned_vs_pooled);
  return true;
}

void BM_BackwardOverhead(benchmark::State& state) {
  // Chain of elementwise ops: measures tape traversal cost.
  Rng rng(8);
  Var p = MakeParam(Matrix::Gaussian(512, 32, 1.0, &rng));
  for (auto _ : state) {
    p->ZeroGrad();
    Var h = p;
    for (int i = 0; i < 16; ++i) h = Tanh(h);
    Backward(SumAll(h));
    benchmark::DoNotOptimize(p->grad.data());
  }
}
BENCHMARK(BM_BackwardOverhead);

}  // namespace

int main(int argc, char** argv) {
  const ahg::bench::ObsFlags obs_flags =
      ahg::bench::ParseObsFlags(argc, argv);
  std::string json_out;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if ((std::strcmp(argv[i], "--trace-out") == 0 ||
         std::strcmp(argv[i], "--metrics-out") == 0) &&
        i + 1 < argc) {
      ++i;  // skip the flag and its value
      continue;
    }
    if (std::strcmp(argv[i], "--json-out") == 0 && i + 1 < argc) {
      json_out = argv[++i];
      continue;
    }
    args.push_back(argv[i]);
  }
  if (!json_out.empty()) {
    // Deterministic perf-smoke suite instead of the google-benchmark
    // harness: writes the BENCH_kernels.json schema CI diffs against.
    return WriteKernelsJson(json_out) ? 0 : 1;
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return ahg::bench::FlushObsOutputs(obs_flags) ? 0 : 1;
}
