// Table I: statistics of the anonymous AutoGraph datasets. Prints the
// paper's numbers next to the statistics of our synthetic analogs (with the
// scale-down map of DESIGN.md Section 5 applied to C, D and E).
#include <cstdio>

#include "common/bench_util.h"
#include "util/string_util.h"
#include "graph/statistics.h"
#include "graph/synthetic.h"

int main(int argc, char** argv) {
  using namespace ahg;
  using namespace ahg::bench;
  (void)FastMode(argc, argv);  // this bench is cheap either way

  std::printf("== Table I: dataset statistics (paper vs synthetic analog) "
              "==\n\n");
  struct PaperRow {
    const char* name;
    const char* nodes;
    const char* edges;
    const char* classes;
    const char* directed;
  };
  const PaperRow paper[] = {
      {"A", "1088/1620", "5278", "7", "-"},
      {"B", "1334/1993", "4552", "6", "-"},
      {"C", "4026/5974", "733316", "41", "-"},
      {"D", "4009/5991", "5833962", "20", "yes"},
      {"E", "3011/4510", "7804", "3", "-"},
  };

  TablePrinter table({"Dataset", "Paper nodes", "Paper edges",
                      "Paper classes", "Analog nodes", "Analog edges",
                      "Analog classes", "Directed", "Feat.dim", "AvgDeg",
                      "Homophily", "Clustering"});
  for (const PaperRow& row : paper) {
    Graph g = MakePresetGraph(row.name, /*seed=*/1);
    GraphStatistics stats = ComputeStatistics(g);
    table.AddRow({row.name, row.nodes, row.edges, row.classes,
                  std::to_string(g.num_nodes()),
                  std::to_string(g.num_edges()),
                  std::to_string(g.num_classes()),
                  g.directed() ? "yes" : "-",
                  std::to_string(g.feature_dim()),
                  StrFormat("%.1f", stats.avg_degree),
                  StrFormat("%.2f", stats.edge_homophily),
                  StrFormat("%.2f", stats.avg_clustering)});
  }
  table.Print();
  std::printf("\nC/D/E are scaled for a single CPU core; see DESIGN.md "
              "Section 5. Dataset E has no intrinsic features — the\n"
              "analog synthesizes random+degree structural features, the "
              "standard featureless-graph treatment.\n");
  return 0;
}
