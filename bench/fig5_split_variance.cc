// Figure 5: variance caused by the train/validation split. GCN and GAT are
// trained across many random splits with and without 3-split bagging, and
// AutoHEnsGNN (pool {GCN, GAT}) with bagging is run on the same splits.
// Bagging must shrink the spread (paper: GCN on B, 3.9% -> 2.0%) and
// AutoHEnsGNN must sit higher with lower variance.
#include <cstdio>

#include "common/bench_util.h"
#include "ensemble/baselines.h"
#include "graph/synthetic.h"
#include "metrics/aggregate.h"
#include "metrics/metrics.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  using namespace ahg;
  using namespace ahg::bench;
  const bool fast = FastMode(argc, argv);

  std::printf(
      "== Figure 5: split variance on dataset B analog ==\n"
      "Paper reference: GCN 3.9%% -> 2.0%% spread with 3-split bagging; "
      "AutoHEnsGNN\n"
      "(Ada/Gra) highest mean with lowest variance (100 runs).\n\n");

  const int runs = fast ? 3 : 6;
  Graph graph = MakePresetGraph("B", /*seed=*/128);
  TrainConfig train = DefaultBenchTrain();
  train.max_epochs = fast ? 10 : 30;
  std::vector<CandidateSpec> pool_specs{FindCandidate("GCN"),
                                        FindCandidate("GAT")};

  std::vector<double> gcn, gcn_bagged, gat, gat_bagged, ada, gra;
  for (int run = 0; run < runs; ++run) {
    const uint64_t seed = 3000 + 97ULL * run;
    Rng rng(seed);
    // A fresh random split per run; test kept fixed across bagging rounds.
    DataSplit split = RandomSplit(graph, 0.4, 0.2, &rng);

    // Plain single models.
    std::vector<SingleRun> plain = TrainSingles(
        graph, pool_specs, split, /*bagging=*/1, 0.2, train, seed);
    gcn.push_back(plain[0].test_accuracy);
    gat.push_back(plain[1].test_accuracy);

    // 3-split bagging for the same models.
    std::vector<SingleRun> bagged = TrainSingles(
        graph, pool_specs, split, /*bagging=*/3, 0.2, train, seed ^ 0x5ULL);
    gcn_bagged.push_back(bagged[0].test_accuracy);
    gat_bagged.push_back(bagged[1].test_accuracy);

    // AutoHEnsGNN with {GCN, GAT} pool, 3-split bagging.
    for (SearchAlgo algo : {SearchAlgo::kAdaptive, SearchAlgo::kGradient}) {
      AutoHEnsConfig cfg;
      cfg.pool_size = 2;
      cfg.k = 2;
      cfg.algo = algo;
      cfg.fixed_pool = pool_specs;
      cfg.train = train;
      cfg.adaptive.train = train;
      cfg.gradient.max_epochs = train.max_epochs / 2 + 5;
      cfg.bagging_splits = 3;
      cfg.seed = seed ^ 0xabULL;
      AutoHEnsResult result = RunAutoHEnsGnn(graph, split, {}, cfg);
      (algo == SearchAlgo::kAdaptive ? ada : gra)
          .push_back(result.test_accuracy);
    }
    std::printf("[run %d/%d done]\n", run + 1, runs);
  }

  std::printf("\nMeasured over %d random splits:\n", runs);
  TablePrinter table({"Method", "mean±std", "min", "max", "spread"});
  for (const auto& [label, accs] :
       {std::pair<const char*, std::vector<double>&>{"GCN", gcn},
        {"GCN-B (3-split bagging)", gcn_bagged},
        {"GAT", gat},
        {"GAT-B (3-split bagging)", gat_bagged},
        {"AutoHEnsGNN(Ada)", ada},
        {"AutoHEnsGNN(Gra)", gra}}) {
    RunStats s = Summarize(accs);
    table.AddRow({label, FormatMeanStd(s, true), FormatFloat(100 * s.min, 1),
                  FormatFloat(100 * s.max, 1),
                  FormatFloat(100 * (s.max - s.min), 1)});
  }
  table.Print();
  return 0;
}
