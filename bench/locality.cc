// Locality bench: the headline for the graph-reordering PR — how much of a
// SpMM-bound GCN step a locality pass recovers on a cache-hostile layout.
//
// Baseline: the same SBM graph with its node ids shuffled and rebuilt as a
// PLAIN graph (Graph::Create over relabeled edges, no permutation
// attached), so its CSR is column-sorted in shuffled order — the pessimal
// layout a real ingest pipeline can hand us. Candidates re-reorder that
// shuffled graph with the locality pass:
//   rcm           bandwidth-minimizing Reverse Cuthill-McKee
//   hub           degree-sorted hub clustering
//   hub+segments  hub layout plus the compressed hub-segment CSR encoding
//                 (SparseMatrix::BuildHubSegments) the hub order creates
//                 runs for
//
// Workload per layout: a 2-layer GCN step (H1 = relu((A X) W1 + b1),
// H2 = (A H1) W2 + b2) over the layout's kSymNorm CSR — SpMM-bound at
// these dims. Reported ms is the min over repeats.
//
// Conformance is a hard gate, not a report: every reordered layout must
// serve PredictAll probabilities bitwise identical (memcmp) to the
// baseline engine, and the hub-segment SpMM must be byte-equal to the
// uncompressed one. Any mismatch exits non-zero regardless of flags.
// The speedup gate (best layout >= min_speedup over the shuffled
// baseline) is opt-in via --assert-speedup, since wall-clock thresholds
// are machine-dependent; the committed BENCH_locality.json records a full
// (non-fast) run.
//
// Usage: locality [--fast] [--json-out FILE] [--assert-speedup]
//                 [--min-speedup F] [--repeats N]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/bench_util.h"
#include "dyn/incremental.h"
#include "graph/reorder.h"
#include "graph/statistics.h"
#include "graph/synthetic.h"
#include "nn/linear.h"
#include "obs/metrics.h"
#include "serve/inference_engine.h"
#include "serve/model_registry.h"
#include "tensor/sparse_matrix.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace ahg {
namespace {

struct LayoutReport {
  std::string layout;
  int64_t bandwidth = 0;
  double mean_column_gap = 0.0;
  double hub_mass = 0.0;
  double step_ms = 0.0;
  double spmm_ms = 0.0;  // aggregation share of the best step
  double speedup = 1.0;  // vs the shuffled baseline
  bool conformant = true;
};

bool BitwiseEqual(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (int r = 0; r < a.rows(); ++r) {
    if (std::memcmp(a.Row(r), b.Row(r),
                    static_cast<size_t>(a.cols()) * sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

// Min-of-repeats wall time of the 2-layer GCN step over `adj`. The
// aggregation (Spmm) share of the best repeat lands in *spmm_ms so the
// report can show the step really is SpMM-bound.
double TimeGcnStep(const SparseMatrix& adj, const Matrix& x, const Matrix& w1,
                   const Matrix& b1, const Matrix& w2, const Matrix& b2,
                   int repeats, Matrix* out, double* spmm_ms = nullptr) {
  double best_ms = 0.0;
  double best_spmm_ms = 0.0;
  for (int rep = 0; rep < repeats; ++rep) {
    Stopwatch watch;
    Stopwatch agg1;
    Matrix p1 = adj.Spmm(x);
    double agg_ms = agg1.ElapsedSeconds() * 1e3;
    Matrix h1 = dyn::DenseLayerTransform(p1, w1, b1, /*relu=*/true);
    Stopwatch agg2;
    Matrix p2 = adj.Spmm(h1);
    agg_ms += agg2.ElapsedSeconds() * 1e3;
    Matrix h2 = dyn::DenseLayerTransform(p2, w2, b2, /*relu=*/false);
    const double ms = watch.ElapsedSeconds() * 1e3;
    if (rep == 0 || ms < best_ms) {
      best_ms = ms;
      best_spmm_ms = agg_ms;
    }
    if (rep == 0) *out = std::move(h2);
  }
  if (spmm_ms != nullptr) *spmm_ms = best_spmm_ms;
  return best_ms;
}

// The shuffled-PLAIN baseline: relabel every node id through a seeded
// shuffle and rebuild from scratch. No permutation is attached — this is
// an ordinary graph whose CSR happens to have pessimal locality, which is
// exactly what the reorder pass exists to repair.
Graph ShuffledPlainGraph(const Graph& base, uint64_t seed) {
  const NodePermutation perm =
      ComputeReorder(base, ReorderStrategy::kShuffle, seed);
  std::vector<Edge> edges;
  edges.reserve(base.edges().size());
  for (const Edge& e : base.edges()) {
    edges.push_back(
        {perm.to_internal[e.src], perm.to_internal[e.dst], e.weight});
  }
  Matrix feats(base.num_nodes(), base.feature_dim());
  std::vector<int> labels(static_cast<size_t>(base.num_nodes()), 0);
  for (int v = 0; v < base.num_nodes(); ++v) {
    std::memcpy(feats.Row(perm.to_internal[v]), base.features().Row(v),
                static_cast<size_t>(base.feature_dim()) * sizeof(double));
    labels[perm.to_internal[v]] = base.labels()[v];
  }
  return Graph::Create(base.num_nodes(), std::move(edges),
                       /*directed=*/false, std::move(feats),
                       std::move(labels), base.num_classes());
}

std::string JsonReport(const SyntheticConfig& cfg, bool fast, uint64_t seed,
                       int repeats, int hidden_dim, bool conformance_pass,
                       const LayoutReport& baseline,
                       const std::vector<LayoutReport>& runs,
                       double min_speedup, double best_speedup,
                       bool speedup_asserted, bool speedup_pass) {
  std::string json = "{\n";
  json += "  \"bench\": \"locality\",\n";
  json += "  \"schema_version\": 1,\n";
  json += StrFormat(
      "  \"config\": {\"num_nodes\": %d, \"feature_dim\": %d, "
      "\"hidden_dim\": %d, \"avg_degree\": %.1f, \"fast\": %s, "
      "\"seed\": %llu, \"repeats\": %d},\n",
      cfg.num_nodes, cfg.feature_dim, hidden_dim, cfg.avg_degree,
      fast ? "true" : "false", static_cast<unsigned long long>(seed),
      repeats);
  json += StrFormat(
      "  \"conformance\": {\"bitwise_identical\": %s},\n",
      conformance_pass ? "true" : "false");
  auto layout_json = [](const LayoutReport& r) {
    return StrFormat(
        "{\"layout\": \"%s\", \"bandwidth\": %lld, "
        "\"mean_column_gap\": %.2f, \"hub_mass\": %.4f, "
        "\"step_ms\": %.4f, \"spmm_ms\": %.4f, \"speedup\": %.4f, "
        "\"conformant\": %s}",
        r.layout.c_str(), static_cast<long long>(r.bandwidth),
        r.mean_column_gap, r.hub_mass, r.step_ms, r.spmm_ms, r.speedup,
        r.conformant ? "true" : "false");
  };
  json += "  \"baseline\": " + layout_json(baseline) + ",\n";
  json += "  \"runs\": [\n";
  for (size_t i = 0; i < runs.size(); ++i) {
    json += "    " + layout_json(runs[i]) +
            (i + 1 < runs.size() ? ",\n" : "\n");
  }
  json += "  ],\n";
  json += StrFormat(
      "  \"assertions\": {\"conformance_pass\": %s, \"min_speedup\": %.2f, "
      "\"best_speedup\": %.4f, \"speedup_asserted\": %s, "
      "\"speedup_pass\": %s}\n",
      conformance_pass ? "true" : "false", min_speedup, best_speedup,
      speedup_asserted ? "true" : "false", speedup_pass ? "true" : "false");
  json += "}\n";
  return json;
}

int Main(int argc, char** argv) {
  const bool fast = bench::FastMode(argc, argv);
  std::string json_out;
  bool assert_speedup = false;
  double min_speedup = 1.2;
  int repeats_flag = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json-out") == 0 && i + 1 < argc) {
      json_out = argv[++i];
    } else if (std::strcmp(argv[i], "--assert-speedup") == 0) {
      assert_speedup = true;
    } else if (std::strcmp(argv[i], "--min-speedup") == 0 && i + 1 < argc) {
      min_speedup = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--repeats") == 0 && i + 1 < argc) {
      repeats_flag = std::atoi(argv[++i]);
    }
  }
  const int repeats = repeats_flag > 0 ? repeats_flag : (fast ? 3 : 15);
  const uint64_t seed = 29;
  // Hidden dim is kept small relative to the degree so the step stays
  // SpMM-bound: at degree 32 / hidden 16 the gathers are ~85% of the
  // step and the row-local GEMMs the rest.
  const int hidden_dim = 16;

  // Strong nested-community structure plus degree skew: the regime the
  // locality pass targets (real AutoGraph datasets are communities + hubs,
  // not expanders). A weak-structure SBM leaves nothing for ANY ordering
  // to recover — bandwidth stays ~n and the bench would measure noise.
  SyntheticConfig cfg;
  cfg.name = "locality-bench";
  cfg.num_nodes = fast ? 5000 : 50000;
  cfg.num_classes = 10;
  cfg.feature_dim = 32;
  cfg.avg_degree = 32.0;
  cfg.homophily = 0.97;
  cfg.communities_per_class = fast ? 5 : 50;
  cfg.community_bias = 0.97;
  cfg.power_law = 1.5;
  cfg.seed = 7;
  const Graph base = GenerateSbmGraph(cfg);
  const Graph shuffled = ShuffledPlainGraph(base, seed);

  // Shared weights for the timed step; the baseline output is the bitwise
  // reference for the hub-segment check.
  Rng rng(seed ^ 0xbe9cULL);
  auto random_matrix = [&rng](int r, int c) {
    Matrix m(r, c);
    for (int i = 0; i < r; ++i) {
      for (int j = 0; j < c; ++j) m(i, j) = rng.Normal();
    }
    return m;
  };
  const Matrix x = random_matrix(shuffled.num_nodes(), cfg.feature_dim);
  const Matrix w1 = random_matrix(cfg.feature_dim, hidden_dim);
  const Matrix b1 = random_matrix(1, hidden_dim);
  const Matrix w2 = random_matrix(hidden_dim, hidden_dim);
  const Matrix b2 = random_matrix(1, hidden_dim);

  // Serving reference on the shuffled baseline (external = shuffled ids).
  serve::ServableModel model;
  model.version = 1;
  model.num_classes = shuffled.num_classes();
  model.config.family = ModelFamily::kGcn;
  model.config.in_dim = shuffled.feature_dim();
  model.config.hidden_dim = 32;
  model.config.num_layers = 2;
  model.config.seed = 11;
  std::unique_ptr<GnnModel> zoo = BuildModel(model.config);
  Rng head_rng(model.config.seed ^ 0x5ca1ab1eULL);
  Linear head(zoo->params(), model.config.hidden_dim, model.num_classes,
              /*bias=*/true, &head_rng);
  model.params = zoo->params()->Snapshot();
  serve::InferenceEngine baseline_engine(&shuffled, serve::EngineOptions{});
  auto reference_probs = baseline_engine.PredictAll(model);
  if (!reference_probs.ok()) {
    std::fprintf(stderr, "baseline forward failed\n");
    return 1;
  }

  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  auto layout_stats = [&](const std::string& name, const Graph& graph,
                          const std::string& gauge_prefix) {
    LayoutReport r;
    r.layout = name;
    const GraphStatistics stats = ComputeStatistics(graph);
    PublishGraphGauges(stats, &reg, gauge_prefix);
    r.bandwidth = stats.bandwidth;
    r.mean_column_gap = stats.mean_column_gap;
    r.hub_mass = stats.hub_mass;
    return r;
  };

  // Build phase: stats, gauges, and the conformance gates for every
  // layout. Timing comes after, interleaved, so all layouts face the same
  // interference profile on a shared machine instead of each getting its
  // own quiet-or-noisy window.
  bool conformance_pass = true;
  std::vector<LayoutReport> reports;
  std::vector<SparseMatrix> adjacencies;
  reports.push_back(layout_stats("shuffled", shuffled, "shuffled_"));
  adjacencies.push_back(shuffled.Adjacency(AdjacencyKind::kSymNorm));

  struct Candidate {
    const char* name;
    ReorderStrategy strategy;
    bool segments;
  };
  const Candidate candidates[] = {
      {"rcm", ReorderStrategy::kRcm, false},
      {"hub", ReorderStrategy::kHubCluster, false},
      {"hub+segments", ReorderStrategy::kHubCluster, true},
  };
  for (const Candidate& c : candidates) {
    const Graph reordered = ReorderGraph(shuffled, c.strategy, seed);
    SparseMatrix adj = reordered.Adjacency(AdjacencyKind::kSymNorm);
    // Only genuinely fat (power-law hub) rows get the segment encoding:
    // at symmetrized degree ~2*avg_degree a threshold of 3*avg keeps the
    // decode overhead off the dense bulk of ordinary rows.
    if (c.segments) {
      adj.BuildHubSegments(
          /*min_row_nnz=*/static_cast<int>(3 * cfg.avg_degree));
    }
    LayoutReport r =
        layout_stats(std::string(c.name), reordered, std::string(c.name) + "_");

    // Hard gate 1: served probabilities bitwise identical to the baseline
    // engine (PredictAll rows are in external = shuffled-id order).
    serve::InferenceEngine engine(&reordered, serve::EngineOptions{});
    auto probs = engine.PredictAll(model);
    if (!probs.ok() || !BitwiseEqual(reference_probs.value(), probs.value())) {
      r.conformant = false;
      conformance_pass = false;
    }
    // Hard gate 2: the compressed layout must not change a single byte of
    // the step output vs the same layout uncompressed.
    if (c.segments) {
      Matrix seg_out;
      TimeGcnStep(adj, x, w1, b1, w2, b2, /*repeats=*/1, &seg_out);
      Matrix plain_out;
      TimeGcnStep(reordered.Adjacency(AdjacencyKind::kSymNorm), x, w1, b1,
                  w2, b2, /*repeats=*/1, &plain_out);
      if (!BitwiseEqual(plain_out, seg_out)) {
        r.conformant = false;
        conformance_pass = false;
      }
    }
    reports.push_back(std::move(r));
    adjacencies.push_back(std::move(adj));
  }

  // Timing phase: round-robin over the layouts, min per layout.
  for (int rep = 0; rep < repeats; ++rep) {
    for (size_t i = 0; i < adjacencies.size(); ++i) {
      Matrix out;
      double spmm_ms = 0.0;
      const double ms = TimeGcnStep(adjacencies[i], x, w1, b1, w2, b2,
                                    /*repeats=*/1, &out, &spmm_ms);
      if (rep == 0 || ms < reports[i].step_ms) {
        reports[i].step_ms = ms;
        reports[i].spmm_ms = spmm_ms;
      }
    }
  }
  LayoutReport baseline = reports.front();
  std::vector<LayoutReport> runs(reports.begin() + 1, reports.end());
  for (LayoutReport& r : runs) {
    r.speedup = r.step_ms > 0.0 ? baseline.step_ms / r.step_ms : 0.0;
  }

  bench::TablePrinter table({"layout", "bandwidth", "mean_gap", "hub_mass",
                             "step_ms", "spmm_share", "speedup",
                             "conformant"});
  auto add_row = [&table](const LayoutReport& r) {
    table.AddRow({r.layout, std::to_string(r.bandwidth),
                  StrFormat("%.1f", r.mean_column_gap),
                  StrFormat("%.3f", r.hub_mass),
                  StrFormat("%.3f", r.step_ms),
                  StrFormat("%.0f%%",
                            r.step_ms > 0.0 ? 100.0 * r.spmm_ms / r.step_ms
                                            : 0.0),
                  StrFormat("%.3fx", r.speedup), r.conformant ? "yes" : "NO"});
  };
  add_row(baseline);
  for (const LayoutReport& r : runs) add_row(r);
  table.Print();

  double best_speedup = 0.0;
  for (const LayoutReport& r : runs) {
    best_speedup = std::max(best_speedup, r.speedup);
  }
  const bool speedup_pass = best_speedup >= min_speedup;
  std::printf("\nbest speedup over shuffled baseline: %.3fx (gate %.2fx, "
              "%s)\n",
              best_speedup, min_speedup,
              assert_speedup ? "asserted" : "informational");
  std::printf("conformance (bitwise vs baseline engine): %s\n",
              conformance_pass ? "PASS" : "FAIL");

  const std::string json = JsonReport(
      cfg, fast, seed, repeats, hidden_dim, conformance_pass, baseline, runs,
      min_speedup, best_speedup, assert_speedup,
      assert_speedup ? speedup_pass : true);
  if (!json_out.empty()) {
    std::ofstream out(json_out);
    out << json;
    if (!out.good()) {
      std::fprintf(stderr, "failed to write %s\n", json_out.c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_out.c_str());
  } else {
    std::fputs(json.c_str(), stdout);
  }

  if (!conformance_pass) {
    std::fprintf(stderr, "FAIL: a reordered layout is not bitwise "
                         "conformant\n");
    return 1;
  }
  if (assert_speedup && !speedup_pass) {
    std::fprintf(stderr,
                 "FAIL: best speedup %.3fx under --assert-speedup gate "
                 "%.2fx\n",
                 best_speedup, min_speedup);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace ahg

int main(int argc, char** argv) { return ahg::Main(argc, argv); }
