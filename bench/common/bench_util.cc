#include "common/bench_util.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "core/correct_smooth.h"
#include "core/proxy_eval.h"
#include "ensemble/baselines.h"
#include "metrics/aggregate.h"
#include "metrics/metrics.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ahg::bench {

bool FastMode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) return true;
  }
  return false;
}

ObsFlags ParseObsFlags(int argc, char** argv) {
  ObsFlags flags;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--trace-out") == 0) {
      flags.trace_out = argv[i + 1];
    } else if (std::strcmp(argv[i], "--metrics-out") == 0) {
      flags.metrics_out = argv[i + 1];
    }
  }
  if (!flags.trace_out.empty()) obs::TraceRecorder::Instance().Enable();
  return flags;
}

bool FlushObsOutputs(const ObsFlags& flags) {
  if (!flags.trace_out.empty()) {
    Status s =
        obs::TraceRecorder::Instance().WriteChromeTrace(flags.trace_out);
    if (!s.ok()) {
      std::fprintf(stderr, "trace write failed: %s\n", s.ToString().c_str());
      return false;
    }
    std::printf("wrote trace to %s\n", flags.trace_out.c_str());
  }
  if (!flags.metrics_out.empty()) {
    Status s = obs::MetricsRegistry::Global().WriteTsv(flags.metrics_out);
    if (!s.ok()) {
      std::fprintf(stderr, "metrics write failed: %s\n",
                   s.ToString().c_str());
      return false;
    }
    std::printf("wrote metrics to %s\n", flags.metrics_out.c_str());
  }
  return true;
}

TablePrinter::TablePrinter(std::vector<std::string> header) {
  rows_.push_back(std::move(header));
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void TablePrinter::Print() const {
  std::vector<size_t> widths;
  for (const auto& row : rows_) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  for (size_t r = 0; r < rows_.size(); ++r) {
    std::string line;
    for (size_t c = 0; c < rows_[r].size(); ++c) {
      std::string cell = rows_[r][c];
      cell.resize(widths[c], ' ');
      line += cell;
      if (c + 1 < rows_[r].size()) line += "  ";
    }
    std::printf("%s\n", line.c_str());
    if (r == 0) {
      std::string rule;
      for (size_t c = 0; c < widths.size(); ++c) {
        rule += std::string(widths[c], '-');
        if (c + 1 < widths.size()) rule += "  ";
      }
      std::printf("%s\n", rule.c_str());
    }
  }
}

TrainConfig DefaultBenchTrain() {
  TrainConfig train;
  train.max_epochs = 30;
  train.patience = 6;
  train.learning_rate = 2e-2;
  return train;
}

std::vector<CandidateSpec> PaperSingleRoster() {
  // The nine single-model rows of Table II, mapped onto our zoo. GraphMix
  // and GRAND (regularization-based training schemes) are represented by
  // their closest architectural cousins that we implement from scratch:
  // MixHop (neighborhood mixing) and DAGNN (deep random-walk propagation).
  std::vector<CandidateSpec> roster;
  for (const char* name :
       {"GCN", "GAT", "APPNP", "TAGC", "DNA", "GraphSAGE-mean", "MixHop",
        "DAGNN", "GCNII"}) {
    roster.push_back(FindCandidate(name));
  }
  return roster;
}

std::vector<SingleRun> TrainSingles(const Graph& graph,
                                    const std::vector<CandidateSpec>& specs,
                                    const DataSplit& base_split, int bagging,
                                    double val_fraction,
                                    const TrainConfig& train, uint64_t seed) {
  std::vector<SingleRun> runs;
  runs.reserve(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    Rng resplit_rng(seed ^ (0x5151ULL + i));
    std::vector<Matrix> probs;
    double base_val_acc = 0.0;
    for (int b = 0; b < std::max(1, bagging); ++b) {
      DataSplit split = b == 0 ? base_split
                               : ResplitTrainVal(base_split, val_fraction,
                                                 &resplit_rng);
      ModelConfig mcfg = specs[i].config;
      mcfg.seed = seed + 37 * i + b;
      TrainConfig tcfg = train;
      tcfg.seed = mcfg.seed ^ 0xabcdULL;
      NodeTrainResult result = TrainSingleNodeModel(mcfg, graph, split, tcfg);
      if (b == 0) base_val_acc = result.val_accuracy;
      probs.push_back(std::move(result.probs));
    }
    SingleRun run;
    run.name = specs[i].name;
    run.bagged_probs = AverageProbs(probs);
    run.val_accuracy = base_val_acc;
    if (!base_split.test.empty()) {
      run.test_accuracy =
          Accuracy(run.bagged_probs, graph.labels(), base_split.test);
    }
    runs.push_back(std::move(run));
  }
  return runs;
}

std::vector<int> PoolByProxyEval(const Graph& graph,
                                 const std::vector<CandidateSpec>& specs,
                                 int pool_n, const TrainConfig& train,
                                 uint64_t seed) {
  ProxyConfig proxy;
  proxy.dataset_ratio = 0.3;
  proxy.bagging = 2;
  proxy.model_ratio = 0.5;
  proxy.train = train;
  proxy.train.max_epochs = std::max(10, train.max_epochs * 2 / 3);
  ProxyEvalResult ranking = ProxyEvaluate(specs, graph, proxy, seed);
  std::vector<int> pool;
  for (const CandidateScore& score : ranking.ranked) {
    if (static_cast<int>(pool.size()) >= pool_n) break;
    for (size_t i = 0; i < specs.size(); ++i) {
      if (specs[i].name == score.name) {
        pool.push_back(static_cast<int>(i));
        break;
      }
    }
  }
  return pool;
}

namespace {

void Record(std::vector<MethodScores>* out, const std::string& method,
            double acc) {
  for (auto& m : *out) {
    if (m.method == method) {
      m.test_accs.push_back(acc);
      return;
    }
  }
  out->push_back({method, {acc}});
}

}  // namespace

std::vector<MethodScores> RunNodeRoster(const Graph& graph,
                                        const RosterOptions& options) {
  std::vector<MethodScores> out;
  for (int rep = 0; rep < options.repeats; ++rep) {
    const uint64_t seed = options.seed + 7919ULL * rep;
    Rng rng(seed);
    DataSplit split =
        options.per_class_split
            ? PerClassSplit(graph, options.per_class, options.val_count,
                            options.test_count, &rng)
            : RandomSplit(graph, options.train_fraction,
                          options.val_fraction, &rng);

    // Single models (bagged, like every other method).
    std::vector<SingleRun> singles =
        TrainSingles(graph, options.singles, split, options.bagging,
                     options.val_fraction, options.train, seed);
    if (options.run_singles) {
      for (const SingleRun& run : singles) {
        Record(&out, run.name, run.test_accuracy);
      }
    }

    if (options.run_label_prop) {
      Record(&out, "LabelProp",
             Accuracy(LabelPropagation(graph, split.train, 30, 0.8),
                      graph.labels(), split.test));
    }
    if (options.run_correct_smooth) {
      // Post-process the best-validation single model, the paper's
      // "GAT + C&S"-style trick row.
      size_t best = 0;
      for (size_t i = 1; i < singles.size(); ++i) {
        if (singles[i].val_accuracy > singles[best].val_accuracy) best = i;
      }
      Matrix refined = CorrectAndSmooth(singles[best].bagged_probs, graph,
                                        split.train, CorrectSmoothConfig());
      Record(&out, "Best single + C&S",
             Accuracy(refined, graph.labels(), split.test));
    }

    // Shared pool from real proxy evaluation.
    std::vector<int> pool = PoolByProxyEval(graph, options.singles,
                                            options.pool_n, options.train,
                                            seed ^ 0x9999ULL);
    std::vector<Matrix> pool_probs;
    std::vector<CandidateSpec> pool_specs;
    for (int idx : pool) {
      pool_probs.push_back(singles[idx].bagged_probs);
      pool_specs.push_back(options.singles[idx]);
    }

    if (options.run_random_ensemble) {
      Rng pick_rng(seed ^ 0x12344321ULL);
      std::vector<int> random_pool = RandomEnsembleSelect(
          static_cast<int>(options.singles.size()), options.pool_n,
          &pick_rng);
      std::vector<Matrix> member_probs;
      for (int idx : random_pool) {
        member_probs.push_back(singles[idx].bagged_probs);
      }
      Record(&out, "Random Ensemble",
             Accuracy(AverageProbs(member_probs), graph.labels(),
                      split.test));
    }

    if (options.run_ensembles) {
      Record(&out, "D-ensemble",
             Accuracy(AverageProbs(pool_probs), graph.labels(), split.test));
      std::vector<double> learned = LearnEnsembleWeights(
          pool_probs, graph.labels(), split.val, /*epochs=*/200,
          /*learning_rate=*/0.05);
      Record(&out, "L-ensemble",
             Accuracy(WeightedProbs(pool_probs, learned), graph.labels(),
                      split.test));
      std::vector<int> greedy =
          GreedyEnsembleSelect(pool_probs, graph.labels(), split.val);
      std::vector<Matrix> greedy_probs;
      for (int idx : greedy) greedy_probs.push_back(pool_probs[idx]);
      Record(&out, "Goyal et al.",
             Accuracy(AverageProbs(greedy_probs), graph.labels(),
                      split.test));
    }

    if (options.run_autohens) {
      for (SearchAlgo algo : {SearchAlgo::kAdaptive, SearchAlgo::kGradient}) {
        AutoHEnsConfig cfg;
        cfg.pool_size = options.pool_n;
        cfg.k = options.k;
        cfg.algo = algo;
        cfg.fixed_pool = pool_specs;  // share the PE pool across methods
        cfg.train = options.train;
        cfg.adaptive.train = options.train;
        cfg.gradient.max_epochs = options.train.max_epochs / 2 + 5;
        cfg.bagging_splits = options.bagging;
        cfg.val_fraction = options.val_fraction;
        cfg.seed = seed ^ (algo == SearchAlgo::kAdaptive ? 0xadaULL
                                                         : 0x9badULL);
        AutoHEnsResult result = RunAutoHEnsGnn(graph, split, {}, cfg);
        Record(&out,
               algo == SearchAlgo::kAdaptive ? "AutoHEnsGNN(Adaptive)"
                                             : "AutoHEnsGNN(Gradient)",
               result.test_accuracy);
      }
    }
  }
  return out;
}

std::string MeanStdCell(const std::vector<double>& values) {
  return FormatMeanStd(Summarize(values), /*percent=*/true);
}

}  // namespace ahg::bench
