// Shared machinery for the table/figure reproduction benches: aligned table
// printing, the standard method roster (single models, ensemble baselines,
// AutoHEnsGNN variants) and bagged single-model training.
//
// Every bench accepts --fast to shrink repeats for smoke testing; the
// default (no-argument) invocation runs the full reproduction settings.
#ifndef AUTOHENS_BENCH_COMMON_BENCH_UTIL_H_
#define AUTOHENS_BENCH_COMMON_BENCH_UTIL_H_

#include <string>
#include <vector>

#include "core/autohens.h"
#include "graph/graph.h"
#include "graph/split.h"
#include "models/model_zoo.h"
#include "tasks/train_node.h"

namespace ahg::bench {

// True when --fast was passed (smoke-test mode: fewer repeats/epochs).
bool FastMode(int argc, char** argv);

// Observability flags shared by the benches: --trace-out FILE enables
// tracing and (at FlushObsOutputs) writes a chrome://tracing JSON timeline;
// --metrics-out FILE dumps the process metrics registry as TSV.
struct ObsFlags {
  std::string trace_out;
  std::string metrics_out;
};

// Parses the flags above and enables tracing when --trace-out was given.
ObsFlags ParseObsFlags(int argc, char** argv);

// Writes whichever outputs were requested; returns false (and prints to
// stderr) when a write fails. Call once, after the measured work.
bool FlushObsOutputs(const ObsFlags& flags);

// Column-aligned plain-text table.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);
  void AddRow(std::vector<std::string> row);
  void Print() const;

 private:
  std::vector<std::vector<std::string>> rows_;
};

// Training settings shared by the benches (sized for a single CPU core).
TrainConfig DefaultBenchTrain();

// The paper's Table II/III single-model roster mapped onto our zoo.
std::vector<CandidateSpec> PaperSingleRoster();

// One single model trained with outer bagging over train/val resplits.
struct SingleRun {
  std::string name;
  Matrix bagged_probs;  // averaged over bagging rounds
  double val_accuracy = 0.0;  // on the base split's validation set
  double test_accuracy = 0.0;
};

std::vector<SingleRun> TrainSingles(const Graph& graph,
                                    const std::vector<CandidateSpec>& specs,
                                    const DataSplit& base_split, int bagging,
                                    double val_fraction,
                                    const TrainConfig& train, uint64_t seed);

// Pool selection by real proxy evaluation over `specs`; returns indices
// into `specs`, best first.
std::vector<int> PoolByProxyEval(const Graph& graph,
                                 const std::vector<CandidateSpec>& specs,
                                 int pool_n, const TrainConfig& train,
                                 uint64_t seed);

struct RosterOptions {
  int repeats = 2;
  int bagging = 2;  // train/val resplits bagged into every method
  double train_fraction = 0.4;
  double val_fraction = 0.2;
  bool per_class_split = false;  // Planetoid protocol (Table III)
  int per_class = 20;
  int val_count = 500;
  int test_count = 1000;
  TrainConfig train;
  int pool_n = 3;
  int k = 3;
  bool run_singles = true;
  bool run_random_ensemble = false;
  bool run_ensembles = true;  // D-ensemble, L-ensemble, Goyal et al.
  bool run_autohens = true;   // Adaptive + Gradient
  bool run_label_prop = false;      // classic label-propagation baseline
  bool run_correct_smooth = false;  // best single + C&S (Table V trick rows)
  std::vector<CandidateSpec> singles;
  uint64_t seed = 1;
};

struct MethodScores {
  std::string method;
  std::vector<double> test_accs;  // one entry per repeat
};

// Runs the full method roster `repeats` times on `graph`; all ensemble
// methods share the proxy-evaluation pool, exactly as in Tables II/III.
std::vector<MethodScores> RunNodeRoster(const Graph& graph,
                                        const RosterOptions& options);

// "86.1±0.2" from a per-repeat score vector (percent).
std::string MeanStdCell(const std::vector<double>& values);

}  // namespace ahg::bench

#endif  // AUTOHENS_BENCH_COMMON_BENCH_UTIL_H_
