// Table IX: graph classification on a PROTEINS-like synthetic set. The
// paper's specialized pooling baselines (MEWISPool, U2GNN, HGP-SL, ...) are
// substituted by seven graph-level adaptations of our zoo; the ensemble
// roster (D-/L-ensemble, Goyal, AutoHEnsGNN with K = 3, N = 2) matches the
// paper's setup. The probability-matrix ensemble baselines are reused
// verbatim from the node-classification implementation.
#include <algorithm>
#include <cstdio>
#include <map>

#include "common/bench_util.h"
#include "core/search_adaptive.h"
#include "ensemble/baselines.h"
#include "graph/graph_set.h"
#include "metrics/metrics.h"
#include "tasks/train_graph.h"

int main(int argc, char** argv) {
  using namespace ahg;
  using namespace ahg::bench;
  const bool fast = FastMode(argc, argv);

  std::printf(
      "== Table IX: graph classification (PROTEINS analog) ==\n"
      "Paper reference (accuracy %%): GIN 76.2, GraphSAGE 73.0, best "
      "specialized\n"
      "  baseline HGP-SL 84.9; D-ens 84.8, L-ens 84.9, Goyal 84.8,\n"
      "  AutoHEnsGNN Ada. 85.4, Grad. 85.6\n"
      "Expected shape: hierarchical ensemble on top of the baselines.\n\n");

  ProteinsLikeConfig pcfg;
  pcfg.num_graphs = fast ? 120 : 300;
  pcfg.seed = 33;
  GraphSet set = GenerateProteinsLike(pcfg);
  double avg_degree = 0.0;
  for (const Graph& g : set.graphs) avg_degree += g.AverageDegree();
  avg_degree /= static_cast<double>(set.graphs.size());

  const std::vector<std::pair<std::string, ModelFamily>> singles{
      {"GIN-g", ModelFamily::kGin},
      {"GraphSAGE-g", ModelFamily::kSageMean},
      {"GCN-g", ModelFamily::kGcn},
      {"TAGC-g", ModelFamily::kTagcn},
      {"GAT-g", ModelFamily::kGat},
      {"GatedGNN-g", ModelFamily::kGatedGnn},
      {"ChebNet-g", ModelFamily::kCheb}};
  const int repeats = fast ? 1 : 2;
  const int k = 3, pool_n = 2;

  TrainConfig tcfg;
  tcfg.max_epochs = fast ? 10 : 30;
  tcfg.patience = 8;
  tcfg.learning_rate = 1e-2;

  std::map<std::string, std::vector<double>> accs;
  std::vector<std::string> method_order;
  auto record = [&](const std::string& method, double acc) {
    if (accs.find(method) == accs.end()) method_order.push_back(method);
    accs[method].push_back(acc);
  };

  for (int rep = 0; rep < repeats; ++rep) {
    Rng rng(1000 + 17 * rep);
    GraphSetSplit split = RandomGraphSetSplit(set, 0.6, 0.2, &rng);
    // DataSplit-free ensemble reuse: baselines operate on per-graph
    // probability matrices with val/test index vectors.
    struct SingleRun {
      Matrix probs;
      double val_acc;
    };
    std::vector<SingleRun> runs;
    for (size_t s = 0; s < singles.size(); ++s) {
      ModelConfig mcfg;
      mcfg.family = singles[s].second;
      mcfg.hidden_dim = 16;
      mcfg.num_layers = 3;
      mcfg.dropout = 0.2;
      mcfg.seed = 50 * (s + 1) + rep;
      TrainConfig run = tcfg;
      run.seed = mcfg.seed ^ 0xdeadULL;
      GraphTrainResult r = TrainGraphClassifier(mcfg, set, split, run);
      record(singles[s].first, r.test_accuracy);
      runs.push_back({std::move(r.probs), r.val_accuracy});
    }

    // Pool = top-N by validation accuracy.
    std::vector<int> order(singles.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      return runs[a].val_acc > runs[b].val_acc;
    });
    order.resize(pool_n);
    std::vector<Matrix> pool_probs;
    for (int idx : order) pool_probs.push_back(runs[idx].probs);

    record("D-ensemble", Accuracy(AverageProbs(pool_probs), set.labels,
                                  split.test));
    std::vector<double> learned = LearnEnsembleWeights(
        pool_probs, set.labels, split.val, 200, 0.05);
    record("L-ensemble", Accuracy(WeightedProbs(pool_probs, learned),
                                  set.labels, split.test));
    std::vector<int> greedy =
        GreedyEnsembleSelect(pool_probs, set.labels, split.val);
    std::vector<Matrix> greedy_probs;
    for (int idx : greedy) greedy_probs.push_back(pool_probs[idx]);
    record("Goyal et al.", Accuracy(AverageProbs(greedy_probs), set.labels,
                                    split.test));

    // AutoHEnsGNN: probe depth per pool family, K seeds at the best depth,
    // adaptive / validation-learned beta.
    std::vector<Matrix> gse_probs;
    std::vector<double> gse_val;
    for (int idx : order) {
      double best_val = -1.0;
      int best_depth = 3;
      for (int depth = 2; depth <= 4; ++depth) {
        ModelConfig probe;
        probe.family = singles[idx].second;
        probe.hidden_dim = 16;
        probe.num_layers = depth;
        probe.dropout = 0.2;
        probe.seed = 7000 + depth;
        TrainConfig run = tcfg;
        run.max_epochs = tcfg.max_epochs * 2 / 3 + 2;
        GraphTrainResult r = TrainGraphClassifier(probe, set, split, run);
        if (r.val_accuracy > best_val) {
          best_val = r.val_accuracy;
          best_depth = depth;
        }
      }
      std::vector<Matrix> member_probs;
      for (int seed = 0; seed < k; ++seed) {
        ModelConfig mcfg;
        mcfg.family = singles[idx].second;
        mcfg.hidden_dim = 16;
        mcfg.num_layers = best_depth;
        mcfg.dropout = 0.2;
        mcfg.seed = 9000 + 100 * idx + seed + rep;
        TrainConfig run = tcfg;
        run.seed = mcfg.seed ^ 0xbeadULL;
        member_probs.push_back(
            TrainGraphClassifier(mcfg, set, split, run).probs);
      }
      Matrix gse = AverageProbs(member_probs);
      gse_val.push_back(Accuracy(gse, set.labels, split.val));
      gse_probs.push_back(std::move(gse));
    }
    std::vector<double> ada_beta =
        AdaptiveBeta(gse_val, avg_degree, 3, 8000, 5);
    record("AutoHEnsGNN(Adaptive)",
           Accuracy(WeightedProbs(gse_probs, ada_beta), set.labels,
                    split.test));
    std::vector<double> grad_beta = LearnEnsembleWeights(
        gse_probs, set.labels, split.val, 200, 0.05);
    record("AutoHEnsGNN(Gradient)",
           Accuracy(WeightedProbs(gse_probs, grad_beta), set.labels,
                    split.test));
  }

  std::printf("Measured (mean±std over %d repeats, %zu graphs):\n", repeats,
              set.graphs.size());
  TablePrinter table({"Method", "PROTEINS*"});
  for (const std::string& method : method_order) {
    table.AddRow({method, MeanStdCell(accs[method])});
  }
  table.Print();
  return 0;
}
