// Table IV: ablation study. Successively adds each component on the A-E
// analogs: random ensemble -> + proxy-evaluation pool (PE) -> + graph
// self-ensemble (GSE) -> + adaptive / gradient search. Also prints the
// min~max spread of single models, the paper's first row.
#include <algorithm>
#include <cstdio>
#include <map>

#include "common/bench_util.h"
#include "core/hierarchical.h"
#include "ensemble/baselines.h"
#include "graph/synthetic.h"
#include "metrics/metrics.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  using namespace ahg;
  using namespace ahg::bench;
  const bool fast = FastMode(argc, argv);

  std::printf(
      "== Table IV: ablation (A-E analogs) ==\n"
      "Paper reference (dataset A): Single 65.2~87.7, Random-Ens 83.3±2.5,\n"
      "  +PE 87.3±0.8, +GSE 88.6±0.3, +Adaptive 89.3±0.1, "
      "+Gradient 89.6±0.1\n"
      "Expected shape: each added component improves accuracy and shrinks "
      "the spread.\n\n");

  const std::vector<std::string> datasets{"A", "B", "C", "D", "E"};
  const int repeats = fast ? 1 : 2;
  const int pool_n = 3, k = 3;
  TrainConfig train = DefaultBenchTrain();
  if (fast) train.max_epochs = 12;
  std::vector<CandidateSpec> singles = PaperSingleRoster();

  std::vector<std::string> stage_order{
      "Single Model (min~max)", "Random Ensemble", "Ensemble + PE",
      "Ensemble + PE + GSE",    "+ Adaptive",      "+ Gradient"};
  std::map<std::string, std::map<std::string, std::string>> cells;

  for (const std::string& name : datasets) {
    Graph graph = MakePresetGraph(name, /*seed=*/400 + name[0]);
    double single_min = 1.0, single_max = 0.0;
    std::map<std::string, std::vector<double>> stage_scores;
    for (int rep = 0; rep < repeats; ++rep) {
      const uint64_t seed = 555 + 7919ULL * rep;
      Rng rng(seed);
      DataSplit split = RandomSplit(graph, 0.4, 0.2, &rng);
      std::vector<SingleRun> runs = TrainSingles(
          graph, singles, split, /*bagging=*/1, 0.2, train, seed);
      for (const SingleRun& run : runs) {
        single_min = std::min(single_min, run.test_accuracy);
        single_max = std::max(single_max, run.test_accuracy);
      }

      // Random ensemble of pool_n models.
      Rng pick(seed ^ 0x777ULL);
      std::vector<int> random_pool = RandomEnsembleSelect(
          static_cast<int>(singles.size()), pool_n, &pick);
      std::vector<Matrix> random_probs;
      for (int idx : random_pool) random_probs.push_back(runs[idx].bagged_probs);
      stage_scores["Random Ensemble"].push_back(
          Accuracy(AverageProbs(random_probs), graph.labels(), split.test));

      // + PE: proxy-evaluation-selected pool, plain average.
      std::vector<int> pool =
          PoolByProxyEval(graph, singles, pool_n, train, seed ^ 0x4242ULL);
      std::vector<Matrix> pool_probs;
      std::vector<CandidateSpec> pool_specs;
      for (int idx : pool) {
        pool_probs.push_back(runs[idx].bagged_probs);
        pool_specs.push_back(singles[idx]);
      }
      stage_scores["Ensemble + PE"].push_back(
          Accuracy(AverageProbs(pool_probs), graph.labels(), split.test));

      // + GSE: K seeds per architecture at mildly diverse depths, equal
      // architecture weights (no search yet).
      std::vector<Matrix> gse_probs;
      for (const CandidateSpec& spec : pool_specs) {
        const int max_l = spec.config.num_layers;
        std::vector<int> layers{max_l, std::max(1, max_l - 1), max_l};
        layers.resize(k, max_l);
        HierarchicalResult gse =
            TrainGse(spec, layers, graph, split, train, seed ^ 0x65eULL);
        gse_probs.push_back(std::move(gse.per_model_probs[0]));
      }
      stage_scores["Ensemble + PE + GSE"].push_back(
          Accuracy(AverageProbs(gse_probs), graph.labels(), split.test));

      // + Adaptive / + Gradient: the full pipelines on the same pool.
      for (SearchAlgo algo : {SearchAlgo::kAdaptive, SearchAlgo::kGradient}) {
        AutoHEnsConfig cfg;
        cfg.pool_size = pool_n;
        cfg.k = k;
        cfg.algo = algo;
        cfg.fixed_pool = pool_specs;
        cfg.train = train;
        cfg.adaptive.train = train;
        cfg.gradient.max_epochs = train.max_epochs / 2 + 5;
        cfg.bagging_splits = 1;
        cfg.seed = seed ^ 0xf00dULL;
        AutoHEnsResult result = RunAutoHEnsGnn(graph, split, {}, cfg);
        stage_scores[algo == SearchAlgo::kAdaptive ? "+ Adaptive"
                                                   : "+ Gradient"]
            .push_back(result.test_accuracy);
      }
    }
    cells["Single Model (min~max)"][name] =
        StrFormat("%.1f~%.1f", 100.0 * single_min, 100.0 * single_max);
    for (const auto& [stage, scores] : stage_scores) {
      cells[stage][name] = MeanStdCell(scores);
    }
    std::printf("[dataset %s done]\n", name.c_str());
  }

  std::printf("\nMeasured (%d repeats):\n", repeats);
  TablePrinter table({"Stage", "A", "B", "C", "D", "E"});
  for (const std::string& stage : stage_order) {
    std::vector<std::string> row{stage};
    for (const std::string& d : datasets) row.push_back(cells[stage][d]);
    table.AddRow(std::move(row));
  }
  table.Print();
  return 0;
}
