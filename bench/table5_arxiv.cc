// Table V: scalability on the ogbn-arxiv analog (12k nodes). Uses a compact
// single-model roster plus the ensemble baselines and both AutoHEnsGNN
// variants; the public-split protocol is emulated with one fixed random
// split shared by all methods.
#include <cstdio>

#include "common/bench_util.h"
#include "graph/synthetic.h"

int main(int argc, char** argv) {
  using namespace ahg;
  using namespace ahg::bench;
  const bool fast = FastMode(argc, argv);

  std::printf(
      "== Table V: ogbn-arxiv analog (scalability) ==\n"
      "Paper reference (accuracy %%): MLP 57.7, GCN 71.7, GAT 73.2, "
      "GCNII 72.7,\n"
      "  D-ens 73.9, L-ens 74.0, Goyal 74.0, AutoHEnsGNN Ada. 74.2, "
      "Grad. 74.3\n"
      "Expected shape: ensembles above every single model; Gradient best.\n\n");

  Graph graph = MakePresetGraph("arxiv-syn", /*seed=*/2022);
  std::printf("analog: %d nodes, %lld edges, %d classes\n\n",
              graph.num_nodes(), static_cast<long long>(graph.num_edges()),
              graph.num_classes());

  RosterOptions options;
  options.repeats = 1;  // large graph; variance reported via bagging members
  options.bagging = fast ? 1 : 2;
  options.train = DefaultBenchTrain();
  options.train.max_epochs = fast ? 8 : 32;
  options.train.patience = 8;
  options.train.lr_decay_every = 6;  // slower decay: the big graph needs
                                     // more epochs to converge
  options.singles.clear();
  for (const char* name :
       {"MLP", "GCN", "GAT", "GraphSAGE-mean", "SGC", "GCNII", "DAGNN"}) {
    CandidateSpec spec = FindCandidate(name);
    spec.config.hidden_dim = 24;  // CPU-scale hidden size
    options.singles.push_back(spec);
  }
  options.pool_n = 2;
  options.k = 2;
  options.run_label_prop = true;
  options.run_correct_smooth = true;
  options.seed = 9;

  std::vector<MethodScores> results = RunNodeRoster(graph, options);
  std::printf("Measured:\n");
  TablePrinter table({"Method", "arxiv-syn"});
  for (const MethodScores& m : results) {
    table.AddRow({m.method, MeanStdCell(m.test_accs)});
  }
  table.Print();
  return 0;
}
