// Table VII: the KDD Cup final leaderboard is scored by average rank across
// the five final datasets. The other teams' submissions are unobtainable,
// so this harness applies the same scoring rule to the methods we implement
// across the A-E analogs: AutoHEnsGNN must attain the best (lowest) average
// rank, mirroring team aister's first place (avg rank 4.8 of ~11 methods).
#include <cstdio>

#include "common/bench_util.h"
#include "graph/synthetic.h"
#include "metrics/aggregate.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  using namespace ahg;
  using namespace ahg::bench;
  const bool fast = FastMode(argc, argv);

  std::printf(
      "== Table VII: rank-score harness (competition scoring rule) ==\n"
      "Paper reference: aister (AutoHEnsGNN) wins with average rank 4.8;\n"
      "runner-up PASA_NJU 5.2. Here the \"teams\" are our implemented "
      "methods.\n\n");

  const std::vector<std::string> datasets{"A", "B", "C", "D", "E"};
  RosterOptions options;
  options.repeats = 1;
  options.bagging = fast ? 1 : 2;
  options.train = DefaultBenchTrain();
  options.train.max_epochs = fast ? 10 : 22;
  options.singles.clear();
  for (const char* name : {"GCN", "GAT", "TAGC", "GraphSAGE-mean", "GCNII",
                           "APPNP"}) {
    options.singles.push_back(FindCandidate(name));
  }
  options.pool_n = 3;
  options.k = 2;
  options.seed = 1234;

  std::vector<std::string> methods;
  std::vector<std::vector<double>> scores_by_dataset;
  for (const std::string& name : datasets) {
    Graph graph = MakePresetGraph(name, /*seed=*/500 + name[0]);
    std::vector<MethodScores> results = RunNodeRoster(graph, options);
    if (methods.empty()) {
      for (const MethodScores& m : results) methods.push_back(m.method);
    }
    std::vector<double> row;
    for (const MethodScores& m : results) row.push_back(m.test_accs[0]);
    scores_by_dataset.push_back(std::move(row));
    std::printf("[dataset %s done]\n", name.c_str());
  }

  std::vector<double> avg_rank = AverageRankScore(scores_by_dataset);
  std::vector<int> order(methods.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return avg_rank[a] < avg_rank[b]; });

  std::printf("\nMeasured leaderboard (avg rank over A-E, lower wins):\n");
  TablePrinter table({"Rank", "Method", "Average Rank Score"});
  for (size_t pos = 0; pos < order.size(); ++pos) {
    table.AddRow({std::to_string(pos + 1), methods[order[pos]],
                  FormatFloat(avg_rank[order[pos]], 1)});
  }
  table.Print();
  return 0;
}
