// Table II: accuracy on the anonymous AutoGraph datasets (A-E analogs).
// Reproduces the full method roster: 9 single models, D-/L-ensemble,
// Goyal et al. greedy ensemble, and both AutoHEnsGNN variants, with a
// two-sided Wilcoxon test between AutoHEnsGNN_Gradient and Goyal et al.
// as in the paper's caption.
#include <cstdio>
#include <map>

#include "common/bench_util.h"
#include "graph/synthetic.h"
#include "metrics/wilcoxon.h"

int main(int argc, char** argv) {
  using namespace ahg;
  using namespace ahg::bench;
  const bool fast = FastMode(argc, argv);

  std::printf(
      "== Table II: anonymous AutoGraph datasets (synthetic analogs) ==\n"
      "Paper reference (accuracy %%):\n"
      "  GCN 85.2/72.0/92.5/94.9/87.5  GAT 83.3/71.2/89.4/94.6/87.8\n"
      "  best ensemble baseline (Goyal) 88.7/74.5/93.9/95.7/88.7\n"
      "  AutoHEnsGNN Ada. 89.3/75.5/94.4/96.1/88.7  "
      "Grad. 89.6/76.1/94.7/96.3/88.8\n"
      "Expected shape: ensembles > best single; Gradient >= Adaptive >= "
      "Goyal/L-ens >= D-ens.\n\n");

  const std::vector<std::string> datasets{"A", "B", "C", "D", "E"};
  RosterOptions options;
  options.repeats = fast ? 1 : 2;
  options.bagging = 2;
  options.train = DefaultBenchTrain();
  if (fast) options.train.max_epochs = 12;
  options.singles = PaperSingleRoster();
  options.pool_n = 3;
  options.k = 3;
  options.seed = 2020;

  // method -> dataset -> cell; plus raw per-repeat scores for the test.
  std::vector<std::string> method_order;
  std::map<std::string, std::map<std::string, std::string>> cells;
  std::map<std::string, std::vector<double>> grad_scores, goyal_scores;
  for (const std::string& name : datasets) {
    Graph graph = MakePresetGraph(name, /*seed=*/100 + name[0]);
    std::vector<MethodScores> results = RunNodeRoster(graph, options);
    for (const MethodScores& m : results) {
      if (cells.find(m.method) == cells.end()) method_order.push_back(m.method);
      cells[m.method][name] = MeanStdCell(m.test_accs);
      if (m.method == "AutoHEnsGNN(Gradient)") grad_scores[name] = m.test_accs;
      if (m.method == "Goyal et al.") goyal_scores[name] = m.test_accs;
    }
    std::printf("[dataset %s done]\n", name.c_str());
  }

  std::printf("\nMeasured (mean±std over %d repeats, %d-split bagging):\n",
              options.repeats, options.bagging);
  TablePrinter table({"Method", "A", "B", "C", "D", "E"});
  for (const std::string& method : method_order) {
    std::vector<std::string> row{method};
    for (const std::string& d : datasets) row.push_back(cells[method][d]);
    table.AddRow(std::move(row));
  }
  table.Print();

  // Paired Wilcoxon across all datasets x repeats.
  std::vector<double> grad_all, goyal_all;
  for (const std::string& d : datasets) {
    grad_all.insert(grad_all.end(), grad_scores[d].begin(),
                    grad_scores[d].end());
    goyal_all.insert(goyal_all.end(), goyal_scores[d].begin(),
                     goyal_scores[d].end());
  }
  std::printf(
      "\nWilcoxon signed-rank (Gradient vs Goyal et al., two-sided): "
      "p = %.4f\n",
      WilcoxonSignedRankTest(grad_all, goyal_all));
  return 0;
}
