// Figure 7: the adaptive-beta hyper-parameters (epsilon, gamma, lambda of
// Eqn 8) on the Cora analog. Pool members are trained ONCE per repeat; each
// (eps, gamma, lambda) point only recombines the cached GSE probabilities
// with a different beta, so the sweep isolates the weighting rule exactly.
// Expected shape (paper): a bowl — extreme sharpness (small lambda/eps or
// large gamma biases to one model) and extreme uniformity both lose to the
// middle.
#include <cstdio>

#include "common/bench_util.h"
#include "core/hierarchical.h"
#include "core/search_adaptive.h"
#include "ensemble/baselines.h"
#include "graph/synthetic.h"
#include "metrics/metrics.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  using namespace ahg;
  using namespace ahg::bench;
  const bool fast = FastMode(argc, argv);

  std::printf(
      "== Figure 7: adaptive-beta hyper-parameters (Cora analog) ==\n"
      "Paper defaults: epsilon=3, gamma=8000, lambda=5.\n\n");

  Graph graph = MakePresetGraph("cora-syn", /*seed=*/2048);
  TrainConfig train = DefaultBenchTrain();
  train.max_epochs = fast ? 10 : 28;
  const int repeats = fast ? 1 : 2;
  std::vector<CandidateSpec> pool{FindCandidate("GCN"), FindCandidate("TAGC"),
                                  FindCandidate("GCNII")};

  // Train GSE members once per repeat; cache per-model probabilities and
  // validation accuracies.
  struct Cached {
    std::vector<Matrix> model_probs;
    std::vector<double> val_accs;
    std::vector<int> test;
  };
  std::vector<Cached> cache;
  for (int rep = 0; rep < repeats; ++rep) {
    Rng rng(300 + rep);
    DataSplit split = PerClassSplit(graph, 20, 500, 1000, &rng);
    Cached c;
    c.test = split.test;
    for (size_t j = 0; j < pool.size(); ++j) {
      const int max_l = pool[j].config.num_layers;
      HierarchicalResult gse =
          TrainGse(pool[j], {max_l, std::max(1, max_l - 1), max_l}, graph,
                   split, train, 4000 + 17ULL * rep + j);
      c.model_probs.push_back(gse.per_model_probs[0]);
      c.val_accs.push_back(
          Accuracy(c.model_probs.back(), graph.labels(), split.val));
    }
    cache.push_back(std::move(c));
    std::printf("[repeat %d pool trained]\n", rep + 1);
  }

  auto evaluate = [&](double eps, double gamma, double lambda) {
    std::vector<double> accs;
    for (const Cached& c : cache) {
      std::vector<double> beta = AdaptiveBeta(
          c.val_accs, graph.AverageDegree(), eps, gamma, lambda);
      accs.push_back(Accuracy(WeightedProbs(c.model_probs, beta),
                              graph.labels(), c.test));
    }
    return MeanStdCell(accs);
  };

  TablePrinter table({"Sweep", "Value", "test acc (mean±std)"});
  for (double eps : {1.0, 3.0, 6.0, 10.0}) {
    table.AddRow({"epsilon (gamma=8000, lambda=5)", FormatFloat(eps, 0),
                  evaluate(eps, 8000, 5)});
  }
  for (double gamma : {10.0, 1000.0, 8000.0, 64000.0}) {
    table.AddRow({"gamma (eps=3, lambda=5)", FormatFloat(gamma, 0),
                  evaluate(3, gamma, 5)});
  }
  for (double lambda : {1.0, 3.0, 5.0, 8.0}) {
    table.AddRow({"lambda (eps=3, gamma=8000)", FormatFloat(lambda, 0),
                  evaluate(3, 8000, lambda)});
  }
  std::printf("\n");
  table.Print();
  return 0;
}
