#include "tensor/matrix.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "kernels/autotune.h"
#include "kernels/kernel_ops.h"
#include "obs/trace.h"
#include "tensor/aligned.h"
#include "tensor/alloc_tracker.h"
#include "tensor/pool.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace ahg {
namespace {

// Workloads below this many multiply-adds use the tier-default kernel
// variant without consulting (or populating) the autotuner — tuning
// overhead would swamp any win on small shapes.
constexpr int64_t kTuneMinWork = 1 << 20;

// Candidate k-panel sizes (rows of B kept hot per slab) for GEMM tuning.
constexpr int kGemmKPanels[] = {64, 128, 256};

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Runs one GEMM candidate over the first `bench_rows` rows and returns
// elapsed ns. Accumulates into c's real rows; the caller re-zeros them
// before the production pass, so the benchmark leaves no trace.
double BenchGemmCandidate(const kernels::TierOps& ops,
                          const kernels::GemmChoice& cand, const Matrix& a,
                          const Matrix& b, int bench_rows, Matrix* c) {
  const int64_t t0 = NowNs();
  for (int k0 = 0; k0 < a.cols(); k0 += cand.kpanel) {
    const int k1 = std::min(a.cols(), k0 + cand.kpanel);
    for (int i = 0; i < bench_rows; ++i) {
      ops.gemm_panel(cand.jblock, a.Row(i) + k0, k1 - k0, b.Row(k0), b.cols(),
                     b.cols(), c->Row(i));
    }
  }
  return static_cast<double>(NowNs() - t0);
}

// Resolves the GEMM variant for this shape: forced (tests) > cached >
// benchmarked-on-first-use > tier default. Any rows the benchmark dirtied
// are re-zeroed before returning.
kernels::GemmChoice ResolveGemmChoice(const kernels::TierOps& ops,
                                      const Matrix& a, const Matrix& b,
                                      Matrix* c) {
  if (const kernels::GemmChoice* forced = kernels::ForcedGemm()) {
    return *forced;
  }
  const int64_t work = int64_t{a.rows()} * a.cols() * b.cols();
  if (work < kTuneMinWork || !kernels::AutotuneEnabled()) {
    return kernels::GemmChoice{};
  }
  const std::string key =
      kernels::GemmShapeKey(ops.tier, a.cols(), b.cols(), a.rows());
  kernels::KernelTuner& tuner = kernels::KernelTuner::Global();
  kernels::GemmChoice cached;
  if (tuner.LookupGemm(key, &cached)) return cached;
  std::vector<kernels::GemmChoice> candidates;
  for (int bi = 0; bi < ops.num_gemm_jblocks; ++bi) {
    for (const int kp : kGemmKPanels) {
      candidates.push_back(kernels::GemmChoice{ops.gemm_jblocks[bi], kp});
    }
  }
  const int bench_rows = std::min(a.rows(), 8);
  const kernels::GemmChoice choice = tuner.GetGemm(
      key, candidates, [&](const kernels::GemmChoice& cand) {
        return BenchGemmCandidate(ops, cand, a, b, bench_rows, c);
      });
  if (bench_rows > 0) {
    std::fill(c->Row(0), c->Row(0) + int64_t{bench_rows} * c->cols(), 0.0);
  }
  return choice;
}

// Resolves the MatMulTransA variant: jblock = column tile width over
// b.cols() (0 = one untiled pass). Tiling splits each chunk's rank-1
// updates into column bands so a band of the partial stays register/cache
// hot; for any fixed output entry the k-accumulation sequence is unchanged,
// so every tile width is exact. The fixed reduction-chunk size is NOT a
// knob — it defines the FP grouping of the cross-chunk reduction.
kernels::GemmChoice ResolveTransAChoice(const kernels::TierOps& ops,
                                        const Matrix& a, const Matrix& b) {
  if (const kernels::GemmChoice* forced = kernels::ForcedGemmTransA()) {
    return *forced;
  }
  const int64_t work = int64_t{a.rows()} * a.cols() * b.cols();
  if (work < kTuneMinWork || !kernels::AutotuneEnabled()) {
    return kernels::GemmChoice{0, 0};
  }
  const std::string key =
      kernels::GemmShapeKey(ops.tier, a.cols(), b.cols(), a.rows());
  kernels::KernelTuner& tuner = kernels::KernelTuner::Global();
  kernels::GemmChoice cached;
  if (tuner.LookupGemmTransA(key, &cached)) return cached;
  std::vector<kernels::GemmChoice> candidates{{0, 0}};
  if (b.cols() > 64) candidates.push_back({64, 0});
  if (b.cols() > 256) candidates.push_back({256, 0});
  const int bench_rows = static_cast<int>(std::min<int64_t>(a.rows(), 256));
  Matrix scratch(a.cols(), b.cols());  // discarded; timing only
  return tuner.GetGemmTransA(
      key, candidates, [&](const kernels::GemmChoice& cand) {
        const int jtile = cand.jblock > 0 ? cand.jblock : b.cols();
        const int64_t t0 = NowNs();
        for (int j0 = 0; j0 < b.cols(); j0 += jtile) {
          const int jw = std::min(b.cols() - j0, jtile);
          for (int k = 0; k < bench_rows; ++k) {
            const double* arow = a.Row(k);
            const double* brow = b.Row(k);
            for (int i = 0; i < a.cols(); ++i) {
              const double aki = arow[i];
              if (aki == 0.0) continue;
              ops.axpy_inplace(scratch.Row(i) + j0, aki, brow + j0, jw);
            }
          }
        }
        return static_cast<double>(NowNs() - t0);
      });
}

// Resolves the MatMulTransB variant: jblock = tile of b's rows (output
// columns) processed per pass, i innermost within a pass so the tile of B
// rows is reused across every row of a. Each c[i][j] is still one complete
// ascending-k dot (dot4 lanes are independent dots), so tiling is exact.
kernels::GemmChoice ResolveTransBChoice(const kernels::TierOps& ops,
                                        const Matrix& a, const Matrix& b,
                                        Matrix* c) {
  if (const kernels::GemmChoice* forced = kernels::ForcedGemmTransB()) {
    return *forced;
  }
  const int64_t work = int64_t{a.rows()} * a.cols() * b.rows();
  if (work < kTuneMinWork || !kernels::AutotuneEnabled()) {
    return kernels::GemmChoice{0, 0};
  }
  const std::string key =
      kernels::GemmShapeKey(ops.tier, a.cols(), b.rows(), a.rows());
  kernels::KernelTuner& tuner = kernels::KernelTuner::Global();
  kernels::GemmChoice cached;
  if (tuner.LookupGemmTransB(key, &cached)) return cached;
  std::vector<kernels::GemmChoice> candidates{{0, 0}};
  if (b.rows() > 64) candidates.push_back({64, 0});
  if (b.rows() > 256) candidates.push_back({256, 0});
  // Bench over the first few output rows of c; entries are assigned (not
  // accumulated) and the production pass overwrites every one, so the
  // benchmark leaves no trace.
  const int bench_rows = std::min(a.rows(), 8);
  return tuner.GetGemmTransB(
      key, candidates, [&](const kernels::GemmChoice& cand) {
        const int jtile = cand.jblock > 0 ? cand.jblock : b.rows();
        const int64_t t0 = NowNs();
        for (int j0 = 0; j0 < b.rows(); j0 += jtile) {
          const int j1 = std::min(b.rows(), j0 + jtile);
          for (int i = 0; i < bench_rows; ++i) {
            const double* arow = a.Row(i);
            double* crow = c->Row(i);
            int j = j0;
            for (; j + 4 <= j1; j += 4) {
              ops.dot4(arow, b.Row(j), b.Row(j + 1), b.Row(j + 2),
                       b.Row(j + 3), a.cols(), crow + j);
            }
            for (; j < j1; ++j) {
              const double* brow = b.Row(j);
              double dot = 0.0;
              for (int k = 0; k < a.cols(); ++k) dot += arow[k] * brow[k];
              crow[j] = dot;
            }
          }
        }
        return static_cast<double>(NowNs() - t0);
      });
}

}  // namespace

void Matrix::Allocate(int rows, int cols, bool zero) {
  AHG_CHECK_GE(rows, 0);
  AHG_CHECK_GE(cols, 0);
  rows_ = rows;
  cols_ = cols;
  const int64_t n = size();
  if (n > 0) {
    if (PoolingEnabled()) {
      // Pool hits recycle (and re-zero) a parked buffer; misses heap-
      // allocate and are the only path that counts in AllocTracker.
      data_ = MatrixPool::Global().Acquire(n, zero);
      pooled_ = true;
    } else {
      data_ = AlignedAllocDoubles(n, zero);
      pooled_ = false;
      AllocTracker::Add(static_cast<size_t>(n) * sizeof(double));
    }
  }
}

void Matrix::Release() {
  if (data_ != nullptr) {
    if (pooled_) {
      MatrixPool::Global().Release(data_, size());
    } else {
      AllocTracker::Remove(static_cast<size_t>(size()) * sizeof(double));
      AlignedFreeDoubles(data_);
    }
    data_ = nullptr;
  }
  rows_ = 0;
  cols_ = 0;
  pooled_ = false;
}

Matrix::Matrix(int rows, int cols) { Allocate(rows, cols); }

Matrix::Matrix(const Matrix& other) {
  Allocate(other.rows_, other.cols_, /*zero=*/false);
  if (size() > 0) std::memcpy(data_, other.data_, size() * sizeof(double));
}

Matrix& Matrix::operator=(const Matrix& other) {
  if (this == &other) return *this;
  Release();
  Allocate(other.rows_, other.cols_, /*zero=*/false);
  if (size() > 0) std::memcpy(data_, other.data_, size() * sizeof(double));
  return *this;
}

Matrix::Matrix(Matrix&& other) noexcept
    : rows_(other.rows_),
      cols_(other.cols_),
      pooled_(other.pooled_),
      data_(other.data_) {
  other.rows_ = 0;
  other.cols_ = 0;
  other.pooled_ = false;
  other.data_ = nullptr;
}

Matrix& Matrix::operator=(Matrix&& other) noexcept {
  if (this == &other) return *this;
  Release();
  rows_ = other.rows_;
  cols_ = other.cols_;
  pooled_ = other.pooled_;
  data_ = other.data_;
  other.rows_ = 0;
  other.cols_ = 0;
  other.pooled_ = false;
  other.data_ = nullptr;
  return *this;
}

Matrix::~Matrix() { Release(); }

Matrix Matrix::Constant(int rows, int cols, double value) {
  Matrix m(rows, cols);
  m.Fill(value);
  return m;
}

Matrix Matrix::Identity(int n) {
  Matrix m(n, n);
  for (int i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::Gaussian(int rows, int cols, double stddev, Rng* rng) {
  Matrix m(rows, cols);
  for (int64_t i = 0; i < m.size(); ++i) m.data_[i] = rng->Normal(0.0, stddev);
  return m;
}

Matrix Matrix::FromRows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(static_cast<int>(rows.size()), static_cast<int>(rows[0].size()));
  for (int r = 0; r < m.rows(); ++r) {
    AHG_CHECK_EQ(static_cast<int>(rows[r].size()), m.cols());
    std::copy(rows[r].begin(), rows[r].end(), m.Row(r));
  }
  return m;
}

void Matrix::Fill(double value) {
  std::fill(data_, data_ + size(), value);
}

void Matrix::AddInPlace(const Matrix& other) {
  AHG_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  kernels::ActiveOps().add_inplace(data_, other.data_, size());
}

void Matrix::AxpyInPlace(double alpha, const Matrix& other) {
  AHG_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  kernels::ActiveOps().axpy_inplace(data_, alpha, other.data_, size());
}

void Matrix::ScaleInPlace(double alpha) {
  kernels::ActiveOps().scale_inplace(data_, alpha, size());
}

int Matrix::ArgMaxRow(int r) const {
  AHG_CHECK(r >= 0 && r < rows_ && cols_ > 0);
  const double* row = Row(r);
  int best = 0;
  for (int c = 1; c < cols_; ++c) {
    if (row[c] > row[best]) best = c;
  }
  return best;
}

double Matrix::Sum() const {
  double total = 0.0;
  for (int64_t i = 0; i < size(); ++i) total += data_[i];
  return total;
}

double Matrix::SquaredNorm() const {
  double total = 0.0;
  for (int64_t i = 0; i < size(); ++i) total += data_[i] * data_[i];
  return total;
}

Matrix MatMul(const Matrix& a, const Matrix& b) {
  AHG_CHECK_EQ(a.cols(), b.rows());
  AHG_TRACE_SPAN_ARG("tensor/matmul",
                     int64_t{a.rows()} * a.cols() * b.cols());
  Matrix c(a.rows(), b.cols());
  // Row-parallel and cache-blocked over the reduction dimension: the outer
  // k-panel loop keeps a kc x b.cols() slab of B hot in cache while every
  // row of the chunk streams through it. Each output row is owned by one
  // worker, and each c[i][j] still accumulates k in globally ascending
  // order (panels ascend, k ascends within a panel), so the result is
  // bitwise identical to the unblocked i-k-j kernel at every thread count
  // and every dispatch tier (see kernels/kernel_ops.h). The tier table and
  // tuned variant are resolved on the calling thread before the parallel
  // region so every worker uses the same kernel.
  const kernels::TierOps& ops = kernels::ActiveOps();
  const kernels::GemmChoice choice = ResolveGemmChoice(ops, a, b, &c);
  const int kpanel = choice.kpanel > 0 ? choice.kpanel : 128;
  const int64_t work_per_row = int64_t{a.cols()} * b.cols();
  ParallelForChunked(a.rows(), work_per_row, [&](int64_t begin, int64_t end) {
    for (int k0 = 0; k0 < a.cols(); k0 += kpanel) {
      const int k1 = std::min(a.cols(), k0 + kpanel);
      for (int64_t i = begin; i < end; ++i) {
        ops.gemm_panel(choice.jblock, a.Row(static_cast<int>(i)) + k0, k1 - k0,
                       b.Row(k0), b.cols(), b.cols(),
                       c.Row(static_cast<int>(i)));
      }
    }
  });
  return c;
}

Matrix MatMulTransA(const Matrix& a, const Matrix& b) {
  AHG_CHECK_EQ(a.rows(), b.rows());
  AHG_TRACE_SPAN_ARG("tensor/matmul_ta",
                     int64_t{a.rows()} * a.cols() * b.cols());
  Matrix c(a.cols(), b.cols());
  // Every output entry sums over all of a's rows, so rows of c cannot be
  // handed to one worker each without scattering. Instead partition the
  // reduction dimension into chunks of a *fixed* size (independent of the
  // thread count), give each worker whole chunks to accumulate privately,
  // and reduce the partials in chunk order on the calling thread. The
  // chunk grid and the reduction order are pure functions of the shapes,
  // so results are bitwise identical for every thread count.
  constexpr int64_t kReduceChunk = 2048;  // rows of a per partial
  const int64_t n = a.rows();
  const int64_t num_chunks = std::max<int64_t>(1, (n + kReduceChunk - 1) / kReduceChunk);
  const int64_t work_per_chunk =
      kReduceChunk * int64_t{a.cols()} * b.cols();
  // Partials are allocated on the calling thread; workers only fill them.
  std::vector<Matrix> partial;
  partial.reserve(num_chunks);
  for (int64_t p = 0; p < num_chunks; ++p) {
    partial.emplace_back(a.cols(), b.cols());
  }
  const kernels::TierOps& ops = kernels::ActiveOps();
  // Tuned column tile (see ResolveTransAChoice): exact for any width, so
  // the tuner is free to pick per shape. Resolved on the calling thread.
  const kernels::GemmChoice choice = ResolveTransAChoice(ops, a, b);
  const int jtile = choice.jblock > 0 ? choice.jblock : b.cols();
  ParallelForChunked(num_chunks, work_per_chunk,
                     [&](int64_t begin, int64_t end) {
    for (int64_t p = begin; p < end; ++p) {
      Matrix& local = partial[p];
      const int64_t k_end = std::min(n, (p + 1) * kReduceChunk);
      for (int j0 = 0; j0 < b.cols(); j0 += jtile) {
        const int jw = std::min(b.cols() - j0, jtile);
        for (int64_t k = p * kReduceChunk; k < k_end; ++k) {
          const double* arow = a.Row(static_cast<int>(k));
          const double* brow = b.Row(static_cast<int>(k));
          for (int i = 0; i < a.cols(); ++i) {
            const double aki = arow[i];
            if (aki == 0.0) continue;
            // Rank-1 band update local[i][j0..j0+jw) += aki * brow — an axpy.
            ops.axpy_inplace(local.Row(i) + j0, aki, brow + j0, jw);
          }
        }
      }
    }
  });
  for (int64_t p = 0; p < num_chunks; ++p) c.AddInPlace(partial[p]);
  return c;
}

Matrix MatMulTransB(const Matrix& a, const Matrix& b) {
  AHG_CHECK_EQ(a.cols(), b.cols());
  AHG_TRACE_SPAN_ARG("tensor/matmul_tb",
                     int64_t{a.rows()} * a.cols() * b.rows());
  Matrix c(a.rows(), b.rows());
  // Register-blocked over j: four dot products share each arow[k] load.
  // Every dot still accumulates its own k in ascending order (the SIMD dot4
  // transposes 4x4 blocks of B so each lane adds one k term at a time), so
  // values are bitwise identical to the one-j-at-a-time kernel.
  const kernels::TierOps& ops = kernels::ActiveOps();
  // Tuned j-tile (see ResolveTransBChoice): a band of B rows stays hot
  // across every row of the worker's range. Exact for any tile width since
  // each c[i][j] is one complete ascending-k dot either way.
  const kernels::GemmChoice choice = ResolveTransBChoice(ops, a, b, &c);
  const int jtile = choice.jblock > 0 ? choice.jblock : b.rows();
  const int64_t work_per_row = int64_t{a.cols()} * b.rows();
  ParallelForChunked(a.rows(), work_per_row, [&](int64_t begin, int64_t end) {
    for (int j0 = 0; j0 < b.rows(); j0 += jtile) {
      const int j1 = std::min(b.rows(), j0 + jtile);
      for (int64_t i = begin; i < end; ++i) {
        const double* arow = a.Row(static_cast<int>(i));
        double* crow = c.Row(static_cast<int>(i));
        int j = j0;
        for (; j + 4 <= j1; j += 4) {
          ops.dot4(arow, b.Row(j), b.Row(j + 1), b.Row(j + 2), b.Row(j + 3),
                   a.cols(), crow + j);
        }
        for (; j < j1; ++j) {
          const double* brow = b.Row(j);
          double dot = 0.0;
          for (int k = 0; k < a.cols(); ++k) dot += arow[k] * brow[k];
          crow[j] = dot;
        }
      }
    }
  });
  return c;
}

Matrix Transpose(const Matrix& a) {
  Matrix t(a.cols(), a.rows());
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < a.cols(); ++j) t(j, i) = a(i, j);
  }
  return t;
}

Matrix Add(const Matrix& a, const Matrix& b) {
  Matrix c = a;
  c.AddInPlace(b);
  return c;
}

Matrix Sub(const Matrix& a, const Matrix& b) {
  Matrix c = a;
  c.AxpyInPlace(-1.0, b);
  return c;
}

Matrix CWiseMul(const Matrix& a, const Matrix& b) {
  AHG_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  Matrix c(a.rows(), a.cols());
  kernels::ActiveOps().cwise_mul(a.data(), b.data(), a.size(), c.data());
  return c;
}

Matrix Scale(const Matrix& a, double alpha) {
  Matrix c = a;
  c.ScaleInPlace(alpha);
  return c;
}

Matrix RowSoftmax(const Matrix& a) {
  AHG_TRACE_SPAN_ARG("tensor/row_softmax", int64_t{a.rows()} * a.cols());
  Matrix out(a.rows(), a.cols());
  // Zero-column input: nothing to normalize (and row_max on an empty row
  // would read past the end of a null buffer).
  if (a.cols() == 0) return out;
  // Row-owned, so parallel execution is bitwise identical to sequential.
  // The max is order-independent for NaN-free input and division is exact
  // per lane, so those vectorize; the exp + running sum keeps the scalar
  // accumulation order.
  const kernels::TierOps& ops = kernels::ActiveOps();
  ParallelForChunked(a.rows(), 4 * a.cols(), [&](int64_t begin, int64_t end) {
    for (int64_t ri = begin; ri < end; ++ri) {
      const int r = static_cast<int>(ri);
      const double* in = a.Row(r);
      double* dst = out.Row(r);
      const double max_val = ops.row_max(in, a.cols());
      double total = 0.0;
      for (int c = 0; c < a.cols(); ++c) {
        dst[c] = std::exp(in[c] - max_val);
        total += dst[c];
      }
      ops.div_inplace(dst, a.cols(), total);
    }
  });
  return out;
}

Matrix RowLogSoftmax(const Matrix& a) {
  Matrix out(a.rows(), a.cols());
  if (a.cols() == 0) return out;
  const kernels::TierOps& ops = kernels::ActiveOps();
  ParallelForChunked(a.rows(), 4 * a.cols(), [&](int64_t begin, int64_t end) {
    for (int64_t ri = begin; ri < end; ++ri) {
      const int r = static_cast<int>(ri);
      const double* in = a.Row(r);
      double* dst = out.Row(r);
      const double max_val = ops.row_max(in, a.cols());
      double total = 0.0;
      for (int c = 0; c < a.cols(); ++c) total += std::exp(in[c] - max_val);
      const double log_total = std::log(total) + max_val;
      ops.sub_scalar(in, a.cols(), log_total, dst);
    }
  });
  return out;
}

bool AllClose(const Matrix& a, const Matrix& b, double tol) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (int64_t i = 0; i < a.size(); ++i) {
    if (std::abs(a.data()[i] - b.data()[i]) > tol) return false;
  }
  return true;
}

Matrix GatherRows(const Matrix& src, const std::vector<int>& rows) {
  Matrix out(static_cast<int>(rows.size()), src.cols());
  const size_t row_bytes = static_cast<size_t>(src.cols()) * sizeof(double);
  for (size_t i = 0; i < rows.size(); ++i) {
    const int r = rows[i];
    AHG_CHECK(r >= 0 && r < src.rows());
    std::memcpy(out.Row(static_cast<int>(i)), src.Row(r), row_bytes);
  }
  return out;
}

void ScatterRows(const Matrix& src, const std::vector<int>& rows,
                 Matrix* dst) {
  AHG_CHECK_EQ(src.rows(), static_cast<int>(rows.size()));
  AHG_CHECK_EQ(src.cols(), dst->cols());
  const size_t row_bytes = static_cast<size_t>(src.cols()) * sizeof(double);
  for (size_t i = 0; i < rows.size(); ++i) {
    const int r = rows[i];
    AHG_CHECK(r >= 0 && r < dst->rows());
    std::memcpy(dst->Row(r), src.Row(static_cast<int>(i)), row_bytes);
  }
}

Matrix GrowRows(const Matrix& src, int new_rows) {
  AHG_CHECK_GE(new_rows, src.rows());
  Matrix out(new_rows, src.cols());
  if (src.size() > 0) {
    std::memcpy(out.data(), src.data(),
                static_cast<size_t>(src.size()) * sizeof(double));
  }
  return out;
}

}  // namespace ahg
