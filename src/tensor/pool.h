// Memory-plane fast path: a shape-bucketed recycling pool for Matrix
// buffers plus the thread-local switches that turn it (and the fused
// kernels) on.
//
// Why: the autodiff engine constructs fresh Matrix values and gradients per
// node per step, so a zoo sweep churns the heap on every epoch even though
// the shapes repeat exactly. With pooling enabled, Matrix::Allocate draws
// from per-size free lists and ~Matrix returns buffers instead of freeing
// them; after one warm-up step the steady-state train/proxy/serve step
// performs zero tensor heap allocations (asserted in tests/pool_test.cc via
// AllocTracker::AllocationCount()).
//
// Determinism: a pooled buffer is zero-filled before reuse, exactly like
// the `new double[n]()` it replaces, and no kernel changes its reduction
// order based on the flag — results are bitwise identical with pooling (and
// fusion) on vs. off, at every thread count.
//
// Threading: the enable flags are thread-local (a training run on a proxy
// worker flips only its own allocations) while the pool itself is a
// process-wide, mutex-guarded singleton, so a buffer allocated on one
// thread may be released from another (serving caches do this). The mutex
// also publishes buffer contents between threads, so recycling is
// TSan-clean by construction.
#ifndef AUTOHENS_TENSOR_POOL_H_
#define AUTOHENS_TENSOR_POOL_H_

#include <cstdint>

namespace ahg {

// Point-in-time pool counters (monotonic except the idle_* pair). The same
// numbers are mirrored into the obs MetricsRegistry as tensor.pool_hits /
// tensor.pool_misses / tensor.pool_trimmed_bytes and the
// tensor.pool_idle_bytes gauge.
struct MatrixPoolStats {
  int64_t hits = 0;           // Acquire served from a free list
  int64_t misses = 0;         // Acquire fell through to the heap
  int64_t released = 0;       // buffers returned to a free list
  int64_t trimmed_bytes = 0;  // bytes freed back to the heap by TrimTo
  int64_t idle_bytes = 0;     // bytes currently parked in free lists
  int64_t idle_buffers = 0;
};

class MatrixPool {
 public:
  // Process-wide pool used by Matrix. Never destroyed (buffers parked at
  // exit stay reachable), so static-destruction order cannot bite.
  static MatrixPool& Global();

  MatrixPool() = default;
  MatrixPool(const MatrixPool&) = delete;
  MatrixPool& operator=(const MatrixPool&) = delete;

  // A buffer of `n` doubles, zero-filled when `zero` (the Matrix(r, c)
  // contract); from the size-n free list when possible, else the heap
  // (which counts as an AllocTracker allocation — pool hits do not).
  double* Acquire(int64_t n, bool zero);

  // Parks `ptr` (previously Acquired with the same `n`) for reuse.
  void Release(double* ptr, int64_t n);

  // Frees idle buffers, most-recently-parked first, until at most
  // `target_idle_bytes` remain parked. ScopedArena calls this with its
  // entry watermark so a finished run hands its temporaries back to the
  // heap instead of hoarding shapes no later run will request.
  void TrimTo(int64_t target_idle_bytes);

  // TrimTo(0): every idle buffer goes back to the heap.
  void Clear() { TrimTo(0); }

  MatrixPoolStats Stats() const;
  int64_t IdleBytes() const;
};

// True when Matrix allocations on this thread go through the pool.
bool PoolingEnabled();

// True when the fused single-pass kernels (Linear->ReLU, masked
// cross-entropy, in-place inference elementwise) are active on this thread.
// Fused kernels preserve the exact per-element accumulation order of their
// unfused forms, so flipping this never changes results.
bool FusionEnabled();

// RAII thread-local switch for both flags. Sets pooling/fusion to the given
// values (true or false — a nested scope can switch either off) and
// restores the previous values on destruction. Does not trim the pool; use
// ScopedArena for run-scoped reclamation.
class ScopedMemPlane {
 public:
  ScopedMemPlane(bool pooling, bool fusion);
  ~ScopedMemPlane();

  ScopedMemPlane(const ScopedMemPlane&) = delete;
  ScopedMemPlane& operator=(const ScopedMemPlane&) = delete;

 private:
  bool saved_pooling_;
  bool saved_fusion_;
};

// Run-scoped arena: enables pooling on this thread for the scope's
// lifetime and, on destruction, trims the global pool back to the idle-byte
// watermark observed at entry — every temporary the scope parked is
// reclaimed at once, while buffers that predate the scope stay warm.
// Training runs wrap each model fit in one ScopedArena; steps inside the
// scope recycle through the free lists. Pass enable=false for a no-op (the
// config-flag-off path). Nestable.
class ScopedArena {
 public:
  explicit ScopedArena(bool enable = true);
  ~ScopedArena();

  ScopedArena(const ScopedArena&) = delete;
  ScopedArena& operator=(const ScopedArena&) = delete;

 private:
  bool enabled_;
  bool saved_pooling_ = false;
  int64_t entry_idle_bytes_ = 0;
};

}  // namespace ahg

#endif  // AUTOHENS_TENSOR_POOL_H_
