// Compressed-sparse-row matrix for graph adjacency.
//
// Adjacency matrices are constants during training, so SparseMatrix carries
// no gradient machinery; autodiff ops treat it as fixed structure and only
// differentiate through the dense operand of SpMM.
#ifndef AUTOHENS_TENSOR_SPARSE_MATRIX_H_
#define AUTOHENS_TENSOR_SPARSE_MATRIX_H_

#include <vector>

#include "tensor/matrix.h"

namespace ahg {

// One (row, col, value) entry used when assembling a SparseMatrix.
struct CooEntry {
  int row = 0;
  int col = 0;
  double value = 0.0;
};

class SparseMatrix {
 public:
  SparseMatrix() = default;

  // Builds CSR from coordinate entries; duplicate (row, col) pairs are summed.
  static SparseMatrix FromCoo(int rows, int cols,
                              std::vector<CooEntry> entries);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int64_t nnz() const { return static_cast<int64_t>(col_idx_.size()); }

  // CSR accessors: row r's entries occupy [row_ptr()[r], row_ptr()[r + 1]).
  const std::vector<int64_t>& row_ptr() const { return row_ptr_; }
  const std::vector<int>& col_idx() const { return col_idx_; }
  const std::vector<double>& values() const { return values_; }
  std::vector<double>* mutable_values() { return &values_; }

  // Y = this * X (dense). X.rows() must equal cols().
  Matrix Spmm(const Matrix& x) const;

  // Y = this^T * X (dense). X.rows() must equal rows().
  Matrix SpmmTransposed(const Matrix& x) const;

  // Explicit transpose as a new CSR matrix.
  SparseMatrix Transposed() const;

  // Per-row sum of values (weighted out-degree for adjacency).
  std::vector<double> RowSums() const;

  // Number of stored entries in row r.
  int64_t RowNnz(int r) const { return row_ptr_[r + 1] - row_ptr_[r]; }

  // Densifies (tests and tiny graphs only).
  Matrix ToDense() const;

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<int64_t> row_ptr_;
  std::vector<int> col_idx_;
  std::vector<double> values_;
};

}  // namespace ahg

#endif  // AUTOHENS_TENSOR_SPARSE_MATRIX_H_
