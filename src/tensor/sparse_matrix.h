// Compressed-sparse-row matrix for graph adjacency.
//
// Adjacency matrices are constants during training, so SparseMatrix carries
// no gradient machinery; autodiff ops treat it as fixed structure and only
// differentiate through the dense operand of SpMM.
//
// Threading: Spmm and SpmmTransposed are row-parallel over the global
// thread count (util/thread_pool.h). Each output row is written by exactly
// one worker in a fixed accumulation order, so results are bitwise
// identical for every thread count. SpmmTransposed routes through a cached
// explicit transpose (TransposedCached) so its output rows are owned too —
// no atomics, no scatter races.
#ifndef AUTOHENS_TENSOR_SPARSE_MATRIX_H_
#define AUTOHENS_TENSOR_SPARSE_MATRIX_H_

#include <memory>
#include <vector>

#include "tensor/alloc_tracker.h"
#include "tensor/matrix.h"
#include "util/status.h"

namespace ahg {

// One (row, col, value) entry used when assembling a SparseMatrix.
struct CooEntry {
  int row = 0;
  int col = 0;
  double value = 0.0;
};

class SparseMatrix {
 public:
  SparseMatrix() = default;

  // Builds CSR from coordinate entries; duplicate (row, col) pairs are
  // summed. Out-of-range indices or negative dimensions are programmer
  // error and abort via AHG_CHECK; use FromCooChecked for untrusted input.
  static SparseMatrix FromCoo(int rows, int cols,
                              std::vector<CooEntry> entries);

  // Like FromCoo but returns InvalidArgument instead of aborting when
  // dimensions are negative or an entry is out of range — the entry point
  // for user-supplied data (IO readers, file formats).
  static StatusOr<SparseMatrix> FromCooChecked(int rows, int cols,
                                               std::vector<CooEntry> entries);

  // Adopts already-assembled CSR arrays verbatim: no sorting, no duplicate
  // merging — the stored entry order is exactly what the caller passed.
  // This is the assembly path for permuted (rank-ordered) matrices, where
  // entry order encodes the FP accumulation sequence and a FromCoo re-sort
  // would silently change served bits (see graph/reorder.h). Shape and
  // row_ptr monotonicity/column ranges are CHECK-validated.
  static SparseMatrix FromCsrParts(int rows, int cols,
                                   std::vector<int64_t> row_ptr,
                                   std::vector<int> col_idx,
                                   std::vector<double> values);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int64_t nnz() const { return static_cast<int64_t>(col_idx_.size()); }

  // CSR accessors: row r's entries occupy [row_ptr()[r], row_ptr()[r + 1]).
  const std::vector<int64_t>& row_ptr() const { return row_ptr_; }
  const std::vector<int>& col_idx() const { return col_idx_; }
  const std::vector<double>& values() const { return values_; }
  // Invalidates the cached transpose: the caller is about to change values.
  std::vector<double>* mutable_values() {
    transpose_cache_.reset();
    return &values_;
  }

  // Y = this * X (dense). X.rows() must equal cols().
  Matrix Spmm(const Matrix& x) const;

  // Row-subset SpMM: output row i is (this * X) row rows[i], accumulated in
  // the same entry order as Spmm, so each returned row is bitwise identical
  // to the corresponding row of the full product. The dynamic-graph
  // incremental refresh uses this to recompute only dirty rows.
  Matrix SpmmRows(const std::vector<int>& rows, const Matrix& x) const;

  // Y = this^T * X (dense). X.rows() must equal rows(). Builds (and caches)
  // the explicit transpose on first use; repeated calls — the SpMM backward
  // runs once per training step — pay only the row-parallel Spmm.
  Matrix SpmmTransposed(const Matrix& x) const;

  // Explicit transpose as a new CSR matrix.
  SparseMatrix Transposed() const;

  // Lazily built, thread-safe shared view of Transposed(). Valid until this
  // matrix is destroyed or its values are mutated.
  const SparseMatrix& TransposedCached() const;

  // Per-row sum of values (weighted out-degree for adjacency).
  std::vector<double> RowSums() const;

  // Number of stored entries in row r. r must be in [0, rows()).
  int64_t RowNnz(int r) const {
    AHG_CHECK(r >= 0 && r < rows_);
    return row_ptr_[r + 1] - row_ptr_[r];
  }

  // Densifies (tests and tiny graphs only).
  Matrix ToDense() const;

  // Optional compressed hub-segment layout for high-degree rows.
  //
  // A qualifying row (>= min_row_nnz stored entries) is re-encoded as runs
  // of consecutive column ids taken in STORED order: run k covers entries
  // whose columns are run_cols[k], run_cols[k]+1, ..., run_cols[k] +
  // run_lens[k]-1. Values are not copied — the kernels read them from
  // values() at the row's usual offset, consuming runs sequentially — so
  // the per-entry FP accumulation sequence is identical with the layout on
  // or off and Spmm results are bitwise unchanged by construction. The win
  // is structural: run metadata replaces per-entry column loads and tells
  // the prefetcher the next dense rows are contiguous. Hub-clustered
  // reordered graphs (graph/reorder.h) are what make long runs exist.
  struct HubSegments {
    std::vector<uint8_t> is_hub;   // rows(): row uses the compressed layout
    std::vector<int64_t> run_ptr;  // rows()+1: run span per row (empty when
                                   // is_hub[r] == 0)
    std::vector<int> run_cols;     // first column of each run
    std::vector<int> run_lens;     // entry count of each run
    int64_t num_hub_rows = 0;
    TrackedBytes tracked;
  };

  // Builds (or rebuilds) the hub-segment side structure. Leaves the layout
  // absent when no row qualifies. Not thread-safe against concurrent reads;
  // call before the matrix is shared, like the constructors.
  void BuildHubSegments(int64_t min_row_nnz);
  void ClearHubSegments() { hub_.reset(); }
  const HubSegments* hub_segments() const { return hub_.get(); }

 private:
  // CSR assembly from entries already validated against rows x cols.
  static SparseMatrix BuildFromValidCoo(int rows, int cols,
                                        std::vector<CooEntry> entries);

  int rows_ = 0;
  int cols_ = 0;
  std::vector<int64_t> row_ptr_;
  std::vector<int> col_idx_;
  std::vector<double> values_;
  // AllocTracker accounting for the CSR arrays above (copies re-report,
  // moves transfer — vector copies/moves track the same way).
  TrackedBytes tracked_;
  // Lazily built by TransposedCached(); immutable once published, so copies
  // of this matrix may share it. Reset by mutable_values().
  mutable std::shared_ptr<const SparseMatrix> transpose_cache_;
  // Hub-segment layout; immutable once built, shared by copies. Survives
  // mutable_values() because it references values() by position only.
  std::shared_ptr<const HubSegments> hub_;
};

}  // namespace ahg

#endif  // AUTOHENS_TENSOR_SPARSE_MATRIX_H_
