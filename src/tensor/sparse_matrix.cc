#include "tensor/sparse_matrix.h"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <string>
#include <vector>

#include "kernels/autotune.h"
#include "kernels/kernel_ops.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace ahg {
namespace {

// Workloads (nnz * dense width) below this skip the autotuner and use the
// tier-default variant.
constexpr int64_t kSpmmTuneMinWork = 1 << 20;

// One CSR row times a dense block via the dispatched per-tier kernel:
// register-blocked over the dense width, each y[c] accumulating entries in
// ascending storage order — the same per-element order as the naive
// entry-outer loop — so results are bitwise identical to it across tiers
// and block widths. Shared by Spmm and SpmmRows. Rows with no entries
// write a zero row (the accumulators start at 0 and are always stored).
inline void SpmmRowKernel(const kernels::TierOps& ops, int cblock,
                          const SparseMatrix& m, int64_t r, const Matrix& x,
                          double* yrow) {
  const int64_t e_begin = m.row_ptr()[r];
  const SparseMatrix::HubSegments* hub = m.hub_segments();
  if (hub != nullptr && hub->is_hub[r] != 0 &&
      ops.spmm_hub_row != nullptr) {
    // Compressed hub row: run metadata instead of per-entry column loads.
    // The kernel consumes values in the same stored order, so the result is
    // bitwise identical to the plain path.
    const int64_t run_begin = hub->run_ptr[r];
    ops.spmm_hub_row(cblock, m.values().data() + e_begin,
                     hub->run_cols.data() + run_begin,
                     hub->run_lens.data() + run_begin,
                     static_cast<int>(hub->run_ptr[r + 1] - run_begin),
                     x.data(), x.cols(), x.cols(), yrow);
    return;
  }
  ops.spmm_row(cblock, m.values().data() + e_begin,
               m.col_idx().data() + e_begin, m.row_ptr()[r + 1] - e_begin,
               x.data(), x.cols(), x.cols(), yrow);
}

int64_t SpmmNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Row-split schedule: contiguous row ranges of ~equal row count (the
// ParallelForChunked default partition).
void SpmmRowSplitPass(const kernels::TierOps& ops, int cblock,
                      const SparseMatrix& m, const Matrix& x, Matrix* y) {
  const int64_t work_per_row =
      m.rows() > 0 ? std::max<int64_t>(1, m.nnz() / m.rows()) * x.cols() : 1;
  ParallelForChunked(m.rows(), work_per_row, [&](int64_t begin, int64_t end) {
    for (int64_t r = begin; r < end; ++r) {
      SpmmRowKernel(ops, cblock, m, r, x, y->Row(static_cast<int>(r)));
    }
  });
}

// nnz-split schedule: contiguous row ranges of ~equal *entry* count, found
// by searching the CSR row_ptr prefix sums. Better load balance on
// degree-skewed graphs. Each row is still computed whole by one worker in
// the same entry order, so the result is bitwise identical to row-split.
void SpmmNnzSplitPass(const kernels::TierOps& ops, int cblock,
                      const SparseMatrix& m, const Matrix& x, Matrix* y) {
  const int64_t rows = m.rows();
  const int64_t nnz = m.nnz();
  const std::vector<int64_t>& row_ptr = m.row_ptr();
  const int64_t target_chunks =
      std::min<int64_t>(rows, std::max(1, GetNumThreads() * 4));
  std::vector<int64_t> bounds;
  bounds.reserve(static_cast<size_t>(target_chunks) + 1);
  bounds.push_back(0);
  for (int64_t t = 1; t < target_chunks; ++t) {
    const int64_t target = nnz * t / target_chunks;
    const int64_t row =
        std::upper_bound(row_ptr.begin(), row_ptr.end(), target) -
        row_ptr.begin() - 1;
    if (row > bounds.back() && row < rows) bounds.push_back(row);
  }
  bounds.push_back(rows);
  const int64_t num_chunks = static_cast<int64_t>(bounds.size()) - 1;
  const int64_t work_per_chunk =
      std::max<int64_t>(1, nnz / num_chunks) * x.cols();
  ParallelForChunked(num_chunks, work_per_chunk,
                     [&](int64_t begin, int64_t end) {
    for (int64_t ci = begin; ci < end; ++ci) {
      for (int64_t r = bounds[ci]; r < bounds[ci + 1]; ++r) {
        SpmmRowKernel(ops, cblock, m, r, x, y->Row(static_cast<int>(r)));
      }
    }
  });
}

// SpMM variant for this (matrix, dense width) shape: forced (tests) >
// cached > benchmarked-on-first-use > tier default. Benchmark passes fully
// overwrite y, so they leave no residue for the production pass.
kernels::SpmmChoice ResolveSpmmChoice(const kernels::TierOps& ops,
                                      const SparseMatrix& m, const Matrix& x,
                                      Matrix* y) {
  if (const kernels::SpmmChoice* forced = kernels::ForcedSpmm()) {
    return *forced;
  }
  const int64_t work = m.nnz() * x.cols();
  if (work < kSpmmTuneMinWork || !kernels::AutotuneEnabled()) {
    return kernels::SpmmChoice{};
  }
  const std::string key =
      kernels::SpmmShapeKey(ops.tier, m.rows(), m.nnz(), x.cols());
  kernels::KernelTuner& tuner = kernels::KernelTuner::Global();
  kernels::SpmmChoice cached;
  if (tuner.LookupSpmm(key, &cached)) return cached;
  std::vector<kernels::SpmmChoice> candidates;
  for (int bi = 0; bi < ops.num_spmm_cblocks; ++bi) {
    candidates.push_back(kernels::SpmmChoice{ops.spmm_cblocks[bi], false});
    candidates.push_back(kernels::SpmmChoice{ops.spmm_cblocks[bi], true});
  }
  return tuner.GetSpmm(key, candidates, [&](const kernels::SpmmChoice& cand) {
    const int64_t t0 = SpmmNowNs();
    if (cand.nnz_split) {
      SpmmNnzSplitPass(ops, cand.cblock, m, x, y);
    } else {
      SpmmRowSplitPass(ops, cand.cblock, m, x, y);
    }
    return static_cast<double>(SpmmNowNs() - t0);
  });
}

}  // namespace

SparseMatrix SparseMatrix::BuildFromValidCoo(int rows, int cols,
                                             std::vector<CooEntry> entries) {
  SparseMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  std::sort(entries.begin(), entries.end(),
            [](const CooEntry& a, const CooEntry& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  m.row_ptr_.assign(rows + 1, 0);
  m.col_idx_.reserve(entries.size());
  m.values_.reserve(entries.size());
  for (size_t i = 0; i < entries.size();) {
    const CooEntry& e = entries[i];
    double value = 0.0;
    size_t j = i;
    // Merge duplicates of the same coordinate.
    while (j < entries.size() && entries[j].row == e.row &&
           entries[j].col == e.col) {
      value += entries[j].value;
      ++j;
    }
    m.col_idx_.push_back(e.col);
    m.values_.push_back(value);
    m.row_ptr_[e.row + 1] += 1;
    i = j;
  }
  for (int r = 0; r < rows; ++r) m.row_ptr_[r + 1] += m.row_ptr_[r];
  // CSR arrays are the resident footprint of graph structure; report them
  // so AllocTracker peaks cover sparse state, not just dense Matrix buffers
  // (the partition-scale bench depends on this for honest per-part totals).
  m.tracked_.Reset(m.row_ptr_.size() * sizeof(int64_t) +
                   m.col_idx_.size() * sizeof(int) +
                   m.values_.size() * sizeof(double));
  return m;
}

SparseMatrix SparseMatrix::FromCoo(int rows, int cols,
                                   std::vector<CooEntry> entries) {
  AHG_CHECK_GE(rows, 0);
  AHG_CHECK_GE(cols, 0);
  for (const CooEntry& e : entries) {
    AHG_CHECK_MSG(e.row >= 0 && e.row < rows && e.col >= 0 && e.col < cols,
                  "entry (" << e.row << ", " << e.col << ") outside " << rows
                            << " x " << cols);
  }
  return BuildFromValidCoo(rows, cols, std::move(entries));
}

SparseMatrix SparseMatrix::FromCsrParts(int rows, int cols,
                                        std::vector<int64_t> row_ptr,
                                        std::vector<int> col_idx,
                                        std::vector<double> values) {
  AHG_CHECK_GE(rows, 0);
  AHG_CHECK_GE(cols, 0);
  AHG_CHECK_EQ(static_cast<int64_t>(row_ptr.size()),
               static_cast<int64_t>(rows) + 1);
  AHG_CHECK_EQ(row_ptr.empty() ? 0 : row_ptr.front(), 0);
  AHG_CHECK_EQ(row_ptr.back(), static_cast<int64_t>(col_idx.size()));
  AHG_CHECK_EQ(col_idx.size(), values.size());
  for (int r = 0; r < rows; ++r) {
    AHG_CHECK_LE(row_ptr[r], row_ptr[r + 1]);
  }
  for (int c : col_idx) AHG_CHECK(c >= 0 && c < cols);
  SparseMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_ = std::move(row_ptr);
  m.col_idx_ = std::move(col_idx);
  m.values_ = std::move(values);
  m.tracked_.Reset(m.row_ptr_.size() * sizeof(int64_t) +
                   m.col_idx_.size() * sizeof(int) +
                   m.values_.size() * sizeof(double));
  return m;
}

void SparseMatrix::BuildHubSegments(int64_t min_row_nnz) {
  AHG_CHECK_GT(min_row_nnz, 0);
  auto hub = std::make_shared<HubSegments>();
  hub->is_hub.assign(rows_, 0);
  hub->run_ptr.assign(rows_ + 1, 0);
  for (int r = 0; r < rows_; ++r) {
    hub->run_ptr[r + 1] = hub->run_ptr[r];
    const int64_t begin = row_ptr_[r];
    const int64_t end = row_ptr_[r + 1];
    if (end - begin < min_row_nnz) continue;
    hub->is_hub[r] = 1;
    ++hub->num_hub_rows;
    int64_t i = begin;
    while (i < end) {
      // One run: maximal stretch of stored entries with consecutive column
      // ids. Stored order is preserved, never re-sorted.
      int64_t len = 1;
      while (i + len < end && col_idx_[i + len] == col_idx_[i + len - 1] + 1) {
        ++len;
      }
      hub->run_cols.push_back(col_idx_[i]);
      hub->run_lens.push_back(static_cast<int>(len));
      hub->run_ptr[r + 1] += 1;
      i += len;
    }
  }
  if (hub->num_hub_rows == 0) {
    hub_.reset();
    return;
  }
  hub->tracked.Reset(hub->is_hub.size() * sizeof(uint8_t) +
                     hub->run_ptr.size() * sizeof(int64_t) +
                     hub->run_cols.size() * sizeof(int) +
                     hub->run_lens.size() * sizeof(int));
  hub_ = std::move(hub);
}

StatusOr<SparseMatrix> SparseMatrix::FromCooChecked(
    int rows, int cols, std::vector<CooEntry> entries) {
  if (rows < 0 || cols < 0) {
    return Status::InvalidArgument("negative sparse matrix shape " +
                                   std::to_string(rows) + " x " +
                                   std::to_string(cols));
  }
  for (const CooEntry& e : entries) {
    if (e.row < 0 || e.row >= rows || e.col < 0 || e.col >= cols) {
      return Status::InvalidArgument(
          "coo entry (" + std::to_string(e.row) + ", " +
          std::to_string(e.col) + ") outside " + std::to_string(rows) +
          " x " + std::to_string(cols));
    }
  }
  return BuildFromValidCoo(rows, cols, std::move(entries));
}

Matrix SparseMatrix::Spmm(const Matrix& x) const {
  AHG_CHECK_EQ(x.rows(), cols_);
  AHG_TRACE_SPAN_ARG("tensor/spmm", nnz() * x.cols());
  Matrix y(rows_, x.cols());
  // Tier table and variant resolved on the calling thread before any
  // parallel region; both schedules are exact (see SpmmNnzSplitPass).
  const kernels::TierOps& ops = kernels::ActiveOps();
  const kernels::SpmmChoice choice = ResolveSpmmChoice(ops, *this, x, &y);
  if (choice.nnz_split) {
    SpmmNnzSplitPass(ops, choice.cblock, *this, x, &y);
  } else {
    SpmmRowSplitPass(ops, choice.cblock, *this, x, &y);
  }
  return y;
}

Matrix SparseMatrix::SpmmRows(const std::vector<int>& rows,
                              const Matrix& x) const {
  AHG_CHECK_EQ(x.rows(), cols_);
  AHG_TRACE_SPAN_ARG("tensor/spmm_rows",
                     static_cast<int64_t>(rows.size()) * x.cols());
  Matrix y(static_cast<int>(rows.size()), x.cols());
  // Row subsets change every incremental refresh, so they never tune a key
  // of their own; reuse the full-matrix entry's column block when present
  // (the per-row kernel is the same) and fall back to the tier default.
  const kernels::TierOps& ops = kernels::ActiveOps();
  kernels::SpmmChoice choice;
  if (const kernels::SpmmChoice* forced = kernels::ForcedSpmm()) {
    choice = *forced;
  } else {
    kernels::KernelTuner::Global().LookupSpmm(
        kernels::SpmmShapeKey(ops.tier, rows_, nnz(), x.cols()), &choice);
  }
  const int64_t work_per_row =
      rows_ > 0 ? std::max<int64_t>(1, nnz() / rows_) * x.cols() : 1;
  ParallelForChunked(static_cast<int64_t>(rows.size()), work_per_row,
                     [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      const int r = rows[i];
      AHG_CHECK(r >= 0 && r < rows_);
      SpmmRowKernel(ops, choice.cblock, *this, r, x,
                    y.Row(static_cast<int>(i)));
    }
  });
  return y;
}

Matrix SparseMatrix::SpmmTransposed(const Matrix& x) const {
  AHG_CHECK_EQ(x.rows(), rows_);
  // The scatter form (y[col] += ...) cannot be row-partitioned, so run the
  // gather form on the cached transpose: output row j accumulates sources in
  // increasing original-row order — the same summation order as the scatter
  // loop, hence bitwise identical to it, and each row is worker-owned.
  return TransposedCached().Spmm(x);
}

SparseMatrix SparseMatrix::Transposed() const {
  std::vector<CooEntry> entries;
  entries.reserve(nnz());
  for (int r = 0; r < rows_; ++r) {
    for (int64_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      entries.push_back({col_idx_[i], r, values_[i]});
    }
  }
  return FromCoo(cols_, rows_, std::move(entries));
}

const SparseMatrix& SparseMatrix::TransposedCached() const {
  // One process-wide mutex guards lazy publication for all instances;
  // builds are rare (once per adjacency) and the post-init critical section
  // is a pointer copy.
  static std::mutex mu;
  std::shared_ptr<const SparseMatrix> cached;
  {
    std::lock_guard<std::mutex> lock(mu);
    cached = transpose_cache_;
  }
  if (cached == nullptr) {
    auto built = std::make_shared<const SparseMatrix>(Transposed());
    std::lock_guard<std::mutex> lock(mu);
    if (transpose_cache_ == nullptr) transpose_cache_ = std::move(built);
    cached = transpose_cache_;
  }
  return *cached;
}

std::vector<double> SparseMatrix::RowSums() const {
  std::vector<double> sums(rows_, 0.0);
  for (int r = 0; r < rows_; ++r) {
    for (int64_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      sums[r] += values_[i];
    }
  }
  return sums;
}

Matrix SparseMatrix::ToDense() const {
  Matrix d(rows_, cols_);
  for (int r = 0; r < rows_; ++r) {
    for (int64_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      d(r, col_idx_[i]) += values_[i];
    }
  }
  return d;
}

}  // namespace ahg
