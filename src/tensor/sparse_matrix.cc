#include "tensor/sparse_matrix.h"

#include <algorithm>

namespace ahg {

SparseMatrix SparseMatrix::FromCoo(int rows, int cols,
                                   std::vector<CooEntry> entries) {
  SparseMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  std::sort(entries.begin(), entries.end(),
            [](const CooEntry& a, const CooEntry& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  m.row_ptr_.assign(rows + 1, 0);
  m.col_idx_.reserve(entries.size());
  m.values_.reserve(entries.size());
  for (size_t i = 0; i < entries.size();) {
    const CooEntry& e = entries[i];
    AHG_CHECK(e.row >= 0 && e.row < rows && e.col >= 0 && e.col < cols);
    double value = 0.0;
    size_t j = i;
    // Merge duplicates of the same coordinate.
    while (j < entries.size() && entries[j].row == e.row &&
           entries[j].col == e.col) {
      value += entries[j].value;
      ++j;
    }
    m.col_idx_.push_back(e.col);
    m.values_.push_back(value);
    m.row_ptr_[e.row + 1] += 1;
    i = j;
  }
  for (int r = 0; r < rows; ++r) m.row_ptr_[r + 1] += m.row_ptr_[r];
  return m;
}

Matrix SparseMatrix::Spmm(const Matrix& x) const {
  AHG_CHECK_EQ(x.rows(), cols_);
  Matrix y(rows_, x.cols());
  for (int r = 0; r < rows_; ++r) {
    double* yrow = y.Row(r);
    for (int64_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      const double v = values_[i];
      const double* xrow = x.Row(col_idx_[i]);
      for (int c = 0; c < x.cols(); ++c) yrow[c] += v * xrow[c];
    }
  }
  return y;
}

Matrix SparseMatrix::SpmmTransposed(const Matrix& x) const {
  AHG_CHECK_EQ(x.rows(), rows_);
  Matrix y(cols_, x.cols());
  for (int r = 0; r < rows_; ++r) {
    const double* xrow = x.Row(r);
    for (int64_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      const double v = values_[i];
      double* yrow = y.Row(col_idx_[i]);
      for (int c = 0; c < x.cols(); ++c) yrow[c] += v * xrow[c];
    }
  }
  return y;
}

SparseMatrix SparseMatrix::Transposed() const {
  std::vector<CooEntry> entries;
  entries.reserve(nnz());
  for (int r = 0; r < rows_; ++r) {
    for (int64_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      entries.push_back({col_idx_[i], r, values_[i]});
    }
  }
  return FromCoo(cols_, rows_, std::move(entries));
}

std::vector<double> SparseMatrix::RowSums() const {
  std::vector<double> sums(rows_, 0.0);
  for (int r = 0; r < rows_; ++r) {
    for (int64_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      sums[r] += values_[i];
    }
  }
  return sums;
}

Matrix SparseMatrix::ToDense() const {
  Matrix d(rows_, cols_);
  for (int r = 0; r < rows_; ++r) {
    for (int64_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      d(r, col_idx_[i]) += values_[i];
    }
  }
  return d;
}

}  // namespace ahg
