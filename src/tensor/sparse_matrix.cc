#include "tensor/sparse_matrix.h"

#include <algorithm>
#include <mutex>
#include <string>

#include "obs/trace.h"
#include "util/thread_pool.h"

namespace ahg {
namespace {

// One CSR row times a dense block, register-blocked over the dense width:
// four column accumulators live in registers across the row's entries, so
// the output row is written once per block instead of read-modified per
// entry. Each y[c] accumulates entries in ascending storage order — the
// same per-element order as the naive entry-outer loop — so results are
// bitwise identical to it. Shared by Spmm and SpmmRows.
inline void SpmmRowKernel(const int64_t* row_ptr, int64_t r,
                          const int* col_idx, const double* values,
                          const Matrix& x, double* yrow) {
  const int64_t e_begin = row_ptr[r];
  const int64_t e_end = row_ptr[r + 1];
  const int ncols = x.cols();
  int c = 0;
  for (; c + 4 <= ncols; c += 4) {
    double y0 = 0.0, y1 = 0.0, y2 = 0.0, y3 = 0.0;
    for (int64_t e = e_begin; e < e_end; ++e) {
      const double v = values[e];
      const double* xrow = x.Row(col_idx[e]) + c;
      y0 += v * xrow[0];
      y1 += v * xrow[1];
      y2 += v * xrow[2];
      y3 += v * xrow[3];
    }
    yrow[c] = y0;
    yrow[c + 1] = y1;
    yrow[c + 2] = y2;
    yrow[c + 3] = y3;
  }
  for (; c < ncols; ++c) {
    double acc = 0.0;
    for (int64_t e = e_begin; e < e_end; ++e) {
      acc += values[e] * x.Row(col_idx[e])[c];
    }
    yrow[c] = acc;
  }
}

}  // namespace

SparseMatrix SparseMatrix::BuildFromValidCoo(int rows, int cols,
                                             std::vector<CooEntry> entries) {
  SparseMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  std::sort(entries.begin(), entries.end(),
            [](const CooEntry& a, const CooEntry& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  m.row_ptr_.assign(rows + 1, 0);
  m.col_idx_.reserve(entries.size());
  m.values_.reserve(entries.size());
  for (size_t i = 0; i < entries.size();) {
    const CooEntry& e = entries[i];
    double value = 0.0;
    size_t j = i;
    // Merge duplicates of the same coordinate.
    while (j < entries.size() && entries[j].row == e.row &&
           entries[j].col == e.col) {
      value += entries[j].value;
      ++j;
    }
    m.col_idx_.push_back(e.col);
    m.values_.push_back(value);
    m.row_ptr_[e.row + 1] += 1;
    i = j;
  }
  for (int r = 0; r < rows; ++r) m.row_ptr_[r + 1] += m.row_ptr_[r];
  return m;
}

SparseMatrix SparseMatrix::FromCoo(int rows, int cols,
                                   std::vector<CooEntry> entries) {
  AHG_CHECK_GE(rows, 0);
  AHG_CHECK_GE(cols, 0);
  for (const CooEntry& e : entries) {
    AHG_CHECK_MSG(e.row >= 0 && e.row < rows && e.col >= 0 && e.col < cols,
                  "entry (" << e.row << ", " << e.col << ") outside " << rows
                            << " x " << cols);
  }
  return BuildFromValidCoo(rows, cols, std::move(entries));
}

StatusOr<SparseMatrix> SparseMatrix::FromCooChecked(
    int rows, int cols, std::vector<CooEntry> entries) {
  if (rows < 0 || cols < 0) {
    return Status::InvalidArgument("negative sparse matrix shape " +
                                   std::to_string(rows) + " x " +
                                   std::to_string(cols));
  }
  for (const CooEntry& e : entries) {
    if (e.row < 0 || e.row >= rows || e.col < 0 || e.col >= cols) {
      return Status::InvalidArgument(
          "coo entry (" + std::to_string(e.row) + ", " +
          std::to_string(e.col) + ") outside " + std::to_string(rows) +
          " x " + std::to_string(cols));
    }
  }
  return BuildFromValidCoo(rows, cols, std::move(entries));
}

Matrix SparseMatrix::Spmm(const Matrix& x) const {
  AHG_CHECK_EQ(x.rows(), cols_);
  AHG_TRACE_SPAN_ARG("tensor/spmm", nnz() * x.cols());
  Matrix y(rows_, x.cols());
  // Per-row cost estimate for the min-grain threshold: average nnz times
  // the dense width.
  const int64_t work_per_row =
      rows_ > 0 ? std::max<int64_t>(1, nnz() / rows_) * x.cols() : 1;
  ParallelForChunked(rows_, work_per_row, [&](int64_t begin, int64_t end) {
    for (int64_t r = begin; r < end; ++r) {
      SpmmRowKernel(row_ptr_.data(), r, col_idx_.data(), values_.data(), x,
                    y.Row(static_cast<int>(r)));
    }
  });
  return y;
}

Matrix SparseMatrix::SpmmRows(const std::vector<int>& rows,
                              const Matrix& x) const {
  AHG_CHECK_EQ(x.rows(), cols_);
  AHG_TRACE_SPAN_ARG("tensor/spmm_rows",
                     static_cast<int64_t>(rows.size()) * x.cols());
  Matrix y(static_cast<int>(rows.size()), x.cols());
  const int64_t work_per_row =
      rows_ > 0 ? std::max<int64_t>(1, nnz() / rows_) * x.cols() : 1;
  ParallelForChunked(static_cast<int64_t>(rows.size()), work_per_row,
                     [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      const int r = rows[i];
      AHG_CHECK(r >= 0 && r < rows_);
      SpmmRowKernel(row_ptr_.data(), r, col_idx_.data(), values_.data(), x,
                    y.Row(static_cast<int>(i)));
    }
  });
  return y;
}

Matrix SparseMatrix::SpmmTransposed(const Matrix& x) const {
  AHG_CHECK_EQ(x.rows(), rows_);
  // The scatter form (y[col] += ...) cannot be row-partitioned, so run the
  // gather form on the cached transpose: output row j accumulates sources in
  // increasing original-row order — the same summation order as the scatter
  // loop, hence bitwise identical to it, and each row is worker-owned.
  return TransposedCached().Spmm(x);
}

SparseMatrix SparseMatrix::Transposed() const {
  std::vector<CooEntry> entries;
  entries.reserve(nnz());
  for (int r = 0; r < rows_; ++r) {
    for (int64_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      entries.push_back({col_idx_[i], r, values_[i]});
    }
  }
  return FromCoo(cols_, rows_, std::move(entries));
}

const SparseMatrix& SparseMatrix::TransposedCached() const {
  // One process-wide mutex guards lazy publication for all instances;
  // builds are rare (once per adjacency) and the post-init critical section
  // is a pointer copy.
  static std::mutex mu;
  std::shared_ptr<const SparseMatrix> cached;
  {
    std::lock_guard<std::mutex> lock(mu);
    cached = transpose_cache_;
  }
  if (cached == nullptr) {
    auto built = std::make_shared<const SparseMatrix>(Transposed());
    std::lock_guard<std::mutex> lock(mu);
    if (transpose_cache_ == nullptr) transpose_cache_ = std::move(built);
    cached = transpose_cache_;
  }
  return *cached;
}

std::vector<double> SparseMatrix::RowSums() const {
  std::vector<double> sums(rows_, 0.0);
  for (int r = 0; r < rows_; ++r) {
    for (int64_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      sums[r] += values_[i];
    }
  }
  return sums;
}

Matrix SparseMatrix::ToDense() const {
  Matrix d(rows_, cols_);
  for (int r = 0; r < rows_; ++r) {
    for (int64_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      d(r, col_idx_[i]) += values_[i];
    }
  }
  return d;
}

}  // namespace ahg
