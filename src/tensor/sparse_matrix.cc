#include "tensor/sparse_matrix.h"

#include <algorithm>
#include <mutex>
#include <string>

#include "obs/trace.h"
#include "util/thread_pool.h"

namespace ahg {

SparseMatrix SparseMatrix::BuildFromValidCoo(int rows, int cols,
                                             std::vector<CooEntry> entries) {
  SparseMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  std::sort(entries.begin(), entries.end(),
            [](const CooEntry& a, const CooEntry& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  m.row_ptr_.assign(rows + 1, 0);
  m.col_idx_.reserve(entries.size());
  m.values_.reserve(entries.size());
  for (size_t i = 0; i < entries.size();) {
    const CooEntry& e = entries[i];
    double value = 0.0;
    size_t j = i;
    // Merge duplicates of the same coordinate.
    while (j < entries.size() && entries[j].row == e.row &&
           entries[j].col == e.col) {
      value += entries[j].value;
      ++j;
    }
    m.col_idx_.push_back(e.col);
    m.values_.push_back(value);
    m.row_ptr_[e.row + 1] += 1;
    i = j;
  }
  for (int r = 0; r < rows; ++r) m.row_ptr_[r + 1] += m.row_ptr_[r];
  return m;
}

SparseMatrix SparseMatrix::FromCoo(int rows, int cols,
                                   std::vector<CooEntry> entries) {
  AHG_CHECK_GE(rows, 0);
  AHG_CHECK_GE(cols, 0);
  for (const CooEntry& e : entries) {
    AHG_CHECK_MSG(e.row >= 0 && e.row < rows && e.col >= 0 && e.col < cols,
                  "entry (" << e.row << ", " << e.col << ") outside " << rows
                            << " x " << cols);
  }
  return BuildFromValidCoo(rows, cols, std::move(entries));
}

StatusOr<SparseMatrix> SparseMatrix::FromCooChecked(
    int rows, int cols, std::vector<CooEntry> entries) {
  if (rows < 0 || cols < 0) {
    return Status::InvalidArgument("negative sparse matrix shape " +
                                   std::to_string(rows) + " x " +
                                   std::to_string(cols));
  }
  for (const CooEntry& e : entries) {
    if (e.row < 0 || e.row >= rows || e.col < 0 || e.col >= cols) {
      return Status::InvalidArgument(
          "coo entry (" + std::to_string(e.row) + ", " +
          std::to_string(e.col) + ") outside " + std::to_string(rows) +
          " x " + std::to_string(cols));
    }
  }
  return BuildFromValidCoo(rows, cols, std::move(entries));
}

Matrix SparseMatrix::Spmm(const Matrix& x) const {
  AHG_CHECK_EQ(x.rows(), cols_);
  AHG_TRACE_SPAN_ARG("tensor/spmm", nnz() * x.cols());
  Matrix y(rows_, x.cols());
  // Per-row cost estimate for the min-grain threshold: average nnz times
  // the dense width.
  const int64_t work_per_row =
      rows_ > 0 ? std::max<int64_t>(1, nnz() / rows_) * x.cols() : 1;
  ParallelForChunked(rows_, work_per_row, [&](int64_t begin, int64_t end) {
    for (int64_t r = begin; r < end; ++r) {
      double* yrow = y.Row(static_cast<int>(r));
      for (int64_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
        const double v = values_[i];
        const double* xrow = x.Row(col_idx_[i]);
        for (int c = 0; c < x.cols(); ++c) yrow[c] += v * xrow[c];
      }
    }
  });
  return y;
}

Matrix SparseMatrix::SpmmRows(const std::vector<int>& rows,
                              const Matrix& x) const {
  AHG_CHECK_EQ(x.rows(), cols_);
  AHG_TRACE_SPAN_ARG("tensor/spmm_rows",
                     static_cast<int64_t>(rows.size()) * x.cols());
  Matrix y(static_cast<int>(rows.size()), x.cols());
  const int64_t work_per_row =
      rows_ > 0 ? std::max<int64_t>(1, nnz() / rows_) * x.cols() : 1;
  ParallelForChunked(static_cast<int64_t>(rows.size()), work_per_row,
                     [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      const int r = rows[i];
      AHG_CHECK(r >= 0 && r < rows_);
      double* yrow = y.Row(static_cast<int>(i));
      for (int64_t e = row_ptr_[r]; e < row_ptr_[r + 1]; ++e) {
        const double v = values_[e];
        const double* xrow = x.Row(col_idx_[e]);
        for (int c = 0; c < x.cols(); ++c) yrow[c] += v * xrow[c];
      }
    }
  });
  return y;
}

Matrix SparseMatrix::SpmmTransposed(const Matrix& x) const {
  AHG_CHECK_EQ(x.rows(), rows_);
  // The scatter form (y[col] += ...) cannot be row-partitioned, so run the
  // gather form on the cached transpose: output row j accumulates sources in
  // increasing original-row order — the same summation order as the scatter
  // loop, hence bitwise identical to it, and each row is worker-owned.
  return TransposedCached().Spmm(x);
}

SparseMatrix SparseMatrix::Transposed() const {
  std::vector<CooEntry> entries;
  entries.reserve(nnz());
  for (int r = 0; r < rows_; ++r) {
    for (int64_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      entries.push_back({col_idx_[i], r, values_[i]});
    }
  }
  return FromCoo(cols_, rows_, std::move(entries));
}

const SparseMatrix& SparseMatrix::TransposedCached() const {
  // One process-wide mutex guards lazy publication for all instances;
  // builds are rare (once per adjacency) and the post-init critical section
  // is a pointer copy.
  static std::mutex mu;
  std::shared_ptr<const SparseMatrix> cached;
  {
    std::lock_guard<std::mutex> lock(mu);
    cached = transpose_cache_;
  }
  if (cached == nullptr) {
    auto built = std::make_shared<const SparseMatrix>(Transposed());
    std::lock_guard<std::mutex> lock(mu);
    if (transpose_cache_ == nullptr) transpose_cache_ = std::move(built);
    cached = transpose_cache_;
  }
  return *cached;
}

std::vector<double> SparseMatrix::RowSums() const {
  std::vector<double> sums(rows_, 0.0);
  for (int r = 0; r < rows_; ++r) {
    for (int64_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      sums[r] += values_[i];
    }
  }
  return sums;
}

Matrix SparseMatrix::ToDense() const {
  Matrix d(rows_, cols_);
  for (int r = 0; r < rows_; ++r) {
    for (int64_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      d(r, col_idx_[i]) += values_[i];
    }
  }
  return d;
}

}  // namespace ahg
