#include "tensor/alloc_tracker.h"

#include <atomic>

namespace ahg {
namespace {

std::atomic<int64_t> g_current_bytes{0};
std::atomic<int64_t> g_peak_bytes{0};

}  // namespace

void AllocTracker::Add(size_t bytes) {
  const int64_t now =
      g_current_bytes.fetch_add(static_cast<int64_t>(bytes)) +
      static_cast<int64_t>(bytes);
  int64_t peak = g_peak_bytes.load(std::memory_order_relaxed);
  while (now > peak &&
         !g_peak_bytes.compare_exchange_weak(peak, now)) {
  }
}

void AllocTracker::Remove(size_t bytes) {
  g_current_bytes.fetch_sub(static_cast<int64_t>(bytes));
}

int64_t AllocTracker::CurrentBytes() { return g_current_bytes.load(); }

int64_t AllocTracker::PeakBytes() { return g_peak_bytes.load(); }

void AllocTracker::ResetPeak() { g_peak_bytes.store(g_current_bytes.load()); }

}  // namespace ahg
