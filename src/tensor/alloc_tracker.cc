#include "tensor/alloc_tracker.h"

#include <atomic>

#include "obs/metrics.h"

namespace ahg {
namespace {

std::atomic<int64_t> g_current_bytes{0};
std::atomic<int64_t> g_peak_bytes{0};
std::atomic<int64_t> g_alloc_count{0};
std::atomic<int64_t> g_total_bytes{0};

obs::Counter* HeapAllocCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("tensor.heap_allocs");
  return c;
}

}  // namespace

void AllocTracker::Add(size_t bytes) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_total_bytes.fetch_add(static_cast<int64_t>(bytes),
                          std::memory_order_relaxed);
  HeapAllocCounter()->Increment();
  const int64_t now =
      g_current_bytes.fetch_add(static_cast<int64_t>(bytes)) +
      static_cast<int64_t>(bytes);
  int64_t peak = g_peak_bytes.load(std::memory_order_relaxed);
  while (now > peak &&
         !g_peak_bytes.compare_exchange_weak(peak, now)) {
  }
}

void AllocTracker::Remove(size_t bytes) {
  g_current_bytes.fetch_sub(static_cast<int64_t>(bytes));
}

int64_t AllocTracker::CurrentBytes() { return g_current_bytes.load(); }

int64_t AllocTracker::PeakBytes() { return g_peak_bytes.load(); }

void AllocTracker::ResetPeak() {
  // CAS-max, not a blind store: only ever lower the peak, and re-read the
  // live size each round so a concurrent Add's freshly CAS-ed high-water
  // mark (which is >= its own `now` >= our re-read `cur`) is never
  // overwritten with a smaller stale snapshot.
  int64_t peak = g_peak_bytes.load();
  while (true) {
    const int64_t cur = g_current_bytes.load();
    if (peak <= cur) break;
    if (g_peak_bytes.compare_exchange_weak(peak, cur)) break;
  }
}

int64_t AllocTracker::AllocationCount() {
  return g_alloc_count.load(std::memory_order_relaxed);
}

int64_t AllocTracker::TotalAllocatedBytes() {
  return g_total_bytes.load(std::memory_order_relaxed);
}

}  // namespace ahg
