// 64-byte-aligned allocation for tensor buffers.
//
// Every Matrix buffer — fresh, pooled, copied, or grown — comes from
// AlignedAllocDoubles and is released with AlignedFreeDoubles, so pooled and
// heap buffers have identical alignment and the SIMD kernel backend
// (src/kernels) may legally issue aligned vector loads against any row base
// whose column offset lands on a 64-byte boundary. 64 bytes covers a full
// AVX-512 register and one cache line.
#ifndef AUTOHENS_TENSOR_ALIGNED_H_
#define AUTOHENS_TENSOR_ALIGNED_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>

namespace ahg {

inline constexpr std::size_t kTensorAlignment = 64;

// A buffer of `n` doubles aligned to kTensorAlignment; zero-filled when
// `zero`. n must be > 0.
inline double* AlignedAllocDoubles(int64_t n, bool zero) {
  void* p = ::operator new(static_cast<std::size_t>(n) * sizeof(double),
                           std::align_val_t{kTensorAlignment});
  if (zero) std::memset(p, 0, static_cast<std::size_t>(n) * sizeof(double));
  return static_cast<double*>(p);
}

// Releases a buffer from AlignedAllocDoubles. Must pair with it on every
// free path (plain delete[] on an aligned-new buffer is undefined).
inline void AlignedFreeDoubles(double* ptr) {
  ::operator delete(static_cast<void*>(ptr),
                    std::align_val_t{kTensorAlignment});
}

inline bool IsTensorAligned(const void* ptr) {
  return reinterpret_cast<std::uintptr_t>(ptr) % kTensorAlignment == 0;
}

}  // namespace ahg

#endif  // AUTOHENS_TENSOR_ALIGNED_H_
