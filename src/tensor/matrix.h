// Dense row-major matrix of doubles plus the BLAS-like kernels the autodiff
// engine is built on. All allocations are reported to AllocTracker so the
// runtime bench can reproduce the paper's peak-memory columns.
#ifndef AUTOHENS_TENSOR_MATRIX_H_
#define AUTOHENS_TENSOR_MATRIX_H_

#include <vector>

#include "util/logging.h"

namespace ahg {

class Rng;

class Matrix {
 public:
  Matrix() = default;

  // Zero-initialized rows x cols matrix.
  Matrix(int rows, int cols);

  Matrix(const Matrix& other);
  Matrix& operator=(const Matrix& other);
  Matrix(Matrix&& other) noexcept;
  Matrix& operator=(Matrix&& other) noexcept;
  ~Matrix();

  static Matrix Zeros(int rows, int cols) { return Matrix(rows, cols); }
  static Matrix Constant(int rows, int cols, double value);
  static Matrix Identity(int n);
  // Entries drawn i.i.d. N(0, stddev^2).
  static Matrix Gaussian(int rows, int cols, double stddev, Rng* rng);
  // Builds a matrix from an explicit row-major initializer (for tests).
  static Matrix FromRows(const std::vector<std::vector<double>>& rows);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int64_t size() const { return static_cast<int64_t>(rows_) * cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double& operator()(int r, int c) {
    AHG_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<int64_t>(r) * cols_ + c];
  }
  double operator()(int r, int c) const {
    AHG_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<int64_t>(r) * cols_ + c];
  }

  double* Row(int r) { return data_ + static_cast<int64_t>(r) * cols_; }
  const double* Row(int r) const {
    return data_ + static_cast<int64_t>(r) * cols_;
  }
  double* data() { return data_; }
  const double* data() const { return data_; }

  void Fill(double value);
  void SetZero() { Fill(0.0); }

  // this += other (shapes must match).
  void AddInPlace(const Matrix& other);
  // this += alpha * other.
  void AxpyInPlace(double alpha, const Matrix& other);
  // this *= alpha.
  void ScaleInPlace(double alpha);

  // Column index of the max entry in row r (ties -> lowest index).
  int ArgMaxRow(int r) const;

  // Sum of all entries.
  double Sum() const;
  // Frobenius-norm squared.
  double SquaredNorm() const;

 private:
  // Draws from the MatrixPool when pooling is enabled on this thread (see
  // tensor/pool.h); `zero` is false only for paths that overwrite every
  // entry immediately (copies).
  void Allocate(int rows, int cols, bool zero = true);
  void Release();

  int rows_ = 0;
  int cols_ = 0;
  // True when data_ came from the MatrixPool; Release() returns pooled
  // buffers to the pool even if pooling has been switched off since.
  bool pooled_ = false;
  double* data_ = nullptr;
};

// C = A * B.
Matrix MatMul(const Matrix& a, const Matrix& b);
// C = A^T * B.
Matrix MatMulTransA(const Matrix& a, const Matrix& b);
// C = A * B^T.
Matrix MatMulTransB(const Matrix& a, const Matrix& b);

Matrix Transpose(const Matrix& a);
Matrix Add(const Matrix& a, const Matrix& b);
Matrix Sub(const Matrix& a, const Matrix& b);
Matrix CWiseMul(const Matrix& a, const Matrix& b);
Matrix Scale(const Matrix& a, double alpha);

// Row-wise softmax (numerically stabilized).
Matrix RowSoftmax(const Matrix& a);
// Row-wise log-softmax (numerically stabilized).
Matrix RowLogSoftmax(const Matrix& a);

// True when max |a - b| <= tol.
bool AllClose(const Matrix& a, const Matrix& b, double tol);

// Masked row gather: out row i is src row rows[i]. Every index must be in
// [0, src.rows()). The serving path uses this to pull queried nodes (and
// the dynamic path to pull dirty rows) out of a cached hidden-state matrix.
Matrix GatherRows(const Matrix& src, const std::vector<int>& rows);

// Masked row scatter: dst row rows[i] = src row i (the inverse of
// GatherRows). Indices must be unique and in range; src must have
// rows.size() rows and dst->cols() columns.
void ScatterRows(const Matrix& src, const std::vector<int>& rows,
                 Matrix* dst);

// Copy of `src` with `new_rows` >= src.rows() rows; the appended tail is
// zero-filled (dynamic graphs growing their feature / hidden matrices on
// AddNode).
Matrix GrowRows(const Matrix& src, int new_rows);

}  // namespace ahg

#endif  // AUTOHENS_TENSOR_MATRIX_H_
