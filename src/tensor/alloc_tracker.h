// Process-wide accounting of tensor memory.
//
// Every Matrix heap allocation/release reports here; the runtime-statistics
// bench (Table VI of the paper) reads the peak to reproduce the paper's
// "Peak GPU" column on our CPU substrate. With the MatrixPool enabled
// (tensor/pool.h), only real heap traffic is counted: a pool hit neither
// adds bytes nor bumps AllocationCount(), so a steady-state training step
// with pooling on reports zero new allocations — the property the
// perf-smoke CI job asserts. Bytes parked in the pool's free lists remain
// counted as live (they are resident, exactly like the GPU-allocator pools
// the paper's nvidia-smi numbers include).
#ifndef AUTOHENS_TENSOR_ALLOC_TRACKER_H_
#define AUTOHENS_TENSOR_ALLOC_TRACKER_H_

#include <cstddef>
#include <cstdint>

namespace ahg {

class AllocTracker {
 public:
  // Records `bytes` newly allocated (one heap allocation).
  static void Add(size_t bytes);

  // Records `bytes` released.
  static void Remove(size_t bytes);

  // Bytes currently live (including pool-idle buffers).
  static int64_t CurrentBytes();

  // High-water mark since the last ResetPeak().
  static int64_t PeakBytes();

  // Lowers the peak to the current live size. Never lowers it below a
  // high-water mark a concurrent Add() is recording: the adjustment is a
  // CAS that re-reads the live size, not a blind store, so the invariant
  // peak >= current holds through concurrent Add/ResetPeak interleavings.
  static void ResetPeak();

  // Cumulative count of heap allocations since process start (pool hits
  // excluded). Monotonic; diff across a region to count its allocations.
  static int64_t AllocationCount();

  // Cumulative bytes ever heap-allocated (monotonic; diff across a region
  // for bytes-per-step style reporting).
  static int64_t TotalAllocatedBytes();
};

// RAII byte accounting for containers the tracker cannot see through —
// CSR index/value arrays, id maps. Holders report a size once at
// construction and release it at destruction; copies re-report, moves
// transfer. Used so the partition-scale bench compares *resident graph
// structure* on both sides, not just dense Matrix buffers.
class TrackedBytes {
 public:
  TrackedBytes() = default;
  explicit TrackedBytes(size_t bytes) : bytes_(bytes) {
    if (bytes_ > 0) AllocTracker::Add(bytes_);
  }
  TrackedBytes(const TrackedBytes& other) : bytes_(other.bytes_) {
    if (bytes_ > 0) AllocTracker::Add(bytes_);
  }
  TrackedBytes& operator=(const TrackedBytes& other) {
    if (this == &other) return *this;
    Reset(other.bytes_);
    return *this;
  }
  TrackedBytes(TrackedBytes&& other) noexcept : bytes_(other.bytes_) {
    other.bytes_ = 0;
  }
  TrackedBytes& operator=(TrackedBytes&& other) noexcept {
    if (this == &other) return *this;
    if (bytes_ > 0) AllocTracker::Remove(bytes_);
    bytes_ = other.bytes_;
    other.bytes_ = 0;
    return *this;
  }
  ~TrackedBytes() {
    if (bytes_ > 0) AllocTracker::Remove(bytes_);
  }

  // Re-reports this holder at a new size.
  void Reset(size_t bytes) {
    if (bytes_ > 0) AllocTracker::Remove(bytes_);
    bytes_ = bytes;
    if (bytes_ > 0) AllocTracker::Add(bytes_);
  }

  size_t bytes() const { return bytes_; }

 private:
  size_t bytes_ = 0;
};

}  // namespace ahg

#endif  // AUTOHENS_TENSOR_ALLOC_TRACKER_H_
