// Process-wide accounting of tensor memory.
//
// Every Matrix allocation/release reports here; the runtime-statistics bench
// (Table VI of the paper) reads the peak to reproduce the paper's "Peak GPU"
// column on our CPU substrate.
#ifndef AUTOHENS_TENSOR_ALLOC_TRACKER_H_
#define AUTOHENS_TENSOR_ALLOC_TRACKER_H_

#include <cstddef>
#include <cstdint>

namespace ahg {

class AllocTracker {
 public:
  // Records `bytes` newly allocated.
  static void Add(size_t bytes);

  // Records `bytes` released.
  static void Remove(size_t bytes);

  // Bytes currently live.
  static int64_t CurrentBytes();

  // High-water mark since the last ResetPeak().
  static int64_t PeakBytes();

  // Sets the peak to the current live size.
  static void ResetPeak();
};

}  // namespace ahg

#endif  // AUTOHENS_TENSOR_ALLOC_TRACKER_H_
