#include "tensor/pool.h"

#include <cstring>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "tensor/aligned.h"
#include "tensor/alloc_tracker.h"

namespace ahg {
namespace {

thread_local bool tl_pooling = false;
thread_local bool tl_fusion = false;

struct PoolMetrics {
  obs::Counter* hits;
  obs::Counter* misses;
  obs::Counter* released;
  obs::Counter* trimmed_bytes;
  obs::Gauge* idle_bytes;
};

// Registered once; Counter/Gauge handles are stable for process lifetime.
PoolMetrics& Metrics() {
  static PoolMetrics m = [] {
    auto& reg = obs::MetricsRegistry::Global();
    return PoolMetrics{reg.GetCounter("tensor.pool_hits"),
                       reg.GetCounter("tensor.pool_misses"),
                       reg.GetCounter("tensor.pool_released"),
                       reg.GetCounter("tensor.pool_trimmed_bytes"),
                       reg.GetGauge("tensor.pool_idle_bytes")};
  }();
  return m;
}

// A parked buffer plus the release order it was parked at, so TrimTo can
// free newest-parked-first without the acquire path maintaining any
// cross-bucket ordering.
struct IdleBuffer {
  double* ptr;
  int64_t seq;
};

struct PoolState {
  mutable std::mutex mu;
  // Exact-size buckets: GNN training repeats the same shapes every step,
  // so best-fit search buys nothing over an exact-size hash lookup.
  // Buckets are stacks — Acquire pops the most recently parked buffer,
  // which is the one most likely still cache-warm.
  std::unordered_map<int64_t, std::vector<IdleBuffer>> free_lists;
  int64_t next_seq = 0;
  MatrixPoolStats stats;
};

PoolState& State() {
  static PoolState* state = new PoolState();  // leaked: see Global() contract
  return *state;
}

}  // namespace

MatrixPool& MatrixPool::Global() {
  static MatrixPool* pool = new MatrixPool();
  return *pool;
}

double* MatrixPool::Acquire(int64_t n, bool zero) {
  PoolState& s = State();
  double* buffer = nullptr;
  int64_t idle_now = 0;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    auto it = s.free_lists.find(n);
    if (it != s.free_lists.end() && !it->second.empty()) {
      buffer = it->second.back().ptr;
      it->second.pop_back();
      ++s.stats.hits;
      s.stats.idle_bytes -= n * static_cast<int64_t>(sizeof(double));
      --s.stats.idle_buffers;
      idle_now = s.stats.idle_bytes;
    } else {
      ++s.stats.misses;
    }
  }
  if (buffer != nullptr) {
    Metrics().hits->Increment();
    Metrics().idle_bytes->Set(static_cast<double>(idle_now));
    if (zero) std::memset(buffer, 0, static_cast<size_t>(n) * sizeof(double));
    return buffer;
  }
  Metrics().misses->Increment();
  buffer = AlignedAllocDoubles(n, zero);
  AllocTracker::Add(static_cast<size_t>(n) * sizeof(double));
  return buffer;
}

void MatrixPool::Release(double* ptr, int64_t n) {
  PoolState& s = State();
  int64_t idle_now = 0;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    s.free_lists[n].push_back({ptr, s.next_seq++});
    ++s.stats.released;
    s.stats.idle_bytes += n * static_cast<int64_t>(sizeof(double));
    ++s.stats.idle_buffers;
    idle_now = s.stats.idle_bytes;
  }
  Metrics().released->Increment();
  Metrics().idle_bytes->Set(static_cast<double>(idle_now));
}

void MatrixPool::TrimTo(int64_t target_idle_bytes) {
  PoolState& s = State();
  std::vector<std::pair<double*, int64_t>> to_free;
  int64_t idle_now = 0;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    while (s.stats.idle_bytes > target_idle_bytes) {
      // Newest-parked buffer across all buckets (each bucket is a stack, so
      // only bucket backs need comparing). O(buckets) per freed buffer —
      // fine for a per-run reclamation pass, and it keeps Acquire/Release
      // free of any cross-bucket bookkeeping.
      std::vector<IdleBuffer>* newest_bucket = nullptr;
      int64_t newest_n = 0;
      for (auto& [size, bucket] : s.free_lists) {
        if (bucket.empty()) continue;
        if (newest_bucket == nullptr ||
            bucket.back().seq > newest_bucket->back().seq) {
          newest_bucket = &bucket;
          newest_n = size;
        }
      }
      if (newest_bucket == nullptr) break;
      to_free.emplace_back(newest_bucket->back().ptr, newest_n);
      newest_bucket->pop_back();
      s.stats.idle_bytes -= newest_n * static_cast<int64_t>(sizeof(double));
      --s.stats.idle_buffers;
      s.stats.trimmed_bytes += newest_n * static_cast<int64_t>(sizeof(double));
    }
    idle_now = s.stats.idle_bytes;
  }
  int64_t freed = 0;
  for (const auto& [ptr, n] : to_free) {
    AllocTracker::Remove(static_cast<size_t>(n) * sizeof(double));
    AlignedFreeDoubles(ptr);
    freed += n * static_cast<int64_t>(sizeof(double));
  }
  if (freed > 0) {
    Metrics().trimmed_bytes->Increment(freed);
    Metrics().idle_bytes->Set(static_cast<double>(idle_now));
  }
}

MatrixPoolStats MatrixPool::Stats() const {
  PoolState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.stats;
}

int64_t MatrixPool::IdleBytes() const {
  PoolState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.stats.idle_bytes;
}

bool PoolingEnabled() { return tl_pooling; }

bool FusionEnabled() { return tl_fusion; }

ScopedMemPlane::ScopedMemPlane(bool pooling, bool fusion)
    : saved_pooling_(tl_pooling), saved_fusion_(tl_fusion) {
  tl_pooling = pooling;
  tl_fusion = fusion;
}

ScopedMemPlane::~ScopedMemPlane() {
  tl_pooling = saved_pooling_;
  tl_fusion = saved_fusion_;
}

ScopedArena::ScopedArena(bool enable) : enabled_(enable) {
  if (!enabled_) return;
  saved_pooling_ = tl_pooling;
  tl_pooling = true;
  entry_idle_bytes_ = MatrixPool::Global().IdleBytes();
}

ScopedArena::~ScopedArena() {
  if (!enabled_) return;
  tl_pooling = saved_pooling_;
  MatrixPool::Global().TrimTo(entry_idle_bytes_);
}

}  // namespace ahg
