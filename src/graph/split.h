// Train/validation/test split utilities for node classification and the
// edge split + negative sampling used by link prediction.
#ifndef AUTOHENS_GRAPH_SPLIT_H_
#define AUTOHENS_GRAPH_SPLIT_H_

#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace ahg {

struct DataSplit {
  std::vector<int> train;
  std::vector<int> val;
  std::vector<int> test;
};

// Random split of the labeled nodes by fractions (test gets the remainder).
// This is the protocol for the KDD Cup style datasets, where the paper
// repeatedly resplits for bagging.
DataSplit RandomSplit(const Graph& graph, double train_fraction,
                      double val_fraction, Rng* rng);

// Resplits only train/val, keeping `test` fixed (bagging over splits keeps
// the held-out evaluation set stable).
DataSplit ResplitTrainVal(const DataSplit& base, double val_fraction,
                          Rng* rng);

// Planetoid-style fixed protocol: `per_class` training nodes per class, then
// `val_count` validation and `test_count` test nodes from the remainder.
DataSplit PerClassSplit(const Graph& graph, int per_class, int val_count,
                        int test_count, Rng* rng);

// An undirected node pair for link prediction.
struct NodePair {
  int u = 0;
  int v = 0;
};

// Link-prediction split: `train_graph` has the val/test positive edges
// removed; positives/negatives are balanced per partition.
struct LinkSplit {
  Graph train_graph;
  std::vector<NodePair> train_pos, train_neg;
  std::vector<NodePair> val_pos, val_neg;
  std::vector<NodePair> test_pos, test_neg;
};

LinkSplit MakeLinkSplit(const Graph& graph, double val_fraction,
                        double test_fraction, Rng* rng);

}  // namespace ahg

#endif  // AUTOHENS_GRAPH_SPLIT_H_
