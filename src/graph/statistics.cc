#include "graph/statistics.h"

#include <algorithm>
#include <cstdlib>
#include <unordered_set>
#include <vector>

#include "obs/metrics.h"

namespace ahg {

namespace {

// Locality of the kSymNorm CSR in the graph's current id order: bandwidth,
// mean stored-column gap, hub mass. Stored order is what the SpMM kernels
// walk, so gaps are measured between consecutive STORED entries (which are
// ascending-external, not necessarily ascending-internal, on a reordered
// graph — the |.| keeps the measure meaningful either way).
void ComputeLocalityStats(const Graph& graph, GraphStatistics* stats) {
  const SparseMatrix& adj = graph.Adjacency(AdjacencyKind::kSymNorm);
  const std::vector<int64_t>& row_ptr = adj.row_ptr();
  const std::vector<int>& col_idx = adj.col_idx();
  const int n = adj.rows();
  int64_t gap_sum = 0, gap_count = 0;
  for (int r = 0; r < n; ++r) {
    for (int64_t i = row_ptr[r]; i < row_ptr[r + 1]; ++i) {
      stats->bandwidth = std::max(
          stats->bandwidth, std::abs(static_cast<int64_t>(col_idx[i]) - r));
      if (i > row_ptr[r]) {
        gap_sum += std::abs(static_cast<int64_t>(col_idx[i]) - col_idx[i - 1]);
        ++gap_count;
      }
    }
  }
  stats->mean_column_gap =
      gap_count > 0 ? static_cast<double>(gap_sum) / gap_count : 0.0;

  if (n > 0 && adj.nnz() > 0) {
    std::vector<int64_t> row_nnz(n);
    for (int r = 0; r < n; ++r) row_nnz[r] = row_ptr[r + 1] - row_ptr[r];
    std::sort(row_nnz.begin(), row_nnz.end(), std::greater<int64_t>());
    const int top = std::max(1, n / 100);
    int64_t hub_nnz = 0;
    for (int r = 0; r < top; ++r) hub_nnz += row_nnz[r];
    stats->hub_mass = static_cast<double>(hub_nnz) /
                      static_cast<double>(adj.nnz());
  }
}

}  // namespace

GraphStatistics ComputeStatistics(const Graph& graph) {
  GraphStatistics stats;
  stats.num_nodes = graph.num_nodes();
  stats.num_edges = graph.num_edges();
  const int n = graph.num_nodes();
  if (n == 0) return stats;

  // Undirected simple view of the edge set.
  std::vector<std::vector<int>> neighbors(n);
  std::unordered_set<int64_t> seen;
  int64_t homophilous = 0, labeled_edges = 0;
  for (const Edge& e : graph.edges()) {
    if (e.src == e.dst) continue;
    const int a = std::min(e.src, e.dst);
    const int b = std::max(e.src, e.dst);
    if (!seen.insert(static_cast<int64_t>(a) * n + b).second) continue;
    neighbors[a].push_back(b);
    neighbors[b].push_back(a);
    if (graph.labels()[a] >= 0 && graph.labels()[b] >= 0) {
      ++labeled_edges;
      homophilous += graph.labels()[a] == graph.labels()[b];
    }
  }
  stats.edge_homophily =
      labeled_edges > 0
          ? static_cast<double>(homophilous) / static_cast<double>(labeled_edges)
          : 0.0;

  int64_t degree_sum = 0;
  for (int i = 0; i < n; ++i) {
    std::sort(neighbors[i].begin(), neighbors[i].end());
    const int deg = static_cast<int>(neighbors[i].size());
    degree_sum += deg;
    stats.max_degree = std::max(stats.max_degree, deg);
  }
  stats.avg_degree = static_cast<double>(degree_sum) / (2.0 * n);

  // Local clustering via sorted-adjacency intersection.
  double clustering_sum = 0.0;
  int clustering_count = 0;
  for (int i = 0; i < n; ++i) {
    const auto& nbrs = neighbors[i];
    const int deg = static_cast<int>(nbrs.size());
    if (deg < 2) continue;
    int64_t closed = 0;
    for (int a = 0; a < deg; ++a) {
      for (int b = a + 1; b < deg; ++b) {
        closed += std::binary_search(neighbors[nbrs[a]].begin(),
                                     neighbors[nbrs[a]].end(), nbrs[b]);
      }
    }
    clustering_sum += 2.0 * static_cast<double>(closed) /
                      (static_cast<double>(deg) * (deg - 1));
    ++clustering_count;
  }
  stats.avg_clustering =
      clustering_count > 0 ? clustering_sum / clustering_count : 0.0;

  // Connected components by iterative DFS.
  std::vector<int> component(n, -1);
  std::vector<int> stack;
  int components = 0;
  for (int start = 0; start < n; ++start) {
    if (component[start] >= 0) continue;
    int size = 0;
    stack.push_back(start);
    component[start] = components;
    while (!stack.empty()) {
      const int node = stack.back();
      stack.pop_back();
      ++size;
      for (int next : neighbors[node]) {
        if (component[next] < 0) {
          component[next] = components;
          stack.push_back(next);
        }
      }
    }
    stats.largest_component = std::max(stats.largest_component, size);
    ++components;
  }
  stats.connected_components = components;
  ComputeLocalityStats(graph, &stats);
  return stats;
}

void PublishGraphGauges(const GraphStatistics& stats,
                        obs::MetricsRegistry* registry,
                        const std::string& prefix) {
  const std::string base = "graph." + prefix;
  registry->GetGauge(base + "nodes")->Set(stats.num_nodes);
  registry->GetGauge(base + "edges")
      ->Set(static_cast<double>(stats.num_edges));
  registry->GetGauge(base + "bandwidth")
      ->Set(static_cast<double>(stats.bandwidth));
  registry->GetGauge(base + "mean_column_gap")->Set(stats.mean_column_gap);
  registry->GetGauge(base + "hub_mass")->Set(stats.hub_mass);
}

}  // namespace ahg
