#include "graph/statistics.h"

#include <algorithm>
#include <unordered_set>
#include <vector>

namespace ahg {

GraphStatistics ComputeStatistics(const Graph& graph) {
  GraphStatistics stats;
  stats.num_nodes = graph.num_nodes();
  stats.num_edges = graph.num_edges();
  const int n = graph.num_nodes();
  if (n == 0) return stats;

  // Undirected simple view of the edge set.
  std::vector<std::vector<int>> neighbors(n);
  std::unordered_set<int64_t> seen;
  int64_t homophilous = 0, labeled_edges = 0;
  for (const Edge& e : graph.edges()) {
    if (e.src == e.dst) continue;
    const int a = std::min(e.src, e.dst);
    const int b = std::max(e.src, e.dst);
    if (!seen.insert(static_cast<int64_t>(a) * n + b).second) continue;
    neighbors[a].push_back(b);
    neighbors[b].push_back(a);
    if (graph.labels()[a] >= 0 && graph.labels()[b] >= 0) {
      ++labeled_edges;
      homophilous += graph.labels()[a] == graph.labels()[b];
    }
  }
  stats.edge_homophily =
      labeled_edges > 0
          ? static_cast<double>(homophilous) / static_cast<double>(labeled_edges)
          : 0.0;

  int64_t degree_sum = 0;
  for (int i = 0; i < n; ++i) {
    std::sort(neighbors[i].begin(), neighbors[i].end());
    const int deg = static_cast<int>(neighbors[i].size());
    degree_sum += deg;
    stats.max_degree = std::max(stats.max_degree, deg);
  }
  stats.avg_degree = static_cast<double>(degree_sum) / (2.0 * n);

  // Local clustering via sorted-adjacency intersection.
  double clustering_sum = 0.0;
  int clustering_count = 0;
  for (int i = 0; i < n; ++i) {
    const auto& nbrs = neighbors[i];
    const int deg = static_cast<int>(nbrs.size());
    if (deg < 2) continue;
    int64_t closed = 0;
    for (int a = 0; a < deg; ++a) {
      for (int b = a + 1; b < deg; ++b) {
        closed += std::binary_search(neighbors[nbrs[a]].begin(),
                                     neighbors[nbrs[a]].end(), nbrs[b]);
      }
    }
    clustering_sum += 2.0 * static_cast<double>(closed) /
                      (static_cast<double>(deg) * (deg - 1));
    ++clustering_count;
  }
  stats.avg_clustering =
      clustering_count > 0 ? clustering_sum / clustering_count : 0.0;

  // Connected components by iterative DFS.
  std::vector<int> component(n, -1);
  std::vector<int> stack;
  int components = 0;
  for (int start = 0; start < n; ++start) {
    if (component[start] >= 0) continue;
    int size = 0;
    stack.push_back(start);
    component[start] = components;
    while (!stack.empty()) {
      const int node = stack.back();
      stack.pop_back();
      ++size;
      for (int next : neighbors[node]) {
        if (component[next] < 0) {
          component[next] = components;
          stack.push_back(next);
        }
      }
    }
    stats.largest_component = std::max(stats.largest_component, size);
    ++components;
  }
  stats.connected_components = components;
  return stats;
}

}  // namespace ahg
