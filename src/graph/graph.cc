#include "graph/graph.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"
#include "util/string_util.h"

namespace ahg {

namespace {

// Canonical 64-bit key of an edge for duplicate detection: (src, dst) for
// directed graphs, the sorted pair for undirected ones (both orientations
// produce the same CSR entries, so {u,v} and {v,u} are the same edge).
uint64_t EdgeKey(const Edge& e, bool directed) {
  int a = e.src;
  int b = e.dst;
  if (!directed && a > b) std::swap(a, b);
  return (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 32) |
         static_cast<uint32_t>(b);
}

// Index of the first duplicate edge under EdgeKey, or -1 when all edges are
// distinct. O(m log m); `keys` is scratch to avoid reallocation.
int64_t FindDuplicateEdge(const std::vector<Edge>& edges, bool directed) {
  std::vector<uint64_t> keys;
  keys.reserve(edges.size());
  for (const Edge& e : edges) keys.push_back(EdgeKey(e, directed));
  std::vector<uint64_t> sorted = keys;
  std::sort(sorted.begin(), sorted.end());
  const auto dup = std::adjacent_find(sorted.begin(), sorted.end());
  if (dup == sorted.end()) return -1;
  // Report the *second* occurrence in input order for the error message.
  bool seen_once = false;
  for (size_t i = 0; i < keys.size(); ++i) {
    if (keys[i] != *dup) continue;
    if (seen_once) return static_cast<int64_t>(i);
    seen_once = true;
  }
  return -1;  // unreachable
}

}  // namespace

Graph Graph::Create(int num_nodes, std::vector<Edge> edges, bool directed,
                    Matrix features, std::vector<int> labels,
                    int num_classes) {
  for (const Edge& e : edges) {
    AHG_CHECK(e.src >= 0 && e.src < num_nodes);
    AHG_CHECK(e.dst >= 0 && e.dst < num_nodes);
  }
  const int64_t dup = FindDuplicateEdge(edges, directed);
  AHG_CHECK_MSG(dup < 0, "duplicate edge ("
                             << edges[dup].src << ", " << edges[dup].dst
                             << ") in edge list; use CreateChecked for "
                                "untrusted input");
  Graph g;
  g.num_nodes_ = num_nodes;
  g.directed_ = directed;
  g.num_classes_ = num_classes;
  g.edges_ = std::move(edges);
  g.features_ = std::move(features);
  if (labels.empty()) labels.assign(num_nodes, -1);
  AHG_CHECK_EQ(static_cast<int>(labels.size()), num_nodes);
  g.labels_ = std::move(labels);
  g.BuildAdjacencyCaches();
  return g;
}

StatusOr<Graph> Graph::CreateChecked(int num_nodes, std::vector<Edge> edges,
                                     bool directed, Matrix features,
                                     std::vector<int> labels,
                                     int num_classes) {
  if (num_nodes < 0) {
    return Status::InvalidArgument(
        StrFormat("negative node count %d", num_nodes));
  }
  if (!labels.empty() && static_cast<int>(labels.size()) != num_nodes) {
    return Status::InvalidArgument(
        StrFormat("%d labels for %d nodes", static_cast<int>(labels.size()),
                  num_nodes));
  }
  for (const Edge& e : edges) {
    if (e.src < 0 || e.src >= num_nodes || e.dst < 0 || e.dst >= num_nodes) {
      return Status::InvalidArgument(
          StrFormat("edge (%d, %d) endpoint outside [0, %d)", e.src, e.dst,
                    num_nodes));
    }
  }
  const int64_t dup = FindDuplicateEdge(edges, directed);
  if (dup >= 0) {
    return Status::InvalidArgument(
        StrFormat("duplicate edge (%d, %d)%s", edges[dup].src, edges[dup].dst,
                  directed ? "" : " (undirected: reversed pairs collide)"));
  }
  return Create(num_nodes, std::move(edges), directed, std::move(features),
                std::move(labels), num_classes);
}

double Graph::AverageDegree() const {
  if (num_nodes_ == 0) return 0.0;
  return static_cast<double>(num_edges()) / num_nodes_;
}

namespace {

// Directed edge set in in-adjacency orientation (row = dst), duplicated for
// undirected graphs.
std::vector<CooEntry> InOrientedEntries(const std::vector<Edge>& edges,
                                        bool directed, bool drop_self_loops) {
  std::vector<CooEntry> entries;
  entries.reserve(directed ? edges.size() : 2 * edges.size());
  for (const Edge& e : edges) {
    if (drop_self_loops && e.src == e.dst) continue;
    entries.push_back({e.dst, e.src, e.weight});
    if (!directed && e.src != e.dst) {
      entries.push_back({e.src, e.dst, e.weight});
    }
  }
  return entries;
}

void AppendSelfLoops(int n, std::vector<CooEntry>* entries) {
  for (int i = 0; i < n; ++i) entries->push_back({i, i, 1.0});
}

// Degree vector of a COO edge set: weighted sum per row (in-degree).
std::vector<double> RowDegrees(int n, const std::vector<CooEntry>& entries) {
  std::vector<double> deg(n, 0.0);
  for (const auto& e : entries) deg[e.row] += e.value;
  return deg;
}

}  // namespace

void Graph::BuildAdjacencyCaches() {
  // Symmetrized base entries (both orientations regardless of directedness)
  // for the spectral-style normalizations; GCN-family models conventionally
  // symmetrize directed graphs.
  std::vector<CooEntry> sym_base;
  sym_base.reserve(2 * edges_.size());
  for (const Edge& e : edges_) {
    if (e.src == e.dst) continue;
    sym_base.push_back({e.dst, e.src, e.weight});
    sym_base.push_back({e.src, e.dst, e.weight});
  }

  {  // kSymNorm: D^-1/2 (A_sym + I) D^-1/2.
    std::vector<CooEntry> entries = sym_base;
    AppendSelfLoops(num_nodes_, &entries);
    std::vector<double> deg = RowDegrees(num_nodes_, entries);
    for (auto& e : entries) {
      const double d = std::sqrt(deg[e.row] * deg[e.col]);
      e.value = d > 0.0 ? e.value / d : 0.0;
    }
    adjacency_[static_cast<int>(AdjacencyKind::kSymNorm)] =
        SparseMatrix::FromCoo(num_nodes_, num_nodes_, std::move(entries));
  }

  {  // kSymNormNoSelfLoops: D^-1/2 A_sym D^-1/2.
    std::vector<CooEntry> entries = sym_base;
    std::vector<double> deg = RowDegrees(num_nodes_, entries);
    for (auto& e : entries) {
      const double d = std::sqrt(std::max(deg[e.row], 1.0) *
                                 std::max(deg[e.col], 1.0));
      e.value = e.value / d;
    }
    adjacency_[static_cast<int>(AdjacencyKind::kSymNormNoSelfLoops)] =
        SparseMatrix::FromCoo(num_nodes_, num_nodes_, std::move(entries));
  }

  {  // kRowNorm: D^-1 (A + I), direction-respecting.
    std::vector<CooEntry> entries = InOrientedEntries(edges_, directed_,
                                                      /*drop_self_loops=*/true);
    AppendSelfLoops(num_nodes_, &entries);
    std::vector<double> deg = RowDegrees(num_nodes_, entries);
    for (auto& e : entries) {
      e.value = deg[e.row] > 0.0 ? e.value / deg[e.row] : 0.0;
    }
    adjacency_[static_cast<int>(AdjacencyKind::kRowNorm)] =
        SparseMatrix::FromCoo(num_nodes_, num_nodes_, std::move(entries));
  }

  {  // kRawSelfLoops: direction-respecting raw weights plus self loops.
    std::vector<CooEntry> entries = InOrientedEntries(edges_, directed_,
                                                      /*drop_self_loops=*/true);
    AppendSelfLoops(num_nodes_, &entries);
    adjacency_[static_cast<int>(AdjacencyKind::kRawSelfLoops)] =
        SparseMatrix::FromCoo(num_nodes_, num_nodes_, std::move(entries));
  }
}

void Graph::SynthesizeDegreeFeatures(int num_buckets) {
  AHG_CHECK_GT(num_buckets, 0);
  const SparseMatrix& adj =
      Adjacency(AdjacencyKind::kRawSelfLoops);
  features_ = Matrix(num_nodes_, num_buckets + 1);
  double max_log_deg = 1.0;
  std::vector<double> log_deg(num_nodes_, 0.0);
  for (int i = 0; i < num_nodes_; ++i) {
    log_deg[i] = std::log1p(static_cast<double>(adj.RowNnz(i)));
    max_log_deg = std::max(max_log_deg, log_deg[i]);
  }
  for (int i = 0; i < num_nodes_; ++i) {
    const int bucket = std::min(
        num_buckets - 1,
        static_cast<int>(log_deg[i] / max_log_deg * num_buckets));
    features_(i, bucket) = 1.0;
    features_(i, num_buckets) = log_deg[i] / max_log_deg;
  }
}

void Graph::SynthesizeStructuralFeatures(int random_dims, uint64_t seed) {
  AHG_CHECK_GT(random_dims, 0);
  Rng rng(seed);
  features_ = Matrix(num_nodes_, random_dims + 1);
  const SparseMatrix& adj = Adjacency(AdjacencyKind::kRawSelfLoops);
  double max_log_deg = 1.0;
  std::vector<double> log_deg(num_nodes_, 0.0);
  for (int i = 0; i < num_nodes_; ++i) {
    log_deg[i] = std::log1p(static_cast<double>(adj.RowNnz(i)));
    max_log_deg = std::max(max_log_deg, log_deg[i]);
  }
  for (int i = 0; i < num_nodes_; ++i) {
    double* row = features_.Row(i);
    for (int c = 0; c < random_dims; ++c) row[c] = rng.Normal();
    row[random_dims] = log_deg[i] / max_log_deg;
  }
}

void Graph::RowNormalizeFeatures() {
  for (int r = 0; r < features_.rows(); ++r) {
    double* row = features_.Row(r);
    double total = 0.0;
    for (int c = 0; c < features_.cols(); ++c) total += std::abs(row[c]);
    if (total > 0.0) {
      for (int c = 0; c < features_.cols(); ++c) row[c] /= total;
    }
  }
}

std::vector<int> Graph::LabeledNodes() const {
  std::vector<int> nodes;
  for (int i = 0; i < num_nodes_; ++i) {
    if (labels_[i] >= 0) nodes.push_back(i);
  }
  return nodes;
}

StatusOr<Graph> Graph::InducedSubgraph(const std::vector<int>& nodes) const {
  // new_id[g] = position of global id g in `nodes`, or -1 when outside the
  // induced set. Doubles as the duplicate detector.
  std::vector<int> new_id(num_nodes_, -1);
  for (size_t i = 0; i < nodes.size(); ++i) {
    const int g = nodes[i];
    if (g < 0 || g >= num_nodes_) {
      return Status::InvalidArgument(
          StrFormat("induced node %d outside [0, %d)", g, num_nodes_));
    }
    if (new_id[g] >= 0) {
      return Status::InvalidArgument(StrFormat("duplicate induced node %d", g));
    }
    new_id[g] = static_cast<int>(i);
  }

  const int n = static_cast<int>(nodes.size());
  std::vector<Edge> sub_edges;
  for (const Edge& e : edges_) {
    const int s = new_id[e.src];
    const int d = new_id[e.dst];
    if (s >= 0 && d >= 0) sub_edges.push_back({s, d, e.weight});
  }

  Matrix sub_features;
  if (features_.rows() > 0) {
    sub_features = Matrix(n, features_.cols());
    for (int i = 0; i < n; ++i) {
      const double* src = features_.Row(nodes[i]);
      std::copy(src, src + features_.cols(), sub_features.Row(i));
    }
  }

  std::vector<int> sub_labels(n, -1);
  if (!labels_.empty()) {
    for (int i = 0; i < n; ++i) sub_labels[i] = labels_[nodes[i]];
  }

  // The edge map is injective (distinct edges of a valid parent stay
  // distinct under relabeling), so Create's duplicate CHECK cannot fire.
  return Create(n, std::move(sub_edges), directed_, std::move(sub_features),
                std::move(sub_labels), num_classes_);
}

}  // namespace ahg
