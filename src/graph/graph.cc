#include "graph/graph.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace ahg {

Graph Graph::Create(int num_nodes, std::vector<Edge> edges, bool directed,
                    Matrix features, std::vector<int> labels,
                    int num_classes) {
  Graph g;
  g.num_nodes_ = num_nodes;
  g.directed_ = directed;
  g.num_classes_ = num_classes;
  g.edges_ = std::move(edges);
  g.features_ = std::move(features);
  if (labels.empty()) labels.assign(num_nodes, -1);
  AHG_CHECK_EQ(static_cast<int>(labels.size()), num_nodes);
  g.labels_ = std::move(labels);
  for (const Edge& e : g.edges_) {
    AHG_CHECK(e.src >= 0 && e.src < num_nodes);
    AHG_CHECK(e.dst >= 0 && e.dst < num_nodes);
  }
  g.BuildAdjacencyCaches();
  return g;
}

double Graph::AverageDegree() const {
  if (num_nodes_ == 0) return 0.0;
  return static_cast<double>(num_edges()) / num_nodes_;
}

namespace {

// Directed edge set in in-adjacency orientation (row = dst), duplicated for
// undirected graphs.
std::vector<CooEntry> InOrientedEntries(const std::vector<Edge>& edges,
                                        bool directed, bool drop_self_loops) {
  std::vector<CooEntry> entries;
  entries.reserve(directed ? edges.size() : 2 * edges.size());
  for (const Edge& e : edges) {
    if (drop_self_loops && e.src == e.dst) continue;
    entries.push_back({e.dst, e.src, e.weight});
    if (!directed && e.src != e.dst) {
      entries.push_back({e.src, e.dst, e.weight});
    }
  }
  return entries;
}

void AppendSelfLoops(int n, std::vector<CooEntry>* entries) {
  for (int i = 0; i < n; ++i) entries->push_back({i, i, 1.0});
}

// Degree vector of a COO edge set: weighted sum per row (in-degree).
std::vector<double> RowDegrees(int n, const std::vector<CooEntry>& entries) {
  std::vector<double> deg(n, 0.0);
  for (const auto& e : entries) deg[e.row] += e.value;
  return deg;
}

}  // namespace

void Graph::BuildAdjacencyCaches() {
  // Symmetrized base entries (both orientations regardless of directedness)
  // for the spectral-style normalizations; GCN-family models conventionally
  // symmetrize directed graphs.
  std::vector<CooEntry> sym_base;
  sym_base.reserve(2 * edges_.size());
  for (const Edge& e : edges_) {
    if (e.src == e.dst) continue;
    sym_base.push_back({e.dst, e.src, e.weight});
    sym_base.push_back({e.src, e.dst, e.weight});
  }

  {  // kSymNorm: D^-1/2 (A_sym + I) D^-1/2.
    std::vector<CooEntry> entries = sym_base;
    AppendSelfLoops(num_nodes_, &entries);
    std::vector<double> deg = RowDegrees(num_nodes_, entries);
    for (auto& e : entries) {
      const double d = std::sqrt(deg[e.row] * deg[e.col]);
      e.value = d > 0.0 ? e.value / d : 0.0;
    }
    adjacency_[static_cast<int>(AdjacencyKind::kSymNorm)] =
        SparseMatrix::FromCoo(num_nodes_, num_nodes_, std::move(entries));
  }

  {  // kSymNormNoSelfLoops: D^-1/2 A_sym D^-1/2.
    std::vector<CooEntry> entries = sym_base;
    std::vector<double> deg = RowDegrees(num_nodes_, entries);
    for (auto& e : entries) {
      const double d = std::sqrt(std::max(deg[e.row], 1.0) *
                                 std::max(deg[e.col], 1.0));
      e.value = e.value / d;
    }
    adjacency_[static_cast<int>(AdjacencyKind::kSymNormNoSelfLoops)] =
        SparseMatrix::FromCoo(num_nodes_, num_nodes_, std::move(entries));
  }

  {  // kRowNorm: D^-1 (A + I), direction-respecting.
    std::vector<CooEntry> entries = InOrientedEntries(edges_, directed_,
                                                      /*drop_self_loops=*/true);
    AppendSelfLoops(num_nodes_, &entries);
    std::vector<double> deg = RowDegrees(num_nodes_, entries);
    for (auto& e : entries) {
      e.value = deg[e.row] > 0.0 ? e.value / deg[e.row] : 0.0;
    }
    adjacency_[static_cast<int>(AdjacencyKind::kRowNorm)] =
        SparseMatrix::FromCoo(num_nodes_, num_nodes_, std::move(entries));
  }

  {  // kRawSelfLoops: direction-respecting raw weights plus self loops.
    std::vector<CooEntry> entries = InOrientedEntries(edges_, directed_,
                                                      /*drop_self_loops=*/true);
    AppendSelfLoops(num_nodes_, &entries);
    adjacency_[static_cast<int>(AdjacencyKind::kRawSelfLoops)] =
        SparseMatrix::FromCoo(num_nodes_, num_nodes_, std::move(entries));
  }
}

void Graph::SynthesizeDegreeFeatures(int num_buckets) {
  AHG_CHECK_GT(num_buckets, 0);
  const SparseMatrix& adj =
      Adjacency(AdjacencyKind::kRawSelfLoops);
  features_ = Matrix(num_nodes_, num_buckets + 1);
  double max_log_deg = 1.0;
  std::vector<double> log_deg(num_nodes_, 0.0);
  for (int i = 0; i < num_nodes_; ++i) {
    log_deg[i] = std::log1p(static_cast<double>(adj.RowNnz(i)));
    max_log_deg = std::max(max_log_deg, log_deg[i]);
  }
  for (int i = 0; i < num_nodes_; ++i) {
    const int bucket = std::min(
        num_buckets - 1,
        static_cast<int>(log_deg[i] / max_log_deg * num_buckets));
    features_(i, bucket) = 1.0;
    features_(i, num_buckets) = log_deg[i] / max_log_deg;
  }
}

void Graph::SynthesizeStructuralFeatures(int random_dims, uint64_t seed) {
  AHG_CHECK_GT(random_dims, 0);
  Rng rng(seed);
  features_ = Matrix(num_nodes_, random_dims + 1);
  const SparseMatrix& adj = Adjacency(AdjacencyKind::kRawSelfLoops);
  double max_log_deg = 1.0;
  std::vector<double> log_deg(num_nodes_, 0.0);
  for (int i = 0; i < num_nodes_; ++i) {
    log_deg[i] = std::log1p(static_cast<double>(adj.RowNnz(i)));
    max_log_deg = std::max(max_log_deg, log_deg[i]);
  }
  for (int i = 0; i < num_nodes_; ++i) {
    double* row = features_.Row(i);
    for (int c = 0; c < random_dims; ++c) row[c] = rng.Normal();
    row[random_dims] = log_deg[i] / max_log_deg;
  }
}

void Graph::RowNormalizeFeatures() {
  for (int r = 0; r < features_.rows(); ++r) {
    double* row = features_.Row(r);
    double total = 0.0;
    for (int c = 0; c < features_.cols(); ++c) total += std::abs(row[c]);
    if (total > 0.0) {
      for (int c = 0; c < features_.cols(); ++c) row[c] /= total;
    }
  }
}

std::vector<int> Graph::LabeledNodes() const {
  std::vector<int> nodes;
  for (int i = 0; i < num_nodes_; ++i) {
    if (labels_[i] >= 0) nodes.push_back(i);
  }
  return nodes;
}

}  // namespace ahg
