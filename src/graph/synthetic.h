// Synthetic dataset generators standing in for data this environment cannot
// access (the proprietary KDD Cup AutoGraph datasets and the public citation
// benchmarks). A degree-corrected stochastic block model with two-scale
// community structure and class-correlated features exercises the same code
// paths: models disagree, homophily varies, degrees are skewed, and larger
// receptive fields carry extra signal. See DESIGN.md Section 1 for the
// substitution rationale and Section 5 for the scale-down map.
#ifndef AUTOHENS_GRAPH_SYNTHETIC_H_
#define AUTOHENS_GRAPH_SYNTHETIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace ahg {

enum class FeatureStyle {
  kGaussian = 0,  // class centroid + Gaussian noise
  kBinaryBow,     // sparse 0/1 bag-of-words-like
  kNone,          // featureless (paper dataset E)
};

struct SyntheticConfig {
  std::string name = "unnamed";
  int num_nodes = 1000;
  int num_classes = 5;
  int feature_dim = 64;
  // Expected edges = num_nodes * avg_degree (each stored once; undirected
  // graphs are symmetrized by Graph).
  double avg_degree = 4.0;
  // Probability an edge stays within its endpoint's class.
  double homophily = 0.8;
  // Communities nested inside each class; > 1 creates the local/global
  // structure that rewards mixing different receptive fields.
  int communities_per_class = 2;
  // Probability an intra-class edge also stays within the community.
  double community_bias = 0.85;
  // Degree-skew: node propensities ~ u^(-power_law) (0 disables skew).
  double power_law = 0.0;
  // Feature strength: centroid scale relative to unit noise.
  double feature_signal = 1.0;
  // Fraction of labels flipped to a random other class after generation.
  // Structure/features follow the *true* label, so this caps attainable
  // accuracy near 1 - label_noise — how the presets are pinned to the
  // paper's accuracy ranges (e.g. dataset B sits in the low 70s).
  double label_noise = 0.0;
  FeatureStyle feature_style = FeatureStyle::kGaussian;
  bool directed = false;
  // Edge weights Uniform(0.5, 2.0) when true, else 1.0.
  bool weighted = false;
  uint64_t seed = 1;
};

// Generates a graph from the block-model configuration. All nodes carry
// ground-truth labels; split utilities decide what is observed.
Graph GenerateSbmGraph(const SyntheticConfig& config);

// Named presets: "A".."E" (KDD Cup analogs, Table I statistics),
// "cora-syn", "citeseer-syn", "pubmed-syn", "arxiv-syn". Aborts on an
// unknown name; see KnownPresets().
SyntheticConfig PresetConfig(const std::string& name);

// Convenience: PresetConfig + GenerateSbmGraph (+ degree features for E).
Graph MakePresetGraph(const std::string& name, uint64_t seed);

std::vector<std::string> KnownPresets();

}  // namespace ahg

#endif  // AUTOHENS_GRAPH_SYNTHETIC_H_
