#include "graph/reorder.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <sstream>

#include "util/logging.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace ahg {

const char* ReorderStrategyName(ReorderStrategy strategy) {
  switch (strategy) {
    case ReorderStrategy::kNone:
      return "none";
    case ReorderStrategy::kRcm:
      return "rcm";
    case ReorderStrategy::kHubCluster:
      return "hub";
    case ReorderStrategy::kShuffle:
      return "shuffle";
  }
  return "none";
}

StatusOr<ReorderStrategy> ParseReorderStrategy(const std::string& name) {
  if (name == "none") return ReorderStrategy::kNone;
  if (name == "rcm") return ReorderStrategy::kRcm;
  if (name == "hub") return ReorderStrategy::kHubCluster;
  if (name == "shuffle") return ReorderStrategy::kShuffle;
  return Status::InvalidArgument(
      StrFormat("unknown reorder strategy '%s' (none|rcm|hub|shuffle)",
                name.c_str()));
}

NodePermutation NodePermutation::Identity(int num_nodes) {
  NodePermutation perm;
  perm.to_internal.resize(num_nodes);
  perm.to_external.resize(num_nodes);
  for (int i = 0; i < num_nodes; ++i) {
    perm.to_internal[i] = i;
    perm.to_external[i] = i;
  }
  return perm;
}

NodePermutation NodePermutation::ComposedWith(
    const std::vector<int>& remap) const {
  AHG_CHECK_EQ(static_cast<int>(remap.size()), num_nodes());
  NodePermutation out;
  out.strategy = strategy;
  out.seed = seed;
  out.to_internal.resize(to_internal.size());
  out.to_external.resize(to_internal.size());
  for (int e = 0; e < num_nodes(); ++e) {
    const int i = remap[to_internal[e]];
    AHG_CHECK(i >= 0 && i < num_nodes());
    out.to_internal[e] = i;
    out.to_external[i] = e;
  }
  return out;
}

NodePermutation NodePermutation::ExtendedTo(int n) const {
  AHG_CHECK_GE(n, num_nodes());
  NodePermutation out = *this;
  out.to_internal.reserve(n);
  out.to_external.reserve(n);
  for (int i = num_nodes(); i < n; ++i) {
    out.to_internal.push_back(i);
    out.to_external.push_back(i);
  }
  return out;
}

std::string NodePermutation::Serialize() const {
  std::ostringstream out;
  out << "ahg-node-perm 1\n";
  out << "strategy " << ReorderStrategyName(strategy) << "\n";
  out << "seed " << seed << "\n";
  out << "nodes " << num_nodes() << "\n";
  for (int e = 0; e < num_nodes(); ++e) {
    out << to_internal[e] << (e + 1 == num_nodes() ? "" : " ");
  }
  out << "\n";
  return out.str();
}

StatusOr<NodePermutation> NodePermutation::Deserialize(
    const std::string& text) {
  std::istringstream in(text);
  std::string magic, version;
  if (!(in >> magic >> version) || magic != "ahg-node-perm" ||
      version != "1") {
    return Status::InvalidArgument("bad node-perm header");
  }
  std::string key, strategy_name;
  NodePermutation perm;
  if (!(in >> key >> strategy_name) || key != "strategy") {
    return Status::InvalidArgument("bad node-perm strategy line");
  }
  StatusOr<ReorderStrategy> strategy = ParseReorderStrategy(strategy_name);
  if (!strategy.ok()) return strategy.status();
  perm.strategy = strategy.value();
  uint64_t seed = 0;
  if (!(in >> key >> seed) || key != "seed") {
    return Status::InvalidArgument("bad node-perm seed line");
  }
  perm.seed = seed;
  int n = 0;
  if (!(in >> key >> n) || key != "nodes" || n < 0) {
    return Status::InvalidArgument("bad node-perm nodes line");
  }
  perm.to_internal.resize(n);
  perm.to_external.assign(n, -1);
  for (int e = 0; e < n; ++e) {
    int i = 0;
    if (!(in >> i) || i < 0 || i >= n) {
      return Status::InvalidArgument(
          StrFormat("node-perm entry %d missing or outside [0, %d)", e, n));
    }
    if (perm.to_external[i] != -1) {
      return Status::InvalidArgument(
          StrFormat("node-perm maps two externals to internal %d", i));
    }
    perm.to_internal[e] = i;
    perm.to_external[i] = e;
  }
  return perm;
}

namespace {

// Symmetrized, self-loop-free, ascending neighbor lists in external ids.
std::vector<std::vector<int>> NeighborLists(const Graph& graph) {
  std::vector<std::vector<int>> neighbors(graph.num_nodes());
  for (const Edge& e : graph.edges()) {
    if (e.src == e.dst) continue;
    neighbors[e.src].push_back(e.dst);
    neighbors[e.dst].push_back(e.src);
  }
  for (auto& list : neighbors) {
    std::sort(list.begin(), list.end());
    // Directed graphs may hold both orientations of a pair.
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
  return neighbors;
}

// Cuthill-McKee visit order, reversed. BFS from the minimum-(degree, id)
// unvisited node of each component; frontier neighbors appended in
// ascending (degree, id). Single-threaded and tie-break-pinned, so the
// order is byte-identical across runs.
std::vector<int> RcmOrder(const std::vector<std::vector<int>>& neighbors) {
  const int n = static_cast<int>(neighbors.size());
  std::vector<int> by_degree(n);
  for (int i = 0; i < n; ++i) by_degree[i] = i;
  std::stable_sort(by_degree.begin(), by_degree.end(), [&](int a, int b) {
    return neighbors[a].size() < neighbors[b].size();
  });

  std::vector<int> order;
  order.reserve(n);
  std::vector<uint8_t> visited(n, 0);
  std::vector<int> frontier;
  size_t seed_cursor = 0;
  while (static_cast<int>(order.size()) < n) {
    while (visited[by_degree[seed_cursor]]) ++seed_cursor;
    const int seed = by_degree[seed_cursor];
    visited[seed] = 1;
    order.push_back(seed);
    for (size_t head = order.size() - 1; head < order.size(); ++head) {
      const int u = order[head];
      frontier.clear();
      for (int v : neighbors[u]) {
        if (!visited[v]) {
          visited[v] = 1;
          frontier.push_back(v);
        }
      }
      // Neighbor lists ascend by id, so a stable degree sort yields the
      // (degree, id) order.
      std::stable_sort(frontier.begin(), frontier.end(), [&](int a, int b) {
        return neighbors[a].size() < neighbors[b].size();
      });
      order.insert(order.end(), frontier.begin(), frontier.end());
    }
  }
  std::reverse(order.begin(), order.end());
  return order;
}

// Hubs (top ~1% by degree, at least one) first in (degree desc, id asc)
// order, then every remaining node grouped behind the earliest-ranked hub
// in its neighborhood (nodes with no hub neighbor trail in id order).
std::vector<int> HubClusterOrder(
    const std::vector<std::vector<int>>& neighbors) {
  const int n = static_cast<int>(neighbors.size());
  std::vector<int> by_degree(n);
  for (int i = 0; i < n; ++i) by_degree[i] = i;
  std::stable_sort(by_degree.begin(), by_degree.end(), [&](int a, int b) {
    return neighbors[a].size() > neighbors[b].size();
  });
  const int num_hubs = std::max(1, n / 100);
  std::vector<int> hub_rank(n, std::numeric_limits<int>::max());
  for (int h = 0; h < num_hubs && h < n; ++h) hub_rank[by_degree[h]] = h;

  std::vector<int> order;
  order.reserve(n);
  for (int h = 0; h < num_hubs && h < n; ++h) order.push_back(by_degree[h]);

  std::vector<int> anchor(n, std::numeric_limits<int>::max());
  std::vector<int> rest;
  rest.reserve(n - static_cast<int>(order.size()));
  for (int v = 0; v < n; ++v) {
    if (hub_rank[v] != std::numeric_limits<int>::max()) continue;
    for (int u : neighbors[v]) anchor[v] = std::min(anchor[v], hub_rank[u]);
    rest.push_back(v);
  }
  // `rest` ascends by id, so a stable anchor sort yields (anchor, id).
  std::stable_sort(rest.begin(), rest.end(),
                   [&](int a, int b) { return anchor[a] < anchor[b]; });
  order.insert(order.end(), rest.begin(), rest.end());
  return order;
}

std::vector<int> ShuffleOrder(int n, uint64_t seed) {
  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;
  Rng rng(seed);
  rng.Shuffle(&order);
  return order;
}

}  // namespace

NodePermutation ComputeReorderFromAdjacency(
    const std::vector<std::vector<int>>& neighbors, ReorderStrategy strategy,
    uint64_t seed) {
  const int n = static_cast<int>(neighbors.size());
  std::vector<int> order;  // order[i] = external id placed at internal i
  switch (strategy) {
    case ReorderStrategy::kNone:
      return NodePermutation::Identity(n);
    case ReorderStrategy::kRcm:
      order = RcmOrder(neighbors);
      break;
    case ReorderStrategy::kHubCluster:
      order = HubClusterOrder(neighbors);
      break;
    case ReorderStrategy::kShuffle:
      order = ShuffleOrder(n, seed);
      break;
  }
  NodePermutation perm;
  perm.strategy = strategy;
  perm.seed = seed;
  perm.to_external = std::move(order);
  perm.to_internal.assign(n, -1);
  for (int i = 0; i < n; ++i) {
    AHG_CHECK_EQ(perm.to_internal[perm.to_external[i]], -1);
    perm.to_internal[perm.to_external[i]] = i;
  }
  return perm;
}

NodePermutation ComputeReorder(const Graph& graph, ReorderStrategy strategy,
                               uint64_t seed) {
  if (strategy == ReorderStrategy::kNone ||
      strategy == ReorderStrategy::kShuffle) {
    // Topology-free strategies skip the neighbor-list build.
    return ComputeReorderFromAdjacency(
        std::vector<std::vector<int>>(graph.num_nodes()), strategy, seed);
  }
  return ComputeReorderFromAdjacency(NeighborLists(graph), strategy, seed);
}

SparseMatrix PermuteSparse(const SparseMatrix& external,
                           const NodePermutation& perm) {
  const int n = external.rows();
  AHG_CHECK_EQ(external.cols(), n);
  AHG_CHECK_EQ(perm.num_nodes(), n);
  const std::vector<int64_t>& src_ptr = external.row_ptr();
  const std::vector<int>& src_col = external.col_idx();
  const std::vector<double>& src_val = external.values();

  std::vector<int64_t> row_ptr(n + 1, 0);
  for (int e = 0; e < n; ++e) {
    row_ptr[perm.to_internal[e] + 1] = src_ptr[e + 1] - src_ptr[e];
  }
  for (int i = 0; i < n; ++i) row_ptr[i + 1] += row_ptr[i];

  std::vector<int> col_idx(external.nnz());
  std::vector<double> values(external.nnz());
  for (int e = 0; e < n; ++e) {
    const int64_t src_begin = src_ptr[e];
    const int64_t len = src_ptr[e + 1] - src_begin;
    const int64_t dst_begin = row_ptr[perm.to_internal[e]];
    for (int64_t k = 0; k < len; ++k) {
      col_idx[dst_begin + k] = perm.to_internal[src_col[src_begin + k]];
    }
    // Values byte-copied in stored order: the permuted row accumulates the
    // identical FP sequence, which is the whole bitwise-conformance story.
    if (len > 0) {
      std::memcpy(values.data() + dst_begin, src_val.data() + src_begin,
                  static_cast<size_t>(len) * sizeof(double));
    }
  }
  return SparseMatrix::FromCsrParts(n, n, std::move(row_ptr),
                                    std::move(col_idx), std::move(values));
}

Graph ApplyNodePermutation(const Graph& graph,
                           std::shared_ptr<const NodePermutation> perm) {
  AHG_CHECK(perm != nullptr);
  AHG_CHECK_MSG(graph.permutation() == nullptr,
                "graph already reordered; dynamic re-reorders go through "
                "GraphSnapshot::Reordered");
  AHG_CHECK_EQ(perm->num_nodes(), graph.num_nodes());
  const std::vector<int>& p = perm->to_internal;

  Graph out;
  out.num_nodes_ = graph.num_nodes_;
  out.directed_ = graph.directed_;
  out.num_classes_ = graph.num_classes_;
  out.edges_.reserve(graph.edges_.size());
  for (const Edge& e : graph.edges_) {
    out.edges_.push_back({p[e.src], p[e.dst], e.weight});
  }
  if (graph.features_.rows() > 0) {
    out.features_ = Matrix(graph.features_.rows(), graph.features_.cols());
    for (int e = 0; e < graph.num_nodes_; ++e) {
      const double* src = graph.features_.Row(e);
      std::copy(src, src + graph.features_.cols(), out.features_.Row(p[e]));
    }
  }
  out.labels_.resize(graph.labels_.size());
  for (int e = 0; e < graph.num_nodes_; ++e) {
    out.labels_[p[e]] = graph.labels_[e];
  }
  // Permute the prebuilt caches directly instead of rebuilding: a rebuild
  // would re-sort entries by internal id and re-accumulate degrees in a new
  // order, breaking bitwise identity with the unreordered graph.
  for (int k = 0; k < kNumAdjacencyKinds; ++k) {
    out.adjacency_[k] = PermuteSparse(graph.adjacency_[k], *perm);
  }
  out.perm_ = std::move(perm);
  return out;
}

Graph ReorderGraph(const Graph& graph, ReorderStrategy strategy,
                   uint64_t seed) {
  if (strategy == ReorderStrategy::kNone) return graph;
  return ApplyNodePermutation(
      graph, std::make_shared<const NodePermutation>(
                 ComputeReorder(graph, strategy, seed)));
}

int ToInternalId(const NodePermutation* perm, int external_id) {
  return perm == nullptr ? external_id : perm->to_internal[external_id];
}

int ToExternalId(const NodePermutation* perm, int internal_id) {
  return perm == nullptr ? internal_id : perm->to_external[internal_id];
}

std::vector<int> ToInternalIds(const NodePermutation* perm,
                               const std::vector<int>& external_ids) {
  if (perm == nullptr) return external_ids;
  std::vector<int> out;
  out.reserve(external_ids.size());
  for (int e : external_ids) out.push_back(perm->to_internal[e]);
  return out;
}

DataSplit ProjectSplit(const NodePermutation* perm, const DataSplit& split) {
  if (perm == nullptr) return split;
  DataSplit out;
  out.train = ToInternalIds(perm, split.train);
  out.val = ToInternalIds(perm, split.val);
  out.test = ToInternalIds(perm, split.test);
  return out;
}

}  // namespace ahg
