// The central graph container used by every task: node features, labels,
// edge list, and cached adjacency matrices under the normalizations the
// model zoo needs.
//
// Adjacency convention: "in-adjacency" — row r of a cached SparseMatrix
// lists the source nodes j with an edge j -> r, so Spmm(A, H) aggregates
// messages *into* each node. Undirected graphs store both directions.
#ifndef AUTOHENS_GRAPH_GRAPH_H_
#define AUTOHENS_GRAPH_GRAPH_H_

#include <memory>
#include <string>
#include <vector>

#include "tensor/matrix.h"
#include "tensor/sparse_matrix.h"
#include "util/status.h"

namespace ahg {

struct NodePermutation;  // graph/reorder.h

struct Edge {
  int src = 0;
  int dst = 0;
  double weight = 1.0;
};

// Which cached adjacency a model requests.
enum class AdjacencyKind {
  // D^-1/2 (A + I) D^-1/2 on the symmetrized graph (GCN and friends).
  kSymNorm = 0,
  // Row-normalized D^-1 (A + I): mean aggregation (GraphSAGE).
  kRowNorm,
  // Raw weights with self loops (GAT attention support, GIN sum, max-pool).
  kRawSelfLoops,
  // D^-1/2 A D^-1/2 without self loops (Chebyshev scaled Laplacian).
  kSymNormNoSelfLoops,
};
inline constexpr int kNumAdjacencyKinds = 4;

class Graph {
 public:
  Graph() = default;

  // Builds the graph and eagerly materializes all adjacency caches so that
  // later (possibly multi-threaded) training never mutates shared state.
  // `features` may be empty; call SynthesizeDegreeFeatures afterwards for
  // featureless datasets (paper dataset E).
  // Out-of-range endpoints or duplicate edges are programmer error and
  // abort via AHG_CHECK; use CreateChecked for untrusted input. A duplicate
  // is a repeated (src, dst) pair — for undirected graphs the reversed pair
  // counts too, since both orientations land on the same CSR entries and
  // would silently sum their weights.
  static Graph Create(int num_nodes, std::vector<Edge> edges, bool directed,
                      Matrix features, std::vector<int> labels,
                      int num_classes);

  // Like Create but returns InvalidArgument instead of aborting on an
  // out-of-range endpoint or a duplicate edge — the entry point for
  // user-supplied edge lists (IO readers, mutation streams). The dynamic
  // mutation path depends on this invariant: RemoveEdge is well-defined
  // only when each edge is stored once.
  static StatusOr<Graph> CreateChecked(int num_nodes, std::vector<Edge> edges,
                                       bool directed, Matrix features,
                                       std::vector<int> labels,
                                       int num_classes);

  int num_nodes() const { return num_nodes_; }
  int64_t num_edges() const { return static_cast<int64_t>(edges_.size()); }
  bool directed() const { return directed_; }
  int num_classes() const { return num_classes_; }
  int feature_dim() const { return features_.cols(); }

  const std::vector<Edge>& edges() const { return edges_; }
  const Matrix& features() const { return features_; }
  const std::vector<int>& labels() const { return labels_; }

  // Average (out-)degree #edges / #nodes as used by the adaptive temperature
  // of Eqn 8.
  double AverageDegree() const;

  const SparseMatrix& Adjacency(AdjacencyKind kind) const {
    return adjacency_[static_cast<int>(kind)];
  }

  // Replaces features with one-hot log-degree buckets plus a normalized
  // degree column (used for featureless graphs).
  void SynthesizeDegreeFeatures(int num_buckets);

  // Replaces features with `random_dims` i.i.d. Gaussian columns plus a
  // normalized log-degree column. Random features carry no class signal on
  // their own, but message passing smooths them within communities, so deep
  // propagation can recover structure-only labels (the standard treatment
  // of featureless graphs like the paper's dataset E).
  void SynthesizeStructuralFeatures(int random_dims, uint64_t seed);

  // L1-normalizes every feature row (standard citation-network preprocessing).
  void RowNormalizeFeatures();

  // Indices of nodes with a known label (label >= 0).
  std::vector<int> LabeledNodes() const;

  // The subgraph induced by `nodes`: node i of the result is nodes[i], and
  // an edge survives iff both endpoints are in the set. Features and labels
  // are gathered in the same order (absent features stay absent; absent
  // labels become all-unlabeled). The order of `nodes` defines the new ids,
  // so callers that need a specific layout (seeds-first minibatches,
  // partition-local numbering) encode it in the input. Returns
  // InvalidArgument on an out-of-range or duplicate id — the same contract
  // as CreateChecked, since induced ids feed untrusted sampling paths.
  StatusOr<Graph> InducedSubgraph(const std::vector<int>& nodes) const;

  // The locality permutation this graph was relabeled by, or nullptr when
  // node ids are in their original ("external") order. When set, every
  // internal structure (rows of features/labels, CSR caches) lives in
  // permuted order and callers holding external ids must translate through
  // it — see graph/reorder.h for the invariant.
  const NodePermutation* permutation() const { return perm_.get(); }
  std::shared_ptr<const NodePermutation> permutation_ptr() const {
    return perm_;
  }

 private:
  friend Graph ApplyNodePermutation(
      const Graph& graph, std::shared_ptr<const NodePermutation> perm);

  void BuildAdjacencyCaches();

  int num_nodes_ = 0;
  bool directed_ = false;
  int num_classes_ = 0;
  std::vector<Edge> edges_;
  Matrix features_;
  std::vector<int> labels_;
  SparseMatrix adjacency_[kNumAdjacencyKinds];
  std::shared_ptr<const NodePermutation> perm_;
};

}  // namespace ahg

#endif  // AUTOHENS_GRAPH_GRAPH_H_
