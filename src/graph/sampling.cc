#include "graph/sampling.h"

#include <algorithm>
#include <cmath>

namespace ahg {

Subgraph SampleInducedSubgraph(const Graph& graph, double ratio, Rng* rng) {
  AHG_CHECK(ratio > 0.0 && ratio <= 1.0);
  const int n = graph.num_nodes();
  const int k = std::min(
      n, std::max(1, static_cast<int>(std::ceil(ratio * n))));
  Subgraph sub;
  sub.node_map = rng->SampleWithoutReplacement(n, k);
  std::sort(sub.node_map.begin(), sub.node_map.end());
  std::vector<int> inverse(n, -1);
  for (int i = 0; i < k; ++i) inverse[sub.node_map[i]] = i;

  std::vector<Edge> edges;
  for (const Edge& e : graph.edges()) {
    const int s = inverse[e.src];
    const int d = inverse[e.dst];
    if (s >= 0 && d >= 0) edges.push_back({s, d, e.weight});
  }
  Matrix features;
  if (!graph.features().empty()) {
    features = Matrix(k, graph.features().cols());
    for (int i = 0; i < k; ++i) {
      const double* src = graph.features().Row(sub.node_map[i]);
      std::copy(src, src + features.cols(), features.Row(i));
    }
  }
  std::vector<int> labels(k);
  for (int i = 0; i < k; ++i) labels[i] = graph.labels()[sub.node_map[i]];
  sub.graph = Graph::Create(k, std::move(edges), graph.directed(),
                            std::move(features), std::move(labels),
                            graph.num_classes());
  return sub;
}

DataSplit ProjectSplit(const Subgraph& sub, const DataSplit& split,
                       int original_num_nodes) {
  std::vector<int> inverse(original_num_nodes, -1);
  for (size_t i = 0; i < sub.node_map.size(); ++i) {
    inverse[sub.node_map[i]] = static_cast<int>(i);
  }
  auto project = [&](const std::vector<int>& nodes) {
    std::vector<int> out;
    for (int node : nodes) {
      if (inverse[node] >= 0) out.push_back(inverse[node]);
    }
    return out;
  };
  DataSplit projected;
  projected.train = project(split.train);
  projected.val = project(split.val);
  projected.test = project(split.test);
  return projected;
}

}  // namespace ahg
