#include "graph/synthetic.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/logging.h"
#include "util/rng.h"

namespace ahg {
namespace {

// Draws an index from cumulative weights via binary search.
int SampleFromCdf(const std::vector<double>& cdf, Rng* rng) {
  const double u = rng->Uniform() * cdf.back();
  return static_cast<int>(
      std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
}

std::vector<double> BuildCdf(const std::vector<double>& weights) {
  std::vector<double> cdf(weights.size());
  double total = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    total += weights[i];
    cdf[i] = total;
  }
  return cdf;
}

}  // namespace

Graph GenerateSbmGraph(const SyntheticConfig& config) {
  AHG_CHECK_GT(config.num_nodes, config.num_classes);
  Rng rng(config.seed);
  const int n = config.num_nodes;
  const int c = config.num_classes;
  const int communities = std::max(1, config.communities_per_class);

  // Class and community assignment (round-robin then shuffled => balanced).
  std::vector<int> labels(n);
  std::vector<int> community(n);
  for (int i = 0; i < n; ++i) labels[i] = i % c;
  rng.Shuffle(&labels);
  for (int i = 0; i < n; ++i) {
    community[i] = labels[i] * communities +
                   static_cast<int>(rng.UniformInt(communities));
  }

  // Node propensity for degree skew.
  std::vector<double> propensity(n, 1.0);
  if (config.power_law > 0.0) {
    for (int i = 0; i < n; ++i) {
      propensity[i] = std::pow(rng.Uniform(1e-3, 1.0), -config.power_law);
    }
  }

  // Membership lists and per-group sampling CDFs.
  std::vector<std::vector<int>> class_members(c);
  std::vector<std::vector<int>> community_members(
      static_cast<size_t>(c) * communities);
  for (int i = 0; i < n; ++i) {
    class_members[labels[i]].push_back(i);
    community_members[community[i]].push_back(i);
  }
  auto group_cdf = [&](const std::vector<int>& members) {
    std::vector<double> weights(members.size());
    for (size_t i = 0; i < members.size(); ++i) {
      weights[i] = propensity[members[i]];
    }
    return BuildCdf(weights);
  };
  std::vector<std::vector<double>> class_cdf(c);
  for (int k = 0; k < c; ++k) class_cdf[k] = group_cdf(class_members[k]);
  std::vector<std::vector<double>> community_cdf(community_members.size());
  for (size_t k = 0; k < community_members.size(); ++k) {
    if (!community_members[k].empty()) {
      community_cdf[k] = group_cdf(community_members[k]);
    }
  }
  std::vector<double> global_cdf = BuildCdf(propensity);

  const int64_t target_edges =
      static_cast<int64_t>(config.avg_degree * n);
  std::vector<Edge> edges;
  edges.reserve(target_edges);
  std::unordered_set<int64_t> seen;
  int64_t attempts = 0;
  const int64_t max_attempts = target_edges * 30;
  while (static_cast<int64_t>(edges.size()) < target_edges &&
         attempts < max_attempts) {
    ++attempts;
    const int u = SampleFromCdf(global_cdf, &rng);
    int v;
    if (rng.Bernoulli(config.homophily)) {
      if (rng.Bernoulli(config.community_bias)) {
        const auto& members = community_members[community[u]];
        v = members[SampleFromCdf(community_cdf[community[u]], &rng)];
      } else {
        const auto& members = class_members[labels[u]];
        v = members[SampleFromCdf(class_cdf[labels[u]], &rng)];
      }
    } else {
      v = SampleFromCdf(global_cdf, &rng);
      if (labels[v] == labels[u]) continue;  // force a cross-class edge
    }
    if (u == v) continue;
    int64_t key = config.directed
                      ? static_cast<int64_t>(u) * n + v
                      : static_cast<int64_t>(std::min(u, v)) * n +
                            std::max(u, v);
    if (!seen.insert(key).second) continue;
    const double w = config.weighted ? rng.Uniform(0.5, 2.0) : 1.0;
    edges.push_back({u, v, w});
  }

  // Features.
  Matrix features;
  if (config.feature_style != FeatureStyle::kNone) {
    const int d = config.feature_dim;
    Matrix centroids = Matrix::Gaussian(c, d, 1.0, &rng);
    features = Matrix(n, d);
    for (int i = 0; i < n; ++i) {
      double* row = features.Row(i);
      const double* centroid = centroids.Row(labels[i]);
      for (int j = 0; j < d; ++j) {
        row[j] = config.feature_signal * centroid[j] + rng.Normal();
      }
    }
    if (config.feature_style == FeatureStyle::kBinaryBow) {
      for (int64_t i = 0; i < features.size(); ++i) {
        features.data()[i] = features.data()[i] > 1.0 ? 1.0 : 0.0;
      }
    }
  }

  // Label noise: flip after structure/features are fixed, so the flipped
  // fraction is irreducible error for any model.
  if (config.label_noise > 0.0) {
    Rng noise_rng(config.seed ^ 0xf1a6f1a6ULL);
    for (int i = 0; i < n; ++i) {
      if (noise_rng.Bernoulli(config.label_noise)) {
        const int shift = 1 + static_cast<int>(noise_rng.UniformInt(c - 1));
        labels[i] = (labels[i] + shift) % c;
      }
    }
  }

  return Graph::Create(n, std::move(edges), config.directed,
                       std::move(features), std::move(labels), c);
}

SyntheticConfig PresetConfig(const std::string& name) {
  SyntheticConfig cfg;
  cfg.name = name;
  if (name == "A") {
    // Cora-scale: 2708 nodes / 5278 edges / 7 classes, moderate homophily.
    cfg.num_nodes = 2708;
    cfg.num_classes = 7;
    cfg.feature_dim = 64;
    cfg.avg_degree = 5278.0 / 2708.0;
    cfg.homophily = 0.82;
    cfg.communities_per_class = 2;
    cfg.feature_signal = 0.42;
    cfg.label_noise = 0.09;
    cfg.weighted = true;
  } else if (name == "B") {
    // Citeseer-scale: 3327 nodes / 4552 edges / 6 classes, sparser & noisier.
    cfg.num_nodes = 3327;
    cfg.num_classes = 6;
    cfg.feature_dim = 64;
    cfg.avg_degree = 4552.0 / 3327.0;
    cfg.homophily = 0.66;
    cfg.communities_per_class = 2;
    cfg.feature_signal = 0.3;
    cfg.label_noise = 0.16;
    cfg.weighted = true;
  } else if (name == "C") {
    // Dense many-class graph (paper: 10k nodes / 733k edges / 41 classes),
    // scaled down for a single CPU core.
    cfg.num_nodes = 2400;
    cfg.num_classes = 12;
    cfg.feature_dim = 48;
    cfg.avg_degree = 30.0;
    cfg.homophily = 0.62;
    cfg.communities_per_class = 3;
    cfg.community_bias = 0.9;
    cfg.power_law = 0.55;
    cfg.feature_signal = 0.35;
    cfg.label_noise = 0.045;
    cfg.weighted = true;
  } else if (name == "D") {
    // Very dense directed weighted graph (paper: 10k nodes / 5.8M edges),
    // scaled down.
    cfg.num_nodes = 2000;
    cfg.num_classes = 8;
    cfg.feature_dim = 48;
    cfg.avg_degree = 60.0;
    cfg.homophily = 0.55;
    cfg.communities_per_class = 2;
    cfg.power_law = 0.4;
    cfg.feature_signal = 0.5;
    cfg.label_noise = 0.03;
    cfg.directed = true;
    cfg.weighted = true;
  } else if (name == "E") {
    // Featureless sparse graph; structure is the only signal.
    cfg.num_nodes = 1600;
    cfg.num_classes = 3;
    cfg.feature_style = FeatureStyle::kNone;
    cfg.feature_dim = 0;
    cfg.avg_degree = 2.6;
    cfg.homophily = 0.88;
    cfg.communities_per_class = 3;
    cfg.community_bias = 0.8;
    cfg.label_noise = 0.08;
  } else if (name == "cora-syn") {
    cfg.num_nodes = 2708;
    cfg.num_classes = 7;
    cfg.feature_dim = 96;
    cfg.avg_degree = 2.0;
    cfg.homophily = 0.81;
    cfg.communities_per_class = 2;
    cfg.feature_signal = 0.6;
    cfg.label_noise = 0.12;
    cfg.feature_style = FeatureStyle::kBinaryBow;
  } else if (name == "citeseer-syn") {
    cfg.num_nodes = 3327;
    cfg.num_classes = 6;
    cfg.feature_dim = 96;
    cfg.avg_degree = 1.4;
    cfg.homophily = 0.7;
    cfg.communities_per_class = 2;
    cfg.feature_signal = 0.5;
    cfg.label_noise = 0.2;
    cfg.feature_style = FeatureStyle::kBinaryBow;
  } else if (name == "pubmed-syn") {
    // Pubmed (19.7k nodes) scaled to 4k.
    cfg.num_nodes = 4000;
    cfg.num_classes = 3;
    cfg.feature_dim = 64;
    cfg.avg_degree = 2.3;
    cfg.homophily = 0.8;
    cfg.communities_per_class = 3;
    cfg.feature_signal = 0.45;
    cfg.label_noise = 0.14;
  } else if (name == "arxiv-syn") {
    // ogbn-arxiv (169k nodes / 1.17M edges / 40 classes) scaled to 12k.
    cfg.num_nodes = 12000;
    cfg.num_classes = 16;
    cfg.feature_dim = 48;
    cfg.avg_degree = 4.0;
    cfg.homophily = 0.68;
    cfg.communities_per_class = 2;
    cfg.power_law = 0.45;
    cfg.feature_signal = 0.4;
    cfg.label_noise = 0.24;
    cfg.directed = true;
  } else {
    AHG_CHECK_MSG(false, "unknown synthetic preset: " << name);
  }
  return cfg;
}

Graph MakePresetGraph(const std::string& name, uint64_t seed) {
  SyntheticConfig cfg = PresetConfig(name);
  cfg.seed = seed;
  Graph g = GenerateSbmGraph(cfg);
  if (cfg.feature_style == FeatureStyle::kNone) {
    g.SynthesizeStructuralFeatures(/*random_dims=*/64, /*seed=*/seed ^ 0xfeedULL);
  }
  return g;
}

std::vector<std::string> KnownPresets() {
  return {"A",        "B",           "C",          "D",        "E",
          "cora-syn", "citeseer-syn", "pubmed-syn", "arxiv-syn"};
}

}  // namespace ahg
