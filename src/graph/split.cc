#include "graph/split.h"

#include <algorithm>
#include <unordered_set>

namespace ahg {

DataSplit RandomSplit(const Graph& graph, double train_fraction,
                      double val_fraction, Rng* rng) {
  AHG_CHECK(train_fraction > 0.0 && val_fraction >= 0.0 &&
            train_fraction + val_fraction <= 1.0);
  std::vector<int> nodes = graph.LabeledNodes();
  rng->Shuffle(&nodes);
  const int n = static_cast<int>(nodes.size());
  const int n_train = std::max(1, static_cast<int>(n * train_fraction));
  const int n_val = static_cast<int>(n * val_fraction);
  DataSplit split;
  split.train.assign(nodes.begin(), nodes.begin() + n_train);
  split.val.assign(nodes.begin() + n_train,
                   nodes.begin() + std::min(n, n_train + n_val));
  split.test.assign(nodes.begin() + std::min(n, n_train + n_val), nodes.end());
  return split;
}

DataSplit ResplitTrainVal(const DataSplit& base, double val_fraction,
                          Rng* rng) {
  std::vector<int> pool = base.train;
  pool.insert(pool.end(), base.val.begin(), base.val.end());
  rng->Shuffle(&pool);
  const int n = static_cast<int>(pool.size());
  const int n_val = std::max(1, static_cast<int>(n * val_fraction));
  DataSplit split;
  split.val.assign(pool.begin(), pool.begin() + n_val);
  split.train.assign(pool.begin() + n_val, pool.end());
  split.test = base.test;
  return split;
}

DataSplit PerClassSplit(const Graph& graph, int per_class, int val_count,
                        int test_count, Rng* rng) {
  std::vector<int> nodes = graph.LabeledNodes();
  rng->Shuffle(&nodes);
  std::vector<int> taken_per_class(graph.num_classes(), 0);
  DataSplit split;
  std::vector<int> rest;
  for (int node : nodes) {
    const int y = graph.labels()[node];
    if (taken_per_class[y] < per_class) {
      split.train.push_back(node);
      ++taken_per_class[y];
    } else {
      rest.push_back(node);
    }
  }
  const int n_val = std::min<int>(val_count, static_cast<int>(rest.size()));
  split.val.assign(rest.begin(), rest.begin() + n_val);
  const int n_test =
      std::min<int>(test_count, static_cast<int>(rest.size()) - n_val);
  split.test.assign(rest.begin() + n_val, rest.begin() + n_val + n_test);
  return split;
}

namespace {

int64_t PairKey(int u, int v) {
  if (u > v) std::swap(u, v);
  return static_cast<int64_t>(u) * 1000003LL + v;
}

}  // namespace

LinkSplit MakeLinkSplit(const Graph& graph, double val_fraction,
                        double test_fraction, Rng* rng) {
  // Deduplicate undirected edges.
  std::unordered_set<int64_t> seen;
  std::vector<NodePair> pairs;
  for (const Edge& e : graph.edges()) {
    if (e.src == e.dst) continue;
    if (seen.insert(PairKey(e.src, e.dst)).second) {
      pairs.push_back({e.src, e.dst});
    }
  }
  rng->Shuffle(&pairs);
  const int m = static_cast<int>(pairs.size());
  const int n_val = static_cast<int>(m * val_fraction);
  const int n_test = static_cast<int>(m * test_fraction);
  const int n_train = m - n_val - n_test;
  AHG_CHECK_GT(n_train, 0);

  LinkSplit split;
  split.train_pos.assign(pairs.begin(), pairs.begin() + n_train);
  split.val_pos.assign(pairs.begin() + n_train, pairs.begin() + n_train + n_val);
  split.test_pos.assign(pairs.begin() + n_train + n_val, pairs.end());

  // Negative pairs: uniform non-edges, disjoint from all positives.
  auto sample_negatives = [&](int count) {
    std::vector<NodePair> negs;
    while (static_cast<int>(negs.size()) < count) {
      const int u = static_cast<int>(rng->UniformInt(graph.num_nodes()));
      const int v = static_cast<int>(rng->UniformInt(graph.num_nodes()));
      if (u == v) continue;
      if (!seen.insert(PairKey(u, v)).second) continue;  // edge or used neg
      negs.push_back({u, v});
    }
    return negs;
  };
  split.train_neg = sample_negatives(n_train);
  split.val_neg = sample_negatives(n_val);
  split.test_neg = sample_negatives(n_test);

  // Rebuild the training graph without held-out positive edges.
  std::unordered_set<int64_t> held_out;
  for (const auto& p : split.val_pos) held_out.insert(PairKey(p.u, p.v));
  for (const auto& p : split.test_pos) held_out.insert(PairKey(p.u, p.v));
  std::vector<Edge> train_edges;
  for (const Edge& e : graph.edges()) {
    if (e.src != e.dst && held_out.count(PairKey(e.src, e.dst)) > 0) continue;
    train_edges.push_back(e);
  }
  split.train_graph =
      Graph::Create(graph.num_nodes(), std::move(train_edges),
                    graph.directed(), graph.features(), graph.labels(),
                    graph.num_classes());
  return split;
}

}  // namespace ahg
