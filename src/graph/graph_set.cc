#include "graph/graph_set.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/logging.h"
#include "util/rng.h"

namespace ahg {

GraphBatch BatchGraphs(const GraphSet& set, const std::vector<int>& indices) {
  GraphBatch batch;
  batch.num_graphs = static_cast<int>(indices.size());
  int total_nodes = 0;
  for (int idx : indices) {
    AHG_CHECK(idx >= 0 && idx < static_cast<int>(set.graphs.size()));
    total_nodes += set.graphs[idx].num_nodes();
  }
  std::vector<Edge> edges;
  Matrix features(total_nodes, set.feature_dim);
  std::vector<int> labels(total_nodes, -1);
  batch.segment_ids.resize(total_nodes);
  int offset = 0;
  for (size_t b = 0; b < indices.size(); ++b) {
    const Graph& g = set.graphs[indices[b]];
    for (const Edge& e : g.edges()) {
      edges.push_back({e.src + offset, e.dst + offset, e.weight});
    }
    for (int i = 0; i < g.num_nodes(); ++i) {
      batch.segment_ids[offset + i] = static_cast<int>(b);
      const double* src = g.features().Row(i);
      std::copy(src, src + set.feature_dim, features.Row(offset + i));
    }
    offset += g.num_nodes();
    batch.labels.push_back(set.labels[indices[b]]);
  }
  batch.merged = Graph::Create(total_nodes, std::move(edges),
                               /*directed=*/false, std::move(features),
                               std::move(labels), set.num_classes);
  return batch;
}

GraphSet GenerateProteinsLike(const ProteinsLikeConfig& config) {
  Rng rng(config.seed);
  GraphSet set;
  set.num_classes = 2;
  set.feature_dim = config.feature_dim;
  for (int g = 0; g < config.num_graphs; ++g) {
    const int label = g % 2;
    const int n = config.min_nodes +
                  static_cast<int>(rng.UniformInt(
                      config.max_nodes - config.min_nodes + 1));
    std::vector<Edge> edges;
    // Chords and clique motifs can land on an existing pair (the ring, or
    // each other); keep the first occurrence only so the undirected edge
    // list stays duplicate-free.
    std::unordered_set<int64_t> seen;
    auto add_edge = [&](int u, int v) {
      const int64_t key = static_cast<int64_t>(std::min(u, v)) * n +
                          std::max(u, v);
      if (seen.insert(key).second) edges.push_back({u, v, 1.0});
    };
    // Ring backbone keeps every graph connected.
    for (int i = 0; i < n; ++i) add_edge(i, (i + 1) % n);
    if (label == 0) {
      // Sparse: a few random chords.
      const int extra = n / 4;
      for (int e = 0; e < extra; ++e) {
        const int u = static_cast<int>(rng.UniformInt(n));
        const int v = static_cast<int>(rng.UniformInt(n));
        if (u != v) add_edge(u, v);
      }
    } else {
      // Dense motifs: several small cliques wired into the ring.
      const int num_cliques = 2 + static_cast<int>(rng.UniformInt(3));
      for (int q = 0; q < num_cliques; ++q) {
        const int size = 4 + static_cast<int>(rng.UniformInt(3));
        std::vector<int> members = rng.SampleWithoutReplacement(n, size);
        for (size_t i = 0; i < members.size(); ++i) {
          for (size_t j = i + 1; j < members.size(); ++j) {
            add_edge(members[i], members[j]);
          }
        }
      }
    }
    // Features: noisy degree signal + label-agnostic noise dims, so the
    // structure (what GNNs aggregate) carries most of the class signal.
    std::vector<double> degree(n, 0.0);
    for (const Edge& e : edges) {
      degree[e.src] += 1.0;
      degree[e.dst] += 1.0;
    }
    Matrix features(n, config.feature_dim);
    for (int i = 0; i < n; ++i) {
      features(i, 0) = std::log1p(degree[i]) + 0.25 * rng.Normal();
      for (int c = 1; c < config.feature_dim; ++c) {
        features(i, c) = rng.Normal();
      }
    }
    set.graphs.push_back(Graph::Create(n, std::move(edges), false,
                                       std::move(features), {},
                                       set.num_classes));
    set.labels.push_back(label);
  }
  return set;
}

}  // namespace ahg
