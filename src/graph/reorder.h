// Locality-aware node reordering: deterministic, seeded permutations that
// relabel a graph so its CSR neighbor gathers walk memory locally, plus the
// helpers every plane uses to cross the external/internal id boundary.
//
// The permutation invariant (see DESIGN.md "Locality plane"): once a graph
// is reordered, every internal structure — CSR adjacency caches, feature
// rows, hidden-state caches, partition plans, DeltaCsr overlays — lives in
// permuted ("internal") order, and external node ids are translated exactly
// once at each boundary (query ids, split/label ids, mutation ids). External
// ids never leak into internal structures and internal ids never leak out.
//
// Bitwise conformance: the repo's determinism story pins per-element
// reduction order (ascending k for GEMM, CSR stored-entry order for SpMM).
// FP addition is not associative, so a reordered graph can only serve
// bitwise-identical probabilities if every permuted CSR row accumulates the
// *same value sequence* as the unpermuted row. ApplyNodePermutation
// therefore stores each permuted row's entries in ascending EXTERNAL id
// order ("rank order", rank(c) = to_external[c]) with values byte-copied
// from the original matrix — never re-sorted by internal id and never
// renormalized. Every per-row kernel then sees the identical operand
// sequence, so H^(L)_perm[to_internal[r]] is bitwise equal to H^(L)[r].
#ifndef AUTOHENS_GRAPH_REORDER_H_
#define AUTOHENS_GRAPH_REORDER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/split.h"
#include "util/status.h"

namespace ahg {

enum class ReorderStrategy {
  kNone = 0,
  // Reverse Cuthill-McKee: BFS from a minimum-degree seed per component,
  // neighbors visited in ascending (degree, id) order, final order reversed.
  // Minimizes bandwidth — the classic cache-locality ordering for
  // community-structured (SBM-like) graphs.
  kRcm,
  // Degree-sorted hub clustering: high-degree hubs first (degree descending,
  // id ascending), then each remaining node grouped behind its lowest-id hub
  // neighbor. Keeps a hub's neighborhood contiguous, which is what makes the
  // compressed hub-segment CSR layout (SparseMatrix::BuildHubSegments) find
  // runs on hub-heavy graphs.
  kHubCluster,
  // Seeded Fisher-Yates shuffle. Pessimal-locality baseline for benches and
  // adversarial tests; never a win.
  kShuffle,
};

// Lowercase name used by --reorder flags and Serialize ("none", "rcm",
// "hub", "shuffle").
const char* ReorderStrategyName(ReorderStrategy strategy);
StatusOr<ReorderStrategy> ParseReorderStrategy(const std::string& name);

// An explicit bijection between external node ids (what callers speak) and
// internal ids (where rows actually live). Computed single-threaded from
// sorted traversals, so it is byte-identical per (graph, strategy, seed).
struct NodePermutation {
  ReorderStrategy strategy = ReorderStrategy::kNone;
  uint64_t seed = 0;
  std::vector<int> to_internal;  // external id -> internal id
  std::vector<int> to_external;  // internal id -> external id

  int num_nodes() const { return static_cast<int>(to_internal.size()); }

  static NodePermutation Identity(int num_nodes);

  // Composition with a follow-up internal remap (re-reorder at DeltaCsr
  // compaction): result.to_internal[e] = remap[to_internal[e]].
  NodePermutation ComposedWith(const std::vector<int>& remap) const;

  // Extension for appended nodes (dyn AddNode): ids [num_nodes(), n) map to
  // themselves, so a freshly added node's external id equals its internal id
  // until the next re-reorder.
  NodePermutation ExtendedTo(int n) const;

  // Canonical text form ("ahg-node-perm 1"); byte-identical for identical
  // permutations, round-trips through Deserialize.
  std::string Serialize() const;
  static StatusOr<NodePermutation> Deserialize(const std::string& text);
};

// Computes the permutation for `strategy` over the graph's symmetrized
// topology (self loops ignored). kNone and kShuffle ignore topology.
NodePermutation ComputeReorder(const Graph& graph, ReorderStrategy strategy,
                               uint64_t seed);

// Same, over explicit neighbor lists (each list ascending, self loops
// absent). The dynamic plane re-reorders through this overload: it hands in
// the snapshot's topology expressed in EXTERNAL ids, so the new permutation
// depends only on (logical graph, strategy, seed) — not on the incidental
// internal layout it is replacing.
NodePermutation ComputeReorderFromAdjacency(
    const std::vector<std::vector<int>>& neighbors, ReorderStrategy strategy,
    uint64_t seed);

// Permutes a square external-space CSR into internal space: row
// to_internal[e] holds row e's entries with columns mapped through
// to_internal, stored order preserved (= ascending external id), values
// byte-copied. This is the rank-order invariant above.
SparseMatrix PermuteSparse(const SparseMatrix& external,
                           const NodePermutation& perm);

// Relabels `graph` into internal order: adjacency caches permuted row/col
// with stored entry order preserved (bitwise-conformant, see file comment),
// feature/label rows gathered, edges relabeled, and `perm` attached so
// boundary code can translate. `graph` must not already carry a
// permutation; use the dynamic plane's Reordered() for re-reorders.
Graph ApplyNodePermutation(const Graph& graph,
                           std::shared_ptr<const NodePermutation> perm);

// ComputeReorder + ApplyNodePermutation in one step.
Graph ReorderGraph(const Graph& graph, ReorderStrategy strategy,
                   uint64_t seed);

// Boundary helpers. A null `perm` means identity (unreordered graph).
int ToInternalId(const NodePermutation* perm, int external_id);
int ToExternalId(const NodePermutation* perm, int internal_id);
std::vector<int> ToInternalIds(const NodePermutation* perm,
                               const std::vector<int>& external_ids);
// Projects a train/val/test split into internal ids (training boundary).
DataSplit ProjectSplit(const NodePermutation* perm, const DataSplit& split);

}  // namespace ahg

#endif  // AUTOHENS_GRAPH_REORDER_H_
