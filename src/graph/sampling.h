// Subgraph sampling for the proxy dataset of Section III-B: training on an
// induced subgraph of a `ratio` fraction of nodes cuts both training time
// and memory while approximately preserving model ranking.
#ifndef AUTOHENS_GRAPH_SAMPLING_H_
#define AUTOHENS_GRAPH_SAMPLING_H_

#include <vector>

#include "graph/graph.h"
#include "graph/split.h"
#include "util/rng.h"

namespace ahg {

struct Subgraph {
  Graph graph;
  // node_map[i] = index in the original graph of subgraph node i.
  std::vector<int> node_map;
};

// Induced subgraph on a uniform sample of ceil(ratio * n) nodes. Features,
// labels and edge weights are carried over; directedness is preserved.
Subgraph SampleInducedSubgraph(const Graph& graph, double ratio, Rng* rng);

// Projects a split on the original graph onto subgraph indices (nodes not
// present in the subgraph are dropped).
DataSplit ProjectSplit(const Subgraph& sub, const DataSplit& split,
                       int original_num_nodes);

}  // namespace ahg

#endif  // AUTOHENS_GRAPH_SAMPLING_H_
