// Descriptive graph statistics: degree distribution, edge homophily,
// average local clustering, connected components, and CSR-layout locality
// measures. Used by the dataset bench (Table I), for validating the
// synthetic generators, and for observing reordering quality
// (graph/reorder.h) before/after a locality pass.
#ifndef AUTOHENS_GRAPH_STATISTICS_H_
#define AUTOHENS_GRAPH_STATISTICS_H_

#include "graph/graph.h"

namespace ahg {

namespace obs {
class MetricsRegistry;
}

struct GraphStatistics {
  int num_nodes = 0;
  int64_t num_edges = 0;
  double avg_degree = 0.0;  // undirected-view mean degree
  int max_degree = 0;
  // Fraction of edges whose endpoints share a label (labeled endpoints only).
  double edge_homophily = 0.0;
  // Mean local clustering coefficient over nodes with degree >= 2.
  double avg_clustering = 0.0;
  int connected_components = 0;
  // Size of the largest connected component.
  int largest_component = 0;

  // Locality of the kSymNorm CSR layout in the graph's CURRENT (possibly
  // permuted) id order — these are what a reorder pass moves.
  // Max |row - col| over stored entries (matrix bandwidth).
  int64_t bandwidth = 0;
  // Mean |col_i - col_{i-1}| between consecutive STORED entries within a
  // row: the average stride a row's neighbor gather walks the dense operand
  // with. Small gaps = cache-resident gathers.
  double mean_column_gap = 0.0;
  // Fraction of stored entries in the top-1% highest-degree rows (hub mass;
  // what the compressed hub-segment layout targets).
  double hub_mass = 0.0;
};

// Computes all statistics in one pass (clustering is O(sum deg^2); fine at
// this library's graph sizes).
GraphStatistics ComputeStatistics(const Graph& graph);

// Mirrors the locality-relevant fields into `registry` as "graph.*" gauges
// (graph.nodes, graph.edges, graph.bandwidth, graph.mean_column_gap,
// graph.hub_mass), so reordering quality is observable alongside the serve
// metrics. `prefix` is inserted after "graph." when non-empty (e.g.
// "reordered_" -> "graph.reordered_bandwidth") to expose before/after pairs.
void PublishGraphGauges(const GraphStatistics& stats,
                        obs::MetricsRegistry* registry,
                        const std::string& prefix = "");

}  // namespace ahg

#endif  // AUTOHENS_GRAPH_STATISTICS_H_
