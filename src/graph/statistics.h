// Descriptive graph statistics: degree distribution, edge homophily,
// average local clustering, connected components. Used by the dataset
// bench (Table I) and for validating the synthetic generators.
#ifndef AUTOHENS_GRAPH_STATISTICS_H_
#define AUTOHENS_GRAPH_STATISTICS_H_

#include "graph/graph.h"

namespace ahg {

struct GraphStatistics {
  int num_nodes = 0;
  int64_t num_edges = 0;
  double avg_degree = 0.0;  // undirected-view mean degree
  int max_degree = 0;
  // Fraction of edges whose endpoints share a label (labeled endpoints only).
  double edge_homophily = 0.0;
  // Mean local clustering coefficient over nodes with degree >= 2.
  double avg_clustering = 0.0;
  int connected_components = 0;
  // Size of the largest connected component.
  int largest_component = 0;
};

// Computes all statistics in one pass (clustering is O(sum deg^2); fine at
// this library's graph sizes).
GraphStatistics ComputeStatistics(const Graph& graph);

}  // namespace ahg

#endif  // AUTOHENS_GRAPH_STATISTICS_H_
