// Collections of small graphs for graph classification (the PROTEINS
// experiment, Table IX) plus block-diagonal batching so graph-level models
// reuse the node-level Spmm kernels.
#ifndef AUTOHENS_GRAPH_GRAPH_SET_H_
#define AUTOHENS_GRAPH_GRAPH_SET_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace ahg {

struct GraphSet {
  std::vector<Graph> graphs;
  std::vector<int> labels;  // one label per graph
  int num_classes = 0;
  int feature_dim = 0;
};

// A subset of a GraphSet merged into one block-diagonal graph; segment_ids
// maps merged-node index -> position within `indices`.
struct GraphBatch {
  Graph merged;
  std::vector<int> segment_ids;
  std::vector<int> labels;  // labels[i] = label of graph indices[i]
  int num_graphs = 0;
};

GraphBatch BatchGraphs(const GraphSet& set, const std::vector<int>& indices);

struct ProteinsLikeConfig {
  int num_graphs = 360;
  int min_nodes = 12;
  int max_nodes = 48;
  int feature_dim = 8;
  uint64_t seed = 1;
};

// Binary classification set: class 0 graphs are sparse chain/ring-like,
// class 1 graphs carry dense clique-ish motifs; node features mix degree
// signal with noise so both structure and features matter.
GraphSet GenerateProteinsLike(const ProteinsLikeConfig& config);

}  // namespace ahg

#endif  // AUTOHENS_GRAPH_GRAPH_SET_H_
