// Keyed cache of precomputed graph-propagation products.
//
// The expensive part of answering a node-classification query is the
// full-graph SpMM stack (normalized-adjacency powers / APPNP-style
// propagation). Those products depend only on the (graph, model-version)
// pair, never on the queried node, so the serving layer computes them once
// through the frozen forward path and every subsequent query is a dense row
// lookup plus the classifier head (iSpLib, Anik et al. 2024, makes the same
// observation for GNN inference).
//
// Concurrency: the first request for a key computes the entry while later
// requests for the same key block on a shared_future, so a propagation
// product is computed exactly once no matter how many batcher workers race
// on a cold cache. Entries are immutable once published; eviction is LRU
// under a byte budget, and evicted matrices stay alive for any in-flight
// batch still holding the shared_ptr.
//
// Memory accounting: entry sizes use the same bytes the Matrix allocator
// reports to AllocTracker (rows * cols * sizeof(double)), so cache totals
// are directly comparable to AllocTracker::CurrentBytes() in ServeStats.
#ifndef AUTOHENS_SERVE_PROPAGATION_CACHE_H_
#define AUTOHENS_SERVE_PROPAGATION_CACHE_H_

#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "obs/metrics.h"
#include "tensor/matrix.h"

namespace ahg::serve {

// Cache key for a propagation product: "<graph_id>/v<model_version>".
// graph_id identifies a graph *version* (a snapshot generation for dynamic
// graphs, "g0" for a static serving graph), so a snapshot swap can
// invalidate every model's product for a retired topology in one call.
std::string PropagationKey(const std::string& graph_id, int model_version);

// graph_id for generation `gen` of the serving graph ("g<gen>").
std::string GraphId(uint64_t generation);

// Tenant-scoped graph_id: "<scope>:g<gen>", or plain "g<gen>" when `scope`
// is empty. Generations are per-engine counters, so when several tenant
// graphs share one PropagationCache (the fabric's per-shard cache) the
// scope is what keeps their products from colliding: two tenants at the
// same (generation, model-version) pair must resolve different keys.
// `scope` must not contain '/' (the key separator).
std::string GraphId(const std::string& scope, uint64_t generation);

class PropagationCache {
 public:
  // byte_budget <= 0 means unbounded.
  explicit PropagationCache(int64_t byte_budget);

  PropagationCache(const PropagationCache&) = delete;
  PropagationCache& operator=(const PropagationCache&) = delete;

  // Returns the entry for `key`, invoking `compute` on the first request.
  // Concurrent callers with the same key block until that single computation
  // publishes; `compute` runs outside the cache lock. If `compute` throws,
  // the in-flight entry is erased, the exception propagates to the owner
  // and every concurrent waiter, and the next request for the key
  // recomputes from scratch — a failed computation never leaves a broken
  // future resident.
  std::shared_ptr<const Matrix> GetOrCompute(
      const std::string& key, const std::function<Matrix()>& compute);

  // Inserts (or replaces) `key` with an already-computed value — the
  // patch-in-place path: the dynamic-graph refresh computes the new H^(L)
  // incrementally and publishes it here without a compute callback.
  // Replacing a key never disturbs in-flight readers of the old value; they
  // hold shared_ptrs.
  void Put(const std::string& key, std::shared_ptr<const Matrix> value);

  // Drops `key` if present (e.g. a retired model version). In-flight
  // shared_ptr holders keep the matrix alive.
  void Invalidate(const std::string& key);

  // Drops every entry whose key starts with "<graph_id>/" — all model
  // versions computed against a retired graph snapshot. Called by the
  // snapshot swap so a topology change cannot serve stale products.
  void InvalidateGraph(const std::string& graph_id);

  void Clear();

  int64_t byte_budget() const { return byte_budget_; }
  int64_t current_bytes() const;
  int64_t hits() const;
  int64_t misses() const;
  int64_t evictions() const;
  int64_t num_entries() const;

 private:
  struct Entry {
    std::shared_future<std::shared_ptr<const Matrix>> future;
    int64_t bytes = 0;      // 0 until the computation publishes
    uint64_t last_used = 0;  // LRU tick
    bool ready = false;
    // Identifies the GetOrCompute call computing this entry, so a slow
    // owner cannot erase or account an entry that was Invalidate()d and
    // re-inserted by a later call in the meantime.
    const void* owner = nullptr;
  };

  // Evicts ready LRU entries (never `keep`) until the budget holds.
  void EvictLocked(const std::string& keep);

  const int64_t byte_budget_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> entries_;
  uint64_t tick_ = 0;
  int64_t bytes_ = 0;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t evictions_ = 0;
  // Mirrors into the process-wide MetricsRegistry so evictions and the
  // resident entry count are visible in the generic metrics export
  // (cumulative across caches; the gauge reports the last cache mutated).
  obs::Counter* const m_evictions_;
  obs::Gauge* const m_entries_;
};

}  // namespace ahg::serve

#endif  // AUTOHENS_SERVE_PROPAGATION_CACHE_H_
