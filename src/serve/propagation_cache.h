// Keyed cache of precomputed graph-propagation products.
//
// The expensive part of answering a node-classification query is the
// full-graph SpMM stack (normalized-adjacency powers / APPNP-style
// propagation). Those products depend only on the (graph, model-version)
// pair, never on the queried node, so the serving layer computes them once
// through the frozen forward path and every subsequent query is a dense row
// lookup plus the classifier head (iSpLib, Anik et al. 2024, makes the same
// observation for GNN inference).
//
// Concurrency: the first request for a key computes the entry while later
// requests for the same key block on a shared_future, so a propagation
// product is computed exactly once no matter how many batcher workers race
// on a cold cache. Entries are immutable once published; eviction is LRU
// under a byte budget, and evicted matrices stay alive for any in-flight
// batch still holding the shared_ptr.
//
// Memory accounting: entry sizes use the same bytes the Matrix allocator
// reports to AllocTracker (rows * cols * sizeof(double)), so cache totals
// are directly comparable to AllocTracker::CurrentBytes() in ServeStats.
#ifndef AUTOHENS_SERVE_PROPAGATION_CACHE_H_
#define AUTOHENS_SERVE_PROPAGATION_CACHE_H_

#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "tensor/matrix.h"

namespace ahg::serve {

class PropagationCache {
 public:
  // byte_budget <= 0 means unbounded.
  explicit PropagationCache(int64_t byte_budget);

  PropagationCache(const PropagationCache&) = delete;
  PropagationCache& operator=(const PropagationCache&) = delete;

  // Returns the entry for `key`, invoking `compute` on the first request.
  // Concurrent callers with the same key block until that single computation
  // publishes; `compute` runs outside the cache lock. If `compute` throws,
  // the in-flight entry is erased, the exception propagates to the owner
  // and every concurrent waiter, and the next request for the key
  // recomputes from scratch — a failed computation never leaves a broken
  // future resident.
  std::shared_ptr<const Matrix> GetOrCompute(
      const std::string& key, const std::function<Matrix()>& compute);

  // Drops `key` if present (e.g. a retired model version). In-flight
  // shared_ptr holders keep the matrix alive.
  void Invalidate(const std::string& key);

  void Clear();

  int64_t byte_budget() const { return byte_budget_; }
  int64_t current_bytes() const;
  int64_t hits() const;
  int64_t misses() const;
  int64_t evictions() const;
  int64_t num_entries() const;

 private:
  struct Entry {
    std::shared_future<std::shared_ptr<const Matrix>> future;
    int64_t bytes = 0;      // 0 until the computation publishes
    uint64_t last_used = 0;  // LRU tick
    bool ready = false;
    // Identifies the GetOrCompute call computing this entry, so a slow
    // owner cannot erase or account an entry that was Invalidate()d and
    // re-inserted by a later call in the meantime.
    const void* owner = nullptr;
  };

  // Evicts ready LRU entries (never `keep`) until the budget holds.
  void EvictLocked(const std::string& keep);

  const int64_t byte_budget_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> entries_;
  uint64_t tick_ = 0;
  int64_t bytes_ = 0;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t evictions_ = 0;
};

}  // namespace ahg::serve

#endif  // AUTOHENS_SERVE_PROPAGATION_CACHE_H_
