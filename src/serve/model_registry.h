// Versioned model registry backing the serving layer.
//
// On-disk layout (one directory per registry):
//   registry.tsv            manifest: "ahg-registry\t1" header line, then one
//                           "version\tfile\tnum_classes" row per version
//   model_v<N>.ahgm         AHGM SavedModel (io/model_store): zoo weights
//                           followed by the classifier head W (hidden x C)
//                           and bias b (1 x C), exactly the ParameterStore
//                           order TrainedEnsemble members are saved in.
//   tuning_v<N>.ahgt        optional kernel-tuning profile ("ahg-tuning 1"
//                           text format, kernels/autotune.h) snapshotted by
//                           Publish() and merged into the process tuner by
//                           Refresh(), so serving skips first-use kernel
//                           benchmarking. Best-effort on both ends.
//
// Publish() writes a model file and rewrites the manifest atomically
// (tmp + rename), so a live registry never observes a half-written
// manifest. Refresh() re-reads the manifest, loads and validates versions
// it has not seen, and hot-swaps the active version (highest number) under
// a writer lock; Active()/Version() take reader locks and hand out
// shared_ptrs, so in-flight batches keep serving the version they started
// with while new requests pick up the swap.
#ifndef AUTOHENS_SERVE_MODEL_REGISTRY_H_
#define AUTOHENS_SERVE_MODEL_REGISTRY_H_

#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "io/model_store.h"
#include "models/model.h"
#include "util/status.h"

namespace ahg::serve {

// One immutable loaded model version: architecture config, the zoo weights
// and the classifier head (last two tensors).
struct ServableModel {
  int version = 0;
  int num_classes = 0;
  ModelConfig config;
  std::vector<Matrix> params;

  const Matrix& head_weight() const { return params[params.size() - 2]; }
  const Matrix& head_bias() const { return params[params.size() - 1]; }
};

// Structural validation: the parameter list must materialize the configured
// architecture (shape-by-shape against a freshly built model) and end in a
// hidden_dim x num_classes head plus 1 x num_classes bias.
Status ValidateServableModel(const ServableModel& model);

class ModelRegistry {
 public:
  explicit ModelRegistry(std::string dir) : dir_(std::move(dir)) {}

  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  // Re-reads the manifest, loads + validates unseen versions, and swaps the
  // active version. Already-loaded versions are never reloaded (published
  // versions are immutable). Safe to call while serving.
  Status Refresh();

  // Highest-numbered version, or nullptr before the first Refresh().
  std::shared_ptr<const ServableModel> Active() const;

  // Specific version, or nullptr if unknown.
  std::shared_ptr<const ServableModel> Version(int version) const;

  // Loaded version numbers, ascending.
  std::vector<int> Versions() const;

  // 0 when nothing is loaded.
  int active_version() const;

  // The active model must consume this graph's features and emit its label
  // space: in_dim == feature_dim and num_classes == graph.num_classes().
  Status ValidateCompatibility(const Graph& graph) const;

  const std::string& dir() const { return dir_; }

  // Writes model_v<version>.ahgm into `dir` (creating it) and upserts the
  // manifest row. `params` must pass ValidateServableModel.
  static Status Publish(const std::string& dir, int version,
                        const ModelConfig& config,
                        const std::vector<Matrix>& params, int num_classes);

 private:
  const std::string dir_;
  mutable std::shared_mutex mu_;
  std::map<int, std::shared_ptr<const ServableModel>> versions_;
  std::shared_ptr<const ServableModel> active_;
};

}  // namespace ahg::serve

#endif  // AUTOHENS_SERVE_MODEL_REGISTRY_H_
