// Frozen-model inference over one serving graph.
//
// The engine answers node-classification queries against ServableModels
// from a ModelRegistry. Per (graph, model-version) pair it runs the frozen
// forward (GnnModel::ForwardInference: eval mode, tape disabled) exactly
// once and parks the final hidden states H^(L) (num_nodes x hidden_dim) in
// a PropagationCache; a query then gathers the requested rows and applies
// the classifier head — dense lookup + MLP instead of a full-graph SpMM
// stack. Because every kernel on both paths is deterministic across thread
// counts (see README "Threading model") and each output row depends only on
// its own input row, served probabilities are bitwise identical to the
// training-path eval forward regardless of batching or thread count.
#ifndef AUTOHENS_SERVE_INFERENCE_ENGINE_H_
#define AUTOHENS_SERVE_INFERENCE_ENGINE_H_

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "graph/graph.h"
#include "serve/model_registry.h"
#include "serve/node_predictor.h"
#include "serve/propagation_cache.h"
#include "serve/serve_stats.h"
#include "util/status.h"

namespace ahg::serve {

// Classifier head used at training time: softmax(H W + b), applied with the
// same kernels and accumulation order as nn/Linear + RowSoftmax, so a
// gathered batch reproduces the training-path rows bitwise (each output row
// depends only on its own input row). Shared by the static engine and the
// dynamic-graph streaming server.
Matrix ApplyClassifierHead(const Matrix& hidden_rows,
                           const ServableModel& model);

struct EngineOptions {
  // LRU budget for cached propagation products; <= 0 means unbounded.
  // Ignored when `shared_cache` is set.
  int64_t cache_byte_budget = int64_t{256} << 20;
  // Recycle per-request tensor buffers (gathered rows, head outputs, cache
  // recomputes) through the MatrixPool (tensor/pool.h). The pool stays warm
  // across requests — no arena trim on the serving path — so steady-state
  // queries allocate nothing. Bitwise-neutral.
  bool pooling = false;
  // Fused kernels on the frozen forward + head path. Bitwise-neutral.
  bool fusion = false;
  // When set, the engine caches its propagation products here instead of in
  // a private cache — the fabric points every tenant engine of a shard at
  // one cache so the shard has a single LRU byte budget. Must outlive the
  // engine. Engines sharing a cache MUST carry distinct `cache_scope`s:
  // generations are per-engine counters, so without a scope two tenant
  // graphs at the same (generation, model-version) pair collide on the key
  // and one tenant is served the other's hidden states.
  PropagationCache* shared_cache = nullptr;
  // Stable graph/tenant id folded into every cache key (and into
  // InvalidateGraph on swap). Empty keeps the historical "g<gen>" keys for
  // single-tenant engines. Must not contain '/'.
  std::string cache_scope;
};

class InferenceEngine : public NodePredictor {
 public:
  // `graph` must outlive the engine. `stats` is optional; when set, cache
  // hits/misses and the pinned byte count are reported there.
  InferenceEngine(const Graph* graph, const EngineOptions& options,
                  ServeStats* stats = nullptr);

  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  // Class probabilities for `nodes` (rows in input order, num_classes
  // columns). InvalidArgument on an out-of-range node id or a model whose
  // in_dim does not match the graph.
  StatusOr<Matrix> PredictNodes(const ServableModel& model,
                                const std::vector<int>& nodes) override;

  // Full-graph probabilities through the same cached path.
  StatusOr<Matrix> PredictAll(const ServableModel& model);

  // Forces the propagation product for `model` into the cache (cache-warm
  // startup) without computing head outputs.
  Status Warm(const ServableModel& model);

  // Atomically retargets the engine at a new serving graph (a materialized
  // dynamic-graph snapshot) and invalidates every cached product of the old
  // generation. `generation` must be strictly greater than the current one
  // and `graph` must outlive the engine. In-flight batches are not blocked:
  // they finish against the graph + hidden-state shared_ptrs they already
  // resolved (the caller keeps the old graph alive until they drain), while
  // every later query keys the cache by the new generation.
  Status SwapGraph(const Graph* graph, uint64_t generation);

  // Seeds the cache for (current generation, `version`) with hidden states
  // computed elsewhere — the dynamic path installs its incrementally
  // patched H^(L) here so the first post-swap query pays a row gather, not
  // a full forward. `hidden` must be num_nodes x hidden_dim for the current
  // graph.
  Status InstallHiddenStates(int version,
                             std::shared_ptr<const Matrix> hidden);

  // Graph generation used in cache keys (0 until the first SwapGraph).
  uint64_t graph_generation() const;

  // The cache this engine resolves against: the shared one when
  // EngineOptions::shared_cache was set, the private one otherwise.
  const PropagationCache& cache() const { return *cache_; }
  const Graph& graph() const;

  // Comparator/baseline: rebuilds the autodiff model + head and runs the
  // tape-building eval forward over the whole graph (exactly what training
  // validation computes). This is the "naive per-query" cost a query would
  // pay without the serving layer.
  static Matrix TrainingPathProbs(const ServableModel& model,
                                  const Graph& graph);

 private:
  // Cached H^(L) for (graph generation, model.version).
  StatusOr<std::shared_ptr<const Matrix>> HiddenStates(
      const ServableModel& model);

  // Guards the (graph, generation) pair; queries take it shared for the
  // duration of one pointer read, so a swap never blocks behind a batch.
  mutable std::shared_mutex graph_mu_;
  const Graph* graph_;
  uint64_t graph_generation_ = 0;
  PropagationCache own_cache_;
  PropagationCache* const cache_;  // &own_cache_ or options.shared_cache
  const std::string scope_;        // options.cache_scope
  ServeStats* const stats_;
  const bool pooling_;
  const bool fusion_;
};

}  // namespace ahg::serve

#endif  // AUTOHENS_SERVE_INFERENCE_ENGINE_H_
