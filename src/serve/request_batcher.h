// Micro-batching front end of the serving subsystem.
//
// Single-node queries are enqueued with a per-request deadline; the batcher
// packs them into micro-batches (cut when max_batch_size requests are
// pending, when the oldest pending request has waited max_queue_delay_ms,
// or on Flush()) and drains each batch as one task on its worker pool
// (util/thread_pool.h). The delay-based cut runs on a background flusher
// thread so a partial batch under low-QPS traffic is submitted within the
// configured bound instead of sitting in the queue until an explicit
// Flush(). Admission control caps the number of pending requests: beyond
// queue_limit, Enqueue fails fast with ResourceExhausted instead of letting
// the queue grow without bound. A request whose deadline expires while it
// waits is answered with DeadlineExceeded by the flusher (or by Flush)
// without ever being dispatched to the pool; one that expires between cut
// and execution is caught again in ExecuteBatch. Both are counted in
// ServeStats.
//
// Determinism: every answered probability vector is a pure function of the
// cached propagation product and the model head, one output row per query —
// so served values are bitwise identical whatever the pool size or batch
// composition. Latency statistics, of course, are not.
#ifndef AUTOHENS_SERVE_REQUEST_BATCHER_H_
#define AUTOHENS_SERVE_REQUEST_BATCHER_H_

#include <condition_variable>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/model_registry.h"
#include "serve/node_predictor.h"
#include "serve/serve_stats.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace ahg::serve {

struct BatcherOptions {
  int max_batch_size = 32;      // micro-batch cut threshold
  int queue_limit = 1024;       // pending requests beyond this are rejected
  double deadline_ms = 100.0;   // default per-request deadline; <= 0 = none
  int num_threads = 1;          // workers draining batches
  // A partial batch is submitted once its oldest request has waited this
  // long, so low-QPS traffic is answered within the bound without Flush().
  // <= 0 disables the background flusher (cut on max_batch_size only).
  double max_queue_delay_ms = 10.0;
  // When set, each batch resolves its model through this callback instead
  // of registry->Active(). The fabric pins every shard's batcher to one
  // fleet-wide version this way, so a rollout is a single atomic flip
  // rather than N independent Active() reads. Called once per batch; must
  // be thread-safe; a nullptr return fails the batch's requests NotFound.
  std::function<std::shared_ptr<const ServableModel>()> model_resolver;
};

// Outcome of one query. `probs` has num_classes entries when status is OK.
struct QueryResult {
  Status status;
  std::vector<double> probs;
  double latency_ms = 0.0;   // enqueue -> answer
  int served_version = 0;    // model version that produced `probs` (OK only)
};

class RequestBatcher {
 public:
  // `engine`, `registry` and `stats` must outlive the batcher. The model is
  // resolved per batch via registry->Active(), so a Refresh() hot-swap takes
  // effect at the next batch boundary. Any NodePredictor works — replicated
  // InferenceEngine or partitioned backend alike.
  RequestBatcher(NodePredictor* engine, const ModelRegistry* registry,
                 const BatcherOptions& options, ServeStats* stats);

  // Drains in-flight batches before destruction.
  ~RequestBatcher();

  RequestBatcher(const RequestBatcher&) = delete;
  RequestBatcher& operator=(const RequestBatcher&) = delete;

  // Queues a single-node query; `deadline_ms` overrides the default when
  // > 0. The future is fulfilled when the request's micro-batch executes
  // (or immediately, with ResourceExhausted, when the queue is full).
  std::future<QueryResult> Enqueue(int node_id, double deadline_ms = 0.0);

  // Submits any pending partial batch.
  void Flush();

  // Flush + wait until every submitted batch has executed.
  void Drain();

  // Requests admitted but not yet answered (pending + cut-but-not-executed).
  // The fabric router gates admission on this before touching the queue.
  int queue_depth() const;

 private:
  struct Pending {
    int node_id = 0;
    double deadline_ms = 0.0;  // <= 0: no deadline
    Stopwatch enqueued;
    std::promise<QueryResult> promise;
  };

  // Cuts up to max_batch_size pending requests into a pool task. Caller
  // must hold mu_.
  void SubmitBatchLocked();

  void ExecuteBatch(std::vector<Pending> batch);

  // Answers every pending request whose deadline has already passed with
  // DeadlineExceeded and removes it from the queue, so expired work is
  // never dispatched to the pool. Caller must hold mu_. Returns the
  // earliest remaining deadline expiry in ms-from-now (infinity when no
  // pending request carries a deadline).
  double ExpirePendingLocked();

  // Background thread: submits the pending partial batch once its oldest
  // request has waited options_.max_queue_delay_ms, and fails requests in
  // place the moment their deadline expires (it wakes at whichever of the
  // two bounds comes first — see the deadline-race note in ExecuteBatch).
  void FlusherLoop();

  NodePredictor* const engine_;
  const ModelRegistry* const registry_;
  const BatcherOptions options_;
  ServeStats* const stats_;
  ThreadPool pool_;
  mutable std::mutex mu_;
  std::condition_variable flusher_cv_;
  bool stop_flusher_ = false;
  std::vector<Pending> pending_;
  int in_queue_ = 0;  // pending + cut-but-not-yet-executed requests
  std::thread flusher_;
};

}  // namespace ahg::serve

#endif  // AUTOHENS_SERVE_REQUEST_BATCHER_H_
