// Minimal surface the serving front end needs from a backend: class
// probabilities for a list of node ids under one model version.
//
// InferenceEngine (whole-graph replica) and partition::PartitionedEngine
// (K-part plan with halo exchange) both implement it, so RequestBatcher
// and the fabric run unchanged over either backend. Implementations must
// be thread-safe for concurrent PredictNodes calls and must produce
// bitwise-identical rows for a given (model version, node id) regardless
// of batch composition or thread count — the conformance property every
// serving test memcmps.
#ifndef AUTOHENS_SERVE_NODE_PREDICTOR_H_
#define AUTOHENS_SERVE_NODE_PREDICTOR_H_

#include <vector>

#include "serve/model_registry.h"
#include "tensor/matrix.h"
#include "util/status.h"

namespace ahg::serve {

class NodePredictor {
 public:
  virtual ~NodePredictor() = default;

  // Class probabilities for `nodes` (rows in input order, num_classes
  // columns). InvalidArgument on an out-of-range node id or a model that
  // does not match the backing graph.
  virtual StatusOr<Matrix> PredictNodes(const ServableModel& model,
                                        const std::vector<int>& nodes) = 0;
};

}  // namespace ahg::serve

#endif  // AUTOHENS_SERVE_NODE_PREDICTOR_H_
