#include "serve/model_registry.h"

#include <sys/stat.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <utility>

#include "kernels/autotune.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace ahg::serve {
namespace {

constexpr char kManifestName[] = "registry.tsv";
constexpr char kManifestMagic[] = "ahg-registry";
constexpr int kManifestVersion = 1;

std::string ManifestPath(const std::string& dir) {
  return dir + "/" + kManifestName;
}

std::string ModelFileName(int version) {
  return StrFormat("model_v%d.ahgm", version);
}

// Kernel-tuning profile published next to the model ("ahg-tuning 1" text
// format, kernels/autotune.h). Best-effort on both ends: absence or
// corruption never blocks publish or refresh — serving just re-tunes on
// first use.
std::string TuningFileName(int version) {
  return StrFormat("tuning_v%d.ahgt", version);
}

Status EnsureDir(const std::string& dir) {
  if (mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IOError("cannot create " + dir + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

struct ManifestRow {
  int version = 0;
  std::string file;
  int num_classes = 0;
};

// Parses `dir`/registry.tsv. NotFound when the manifest does not exist.
StatusOr<std::vector<ManifestRow>> ReadManifest(const std::string& dir) {
  std::ifstream in(ManifestPath(dir));
  if (!in.is_open()) {
    return Status::NotFound("no " + std::string(kManifestName) + " in " + dir);
  }
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("empty registry manifest in " + dir);
  }
  {
    const auto header = StrSplit(StrTrim(line), '\t');
    if (header.size() != 2 || header[0] != kManifestMagic ||
        std::atoi(header[1].c_str()) != kManifestVersion) {
      return Status::InvalidArgument("bad registry manifest header in " + dir);
    }
  }
  std::vector<ManifestRow> rows;
  while (std::getline(in, line)) {
    if (StrTrim(line).empty()) continue;
    const auto parts = StrSplit(StrTrim(line), '\t');
    if (parts.size() != 3) {
      return Status::InvalidArgument("malformed registry row: " + line);
    }
    ManifestRow row;
    row.version = std::atoi(parts[0].c_str());
    row.file = parts[1];
    row.num_classes = std::atoi(parts[2].c_str());
    if (row.version <= 0 || row.file.empty() || row.num_classes <= 0) {
      return Status::InvalidArgument("invalid registry row: " + line);
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

Status WriteManifest(const std::string& dir,
                     const std::vector<ManifestRow>& rows) {
  const std::string tmp = ManifestPath(dir) + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out.is_open()) return Status::IOError("cannot write " + tmp);
    out << kManifestMagic << "\t" << kManifestVersion << "\n";
    for (const ManifestRow& row : rows) {
      out << row.version << "\t" << row.file << "\t" << row.num_classes
          << "\n";
    }
    if (!out.good()) return Status::IOError("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), ManifestPath(dir).c_str()) != 0) {
    return Status::IOError("cannot commit manifest in " + dir + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace

Status ValidateServableModel(const ServableModel& model) {
  if (model.version <= 0) {
    return Status::InvalidArgument("model version must be positive");
  }
  if (model.num_classes <= 0) {
    return Status::InvalidArgument("num_classes must be positive");
  }
  if (model.config.in_dim <= 0) {
    return Status::InvalidArgument("model config lacks in_dim");
  }
  if (model.config.hidden_dim <= 0 || model.config.num_layers <= 0 ||
      model.config.heads <= 0 || model.config.poly_order <= 0) {
    return Status::InvalidArgument("model config has degenerate dimensions");
  }
  if (static_cast<int>(model.config.family) < 0 ||
      static_cast<int>(model.config.family) >
          static_cast<int>(ModelFamily::kAgnn)) {
    return Status::InvalidArgument("unknown model family in config");
  }
  if (model.params.size() < 3) {
    return Status::InvalidArgument(
        "servable model needs zoo weights plus a 2-tensor head");
  }
  // The architecture's own parameter shapes, from a throwaway build.
  std::unique_ptr<GnnModel> reference = BuildModel(model.config);
  const std::vector<Var>& expected = reference->params()->params();
  if (model.params.size() != expected.size() + 2) {
    return Status::InvalidArgument(StrFormat(
        "parameter count mismatch: file has %d tensors, %s-%dL needs %d + 2",
        static_cast<int>(model.params.size()),
        ModelFamilyName(model.config.family), model.config.num_layers,
        static_cast<int>(expected.size())));
  }
  for (size_t i = 0; i < expected.size(); ++i) {
    if (model.params[i].rows() != expected[i]->value.rows() ||
        model.params[i].cols() != expected[i]->value.cols()) {
      return Status::InvalidArgument(
          StrFormat("tensor %d shape mismatch: %dx%d vs expected %dx%d",
                    static_cast<int>(i), model.params[i].rows(),
                    model.params[i].cols(), expected[i]->value.rows(),
                    expected[i]->value.cols()));
    }
  }
  const Matrix& w = model.head_weight();
  const Matrix& b = model.head_bias();
  if (w.rows() != model.config.hidden_dim || w.cols() != model.num_classes) {
    return Status::InvalidArgument(
        StrFormat("head weight is %dx%d, expected %dx%d", w.rows(), w.cols(),
                  model.config.hidden_dim, model.num_classes));
  }
  if (b.rows() != 1 || b.cols() != model.num_classes) {
    return Status::InvalidArgument(
        StrFormat("head bias is %dx%d, expected 1x%d", b.rows(), b.cols(),
                  model.num_classes));
  }
  return Status::OK();
}

Status ModelRegistry::Refresh() {
  AHG_TRACE_SPAN("serve/registry_swap");
  obs::MetricsRegistry::Global()
      .GetCounter("serve.registry_refreshes")
      ->Increment();
  auto manifest = ReadManifest(dir_);
  if (!manifest.ok()) return manifest.status();
  // Load unseen versions outside the lock; swap in one writer section.
  std::map<int, std::shared_ptr<const ServableModel>> incoming;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    for (const ManifestRow& row : manifest.value()) {
      if (versions_.count(row.version) > 0) continue;
      incoming.emplace(row.version, nullptr);
    }
  }
  for (auto& [version, slot] : incoming) {
    const ManifestRow* row = nullptr;
    for (const ManifestRow& r : manifest.value()) {
      if (r.version == version) row = &r;
    }
    auto loaded = LoadModel(dir_ + "/" + row->file);
    if (!loaded.ok()) return loaded.status();
    // Merge the version's kernel-tuning profile (if published) into the
    // process tuner so serving skips first-use benchmarking. Missing files
    // are the common case for registries written by older publishers.
    kernels::KernelTuner::Global().LoadFile(dir_ + "/" +
                                            TuningFileName(version));
    auto model = std::make_shared<ServableModel>();
    model->version = version;
    model->num_classes = row->num_classes;
    model->config = loaded.value().config;
    model->params = std::move(loaded.value().params);
    Status valid = ValidateServableModel(*model);
    if (!valid.ok()) {
      return Status::InvalidArgument(StrFormat(
          "registry version %d rejected: %s", version,
          valid.message().c_str()));
    }
    slot = std::move(model);
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  for (auto& [version, model] : incoming) {
    versions_.emplace(version, std::move(model));
  }
  if (!versions_.empty()) active_ = versions_.rbegin()->second;
  return Status::OK();
}

std::shared_ptr<const ServableModel> ModelRegistry::Active() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return active_;
}

std::shared_ptr<const ServableModel> ModelRegistry::Version(
    int version) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = versions_.find(version);
  return it == versions_.end() ? nullptr : it->second;
}

std::vector<int> ModelRegistry::Versions() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<int> out;
  out.reserve(versions_.size());
  for (const auto& [version, model] : versions_) out.push_back(version);
  return out;
}

int ModelRegistry::active_version() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return active_ ? active_->version : 0;
}

Status ModelRegistry::ValidateCompatibility(const Graph& graph) const {
  std::shared_ptr<const ServableModel> model = Active();
  if (model == nullptr) {
    return Status::NotFound("registry has no active model");
  }
  if (model->config.in_dim != graph.feature_dim()) {
    return Status::InvalidArgument(
        StrFormat("model consumes %d-dim features, graph has %d-dim",
                  model->config.in_dim, graph.feature_dim()));
  }
  if (model->num_classes != graph.num_classes()) {
    return Status::InvalidArgument(
        StrFormat("model emits %d classes, graph has %d", model->num_classes,
                  graph.num_classes()));
  }
  return Status::OK();
}

Status ModelRegistry::Publish(const std::string& dir, int version,
                              const ModelConfig& config,
                              const std::vector<Matrix>& params,
                              int num_classes) {
  {
    ServableModel candidate;
    candidate.version = version;
    candidate.num_classes = num_classes;
    candidate.config = config;
    candidate.params = params;
    Status valid = ValidateServableModel(candidate);
    if (!valid.ok()) return valid;
  }
  Status s = EnsureDir(dir);
  if (!s.ok()) return s;
  const std::string file = ModelFileName(version);
  s = SaveModel(dir + "/" + file, config, params);
  if (!s.ok()) return s;
  // Snapshot whatever kernel tuning the publishing process accumulated
  // (training on this model's shapes warms exactly the entries serving
  // needs). Empty tuners publish nothing; write failures only warn.
  kernels::KernelTuner& tuner = kernels::KernelTuner::Global();
  if (tuner.entries() > 0) {
    const std::string tuning_path = dir + "/" + TuningFileName(version);
    if (!tuner.SaveFile(tuning_path)) {
      AHG_LOG(Warning) << "could not write tuning profile " << tuning_path;
    }
  }
  std::vector<ManifestRow> rows;
  auto existing = ReadManifest(dir);
  if (existing.ok()) {
    rows = std::move(existing.value());
  } else if (existing.status().code() != Status::Code::kNotFound) {
    return existing.status();
  }
  bool replaced = false;
  for (ManifestRow& row : rows) {
    if (row.version == version) {
      row.file = file;
      row.num_classes = num_classes;
      replaced = true;
    }
  }
  if (!replaced) rows.push_back({version, file, num_classes});
  return WriteManifest(dir, rows);
}

}  // namespace ahg::serve
