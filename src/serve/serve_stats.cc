#include "serve/serve_stats.h"

#include <algorithm>
#include <sstream>

#include "util/string_util.h"

namespace ahg::serve {
namespace {

// Bucket index for a batch of `size` requests: 1, 2, 3-4, 5-8, ..., 129+.
int BucketIndex(int size) {
  int bucket = 0;
  int upper = 1;
  while (size > upper && bucket < kBatchHistogramBuckets - 1) {
    upper *= 2;
    ++bucket;
  }
  return bucket;
}

// Percentile over an already-sorted sample (nearest-rank).
double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const size_t rank = static_cast<size_t>(p * (sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

// Upper edges for the batch-size metrics histogram, matching the power-of-
// two snapshot buckets (1, 2, 4, ..., 128; larger batches overflow).
std::vector<double> BatchSizeBounds() {
  std::vector<double> bounds;
  for (int b = 0; b < kBatchHistogramBuckets - 1; ++b) {
    bounds.push_back(static_cast<double>(1 << b));
  }
  return bounds;
}

}  // namespace

ServeStats::ServeStats()
    : reservoir_rng_(0x5e1ec7edULL),
      m_completed_(obs::MetricsRegistry::Global().GetCounter(
          "serve.completed")),
      m_deadline_violations_(obs::MetricsRegistry::Global().GetCounter(
          "serve.deadline_violations")),
      m_rejected_(obs::MetricsRegistry::Global().GetCounter(
          "serve.rejected")),
      m_failed_(obs::MetricsRegistry::Global().GetCounter("serve.failed")),
      m_cache_hits_(obs::MetricsRegistry::Global().GetCounter(
          "serve.cache_hits")),
      m_cache_misses_(obs::MetricsRegistry::Global().GetCounter(
          "serve.cache_misses")),
      m_batches_(obs::MetricsRegistry::Global().GetCounter("serve.batches")),
      m_cache_bytes_(obs::MetricsRegistry::Global().GetGauge(
          "serve.cache_bytes")),
      m_latency_ms_(obs::MetricsRegistry::Global().GetHistogram(
          "serve.latency_ms", obs::DefaultLatencyBucketsMs())),
      m_batch_size_(obs::MetricsRegistry::Global().GetHistogram(
          "serve.batch_size", BatchSizeBounds())) {
  latency_reservoir_.reserve(kLatencyReservoirSize);
}

std::string ServeStatsSnapshot::BucketLabel(int bucket) {
  if (bucket == 0) return "1";
  if (bucket == 1) return "2";
  const int upper = 1 << bucket;
  if (bucket == kBatchHistogramBuckets - 1) {
    return StrFormat("%d+", upper / 2 + 1);
  }
  return StrFormat("%d-%d", upper / 2 + 1, upper);
}

void ServeStats::RecordCompleted(double latency_ms) {
  m_completed_->Increment();
  m_latency_ms_->Observe(latency_ms);
  std::lock_guard<std::mutex> lock(mu_);
  ++completed_;
  max_latency_ms_ = std::max(max_latency_ms_, latency_ms);
  // Vitter's algorithm R: the i-th observation (1-based) replaces a random
  // slot with probability capacity / i once the reservoir is full, keeping
  // a uniform sample of everything seen since Reset().
  if (static_cast<int>(latency_reservoir_.size()) < kLatencyReservoirSize) {
    latency_reservoir_.push_back(latency_ms);
  } else {
    const int64_t slot = reservoir_rng_.UniformInt(completed_);
    if (slot < kLatencyReservoirSize) {
      latency_reservoir_[static_cast<size_t>(slot)] = latency_ms;
    }
  }
}

void ServeStats::RecordDeadlineViolation() {
  m_deadline_violations_->Increment();
  std::lock_guard<std::mutex> lock(mu_);
  ++deadline_violations_;
}

void ServeStats::RecordRejected() {
  m_rejected_->Increment();
  std::lock_guard<std::mutex> lock(mu_);
  ++rejected_;
}

void ServeStats::RecordFailed() {
  m_failed_->Increment();
  std::lock_guard<std::mutex> lock(mu_);
  ++failed_;
}

void ServeStats::RecordCacheHit() {
  m_cache_hits_->Increment();
  std::lock_guard<std::mutex> lock(mu_);
  ++cache_hits_;
}

void ServeStats::RecordCacheMiss() {
  m_cache_misses_->Increment();
  std::lock_guard<std::mutex> lock(mu_);
  ++cache_misses_;
}

void ServeStats::RecordBatch(int batch_size) {
  m_batches_->Increment();
  m_batch_size_->Observe(static_cast<double>(batch_size));
  std::lock_guard<std::mutex> lock(mu_);
  ++batches_;
  ++batch_size_histogram_[BucketIndex(batch_size)];
}

void ServeStats::SetCacheBytes(int64_t bytes) {
  m_cache_bytes_->Set(static_cast<double>(bytes));
  std::lock_guard<std::mutex> lock(mu_);
  cache_bytes_ = bytes;
}

ServeStatsSnapshot ServeStats::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServeStatsSnapshot snap;
  snap.completed = completed_;
  snap.deadline_violations = deadline_violations_;
  snap.rejected = rejected_;
  snap.failed = failed_;
  snap.cache_hits = cache_hits_;
  snap.cache_misses = cache_misses_;
  snap.cache_bytes = cache_bytes_;
  snap.batches = batches_;
  snap.latency_samples = static_cast<int64_t>(latency_reservoir_.size());
  snap.elapsed_seconds = clock_.ElapsedSeconds();
  if (snap.elapsed_seconds > 0.0) {
    snap.qps = static_cast<double>(completed_) / snap.elapsed_seconds;
  }
  // At most kLatencyReservoirSize samples: O(reservoir) regardless of how
  // many requests completed.
  std::vector<double> sorted = latency_reservoir_;
  std::sort(sorted.begin(), sorted.end());
  snap.p50_latency_ms = Percentile(sorted, 0.50);
  snap.p99_latency_ms = Percentile(sorted, 0.99);
  snap.max_latency_ms = max_latency_ms_;
  for (int b = 0; b < kBatchHistogramBuckets; ++b) {
    snap.batch_size_histogram[b] = batch_size_histogram_[b];
  }
  return snap;
}

void ServeStats::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  completed_ = deadline_violations_ = rejected_ = failed_ = 0;
  cache_hits_ = cache_misses_ = cache_bytes_ = batches_ = 0;
  max_latency_ms_ = 0.0;
  latency_reservoir_.clear();
  for (int64_t& count : batch_size_histogram_) count = 0;
  clock_.Reset();
}

std::string FormatStatsTable(const ServeStatsSnapshot& snap) {
  std::ostringstream out;
  auto row = [&out](const std::string& field, const std::string& value) {
    out << "  " << field;
    for (size_t i = field.size(); i < 22; ++i) out << ' ';
    out << value << "\n";
  };
  out << "ServeStats\n";
  row("requests", StrFormat("%lld", static_cast<long long>(snap.total())));
  row("completed", StrFormat("%lld", static_cast<long long>(snap.completed)));
  row("deadline_violations",
      StrFormat("%lld", static_cast<long long>(snap.deadline_violations)));
  row("rejected", StrFormat("%lld", static_cast<long long>(snap.rejected)));
  row("failed", StrFormat("%lld", static_cast<long long>(snap.failed)));
  row("qps", FormatFloat(snap.qps, 1));
  row("p50_latency_ms", FormatFloat(snap.p50_latency_ms, 3));
  row("p99_latency_ms", FormatFloat(snap.p99_latency_ms, 3));
  row("max_latency_ms", FormatFloat(snap.max_latency_ms, 3));
  row("latency_samples",
      StrFormat("%lld", static_cast<long long>(snap.latency_samples)));
  row("cache_hits", StrFormat("%lld", static_cast<long long>(snap.cache_hits)));
  row("cache_misses",
      StrFormat("%lld", static_cast<long long>(snap.cache_misses)));
  row("cache_bytes", StrFormat("%lld", static_cast<long long>(snap.cache_bytes)));
  row("batches", StrFormat("%lld", static_cast<long long>(snap.batches)));
  out << "  batch-size histogram\n";
  for (int b = 0; b < kBatchHistogramBuckets; ++b) {
    if (snap.batch_size_histogram[b] == 0) continue;
    row("  " + ServeStatsSnapshot::BucketLabel(b),
        StrFormat("%lld", static_cast<long long>(snap.batch_size_histogram[b])));
  }
  return out.str();
}

}  // namespace ahg::serve
