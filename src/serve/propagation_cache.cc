#include "serve/propagation_cache.h"

#include <utility>
#include <vector>

#include "obs/trace.h"

namespace ahg::serve {

PropagationCache::PropagationCache(int64_t byte_budget)
    : byte_budget_(byte_budget) {}

std::shared_ptr<const Matrix> PropagationCache::GetOrCompute(
    const std::string& key, const std::function<Matrix()>& compute) {
  std::shared_future<std::shared_ptr<const Matrix>> future;
  std::promise<std::shared_ptr<const Matrix>> promise;
  bool owner = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++tick_;
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++hits_;
      it->second.last_used = tick_;
      future = it->second.future;
    } else {
      ++misses_;
      owner = true;
      Entry entry;
      entry.future = promise.get_future().share();
      entry.last_used = tick_;
      entry.owner = &promise;
      future = entry.future;
      entries_.emplace(key, std::move(entry));
    }
  }
  if (owner) {
    std::shared_ptr<const Matrix> value;
    try {
      AHG_TRACE_SPAN("serve/cache_compute");
      value = std::make_shared<const Matrix>(compute());
    } catch (...) {
      // Unfulfilled promises poison every waiter: erase the in-flight
      // entry so later requests recompute, hand the exception to the
      // waiters blocked on the future, and rethrow to this caller.
      {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = entries_.find(key);
        if (it != entries_.end() && it->second.owner == &promise) {
          entries_.erase(it);
        }
      }
      promise.set_exception(std::current_exception());
      throw;
    }
    const int64_t bytes =
        value->size() * static_cast<int64_t>(sizeof(double));
    promise.set_value(value);
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    // The entry may have been Invalidate()d/Clear()ed (and possibly
    // re-inserted by a newer call) while computing; only account for the
    // entry this call owns.
    if (it != entries_.end() && it->second.owner == &promise &&
        !it->second.ready) {
      it->second.bytes = bytes;
      it->second.ready = true;
      bytes_ += bytes;
      EvictLocked(key);
    }
    return value;
  }
  return future.get();
}

void PropagationCache::EvictLocked(const std::string& keep) {
  if (byte_budget_ <= 0) return;
  while (bytes_ > byte_budget_) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (!it->second.ready || it->first == keep) continue;
      if (victim == entries_.end() ||
          it->second.last_used < victim->second.last_used) {
        victim = it;
      }
    }
    if (victim == entries_.end()) return;  // nothing evictable
    bytes_ -= victim->second.bytes;
    ++evictions_;
    entries_.erase(victim);
  }
}

void PropagationCache::Invalidate(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  if (it->second.ready) bytes_ -= it->second.bytes;
  entries_.erase(it);
}

void PropagationCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  bytes_ = 0;
}

int64_t PropagationCache::current_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

int64_t PropagationCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

int64_t PropagationCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

int64_t PropagationCache::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

int64_t PropagationCache::num_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(entries_.size());
}

}  // namespace ahg::serve
