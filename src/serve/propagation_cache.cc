#include "serve/propagation_cache.h"

#include <utility>
#include <vector>

#include "obs/trace.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace ahg::serve {

std::string PropagationKey(const std::string& graph_id, int model_version) {
  return graph_id + "/v" + std::to_string(model_version);
}

std::string GraphId(uint64_t generation) {
  return StrFormat("g%lld", static_cast<long long>(generation));
}

std::string GraphId(const std::string& scope, uint64_t generation) {
  AHG_CHECK(scope.find('/') == std::string::npos);
  if (scope.empty()) return GraphId(generation);
  return scope + ":" + GraphId(generation);
}

PropagationCache::PropagationCache(int64_t byte_budget)
    : byte_budget_(byte_budget),
      m_evictions_(
          obs::MetricsRegistry::Global().GetCounter("serve.cache_evictions")),
      m_entries_(
          obs::MetricsRegistry::Global().GetGauge("serve.cache_entries")) {}

std::shared_ptr<const Matrix> PropagationCache::GetOrCompute(
    const std::string& key, const std::function<Matrix()>& compute) {
  std::shared_future<std::shared_ptr<const Matrix>> future;
  std::promise<std::shared_ptr<const Matrix>> promise;
  bool owner = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++tick_;
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++hits_;
      it->second.last_used = tick_;
      future = it->second.future;
    } else {
      ++misses_;
      owner = true;
      Entry entry;
      entry.future = promise.get_future().share();
      entry.last_used = tick_;
      entry.owner = &promise;
      future = entry.future;
      entries_.emplace(key, std::move(entry));
      m_entries_->Set(static_cast<double>(entries_.size()));
    }
  }
  if (owner) {
    std::shared_ptr<const Matrix> value;
    try {
      AHG_TRACE_SPAN("serve/cache_compute");
      value = std::make_shared<const Matrix>(compute());
    } catch (...) {
      // Unfulfilled promises poison every waiter: erase the in-flight
      // entry so later requests recompute, hand the exception to the
      // waiters blocked on the future, and rethrow to this caller.
      {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = entries_.find(key);
        if (it != entries_.end() && it->second.owner == &promise) {
          entries_.erase(it);
          m_entries_->Set(static_cast<double>(entries_.size()));
        }
      }
      promise.set_exception(std::current_exception());
      throw;
    }
    const int64_t bytes =
        value->size() * static_cast<int64_t>(sizeof(double));
    promise.set_value(value);
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    // The entry may have been Invalidate()d/Clear()ed (and possibly
    // re-inserted by a newer call) while computing; only account for the
    // entry this call owns.
    if (it != entries_.end() && it->second.owner == &promise &&
        !it->second.ready) {
      it->second.bytes = bytes;
      it->second.ready = true;
      bytes_ += bytes;
      EvictLocked(key);
    }
    return value;
  }
  return future.get();
}

void PropagationCache::EvictLocked(const std::string& keep) {
  if (byte_budget_ <= 0) return;
  while (bytes_ > byte_budget_) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (!it->second.ready || it->first == keep) continue;
      if (victim == entries_.end() ||
          it->second.last_used < victim->second.last_used) {
        victim = it;
      }
    }
    if (victim == entries_.end()) return;  // nothing evictable
    bytes_ -= victim->second.bytes;
    ++evictions_;
    m_evictions_->Increment();
    entries_.erase(victim);
    m_entries_->Set(static_cast<double>(entries_.size()));
  }
}

void PropagationCache::Put(const std::string& key,
                           std::shared_ptr<const Matrix> value) {
  AHG_CHECK(value != nullptr);
  const int64_t bytes = value->size() * static_cast<int64_t>(sizeof(double));
  std::promise<std::shared_ptr<const Matrix>> promise;
  promise.set_value(std::move(value));
  std::lock_guard<std::mutex> lock(mu_);
  ++tick_;
  Entry& entry = entries_[key];
  if (entry.ready) bytes_ -= entry.bytes;
  entry.future = promise.get_future().share();
  entry.bytes = bytes;
  entry.last_used = tick_;
  entry.ready = true;
  // A concurrent GetOrCompute owner for this key may still be computing; it
  // recognizes the replacement through the owner token and discards its
  // result without double-accounting.
  entry.owner = nullptr;
  bytes_ += bytes;
  m_entries_->Set(static_cast<double>(entries_.size()));
  EvictLocked(key);
}

void PropagationCache::Invalidate(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  if (it->second.ready) bytes_ -= it->second.bytes;
  entries_.erase(it);
  m_entries_->Set(static_cast<double>(entries_.size()));
}

void PropagationCache::InvalidateGraph(const std::string& graph_id) {
  const std::string prefix = graph_id + "/";
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->first.compare(0, prefix.size(), prefix) == 0) {
      if (it->second.ready) bytes_ -= it->second.bytes;
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  m_entries_->Set(static_cast<double>(entries_.size()));
}

void PropagationCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  bytes_ = 0;
  m_entries_->Set(0.0);
}

int64_t PropagationCache::current_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

int64_t PropagationCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

int64_t PropagationCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

int64_t PropagationCache::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

int64_t PropagationCache::num_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(entries_.size());
}

}  // namespace ahg::serve
