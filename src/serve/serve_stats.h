// Thread-safe counter block for the serving subsystem: request outcomes,
// latency percentiles (p50/p99 over per-request stopwatch samples), cache
// hit/miss counts, and a power-of-two batch-size histogram. One ServeStats
// is shared by the InferenceEngine (cache events) and the RequestBatcher
// (request lifecycle); Snapshot() freezes everything for printing.
#ifndef AUTOHENS_SERVE_SERVE_STATS_H_
#define AUTOHENS_SERVE_SERVE_STATS_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/stopwatch.h"

namespace ahg::serve {

// Batch sizes bucketed as 1, 2, 3-4, 5-8, ..., 129+.
inline constexpr int kBatchHistogramBuckets = 9;

struct ServeStatsSnapshot {
  int64_t completed = 0;            // requests answered OK
  int64_t deadline_violations = 0;  // answered past their deadline
  int64_t rejected = 0;             // refused at admission (queue full)
  int64_t failed = 0;               // other errors (no active model, bad id)
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t cache_bytes = 0;      // bytes currently pinned by the cache
  int64_t batches = 0;          // micro-batches executed
  double elapsed_seconds = 0.0;  // since construction / Reset()
  double qps = 0.0;              // completed / elapsed
  double p50_latency_ms = 0.0;   // over completed requests
  double p99_latency_ms = 0.0;
  double max_latency_ms = 0.0;
  int64_t batch_size_histogram[kBatchHistogramBuckets] = {};

  int64_t total() const {
    return completed + deadline_violations + rejected + failed;
  }
  // Human-readable bucket label, e.g. "5-8" (index < kBatchHistogramBuckets).
  static std::string BucketLabel(int bucket);
};

class ServeStats {
 public:
  ServeStats() = default;
  ServeStats(const ServeStats&) = delete;
  ServeStats& operator=(const ServeStats&) = delete;

  void RecordCompleted(double latency_ms);
  void RecordDeadlineViolation();
  void RecordRejected();
  void RecordFailed();
  void RecordCacheHit();
  void RecordCacheMiss();
  void RecordBatch(int batch_size);
  // The cache reports its pinned byte count here after every mutation.
  void SetCacheBytes(int64_t bytes);

  ServeStatsSnapshot Snapshot() const;

  // Clears all counters and restarts the qps clock.
  void Reset();

 private:
  mutable std::mutex mu_;
  Stopwatch clock_;
  int64_t completed_ = 0;
  int64_t deadline_violations_ = 0;
  int64_t rejected_ = 0;
  int64_t failed_ = 0;
  int64_t cache_hits_ = 0;
  int64_t cache_misses_ = 0;
  int64_t cache_bytes_ = 0;
  int64_t batches_ = 0;
  std::vector<double> latencies_ms_;
  int64_t batch_size_histogram_[kBatchHistogramBuckets] = {};
};

// Renders the snapshot as an aligned two-column table (field, value) plus
// the batch-size histogram, for the serve example and bench.
std::string FormatStatsTable(const ServeStatsSnapshot& snapshot);

}  // namespace ahg::serve

#endif  // AUTOHENS_SERVE_SERVE_STATS_H_
