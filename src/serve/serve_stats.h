// Thread-safe counter block for the serving subsystem: request outcomes,
// latency percentiles, cache hit/miss counts, and a power-of-two batch-size
// histogram. One ServeStats is shared by the InferenceEngine (cache events)
// and the RequestBatcher (request lifecycle); Snapshot() freezes everything
// for printing.
//
// Latencies are kept as a bounded reservoir sample (Vitter's algorithm R,
// deterministic RNG) plus a running max, so memory stays O(reservoir) under
// sustained traffic and Snapshot() sorts at most kLatencyReservoirSize
// samples no matter how many requests completed. Percentiles are exact
// until the reservoir fills and an unbiased estimate after.
//
// Every Record* call also feeds the process-wide obs::MetricsRegistry
// ("serve.completed", "serve.latency_ms", ...), so the generic metrics
// export carries the same fields this snapshot does.
#ifndef AUTOHENS_SERVE_SERVE_STATS_H_
#define AUTOHENS_SERVE_SERVE_STATS_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace ahg::serve {

// Batch sizes bucketed as 1, 2, 3-4, 5-8, ..., 129+.
inline constexpr int kBatchHistogramBuckets = 9;

struct ServeStatsSnapshot {
  int64_t completed = 0;            // requests answered OK
  int64_t deadline_violations = 0;  // answered past their deadline
  int64_t rejected = 0;             // refused at admission (queue full)
  int64_t failed = 0;               // other errors (no active model, bad id)
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t cache_bytes = 0;      // bytes currently pinned by the cache
  int64_t batches = 0;          // micro-batches executed
  int64_t latency_samples = 0;  // retained reservoir samples (<= capacity)
  double elapsed_seconds = 0.0;  // since construction / Reset()
  double qps = 0.0;              // completed / elapsed
  double p50_latency_ms = 0.0;   // over the latency reservoir
  double p99_latency_ms = 0.0;
  double max_latency_ms = 0.0;   // running max over ALL completed requests
  int64_t batch_size_histogram[kBatchHistogramBuckets] = {};

  int64_t total() const {
    return completed + deadline_violations + rejected + failed;
  }
  // Human-readable bucket label, e.g. "5-8" (index < kBatchHistogramBuckets).
  static std::string BucketLabel(int bucket);
};

class ServeStats {
 public:
  // Latency samples retained for percentile estimation; Snapshot() cost is
  // O(kLatencyReservoirSize log kLatencyReservoirSize), independent of
  // traffic volume.
  static constexpr int kLatencyReservoirSize = 1024;

  ServeStats();
  ServeStats(const ServeStats&) = delete;
  ServeStats& operator=(const ServeStats&) = delete;

  void RecordCompleted(double latency_ms);
  void RecordDeadlineViolation();
  void RecordRejected();
  void RecordFailed();
  void RecordCacheHit();
  void RecordCacheMiss();
  void RecordBatch(int batch_size);
  // The cache reports its pinned byte count here after every mutation.
  void SetCacheBytes(int64_t bytes);

  ServeStatsSnapshot Snapshot() const;

  // Clears all counters and restarts the qps clock. (The process-wide
  // metrics registry is cumulative and is not reset.)
  void Reset();

 private:
  mutable std::mutex mu_;
  Stopwatch clock_;
  int64_t completed_ = 0;
  int64_t deadline_violations_ = 0;
  int64_t rejected_ = 0;
  int64_t failed_ = 0;
  int64_t cache_hits_ = 0;
  int64_t cache_misses_ = 0;
  int64_t cache_bytes_ = 0;
  int64_t batches_ = 0;
  double max_latency_ms_ = 0.0;
  Rng reservoir_rng_;
  std::vector<double> latency_reservoir_;  // size <= kLatencyReservoirSize
  int64_t batch_size_histogram_[kBatchHistogramBuckets] = {};

  // Mirrors into the process-wide MetricsRegistry (stable handles).
  obs::Counter* const m_completed_;
  obs::Counter* const m_deadline_violations_;
  obs::Counter* const m_rejected_;
  obs::Counter* const m_failed_;
  obs::Counter* const m_cache_hits_;
  obs::Counter* const m_cache_misses_;
  obs::Counter* const m_batches_;
  obs::Gauge* const m_cache_bytes_;
  obs::Histogram* const m_latency_ms_;
  obs::Histogram* const m_batch_size_;
};

// Renders the snapshot as an aligned two-column table (field, value) plus
// the batch-size histogram, for the serve example and bench.
std::string FormatStatsTable(const ServeStatsSnapshot& snapshot);

}  // namespace ahg::serve

#endif  // AUTOHENS_SERVE_SERVE_STATS_H_
