#include "serve/request_batcher.h"

#include <algorithm>
#include <utility>

#include "util/string_util.h"

namespace ahg::serve {

RequestBatcher::RequestBatcher(InferenceEngine* engine,
                               const ModelRegistry* registry,
                               const BatcherOptions& options,
                               ServeStats* stats)
    : engine_(engine),
      registry_(registry),
      options_(options),
      stats_(stats),
      pool_(std::max(1, options.num_threads)) {
  AHG_CHECK(engine != nullptr);
  AHG_CHECK(registry != nullptr);
  AHG_CHECK(stats != nullptr);
  AHG_CHECK_GT(options_.max_batch_size, 0);
  AHG_CHECK_GT(options_.queue_limit, 0);
}

RequestBatcher::~RequestBatcher() { Drain(); }

std::future<QueryResult> RequestBatcher::Enqueue(int node_id,
                                                 double deadline_ms) {
  Pending request;
  request.node_id = node_id;
  request.deadline_ms =
      deadline_ms > 0.0 ? deadline_ms : options_.deadline_ms;
  std::future<QueryResult> future = request.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (in_queue_ >= options_.queue_limit) {
      stats_->RecordRejected();
      QueryResult rejected;
      rejected.status = Status::ResourceExhausted(
          StrFormat("queue limit %d reached", options_.queue_limit));
      request.promise.set_value(std::move(rejected));
      return future;
    }
    ++in_queue_;
    pending_.push_back(std::move(request));
    if (static_cast<int>(pending_.size()) >= options_.max_batch_size) {
      SubmitBatchLocked();
    }
  }
  return future;
}

void RequestBatcher::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  while (!pending_.empty()) SubmitBatchLocked();
}

void RequestBatcher::Drain() {
  Flush();
  pool_.Wait();
}

void RequestBatcher::SubmitBatchLocked() {
  const int take = std::min<int>(options_.max_batch_size,
                                 static_cast<int>(pending_.size()));
  if (take == 0) return;
  std::vector<Pending> batch;
  batch.reserve(take);
  std::move(pending_.begin(), pending_.begin() + take,
            std::back_inserter(batch));
  pending_.erase(pending_.begin(), pending_.begin() + take);
  // The pool owns the batch from here; shared_ptr because std::function
  // requires a copyable callable.
  auto shared = std::make_shared<std::vector<Pending>>(std::move(batch));
  pool_.Submit([this, shared] { ExecuteBatch(std::move(*shared)); });
}

void RequestBatcher::ExecuteBatch(std::vector<Pending> batch) {
  stats_->RecordBatch(static_cast<int>(batch.size()));
  std::shared_ptr<const ServableModel> model = registry_->Active();

  // Deadline admission happens at execution time: a request that already
  // overstayed its budget in the queue is answered without paying for
  // inference.
  std::vector<int> live_nodes;
  std::vector<size_t> live_index;
  for (size_t i = 0; i < batch.size(); ++i) {
    Pending& request = batch[i];
    const double waited_ms = request.enqueued.ElapsedMillis();
    if (request.deadline_ms > 0.0 && waited_ms > request.deadline_ms) {
      stats_->RecordDeadlineViolation();
      QueryResult result;
      result.status = Status::DeadlineExceeded(
          StrFormat("queued %.1fms, deadline %.1fms", waited_ms,
                    request.deadline_ms));
      result.latency_ms = waited_ms;
      request.promise.set_value(std::move(result));
    } else if (model == nullptr) {
      stats_->RecordFailed();
      QueryResult result;
      result.status = Status::NotFound("registry has no active model");
      result.latency_ms = waited_ms;
      request.promise.set_value(std::move(result));
    } else {
      live_nodes.push_back(request.node_id);
      live_index.push_back(i);
    }
  }
  if (live_nodes.empty()) {
    std::lock_guard<std::mutex> lock(mu_);
    in_queue_ -= static_cast<int>(batch.size());
    return;
  }

  StatusOr<Matrix> probs = engine_->PredictNodes(*model, live_nodes);
  for (size_t j = 0; j < live_index.size(); ++j) {
    Pending& request = batch[live_index[j]];
    QueryResult result;
    result.latency_ms = request.enqueued.ElapsedMillis();
    if (!probs.ok()) {
      stats_->RecordFailed();
      result.status = probs.status();
    } else if (request.deadline_ms > 0.0 &&
               result.latency_ms > request.deadline_ms) {
      stats_->RecordDeadlineViolation();
      result.status = Status::DeadlineExceeded(
          StrFormat("answered in %.1fms, deadline %.1fms", result.latency_ms,
                    request.deadline_ms));
    } else {
      stats_->RecordCompleted(result.latency_ms);
      const Matrix& m = probs.value();
      result.probs.assign(m.Row(static_cast<int>(j)),
                          m.Row(static_cast<int>(j)) + m.cols());
    }
    request.promise.set_value(std::move(result));
  }
  std::lock_guard<std::mutex> lock(mu_);
  in_queue_ -= static_cast<int>(batch.size());
}

}  // namespace ahg::serve
