#include "serve/request_batcher.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/string_util.h"

namespace ahg::serve {

RequestBatcher::RequestBatcher(NodePredictor* engine,
                               const ModelRegistry* registry,
                               const BatcherOptions& options,
                               ServeStats* stats)
    : engine_(engine),
      registry_(registry),
      options_(options),
      stats_(stats),
      pool_(std::max(1, options.num_threads)) {
  AHG_CHECK(engine != nullptr);
  AHG_CHECK(registry != nullptr);
  AHG_CHECK(stats != nullptr);
  AHG_CHECK_GT(options_.max_batch_size, 0);
  AHG_CHECK_GT(options_.queue_limit, 0);
  if (options_.max_queue_delay_ms > 0.0) {
    flusher_ = std::thread(&RequestBatcher::FlusherLoop, this);
  }
}

RequestBatcher::~RequestBatcher() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_flusher_ = true;
  }
  flusher_cv_.notify_all();
  if (flusher_.joinable()) flusher_.join();
  Drain();
}

std::future<QueryResult> RequestBatcher::Enqueue(int node_id,
                                                 double deadline_ms) {
  Pending request;
  request.node_id = node_id;
  request.deadline_ms =
      deadline_ms > 0.0 ? deadline_ms : options_.deadline_ms;
  std::future<QueryResult> future = request.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (in_queue_ >= options_.queue_limit) {
      stats_->RecordRejected();
      QueryResult rejected;
      rejected.status = Status::ResourceExhausted(
          StrFormat("queue limit %d reached", options_.queue_limit));
      request.promise.set_value(std::move(rejected));
      return future;
    }
    ++in_queue_;
    pending_.push_back(std::move(request));
    if (static_cast<int>(pending_.size()) >= options_.max_batch_size) {
      SubmitBatchLocked();
    } else {
      // Wake the flusher so it can re-arm on this request's delay bound or
      // deadline (which may now be the earliest in the queue).
      flusher_cv_.notify_one();
    }
  }
  return future;
}

double RequestBatcher::ExpirePendingLocked() {
  double next_expiry_ms = std::numeric_limits<double>::infinity();
  size_t kept = 0;
  for (size_t i = 0; i < pending_.size(); ++i) {
    Pending& request = pending_[i];
    if (request.deadline_ms > 0.0) {
      const double remaining_ms =
          request.deadline_ms - request.enqueued.ElapsedMillis();
      if (remaining_ms <= 0.0) {
        stats_->RecordDeadlineViolation();
        QueryResult result;
        result.status = Status::DeadlineExceeded(
            StrFormat("expired in queue after %.1fms, deadline %.1fms",
                      request.enqueued.ElapsedMillis(), request.deadline_ms));
        result.latency_ms = request.enqueued.ElapsedMillis();
        request.promise.set_value(std::move(result));
        --in_queue_;
        continue;  // dropped: never reaches a pool task
      }
      next_expiry_ms = std::min(next_expiry_ms, remaining_ms);
    }
    if (kept != i) pending_[kept] = std::move(pending_[i]);
    ++kept;
  }
  pending_.resize(kept);
  return next_expiry_ms;
}

void RequestBatcher::FlusherLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_flusher_) {
    if (pending_.empty()) {
      flusher_cv_.wait(
          lock, [this] { return stop_flusher_ || !pending_.empty(); });
      continue;
    }
    // Fail already-expired requests here, on the thread that owns the
    // timing decision: the old scheme submitted them to the pool and let
    // ExecuteBatch discover the expiry, which raced the flusher's delay
    // clock against the deadline clock and dispatched past-deadline work.
    const double next_expiry_ms = ExpirePendingLocked();
    if (pending_.empty()) continue;
    const double waited_ms = pending_.front().enqueued.ElapsedMillis();
    const double remaining_delay_ms = options_.max_queue_delay_ms - waited_ms;
    if (remaining_delay_ms <= 0.0) {
      SubmitBatchLocked();
      continue;
    }
    // Wake at whichever bound lands first: the partial-batch delay or the
    // earliest pending deadline.
    flusher_cv_.wait_for(lock, std::chrono::duration<double, std::milli>(
                                   std::min(remaining_delay_ms,
                                            next_expiry_ms)));
  }
}

void RequestBatcher::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  // Expired requests are answered here instead of being packed into the
  // batch — same contract as the flusher path.
  ExpirePendingLocked();
  while (!pending_.empty()) SubmitBatchLocked();
}

void RequestBatcher::Drain() {
  Flush();
  pool_.Wait();
}

int RequestBatcher::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_queue_;
}

void RequestBatcher::SubmitBatchLocked() {
  const int take = std::min<int>(options_.max_batch_size,
                                 static_cast<int>(pending_.size()));
  if (take == 0) return;
  std::vector<Pending> batch;
  batch.reserve(take);
  std::move(pending_.begin(), pending_.begin() + take,
            std::back_inserter(batch));
  pending_.erase(pending_.begin(), pending_.begin() + take);
  // The pool owns the batch from here; shared_ptr because std::function
  // requires a copyable callable.
  auto shared = std::make_shared<std::vector<Pending>>(std::move(batch));
  pool_.Submit([this, shared] { ExecuteBatch(std::move(*shared)); });
}

void RequestBatcher::ExecuteBatch(std::vector<Pending> batch) {
  AHG_TRACE_SPAN_ARG("serve/batch", static_cast<int64_t>(batch.size()));
  static obs::Histogram* queue_wait_ms = obs::MetricsRegistry::Global().GetHistogram(
      "serve.queue_wait_ms", obs::DefaultLatencyBucketsMs());
  stats_->RecordBatch(static_cast<int>(batch.size()));
  // One model resolution per batch: every request in the batch is answered
  // by the same version, so a hot swap (or a fabric rollout flip) lands at
  // a batch boundary and can never tear a batch across versions.
  std::shared_ptr<const ServableModel> model =
      options_.model_resolver ? options_.model_resolver()
                              : registry_->Active();

  // Deadline admission happens at execution time: a request that already
  // overstayed its budget in the queue is answered without paying for
  // inference.
  std::vector<int> live_nodes;
  std::vector<size_t> live_index;
  for (size_t i = 0; i < batch.size(); ++i) {
    Pending& request = batch[i];
    const double waited_ms = request.enqueued.ElapsedMillis();
    queue_wait_ms->Observe(waited_ms);
    if (obs::TracingEnabled()) {
      // Reconstruct the wait as a completed span: it started at enqueue
      // time, which predates this scope.
      obs::TraceRecorder& recorder = obs::TraceRecorder::Instance();
      const uint64_t wait_us = static_cast<uint64_t>(waited_ms * 1e3);
      const uint64_t now_us = recorder.NowMicros();
      recorder.Emit("serve/queue_wait",
                    now_us > wait_us ? now_us - wait_us : 0, wait_us,
                    request.node_id);
    }
    if (request.deadline_ms > 0.0 && waited_ms > request.deadline_ms) {
      stats_->RecordDeadlineViolation();
      QueryResult result;
      result.status = Status::DeadlineExceeded(
          StrFormat("queued %.1fms, deadline %.1fms", waited_ms,
                    request.deadline_ms));
      result.latency_ms = waited_ms;
      request.promise.set_value(std::move(result));
    } else if (model == nullptr) {
      stats_->RecordFailed();
      QueryResult result;
      result.status = Status::NotFound("registry has no active model");
      result.latency_ms = waited_ms;
      request.promise.set_value(std::move(result));
    } else {
      live_nodes.push_back(request.node_id);
      live_index.push_back(i);
    }
  }
  if (live_nodes.empty()) {
    std::lock_guard<std::mutex> lock(mu_);
    in_queue_ -= static_cast<int>(batch.size());
    return;
  }

  StatusOr<Matrix> probs = engine_->PredictNodes(*model, live_nodes);
  for (size_t j = 0; j < live_index.size(); ++j) {
    Pending& request = batch[live_index[j]];
    QueryResult result;
    result.latency_ms = request.enqueued.ElapsedMillis();
    if (!probs.ok()) {
      stats_->RecordFailed();
      result.status = probs.status();
    } else if (request.deadline_ms > 0.0 &&
               result.latency_ms > request.deadline_ms) {
      stats_->RecordDeadlineViolation();
      result.status = Status::DeadlineExceeded(
          StrFormat("answered in %.1fms, deadline %.1fms", result.latency_ms,
                    request.deadline_ms));
    } else {
      stats_->RecordCompleted(result.latency_ms);
      const Matrix& m = probs.value();
      result.probs.assign(m.Row(static_cast<int>(j)),
                          m.Row(static_cast<int>(j)) + m.cols());
      result.served_version = model->version;
    }
    request.promise.set_value(std::move(result));
  }
  std::lock_guard<std::mutex> lock(mu_);
  in_queue_ -= static_cast<int>(batch.size());
}

}  // namespace ahg::serve
