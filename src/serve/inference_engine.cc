#include "serve/inference_engine.h"

#include <cstring>
#include <mutex>

#include "autodiff/ops.h"
#include "graph/reorder.h"
#include "nn/linear.h"
#include "obs/trace.h"
#include "tensor/pool.h"
#include "util/string_util.h"

namespace ahg::serve {

Matrix ApplyClassifierHead(const Matrix& hidden_rows,
                           const ServableModel& model) {
  Matrix logits = MatMul(hidden_rows, model.head_weight());
  const Matrix& bias = model.head_bias();
  for (int r = 0; r < logits.rows(); ++r) {
    double* row = logits.Row(r);
    for (int c = 0; c < logits.cols(); ++c) row[c] += bias(0, c);
  }
  return RowSoftmax(logits);
}

InferenceEngine::InferenceEngine(const Graph* graph,
                                 const EngineOptions& options,
                                 ServeStats* stats)
    : graph_(graph),
      own_cache_(options.cache_byte_budget),
      cache_(options.shared_cache != nullptr ? options.shared_cache
                                             : &own_cache_),
      scope_(options.cache_scope),
      stats_(stats),
      pooling_(options.pooling),
      fusion_(options.fusion) {
  AHG_CHECK(graph != nullptr);
  AHG_CHECK(scope_.find('/') == std::string::npos);
}

StatusOr<std::shared_ptr<const Matrix>> InferenceEngine::HiddenStates(
    const ServableModel& model) {
  // Covers the miss-path frozen forward; flags are thread-local, so this
  // applies on whichever request thread runs the compute.
  ScopedMemPlane mem_plane(pooling_, fusion_);
  // One consistent (graph, generation) pair for the whole request; a
  // concurrent SwapGraph retargets later requests, never this one.
  const Graph* graph;
  uint64_t generation;
  {
    std::shared_lock<std::shared_mutex> lock(graph_mu_);
    graph = graph_;
    generation = graph_generation_;
  }
  if (model.config.in_dim != graph->feature_dim()) {
    return Status::InvalidArgument(
        StrFormat("model consumes %d-dim features, serving graph has %d-dim",
                  model.config.in_dim, graph->feature_dim()));
  }
  // Published versions are immutable and the generation pins the topology,
  // so (generation, version) identifies the propagation product.
  const std::string key =
      PropagationKey(GraphId(scope_, generation), model.version);
  bool computed = false;
  std::shared_ptr<const Matrix> hidden =
      cache_->GetOrCompute(key, [graph, &model, &computed] {
        computed = true;
        std::unique_ptr<GnnModel> zoo = BuildModel(model.config);
        std::vector<Matrix> weights(model.params.begin(),
                                    model.params.end() - 2);
        zoo->params()->Restore(weights);
        return zoo->ForwardInference(*graph, graph->features());
      });
  if (obs::TracingEnabled()) {
    // Instant-style marker (the lookup itself is sub-microsecond); the
    // miss's compute cost shows up as the enclosed serve/cache_compute span.
    obs::TraceRecorder& recorder = obs::TraceRecorder::Instance();
    recorder.Emit(computed ? "serve/cache_miss" : "serve/cache_hit",
                  recorder.NowMicros(), 0, model.version);
  }
  if (stats_ != nullptr) {
    if (computed) {
      stats_->RecordCacheMiss();
    } else {
      stats_->RecordCacheHit();
    }
    stats_->SetCacheBytes(cache_->current_bytes());
  }
  return hidden;
}

StatusOr<Matrix> InferenceEngine::PredictNodes(const ServableModel& model,
                                               const std::vector<int>& nodes) {
  AHG_TRACE_SPAN_ARG("serve/predict_nodes",
                     static_cast<int64_t>(nodes.size()));
  ScopedMemPlane mem_plane(pooling_, fusion_);
  auto hidden = HiddenStates(model);
  if (!hidden.ok()) return hidden.status();
  const Matrix& h = *hidden.value();
  // Query ids are external; hidden rows live in the serving graph's
  // (possibly reordered) internal order. Translate once here — the same
  // benign swap race as the row-count validation below, since a reordered
  // graph swap republishes matching hidden states with it.
  const NodePermutation* perm;
  {
    std::shared_lock<std::shared_mutex> lock(graph_mu_);
    perm = graph_->permutation();
  }
  // Validate against the hidden-state matrix the request resolved, so the
  // answer is self-consistent even when a swap lands mid-request.
  for (int node : nodes) {
    if (node < 0 || node >= h.rows()) {
      return Status::InvalidArgument(
          StrFormat("node id %d out of range [0, %d)", node, h.rows()));
    }
  }
  Matrix rows(static_cast<int>(nodes.size()), h.cols());
  for (size_t i = 0; i < nodes.size(); ++i) {
    std::memcpy(rows.Row(static_cast<int>(i)),
                h.Row(ToInternalId(perm, nodes[i])),
                static_cast<size_t>(h.cols()) * sizeof(double));
  }
  return ApplyClassifierHead(rows, model);
}

StatusOr<Matrix> InferenceEngine::PredictAll(const ServableModel& model) {
  ScopedMemPlane mem_plane(pooling_, fusion_);
  auto hidden = HiddenStates(model);
  if (!hidden.ok()) return hidden.status();
  Matrix probs = ApplyClassifierHead(*hidden.value(), model);
  const NodePermutation* perm;
  {
    std::shared_lock<std::shared_mutex> lock(graph_mu_);
    perm = graph_->permutation();
  }
  // Row order is an external contract: row e is node e's probabilities. On
  // a reordered graph, gather the internally ordered rows back out.
  if (perm != nullptr && probs.rows() == perm->num_nodes()) {
    probs = GatherRows(probs, perm->to_internal);
  }
  return probs;
}

Status InferenceEngine::Warm(const ServableModel& model) {
  return HiddenStates(model).status();
}

Status InferenceEngine::SwapGraph(const Graph* graph, uint64_t generation) {
  if (graph == nullptr) {
    return Status::InvalidArgument("SwapGraph: null graph");
  }
  uint64_t retired;
  {
    std::unique_lock<std::shared_mutex> lock(graph_mu_);
    if (generation <= graph_generation_) {
      return Status::InvalidArgument(
          StrFormat("SwapGraph: generation %lld not above current %lld",
                    static_cast<long long>(generation),
                    static_cast<long long>(graph_generation_)));
    }
    retired = graph_generation_;
    graph_ = graph;
    graph_generation_ = generation;
  }
  if (obs::TracingEnabled()) {
    obs::TraceRecorder& recorder = obs::TraceRecorder::Instance();
    recorder.Emit("serve/graph_swap", recorder.NowMicros(), 0,
                  static_cast<int64_t>(generation));
  }
  // Products of the retired topology must never answer a new query;
  // in-flight requests that already resolved a shared_ptr keep it alive.
  cache_->InvalidateGraph(GraphId(scope_, retired));
  if (stats_ != nullptr) stats_->SetCacheBytes(cache_->current_bytes());
  return Status::OK();
}

Status InferenceEngine::InstallHiddenStates(
    int version, std::shared_ptr<const Matrix> hidden) {
  if (hidden == nullptr) {
    return Status::InvalidArgument("InstallHiddenStates: null hidden states");
  }
  const Graph* graph;
  uint64_t generation;
  {
    std::shared_lock<std::shared_mutex> lock(graph_mu_);
    graph = graph_;
    generation = graph_generation_;
  }
  if (hidden->rows() != graph->num_nodes()) {
    return Status::InvalidArgument(
        StrFormat("hidden states have %d rows, serving graph has %d nodes",
                  hidden->rows(), graph->num_nodes()));
  }
  cache_->Put(PropagationKey(GraphId(scope_, generation), version),
              std::move(hidden));
  if (stats_ != nullptr) stats_->SetCacheBytes(cache_->current_bytes());
  return Status::OK();
}

uint64_t InferenceEngine::graph_generation() const {
  std::shared_lock<std::shared_mutex> lock(graph_mu_);
  return graph_generation_;
}

const Graph& InferenceEngine::graph() const {
  std::shared_lock<std::shared_mutex> lock(graph_mu_);
  return *graph_;
}

Matrix InferenceEngine::TrainingPathProbs(const ServableModel& model,
                                          const Graph& graph) {
  std::unique_ptr<GnnModel> zoo = BuildModel(model.config);
  Rng head_rng(model.config.seed ^ 0x5ca1ab1eULL);
  Linear head(zoo->params(), model.config.hidden_dim, model.num_classes,
              /*bias=*/true, &head_rng);
  zoo->params()->Restore(model.params);
  GnnContext ctx;
  ctx.graph = &graph;
  ctx.training = false;
  Var logits = head.Apply(zoo->LayerOutputs(ctx, MakeConstant(graph.features()))
                              .back());
  Matrix probs = RowSoftmax(logits->value);
  // Same external row contract as PredictAll.
  if (graph.permutation() != nullptr) {
    probs = GatherRows(probs, graph.permutation()->to_internal);
  }
  return probs;
}

}  // namespace ahg::serve
