#include "serve/inference_engine.h"

#include <cstring>

#include "autodiff/ops.h"
#include "nn/linear.h"
#include "obs/trace.h"
#include "util/string_util.h"

namespace ahg::serve {
namespace {

// Head used at training time: softmax(H W + b). Applied with the same
// kernels and accumulation order as nn/Linear + RowSoftmax, so a gathered
// batch reproduces the training-path rows bitwise (each output row depends
// only on its own input row).
Matrix HeadProbs(const Matrix& hidden_rows, const ServableModel& model) {
  Matrix logits = MatMul(hidden_rows, model.head_weight());
  const Matrix& bias = model.head_bias();
  for (int r = 0; r < logits.rows(); ++r) {
    double* row = logits.Row(r);
    for (int c = 0; c < logits.cols(); ++c) row[c] += bias(0, c);
  }
  return RowSoftmax(logits);
}

}  // namespace

InferenceEngine::InferenceEngine(const Graph* graph,
                                 const EngineOptions& options,
                                 ServeStats* stats)
    : graph_(graph), cache_(options.cache_byte_budget), stats_(stats) {
  AHG_CHECK(graph != nullptr);
}

StatusOr<std::shared_ptr<const Matrix>> InferenceEngine::HiddenStates(
    const ServableModel& model) {
  if (model.config.in_dim != graph_->feature_dim()) {
    return Status::InvalidArgument(
        StrFormat("model consumes %d-dim features, serving graph has %d-dim",
                  model.config.in_dim, graph_->feature_dim()));
  }
  // Published versions are immutable, so the version number identifies the
  // propagation product; the engine itself pins the graph.
  const std::string key = StrFormat("v%d", model.version);
  bool computed = false;
  std::shared_ptr<const Matrix> hidden =
      cache_.GetOrCompute(key, [this, &model, &computed] {
        computed = true;
        std::unique_ptr<GnnModel> zoo = BuildModel(model.config);
        std::vector<Matrix> weights(model.params.begin(),
                                    model.params.end() - 2);
        zoo->params()->Restore(weights);
        return zoo->ForwardInference(*graph_, graph_->features());
      });
  if (obs::TracingEnabled()) {
    // Instant-style marker (the lookup itself is sub-microsecond); the
    // miss's compute cost shows up as the enclosed serve/cache_compute span.
    obs::TraceRecorder& recorder = obs::TraceRecorder::Instance();
    recorder.Emit(computed ? "serve/cache_miss" : "serve/cache_hit",
                  recorder.NowMicros(), 0, model.version);
  }
  if (stats_ != nullptr) {
    if (computed) {
      stats_->RecordCacheMiss();
    } else {
      stats_->RecordCacheHit();
    }
    stats_->SetCacheBytes(cache_.current_bytes());
  }
  return hidden;
}

StatusOr<Matrix> InferenceEngine::PredictNodes(const ServableModel& model,
                                               const std::vector<int>& nodes) {
  for (int node : nodes) {
    if (node < 0 || node >= graph_->num_nodes()) {
      return Status::InvalidArgument(
          StrFormat("node id %d out of range [0, %d)", node,
                    graph_->num_nodes()));
    }
  }
  AHG_TRACE_SPAN_ARG("serve/predict_nodes",
                     static_cast<int64_t>(nodes.size()));
  auto hidden = HiddenStates(model);
  if (!hidden.ok()) return hidden.status();
  const Matrix& h = *hidden.value();
  Matrix rows(static_cast<int>(nodes.size()), h.cols());
  for (size_t i = 0; i < nodes.size(); ++i) {
    std::memcpy(rows.Row(static_cast<int>(i)), h.Row(nodes[i]),
                static_cast<size_t>(h.cols()) * sizeof(double));
  }
  return HeadProbs(rows, model);
}

StatusOr<Matrix> InferenceEngine::PredictAll(const ServableModel& model) {
  auto hidden = HiddenStates(model);
  if (!hidden.ok()) return hidden.status();
  return HeadProbs(*hidden.value(), model);
}

Status InferenceEngine::Warm(const ServableModel& model) {
  return HiddenStates(model).status();
}

Matrix InferenceEngine::TrainingPathProbs(const ServableModel& model,
                                          const Graph& graph) {
  std::unique_ptr<GnnModel> zoo = BuildModel(model.config);
  Rng head_rng(model.config.seed ^ 0x5ca1ab1eULL);
  Linear head(zoo->params(), model.config.hidden_dim, model.num_classes,
              /*bias=*/true, &head_rng);
  zoo->params()->Restore(model.params);
  GnnContext ctx;
  ctx.graph = &graph;
  ctx.training = false;
  Var logits = head.Apply(zoo->LayerOutputs(ctx, MakeConstant(graph.features()))
                              .back());
  return RowSoftmax(logits->value);
}

}  // namespace ahg::serve
