#include "nn/optimizer.h"

#include <cmath>

#include "util/logging.h"

namespace ahg {

Adam::Adam(std::vector<Var> params, const AdamConfig& config)
    : params_(std::move(params)), config_(config) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.emplace_back(p->value.rows(), p->value.cols());
    v_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Adam::Step() {
  ++step_;
  const double bc1 = 1.0 - std::pow(config_.beta1, static_cast<double>(step_));
  const double bc2 = 1.0 - std::pow(config_.beta2, static_cast<double>(step_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Node& p = *params_[i];
    if (p.grad.empty()) continue;  // Parameter unused in this graph.
    double* w = p.value.data();
    const double* g = p.grad.data();
    double* m = m_[i].data();
    double* v = v_[i].data();
    for (int64_t k = 0; k < p.value.size(); ++k) {
      const double grad = g[k] + config_.weight_decay * w[k];
      m[k] = config_.beta1 * m[k] + (1.0 - config_.beta1) * grad;
      v[k] = config_.beta2 * v[k] + (1.0 - config_.beta2) * grad * grad;
      const double m_hat = m[k] / bc1;
      const double v_hat = v[k] / bc2;
      w[k] -= config_.learning_rate * m_hat /
              (std::sqrt(v_hat) + config_.epsilon);
    }
  }
}

AdamState Adam::ExportState() const {
  AdamState state;
  state.m = m_;
  state.v = v_;
  state.step = step_;
  state.learning_rate = config_.learning_rate;
  return state;
}

void Adam::RestoreState(const AdamState& state) {
  AHG_CHECK_EQ(state.m.size(), params_.size());
  AHG_CHECK_EQ(state.v.size(), params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    AHG_CHECK_EQ(state.m[i].rows(), params_[i]->value.rows());
    AHG_CHECK_EQ(state.m[i].cols(), params_[i]->value.cols());
    AHG_CHECK_EQ(state.v[i].rows(), params_[i]->value.rows());
    AHG_CHECK_EQ(state.v[i].cols(), params_[i]->value.cols());
  }
  m_ = state.m;
  v_ = state.v;
  step_ = state.step;
  config_.learning_rate = state.learning_rate;
}

Sgd::Sgd(std::vector<Var> params, double learning_rate, double weight_decay)
    : params_(std::move(params)),
      learning_rate_(learning_rate),
      weight_decay_(weight_decay) {}

void Sgd::Step() {
  for (auto& param : params_) {
    Node& p = *param;
    if (p.grad.empty()) continue;
    double* w = p.value.data();
    const double* g = p.grad.data();
    for (int64_t k = 0; k < p.value.size(); ++k) {
      w[k] -= learning_rate_ * (g[k] + weight_decay_ * w[k]);
    }
  }
}

}  // namespace ahg
