#include "nn/init.h"

#include <cmath>

namespace ahg {

Matrix GlorotUniform(int fan_in, int fan_out, Rng* rng) {
  const double a = std::sqrt(6.0 / (fan_in + fan_out));
  Matrix m(fan_in, fan_out);
  for (int64_t i = 0; i < m.size(); ++i) m.data()[i] = rng->Uniform(-a, a);
  return m;
}

Matrix HeNormal(int fan_in, int fan_out, Rng* rng) {
  const double stddev = std::sqrt(2.0 / fan_in);
  return Matrix::Gaussian(fan_in, fan_out, stddev, rng);
}

}  // namespace ahg
