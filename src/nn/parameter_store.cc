#include "nn/parameter_store.h"

namespace ahg {

Var ParameterStore::Create(Matrix init) {
  Var p = MakeParam(std::move(init));
  params_.push_back(p);
  return p;
}

void ParameterStore::ZeroGrad() {
  for (auto& p : params_) p->ZeroGrad();
}

int64_t ParameterStore::NumParams() const {
  int64_t total = 0;
  for (const auto& p : params_) total += p->value.size();
  return total;
}

std::vector<Matrix> ParameterStore::Snapshot() const {
  std::vector<Matrix> snapshot;
  snapshot.reserve(params_.size());
  for (const auto& p : params_) snapshot.push_back(p->value);
  return snapshot;
}

void ParameterStore::Restore(const std::vector<Matrix>& snapshot) {
  AHG_CHECK_EQ(snapshot.size(), params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    AHG_CHECK(snapshot[i].rows() == params_[i]->value.rows() &&
              snapshot[i].cols() == params_[i]->value.cols());
    params_[i]->value = snapshot[i];
  }
}

}  // namespace ahg
