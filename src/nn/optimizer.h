// First-order optimizers. Adam follows the paper's appendix configuration
// (beta1 = 0.9, beta2 = 0.98, eps = 1e-9, L2 weight decay added to the
// gradient, learning-rate decay handled by the caller via set_learning_rate).
#ifndef AUTOHENS_NN_OPTIMIZER_H_
#define AUTOHENS_NN_OPTIMIZER_H_

#include <vector>

#include "autodiff/variable.h"

namespace ahg {

struct AdamConfig {
  double learning_rate = 1e-2;
  double beta1 = 0.9;
  double beta2 = 0.98;
  double epsilon = 1e-9;
  double weight_decay = 5e-4;
};

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  // Applies one update from the gradients currently stored on the params.
  virtual void Step() = 0;

  virtual void set_learning_rate(double lr) = 0;
  virtual double learning_rate() const = 0;
};

// Complete Adam moment state, exposed so checkpoint/resume paths (src/jobs)
// can persist an optimizer mid-run: a restored Adam applies the identical
// update sequence bit-for-bit.
struct AdamState {
  std::vector<Matrix> m;
  std::vector<Matrix> v;
  int64_t step = 0;
  double learning_rate = 0.0;  // captures caller-driven LR decay
};

class Adam : public Optimizer {
 public:
  Adam(std::vector<Var> params, const AdamConfig& config);

  void Step() override;
  void set_learning_rate(double lr) override { config_.learning_rate = lr; }
  double learning_rate() const override { return config_.learning_rate; }

  // Snapshot / restore of the moment vectors, step count and learning rate.
  // RestoreState checks the state against the parameter list shape-by-shape.
  AdamState ExportState() const;
  void RestoreState(const AdamState& state);

 private:
  std::vector<Var> params_;
  AdamConfig config_;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
  int64_t step_ = 0;
};

class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Var> params, double learning_rate, double weight_decay);

  void Step() override;
  void set_learning_rate(double lr) override { learning_rate_ = lr; }
  double learning_rate() const override { return learning_rate_; }

 private:
  std::vector<Var> params_;
  double learning_rate_;
  double weight_decay_;
};

}  // namespace ahg

#endif  // AUTOHENS_NN_OPTIMIZER_H_
