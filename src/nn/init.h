// Weight initializers. Each model seeds its own Rng, which is how graph
// self-ensemble obtains its K differently-initialized sub-models.
#ifndef AUTOHENS_NN_INIT_H_
#define AUTOHENS_NN_INIT_H_

#include "tensor/matrix.h"
#include "util/rng.h"

namespace ahg {

// Uniform(-a, a) with a = sqrt(6 / (fan_in + fan_out)).
Matrix GlorotUniform(int fan_in, int fan_out, Rng* rng);

// N(0, 2 / fan_in) — for ReLU-family activations.
Matrix HeNormal(int fan_in, int fan_out, Rng* rng);

}  // namespace ahg

#endif  // AUTOHENS_NN_INIT_H_
