#include "nn/linear.h"

#include "autodiff/ops.h"
#include "nn/init.h"
#include "tensor/pool.h"

namespace ahg {

Linear::Linear(ParameterStore* store, int in_dim, int out_dim, bool bias,
               Rng* rng)
    : in_dim_(in_dim), out_dim_(out_dim) {
  weight_ = store->Create(GlorotUniform(in_dim, out_dim, rng));
  if (bias) bias_ = store->Create(Matrix(1, out_dim));
}

Var Linear::Apply(const Var& x) const {
  Var out = MatMul(x, weight_);
  if (bias_) out = AddRowVector(out, bias_);
  return out;
}

Var Linear::ApplyRelu(const Var& x) const {
  if (FusionEnabled()) return LinearRelu(x, weight_, bias_);
  return Relu(Apply(x));
}

}  // namespace ahg
