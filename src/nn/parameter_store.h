// Owns the trainable parameters of a model: creation, grad clearing, and
// snapshot/restore (used by early stopping to keep the best-validation
// weights, mirroring the paper's training protocol).
#ifndef AUTOHENS_NN_PARAMETER_STORE_H_
#define AUTOHENS_NN_PARAMETER_STORE_H_

#include <vector>

#include "autodiff/variable.h"

namespace ahg {

class ParameterStore {
 public:
  ParameterStore() = default;
  ParameterStore(const ParameterStore&) = delete;
  ParameterStore& operator=(const ParameterStore&) = delete;

  // Wraps `init` in a gradient-tracked Var and registers it.
  Var Create(Matrix init);

  const std::vector<Var>& params() const { return params_; }

  void ZeroGrad();

  // Total scalar parameter count.
  int64_t NumParams() const;

  // Deep-copies all parameter values.
  std::vector<Matrix> Snapshot() const;

  // Restores values captured by Snapshot() (shapes must match).
  void Restore(const std::vector<Matrix>& snapshot);

 private:
  std::vector<Var> params_;
};

}  // namespace ahg

#endif  // AUTOHENS_NN_PARAMETER_STORE_H_
