// Affine layer y = x W + b with Glorot initialization.
#ifndef AUTOHENS_NN_LINEAR_H_
#define AUTOHENS_NN_LINEAR_H_

#include "autodiff/variable.h"
#include "nn/parameter_store.h"
#include "util/rng.h"

namespace ahg {

class Linear {
 public:
  // Registers W (and b when `bias`) in `store`. `store` and `rng` must
  // outlive the constructor call only; the layer keeps Vars by shared_ptr.
  Linear(ParameterStore* store, int in_dim, int out_dim, bool bias, Rng* rng);

  // x is n x in_dim; returns n x out_dim.
  Var Apply(const Var& x) const;

  // relu(Apply(x)), using the fused single-buffer op when FusionEnabled()
  // (tensor/pool.h); bitwise identical either way.
  Var ApplyRelu(const Var& x) const;

  int in_dim() const { return in_dim_; }
  int out_dim() const { return out_dim_; }
  const Var& weight() const { return weight_; }

 private:
  int in_dim_;
  int out_dim_;
  Var weight_;
  Var bias_;  // null when constructed without bias
};

}  // namespace ahg

#endif  // AUTOHENS_NN_LINEAR_H_
