#include "ensemble/baselines.h"

#include "autodiff/ops.h"
#include "metrics/metrics.h"
#include "nn/optimizer.h"

namespace ahg {

Matrix AverageProbs(const std::vector<Matrix>& probs) {
  AHG_CHECK(!probs.empty());
  Matrix out = probs[0];
  for (size_t i = 1; i < probs.size(); ++i) out.AddInPlace(probs[i]);
  out.ScaleInPlace(1.0 / static_cast<double>(probs.size()));
  return out;
}

Matrix WeightedProbs(const std::vector<Matrix>& probs,
                     const std::vector<double>& weights) {
  AHG_CHECK(!probs.empty());
  AHG_CHECK_EQ(probs.size(), weights.size());
  Matrix out(probs[0].rows(), probs[0].cols());
  for (size_t i = 0; i < probs.size(); ++i) {
    out.AxpyInPlace(weights[i], probs[i]);
  }
  return out;
}

std::vector<double> LearnEnsembleWeights(const std::vector<Matrix>& probs,
                                         const std::vector<int>& labels,
                                         const std::vector<int>& val_nodes,
                                         int epochs, double learning_rate) {
  const int n = static_cast<int>(probs.size());
  AHG_CHECK_GT(n, 0);
  std::vector<Var> terms;
  terms.reserve(n);
  for (const Matrix& p : probs) terms.push_back(MakeConstant(p));
  Var weights_raw = MakeParam(Matrix(1, n));

  AdamConfig config;
  config.learning_rate = learning_rate;
  config.weight_decay = 0.0;
  Adam optimizer({weights_raw}, config);
  for (int epoch = 0; epoch < epochs; ++epoch) {
    weights_raw->ZeroGrad();
    Var combined = SoftmaxWeightedSum(terms, weights_raw);
    Var loss = MaskedNllFromProbs(combined, labels, val_nodes);
    Backward(loss);
    optimizer.Step();
  }
  const Matrix normalized = RowSoftmax(weights_raw->value);
  std::vector<double> out(n);
  for (int i = 0; i < n; ++i) out[i] = normalized(0, i);
  return out;
}

std::vector<int> GreedyEnsembleSelect(const std::vector<Matrix>& probs,
                                      const std::vector<int>& labels,
                                      const std::vector<int>& val_nodes) {
  const int n = static_cast<int>(probs.size());
  AHG_CHECK_GT(n, 0);
  std::vector<bool> used(n, false);
  std::vector<int> selected;
  std::vector<Matrix> members;
  double best_acc = -1.0;
  for (;;) {
    int best_idx = -1;
    double best_candidate_acc = best_acc;
    for (int i = 0; i < n; ++i) {
      if (used[i]) continue;
      members.push_back(probs[i]);
      const double acc = Accuracy(AverageProbs(members), labels, val_nodes);
      members.pop_back();
      if (acc > best_candidate_acc) {
        best_candidate_acc = acc;
        best_idx = i;
      }
    }
    if (best_idx < 0) break;
    used[best_idx] = true;
    selected.push_back(best_idx);
    members.push_back(probs[best_idx]);
    best_acc = best_candidate_acc;
  }
  if (selected.empty()) selected.push_back(0);  // degenerate: keep one model
  return selected;
}

std::vector<int> RandomEnsembleSelect(int num_models, int count, Rng* rng) {
  return rng->SampleWithoutReplacement(num_models,
                                       std::min(num_models, count));
}

}  // namespace ahg
