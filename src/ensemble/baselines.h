// The ensemble baselines the paper compares against (Tables II/III/V):
//   D-ensemble — plain average of model probabilities;
//   L-ensemble — softmax ensemble weights learned on the validation set;
//   Goyal et al. — greedy forward selection of models into an average;
//   Random ensemble — average of a random subset (ablation Table IV).
// All operate on fixed per-model full-graph probability matrices, so they
// compose with any trainer.
#ifndef AUTOHENS_ENSEMBLE_BASELINES_H_
#define AUTOHENS_ENSEMBLE_BASELINES_H_

#include <vector>

#include "tensor/matrix.h"
#include "util/rng.h"

namespace ahg {

// Mean of the given probability matrices (all n x C).
Matrix AverageProbs(const std::vector<Matrix>& probs);

// sum_j weights[j] * probs[j]; weights need not be normalized.
Matrix WeightedProbs(const std::vector<Matrix>& probs,
                     const std::vector<double>& weights);

// Learns softmax-normalized ensemble weights by minimizing the NLL of the
// combined probabilities on `val_nodes` (gradient descent over fixed model
// outputs). Returns the normalized weights.
std::vector<double> LearnEnsembleWeights(const std::vector<Matrix>& probs,
                                         const std::vector<int>& labels,
                                         const std::vector<int>& val_nodes,
                                         int epochs, double learning_rate);

// Goyal et al.-style greedy forward selection: starts from the model with
// the best validation accuracy and keeps adding whichever model improves the
// averaged ensemble most, stopping when nothing helps. Returns the chosen
// model indices (a model may be selected once).
std::vector<int> GreedyEnsembleSelect(const std::vector<Matrix>& probs,
                                      const std::vector<int>& labels,
                                      const std::vector<int>& val_nodes);

// Uniformly samples `count` distinct model indices (random-ensemble
// ablation baseline).
std::vector<int> RandomEnsembleSelect(int num_models, int count, Rng* rng);

}  // namespace ahg

#endif  // AUTOHENS_ENSEMBLE_BASELINES_H_
