#include "partition/partitioner.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "obs/trace.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace ahg::partition {

namespace {

// Weighted adjacency list of one coarsening level. Neighbor lists are
// sorted by id with duplicates merged, so every traversal below is
// deterministic without hashing.
struct LevelGraph {
  int n = 0;
  std::vector<int64_t> offsets;     // n + 1
  std::vector<int> nbr;             // flattened neighbor ids
  std::vector<double> wgt;          // parallel edge weights
  std::vector<double> vwgt;         // node weights (constituent counts)
};

LevelGraph FromEdges(int n, const std::vector<Edge>& edges) {
  std::vector<std::pair<int64_t, double>> sym;  // (u << 32 | v, w)
  sym.reserve(2 * edges.size());
  for (const Edge& e : edges) {
    if (e.src == e.dst) continue;
    sym.push_back({(int64_t{e.src} << 32) | static_cast<uint32_t>(e.dst),
                   e.weight});
    sym.push_back({(int64_t{e.dst} << 32) | static_cast<uint32_t>(e.src),
                   e.weight});
  }
  std::sort(sym.begin(), sym.end());
  LevelGraph g;
  g.n = n;
  g.offsets.assign(n + 1, 0);
  g.vwgt.assign(n, 1.0);
  for (size_t i = 0; i < sym.size();) {
    size_t j = i;
    double w = 0.0;
    while (j < sym.size() && sym[j].first == sym[i].first) w += sym[j++].second;
    const int u = static_cast<int>(sym[i].first >> 32);
    const int v = static_cast<int>(sym[i].first & 0xffffffff);
    g.nbr.push_back(v);
    g.wgt.push_back(w);
    g.offsets[u + 1] += 1;
    i = j;
  }
  for (int u = 0; u < n; ++u) g.offsets[u + 1] += g.offsets[u];
  return g;
}

// Greedy heavy-edge matching in a seeded-permutation visit order; ties on
// weight break to the smallest neighbor id. match[v] == v for singletons.
std::vector<int> HeavyEdgeMatching(const LevelGraph& g, uint64_t seed) {
  std::vector<int> perm(g.n);
  std::iota(perm.begin(), perm.end(), 0);
  Rng rng(seed);
  rng.Shuffle(&perm);
  std::vector<int> match(g.n, -1);
  for (int v : perm) {
    if (match[v] >= 0) continue;
    int best = -1;
    double best_w = 0.0;
    for (int64_t e = g.offsets[v]; e < g.offsets[v + 1]; ++e) {
      const int u = g.nbr[e];
      if (match[u] >= 0 || u == v) continue;
      if (best < 0 || g.wgt[e] > best_w ||
          (g.wgt[e] == best_w && u < best)) {
        best = u;
        best_w = g.wgt[e];
      }
    }
    match[v] = best >= 0 ? best : v;
    if (best >= 0) match[best] = v;
  }
  return match;
}

// Collapses matched pairs. coarse_map[v] = coarse id, assigned in ascending
// order of the pair's smaller endpoint (deterministic).
LevelGraph Coarsen(const LevelGraph& g, const std::vector<int>& match,
                   std::vector<int>* coarse_map) {
  coarse_map->assign(g.n, -1);
  int cn = 0;
  for (int v = 0; v < g.n; ++v) {
    if (v <= match[v]) {
      (*coarse_map)[v] = cn;
      if (match[v] != v) (*coarse_map)[match[v]] = cn;
      ++cn;
    }
  }
  LevelGraph c;
  c.n = cn;
  c.vwgt.assign(cn, 0.0);
  for (int v = 0; v < g.n; ++v) c.vwgt[(*coarse_map)[v]] += g.vwgt[v];
  // Coarse edges: map endpoints, drop internal edges, sort-merge.
  std::vector<std::pair<int64_t, double>> coarse_edges;
  coarse_edges.reserve(g.nbr.size());
  for (int v = 0; v < g.n; ++v) {
    const int cv = (*coarse_map)[v];
    for (int64_t e = g.offsets[v]; e < g.offsets[v + 1]; ++e) {
      const int cu = (*coarse_map)[g.nbr[e]];
      if (cu == cv) continue;
      coarse_edges.push_back(
          {(int64_t{cv} << 32) | static_cast<uint32_t>(cu), g.wgt[e]});
    }
  }
  std::sort(coarse_edges.begin(), coarse_edges.end());
  c.offsets.assign(cn + 1, 0);
  for (size_t i = 0; i < coarse_edges.size();) {
    size_t j = i;
    double w = 0.0;
    while (j < coarse_edges.size() &&
           coarse_edges[j].first == coarse_edges[i].first) {
      w += coarse_edges[j++].second;
    }
    const int u = static_cast<int>(coarse_edges[i].first >> 32);
    c.nbr.push_back(static_cast<int>(coarse_edges[i].first & 0xffffffff));
    c.wgt.push_back(w);
    c.offsets[u + 1] += 1;
    i = j;
  }
  for (int u = 0; u < cn; ++u) c.offsets[u + 1] += c.offsets[u];
  return c;
}

// Greedy balanced initial assignment at the coarsest level: nodes by
// descending weight (ties ascending id) onto the least-loaded part (ties
// lowest part id). Every part receives a node before any part receives two
// whenever there are at least num_parts nodes.
std::vector<int> InitialAssignment(const LevelGraph& g, int num_parts) {
  std::vector<int> order(g.n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return g.vwgt[a] != g.vwgt[b] ? g.vwgt[a] > g.vwgt[b] : a < b;
  });
  std::vector<double> load(num_parts, 0.0);
  std::vector<int> part(g.n, 0);
  for (int v : order) {
    int best = 0;
    for (int p = 1; p < num_parts; ++p) {
      if (load[p] < load[best]) best = p;
    }
    part[v] = best;
    load[best] += g.vwgt[v];
  }
  return part;
}

// One ascending-id sweep of greedy boundary moves. A node moves to the part
// it is most connected to when that strictly reduces the cut (or keeps it
// equal while strictly improving balance), the target stays under `cap`,
// and the source part keeps at least one node.
void RefineLevel(const LevelGraph& g, int num_parts, double cap, int passes,
                 std::vector<int>* part) {
  std::vector<double> load(num_parts, 0.0);
  std::vector<int> count(num_parts, 0);
  for (int v = 0; v < g.n; ++v) {
    load[(*part)[v]] += g.vwgt[v];
    count[(*part)[v]] += 1;
  }
  std::vector<double> conn(num_parts, 0.0);
  for (int pass = 0; pass < passes; ++pass) {
    bool moved = false;
    for (int v = 0; v < g.n; ++v) {
      const int cur = (*part)[v];
      if (count[cur] <= 1) continue;
      std::fill(conn.begin(), conn.end(), 0.0);
      for (int64_t e = g.offsets[v]; e < g.offsets[v + 1]; ++e) {
        conn[(*part)[g.nbr[e]]] += g.wgt[e];
      }
      int best = -1;
      for (int p = 0; p < num_parts; ++p) {
        if (p == cur || load[p] + g.vwgt[v] > cap) continue;
        if (best < 0 || conn[p] > conn[best]) best = p;
      }
      if (best < 0) continue;
      const double gain = conn[best] - conn[cur];
      const bool balances = load[cur] > load[best] + g.vwgt[v];
      if (gain > 0.0 || (gain == 0.0 && balances)) {
        load[cur] -= g.vwgt[v];
        count[cur] -= 1;
        load[best] += g.vwgt[v];
        count[best] += 1;
        (*part)[v] = best;
        moved = true;
      }
    }
    if (!moved) break;
  }
}

// Guarantees every part owns at least one node: each empty part takes the
// smallest-id node of the currently largest part (ties lowest part id).
void FillEmptyParts(int n, int num_parts, std::vector<int>* part) {
  std::vector<int> count(num_parts, 0);
  for (int v = 0; v < n; ++v) count[(*part)[v]] += 1;
  for (int q = 0; q < num_parts; ++q) {
    while (count[q] == 0) {
      int donor = -1;
      for (int p = 0; p < num_parts; ++p) {
        if (count[p] > 1 && (donor < 0 || count[p] > count[donor])) donor = p;
      }
      AHG_CHECK_GE(donor, 0);  // n >= num_parts guarantees a donor
      for (int v = 0; v < n; ++v) {
        if ((*part)[v] == donor) {
          (*part)[v] = q;
          count[donor] -= 1;
          count[q] += 1;
          break;
        }
      }
    }
  }
}

}  // namespace

PartitionMetrics ComputeMetrics(const Graph& graph,
                                const std::vector<int>& part_of,
                                int num_parts) {
  PartitionMetrics m;
  for (const Edge& e : graph.edges()) {
    if (e.src == e.dst) continue;
    m.total_edges += 1;
    if (part_of[e.src] != part_of[e.dst]) m.cut_edges += 1;
  }
  m.edge_cut_fraction =
      static_cast<double>(m.cut_edges) / std::max<int64_t>(m.total_edges, 1);
  std::vector<int> count(num_parts, 0);
  for (int p : part_of) count[p] += 1;
  const int max_count = *std::max_element(count.begin(), count.end());
  const double ideal =
      static_cast<double>(graph.num_nodes()) / std::max(num_parts, 1);
  m.balance_factor = ideal > 0.0 ? max_count / ideal : 0.0;
  return m;
}

StatusOr<std::vector<int>> PartitionGraph(const Graph& graph, int num_parts,
                                          const PartitionerOptions& options,
                                          PartitionMetrics* metrics) {
  AHG_TRACE_SPAN_ARG("partition/partition_graph", graph.num_nodes());
  const int n = graph.num_nodes();
  if (num_parts < 1) {
    return Status::InvalidArgument(
        StrFormat("num_parts %d < 1", num_parts));
  }
  if (num_parts > n) {
    return Status::InvalidArgument(
        StrFormat("num_parts %d exceeds %d nodes", num_parts, n));
  }
  std::vector<int> part(n, 0);
  if (num_parts == 1) {
    if (metrics != nullptr) *metrics = ComputeMetrics(graph, part, 1);
    return part;
  }

  // Coarsening chain. levels[0] is the input graph; maps[l] projects
  // levels[l] node ids onto levels[l + 1].
  std::vector<LevelGraph> levels;
  std::vector<std::vector<int>> maps;
  levels.push_back(FromEdges(n, graph.edges()));
  const int target =
      std::max(num_parts * std::max(options.coarsen_target, 1), num_parts);
  while (levels.back().n > target) {
    const LevelGraph& fine = levels.back();
    const std::vector<int> match = HeavyEdgeMatching(
        fine, options.seed + static_cast<uint64_t>(levels.size()));
    std::vector<int> coarse_map;
    LevelGraph coarse = Coarsen(fine, match, &coarse_map);
    // Stalled matching (isolated nodes, star centers) stops coarsening;
    // so does shrinking below the part count.
    if (coarse.n >= static_cast<int>(0.95 * fine.n) || coarse.n < num_parts) {
      break;
    }
    maps.push_back(std::move(coarse_map));
    levels.push_back(std::move(coarse));
  }

  // Coarsest-level assignment, then refine while projecting back up. The
  // capacity cap is in constituent node counts, so it is the same bound at
  // every level.
  const double cap = (1.0 + options.balance_epsilon) *
                     std::ceil(static_cast<double>(n) / num_parts);
  std::vector<int> assign = InitialAssignment(levels.back(), num_parts);
  RefineLevel(levels.back(), num_parts, cap, options.refinement_passes,
              &assign);
  for (int l = static_cast<int>(maps.size()) - 1; l >= 0; --l) {
    std::vector<int> finer(levels[l].n);
    for (int v = 0; v < levels[l].n; ++v) finer[v] = assign[maps[l][v]];
    assign = std::move(finer);
    RefineLevel(levels[l], num_parts, cap, options.refinement_passes, &assign);
  }
  FillEmptyParts(n, num_parts, &assign);
  if (metrics != nullptr) *metrics = ComputeMetrics(graph, assign, num_parts);
  return assign;
}

}  // namespace ahg::partition
