#include "partition/halo_exchange.h"

#include <algorithm>
#include <cstring>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace ahg::partition {

HaloExchange::HaloExchange(const PartitionPlan* plan) : plan_(plan) {
  AHG_CHECK(plan != nullptr);
  Rebuild();
}

void HaloExchange::Rebuild() {
  const int P = plan_->num_parts;
  routes_.assign(P, std::vector<Route>(P));
  mailbox_.assign(P, std::vector<Mail>(P));
  // Route (src -> dst): dst's halo globals owned by src. halo_globals is
  // ascending, so every route list is ascending global by construction.
  for (int dst = 0; dst < P; ++dst) {
    const PartitionPlan::Part& consumer = plan_->parts[dst];
    for (int g : consumer.halo_globals) {
      const int src = plan_->part_of[g];
      Route& route = routes_[src][dst];
      route.src_locals.push_back(plan_->parts[src].local_of.at(g));
      route.dst_locals.push_back(consumer.local_of.at(g));
      route.globals.push_back(g);
    }
  }
}

void HaloExchange::PostBoundary(int p, const Matrix& state) {
  AHG_TRACE_SPAN_ARG("partition/post_boundary", p);
  for (int dst = 0; dst < plan_->num_parts; ++dst) {
    const Route& route = routes_[p][dst];
    if (route.globals.empty()) continue;
    Mail& mail = mailbox_[dst][p];
    mail.rows = GatherRows(state, route.src_locals);
    mail.dst_locals = route.dst_locals;
  }
}

void HaloExchange::PostBoundaryDirty(int p, const Matrix& state,
                                     const std::vector<int>& dirty_globals) {
  AHG_TRACE_SPAN_ARG("partition/post_boundary",
                     static_cast<int64_t>(dirty_globals.size()));
  for (int dst = 0; dst < plan_->num_parts; ++dst) {
    const Route& route = routes_[p][dst];
    if (route.globals.empty()) continue;
    // Sorted intersection of the route with the dirty set; both ascend
    // global id, so the subset stays in delivery order.
    std::vector<int> src_subset;
    std::vector<int> dst_subset;
    size_t di = 0;
    for (size_t i = 0; i < route.globals.size(); ++i) {
      while (di < dirty_globals.size() &&
             dirty_globals[di] < route.globals[i]) {
        ++di;
      }
      if (di < dirty_globals.size() && dirty_globals[di] == route.globals[i]) {
        src_subset.push_back(route.src_locals[i]);
        dst_subset.push_back(route.dst_locals[i]);
      }
    }
    if (src_subset.empty()) continue;
    Mail& mail = mailbox_[dst][p];
    mail.rows = GatherRows(state, src_subset);
    mail.dst_locals = std::move(dst_subset);
  }
}

void HaloExchange::DeliverHalo(int q, Matrix* state) {
  AHG_TRACE_SPAN_ARG("partition/halo_exchange", q);
  int64_t delivered = 0;
  // Fixed merge order: sources ascend part id (the loop), rows ascend
  // global id (route construction). Each row has one producer, so the
  // writes are disjoint — see file comment for why the order is still
  // pinned down.
  for (int src = 0; src < plan_->num_parts; ++src) {
    Mail& mail = mailbox_[q][src];
    if (mail.dst_locals.empty()) continue;
    for (size_t i = 0; i < mail.dst_locals.size(); ++i) {
      std::memcpy(state->Row(mail.dst_locals[i]), mail.rows.Row(static_cast<int>(i)),
                  static_cast<size_t>(state->cols()) * sizeof(double));
    }
    delivered += static_cast<int64_t>(mail.dst_locals.size());
    mail.rows = Matrix();
    mail.dst_locals.clear();
  }
  if (delivered > 0) {
    rows_exchanged_ += delivered;
    obs::MetricsRegistry::Global()
        .GetCounter("partition.halo_rows_exchanged")
        ->Increment(delivered);
  }
}

}  // namespace ahg::partition
