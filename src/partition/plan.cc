#include "partition/plan.h"

#include <algorithm>
#include <memory>
#include <sstream>
#include <utility>

#include "graph/reorder.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace ahg::partition {

namespace {

// Materializes every per-part structure from a validated assignment.
PartitionPlan Materialize(const Graph& graph, std::vector<int> part_of,
                          int num_parts, uint64_t seed,
                          const PartitionMetrics& metrics) {
  AHG_TRACE_SPAN_ARG("partition/build_plan", graph.num_nodes());
  const SparseMatrix& adj = graph.Adjacency(AdjacencyKind::kSymNorm);
  PartitionPlan plan;
  plan.num_parts = num_parts;
  plan.seed = seed;
  plan.part_of = std::move(part_of);
  plan.metrics = metrics;
  plan.parts.resize(num_parts);

  // Owned sets in ascending global order.
  for (int g = 0; g < graph.num_nodes(); ++g) {
    plan.parts[plan.part_of[g]].locals.push_back(g);
  }
  for (int p = 0; p < num_parts; ++p) {
    PartitionPlan::Part& part = plan.parts[p];
    const std::vector<int> owned_globals = part.locals;  // so far: owned only
    // Halo = off-part columns referenced by any owned row. Collect, sort,
    // dedup; merged with the owned set this defines the local universe.
    std::vector<int> halo;
    for (int g : owned_globals) {
      for (int64_t e = adj.row_ptr()[g]; e < adj.row_ptr()[g + 1]; ++e) {
        const int c = adj.col_idx()[e];
        if (plan.part_of[c] != p) halo.push_back(c);
      }
    }
    std::sort(halo.begin(), halo.end());
    halo.erase(std::unique(halo.begin(), halo.end()), halo.end());
    part.halo_globals = halo;
    plan.halo_nodes_total += static_cast<int64_t>(halo.size());

    part.locals.clear();
    std::merge(owned_globals.begin(), owned_globals.end(), halo.begin(),
               halo.end(), std::back_inserter(part.locals));
    const int n_local = part.num_local();
    part.owned.assign(n_local, 0);
    part.local_of.reserve(n_local);
    for (int l = 0; l < n_local; ++l) {
      const int g = part.locals[l];
      part.local_of.emplace(g, l);
      if (plan.part_of[g] == p) {
        part.owned[l] = 1;
        part.owned_locals.push_back(l);
      }
    }

    // Local CSR: owned rows replicate the global kSymNorm rows verbatim with
    // columns remapped (halo rows stay empty), entry order copied as stored —
    // so the SpMM accumulation order, and with it bitwise conformance,
    // survives partitioning on plain AND locality-reordered graphs (where
    // stored order is ascending external, not ascending internal, and a
    // column re-sort would change the FP accumulation sequence).
    std::vector<int64_t> row_ptr(n_local + 1, 0);
    for (int l : part.owned_locals) {
      const int g = part.locals[l];
      row_ptr[l + 1] = adj.row_ptr()[g + 1] - adj.row_ptr()[g];
    }
    for (int l = 0; l < n_local; ++l) row_ptr[l + 1] += row_ptr[l];
    std::vector<int> col_idx(row_ptr[n_local]);
    std::vector<double> values(row_ptr[n_local]);
    for (int l : part.owned_locals) {
      const int g = part.locals[l];
      int64_t at = row_ptr[l];
      for (int64_t e = adj.row_ptr()[g]; e < adj.row_ptr()[g + 1]; ++e, ++at) {
        col_idx[at] = part.local_of.at(adj.col_idx()[e]);
        values[at] = adj.values()[e];
      }
    }
    part.adj = dyn::DeltaCsr(std::make_shared<const SparseMatrix>(
        SparseMatrix::FromCsrParts(n_local, n_local, std::move(row_ptr),
                                   std::move(col_idx), std::move(values))));
    if (graph.permutation() != nullptr) {
      // Local column rank = external id of the local's global node, so
      // DeltaCsr's ascending-rank invariant keeps holding part-locally.
      auto rank = std::make_shared<std::vector<int>>(n_local);
      for (int l = 0; l < n_local; ++l) {
        (*rank)[l] = graph.permutation()->to_external[part.locals[l]];
      }
      part.adj.SetColRank(std::move(rank));
    }
  }
  return plan;
}

}  // namespace

StatusOr<PartitionPlan> PartitionPlan::Build(const Graph& graph, int num_parts,
                                             const PartitionerOptions& options) {
  PartitionMetrics metrics;
  StatusOr<std::vector<int>> assignment =
      PartitionGraph(graph, num_parts, options, &metrics);
  if (!assignment.ok()) return assignment.status();
  return Materialize(graph, std::move(assignment).value(), num_parts,
                     options.seed, metrics);
}

StatusOr<PartitionPlan> PartitionPlan::BuildFromAssignment(
    const Graph& graph, std::vector<int> part_of, int num_parts) {
  if (num_parts < 1) {
    return Status::InvalidArgument(StrFormat("num_parts %d < 1", num_parts));
  }
  if (static_cast<int>(part_of.size()) != graph.num_nodes()) {
    return Status::InvalidArgument(
        StrFormat("assignment covers %d nodes, graph has %d",
                  static_cast<int>(part_of.size()), graph.num_nodes()));
  }
  for (int g = 0; g < graph.num_nodes(); ++g) {
    if (part_of[g] < 0 || part_of[g] >= num_parts) {
      return Status::InvalidArgument(
          StrFormat("node %d assigned to part %d outside [0, %d)", g,
                    part_of[g], num_parts));
    }
  }
  const PartitionMetrics metrics = ComputeMetrics(graph, part_of, num_parts);
  return Materialize(graph, std::move(part_of), num_parts, /*seed=*/0,
                     metrics);
}

std::string PartitionPlan::Serialize() const {
  std::ostringstream os;
  os << "ahg-partition-plan 1\n";
  os << "nodes " << part_of.size() << " parts " << num_parts << " seed "
     << seed << "\n";
  os << "metrics " << metrics.total_edges << " " << metrics.cut_edges << " "
     << StrFormat("%.17g", metrics.edge_cut_fraction) << " "
     << StrFormat("%.17g", metrics.balance_factor) << "\n";
  os << "assignment";
  for (int p : part_of) os << " " << p;
  os << "\n";
  for (int p = 0; p < num_parts; ++p) {
    const Part& part = parts[p];
    os << "part " << p << " owned";
    for (int l : part.owned_locals) os << " " << part.locals[l];
    os << " halo";
    for (int g : part.halo_globals) os << " " << g;
    os << "\n";
  }
  return os.str();
}

}  // namespace ahg::partition
