#include "partition/partitioned_engine.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "dyn/incremental.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/inference_engine.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace ahg::partition {

namespace {

// Dirty fraction beyond which a version is recomputed from scratch instead
// of refreshed row-by-row (same threshold as dyn::RefreshOptions default).
constexpr double kFullRecomputeFraction = 0.5;

std::vector<int> SortedUnion(const std::vector<int>& a,
                             const std::vector<int>& b) {
  std::vector<int> out;
  out.reserve(a.size() + b.size());
  std::merge(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace

PartitionedEngine::PartitionedEngine(PartitionPlan plan, const Graph& graph)
    : plan_(std::move(plan)),
      exchange_(&plan_),
      perm_(graph.permutation_ptr()),
      feature_dim_(graph.feature_dim()),
      num_classes_(graph.num_classes()) {
  feats_.reserve(plan_.num_parts);
  for (const PartitionPlan::Part& part : plan_.parts) {
    // Owned AND halo feature rows: stage-1 aggregation reads halo columns
    // of the feature matrix, and features never need exchanging — every
    // part copies them straight from the source graph.
    feats_.push_back(GatherRows(graph.features(), part.locals));
  }
  ExportMetricsLocked();
}

StatusOr<std::unique_ptr<PartitionedEngine>> PartitionedEngine::Create(
    const Graph& graph, int num_parts, const Options& options) {
  if (graph.features().rows() != graph.num_nodes()) {
    return Status::InvalidArgument(
        "partitioned engine needs a graph with node features");
  }
  StatusOr<PartitionPlan> plan =
      PartitionPlan::Build(graph, num_parts, options.partitioner);
  if (!plan.ok()) return plan.status();
  return std::unique_ptr<PartitionedEngine>(
      new PartitionedEngine(std::move(plan).value(), graph));
}

StatusOr<std::unique_ptr<PartitionedEngine>> PartitionedEngine::CreateFromPlan(
    const Graph& graph, PartitionPlan plan) {
  if (graph.features().rows() != graph.num_nodes()) {
    return Status::InvalidArgument(
        "partitioned engine needs a graph with node features");
  }
  if (static_cast<int>(plan.part_of.size()) != graph.num_nodes()) {
    return Status::InvalidArgument(
        StrFormat("plan covers %d nodes, graph has %d",
                  static_cast<int>(plan.part_of.size()), graph.num_nodes()));
  }
  return std::unique_ptr<PartitionedEngine>(
      new PartitionedEngine(std::move(plan), graph));
}

bool PartitionedEngine::Supports(const ModelConfig& config) {
  return config.family == ModelFamily::kGcn ||
         config.family == ModelFamily::kSgc;
}

int PartitionedEngine::NumStages(const ModelConfig& config) {
  // GCN stage s = H^(s); SGC stage 1 = Z = XW + b, stages 2..L+1 = A^k Z.
  return config.family == ModelFamily::kGcn ? config.num_layers
                                            : config.num_layers + 1;
}

bool PartitionedEngine::HasHalo() const {
  for (const PartitionPlan::Part& part : plan_.parts) {
    if (!part.halo_globals.empty()) return true;
  }
  return false;
}

uint64_t PartitionedEngine::snapshot_version() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return snapshot_version_;
}

int64_t PartitionedEngine::rows_exchanged() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return exchange_.rows_exchanged();
}

int64_t PartitionedEngine::PartResidentBytes(int p) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  AHG_CHECK(p >= 0 && p < plan_.num_parts);
  const PartitionPlan::Part& part = plan_.parts[p];
  int64_t bytes = feats_[p].size() * static_cast<int64_t>(sizeof(double));
  bytes += (part.adj.rows() + 1) * static_cast<int64_t>(sizeof(int64_t)) +
           part.adj.nnz() *
               static_cast<int64_t>(sizeof(int) + sizeof(double));
  for (const auto& [version, vs] : versions_) {
    (void)version;
    for (const Matrix& state : vs.states[p]) {
      bytes += state.size() * static_cast<int64_t>(sizeof(double));
    }
  }
  return bytes;
}

void PartitionedEngine::ComputeStageRows(VersionState* vs, int p, int s,
                                         const std::vector<int>& rows) {
  if (rows.empty()) return;
  const PartitionPlan::Part& part = plan_.parts[p];
  Matrix& state = vs->states[p][s - 1];
  if (vs->config.family == ModelFamily::kGcn) {
    const Matrix& prev = s == 1 ? feats_[p] : vs->states[p][s - 2];
    Matrix agg = part.adj.SpmmRows(rows, prev);
    Matrix h = dyn::DenseLayerTransform(agg, vs->layer_params[2 * (s - 1)],
                                        vs->layer_params[2 * (s - 1) + 1],
                                        /*relu=*/true);
    ScatterRows(h, rows, &state);
  } else if (s == 1) {  // kSgc linear map: row-local, reads features.
    Matrix z = dyn::DenseLayerTransform(GatherRows(feats_[p], rows),
                                        vs->layer_params[0], vs->layer_params[1],
                                        /*relu=*/false);
    ScatterRows(z, rows, &state);
  } else {  // kSgc propagation hop.
    Matrix h = part.adj.SpmmRows(rows, vs->states[p][s - 2]);
    ScatterRows(h, rows, &state);
  }
}

void PartitionedEngine::RecomputeLocked(VersionState* vs) {
  const int P = plan_.num_parts;
  const int S = NumStages(vs->config);
  vs->states.assign(P, {});
  for (int p = 0; p < P; ++p) {
    vs->states[p].reserve(S);
    for (int s = 0; s < S; ++s) {
      vs->states[p].emplace_back(plan_.parts[p].num_local(),
                                 vs->config.hidden_dim);
    }
  }
  const bool exchange = HasHalo();
  for (int s = 1; s <= S; ++s) {
    for (int p = 0; p < P; ++p) {
      ComputeStageRows(vs, p, s, plan_.parts[p].owned_locals);
    }
    if (!exchange) continue;
    // Fixed order: post all parts ascending, then deliver all parts
    // ascending — the halo rows of stage s are in place before any part
    // reads them at stage s + 1.
    for (int p = 0; p < P; ++p) exchange_.PostBoundary(p, vs->states[p][s - 1]);
    for (int p = 0; p < P; ++p) exchange_.DeliverHalo(p, &vs->states[p][s - 1]);
  }
}

Status PartitionedEngine::WarmLocked(const serve::ServableModel& model) {
  if (versions_.count(model.version) != 0) return Status::OK();
  AHG_TRACE_SPAN_ARG("partition/warm", model.version);
  if (!Supports(model.config)) {
    return Status::InvalidArgument(
        "partitioned engine supports kGcn and kSgc model families only");
  }
  if (model.config.in_dim != feature_dim_) {
    return Status::InvalidArgument(
        StrFormat("model in_dim %d does not match graph feature_dim %d",
                  model.config.in_dim, feature_dim_));
  }
  const int expected =
      model.config.family == ModelFamily::kGcn ? 2 * model.config.num_layers + 2
                                               : 4;
  if (static_cast<int>(model.params.size()) != expected) {
    return Status::InvalidArgument(
        StrFormat("model has %d param tensors, family expects %d",
                  static_cast<int>(model.params.size()), expected));
  }
  VersionState vs;
  vs.config = model.config;
  vs.layer_params.assign(model.params.begin(), model.params.end() - 2);
  RecomputeLocked(&vs);
  versions_.emplace(model.version, std::move(vs));
  return Status::OK();
}

StatusOr<Matrix> PartitionedEngine::GatherAndHead(
    const VersionState& vs, const serve::ServableModel& model,
    const std::vector<int>& nodes) const {
  const int n = static_cast<int>(plan_.part_of.size());
  Matrix hidden(static_cast<int>(nodes.size()), vs.config.hidden_dim);
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i] < 0 || nodes[i] >= n) {
      return Status::InvalidArgument(
          StrFormat("node %d outside [0, %d)", nodes[i], n));
    }
    // Query ids are external; plan globals are internal (see perm_).
    const int g = perm_ != nullptr && nodes[i] < perm_->num_nodes()
                      ? perm_->to_internal[nodes[i]]
                      : nodes[i];
    const int p = plan_.part_of[g];
    const PartitionPlan::Part& part = plan_.parts[p];
    const Matrix& final_state = vs.states[p].back();
    std::memcpy(hidden.Row(static_cast<int>(i)),
                final_state.Row(part.local_of.at(g)),
                static_cast<size_t>(vs.config.hidden_dim) * sizeof(double));
  }
  return serve::ApplyClassifierHead(hidden, model);
}

StatusOr<Matrix> PartitionedEngine::PredictNodes(
    const serve::ServableModel& model, const std::vector<int>& nodes) {
  AHG_TRACE_SPAN_ARG("partition/predict", static_cast<int64_t>(nodes.size()));
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = versions_.find(model.version);
    if (it != versions_.end()) return GatherAndHead(it->second, model, nodes);
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  Status warmed = WarmLocked(model);
  if (!warmed.ok()) return warmed;
  return GatherAndHead(versions_.at(model.version), model, nodes);
}

Status PartitionedEngine::Warm(const serve::ServableModel& model) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  return WarmLocked(model);
}

Status PartitionedEngine::ApplyDelta(const dyn::GraphSnapshot& snap,
                                     const dyn::BatchDelta& delta) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  AHG_TRACE_SPAN_ARG("partition/apply_delta",
                     static_cast<int64_t>(delta.TotalMutations()));
  if (delta.from_version != snapshot_version_ ||
      delta.to_version != snap.version()) {
    return Status::InvalidArgument(
        StrFormat("delta %llu->%llu does not step the engine from version "
                  "%llu onto snapshot %llu",
                  static_cast<unsigned long long>(delta.from_version),
                  static_cast<unsigned long long>(delta.to_version),
                  static_cast<unsigned long long>(snapshot_version_),
                  static_cast<unsigned long long>(snap.version())));
  }
  if (snap.feature_dim() != feature_dim_) {
    return Status::InvalidArgument("snapshot feature_dim changed");
  }
  const int P = plan_.num_parts;
  const int n_old = static_cast<int>(plan_.part_of.size());
  const int n_new = snap.num_nodes();
  const dyn::DeltaCsr& gadj = snap.adjacency();

  // 1. Appended nodes go to the currently smallest part (ties: lowest id).
  std::vector<int64_t> owned_count(P);
  for (int p = 0; p < P; ++p) owned_count[p] = plan_.parts[p].num_owned();
  for (int g = n_old; g < n_new; ++g) {
    int best = 0;
    for (int p = 1; p < P; ++p) {
      if (owned_count[p] < owned_count[best]) best = p;
    }
    plan_.part_of.push_back(best);
    ++owned_count[best];
  }

  // 2. Per-part additions: appended nodes owned there, plus any column of a
  // dirty owned row that is not yet in the part's local universe (new halo
  // from cut-edge creation; appended rows count — their off-part neighbors
  // become halo of the part that received them). Sorted ascending per part.
  std::vector<std::vector<int>> additions(P);
  std::vector<std::vector<int>> new_halo(P);
  for (int g = n_old; g < n_new; ++g) {
    additions[plan_.part_of[g]].push_back(g);
  }
  for (int g : delta.dirty_adj_rows) {
    const int p = plan_.part_of[g];
    const dyn::DeltaCsr::RowRef row = gadj.Row(g);
    for (int64_t e = 0; e < row.nnz; ++e) {
      const int c = row.cols[e];
      if (plan_.parts[p].local_of.count(c) == 0) additions[p].push_back(c);
    }
  }
  bool structural = false;
  for (int p = 0; p < P; ++p) {
    std::sort(additions[p].begin(), additions[p].end());
    additions[p].erase(std::unique(additions[p].begin(), additions[p].end()),
                       additions[p].end());
    if (!additions[p].empty()) structural = true;
    for (int g : additions[p]) {
      if (plan_.part_of[g] != p) new_halo[p].push_back(g);
    }
  }

  // 3. Apply the structural change per part: append when every addition is
  // larger than the current largest local (keeps the ascending-global local
  // numbering without renumbering); otherwise rebuild the part — re-merge
  // the local universe and permute every resident matrix by global id.
  std::vector<uint8_t> rebuilt(P, 0);
  for (int p = 0; p < P; ++p) {
    if (additions[p].empty()) continue;
    PartitionPlan::Part& part = plan_.parts[p];
    const bool append_only =
        part.locals.empty() || additions[p].front() > part.locals.back();
    if (append_only) {
      for (int g : additions[p]) {
        const int l = part.num_local();
        part.locals.push_back(g);
        part.local_of.emplace(g, l);
        const bool owned = plan_.part_of[g] == p;
        part.owned.push_back(owned ? 1 : 0);
        if (owned) {
          part.owned_locals.push_back(l);
        } else {
          part.halo_globals.push_back(g);
        }
      }
      const int n_local = part.num_local();
      part.adj.Grow(n_local, n_local);
      feats_[p] = GrowRows(feats_[p], n_local);
      for (auto& [version, vs] : versions_) {
        (void)version;
        for (Matrix& state : vs.states[p]) state = GrowRows(state, n_local);
      }
      for (int g : additions[p]) {
        std::memcpy(feats_[p].Row(part.local_of.at(g)), snap.FeatureRow(g),
                    static_cast<size_t>(feature_dim_) * sizeof(double));
      }
      continue;
    }

    // Rebuild path: a new halo node falls between existing locals, so the
    // whole local id space shifts. Old rows are carried over by global id;
    // rows new to the part are zero and get their values from the dirty
    // recompute (owned) or the forced halo delivery (halo) below.
    rebuilt[p] = 1;
    const std::vector<int> old_locals = std::move(part.locals);
    const std::unordered_map<int, int> old_local_of = std::move(part.local_of);
    part.locals.clear();
    std::merge(old_locals.begin(), old_locals.end(), additions[p].begin(),
               additions[p].end(), std::back_inserter(part.locals));
    const int n_local = part.num_local();
    part.local_of = {};
    part.local_of.reserve(n_local);
    part.owned.assign(n_local, 0);
    part.owned_locals.clear();
    part.halo_globals.clear();
    for (int l = 0; l < n_local; ++l) {
      const int g = part.locals[l];
      part.local_of.emplace(g, l);
      if (plan_.part_of[g] == p) {
        part.owned[l] = 1;
        part.owned_locals.push_back(l);
      } else {
        part.halo_globals.push_back(g);
      }
    }
    // Entry order copied as stored (not re-sorted by local id), preserving
    // the SpMM accumulation order on plain and reordered graphs alike.
    std::vector<int64_t> row_ptr(n_local + 1, 0);
    for (int l : part.owned_locals) {
      row_ptr[l + 1] = gadj.Row(part.locals[l]).nnz;
    }
    for (int l = 0; l < n_local; ++l) row_ptr[l + 1] += row_ptr[l];
    std::vector<int> csr_cols(row_ptr[n_local]);
    std::vector<double> csr_vals(row_ptr[n_local]);
    for (int l : part.owned_locals) {
      const dyn::DeltaCsr::RowRef row = gadj.Row(part.locals[l]);
      int64_t at = row_ptr[l];
      for (int64_t e = 0; e < row.nnz; ++e, ++at) {
        csr_cols[at] = part.local_of.at(row.cols[e]);
        csr_vals[at] = row.vals[e];
      }
    }
    part.adj = dyn::DeltaCsr(std::make_shared<const SparseMatrix>(
        SparseMatrix::FromCsrParts(n_local, n_local, std::move(row_ptr),
                                   std::move(csr_cols),
                                   std::move(csr_vals))));
    Matrix new_feats(n_local, feature_dim_);
    for (int l = 0; l < n_local; ++l) {
      const int g = part.locals[l];
      auto it = old_local_of.find(g);
      const double* src =
          it != old_local_of.end() ? feats_[p].Row(it->second)
                                   : snap.FeatureRow(g);
      std::memcpy(new_feats.Row(l), src,
                  static_cast<size_t>(feature_dim_) * sizeof(double));
    }
    feats_[p] = std::move(new_feats);
    for (auto& [version, vs] : versions_) {
      (void)version;
      for (Matrix& state : vs.states[p]) {
        Matrix permuted(n_local, state.cols());
        for (int l = 0; l < n_local; ++l) {
          auto it = old_local_of.find(part.locals[l]);
          if (it == old_local_of.end()) continue;  // new row, stays zero
          std::memcpy(permuted.Row(l), state.Row(it->second),
                      static_cast<size_t>(state.cols()) * sizeof(double));
        }
        state = std::move(permuted);
      }
    }
  }

  // Parts whose local universe changed need a fresh column-rank vector so
  // DeltaCsr's ascending-rank invariant keeps holding locally (rank of
  // local l = external id of its global; identity when unreordered).
  if (perm_ != nullptr) {
    auto rank_of_global = [&](int g) {
      return g < perm_->num_nodes() ? perm_->to_external[g] : g;
    };
    for (int p = 0; p < P; ++p) {
      if (additions[p].empty()) continue;
      PartitionPlan::Part& part = plan_.parts[p];
      auto rank = std::make_shared<std::vector<int>>(part.num_local());
      for (int l = 0; l < part.num_local(); ++l) {
        (*rank)[l] = rank_of_global(part.locals[l]);
      }
      part.adj.SetColRank(std::move(rank));
    }
  }

  // 4. Patch dirty adjacency rows on their owning part (rebuilt parts are
  // already fresh). The override copies the global row's stored entry order
  // (ascending rank), which column remapping preserves.
  for (int g : delta.dirty_adj_rows) {
    const int p = plan_.part_of[g];
    if (rebuilt[p]) continue;
    PartitionPlan::Part& part = plan_.parts[p];
    const int l = part.local_of.at(g);
    const dyn::DeltaCsr::RowRef row = gadj.Row(g);
    std::vector<int> cols(row.nnz);
    std::vector<double> vals(row.vals, row.vals + row.nnz);
    for (int64_t e = 0; e < row.nnz; ++e) {
      cols[e] = part.local_of.at(row.cols[e]);
    }
    part.adj.OverrideRow(l, std::move(cols), std::move(vals));
  }

  // 5. Dirty feature rows land on EVERY part holding the row (owner or
  // halo): stage-1 aggregation reads halo feature rows locally.
  for (int g : delta.dirty_feature_rows) {
    for (int p = 0; p < P; ++p) {
      auto it = plan_.parts[p].local_of.find(g);
      if (it == plan_.parts[p].local_of.end()) continue;
      std::memcpy(feats_[p].Row(it->second), snap.FeatureRow(g),
                  static_cast<size_t>(feature_dim_) * sizeof(double));
    }
  }

  if (structural) {
    plan_.halo_nodes_total = 0;
    for (const PartitionPlan::Part& part : plan_.parts) {
      plan_.halo_nodes_total += part.num_halo();
    }
    exchange_.Rebuild();
  }

  // 6. Forced halo set: globals some part now holds as halo but whose
  // hidden states it has never received. For GCN every such node is in
  // every dirty level (its adjacency row changed), but SGC's Z level is
  // feature-dirty only — so the union is forced into every post set.
  std::vector<int> forced;
  for (int p = 0; p < P; ++p) {
    forced.insert(forced.end(), new_halo[p].begin(), new_halo[p].end());
  }
  std::sort(forced.begin(), forced.end());
  forced.erase(std::unique(forced.begin(), forced.end()), forced.end());

  // 7. Refresh every warmed version over the per-layer dirty sets.
  const bool exchange = HasHalo();
  for (auto& [version, vs] : versions_) {
    (void)version;
    const std::vector<std::vector<int>> dirty =
        dyn::PerLayerDirtyRows(vs.config, gadj, delta);
    const double fraction =
        n_new > 0 ? static_cast<double>(dirty.back().size()) / n_new : 0.0;
    if (fraction > kFullRecomputeFraction) {
      RecomputeLocked(&vs);
      continue;
    }
    const int S = NumStages(vs.config);
    AHG_CHECK_EQ(static_cast<int>(dirty.size()), S);
    for (int s = 1; s <= S; ++s) {
      const std::vector<int>& level = dirty[s - 1];
      for (int p = 0; p < P; ++p) {
        std::vector<int> rows;  // owned dirty rows, ascending local == global
        const PartitionPlan::Part& part = plan_.parts[p];
        for (int g : level) {
          if (plan_.part_of[g] == p) rows.push_back(part.local_of.at(g));
        }
        ComputeStageRows(&vs, p, s, rows);
      }
      if (!exchange) continue;
      const std::vector<int> post = SortedUnion(level, forced);
      for (int p = 0; p < P; ++p) {
        exchange_.PostBoundaryDirty(p, vs.states[p][s - 1], post);
      }
      for (int p = 0; p < P; ++p) {
        exchange_.DeliverHalo(p, &vs.states[p][s - 1]);
      }
    }
  }

  for (PartitionPlan::Part& part : plan_.parts) part.adj.MaybeCompact();
  snapshot_version_ = snap.version();
  obs::MetricsRegistry::Global()
      .GetCounter("partition.deltas_applied")
      ->Increment(1);
  ExportMetricsLocked();
  return Status::OK();
}

void PartitionedEngine::ExportMetricsLocked() const {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.GetGauge("partition.parts")->Set(plan_.num_parts);
  reg.GetGauge("partition.cut_edges")
      ->Set(static_cast<double>(plan_.metrics.cut_edges));
  reg.GetGauge("partition.imbalance")->Set(plan_.metrics.balance_factor);
  reg.GetGauge("partition.halo_nodes")
      ->Set(static_cast<double>(plan_.halo_nodes_total));
}

}  // namespace ahg::partition
