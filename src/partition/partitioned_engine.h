// Inference over a K-part PartitionPlan with bitwise conformance to the
// lone InferenceEngine.
//
// Memory is the point: each part holds only its owned nodes plus a halo
// appendix — features, local adjacency, and per-version layer states all
// scale ~1/K + halo overhead instead of K full replicas (bench/
// partition_scale proves the bound with AllocTracker). Compute runs the
// same per-row kernels as the single engine: at every propagation stage
// each part computes its owned rows with DeltaCsr::SpmmRows + the shared
// dyn::DenseLayerTransform, then boundary rows cross the HaloExchange in a
// fixed merge order. Because each part's local universe is numbered in
// ascending global id (see plan.h), local adjacency rows preserve the
// global entry order, the subset-exact kernels reproduce the global rows
// bitwise, and a query answered here is memcmp-identical to the lone
// engine — the conformance matrix partition_test asserts across synthetic
// families, part counts, and thread counts.
//
// Families: kGcn and kSgc (the row-local layer structures), the same gate
// as dyn::IncrementalPropagator::Supports. Everything else is rejected
// with InvalidArgument — callers fall back to the replicated path.
//
// Dynamic graphs: ApplyDelta routes a mutation batch through the plan —
// adjacency rows are patched copy-on-write on their owning part, new nodes
// are appended to the least-loaded part, new halo dependencies are
// materialized, and each resident model version is refreshed over the
// L-hop dirty sets (dyn::PerLayerDirtyRows) with per-stage dirty halo
// exchange. Orphaned halo rows (references removed by edge deletions) are
// kept; they are unused and merely occupy their row until a rebuild.
#ifndef AUTOHENS_PARTITION_PARTITIONED_ENGINE_H_
#define AUTOHENS_PARTITION_PARTITIONED_ENGINE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "dyn/snapshot.h"
#include "graph/graph.h"
#include "partition/halo_exchange.h"
#include "partition/plan.h"
#include "serve/model_registry.h"
#include "serve/node_predictor.h"
#include "util/status.h"

namespace ahg::partition {

class PartitionedEngine : public serve::NodePredictor {
 public:
  struct Options {
    PartitionerOptions partitioner;
  };

  // Builds the plan for `graph` and gathers per-part features. The graph
  // must carry features and outlives nothing — all state is copied into
  // the parts (that is the product: no full replica is retained).
  static StatusOr<std::unique_ptr<PartitionedEngine>> Create(
      const Graph& graph, int num_parts, const Options& options = {});

  // Same, over a pre-built plan (tests, external assignments).
  static StatusOr<std::unique_ptr<PartitionedEngine>> CreateFromPlan(
      const Graph& graph, PartitionPlan plan);

  // True for the model families the partitioned forward understands.
  static bool Supports(const ModelConfig& config);

  // Class probabilities for `nodes` (rows in input order): each node is
  // resolved to its owning part, the final-stage hidden row is gathered,
  // and the classifier head applied — bitwise identical to the lone
  // engine's answer. Warms the version on first use.
  StatusOr<Matrix> PredictNodes(const serve::ServableModel& model,
                                const std::vector<int>& nodes) override;

  // Computes and parks all layer states for `model` (rollout warm-up).
  Status Warm(const serve::ServableModel& model);

  // Applies one mutation step: `delta` must describe snapshot_version() ->
  // snap.version(). Refreshes every warmed model version incrementally
  // (full per-part recompute when the dirty fraction exceeds 0.5).
  Status ApplyDelta(const dyn::GraphSnapshot& snap,
                    const dyn::BatchDelta& delta);

  const PartitionPlan& plan() const { return plan_; }
  int num_parts() const { return plan_.num_parts; }
  // Snapshot version the parts currently reflect (0 = the Create graph).
  uint64_t snapshot_version() const;
  int64_t rows_exchanged() const;

  // Analytic resident bytes of part p: features + local CSR + all warmed
  // layer states. The bench cross-checks this against AllocTracker deltas.
  int64_t PartResidentBytes(int p) const;

 private:
  // Per warmed model version: config, layer params (head excluded), and
  // states[part][stage] where stage s holds the part-local matrix of
  // pipeline stage s + 1 (stage 0 input is the shared feature matrix).
  struct VersionState {
    ModelConfig config;
    std::vector<Matrix> layer_params;
    std::vector<std::vector<Matrix>> states;
  };

  PartitionedEngine(PartitionPlan plan, const Graph& graph);

  static int NumStages(const ModelConfig& config);
  bool HasHalo() const;

  Status WarmLocked(const serve::ServableModel& model);
  // Recomputes every stage of `vs` from the current features/adjacency.
  void RecomputeLocked(VersionState* vs);
  // Computes owned `rows` (local ids, ascending) of stage `s` (1-based)
  // for part p and scatters them into the stage matrix.
  void ComputeStageRows(VersionState* vs, int p, int s,
                        const std::vector<int>& rows);
  StatusOr<Matrix> GatherAndHead(const VersionState& vs,
                                 const serve::ServableModel& model,
                                 const std::vector<int>& nodes) const;
  void ExportMetricsLocked() const;

  mutable std::shared_mutex mu_;
  PartitionPlan plan_;
  HaloExchange exchange_;
  // Locality permutation of the Create graph (null when unreordered). Plan
  // "global" ids are INTERNAL ids; query node ids are external and translate
  // here. Nodes appended by ApplyDelta map to themselves (identity tail),
  // matching GraphSnapshot's ExtendedTo convention.
  std::shared_ptr<const NodePermutation> perm_;
  int feature_dim_ = 0;
  int num_classes_ = 0;
  uint64_t snapshot_version_ = 0;
  std::vector<Matrix> feats_;  // [part] n_local x feature_dim, halo included
  std::map<int, VersionState> versions_;
};

}  // namespace ahg::partition

#endif  // AUTOHENS_PARTITION_PARTITIONED_ENGINE_H_
