// In-process mailbox exchanging boundary hidden-state rows between parts.
//
// At every propagation layer each part computes only its OWNED rows; the
// halo rows it reads at the next layer are produced by their owner parts
// and delivered here. Each halo row has exactly one producer (its owning
// part), so delivery is a copy, not a reduction — but the merge order is
// still fixed by contract: DeliverHalo drains source parts in ascending
// part id and writes rows in ascending global id. Holding the order fixed
// means that even if a future transport made delivery concurrent or turned
// copies into accumulations, the P-part forward would remain byte-stable —
// the fixed-reduction-order discipline DESIGN.md describes, and the reason
// the partitioned forward is memcmp-identical to the lone engine.
//
// Not thread-safe: the engine serializes its layer loop (post all parts,
// then deliver all parts) on one thread; the SpMM inside each layer is
// where the thread pool parallelism lives.
#ifndef AUTOHENS_PARTITION_HALO_EXCHANGE_H_
#define AUTOHENS_PARTITION_HALO_EXCHANGE_H_

#include <cstdint>
#include <vector>

#include "partition/plan.h"
#include "tensor/matrix.h"

namespace ahg::partition {

class HaloExchange {
 public:
  // `plan` must outlive the exchange. Routes are derived from the plan's
  // halo lists; call Rebuild() after the plan mutates.
  explicit HaloExchange(const PartitionPlan* plan);

  // Recomputes all routes from the current plan (after a mutation batch
  // changed halo sets or appended nodes).
  void Rebuild();

  // Gathers the boundary rows of part p's state (n_local x dim) — the owned
  // rows some other part holds as halo — into that consumer's mailbox.
  void PostBoundary(int p, const Matrix& state);

  // Like PostBoundary but posts only boundary rows whose global id is in
  // `dirty_globals` (sorted ascending) — the incremental-refresh path.
  void PostBoundaryDirty(int p, const Matrix& state,
                         const std::vector<int>& dirty_globals);

  // Merges every mailbox posted for part q into its halo rows: source parts
  // in ascending part id, rows in ascending global id. Clears q's mailbox.
  void DeliverHalo(int q, Matrix* state);

  // Total halo rows delivered since construction (also exported as the
  // partition.halo_rows_exchanged counter).
  int64_t rows_exchanged() const { return rows_exchanged_; }

 private:
  // Rows part `src` owns that part `dst` holds as halo, ascending global.
  struct Route {
    std::vector<int> src_locals;
    std::vector<int> dst_locals;
    std::vector<int> globals;
  };
  struct Mail {
    Matrix rows;
    std::vector<int> dst_locals;
  };

  const PartitionPlan* plan_;
  std::vector<std::vector<Route>> routes_;   // [src][dst]
  std::vector<std::vector<Mail>> mailbox_;   // [dst][src]
  int64_t rows_exchanged_ = 0;
};

}  // namespace ahg::partition

#endif  // AUTOHENS_PARTITION_HALO_EXCHANGE_H_
