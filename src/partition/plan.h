// PartitionPlan: the materialized form of an edge-cut assignment that the
// partitioned execution plane runs on.
//
// Per part, the plan holds a local node universe and a local CSR:
//  - locals: the part's owned nodes plus its halo (ghost) nodes — every
//    off-part node referenced by an owned node's adjacency row — listed in
//    ascending GLOBAL id. Local id = rank in this list. This "merged
//    global-order" numbering is the key bitwise-conformance decision:
//    ascending-local equals ascending-global, so a local adjacency row
//    lists exactly the entries of the global row in the same order, and
//    the per-row SpMM kernels (fixed ascending-entry accumulation) produce
//    owned rows bitwise identical to the lone-engine product.
//  - adj: an n_local x n_local DeltaCsr. Owned rows replicate the global
//    kSymNorm rows with columns remapped to local ids; halo rows are empty
//    (a part never computes a halo node — it receives its hidden states
//    through the HaloExchange). DeltaCsr so dynamic mutation batches patch
//    individual rows copy-on-write, same as the single-engine path.
//
// Plans are deterministic byte-for-byte: Build runs the seeded partitioner
// (single-threaded) and every derived structure is assembled by sorted
// traversal, so Serialize() output is identical across runs and thread
// counts for the same (graph, num_parts, seed).
#ifndef AUTOHENS_PARTITION_PLAN_H_
#define AUTOHENS_PARTITION_PLAN_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "dyn/delta_csr.h"
#include "graph/graph.h"
#include "partition/partitioner.h"
#include "util/status.h"

namespace ahg::partition {

struct PartitionPlan {
  struct Part {
    // Local -> global id, ascending; locals.size() = n_local.
    std::vector<int> locals;
    // owned[l] != 0 iff locals[l] is owned (not halo) here.
    std::vector<uint8_t> owned;
    // Local ids of owned nodes, ascending (the rows this part computes).
    std::vector<int> owned_locals;
    // Global ids of halo nodes, ascending.
    std::vector<int> halo_globals;
    // Global -> local for this part's universe only.
    std::unordered_map<int, int> local_of;
    // n_local x n_local local adjacency (see file comment).
    dyn::DeltaCsr adj;

    int num_local() const { return static_cast<int>(locals.size()); }
    int num_owned() const { return static_cast<int>(owned_locals.size()); }
    int num_halo() const { return static_cast<int>(halo_globals.size()); }
  };

  int num_parts = 0;
  uint64_t seed = 0;
  std::vector<int> part_of;  // global -> owning part
  PartitionMetrics metrics;
  int64_t halo_nodes_total = 0;  // sum of per-part halo counts
  std::vector<Part> parts;

  // Partitions `graph` with the seeded multilevel partitioner and
  // materializes the per-part structures. The plan reads the graph's
  // kSymNorm adjacency — the matrix GCN/SGC propagation multiplies by.
  static StatusOr<PartitionPlan> Build(const Graph& graph, int num_parts,
                                       const PartitionerOptions& options = {});

  // Same materialization over a caller-supplied assignment (tests, external
  // partitioners). Validates size and range; empty parts are permitted.
  static StatusOr<PartitionPlan> BuildFromAssignment(const Graph& graph,
                                                     std::vector<int> part_of,
                                                     int num_parts);

  // Canonical text form ("ahg-partition-plan 1"): assignment, metrics, and
  // per-part owned/halo lists. Byte-identical for identical plans — the
  // determinism tests memcmp this.
  std::string Serialize() const;
};

}  // namespace ahg::partition

#endif  // AUTOHENS_PARTITION_PLAN_H_
