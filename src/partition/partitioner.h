// Deterministic multilevel edge-cut partitioner (METIS-style, in-process).
//
// Three classic phases: greedy heavy-edge matching coarsens the graph level
// by level, a balanced greedy assignment partitions the coarsest level, and
// FM-style boundary refinement improves the cut while projecting back up.
// Everything is single-threaded and seeded: the only randomness is the
// Rng(seed + level)-shuffled visit order of the matching pass, so the same
// (graph, num_parts, seed) triple produces byte-identical assignments on
// every run and at every thread-pool size — the property the partition
// plan's Serialize() determinism test memcmps.
//
// Quality is reported, not assumed: edge-cut fraction (cut edges / total
// edges, self loops excluded) and balance factor (heaviest part over ideal
// n/P). The refinement pass never moves a node when the move would overflow
// the (1 + balance_epsilon) * ceil(n/P) capacity or empty its source part,
// and a final rebalance step guarantees every part owns at least one node
// whenever num_parts <= num_nodes.
#ifndef AUTOHENS_PARTITION_PARTITIONER_H_
#define AUTOHENS_PARTITION_PARTITIONER_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace ahg::partition {

struct PartitionerOptions {
  uint64_t seed = 1;
  // Parts may hold up to (1 + balance_epsilon) * ceil(n / P) nodes.
  double balance_epsilon = 0.1;
  // Boundary-refinement sweeps per level during uncoarsening.
  int refinement_passes = 4;
  // Stop coarsening once the graph has at most num_parts * coarsen_target
  // nodes (or matching stalls).
  int coarsen_target = 32;
};

struct PartitionMetrics {
  int64_t total_edges = 0;  // distinct undirected edges, self loops excluded
  int64_t cut_edges = 0;    // edges whose endpoints land in different parts
  double edge_cut_fraction = 0.0;  // cut_edges / max(total_edges, 1)
  double balance_factor = 0.0;     // max part size / (n / P)
};

// Node -> part assignment for `graph` into `num_parts` parts.
// InvalidArgument when num_parts < 1 or num_parts > num_nodes. Every part
// is guaranteed non-empty. Self loops are ignored; parallel orientations of
// an undirected edge count once.
StatusOr<std::vector<int>> PartitionGraph(const Graph& graph, int num_parts,
                                          const PartitionerOptions& options,
                                          PartitionMetrics* metrics = nullptr);

// Metrics of an existing assignment (validation, BuildFromAssignment).
PartitionMetrics ComputeMetrics(const Graph& graph,
                                const std::vector<int>& part_of,
                                int num_parts);

}  // namespace ahg::partition

#endif  // AUTOHENS_PARTITION_PARTITIONER_H_
