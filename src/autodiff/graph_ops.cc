#include "autodiff/graph_ops.h"

#include <algorithm>
#include <cmath>

#include "obs/trace.h"

namespace ahg {

Var Spmm(const SparseMatrix& a, const Var& x) {
  Matrix out = a.Spmm(x->value);
  const SparseMatrix* a_ptr = &a;
  // The backward runs A^T * grad through the cached explicit transpose,
  // which keeps every output row owned by a single worker (bitwise
  // deterministic row-parallelism, no atomics). Build the cache now, while
  // we are outside any parallel region, so the first backward pass is not
  // serialized behind the lazy construction.
  if (x->requires_grad) a.TransposedCached();
  return MakeOpNode(std::move(out), {x}, [a_ptr, x](const Node& n) {
    if (!x->requires_grad) return;
    x->EnsureGrad();
    x->grad.AddInPlace(a_ptr->SpmmTransposed(n.grad));
  });
}

Var NeighborMaxPool(const SparseMatrix& a, const Var& x) {
  AHG_CHECK_EQ(x->rows(), a.cols());
  AHG_TRACE_SPAN_ARG("autodiff/neighbor_max_pool", a.nnz() * x->cols());
  const int d = x->cols();
  Matrix out(a.rows(), d);
  // argmax[r * d + c] = source row that produced out(r, c); -1 if row empty.
  std::vector<int> argmax(static_cast<size_t>(a.rows()) * d, -1);
  for (int r = 0; r < a.rows(); ++r) {
    double* orow = out.Row(r);
    bool first = true;
    for (int64_t i = a.row_ptr()[r]; i < a.row_ptr()[r + 1]; ++i) {
      const int j = a.col_idx()[i];
      const double* xrow = x->value.Row(j);
      for (int c = 0; c < d; ++c) {
        if (first || xrow[c] > orow[c]) {
          orow[c] = xrow[c];
          argmax[static_cast<size_t>(r) * d + c] = j;
        }
      }
      first = false;
    }
    if (first) {
      for (int c = 0; c < d; ++c) orow[c] = 0.0;
    }
  }
  return MakeOpNode(std::move(out), {x},
                    [x, argmax = std::move(argmax), d](const Node& n) {
                      if (!x->requires_grad) return;
                      x->EnsureGrad();
                      for (int r = 0; r < n.grad.rows(); ++r) {
                        const double* g = n.grad.Row(r);
                        for (int c = 0; c < d; ++c) {
                          const int j = argmax[static_cast<size_t>(r) * d + c];
                          if (j >= 0) x->grad(j, c) += g[c];
                        }
                      }
                    });
}

Var GatAggregate(const SparseMatrix& a, const Var& s_src, const Var& s_dst,
                 const Var& h, double leaky_slope) {
  AHG_CHECK_EQ(s_src->cols(), 1);
  AHG_CHECK_EQ(s_dst->cols(), 1);
  AHG_CHECK_EQ(s_src->rows(), h->rows());
  AHG_CHECK_EQ(s_dst->rows(), a.rows());
  AHG_CHECK_EQ(h->rows(), a.cols());
  AHG_TRACE_SPAN_ARG("autodiff/gat_aggregate", a.nnz() * h->cols());
  const int d = h->cols();
  const int64_t nnz = a.nnz();
  // Cached per-edge state for backward: softmax weights and the sign of the
  // pre-activation logit (LeakyReLU derivative).
  std::vector<double> alpha(nnz, 0.0);
  std::vector<double> lrelu_deriv(nnz, 1.0);
  Matrix out(a.rows(), d);
  for (int r = 0; r < a.rows(); ++r) {
    const int64_t begin = a.row_ptr()[r];
    const int64_t end = a.row_ptr()[r + 1];
    if (begin == end) continue;
    double max_e = -1e300;
    for (int64_t i = begin; i < end; ++i) {
      const int j = a.col_idx()[i];
      const double pre = s_dst->value(r, 0) + s_src->value(j, 0);
      const double e = pre > 0.0 ? pre : leaky_slope * pre;
      lrelu_deriv[i] = pre > 0.0 ? 1.0 : leaky_slope;
      alpha[i] = e;  // temporarily store the logit
      max_e = std::max(max_e, e);
    }
    double total = 0.0;
    for (int64_t i = begin; i < end; ++i) {
      alpha[i] = std::exp(alpha[i] - max_e);
      total += alpha[i];
    }
    double* orow = out.Row(r);
    for (int64_t i = begin; i < end; ++i) {
      alpha[i] /= total;
      const double* hrow = h->value.Row(a.col_idx()[i]);
      for (int c = 0; c < d; ++c) orow[c] += alpha[i] * hrow[c];
    }
  }
  const SparseMatrix* a_ptr = &a;
  return MakeOpNode(
      std::move(out), {s_src, s_dst, h},
      [a_ptr, s_src, s_dst, h, alpha = std::move(alpha),
       lrelu_deriv = std::move(lrelu_deriv), d](const Node& n) {
        const bool need_scores = s_src->requires_grad || s_dst->requires_grad;
        if (h->requires_grad) h->EnsureGrad();
        if (s_src->requires_grad) s_src->EnsureGrad();
        if (s_dst->requires_grad) s_dst->EnsureGrad();
        for (int r = 0; r < a_ptr->rows(); ++r) {
          const int64_t begin = a_ptr->row_ptr()[r];
          const int64_t end = a_ptr->row_ptr()[r + 1];
          if (begin == end) continue;
          const double* g = n.grad.Row(r);
          // dL/dalpha_i = g . h[j_i]; softmax backward needs the
          // alpha-weighted mean of those dots within the row.
          double weighted_dot = 0.0;
          for (int64_t i = begin; i < end; ++i) {
            const double* hrow = h->value.Row(a_ptr->col_idx()[i]);
            double dot = 0.0;
            for (int c = 0; c < d; ++c) dot += g[c] * hrow[c];
            if (h->requires_grad) {
              double* hg = h->grad.Row(a_ptr->col_idx()[i]);
              for (int c = 0; c < d; ++c) hg[c] += alpha[i] * g[c];
            }
            if (need_scores) {
              weighted_dot += alpha[i] * dot;
            }
          }
          if (!need_scores) continue;
          for (int64_t i = begin; i < end; ++i) {
            const int j = a_ptr->col_idx()[i];
            const double* hrow = h->value.Row(j);
            double dot = 0.0;
            for (int c = 0; c < d; ++c) dot += g[c] * hrow[c];
            const double de = alpha[i] * (dot - weighted_dot);
            const double dpre = de * lrelu_deriv[i];
            if (s_dst->requires_grad) s_dst->grad(r, 0) += dpre;
            if (s_src->requires_grad) s_src->grad(j, 0) += dpre;
          }
        }
      });
}

Var SegmentPool(const Var& x, const std::vector<int>& segment_ids,
                int num_segments, bool mean) {
  AHG_CHECK_EQ(static_cast<int>(segment_ids.size()), x->rows());
  const int d = x->cols();
  std::vector<double> inv_count(num_segments, 0.0);
  for (int id : segment_ids) {
    AHG_CHECK(id >= 0 && id < num_segments);
    inv_count[id] += 1.0;
  }
  for (auto& c : inv_count) c = (mean && c > 0.0) ? 1.0 / c : 1.0;
  Matrix out(num_segments, d);
  for (int r = 0; r < x->rows(); ++r) {
    const double w = inv_count[segment_ids[r]];
    const double* src = x->value.Row(r);
    double* dst = out.Row(segment_ids[r]);
    for (int c = 0; c < d; ++c) dst[c] += w * src[c];
  }
  return MakeOpNode(std::move(out), {x},
                    [x, segment_ids, inv_count = std::move(inv_count),
                     d](const Node& n) {
                      if (!x->requires_grad) return;
                      x->EnsureGrad();
                      for (int r = 0; r < x->rows(); ++r) {
                        const double w = inv_count[segment_ids[r]];
                        const double* g = n.grad.Row(segment_ids[r]);
                        double* xg = x->grad.Row(r);
                        for (int c = 0; c < d; ++c) xg[c] += w * g[c];
                      }
                    });
}

}  // namespace ahg

namespace ahg {

Var CosineAttentionAggregate(const SparseMatrix& a, const Var& h,
                             const Var& beta) {
  AHG_CHECK_EQ(h->rows(), a.rows());
  AHG_CHECK_EQ(h->rows(), a.cols());
  AHG_CHECK(beta->rows() == 1 && beta->cols() == 1);
  const int d = h->cols();
  const int64_t nnz = a.nnz();
  const double b = beta->value(0, 0);

  // Regularized row norms: n_i = sqrt(|h_i|^2 + delta), so dn/dh = h/n is
  // exact and zero rows stay finite.
  constexpr double kDelta = 1e-12;
  std::vector<double> norm(h->rows());
  for (int i = 0; i < h->rows(); ++i) {
    double ss = kDelta;
    const double* row = h->value.Row(i);
    for (int c = 0; c < d; ++c) ss += row[c] * row[c];
    norm[i] = std::sqrt(ss);
  }

  std::vector<double> cosine(nnz, 0.0);
  std::vector<double> alpha(nnz, 0.0);
  Matrix out(a.rows(), d);
  for (int r = 0; r < a.rows(); ++r) {
    const int64_t begin = a.row_ptr()[r];
    const int64_t end = a.row_ptr()[r + 1];
    if (begin == end) continue;
    const double* hr = h->value.Row(r);
    double max_e = -1e300;
    for (int64_t i = begin; i < end; ++i) {
      const double* hj = h->value.Row(a.col_idx()[i]);
      double dot = 0.0;
      for (int c = 0; c < d; ++c) dot += hr[c] * hj[c];
      cosine[i] = dot / (norm[r] * norm[a.col_idx()[i]]);
      alpha[i] = b * cosine[i];
      max_e = std::max(max_e, alpha[i]);
    }
    double total = 0.0;
    for (int64_t i = begin; i < end; ++i) {
      alpha[i] = std::exp(alpha[i] - max_e);
      total += alpha[i];
    }
    double* orow = out.Row(r);
    for (int64_t i = begin; i < end; ++i) {
      alpha[i] /= total;
      const double* hj = h->value.Row(a.col_idx()[i]);
      for (int c = 0; c < d; ++c) orow[c] += alpha[i] * hj[c];
    }
  }

  const SparseMatrix* a_ptr = &a;
  return MakeOpNode(
      std::move(out), {h, beta},
      [a_ptr, h, beta, b, d, norm = std::move(norm),
       cosine = std::move(cosine), alpha = std::move(alpha)](const Node& n) {
        if (h->requires_grad) h->EnsureGrad();
        if (beta->requires_grad) beta->EnsureGrad();
        for (int r = 0; r < a_ptr->rows(); ++r) {
          const int64_t begin = a_ptr->row_ptr()[r];
          const int64_t end = a_ptr->row_ptr()[r + 1];
          if (begin == end) continue;
          const double* g = n.grad.Row(r);
          const double* hr = h->value.Row(r);
          // t_j = g . h_j and the alpha-weighted mean for the softmax
          // backward.
          double weighted_t = 0.0;
          for (int64_t i = begin; i < end; ++i) {
            const double* hj = h->value.Row(a_ptr->col_idx()[i]);
            double t = 0.0;
            for (int c = 0; c < d; ++c) t += g[c] * hj[c];
            weighted_t += alpha[i] * t;
            if (h->requires_grad) {
              // Value path.
              double* hg = h->grad.Row(a_ptr->col_idx()[i]);
              for (int c = 0; c < d; ++c) hg[c] += alpha[i] * g[c];
            }
          }
          for (int64_t i = begin; i < end; ++i) {
            const int j = a_ptr->col_idx()[i];
            const double* hj = h->value.Row(j);
            double t = 0.0;
            for (int c = 0; c < d; ++c) t += g[c] * hj[c];
            const double de = alpha[i] * (t - weighted_t);
            if (beta->requires_grad) beta->grad(0, 0) += de * cosine[i];
            if (!h->requires_grad) continue;
            const double q = b * de;  // dL/dcosine
            const double inv_nrnj = 1.0 / (norm[r] * norm[j]);
            double* hgr = h->grad.Row(r);
            double* hgj = h->grad.Row(j);
            const double cr = cosine[i] / (norm[r] * norm[r]);
            const double cj = cosine[i] / (norm[j] * norm[j]);
            for (int c = 0; c < d; ++c) {
              hgr[c] += q * (hj[c] * inv_nrnj - cr * hr[c]);
              hgj[c] += q * (hr[c] * inv_nrnj - cj * hj[c]);
            }
          }
        }
      });
}

}  // namespace ahg
