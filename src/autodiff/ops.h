// Differentiable dense operations. Each op returns a new Var whose backward
// closure propagates gradients to operands that require them. Every op here
// is covered by a finite-difference gradient test.
#ifndef AUTOHENS_AUTODIFF_OPS_H_
#define AUTOHENS_AUTODIFF_OPS_H_

#include <vector>

#include "autodiff/variable.h"

namespace ahg {

class Rng;

// Elementwise arithmetic (shapes must match).
Var Add(const Var& a, const Var& b);
Var Sub(const Var& a, const Var& b);
Var CWiseMul(const Var& a, const Var& b);

// out = alpha * a.
Var ScalarMul(const Var& a, double alpha);

// Sum of >= 1 same-shape variables.
Var AddN(const std::vector<Var>& terms);

// Arithmetic mean of >= 1 same-shape variables (the 1/K aggregation of
// Eqn 3 in the paper).
Var MeanOfVars(const std::vector<Var>& terms);

// C = A * B.
Var MatMul(const Var& a, const Var& b);

// Adds a 1 x cols bias row to every row of m.
Var AddRowVector(const Var& m, const Var& bias);

// Fused relu(x * W + b); `b` may be a null Var for bias-free layers. One op
// node and one n x out buffer replace the MatMul -> AddRowVector -> Relu
// chain (three outputs plus a captured activation copy). Forward and
// backward replicate the unfused chain's per-element arithmetic and
// accumulation order exactly, so results are bitwise identical to the
// three-op form. nn/Linear::ApplyRelu selects this when FusionEnabled().
Var LinearRelu(const Var& x, const Var& w, const Var& b);

// Activations.
Var Relu(const Var& a);
Var LeakyRelu(const Var& a, double negative_slope);
Var Elu(const Var& a);
Var Tanh(const Var& a);
Var Sigmoid(const Var& a);

// Row-wise (log-)softmax.
Var RowSoftmaxOp(const Var& a);
Var RowLogSoftmaxOp(const Var& a);

// Inverted dropout: at train time zeroes entries with probability p and
// scales survivors by 1/(1-p); identity at eval time.
Var Dropout(const Var& a, double p, bool training, Rng* rng);

// Horizontal concatenation (all operands share a row count).
Var ConcatCols(const std::vector<Var>& parts);

// out[i, :] = a[indices[i], :]. Backward scatter-adds.
Var GatherRows(const Var& a, const std::vector<int>& indices);

// out[i, 0] = dot(a[i, :], b[i, :]) — the dot-product link decoder.
Var RowDot(const Var& a, const Var& b);

// out = weights(0, idx) * m. Used to assemble softmax-weighted layer sums
// where `weights` itself is a differentiable 1 x L vector.
Var ScaleByEntry(const Var& m, const Var& weights, int idx);

// softmax(alpha_raw) over a 1 x L vector, then sum_l w_l * terms[l]
// (the continuous relaxation of Eqn 7).
Var SoftmaxWeightedSum(const std::vector<Var>& terms, const Var& alpha_raw);

// Elementwise maximum; gradient routes to whichever operand won (ties go to
// `a`). Used by the jumping-knowledge max aggregator.
Var CWiseMax(const Var& a, const Var& b);

// out[r, c] = m[r, c] * col[r, 0] — per-row scaling by an n x 1 gate
// (DAGNN's adaptive hop gating).
Var MulColBroadcast(const Var& m, const Var& col);

// Scalar sum of all entries (mostly for tests).
Var SumAll(const Var& a);

// Mean cross-entropy of `logits` rows listed in `mask` against integer
// `labels` (fused log-softmax + NLL; numerically stable).
Var MaskedCrossEntropy(const Var& logits, const std::vector<int>& labels,
                       const std::vector<int>& mask);

// Mean negative log-likelihood where `probs` already holds probabilities
// (used for the ensemble loss of Eqn 5, whose input is a convex combination
// of per-model softmax outputs). Probabilities are clamped at 1e-12.
Var MaskedNllFromProbs(const Var& probs, const std::vector<int>& labels,
                       const std::vector<int>& mask);

// Mean binary cross-entropy with logits; `logits` is m x 1, labels in {0,1}.
Var BceWithLogits(const Var& logits, const std::vector<double>& labels);

}  // namespace ahg

#endif  // AUTOHENS_AUTODIFF_OPS_H_
