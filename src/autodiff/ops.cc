#include "autodiff/ops.h"

#include <cmath>

#include "kernels/kernel_ops.h"
#include "tensor/pool.h"
#include "util/rng.h"

namespace ahg {
namespace {

void AccumulateInto(const Var& target, const Matrix& delta) {
  if (!target->requires_grad) return;
  target->EnsureGrad();
  target->grad.AddInPlace(delta);
}

void AccumulateScaled(const Var& target, double alpha, const Matrix& delta) {
  if (!target->requires_grad) return;
  target->EnsureGrad();
  target->grad.AxpyInPlace(alpha, delta);
}

}  // namespace

Var Add(const Var& a, const Var& b) {
  Matrix out = ahg::Add(a->value, b->value);
  return MakeOpNode(std::move(out), {a, b}, [a, b](const Node& n) {
    AccumulateInto(a, n.grad);
    AccumulateInto(b, n.grad);
  });
}

Var Sub(const Var& a, const Var& b) {
  Matrix out = ahg::Sub(a->value, b->value);
  return MakeOpNode(std::move(out), {a, b}, [a, b](const Node& n) {
    AccumulateInto(a, n.grad);
    AccumulateScaled(b, -1.0, n.grad);
  });
}

Var CWiseMul(const Var& a, const Var& b) {
  Matrix out = ahg::CWiseMul(a->value, b->value);
  return MakeOpNode(std::move(out), {a, b}, [a, b](const Node& n) {
    if (a->requires_grad) AccumulateInto(a, ahg::CWiseMul(n.grad, b->value));
    if (b->requires_grad) AccumulateInto(b, ahg::CWiseMul(n.grad, a->value));
  });
}

Var ScalarMul(const Var& a, double alpha) {
  Matrix out = Scale(a->value, alpha);
  return MakeOpNode(std::move(out), {a}, [a, alpha](const Node& n) {
    AccumulateScaled(a, alpha, n.grad);
  });
}

Var AddN(const std::vector<Var>& terms) {
  AHG_CHECK(!terms.empty());
  Matrix out = terms[0]->value;
  for (size_t i = 1; i < terms.size(); ++i) out.AddInPlace(terms[i]->value);
  return MakeOpNode(std::move(out), terms, [terms](const Node& n) {
    for (const auto& t : terms) AccumulateInto(t, n.grad);
  });
}

Var MeanOfVars(const std::vector<Var>& terms) {
  return ScalarMul(AddN(terms), 1.0 / static_cast<double>(terms.size()));
}

Var MatMul(const Var& a, const Var& b) {
  Matrix out = ahg::MatMul(a->value, b->value);
  return MakeOpNode(std::move(out), {a, b}, [a, b](const Node& n) {
    // dA = G * B^T ; dB = A^T * G.
    if (a->requires_grad) AccumulateInto(a, MatMulTransB(n.grad, b->value));
    if (b->requires_grad) AccumulateInto(b, MatMulTransA(a->value, n.grad));
  });
}

Var AddRowVector(const Var& m, const Var& bias) {
  AHG_CHECK_EQ(bias->rows(), 1);
  AHG_CHECK_EQ(bias->cols(), m->cols());
  Matrix out = m->value;
  for (int r = 0; r < out.rows(); ++r) {
    double* row = out.Row(r);
    const double* b = bias->value.Row(0);
    for (int c = 0; c < out.cols(); ++c) row[c] += b[c];
  }
  return MakeOpNode(std::move(out), {m, bias}, [m, bias](const Node& n) {
    AccumulateInto(m, n.grad);
    if (bias->requires_grad) {
      bias->EnsureGrad();
      double* bg = bias->grad.Row(0);
      for (int r = 0; r < n.grad.rows(); ++r) {
        const double* g = n.grad.Row(r);
        for (int c = 0; c < n.grad.cols(); ++c) bg[c] += g[c];
      }
    }
  });
}

Var LinearRelu(const Var& x, const Var& w, const Var& b) {
  AHG_CHECK_EQ(x->cols(), w->rows());
  if (b) {
    AHG_CHECK_EQ(b->rows(), 1);
    AHG_CHECK_EQ(b->cols(), w->cols());
  }
  Matrix out = ahg::MatMul(x->value, w->value);
  // Single in-place pass over the product: the additions and the max are
  // the exact per-element arithmetic AddRowVector and Relu would perform on
  // their own output buffers. The dispatched kernel's max(v, +0.0) matches
  // `v > 0 ? v : 0.0` bit-for-bit (including -0.0 and NaN inputs).
  const kernels::TierOps& ops = kernels::ActiveOps();
  const double* bias = b ? b->value.Row(0) : nullptr;
  for (int r = 0; r < out.rows(); ++r) {
    ops.bias_relu_row(out.Row(r), bias, out.cols());
  }
  std::vector<Var> parents =
      b ? std::vector<Var>{x, w, b} : std::vector<Var>{x, w};
  return MakeOpNode(
      std::move(out), std::move(parents), [x, w, b](const Node& n) {
        // gp reproduces the pre-activation node's grad from the unfused
        // chain: zero-initialized, then += g * 1[out > 0] — the same
        // products (including g * 0.0 sign behavior) and the same
        // accumulate-into-zero the Relu backward performs. out > 0 iff the
        // pre-activation was > 0, so masking from n.value is exact.
        Matrix gp(n.grad.rows(), n.grad.cols());
        for (int64_t i = 0; i < gp.size(); ++i) {
          gp.data()[i] +=
              n.grad.data()[i] * (n.value.data()[i] > 0.0 ? 1.0 : 0.0);
        }
        // Parent order matches the unfused reverse-topo sweep: bias (from
        // the AddRowVector node), then x, then w (from the MatMul node).
        if (b && b->requires_grad) {
          b->EnsureGrad();
          double* bg = b->grad.Row(0);
          for (int r = 0; r < gp.rows(); ++r) {
            const double* g = gp.Row(r);
            for (int c = 0; c < gp.cols(); ++c) bg[c] += g[c];
          }
        }
        if (x->requires_grad) AccumulateInto(x, MatMulTransB(gp, w->value));
        if (w->requires_grad) AccumulateInto(w, MatMulTransA(x->value, gp));
      });
}

namespace {

// Shared shape of unary elementwise ops: forward maps value, backward scales
// incoming grad by a derivative computed from (input, output).
template <typename FwdFn, typename BwdFn>
Var UnaryElementwise(const Var& a, FwdFn fwd, BwdFn deriv) {
  if (InInferenceMode()) {
    // The node comes out detached, so no backward capture is needed. When
    // this handle is the node's sole owner (a chained temporary like
    // act(lin.Apply(h))), the fusion fast path transforms the value in
    // place instead of allocating: the donor node is unobservable after
    // this call. Callers inside fusion regions must not keep reading a
    // solely-owned Var's value after passing it to an elementwise op.
    if (FusionEnabled() && a.use_count() == 1 && !a->value.empty()) {
      Matrix out = std::move(a->value);
      for (int64_t i = 0; i < out.size(); ++i) {
        out.data()[i] = fwd(out.data()[i]);
      }
      return MakeOpNode(std::move(out), {}, nullptr);
    }
    Matrix out(a->rows(), a->cols());
    for (int64_t i = 0; i < out.size(); ++i) {
      out.data()[i] = fwd(a->value.data()[i]);
    }
    return MakeOpNode(std::move(out), {}, nullptr);
  }
  Matrix out(a->rows(), a->cols());
  for (int64_t i = 0; i < out.size(); ++i) {
    out.data()[i] = fwd(a->value.data()[i]);
  }
  // Capture the output value for derivative forms expressed via f(x).
  Matrix out_copy = out;
  return MakeOpNode(
      std::move(out), {a},
      [a, deriv, out_copy = std::move(out_copy)](const Node& n) {
        if (!a->requires_grad) return;
        a->EnsureGrad();
        for (int64_t i = 0; i < n.grad.size(); ++i) {
          a->grad.data()[i] += n.grad.data()[i] *
                               deriv(a->value.data()[i], out_copy.data()[i]);
        }
      });
}

}  // namespace

Var Relu(const Var& a) {
  return UnaryElementwise(
      a, [](double x) { return x > 0.0 ? x : 0.0; },
      [](double x, double) { return x > 0.0 ? 1.0 : 0.0; });
}

Var LeakyRelu(const Var& a, double negative_slope) {
  return UnaryElementwise(
      a,
      [negative_slope](double x) { return x > 0.0 ? x : negative_slope * x; },
      [negative_slope](double x, double) {
        return x > 0.0 ? 1.0 : negative_slope;
      });
}

Var Elu(const Var& a) {
  return UnaryElementwise(
      a, [](double x) { return x > 0.0 ? x : std::expm1(x); },
      [](double x, double y) { return x > 0.0 ? 1.0 : y + 1.0; });
}

Var Tanh(const Var& a) {
  return UnaryElementwise(a, [](double x) { return std::tanh(x); },
                          [](double, double y) { return 1.0 - y * y; });
}

Var Sigmoid(const Var& a) {
  return UnaryElementwise(
      a, [](double x) { return 1.0 / (1.0 + std::exp(-x)); },
      [](double, double y) { return y * (1.0 - y); });
}

Var RowSoftmaxOp(const Var& a) {
  Matrix out = RowSoftmax(a->value);
  Matrix out_copy = out;
  return MakeOpNode(
      std::move(out), {a}, [a, s = std::move(out_copy)](const Node& n) {
        if (!a->requires_grad) return;
        a->EnsureGrad();
        // dx_j = s_j * (g_j - sum_k g_k s_k) per row.
        for (int r = 0; r < n.grad.rows(); ++r) {
          const double* g = n.grad.Row(r);
          const double* srow = s.Row(r);
          double dot = 0.0;
          for (int c = 0; c < n.grad.cols(); ++c) dot += g[c] * srow[c];
          double* ag = a->grad.Row(r);
          for (int c = 0; c < n.grad.cols(); ++c) {
            ag[c] += srow[c] * (g[c] - dot);
          }
        }
      });
}

Var RowLogSoftmaxOp(const Var& a) {
  Matrix out = RowLogSoftmax(a->value);
  return MakeOpNode(std::move(out), {a}, [a](const Node& n) {
    if (!a->requires_grad) return;
    a->EnsureGrad();
    // dx = g - softmax(x) * rowsum(g).
    Matrix s = RowSoftmax(a->value);
    for (int r = 0; r < n.grad.rows(); ++r) {
      const double* g = n.grad.Row(r);
      const double* srow = s.Row(r);
      double gsum = 0.0;
      for (int c = 0; c < n.grad.cols(); ++c) gsum += g[c];
      double* ag = a->grad.Row(r);
      for (int c = 0; c < n.grad.cols(); ++c) ag[c] += g[c] - srow[c] * gsum;
    }
  });
}

Var Dropout(const Var& a, double p, bool training, Rng* rng) {
  if (!training || p <= 0.0) return a;
  AHG_CHECK_LT(p, 1.0);
  const double keep_scale = 1.0 / (1.0 - p);
  Matrix mask(a->rows(), a->cols());
  Matrix out(a->rows(), a->cols());
  for (int64_t i = 0; i < out.size(); ++i) {
    const double m = rng->Bernoulli(p) ? 0.0 : keep_scale;
    mask.data()[i] = m;
    out.data()[i] = a->value.data()[i] * m;
  }
  return MakeOpNode(std::move(out), {a},
                    [a, mask = std::move(mask)](const Node& n) {
                      if (!a->requires_grad) return;
                      a->EnsureGrad();
                      for (int64_t i = 0; i < n.grad.size(); ++i) {
                        a->grad.data()[i] += n.grad.data()[i] * mask.data()[i];
                      }
                    });
}

Var ConcatCols(const std::vector<Var>& parts) {
  AHG_CHECK(!parts.empty());
  const int rows = parts[0]->rows();
  int total_cols = 0;
  for (const auto& p : parts) {
    AHG_CHECK_EQ(p->rows(), rows);
    total_cols += p->cols();
  }
  Matrix out(rows, total_cols);
  int offset = 0;
  for (const auto& p : parts) {
    for (int r = 0; r < rows; ++r) {
      const double* src = p->value.Row(r);
      double* dst = out.Row(r) + offset;
      for (int c = 0; c < p->cols(); ++c) dst[c] = src[c];
    }
    offset += p->cols();
  }
  return MakeOpNode(std::move(out), parts, [parts](const Node& n) {
    int off = 0;
    for (const auto& p : parts) {
      if (p->requires_grad) {
        p->EnsureGrad();
        for (int r = 0; r < n.grad.rows(); ++r) {
          const double* g = n.grad.Row(r) + off;
          double* pg = p->grad.Row(r);
          for (int c = 0; c < p->cols(); ++c) pg[c] += g[c];
        }
      }
      off += p->cols();
    }
  });
}

Var GatherRows(const Var& a, const std::vector<int>& indices) {
  Matrix out(static_cast<int>(indices.size()), a->cols());
  for (size_t i = 0; i < indices.size(); ++i) {
    AHG_CHECK(indices[i] >= 0 && indices[i] < a->rows());
    const double* src = a->value.Row(indices[i]);
    double* dst = out.Row(static_cast<int>(i));
    for (int c = 0; c < a->cols(); ++c) dst[c] = src[c];
  }
  return MakeOpNode(std::move(out), {a}, [a, indices](const Node& n) {
    if (!a->requires_grad) return;
    a->EnsureGrad();
    for (size_t i = 0; i < indices.size(); ++i) {
      const double* g = n.grad.Row(static_cast<int>(i));
      double* ag = a->grad.Row(indices[i]);
      for (int c = 0; c < n.grad.cols(); ++c) ag[c] += g[c];
    }
  });
}

Var RowDot(const Var& a, const Var& b) {
  AHG_CHECK(a->rows() == b->rows() && a->cols() == b->cols());
  Matrix out(a->rows(), 1);
  for (int r = 0; r < a->rows(); ++r) {
    const double* arow = a->value.Row(r);
    const double* brow = b->value.Row(r);
    double dot = 0.0;
    for (int c = 0; c < a->cols(); ++c) dot += arow[c] * brow[c];
    out(r, 0) = dot;
  }
  return MakeOpNode(std::move(out), {a, b}, [a, b](const Node& n) {
    for (int r = 0; r < n.grad.rows(); ++r) {
      const double g = n.grad(r, 0);
      if (a->requires_grad) {
        a->EnsureGrad();
        double* ag = a->grad.Row(r);
        const double* brow = b->value.Row(r);
        for (int c = 0; c < a->cols(); ++c) ag[c] += g * brow[c];
      }
      if (b->requires_grad) {
        b->EnsureGrad();
        double* bg = b->grad.Row(r);
        const double* arow = a->value.Row(r);
        for (int c = 0; c < b->cols(); ++c) bg[c] += g * arow[c];
      }
    }
  });
}

Var ScaleByEntry(const Var& m, const Var& weights, int idx) {
  AHG_CHECK_EQ(weights->rows(), 1);
  AHG_CHECK(idx >= 0 && idx < weights->cols());
  const double w = weights->value(0, idx);
  Matrix out = Scale(m->value, w);
  return MakeOpNode(std::move(out), {m, weights},
                    [m, weights, idx, w](const Node& n) {
                      if (m->requires_grad) AccumulateScaled(m, w, n.grad);
                      if (weights->requires_grad) {
                        weights->EnsureGrad();
                        double dot = 0.0;
                        for (int64_t i = 0; i < n.grad.size(); ++i) {
                          dot += n.grad.data()[i] * m->value.data()[i];
                        }
                        weights->grad(0, idx) += dot;
                      }
                    });
}

Var SoftmaxWeightedSum(const std::vector<Var>& terms, const Var& alpha_raw) {
  AHG_CHECK_EQ(alpha_raw->rows(), 1);
  AHG_CHECK_EQ(alpha_raw->cols(), static_cast<int>(terms.size()));
  Var w = RowSoftmaxOp(alpha_raw);
  std::vector<Var> scaled;
  scaled.reserve(terms.size());
  for (size_t l = 0; l < terms.size(); ++l) {
    scaled.push_back(ScaleByEntry(terms[l], w, static_cast<int>(l)));
  }
  return AddN(scaled);
}

Var CWiseMax(const Var& a, const Var& b) {
  AHG_CHECK(a->rows() == b->rows() && a->cols() == b->cols());
  Matrix out(a->rows(), a->cols());
  // take_a[i] records the winner for gradient routing.
  std::vector<bool> take_a(static_cast<size_t>(a->value.size()));
  for (int64_t i = 0; i < out.size(); ++i) {
    const double av = a->value.data()[i];
    const double bv = b->value.data()[i];
    take_a[i] = av >= bv;
    out.data()[i] = take_a[i] ? av : bv;
  }
  return MakeOpNode(std::move(out), {a, b},
                    [a, b, take_a = std::move(take_a)](const Node& n) {
                      if (a->requires_grad) a->EnsureGrad();
                      if (b->requires_grad) b->EnsureGrad();
                      for (int64_t i = 0; i < n.grad.size(); ++i) {
                        if (take_a[i]) {
                          if (a->requires_grad)
                            a->grad.data()[i] += n.grad.data()[i];
                        } else if (b->requires_grad) {
                          b->grad.data()[i] += n.grad.data()[i];
                        }
                      }
                    });
}

Var MulColBroadcast(const Var& m, const Var& col) {
  AHG_CHECK_EQ(col->cols(), 1);
  AHG_CHECK_EQ(col->rows(), m->rows());
  Matrix out(m->rows(), m->cols());
  for (int r = 0; r < m->rows(); ++r) {
    const double s = col->value(r, 0);
    const double* src = m->value.Row(r);
    double* dst = out.Row(r);
    for (int c = 0; c < m->cols(); ++c) dst[c] = s * src[c];
  }
  return MakeOpNode(std::move(out), {m, col}, [m, col](const Node& n) {
    for (int r = 0; r < n.grad.rows(); ++r) {
      const double* g = n.grad.Row(r);
      if (m->requires_grad) {
        m->EnsureGrad();
        const double s = col->value(r, 0);
        double* mg = m->grad.Row(r);
        for (int c = 0; c < n.grad.cols(); ++c) mg[c] += s * g[c];
      }
      if (col->requires_grad) {
        col->EnsureGrad();
        const double* mrow = m->value.Row(r);
        double dot = 0.0;
        for (int c = 0; c < n.grad.cols(); ++c) dot += g[c] * mrow[c];
        col->grad(r, 0) += dot;
      }
    }
  });
}

Var SumAll(const Var& a) {
  Matrix out(1, 1);
  out(0, 0) = a->value.Sum();
  return MakeOpNode(std::move(out), {a}, [a](const Node& n) {
    if (!a->requires_grad) return;
    a->EnsureGrad();
    const double g = n.grad(0, 0);
    for (int64_t i = 0; i < a->grad.size(); ++i) a->grad.data()[i] += g;
  });
}

Var MaskedCrossEntropy(const Var& logits, const std::vector<int>& labels,
                       const std::vector<int>& mask) {
  AHG_CHECK(!mask.empty());
  AHG_CHECK_EQ(static_cast<int>(labels.size()), logits->rows());
  double loss = 0.0;
  if (FusionEnabled()) {
    // Masked rows only — skips materializing the full n x C log-softmax.
    // Per row this is the exact arithmetic RowLogSoftmax performs (rows are
    // independent there), so the loss is bitwise identical to the unfused
    // branch below.
    for (int idx : mask) {
      AHG_CHECK(idx >= 0 && idx < logits->rows());
      const int y = labels[idx];
      AHG_CHECK(y >= 0 && y < logits->cols());
      const double* row = logits->value.Row(idx);
      double max_val = row[0];
      for (int c = 1; c < logits->cols(); ++c)
        max_val = std::max(max_val, row[c]);
      double total = 0.0;
      for (int c = 0; c < logits->cols(); ++c)
        total += std::exp(row[c] - max_val);
      const double log_total = std::log(total) + max_val;
      loss -= row[y] - log_total;
    }
  } else {
    Matrix logp = RowLogSoftmax(logits->value);
    for (int idx : mask) {
      AHG_CHECK(idx >= 0 && idx < logits->rows());
      const int y = labels[idx];
      AHG_CHECK(y >= 0 && y < logits->cols());
      loss -= logp(idx, y);
    }
  }
  const double inv_m = 1.0 / static_cast<double>(mask.size());
  Matrix out(1, 1);
  out(0, 0) = loss * inv_m;
  return MakeOpNode(
      std::move(out), {logits}, [logits, labels, mask, inv_m](const Node& n) {
        if (!logits->requires_grad) return;
        logits->EnsureGrad();
        const double g = n.grad(0, 0) * inv_m;
        // d/dlogits = (softmax - onehot) / |mask| on masked rows.
        for (int idx : mask) {
          const double* row = logits->value.Row(idx);
          double max_val = row[0];
          for (int c = 1; c < logits->cols(); ++c)
            max_val = std::max(max_val, row[c]);
          double total = 0.0;
          for (int c = 0; c < logits->cols(); ++c)
            total += std::exp(row[c] - max_val);
          double* lg = logits->grad.Row(idx);
          for (int c = 0; c < logits->cols(); ++c) {
            const double p = std::exp(row[c] - max_val) / total;
            lg[c] += g * (p - (c == labels[idx] ? 1.0 : 0.0));
          }
        }
      });
}

namespace {
constexpr double kProbFloor = 1e-12;
}  // namespace

Var MaskedNllFromProbs(const Var& probs, const std::vector<int>& labels,
                       const std::vector<int>& mask) {
  AHG_CHECK(!mask.empty());
  double loss = 0.0;
  for (int idx : mask) {
    const int y = labels[idx];
    AHG_CHECK(y >= 0 && y < probs->cols());
    loss -= std::log(std::max(probs->value(idx, y), kProbFloor));
  }
  const double inv_m = 1.0 / static_cast<double>(mask.size());
  Matrix out(1, 1);
  out(0, 0) = loss * inv_m;
  return MakeOpNode(std::move(out), {probs},
                    [probs, labels, mask, inv_m](const Node& n) {
                      if (!probs->requires_grad) return;
                      probs->EnsureGrad();
                      const double g = n.grad(0, 0) * inv_m;
                      for (int idx : mask) {
                        const int y = labels[idx];
                        const double p =
                            std::max(probs->value(idx, y), kProbFloor);
                        probs->grad(idx, y) -= g / p;
                      }
                    });
}

Var BceWithLogits(const Var& logits, const std::vector<double>& labels) {
  AHG_CHECK_EQ(logits->cols(), 1);
  AHG_CHECK_EQ(static_cast<int>(labels.size()), logits->rows());
  const int m = logits->rows();
  double loss = 0.0;
  for (int r = 0; r < m; ++r) {
    const double x = logits->value(r, 0);
    const double y = labels[r];
    // Stable form: max(x,0) - x*y + log(1 + exp(-|x|)).
    loss += std::max(x, 0.0) - x * y + std::log1p(std::exp(-std::abs(x)));
  }
  const double inv_m = 1.0 / m;
  Matrix out(1, 1);
  out(0, 0) = loss * inv_m;
  return MakeOpNode(std::move(out), {logits},
                    [logits, labels, inv_m](const Node& n) {
                      if (!logits->requires_grad) return;
                      logits->EnsureGrad();
                      const double g = n.grad(0, 0) * inv_m;
                      for (int r = 0; r < logits->rows(); ++r) {
                        const double x = logits->value(r, 0);
                        const double p = 1.0 / (1.0 + std::exp(-x));
                        logits->grad(r, 0) += g * (p - labels[r]);
                      }
                    });
}

}  // namespace ahg
