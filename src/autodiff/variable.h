// Tape-based reverse-mode automatic differentiation.
//
// A Var is a shared handle to a Node holding a dense value, an (optionally
// lazily allocated) gradient, its parents in the computation DAG and a
// backward closure. Ops (autodiff/ops.h, autodiff/graph_ops.h) build the DAG
// dynamically; Backward() runs a topological sweep from a scalar root.
//
// Gradients accumulate (+=) so a Var consumed by several ops receives the sum
// of its consumers' contributions, matching the chain rule for shared
// subexpressions.
#ifndef AUTOHENS_AUTODIFF_VARIABLE_H_
#define AUTOHENS_AUTODIFF_VARIABLE_H_

#include <functional>
#include <memory>
#include <vector>

#include "tensor/matrix.h"

namespace ahg {

struct Node;
using Var = std::shared_ptr<Node>;

struct Node {
  Matrix value;
  Matrix grad;  // Same shape as value once EnsureGrad() runs; else empty.
  bool requires_grad = false;
  std::vector<Var> parents;
  // Propagates this node's grad into its parents' grads. Null for leaves.
  std::function<void(const Node&)> backward_fn;

  int rows() const { return value.rows(); }
  int cols() const { return value.cols(); }

  // Allocates grad as zeros if not yet present.
  void EnsureGrad() {
    if (grad.rows() != value.rows() || grad.cols() != value.cols()) {
      grad = Matrix(value.rows(), value.cols());
    }
  }

  void ZeroGrad() {
    if (!grad.empty()) grad.SetZero();
  }
};

// Leaf with gradient tracking (a trainable parameter).
Var MakeParam(Matrix value);

// Leaf without gradient tracking (input features, cached predictions).
Var MakeConstant(Matrix value);

// Internal: creates an op output node. `requires_grad` is inferred from
// parents; callers provide the backward closure. Inside an inference-mode
// region the node is created detached: no parents, no backward closure,
// requires_grad = false.
Var MakeOpNode(Matrix value, std::vector<Var> parents,
               std::function<void(const Node&)> backward_fn);

// RAII tape switch for the frozen serving path. While a ScopedInferenceMode
// is live on this thread, every op output is detached from the DAG, so
// intermediate activations free as soon as their local handles die and a
// forward pass retains no backward closures. Forward values are unchanged —
// ops only differ in what bookkeeping they keep. Nestable; thread-local.
class ScopedInferenceMode {
 public:
  ScopedInferenceMode();
  ~ScopedInferenceMode();

  ScopedInferenceMode(const ScopedInferenceMode&) = delete;
  ScopedInferenceMode& operator=(const ScopedInferenceMode&) = delete;
};

// True while a ScopedInferenceMode is live on this thread.
bool InInferenceMode();

// Runs reverse-mode accumulation from `root`, which must be a 1x1 scalar.
// Seeds d(root)/d(root) = 1 and fills `grad` on every reachable node with
// requires_grad. Gradients are accumulated on top of existing values, so
// call ZeroGrad on parameters (see nn/parameter_store.h) between steps.
void Backward(const Var& root);

}  // namespace ahg

#endif  // AUTOHENS_AUTODIFF_VARIABLE_H_
