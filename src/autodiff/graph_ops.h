// Differentiable operations that consume graph structure. The SparseMatrix
// operands are constants (adjacency never carries gradients); callers must
// keep them alive for the duration of the backward pass — in practice the
// Graph owns them and outlives every training loop.
#ifndef AUTOHENS_AUTODIFF_GRAPH_OPS_H_
#define AUTOHENS_AUTODIFF_GRAPH_OPS_H_

#include <vector>

#include "autodiff/variable.h"
#include "tensor/sparse_matrix.h"

namespace ahg {

// Y = A * X with constant sparse A; backward propagates A^T * dY into X.
Var Spmm(const SparseMatrix& a, const Var& x);

// out[r, c] = max over stored entries (r, j) of x[j, c]; rows with no
// entries yield 0. Backward routes each gradient to the arg-max source row
// (GraphSAGE-maxpool aggregation).
Var NeighborMaxPool(const SparseMatrix& a, const Var& x);

// Single-head GAT aggregation. `a`'s row r lists the source nodes j feeding
// node r (in-adjacency; include self-loops before calling). Attention logits
// e_{rj} = LeakyReLU(s_dst[r] + s_src[j], slope), normalized by softmax over
// row r, then out[r] = sum_j alpha_{rj} * h[j]. Gradients flow into s_src,
// s_dst and h. `s_src`/`s_dst` are n x 1; `h` is n x d.
Var GatAggregate(const SparseMatrix& a, const Var& s_src, const Var& s_dst,
                 const Var& h, double leaky_slope);

// AGNN-style propagation (Thekumparampil et al., 2018): attention logits
// are scaled cosine similarities, e_{rj} = beta * cos(h_r, h_j) over the
// stored entries (r, j) of `a` (in-adjacency with self loops), normalized
// by softmax per row; out[r] = sum_j alpha_{rj} h[j]. `beta` is a trainable
// 1 x 1 scalar. Gradients flow into both h (value and similarity paths)
// and beta.
Var CosineAttentionAggregate(const SparseMatrix& a, const Var& h,
                             const Var& beta);

// Pools node rows into per-graph rows: out[s] = sum (or mean) of x rows with
// segment_ids[r] == s. Used for graph-level readout.
Var SegmentPool(const Var& x, const std::vector<int>& segment_ids,
                int num_segments, bool mean);

}  // namespace ahg

#endif  // AUTOHENS_AUTODIFF_GRAPH_OPS_H_
