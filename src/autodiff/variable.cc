#include "autodiff/variable.h"

#include <unordered_set>

#include "obs/trace.h"
#include "tensor/pool.h"

namespace ahg {
namespace {

// Depth of nested ScopedInferenceMode regions on this thread.
thread_local int tl_inference_depth = 0;

}  // namespace

ScopedInferenceMode::ScopedInferenceMode() { ++tl_inference_depth; }

ScopedInferenceMode::~ScopedInferenceMode() { --tl_inference_depth; }

bool InInferenceMode() { return tl_inference_depth > 0; }

Var MakeParam(Matrix value) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  node->requires_grad = true;
  return node;
}

Var MakeConstant(Matrix value) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  node->requires_grad = false;
  return node;
}

Var MakeOpNode(Matrix value, std::vector<Var> parents,
               std::function<void(const Node&)> backward_fn) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  if (InInferenceMode()) return node;  // detached: no tape, no parents
  for (const auto& p : parents) {
    if (p->requires_grad) {
      node->requires_grad = true;
      break;
    }
  }
  node->parents = std::move(parents);
  if (node->requires_grad) node->backward_fn = std::move(backward_fn);
  return node;
}

namespace {

// Iterative post-order DFS; returns nodes so that every node appears after
// all nodes that depend on it when the list is traversed in reverse.
void TopoSort(const Var& root, std::vector<Node*>* order) {
  std::unordered_set<Node*> visited;
  struct Frame {
    Node* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  if (root->requires_grad) {
    stack.push_back({root.get(), 0});
    visited.insert(root.get());
  }
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next_parent < frame.node->parents.size()) {
      Node* parent = frame.node->parents[frame.next_parent].get();
      ++frame.next_parent;
      if (parent->requires_grad && visited.insert(parent).second) {
        stack.push_back({parent, 0});
      }
    } else {
      order->push_back(frame.node);
      stack.pop_back();
    }
  }
}

}  // namespace

void Backward(const Var& root) {
  AHG_CHECK_MSG(root->rows() == 1 && root->cols() == 1,
                "Backward root must be a scalar, got "
                    << root->rows() << "x" << root->cols());
  AHG_CHECK_MSG(root->requires_grad,
                "Backward root does not depend on any parameter");
  std::vector<Node*> order;
  TopoSort(root, &order);
  AHG_TRACE_SPAN_ARG("autodiff/backward",
                     static_cast<int64_t>(order.size()));
  root->EnsureGrad();
  root->grad(0, 0) += 1.0;
  // Post-order lists dependencies first; reverse iteration therefore visits
  // every consumer before its producers.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* node = *it;
    if (node->backward_fn && !node->grad.empty()) {
      AHG_TRACE_SPAN_ARG("autodiff/backward_op",
                         node->value.size());
      node->backward_fn(*node);
      // Reverse-topo order means every consumer of this op node has already
      // run, and only consumers read a node's grad — it is dead from here
      // on. With pooling enabled, hand the buffer back immediately so the
      // sweep's later (larger, earlier-layer) grads recycle it instead of
      // growing the arena; leaves keep their grads for the optimizer.
      if (PoolingEnabled()) node->grad = Matrix();
    }
  }
}

}  // namespace ahg
