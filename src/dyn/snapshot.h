// Immutable versioned graph snapshots produced by applying mutation
// batches.
//
// A GraphSnapshot is the dynamic-graph counterpart of Graph: node features,
// labels, and the kSymNorm adjacency the GCN/SGC serving models consume —
// but copy-on-write, so snapshot version v+1 shares all unchanged storage
// with version v. Apply(batch) reallocates only:
//  - raw + normalized adjacency rows the batch structurally touched, plus
//    the neighbor rows whose normalization constants changed (an edge at
//    {u, v} changes deg(u) and deg(v), and every entry (r, u) carries a
//    1/sqrt(deg(r) deg(u)) factor — so rows N(u) and N(v) renormalize);
//  - overridden / appended feature rows;
//  - the degree vector (flat doubles, 8 bytes per node).
//
// Version 0 (FromGraph) copies the source Graph's cached kSymNorm matrix
// verbatim as the adjacency base, so serving answers from a fresh snapshot
// are bitwise identical to the static path. Rows rebuilt after a mutation
// use the same normalization expression as Graph::BuildAdjacencyCaches
// (w / sqrt(deg_r * deg_c), self loop weight 1.0); for unweighted graphs
// degrees are exact integers, so rebuilt values also match a from-scratch
// Graph bitwise.
//
// Apply is atomic: the batch is validated against a working copy and any
// invalid mutation fails the whole batch with InvalidArgument, leaving the
// source snapshot untouched (it is const; the working copy is dropped).
// Snapshots only support undirected graphs without self-loop edges — the
// serving topology for every AutoGraph dataset.
#ifndef AUTOHENS_DYN_SNAPSHOT_H_
#define AUTOHENS_DYN_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dyn/delta_csr.h"
#include "dyn/mutation.h"
#include "graph/graph.h"
#include "graph/reorder.h"
#include "tensor/matrix.h"
#include "util/status.h"

namespace ahg::dyn {

// What one applied batch changed, in the shape the incremental propagator
// consumes. Row sets are sorted ascending and deduplicated.
struct BatchDelta {
  uint64_t from_version = 0;
  uint64_t to_version = 0;
  // Rows of the normalized adjacency whose entries changed: mutation
  // endpoints, their current neighbors (degree renormalization), and
  // appended nodes.
  std::vector<int> dirty_adj_rows;
  // Rows of the feature matrix that changed: UpdateFeatures targets and
  // appended nodes.
  std::vector<int> dirty_feature_rows;
  int nodes_added = 0;
  int edges_added = 0;
  int edges_removed = 0;
  int features_updated = 0;
  // True when this batch tripped DeltaCsr's 25% compaction threshold and the
  // overlays were folded into fresh bases. The compaction point is also the
  // locality plane's re-reorder point: a caller serving a reordered snapshot
  // should follow a compacted batch with Reordered() (see stream_server.cc).
  bool compacted = false;

  size_t TotalMutations() const {
    return static_cast<size_t>(nodes_added) + edges_added + edges_removed +
           features_updated;
  }
};

struct ReorderResult;  // defined after GraphSnapshot

class GraphSnapshot {
 public:
  GraphSnapshot() = default;

  // Snapshot version 0 from a static graph. The graph must be undirected,
  // self-loop free, and carry features (rows == num_nodes). Its kSymNorm
  // adjacency is shared verbatim (see file comment). A reordered graph
  // (graph.permutation() != nullptr) yields a reordered snapshot: rows live
  // in internal order, every CSR keeps the rank-order invariant
  // (graph/reorder.h), and mutation/query node ids stay EXTERNAL — Apply and
  // callers translate at the boundary.
  static StatusOr<GraphSnapshot> FromGraph(const Graph& graph);

  uint64_t version() const { return version_; }
  int num_nodes() const { return adj_.rows(); }
  int feature_dim() const { return feature_dim_; }
  int num_classes() const { return num_classes_; }
  int64_t num_edges() const { return raw_.nnz() / 2; }

  // D^-1/2 (A + I) D^-1/2 over the symmetric self-looped adjacency — the
  // matrix GCN/SGC propagation multiplies by.
  const DeltaCsr& adjacency() const { return adj_; }

  // Raw symmetric weights without self loops (topology queries, rebuilds).
  const DeltaCsr& raw_adjacency() const { return raw_; }

  // Permutation between external ids (mutations, queries) and internal rows;
  // null when the snapshot was built from an unreordered graph and never
  // re-reordered. Extended with identity entries on AddNode.
  const NodePermutation* permutation() const { return perm_.get(); }

  // External-id boundary helpers (identity when unreordered).
  int ToInternal(int external_id) const {
    return ToInternalId(perm_.get(), external_id);
  }
  int ToExternal(int internal_id) const {
    return ToExternalId(perm_.get(), internal_id);
  }

  // `u`, `v` are external ids.
  bool HasEdge(int u, int v) const;

  // `r` is an INTERNAL row id (propagator space), like every other row-level
  // accessor on this class.
  const double* FeatureRow(int r) const;
  int label(int r) const;

  // Full dense feature matrix (cold propagation, MaterializeGraph).
  Matrix DenseFeatures() const;

  // out row i = features of node rows[i] (dirty-row refresh input).
  Matrix GatherFeatures(const std::vector<int>& rows) const;

  // Applies `batch` in order, producing the next version and its delta.
  // Rejected (whole batch, *this unchanged) on: out-of-range node, self
  // loop, non-finite or non-positive weight, adding a present edge,
  // removing an absent edge, or a feature payload of the wrong width.
  // Node ids added earlier in the same batch are in range for later
  // mutations of that batch.
  StatusOr<std::pair<GraphSnapshot, BatchDelta>> Apply(
      const std::vector<Mutation>& batch) const;

  // From-scratch static Graph with this snapshot's topology, features and
  // labels — the independent rebuild the stream example and tests compare
  // against. On a reordered snapshot the result carries the same
  // permutation (external graph rebuilt, then re-permuted), so its CSR
  // caches keep the rank-order invariant and a cold engine on it serves
  // bitwise identically to the incremental path.
  Graph MaterializeGraph() const;

  // Recomputes the layout from the CURRENT logical topology expressed in
  // external ids — the new permutation depends only on (logical graph,
  // strategy, seed), never on the incidental internal layout it replaces —
  // and rebuilds raw/normalized bases, features, labels and degrees in the
  // new order with stored entry order preserved (still ascending external,
  // so bitwise conformance survives). Overlays fold into the fresh bases;
  // the version advances by one. Intended to run right after a batch whose
  // BatchDelta reports `compacted` (the overlay was already dominated by
  // churn, so a relayout costs little extra). Works on unreordered
  // snapshots too (attaches a first permutation).
  ReorderResult Reordered(ReorderStrategy strategy, uint64_t seed) const;

 private:
  uint64_t version_ = 0;
  int feature_dim_ = 0;
  int num_classes_ = 0;
  DeltaCsr raw_;   // symmetric weights, no self loops
  DeltaCsr adj_;   // kSymNorm-normalized, with self loops
  // deg_[r] = weighted symmetric degree of r plus 1.0 (the self loop), the
  // quantity Graph::BuildAdjacencyCaches normalizes by.
  std::vector<double> deg_;
  // COW features: shared base plus per-row overrides; appended rows (ids
  // >= feat_base_->rows()) always live in the override map.
  std::shared_ptr<const Matrix> feat_base_;
  std::unordered_map<int, std::shared_ptr<const std::vector<double>>>
      feat_overrides_;
  std::shared_ptr<const std::vector<int>> labels_;
  // External<->internal bijection; null = identity layout. raw_ and adj_
  // carry an aliased pointer to perm_->to_external as their column rank.
  std::shared_ptr<const NodePermutation> perm_;
};

// Result of a re-reorder: the next snapshot version plus the internal remap
// (remap[old_internal] = new_internal) callers use to gather any row-indexed
// state they hold (IncrementalPropagator::ApplyReorder).
struct ReorderResult {
  GraphSnapshot snapshot;
  std::vector<int> remap;
};

}  // namespace ahg::dyn

#endif  // AUTOHENS_DYN_SNAPSHOT_H_
