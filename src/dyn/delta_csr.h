// Copy-on-write CSR matrix for dynamic-graph snapshots.
//
// A DeltaCsr is a base SparseMatrix (shared, immutable) plus a per-row
// overlay: rows whose adjacency changed since the base was built own a
// freshly allocated RowStore, every other row reads straight out of the
// base's CSR arrays. Copying a DeltaCsr copies the overlay map of
// shared_ptrs — O(#overridden rows) — so producing snapshot version v+1
// from v reallocates only the rows a mutation batch touched, never the
// full CSR. AddNode grows rows() past the base; such rows are empty until
// overridden.
//
// SpMM determinism: Spmm and SpmmRows funnel every row through the same
// AccumulateRow kernel (entries in ascending column order, dense columns
// innermost), so a row-subset product is bitwise identical to the
// corresponding rows of the full product, and both match
// SparseMatrix::Spmm on the materialized matrix. This is the property the
// incremental-refresh oracle (incremental == cold full recompute) rests
// on.
//
// When the overlay outgrows kCompactionFraction of the rows, Compact()
// folds everything into a new base — the COW savings are gone at that
// point and a flat CSR scans faster.
#ifndef AUTOHENS_DYN_DELTA_CSR_H_
#define AUTOHENS_DYN_DELTA_CSR_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "tensor/matrix.h"
#include "tensor/sparse_matrix.h"

namespace ahg::dyn {

class DeltaCsr {
 public:
  // One row's view: `nnz` entries with ascending column RANK (see
  // SetColRank; rank is the column id itself when no rank is set).
  struct RowRef {
    const int* cols = nullptr;
    const double* vals = nullptr;
    int64_t nnz = 0;
  };

  // Overlay fraction beyond which Compact() is worth calling (see
  // MaybeCompact).
  static constexpr double kCompactionFraction = 0.25;

  DeltaCsr() = default;

  // Wraps an existing CSR as the shared immutable base.
  explicit DeltaCsr(std::shared_ptr<const SparseMatrix> base);

  // Copying shares the base and every overlay row (shallow, O(#overrides));
  // the copy can then override rows independently.
  DeltaCsr(const DeltaCsr&) = default;
  DeltaCsr& operator=(const DeltaCsr&) = default;
  DeltaCsr(DeltaCsr&&) = default;
  DeltaCsr& operator=(DeltaCsr&&) = default;

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int64_t nnz() const { return nnz_; }

  // Rows currently backed by overlay storage instead of the base.
  int overridden_rows() const { return static_cast<int>(overrides_.size()); }
  double overlay_fraction() const {
    return rows_ == 0 ? 0.0 : static_cast<double>(overrides_.size()) / rows_;
  }

  RowRef Row(int r) const;

  // Replaces row r's storage (cols ascending by rank, no duplicates). Only
  // this row is reallocated; all other rows keep sharing their storage.
  void OverrideRow(int r, std::vector<int> cols, std::vector<double> vals);

  // Declares the storage order of this matrix's rows: entries are sorted by
  // rank[col] instead of by col. Reordered snapshots (graph/reorder.h) set
  // rank = to_external so every row keeps accumulating in ascending
  // EXTERNAL id order — the rank-order invariant that makes reordered
  // serving bitwise identical. Columns >= rank->size() (freshly grown
  // nodes) rank as themselves, matching NodePermutation::ExtendedTo.
  // Affects OverrideRow validation and callers' binary searches only; a
  // null rank (the default) means plain ascending-column order.
  void SetColRank(std::shared_ptr<const std::vector<int>> rank) {
    col_rank_ = std::move(rank);
  }
  const std::vector<int>* col_rank() const { return col_rank_.get(); }

  // Rank of column id c under the current rank vector (c itself when none
  // is set or c is beyond it).
  int64_t RankOf(int c) const {
    return col_rank_ != nullptr && c < static_cast<int>(col_rank_->size())
               ? (*col_rank_)[c]
               : c;
  }

  // Grows the logical shape (AddNode); new rows are empty. Never shrinks.
  void Grow(int rows, int cols);

  // Y = this * X. Row-parallel with the same per-row accumulation order for
  // every thread count (see file comment).
  Matrix Spmm(const Matrix& x) const;

  // Output row i is (this * X) row rows[i]; bitwise identical to those rows
  // of Spmm(x).
  Matrix SpmmRows(const std::vector<int>& rows, const Matrix& x) const;

  // Flat CSR copy of the current state. Stored entry order is preserved
  // row by row (rank order on reordered snapshots), never re-sorted.
  SparseMatrix Materialize() const;

  // Folds base + overlay into a fresh base (clearing the overlay) when the
  // overlay fraction reaches kCompactionFraction — AT the documented
  // threshold, not strictly above it. Returns true if it compacted.
  bool MaybeCompact();

 private:
  struct RowStore {
    std::vector<int> cols;
    std::vector<double> vals;
  };

  int rows_ = 0;
  int cols_ = 0;
  int64_t nnz_ = 0;
  std::shared_ptr<const SparseMatrix> base_;
  std::unordered_map<int, std::shared_ptr<const RowStore>> overrides_;
  std::shared_ptr<const std::vector<int>> col_rank_;
};

}  // namespace ahg::dyn

#endif  // AUTOHENS_DYN_DELTA_CSR_H_
