#include "dyn/delta_csr.h"

#include <algorithm>
#include <utility>

#include "obs/trace.h"
#include "util/thread_pool.h"

namespace ahg::dyn {

namespace {

// The one row kernel every DeltaCsr SpMM variant uses: accumulate row
// entries in ascending column order, dense columns innermost — the same
// order as SparseMatrix::Spmm, so products agree bitwise row by row.
inline void AccumulateRow(const DeltaCsr::RowRef& row, const Matrix& x,
                          double* yrow) {
  for (int64_t e = 0; e < row.nnz; ++e) {
    const double v = row.vals[e];
    const double* xrow = x.Row(row.cols[e]);
    for (int c = 0; c < x.cols(); ++c) yrow[c] += v * xrow[c];
  }
}

}  // namespace

DeltaCsr::DeltaCsr(std::shared_ptr<const SparseMatrix> base)
    : base_(std::move(base)) {
  AHG_CHECK(base_ != nullptr);
  rows_ = base_->rows();
  cols_ = base_->cols();
  nnz_ = base_->nnz();
}

DeltaCsr::RowRef DeltaCsr::Row(int r) const {
  AHG_CHECK(r >= 0 && r < rows_);
  auto it = overrides_.find(r);
  if (it != overrides_.end()) {
    const RowStore& store = *it->second;
    return {store.cols.data(), store.vals.data(),
            static_cast<int64_t>(store.cols.size())};
  }
  if (base_ != nullptr && r < base_->rows()) {
    const int64_t begin = base_->row_ptr()[r];
    const int64_t end = base_->row_ptr()[r + 1];
    return {base_->col_idx().data() + begin, base_->values().data() + begin,
            end - begin};
  }
  return {};  // grown row, never overridden: empty
}

void DeltaCsr::OverrideRow(int r, std::vector<int> cols,
                           std::vector<double> vals) {
  AHG_CHECK(r >= 0 && r < rows_);
  AHG_CHECK_EQ(cols.size(), vals.size());
  for (size_t i = 0; i < cols.size(); ++i) {
    AHG_CHECK(cols[i] >= 0 && cols[i] < cols_);
    // Ascending rank, no dups (rank == column id when no rank is set).
    if (i > 0) AHG_CHECK_LT(RankOf(cols[i - 1]), RankOf(cols[i]));
  }
  nnz_ -= Row(r).nnz;
  nnz_ += static_cast<int64_t>(cols.size());
  auto store = std::make_shared<RowStore>();
  store->cols = std::move(cols);
  store->vals = std::move(vals);
  overrides_[r] = std::move(store);
}

void DeltaCsr::Grow(int rows, int cols) {
  AHG_CHECK_GE(rows, rows_);
  AHG_CHECK_GE(cols, cols_);
  rows_ = rows;
  cols_ = cols;
}

Matrix DeltaCsr::Spmm(const Matrix& x) const {
  AHG_CHECK_EQ(x.rows(), cols_);
  AHG_TRACE_SPAN_ARG("dyn/delta_spmm", nnz_ * x.cols());
  Matrix y(rows_, x.cols());
  const int64_t work_per_row =
      rows_ > 0 ? std::max<int64_t>(1, nnz_ / rows_) * x.cols() : 1;
  ParallelForChunked(rows_, work_per_row, [&](int64_t begin, int64_t end) {
    for (int64_t r = begin; r < end; ++r) {
      AccumulateRow(Row(static_cast<int>(r)), x, y.Row(static_cast<int>(r)));
    }
  });
  return y;
}

Matrix DeltaCsr::SpmmRows(const std::vector<int>& rows,
                          const Matrix& x) const {
  AHG_CHECK_EQ(x.rows(), cols_);
  AHG_TRACE_SPAN_ARG("dyn/delta_spmm_rows",
                     static_cast<int64_t>(rows.size()) * x.cols());
  Matrix y(static_cast<int>(rows.size()), x.cols());
  const int64_t work_per_row =
      rows_ > 0 ? std::max<int64_t>(1, nnz_ / rows_) * x.cols() : 1;
  ParallelForChunked(static_cast<int64_t>(rows.size()), work_per_row,
                     [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      const int r = rows[i];
      AHG_CHECK(r >= 0 && r < rows_);
      AccumulateRow(Row(r), x, y.Row(static_cast<int>(i)));
    }
  });
  return y;
}

SparseMatrix DeltaCsr::Materialize() const {
  // Direct row-by-row copy through FromCsrParts: FromCoo would re-sort
  // entries by column id, destroying the stored (rank) order that reordered
  // snapshots' bitwise-conformance rests on.
  std::vector<int64_t> row_ptr(rows_ + 1, 0);
  for (int r = 0; r < rows_; ++r) row_ptr[r + 1] = row_ptr[r] + Row(r).nnz;
  AHG_CHECK_EQ(row_ptr[rows_], nnz_);
  std::vector<int> col_idx(nnz_);
  std::vector<double> values(nnz_);
  for (int r = 0; r < rows_; ++r) {
    const RowRef row = Row(r);
    std::copy(row.cols, row.cols + row.nnz, col_idx.data() + row_ptr[r]);
    std::copy(row.vals, row.vals + row.nnz, values.data() + row_ptr[r]);
  }
  return SparseMatrix::FromCsrParts(rows_, cols_, std::move(row_ptr),
                                    std::move(col_idx), std::move(values));
}

bool DeltaCsr::MaybeCompact() {
  // `<` so compaction fires AT the documented 25% threshold, not only
  // strictly above it (an overlay of exactly rows/4 rows compacts).
  if (overlay_fraction() < kCompactionFraction) return false;
  AHG_TRACE_SPAN_ARG("dyn/delta_compact", nnz_);
  base_ = std::make_shared<const SparseMatrix>(Materialize());
  overrides_.clear();
  return true;
}

}  // namespace ahg::dyn
