// Streaming serving front-end of the dynamic-graph subsystem.
//
// Wires the pieces together: a MutationLog collects streamed edits, a
// single mutator thread calls ApplyPending() to fold them into the next
// GraphSnapshot version, an IncrementalPropagator patches the cached
// H^(1..L) states over the dirty rows, and the resulting (snapshot, hidden)
// pair is published atomically for readers. Queries never block on a
// refresh: PredictNodes copies one shared_ptr under a short lock and serves
// from that immutable pair, so a concurrent publish retargets later
// queries while in-flight ones finish against the version they started on.
//
// PublishTo() bridges into the static serving stack: it materializes the
// current snapshot as a Graph, SwapGraph()s the InferenceEngine onto it
// (keyed by the snapshot version) and installs the incrementally refreshed
// hidden states into the engine's PropagationCache, so the first post-swap
// query pays a row gather instead of a full forward.
//
// Metrics (process-wide registry): dyn.batches, dyn.mutations_applied,
// dyn.incremental_refreshes, dyn.full_refreshes, dyn.rows_refreshed
// counters; dyn.refresh_ms and dyn.dirty_fraction histograms.
#ifndef AUTOHENS_DYN_STREAM_SERVER_H_
#define AUTOHENS_DYN_STREAM_SERVER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "dyn/incremental.h"
#include "dyn/mutation.h"
#include "dyn/snapshot.h"
#include "graph/graph.h"
#include "obs/metrics.h"
#include "serve/inference_engine.h"
#include "serve/model_registry.h"
#include "util/status.h"

namespace ahg::dyn {

struct StreamOptions {
  // Mutations folded into one snapshot step per ApplyPending (0 = all).
  size_t max_batch_mutations = 0;
  RefreshOptions refresh;
  // When not kNone, a batch that trips DeltaCsr compaction (the overlay was
  // already being folded into fresh bases, so a relayout costs little
  // extra) is followed by GraphSnapshot::Reordered(reorder, reorder_seed)
  // plus IncrementalPropagator::ApplyReorder — the snapshot gets a fresh
  // locality layout mid-stream without breaking bitwise conformance or the
  // dirty-row refresh bound. External query/mutation ids are unaffected.
  ReorderStrategy reorder = ReorderStrategy::kNone;
  uint64_t reorder_seed = 0;
};

class StreamingServer {
 public:
  // Builds snapshot version 0 from `graph` (undirected, featured, no self
  // loops — see GraphSnapshot::FromGraph) and runs the cold propagation for
  // `model`, whose family must pass IncrementalPropagator::Supports and
  // whose last two params are the classifier head.
  static StatusOr<std::unique_ptr<StreamingServer>> Create(
      const Graph& graph, const serve::ServableModel& model,
      const StreamOptions& options = {});

  StreamingServer(const StreamingServer&) = delete;
  StreamingServer& operator=(const StreamingServer&) = delete;

  // Enqueues a mutation (any thread); returns its sequence number.
  uint64_t Submit(Mutation m);
  size_t pending() const { return log_.pending(); }

  // Drains up to options.max_batch_mutations from the log, applies them as
  // one atomic batch, refreshes propagation over the dirty rows and
  // publishes the new (snapshot, hidden) pair. Call from one mutator
  // thread. A validation failure re-queues nothing and publishes nothing —
  // the rejected batch is reported and dropped.
  StatusOr<RefreshStats> ApplyPending();

  // Class probabilities for `nodes` against the latest published state.
  StatusOr<Matrix> PredictNodes(const std::vector<int>& nodes) const;

  // Latest published immutable state.
  std::shared_ptr<const GraphSnapshot> snapshot() const;
  std::shared_ptr<const Matrix> hidden() const;
  uint64_t version() const;

  // Materializes the current snapshot, swaps `engine` onto it (generation =
  // snapshot version + 1, since engines start at generation 0 and versions
  // must strictly increase) and installs the refreshed hidden states. The
  // materialized graph is owned by this server and kept alive until the
  // next PublishTo or destruction.
  Status PublishTo(serve::InferenceEngine* engine);

  const serve::ServableModel& model() const { return model_; }

 private:
  struct State {
    std::shared_ptr<const GraphSnapshot> snap;
    std::shared_ptr<const Matrix> hidden;
  };

  StreamingServer(const serve::ServableModel& model,
                  const StreamOptions& options);

  std::shared_ptr<const State> state() const;

  serve::ServableModel model_;
  StreamOptions options_;
  MutationLog log_;

  std::mutex apply_mu_;  // serializes mutator-side work
  std::unique_ptr<IncrementalPropagator> propagator_;  // under apply_mu_
  std::shared_ptr<const Graph> published_graph_;       // under apply_mu_
  // Previously published graphs, kept alive for engine batches still
  // holding their raw pointer (see PublishTo).
  std::vector<std::shared_ptr<const Graph>> retired_graphs_;

  mutable std::mutex state_mu_;  // guards the published pointer only
  std::shared_ptr<const State> state_;

  obs::Counter* const m_batches_;
  obs::Counter* const m_mutations_;
  obs::Counter* const m_incremental_;
  obs::Counter* const m_full_;
  obs::Counter* const m_rows_refreshed_;
  obs::Histogram* const m_refresh_ms_;
  obs::Histogram* const m_dirty_fraction_;
};

}  // namespace ahg::dyn

#endif  // AUTOHENS_DYN_STREAM_SERVER_H_
