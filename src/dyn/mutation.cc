#include "dyn/mutation.h"

#include <algorithm>
#include <utility>

#include "util/string_util.h"

namespace ahg::dyn {

const char* MutationKindName(MutationKind kind) {
  switch (kind) {
    case MutationKind::kAddEdge:
      return "AddEdge";
    case MutationKind::kRemoveEdge:
      return "RemoveEdge";
    case MutationKind::kAddNode:
      return "AddNode";
    case MutationKind::kUpdateFeatures:
      return "UpdateFeatures";
  }
  return "unknown";
}

Mutation Mutation::AddEdge(int u, int v, double weight) {
  Mutation m;
  m.kind = MutationKind::kAddEdge;
  m.u = u;
  m.v = v;
  m.weight = weight;
  return m;
}

Mutation Mutation::RemoveEdge(int u, int v) {
  Mutation m;
  m.kind = MutationKind::kRemoveEdge;
  m.u = u;
  m.v = v;
  return m;
}

Mutation Mutation::AddNode(std::vector<double> features, int label) {
  Mutation m;
  m.kind = MutationKind::kAddNode;
  m.features = std::move(features);
  m.label = label;
  return m;
}

Mutation Mutation::UpdateFeatures(int u, std::vector<double> features) {
  Mutation m;
  m.kind = MutationKind::kUpdateFeatures;
  m.u = u;
  m.features = std::move(features);
  return m;
}

std::string Mutation::ToString() const {
  switch (kind) {
    case MutationKind::kAddEdge:
      return StrFormat("AddEdge(%d, %d, w=%.3f)", u, v, weight);
    case MutationKind::kRemoveEdge:
      return StrFormat("RemoveEdge(%d, %d)", u, v);
    case MutationKind::kAddNode:
      return StrFormat("AddNode(dim=%d, label=%d)",
                       static_cast<int>(features.size()), label);
    case MutationKind::kUpdateFeatures:
      return StrFormat("UpdateFeatures(%d, dim=%d)", u,
                       static_cast<int>(features.size()));
  }
  return "Mutation(?)";
}

uint64_t MutationLog::Append(Mutation m) {
  std::lock_guard<std::mutex> lock(mu_);
  pending_.push_back(std::move(m));
  return next_sequence_++;
}

std::vector<Mutation> MutationLog::Drain(size_t max) {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t take =
      max == 0 ? pending_.size() : std::min(max, pending_.size());
  std::vector<Mutation> out;
  out.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    out.push_back(std::move(pending_.front()));
    pending_.pop_front();
  }
  return out;
}

size_t MutationLog::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_.size();
}

uint64_t MutationLog::next_sequence() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_sequence_;
}

}  // namespace ahg::dyn
