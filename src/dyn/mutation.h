// Streaming graph mutations and the append-only log that batches them.
//
// Production graphs are never static: users, items and edges arrive
// continuously while the serving path answers queries. The dynamic-graph
// subsystem ingests that stream as explicit Mutation records through a
// MutationLog; the snapshot layer (snapshot.h) drains the log in batches
// and applies each batch atomically to produce the next immutable
// GraphSnapshot version.
//
// The log is intentionally dumb: it assigns sequence numbers and preserves
// arrival order, but performs no graph validation — a mutation can only be
// judged against the snapshot version it will be applied to, so validation
// lives in GraphSnapshot::Apply (which rejects the whole batch on the first
// invalid record, leaving the snapshot untouched).
#ifndef AUTOHENS_DYN_MUTATION_H_
#define AUTOHENS_DYN_MUTATION_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace ahg::dyn {

enum class MutationKind {
  kAddEdge = 0,     // undirected edge {u, v} with weight
  kRemoveEdge,      // existing undirected edge {u, v}
  kAddNode,         // appends node id = num_nodes with features (+ label)
  kUpdateFeatures,  // replaces node u's feature row
};

const char* MutationKindName(MutationKind kind);

struct Mutation {
  MutationKind kind = MutationKind::kAddEdge;
  int u = -1;                    // first endpoint / target node
  int v = -1;                    // second endpoint (edge mutations only)
  double weight = 1.0;           // kAddEdge only; must be finite and > 0
  std::vector<double> features;  // kAddNode / kUpdateFeatures payload
  int label = -1;                // kAddNode only; -1 = unlabeled

  static Mutation AddEdge(int u, int v, double weight = 1.0);
  static Mutation RemoveEdge(int u, int v);
  static Mutation AddNode(std::vector<double> features, int label = -1);
  static Mutation UpdateFeatures(int u, std::vector<double> features);

  std::string ToString() const;
};

// Thread-safe append-only mutation queue. Producers Append from any thread;
// the single mutator thread Drains batches in arrival order.
class MutationLog {
 public:
  MutationLog() = default;
  MutationLog(const MutationLog&) = delete;
  MutationLog& operator=(const MutationLog&) = delete;

  // Enqueues `m` and returns its sequence number (0-based, monotonically
  // increasing across the log's lifetime).
  uint64_t Append(Mutation m);

  // Removes and returns up to `max` pending mutations in arrival order
  // (max == 0 drains everything).
  std::vector<Mutation> Drain(size_t max = 0);

  // Pending (appended but not yet drained) mutation count.
  size_t pending() const;

  // Sequence number the next Append will receive; equals the total number
  // of mutations ever appended.
  uint64_t next_sequence() const;

 private:
  mutable std::mutex mu_;
  std::deque<Mutation> pending_;
  uint64_t next_sequence_ = 0;
};

}  // namespace ahg::dyn

#endif  // AUTOHENS_DYN_MUTATION_H_
