#include "dyn/stream_server.h"

#include <chrono>
#include <utility>

#include "obs/trace.h"
#include "util/string_util.h"

namespace ahg::dyn {

namespace {

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

StreamingServer::StreamingServer(const serve::ServableModel& model,
                                 const StreamOptions& options)
    : model_(model),
      options_(options),
      m_batches_(obs::MetricsRegistry::Global().GetCounter("dyn.batches")),
      m_mutations_(
          obs::MetricsRegistry::Global().GetCounter("dyn.mutations_applied")),
      m_incremental_(obs::MetricsRegistry::Global().GetCounter(
          "dyn.incremental_refreshes")),
      m_full_(
          obs::MetricsRegistry::Global().GetCounter("dyn.full_refreshes")),
      m_rows_refreshed_(
          obs::MetricsRegistry::Global().GetCounter("dyn.rows_refreshed")),
      m_refresh_ms_(obs::MetricsRegistry::Global().GetHistogram(
          "dyn.refresh_ms", obs::DefaultLatencyBucketsMs())),
      m_dirty_fraction_(obs::MetricsRegistry::Global().GetHistogram(
          "dyn.dirty_fraction", obs::DefaultFractionBuckets())) {}

StatusOr<std::unique_ptr<StreamingServer>> StreamingServer::Create(
    const Graph& graph, const serve::ServableModel& model,
    const StreamOptions& options) {
  if (!IncrementalPropagator::Supports(model.config)) {
    return Status::InvalidArgument(StrFormat(
        "model family %s has no incremental propagation support",
        ModelFamilyName(model.config.family)));
  }
  Status valid = serve::ValidateServableModel(model);
  if (!valid.ok()) return valid;
  if (model.config.in_dim != graph.feature_dim()) {
    return Status::InvalidArgument(
        StrFormat("model consumes %d-dim features, graph has %d-dim",
                  model.config.in_dim, graph.feature_dim()));
  }
  auto snap = GraphSnapshot::FromGraph(graph);
  if (!snap.ok()) return snap.status();

  std::unique_ptr<StreamingServer> server(
      new StreamingServer(model, options));
  std::vector<Matrix> layer_params(model.params.begin(),
                                   model.params.end() - 2);
  server->propagator_ = std::make_unique<IncrementalPropagator>(
      model.config, std::move(layer_params), options.refresh);

  auto state = std::make_shared<State>();
  state->snap =
      std::make_shared<const GraphSnapshot>(std::move(snap).value());
  server->propagator_->FullRefresh(*state->snap);
  state->hidden = server->propagator_->hidden();
  server->state_ = std::move(state);
  return server;
}

uint64_t StreamingServer::Submit(Mutation m) {
  return log_.Append(std::move(m));
}

std::shared_ptr<const StreamingServer::State> StreamingServer::state() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return state_;
}

StatusOr<RefreshStats> StreamingServer::ApplyPending() {
  std::lock_guard<std::mutex> lock(apply_mu_);
  const std::vector<Mutation> batch =
      log_.Drain(options_.max_batch_mutations);
  std::shared_ptr<const State> cur = state();
  if (batch.empty()) {
    // Nothing to fold in; report the published state without a version bump.
    RefreshStats stats;
    stats.incremental = true;
    stats.version = cur->snap->version();
    return stats;
  }
  const auto start = std::chrono::steady_clock::now();
  AHG_TRACE_SPAN_ARG("dyn/apply_pending", static_cast<int64_t>(batch.size()));

  auto applied = cur->snap->Apply(batch);
  if (!applied.ok()) return applied.status();
  auto next = std::make_shared<const GraphSnapshot>(
      std::move(applied.value().first));
  const BatchDelta delta = std::move(applied.value().second);

  auto stats_or = propagator_->Refresh(*next, delta);
  if (!stats_or.ok()) return stats_or.status();
  RefreshStats stats = stats_or.value();

  if (delta.compacted && options_.reorder != ReorderStrategy::kNone) {
    // Compaction is the re-reorder point: the overlays just folded into
    // fresh bases anyway, so recomputing the locality layout now is the
    // cheap moment. States are row-gathered (zero FLOPs), so the refresh
    // cost bound above is untouched.
    ReorderResult reordered =
        next->Reordered(options_.reorder, options_.reorder_seed);
    propagator_->ApplyReorder(reordered.remap,
                              reordered.snapshot.version());
    next = std::make_shared<const GraphSnapshot>(
        std::move(reordered.snapshot));
    stats.version = next->version();
  }

  auto state = std::make_shared<State>();
  state->snap = std::move(next);
  state->hidden = propagator_->hidden();
  {
    std::lock_guard<std::mutex> state_lock(state_mu_);
    state_ = std::move(state);
  }

  m_batches_->Increment();
  m_mutations_->Increment(static_cast<int64_t>(batch.size()));
  (stats.incremental ? m_incremental_ : m_full_)->Increment();
  m_rows_refreshed_->Increment(stats.rows_refreshed);
  m_refresh_ms_->Observe(MsSince(start));
  m_dirty_fraction_->Observe(stats.dirty_fraction);
  return stats;
}

StatusOr<Matrix> StreamingServer::PredictNodes(
    const std::vector<int>& nodes) const {
  // One pointer copy pins an immutable (snapshot, hidden) pair for the
  // whole query; a concurrent publish retargets later queries only.
  std::shared_ptr<const State> s = state();
  const Matrix& h = *s->hidden;
  for (int node : nodes) {
    if (node < 0 || node >= h.rows()) {
      return Status::InvalidArgument(
          StrFormat("node id %d out of range [0, %d)", node, h.rows()));
    }
  }
  // Query ids are external; hidden rows live in the snapshot's (possibly
  // reordered) internal order — translate once at this boundary.
  std::vector<int> rows;
  rows.reserve(nodes.size());
  for (int node : nodes) rows.push_back(s->snap->ToInternal(node));
  return serve::ApplyClassifierHead(GatherRows(h, rows), model_);
}

std::shared_ptr<const GraphSnapshot> StreamingServer::snapshot() const {
  return state()->snap;
}

std::shared_ptr<const Matrix> StreamingServer::hidden() const {
  return state()->hidden;
}

uint64_t StreamingServer::version() const {
  return state()->snap->version();
}

Status StreamingServer::PublishTo(serve::InferenceEngine* engine) {
  if (engine == nullptr) {
    return Status::InvalidArgument("PublishTo: null engine");
  }
  std::lock_guard<std::mutex> lock(apply_mu_);
  std::shared_ptr<const State> s = state();
  // Engines are born at generation 0 on their construction graph, so
  // snapshot version v maps to engine generation v + 1.
  const uint64_t target = s->snap->version() + 1;
  const uint64_t current = engine->graph_generation();
  if (current > target) {
    return Status::InvalidArgument(
        StrFormat("engine generation %d is ahead of snapshot version %d",
                  static_cast<int>(current), static_cast<int>(target - 1)));
  }
  if (current < target) {
    auto graph = std::make_shared<const Graph>(s->snap->MaterializeGraph());
    Status swapped = engine->SwapGraph(graph.get(), target);
    if (!swapped.ok()) return swapped;
    // The engine holds a raw pointer; keep this and every prior published
    // graph alive so in-flight batches that resolved the old pointer drain
    // safely (publishes are checkpoint-grained, so the list stays short).
    retired_graphs_.push_back(published_graph_);
    published_graph_ = std::move(graph);
  }
  return engine->InstallHiddenStates(model_.version, s->hidden);
}

}  // namespace ahg::dyn
