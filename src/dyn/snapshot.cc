#include "dyn/snapshot.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "obs/trace.h"
#include "util/bitset.h"
#include "util/string_util.h"

namespace ahg::dyn {

namespace {

// Working (mutable) form of one raw adjacency row: (col, weight) pairs in
// ascending column-RANK order (rank == column id on unreordered snapshots,
// ascending external id on reordered ones — see DeltaCsr::SetColRank). All
// binary searches below compare ranks so the one invariant covers both.
using WorkRow = std::vector<std::pair<int, double>>;

bool RowHasCol(const DeltaCsr& rank_src, const WorkRow& row, int col) {
  const int64_t rank = rank_src.RankOf(col);
  auto it = std::lower_bound(row.begin(), row.end(), rank,
                             [&](const std::pair<int, double>& e, int64_t rk) {
                               return rank_src.RankOf(e.first) < rk;
                             });
  return it != row.end() && it->first == col;
}

void RowInsert(const DeltaCsr& rank_src, WorkRow* row, int col,
               double weight) {
  const int64_t rank = rank_src.RankOf(col);
  auto it = std::lower_bound(row->begin(), row->end(), rank,
                             [&](const std::pair<int, double>& e, int64_t rk) {
                               return rank_src.RankOf(e.first) < rk;
                             });
  row->insert(it, {col, weight});
}

void RowErase(const DeltaCsr& rank_src, WorkRow* row, int col) {
  const int64_t rank = rank_src.RankOf(col);
  auto it = std::lower_bound(row->begin(), row->end(), rank,
                             [&](const std::pair<int, double>& e, int64_t rk) {
                               return rank_src.RankOf(e.first) < rk;
                             });
  AHG_CHECK(it != row->end() && it->first == col);
  row->erase(it);
}

bool CsrRowHasCol(const DeltaCsr& m, int r, int col) {
  const DeltaCsr::RowRef row = m.Row(r);
  const int* end = row.cols + row.nnz;
  const int64_t rank = m.RankOf(col);
  const int* it =
      std::lower_bound(row.cols, end, rank,
                       [&](int c, int64_t rk) { return m.RankOf(c) < rk; });
  return it != end && *it == col;
}

// Column-rank vector for reordered CSRs: an aliased pointer into the
// permutation's to_external array (rank of internal id i = its external id).
std::shared_ptr<const std::vector<int>> RankVector(
    const std::shared_ptr<const NodePermutation>& perm) {
  if (perm == nullptr) return nullptr;
  return std::shared_ptr<const std::vector<int>>(perm, &perm->to_external);
}

}  // namespace

StatusOr<GraphSnapshot> GraphSnapshot::FromGraph(const Graph& graph) {
  if (graph.directed()) {
    return Status::InvalidArgument(
        "dynamic snapshots support undirected graphs only");
  }
  const int n = graph.num_nodes();
  if (graph.features().rows() != n || graph.feature_dim() <= 0) {
    return Status::InvalidArgument(
        StrFormat("snapshot requires features for all %d nodes (have %d x %d)",
                  n, graph.features().rows(), graph.feature_dim()));
  }
  for (const Edge& e : graph.edges()) {
    if (e.src == e.dst) {
      return Status::InvalidArgument(StrFormat(
          "self-loop edge (%d, %d) unsupported in dynamic snapshots", e.src,
          e.dst));
    }
    if (!std::isfinite(e.weight) || e.weight <= 0.0) {
      return Status::InvalidArgument(
          StrFormat("edge (%d, %d) has non-positive or non-finite weight",
                    e.src, e.dst));
    }
  }

  GraphSnapshot snap;
  snap.version_ = 0;
  snap.feature_dim_ = graph.feature_dim();
  snap.num_classes_ = graph.num_classes();

  // Raw symmetric weights, both orientations, no self loops. Built in
  // EXTERNAL space (FromCoo sorts entries by external column there), then —
  // on a reordered graph — permuted with stored order preserved, so every
  // raw row keeps ascending-external ("rank") order: the same invariant the
  // shared kSymNorm cache below already satisfies.
  const NodePermutation* perm = graph.permutation();
  std::vector<CooEntry> entries;
  entries.reserve(2 * graph.edges().size());
  for (const Edge& e : graph.edges()) {
    const int src = perm == nullptr ? e.src : perm->to_external[e.src];
    const int dst = perm == nullptr ? e.dst : perm->to_external[e.dst];
    entries.push_back({dst, src, e.weight});
    entries.push_back({src, dst, e.weight});
  }
  SparseMatrix raw_ext = SparseMatrix::FromCoo(n, n, std::move(entries));
  snap.raw_ = DeltaCsr(std::make_shared<const SparseMatrix>(
      perm == nullptr ? std::move(raw_ext) : PermuteSparse(raw_ext, *perm)));

  // deg = raw row sum (ascending column order) + 1.0 for the self loop —
  // the quantity Graph normalizes by. For unweighted graphs this is an
  // exact integer, identical to Graph's own edge-order accumulation.
  snap.deg_.assign(n, 0.0);
  for (int r = 0; r < n; ++r) {
    const DeltaCsr::RowRef row = snap.raw_.Row(r);
    double d = 0.0;
    for (int64_t e = 0; e < row.nnz; ++e) d += row.vals[e];
    snap.deg_[r] = d + 1.0;
  }

  // Share the graph's cached kSymNorm matrix verbatim: version-0 serving is
  // bitwise identical to the static path by construction.
  snap.adj_ = DeltaCsr(std::make_shared<const SparseMatrix>(
      graph.Adjacency(AdjacencyKind::kSymNorm)));

  snap.feat_base_ = std::make_shared<const Matrix>(graph.features());
  snap.labels_ = std::make_shared<const std::vector<int>>(graph.labels());
  snap.perm_ = graph.permutation_ptr();
  if (snap.perm_ != nullptr) {
    auto rank = RankVector(snap.perm_);
    snap.raw_.SetColRank(rank);
    snap.adj_.SetColRank(rank);
  }
  return snap;
}

bool GraphSnapshot::HasEdge(int u, int v) const {
  AHG_CHECK(u >= 0 && u < num_nodes());
  AHG_CHECK(v >= 0 && v < num_nodes());
  return CsrRowHasCol(raw_, ToInternal(u), ToInternal(v));
}

const double* GraphSnapshot::FeatureRow(int r) const {
  AHG_CHECK(r >= 0 && r < num_nodes());
  auto it = feat_overrides_.find(r);
  if (it != feat_overrides_.end()) return it->second->data();
  AHG_CHECK(feat_base_ != nullptr && r < feat_base_->rows());
  return feat_base_->Row(r);
}

int GraphSnapshot::label(int r) const {
  AHG_CHECK(r >= 0 && r < num_nodes());
  return (*labels_)[r];
}

Matrix GraphSnapshot::DenseFeatures() const {
  Matrix out(num_nodes(), feature_dim_);
  for (int r = 0; r < num_nodes(); ++r) {
    std::memcpy(out.Row(r), FeatureRow(r),
                static_cast<size_t>(feature_dim_) * sizeof(double));
  }
  return out;
}

Matrix GraphSnapshot::GatherFeatures(const std::vector<int>& rows) const {
  Matrix out(static_cast<int>(rows.size()), feature_dim_);
  for (size_t i = 0; i < rows.size(); ++i) {
    std::memcpy(out.Row(static_cast<int>(i)), FeatureRow(rows[i]),
                static_cast<size_t>(feature_dim_) * sizeof(double));
  }
  return out;
}

StatusOr<std::pair<GraphSnapshot, BatchDelta>> GraphSnapshot::Apply(
    const std::vector<Mutation>& batch) const {
  AHG_TRACE_SPAN_ARG("dyn/apply_batch", static_cast<int64_t>(batch.size()));
  const int base_n = num_nodes();
  int n = base_n;

  BatchDelta delta;
  delta.from_version = version_;
  delta.to_version = version_ + 1;

  // Working copies of every raw row the batch touches. A row is pulled once
  // (O(deg) copy) and mutated in place; untouched rows are never read.
  std::unordered_map<int, WorkRow> work;
  auto working_row = [&](int r) -> WorkRow& {
    auto it = work.find(r);
    if (it != work.end()) return it->second;
    WorkRow row;
    if (r < raw_.rows()) {
      const DeltaCsr::RowRef ref = raw_.Row(r);
      row.reserve(ref.nnz);
      for (int64_t e = 0; e < ref.nnz; ++e) {
        row.push_back({ref.cols[e], ref.vals[e]});
      }
    }
    return work.emplace(r, std::move(row)).first->second;
  };
  auto edge_exists = [&](int u, int v) {
    auto it = work.find(u);
    if (it != work.end()) return RowHasCol(raw_, it->second, v);
    return u < raw_.rows() && CsrRowHasCol(raw_, u, v);
  };
  // Mutation node ids are EXTERNAL; rows live in internal order. Nodes past
  // the permutation (added earlier in this batch) map to themselves —
  // matching the identity tail ExtendedTo appends below.
  auto to_int = [&](int ext) {
    return perm_ != nullptr &&
                   ext < static_cast<int>(perm_->to_internal.size())
               ? perm_->to_internal[ext]
               : ext;
  };

  std::unordered_map<int, std::shared_ptr<const std::vector<double>>>
      new_feats;
  std::vector<int> new_labels;

  for (size_t i = 0; i < batch.size(); ++i) {
    const Mutation& m = batch[i];
    auto fail = [&](const char* why) {
      return Status::InvalidArgument(StrFormat(
          "batch rejected at mutation %d [%s]: %s", static_cast<int>(i),
          m.ToString().c_str(), why));
    };
    switch (m.kind) {
      case MutationKind::kAddEdge: {
        if (m.u < 0 || m.u >= n || m.v < 0 || m.v >= n) {
          return fail("endpoint out of range");
        }
        if (m.u == m.v) return fail("self loops are unsupported");
        if (!std::isfinite(m.weight) || m.weight <= 0.0) {
          return fail("weight must be finite and > 0");
        }
        const int u = to_int(m.u), v = to_int(m.v);
        if (edge_exists(u, v)) return fail("edge already present");
        RowInsert(raw_, &working_row(u), v, m.weight);
        RowInsert(raw_, &working_row(v), u, m.weight);
        ++delta.edges_added;
        break;
      }
      case MutationKind::kRemoveEdge: {
        if (m.u < 0 || m.u >= n || m.v < 0 || m.v >= n) {
          return fail("endpoint out of range");
        }
        if (m.u == m.v) return fail("self loops are unsupported");
        const int u = to_int(m.u), v = to_int(m.v);
        if (!edge_exists(u, v)) return fail("edge not present");
        RowErase(raw_, &working_row(u), v);
        RowErase(raw_, &working_row(v), u);
        ++delta.edges_removed;
        break;
      }
      case MutationKind::kAddNode: {
        if (static_cast<int>(m.features.size()) != feature_dim_) {
          return fail("feature payload width != snapshot feature_dim");
        }
        if (m.label < -1 || m.label >= num_classes_) {
          return fail("label outside [-1, num_classes)");
        }
        const int id = n++;
        working_row(id);  // empty row; marks the node structurally dirty
        new_feats[id] =
            std::make_shared<const std::vector<double>>(m.features);
        new_labels.push_back(m.label);
        ++delta.nodes_added;
        break;
      }
      case MutationKind::kUpdateFeatures: {
        if (m.u < 0 || m.u >= n) return fail("node out of range");
        if (static_cast<int>(m.features.size()) != feature_dim_) {
          return fail("feature payload width != snapshot feature_dim");
        }
        new_feats[to_int(m.u)] =
            std::make_shared<const std::vector<double>>(m.features);
        ++delta.features_updated;
        break;
      }
    }
  }

  // Every mutation validated; assemble the next version. COW: the DeltaCsr
  // copies share the base and all untouched overlay rows; features share
  // the base matrix; only deg_ is a flat O(n) copy (8 bytes/node).
  GraphSnapshot next = *this;
  next.version_ = version_ + 1;
  if (n > base_n) {
    next.raw_.Grow(n, n);
    next.adj_.Grow(n, n);
    next.deg_.resize(n, 1.0);  // isolated until edges say otherwise
    auto labels = std::make_shared<std::vector<int>>(*labels_);
    labels->insert(labels->end(), new_labels.begin(), new_labels.end());
    next.labels_ = std::move(labels);
    if (perm_ != nullptr) {
      // Appended nodes get a stable id: external == internal == append
      // position, until the next re-reorder moves them.
      next.perm_ =
          std::make_shared<const NodePermutation>(perm_->ExtendedTo(n));
      auto rank = RankVector(next.perm_);
      next.raw_.SetColRank(rank);
      next.adj_.SetColRank(rank);
    }
  }
  for (auto& [r, vec] : new_feats) {
    next.feat_overrides_[r] = std::move(vec);
  }

  // Install rebuilt raw rows; recompute degrees from the new row contents
  // (a deterministic function of the graph state — the same edge set yields
  // the same degree no matter the mutation history).
  DynamicBitset deg_changed(n);
  for (const auto& [r, row] : work) {
    std::vector<int> cols;
    std::vector<double> vals;
    cols.reserve(row.size());
    vals.reserve(row.size());
    double d = 0.0;
    for (const auto& [c, w] : row) {
      cols.push_back(c);
      vals.push_back(w);
      d += w;
    }
    d += 1.0;
    const double old = r < base_n ? deg_[r] : 1.0;
    if (d != old) deg_changed.Set(r);
    next.deg_[r] = d;
    next.raw_.OverrideRow(r, std::move(cols), std::move(vals));
  }

  // Adjacency-dirty rows: every structurally touched row, plus current
  // neighbors of any node whose degree changed (their entry at that node's
  // column renormalizes).
  DynamicBitset dirty(n);
  for (const auto& [r, row] : work) {
    (void)row;
    dirty.Set(r);
  }
  for (int u : deg_changed.ToSortedVector()) {
    const DeltaCsr::RowRef row = next.raw_.Row(u);
    for (int64_t e = 0; e < row.nnz; ++e) dirty.Set(row.cols[e]);
  }
  delta.dirty_adj_rows = dirty.ToSortedVector();

  // Rebuild the normalized row for every dirty row, with the exact
  // expression Graph::BuildAdjacencyCaches uses: w / sqrt(deg_r * deg_c),
  // self-loop weight 1.0.
  for (int r : delta.dirty_adj_rows) {
    const DeltaCsr::RowRef row = next.raw_.Row(r);
    std::vector<int> cols;
    std::vector<double> vals;
    cols.reserve(row.nnz + 1);
    vals.reserve(row.nnz + 1);
    bool self_emitted = false;
    auto emit = [&](int c, double w) {
      const double d = std::sqrt(next.deg_[r] * next.deg_[c]);
      cols.push_back(c);
      vals.push_back(d > 0.0 ? w / d : 0.0);
    };
    // Stored order is ascending rank, so the self loop slots in where the
    // row's own rank falls (plain column order when unreordered).
    const int64_t self_rank = next.raw_.RankOf(r);
    for (int64_t e = 0; e < row.nnz; ++e) {
      if (!self_emitted && next.raw_.RankOf(row.cols[e]) > self_rank) {
        emit(r, 1.0);
        self_emitted = true;
      }
      emit(row.cols[e], row.vals[e]);
    }
    if (!self_emitted) emit(r, 1.0);
    next.adj_.OverrideRow(r, std::move(cols), std::move(vals));
  }

  delta.dirty_feature_rows.reserve(new_feats.size());
  for (const auto& [r, vec] : new_feats) {
    (void)vec;
    delta.dirty_feature_rows.push_back(r);
  }
  std::sort(delta.dirty_feature_rows.begin(), delta.dirty_feature_rows.end());

  // Fold the overlays into fresh bases once they dominate — COW stops
  // paying for itself past that point. The flag tells reordered callers this
  // is the cheap moment to relayout (see BatchDelta::compacted).
  const bool raw_compacted = next.raw_.MaybeCompact();
  const bool adj_compacted = next.adj_.MaybeCompact();
  delta.compacted = raw_compacted || adj_compacted;
  return std::make_pair(std::move(next), std::move(delta));
}

Graph GraphSnapshot::MaterializeGraph() const {
  const int n = num_nodes();
  // Rebuild in EXTERNAL space — Graph::Create sorts CSR entries by external
  // id there, which is exactly this snapshot's stored (rank) order — then
  // re-apply the permutation, so the result's caches are bitwise identical
  // to the layout a fresh FromGraph of this topology would carry.
  std::vector<Edge> edges;
  edges.reserve(static_cast<size_t>(raw_.nnz() / 2));
  for (int r = 0; r < n; ++r) {
    const DeltaCsr::RowRef row = raw_.Row(r);
    const int src = ToExternal(r);
    for (int64_t e = 0; e < row.nnz; ++e) {
      const int dst = ToExternal(row.cols[e]);
      if (dst > src) edges.push_back({src, dst, row.vals[e]});
    }
  }
  Matrix feats(n, feature_dim_);
  std::vector<int> labels(n);
  for (int ext = 0; ext < n; ++ext) {
    const int r = ToInternal(ext);
    std::memcpy(feats.Row(ext), FeatureRow(r),
                static_cast<size_t>(feature_dim_) * sizeof(double));
    labels[ext] = (*labels_)[r];
  }
  Graph external =
      Graph::Create(n, std::move(edges), /*directed=*/false, std::move(feats),
                    std::move(labels), num_classes_);
  if (perm_ == nullptr) return external;
  return ApplyNodePermutation(external, perm_);
}

ReorderResult GraphSnapshot::Reordered(
    ReorderStrategy strategy, uint64_t seed) const {
  const int n = num_nodes();
  AHG_TRACE_SPAN_ARG("dyn/reorder", n);
  // Topology in external ids. Stored row order is ascending external, so
  // the lists come out sorted without a per-row sort, and the permutation
  // depends only on (logical graph, strategy, seed).
  std::vector<std::vector<int>> neighbors(n);
  for (int r = 0; r < n; ++r) {
    const DeltaCsr::RowRef row = raw_.Row(r);
    std::vector<int>& list = neighbors[ToExternal(r)];
    list.reserve(row.nnz);
    for (int64_t e = 0; e < row.nnz; ++e) list.push_back(ToExternal(row.cols[e]));
  }
  NodePermutation next_perm =
      ComputeReorderFromAdjacency(neighbors, strategy, seed);

  ReorderResult out;
  out.remap.resize(n);
  for (int r = 0; r < n; ++r) {
    out.remap[r] = next_perm.to_internal[ToExternal(r)];
  }
  const std::vector<int>& remap = out.remap;

  GraphSnapshot& next = out.snapshot;
  next.version_ = version_ + 1;
  next.feature_dim_ = feature_dim_;
  next.num_classes_ = num_classes_;
  next.perm_ = std::make_shared<const NodePermutation>(std::move(next_perm));

  // Rebuild both CSRs in the new row order, overlays folded in. Entry order
  // within each row is copied verbatim: it was ascending external before,
  // and external ids don't move, so it is still ascending (new) rank —
  // bitwise conformance survives the relayout.
  auto rebuilt = [&](const DeltaCsr& src) {
    std::vector<int64_t> row_ptr(n + 1, 0);
    for (int r = 0; r < n; ++r) row_ptr[remap[r] + 1] = src.Row(r).nnz;
    for (int i = 0; i < n; ++i) row_ptr[i + 1] += row_ptr[i];
    std::vector<int> col_idx(src.nnz());
    std::vector<double> values(src.nnz());
    for (int r = 0; r < n; ++r) {
      const DeltaCsr::RowRef row = src.Row(r);
      int64_t at = row_ptr[remap[r]];
      for (int64_t e = 0; e < row.nnz; ++e, ++at) {
        col_idx[at] = remap[row.cols[e]];
        values[at] = row.vals[e];
      }
    }
    return DeltaCsr(std::make_shared<const SparseMatrix>(
        SparseMatrix::FromCsrParts(n, n, std::move(row_ptr),
                                   std::move(col_idx), std::move(values))));
  };
  next.raw_ = rebuilt(raw_);
  next.adj_ = rebuilt(adj_);
  auto rank = RankVector(next.perm_);
  next.raw_.SetColRank(rank);
  next.adj_.SetColRank(rank);

  next.deg_.resize(n);
  for (int r = 0; r < n; ++r) next.deg_[remap[r]] = deg_[r];

  auto feats = std::make_shared<Matrix>(n, feature_dim_);
  std::vector<int> labels(n);
  for (int r = 0; r < n; ++r) {
    std::memcpy(feats->Row(remap[r]), FeatureRow(r),
                static_cast<size_t>(feature_dim_) * sizeof(double));
    labels[remap[r]] = (*labels_)[r];
  }
  next.feat_base_ = std::move(feats);
  next.labels_ = std::make_shared<const std::vector<int>>(std::move(labels));
  return out;
}

}  // namespace ahg::dyn
