#include "dyn/incremental.h"

#include <cstring>
#include <utility>

#include "obs/trace.h"
#include "tensor/pool.h"
#include "util/bitset.h"
#include "util/logging.h"

namespace ahg::dyn {

namespace {

// D_next = seed ∪ N(D): every bit of `seed`, plus each adjacency-row
// neighborhood of the bits in `frontier`. The symmetric self-looped
// adjacency makes N(D) ⊇ D.
DynamicBitset ExpandDirty(const DeltaCsr& adj, const DynamicBitset& frontier,
                          const std::vector<int>& seed) {
  DynamicBitset next(adj.rows());
  for (int r : seed) next.Set(r);
  for (int r : frontier.ToSortedVector()) {
    const DeltaCsr::RowRef row = adj.Row(r);
    for (int64_t e = 0; e < row.nnz; ++e) next.Set(row.cols[e]);
  }
  return next;
}

}  // namespace

Matrix DenseLayerTransform(const Matrix& agg, const Matrix& w, const Matrix& b,
                           bool relu) {
  Matrix h = MatMul(agg, w);
  AHG_CHECK_EQ(b.rows(), 1);
  AHG_CHECK_EQ(b.cols(), h.cols());
  for (int r = 0; r < h.rows(); ++r) {
    double* row = h.Row(r);
    const double* bias = b.Row(0);
    for (int c = 0; c < h.cols(); ++c) row[c] += bias[c];
    if (relu) {
      for (int c = 0; c < h.cols(); ++c) row[c] = row[c] > 0.0 ? row[c] : 0.0;
    }
  }
  return h;
}

std::vector<std::vector<int>> PerLayerDirtyRows(const ModelConfig& config,
                                                const DeltaCsr& adj,
                                                const BatchDelta& delta) {
  // D_0 seeds from the feature-dirty rows; every level adds the
  // adjacency-dirty rows and one hop of neighborhood.
  std::vector<std::vector<int>> dirty_rows(config.num_layers);
  DynamicBitset frontier(adj.rows());
  for (int r : delta.dirty_feature_rows) frontier.Set(r);
  for (int l = 0; l < config.num_layers; ++l) {
    if (config.family == ModelFamily::kSgc && l == 0) {
      // SGC's linear map is row-local: Z rows dirty == feature-dirty
      // rows; the hop expansion starts at the first propagation.
      dirty_rows[l] = delta.dirty_feature_rows;
      continue;
    }
    frontier = ExpandDirty(adj, frontier, delta.dirty_adj_rows);
    dirty_rows[l] = frontier.ToSortedVector();
  }
  // SGC propagates num_layers times after the map; fold the map level in
  // by treating it as level 0 above and expanding the remaining hops.
  if (config.family == ModelFamily::kSgc) {
    dirty_rows.resize(config.num_layers + 1);
    frontier = ExpandDirty(adj, frontier, delta.dirty_adj_rows);
    dirty_rows[config.num_layers] = frontier.ToSortedVector();
  }
  return dirty_rows;
}

IncrementalPropagator::IncrementalPropagator(const ModelConfig& config,
                                             std::vector<Matrix> layer_params,
                                             const RefreshOptions& options)
    : config_(config), params_(std::move(layer_params)), options_(options) {
  AHG_CHECK_MSG(Supports(config),
                "IncrementalPropagator supports kGcn and kSgc only");
  AHG_CHECK_GT(config.num_layers, 0);
  if (config.family == ModelFamily::kGcn) {
    AHG_CHECK_EQ(static_cast<int>(params_.size()), 2 * config.num_layers);
    int in = config.in_dim;
    for (int l = 0; l < config.num_layers; ++l) {
      AHG_CHECK_EQ(params_[2 * l].rows(), in);
      AHG_CHECK_EQ(params_[2 * l].cols(), config.hidden_dim);
      AHG_CHECK_EQ(params_[2 * l + 1].cols(), config.hidden_dim);
      in = config.hidden_dim;
    }
  } else {
    AHG_CHECK_EQ(static_cast<int>(params_.size()), 2);
    AHG_CHECK_EQ(params_[0].rows(), config.in_dim);
    AHG_CHECK_EQ(params_[0].cols(), config.hidden_dim);
    AHG_CHECK_EQ(params_[1].cols(), config.hidden_dim);
  }
}

bool IncrementalPropagator::Supports(const ModelConfig& config) {
  return config.family == ModelFamily::kGcn ||
         config.family == ModelFamily::kSgc;
}

std::vector<Matrix> IncrementalPropagator::ComputeStates(
    const GraphSnapshot& snap, Matrix x) const {
  const DeltaCsr& adj = snap.adjacency();
  std::vector<Matrix> states;
  states.reserve(config_.num_layers + 2);
  states.push_back(std::move(x));
  if (config_.family == ModelFamily::kGcn) {
    for (int l = 0; l < config_.num_layers; ++l) {
      Matrix agg = adj.Spmm(states.back());
      states.push_back(DenseLayerTransform(agg, params_[2 * l], params_[2 * l + 1],
                                      /*relu=*/true));
    }
  } else {  // kSgc: one linear map, then repeated propagation.
    states.push_back(
        DenseLayerTransform(states[0], params_[0], params_[1], /*relu=*/false));
    for (int l = 0; l < config_.num_layers; ++l) {
      states.push_back(adj.Spmm(states.back()));
    }
  }
  return states;
}

RefreshStats IncrementalPropagator::FullRefresh(const GraphSnapshot& snap) {
  AHG_TRACE_SPAN_ARG("dyn/full_refresh", snap.num_nodes());
  // Pool stays warm across refreshes (no arena trim): a streaming workload
  // reuses the same layer-state and scratch shapes every batch. Fusion is
  // left as the caller set it — this path runs raw kernels, not autodiff.
  ScopedMemPlane mem_plane(options_.pooling, FusionEnabled());
  AHG_CHECK_EQ(snap.feature_dim(), config_.in_dim);
  states_ = ComputeStates(snap, snap.DenseFeatures());
  hidden_ = std::make_shared<const Matrix>(states_.back());
  has_state_ = true;
  version_ = snap.version();
  RefreshStats stats;
  stats.incremental = false;
  stats.version = version_;
  stats.rows_refreshed =
      static_cast<int64_t>(snap.num_nodes()) * config_.num_layers;
  stats.final_dirty_rows = snap.num_nodes();
  stats.dirty_fraction = 1.0;
  return stats;
}

StatusOr<RefreshStats> IncrementalPropagator::Refresh(
    const GraphSnapshot& snap, const BatchDelta& delta) {
  if (delta.from_version != delta.to_version - 1 ||
      delta.to_version != snap.version()) {
    return Status::InvalidArgument("delta does not describe the step onto "
                                   "the given snapshot");
  }
  if (!has_state_ || delta.from_version != version_) {
    return FullRefresh(snap);
  }
  AHG_TRACE_SPAN_ARG("dyn/incremental_refresh",
                     static_cast<int64_t>(delta.dirty_adj_rows.size()));
  ScopedMemPlane mem_plane(options_.pooling, FusionEnabled());
  const DeltaCsr& adj = snap.adjacency();
  const int n = snap.num_nodes();

  // Expand the per-layer dirty sets first — pure bitset work, no matrix
  // math — so the full-recompute fallback can trigger before any flops.
  const std::vector<std::vector<int>> dirty_rows =
      PerLayerDirtyRows(config_, adj, delta);
  const std::vector<int>& final_dirty = dirty_rows.back();
  const double fraction =
      n > 0 ? static_cast<double>(final_dirty.size()) / n : 0.0;
  if (fraction > options_.full_refresh_fraction) {
    return FullRefresh(snap);
  }

  // Grow cached states for appended nodes; the new rows are in every dirty
  // set, so their zero-filled tails are overwritten below.
  if (n > states_[0].rows()) {
    for (Matrix& s : states_) s = GrowRows(s, n);
  }
  for (int r : delta.dirty_feature_rows) {
    std::memcpy(states_[0].Row(r), snap.FeatureRow(r),
                static_cast<size_t>(snap.feature_dim()) * sizeof(double));
  }

  RefreshStats stats;
  stats.incremental = true;
  stats.version = snap.version();
  stats.final_dirty_rows = static_cast<int>(final_dirty.size());
  stats.dirty_fraction = fraction;
  if (config_.family == ModelFamily::kGcn) {
    for (int l = 0; l < config_.num_layers; ++l) {
      const std::vector<int>& rows = dirty_rows[l];
      if (rows.empty()) continue;
      Matrix agg = adj.SpmmRows(rows, states_[l]);
      Matrix h = DenseLayerTransform(agg, params_[2 * l], params_[2 * l + 1],
                                /*relu=*/true);
      ScatterRows(h, rows, &states_[l + 1]);
      stats.rows_refreshed += static_cast<int64_t>(rows.size());
    }
  } else {  // kSgc
    const std::vector<int>& z_rows = dirty_rows[0];
    if (!z_rows.empty()) {
      Matrix z = DenseLayerTransform(GatherRows(states_[0], z_rows), params_[0],
                                params_[1], /*relu=*/false);
      ScatterRows(z, z_rows, &states_[1]);
      stats.rows_refreshed += static_cast<int64_t>(z_rows.size());
    }
    for (int l = 0; l < config_.num_layers; ++l) {
      const std::vector<int>& rows = dirty_rows[l + 1];
      if (rows.empty()) continue;
      Matrix h = adj.SpmmRows(rows, states_[l + 1]);
      ScatterRows(h, rows, &states_[l + 2]);
      stats.rows_refreshed += static_cast<int64_t>(rows.size());
    }
  }
  hidden_ = std::make_shared<const Matrix>(states_.back());
  version_ = snap.version();
  return stats;
}

void IncrementalPropagator::ApplyReorder(const std::vector<int>& remap,
                                         uint64_t new_version) {
  AHG_CHECK(has_state_);
  AHG_TRACE_SPAN_ARG("dyn/apply_reorder",
                     static_cast<int64_t>(remap.size()));
  for (Matrix& s : states_) {
    AHG_CHECK_EQ(s.rows(), static_cast<int>(remap.size()));
    Matrix moved(s.rows(), s.cols());
    for (int r = 0; r < s.rows(); ++r) {
      std::memcpy(moved.Row(remap[r]), s.Row(r),
                  static_cast<size_t>(s.cols()) * sizeof(double));
    }
    s = std::move(moved);
  }
  hidden_ = std::make_shared<const Matrix>(states_.back());
  version_ = new_version;
}

Matrix IncrementalPropagator::ComputeFull(const GraphSnapshot& snap) const {
  AHG_CHECK_EQ(snap.feature_dim(), config_.in_dim);
  std::vector<Matrix> states = ComputeStates(snap, snap.DenseFeatures());
  return std::move(states.back());
}

}  // namespace ahg::dyn
