// Incremental propagation refresh: patch cached layer states H^(1..L)
// after a mutation batch by recomputing only dirty rows.
//
// Correctness rests on two facts:
//  1. Every per-row state of GCN and SGC is a row-local function of the
//     aggregation input: H^(l) row r = f(sum_c A[r,c] * H^(l-1)[c]), with f
//     a dense transform (GEMM row + bias + ReLU) that touches no other
//     row. So row r of H^(l) changes only when A row r changed or some
//     H^(l-1) row in N(r) changed — the dirty set expands by one hop per
//     layer: D_l = S_A ∪ N(D_{l-1}), starting from the batch's
//     adjacency-dirty and feature-dirty rows. Self loops make N(D) ⊇ D, so
//     the sets are monotone.
//  2. The row kernels are subset-exact: DeltaCsr::SpmmRows and MatMul
//     produce rows bitwise identical to the corresponding rows of the full
//     product (fixed per-row accumulation order, one owner per row). So
//     patching dirty rows of the cached state leaves a matrix bitwise
//     identical to a cold full recompute — the oracle ComputeFull() tests
//     assert with memcmp.
//
// Families: kGcn and kSgc, the pure SpMM-plus-row-transform architectures.
// Supports() gates everything else; callers fall back to a full zoo
// forward. A refresh also falls back to FullRefresh when the final dirty
// set exceeds options.full_refresh_fraction of the rows (patching most of
// the matrix costs more than recomputing it) or when the snapshot is not
// the direct successor of the cached version.
#ifndef AUTOHENS_DYN_INCREMENTAL_H_
#define AUTOHENS_DYN_INCREMENTAL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "dyn/snapshot.h"
#include "models/model.h"
#include "tensor/matrix.h"
#include "util/status.h"

namespace ahg::dyn {

// Row-local dense transform of one layer: H = agg * W (+ bias) (ReLU?),
// with exactly the arithmetic of the eval-mode autodiff chain
// Relu(AddRowVector(MatMul(agg, W), b)) — same kernels, same order — so a
// row computed from a gathered subset is bitwise identical to the same row
// of the full layer. Shared by the incremental refresh and the partitioned
// execution plane (src/partition), whose conformance stories both rest on
// this subset-exactness.
Matrix DenseLayerTransform(const Matrix& agg, const Matrix& w, const Matrix& b,
                           bool relu);

// Per-layer dirty row sets for a mutation step: entry l lists the rows
// that must be recomputed at compute stage l. GCN: num_layers entries,
// D_l = S_A ∪ N(D_{l-1}) seeded from the feature-dirty rows. SGC:
// num_layers + 1 entries; level 0 is the row-local linear map (dirty ==
// feature-dirty rows) and each later level is one propagation hop. Rows
// are sorted ascending. Pure bitset work — no matrix math — so callers can
// decide on a full-recompute fallback before spending flops.
std::vector<std::vector<int>> PerLayerDirtyRows(const ModelConfig& config,
                                                const DeltaCsr& adj,
                                                const BatchDelta& delta);

struct RefreshOptions {
  // Fall back to a full recompute when |D_L| / num_nodes exceeds this.
  double full_refresh_fraction = 0.5;
  // Recycle refresh scratch (dirty-row gathers, per-layer patch products)
  // through the MatrixPool (tensor/pool.h) for the duration of each
  // Refresh/FullRefresh call. Bitwise-neutral.
  bool pooling = false;
};

struct RefreshStats {
  bool incremental = false;     // false = full recompute path ran
  uint64_t version = 0;         // snapshot version the states now match
  int64_t rows_refreshed = 0;   // sum of |D_l| over recomputed layers
  int final_dirty_rows = 0;     // |D_L|: rows of H^(L) that were patched
  double dirty_fraction = 0.0;  // final_dirty_rows / num_nodes
};

class IncrementalPropagator {
 public:
  // `layer_params` in ParameterStore::Snapshot order, classifier head
  // excluded — GCN: [W_1, b_1, ..., W_L, b_L]; SGC: [W, b]. Shapes are
  // checked against `config`.
  IncrementalPropagator(const ModelConfig& config,
                        std::vector<Matrix> layer_params,
                        const RefreshOptions& options = {});

  // True for the families whose layer structure the refresh understands.
  static bool Supports(const ModelConfig& config);

  // Cold recompute of every cached layer state from `snap`.
  RefreshStats FullRefresh(const GraphSnapshot& snap);

  // Patches the cached states from `snap.version() - 1` to `snap.version()`
  // using the batch's dirty sets; falls back to FullRefresh when it cannot
  // (see file comment). `delta` must describe the step onto `snap`.
  StatusOr<RefreshStats> Refresh(const GraphSnapshot& snap,
                                 const BatchDelta& delta);

  // Row-gathers every cached layer state through `remap` (remap[old_row] =
  // new_row) after a GraphSnapshot::Reordered relayout, and adopts the
  // reordered snapshot's version. Pure data movement, zero FLOPs — rows
  // keep their bytes at new positions — so the incremental dirty-set cost
  // bound is untouched and the next Refresh patches as if the relayout
  // never happened.
  void ApplyReorder(const std::vector<int>& remap, uint64_t new_version);

  // Final hidden states H^(L) for the current version — an immutable copy
  // published per refresh, safe to hand to concurrent readers and caches.
  std::shared_ptr<const Matrix> hidden() const { return hidden_; }

  bool has_state() const { return has_state_; }
  uint64_t version() const { return version_; }

  // Oracle: H^(L) recomputed from scratch through the same kernels, without
  // touching cached state. Tests memcmp this against the patched states.
  Matrix ComputeFull(const GraphSnapshot& snap) const;

 private:
  // All layer states from features `x`; shared by FullRefresh/ComputeFull.
  std::vector<Matrix> ComputeStates(const GraphSnapshot& snap,
                                    Matrix x) const;

  ModelConfig config_;
  std::vector<Matrix> params_;
  RefreshOptions options_;
  bool has_state_ = false;
  uint64_t version_ = 0;
  // states_[0] = dense features X. GCN: states_[l] = H^(l). SGC:
  // states_[1] = XW + b, states_[1 + k] = A^k (XW + b).
  std::vector<Matrix> states_;
  std::shared_ptr<const Matrix> hidden_;
};

}  // namespace ahg::dyn

#endif  // AUTOHENS_DYN_INCREMENTAL_H_
