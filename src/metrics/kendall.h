// Kendall rank correlation (tau-b, tie-corrected) — the statistic the paper
// uses to validate that proxy evaluation preserves model ranking (Fig. 3).
#ifndef AUTOHENS_METRICS_KENDALL_H_
#define AUTOHENS_METRICS_KENDALL_H_

#include <vector>

namespace ahg {

// Returns tau-b in [-1, 1]; 0 if either vector is constant.
double KendallTau(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace ahg

#endif  // AUTOHENS_METRICS_KENDALL_H_
