// Per-class diagnostics: confusion matrix, precision/recall/F1 per class,
// micro/macro aggregates — the report a practitioner inspects after the
// ensemble's headline accuracy.
#ifndef AUTOHENS_METRICS_CLASSIFICATION_REPORT_H_
#define AUTOHENS_METRICS_CLASSIFICATION_REPORT_H_

#include <string>
#include <vector>

#include "tensor/matrix.h"

namespace ahg {

struct ClassMetrics {
  int support = 0;  // true instances of the class in the evaluation set
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

struct ClassificationReport {
  // confusion(i, j): count with true class i predicted as class j.
  Matrix confusion;
  std::vector<ClassMetrics> per_class;
  double accuracy = 0.0;
  double macro_f1 = 0.0;  // unweighted mean over classes with support
  double micro_f1 = 0.0;  // == accuracy for single-label classification
};

// Builds the report from arg-max predictions of `probs` rows listed in
// `nodes` against `labels`.
ClassificationReport BuildClassificationReport(
    const Matrix& probs, const std::vector<int>& labels,
    const std::vector<int>& nodes, int num_classes);

// Human-readable multi-line rendering.
std::string FormatClassificationReport(const ClassificationReport& report);

}  // namespace ahg

#endif  // AUTOHENS_METRICS_CLASSIFICATION_REPORT_H_
