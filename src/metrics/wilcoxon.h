// Two-sided Wilcoxon signed-rank test, used by the table benches to report
// significance between AutoHEnsGNN and the strongest baseline, as in the
// captions of Tables II, III, V, VIII and IX of the paper.
#ifndef AUTOHENS_METRICS_WILCOXON_H_
#define AUTOHENS_METRICS_WILCOXON_H_

#include <vector>

namespace ahg {

// Returns the two-sided p-value for paired samples a, b (H0: same median).
// Zero differences are discarded (standard practice); with fewer than one
// nonzero difference the test is undefined and 1.0 is returned. Uses the
// exact null distribution for n <= 12 and a normal approximation with tie
// correction beyond that.
double WilcoxonSignedRankTest(const std::vector<double>& a,
                              const std::vector<double>& b);

}  // namespace ahg

#endif  // AUTOHENS_METRICS_WILCOXON_H_
