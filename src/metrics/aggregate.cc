#include "metrics/aggregate.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"
#include "util/string_util.h"

namespace ahg {

RunStats Summarize(const std::vector<double>& values) {
  AHG_CHECK(!values.empty());
  RunStats stats;
  stats.count = static_cast<int>(values.size());
  stats.mean = std::accumulate(values.begin(), values.end(), 0.0) /
               stats.count;
  stats.min = *std::min_element(values.begin(), values.end());
  stats.max = *std::max_element(values.begin(), values.end());
  if (stats.count > 1) {
    double ss = 0.0;
    for (double v : values) ss += (v - stats.mean) * (v - stats.mean);
    stats.stddev = std::sqrt(ss / (stats.count - 1));
  }
  return stats;
}

std::string FormatMeanStd(const RunStats& stats, bool percent) {
  const double scale = percent ? 100.0 : 1.0;
  return StrFormat("%.1f±%.1f", stats.mean * scale, stats.stddev * scale);
}

std::vector<double> AverageRankScore(
    const std::vector<std::vector<double>>& scores_by_dataset) {
  AHG_CHECK(!scores_by_dataset.empty());
  const int num_methods = static_cast<int>(scores_by_dataset[0].size());
  std::vector<double> rank_sum(num_methods, 0.0);
  for (const auto& scores : scores_by_dataset) {
    AHG_CHECK_EQ(static_cast<int>(scores.size()), num_methods);
    for (int m = 0; m < num_methods; ++m) {
      // rank = 1 + number strictly better + half the number tied.
      double rank = 1.0;
      for (int o = 0; o < num_methods; ++o) {
        if (o == m) continue;
        if (scores[o] > scores[m]) rank += 1.0;
        else if (scores[o] == scores[m]) rank += 0.5;
      }
      rank_sum[m] += rank;
    }
  }
  for (auto& r : rank_sum) r /= static_cast<double>(scores_by_dataset.size());
  return rank_sum;
}

}  // namespace ahg
