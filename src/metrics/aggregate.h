// Aggregation helpers for repeated-run statistics (mean ± std, min/max
// spread) used throughout the benches.
#ifndef AUTOHENS_METRICS_AGGREGATE_H_
#define AUTOHENS_METRICS_AGGREGATE_H_

#include <string>
#include <vector>

namespace ahg {

struct RunStats {
  double mean = 0.0;
  double stddev = 0.0;  // sample stddev (n - 1); 0 for a single run
  double min = 0.0;
  double max = 0.0;
  int count = 0;
};

RunStats Summarize(const std::vector<double>& values);

// "86.1±0.2"-style rendering with values scaled by 100 (accuracy -> percent)
// when `percent` is set.
std::string FormatMeanStd(const RunStats& stats, bool percent);

// Average rank (1 = best, ties averaged) of each column across rows, the
// KDD Cup scoring rule: rows = datasets, cols = methods, higher value =
// better method on that dataset.
std::vector<double> AverageRankScore(
    const std::vector<std::vector<double>>& scores_by_dataset);

}  // namespace ahg

#endif  // AUTOHENS_METRICS_AGGREGATE_H_
