#include "metrics/metrics.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"

namespace ahg {

double Accuracy(const Matrix& probs, const std::vector<int>& labels,
                const std::vector<int>& nodes) {
  AHG_CHECK(!nodes.empty());
  int correct = 0;
  for (int node : nodes) {
    if (probs.ArgMaxRow(node) == labels[node]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(nodes.size());
}

double MacroF1(const Matrix& probs, const std::vector<int>& labels,
               const std::vector<int>& nodes, int num_classes) {
  AHG_CHECK(!nodes.empty());
  std::vector<int> tp(num_classes, 0), fp(num_classes, 0), fn(num_classes, 0);
  for (int node : nodes) {
    const int pred = probs.ArgMaxRow(node);
    const int truth = labels[node];
    if (pred == truth) {
      ++tp[truth];
    } else {
      ++fp[pred];
      ++fn[truth];
    }
  }
  double f1_sum = 0.0;
  int present = 0;
  for (int c = 0; c < num_classes; ++c) {
    if (tp[c] + fp[c] + fn[c] == 0) continue;
    ++present;
    const double denom = 2.0 * tp[c] + fp[c] + fn[c];
    f1_sum += denom > 0.0 ? 2.0 * tp[c] / denom : 0.0;
  }
  return present > 0 ? f1_sum / present : 0.0;
}

double RocAuc(const std::vector<double>& scores,
              const std::vector<int>& labels) {
  AHG_CHECK_EQ(scores.size(), labels.size());
  const int n = static_cast<int>(scores.size());
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return scores[a] < scores[b]; });
  // Average ranks over tie groups, then the Mann-Whitney U statistic.
  std::vector<double> rank(n, 0.0);
  int i = 0;
  while (i < n) {
    int j = i;
    while (j + 1 < n && scores[order[j + 1]] == scores[order[i]]) ++j;
    const double avg_rank = (i + j) / 2.0 + 1.0;  // 1-based
    for (int k = i; k <= j; ++k) rank[order[k]] = avg_rank;
    i = j + 1;
  }
  int64_t num_pos = 0;
  double pos_rank_sum = 0.0;
  for (int k = 0; k < n; ++k) {
    if (labels[k] == 1) {
      ++num_pos;
      pos_rank_sum += rank[k];
    }
  }
  const int64_t num_neg = n - num_pos;
  AHG_CHECK_MSG(num_pos > 0 && num_neg > 0,
                "RocAuc needs both classes present");
  const double u =
      pos_rank_sum - static_cast<double>(num_pos) * (num_pos + 1) / 2.0;
  return u / (static_cast<double>(num_pos) * static_cast<double>(num_neg));
}

}  // namespace ahg
