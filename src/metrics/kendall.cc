#include "metrics/kendall.h"

#include <cmath>

#include "util/logging.h"

namespace ahg {

double KendallTau(const std::vector<double>& x, const std::vector<double>& y) {
  AHG_CHECK_EQ(x.size(), y.size());
  const int n = static_cast<int>(x.size());
  AHG_CHECK_GE(n, 2);
  // O(n^2) pair counting is fine at candidate-pool sizes (tens of models).
  int64_t concordant = 0, discordant = 0, ties_x = 0, ties_y = 0;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const double dx = x[i] - x[j];
      const double dy = y[i] - y[j];
      if (dx == 0.0 && dy == 0.0) {
        // tie in both: excluded from all terms
      } else if (dx == 0.0) {
        ++ties_x;
      } else if (dy == 0.0) {
        ++ties_y;
      } else if ((dx > 0.0) == (dy > 0.0)) {
        ++concordant;
      } else {
        ++discordant;
      }
    }
  }
  const double denom =
      std::sqrt(static_cast<double>(concordant + discordant + ties_x)) *
      std::sqrt(static_cast<double>(concordant + discordant + ties_y));
  if (denom == 0.0) return 0.0;
  return static_cast<double>(concordant - discordant) / denom;
}

}  // namespace ahg
