#include "metrics/classification_report.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace ahg {

ClassificationReport BuildClassificationReport(
    const Matrix& probs, const std::vector<int>& labels,
    const std::vector<int>& nodes, int num_classes) {
  AHG_CHECK(!nodes.empty());
  AHG_CHECK_GT(num_classes, 0);
  ClassificationReport report;
  report.confusion = Matrix(num_classes, num_classes);
  int correct = 0;
  for (int node : nodes) {
    const int truth = labels[node];
    const int pred = probs.ArgMaxRow(node);
    AHG_CHECK(truth >= 0 && truth < num_classes);
    report.confusion(truth, pred) += 1.0;
    correct += truth == pred;
  }
  report.accuracy = static_cast<double>(correct) / nodes.size();
  report.micro_f1 = report.accuracy;

  report.per_class.resize(num_classes);
  double macro_sum = 0.0;
  int classes_with_support = 0;
  for (int c = 0; c < num_classes; ++c) {
    double tp = report.confusion(c, c);
    double actual = 0.0, predicted = 0.0;
    for (int j = 0; j < num_classes; ++j) {
      actual += report.confusion(c, j);
      predicted += report.confusion(j, c);
    }
    ClassMetrics& m = report.per_class[c];
    m.support = static_cast<int>(actual);
    m.precision = predicted > 0.0 ? tp / predicted : 0.0;
    m.recall = actual > 0.0 ? tp / actual : 0.0;
    m.f1 = (m.precision + m.recall) > 0.0
               ? 2.0 * m.precision * m.recall / (m.precision + m.recall)
               : 0.0;
    if (m.support > 0) {
      macro_sum += m.f1;
      ++classes_with_support;
    }
  }
  report.macro_f1 =
      classes_with_support > 0 ? macro_sum / classes_with_support : 0.0;
  return report;
}

std::string FormatClassificationReport(const ClassificationReport& report) {
  std::string out = StrFormat("accuracy: %.3f  macro-F1: %.3f\n",
                              report.accuracy, report.macro_f1);
  out += "class  support  precision  recall  f1\n";
  for (size_t c = 0; c < report.per_class.size(); ++c) {
    const ClassMetrics& m = report.per_class[c];
    out += StrFormat("%5zu  %7d  %9.3f  %6.3f  %5.3f\n", c, m.support,
                     m.precision, m.recall, m.f1);
  }
  return out;
}

}  // namespace ahg
