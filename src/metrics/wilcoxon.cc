#include "metrics/wilcoxon.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"

namespace ahg {
namespace {

// Exact two-sided p-value by enumerating all 2^n sign assignments of the
// ranks (n <= 12 keeps this at <= 4096 cases).
double ExactPValue(const std::vector<double>& ranks, double w_observed) {
  const int n = static_cast<int>(ranks.size());
  const int total = 1 << n;
  int at_least_as_extreme = 0;
  const double total_rank_sum =
      std::accumulate(ranks.begin(), ranks.end(), 0.0);
  const double mean = total_rank_sum / 2.0;
  const double observed_dev = std::abs(w_observed - mean);
  for (int mask = 0; mask < total; ++mask) {
    double w = 0.0;
    for (int i = 0; i < n; ++i) {
      if (mask & (1 << i)) w += ranks[i];
    }
    if (std::abs(w - mean) >= observed_dev - 1e-12) ++at_least_as_extreme;
  }
  return static_cast<double>(at_least_as_extreme) / total;
}

}  // namespace

double WilcoxonSignedRankTest(const std::vector<double>& a,
                              const std::vector<double>& b) {
  AHG_CHECK_EQ(a.size(), b.size());
  std::vector<double> diffs;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    if (d != 0.0) diffs.push_back(d);
  }
  const int n = static_cast<int>(diffs.size());
  if (n < 1) return 1.0;

  // Rank |d| with average ranks for ties.
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int x, int y) {
    return std::abs(diffs[x]) < std::abs(diffs[y]);
  });
  std::vector<double> rank(n, 0.0);
  double tie_correction = 0.0;
  int i = 0;
  while (i < n) {
    int j = i;
    while (j + 1 < n &&
           std::abs(diffs[order[j + 1]]) == std::abs(diffs[order[i]]))
      ++j;
    const double avg = (i + j) / 2.0 + 1.0;
    const int t = j - i + 1;
    tie_correction += static_cast<double>(t) * t * t - t;
    for (int k = i; k <= j; ++k) rank[order[k]] = avg;
    i = j + 1;
  }

  double w_plus = 0.0;
  for (int k = 0; k < n; ++k) {
    if (diffs[k] > 0.0) w_plus += rank[k];
  }

  if (n <= 12) {
    return ExactPValue(rank, w_plus);
  }
  const double mean = n * (n + 1) / 4.0;
  const double var =
      n * (n + 1) * (2.0 * n + 1) / 24.0 - tie_correction / 48.0;
  if (var <= 0.0) return 1.0;
  // Continuity-corrected normal approximation.
  const double z = (std::abs(w_plus - mean) - 0.5) / std::sqrt(var);
  const double p = std::erfc(z / std::sqrt(2.0));
  return std::min(1.0, p);
}

}  // namespace ahg
