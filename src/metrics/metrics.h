// Prediction-quality metrics: accuracy, macro-F1 and ROC-AUC.
#ifndef AUTOHENS_METRICS_METRICS_H_
#define AUTOHENS_METRICS_METRICS_H_

#include <vector>

#include "tensor/matrix.h"

namespace ahg {

// Fraction of `nodes` whose arg-max row of `probs` equals labels[node].
double Accuracy(const Matrix& probs, const std::vector<int>& labels,
                const std::vector<int>& nodes);

// Unweighted mean of per-class F1 over the classes present in `nodes`.
double MacroF1(const Matrix& probs, const std::vector<int>& labels,
               const std::vector<int>& nodes, int num_classes);

// Area under the ROC curve for binary scores; ties share rank (exact
// Mann-Whitney formulation). labels must contain both classes.
double RocAuc(const std::vector<double>& scores,
              const std::vector<int>& labels);

}  // namespace ahg

#endif  // AUTOHENS_METRICS_METRICS_H_
