// GCNII (Chen et al., 2020): deep GCN with initial residual and identity
// mapping. P = (1 - a) Ahat H^(l-1) + a H^(0);
// H^(l) = ReLU((1 - b_l) P + b_l P W_l), b_l = log(lambda / l + 1).
#include <cmath>

#include "autodiff/graph_ops.h"
#include "autodiff/ops.h"
#include "models/zoo_internal.h"
#include "nn/linear.h"

namespace ahg::zoo_internal {
namespace {

class GcniiModel : public GnnModel {
 public:
  explicit GcniiModel(const ModelConfig& config) : GnnModel(config) {
    Rng rng(config.seed);
    input_ = std::make_unique<Linear>(&store_, config.in_dim,
                                      config.hidden_dim, /*bias=*/true, &rng);
    for (int l = 0; l < config.num_layers; ++l) {
      layers_.emplace_back(&store_, config.hidden_dim, config.hidden_dim,
                           /*bias=*/false, &rng);
    }
  }

  std::vector<Var> LayerOutputs(const GnnContext& ctx, const Var& x) override {
    const SparseMatrix& adj =
        ctx.graph->Adjacency(AdjacencyKind::kSymNorm);
    const double a = config_.gcnii_alpha;
    Var h0 =
        input_->ApplyRelu(Dropout(x, config_.dropout, ctx.training, ctx.rng));
    Var initial_term = ScalarMul(h0, a);
    Var h = h0;
    std::vector<Var> outputs;
    for (int l = 0; l < config_.num_layers; ++l) {
      const double beta = std::log(config_.gcnii_lambda / (l + 1) + 1.0);
      Var p = Add(ScalarMul(Spmm(adj, h), 1.0 - a), initial_term);
      h = Relu(Add(ScalarMul(p, 1.0 - beta),
                   ScalarMul(layers_[l].Apply(p), beta)));
      outputs.push_back(h);
    }
    return outputs;
  }

 private:
  std::unique_ptr<Linear> input_;
  std::vector<Linear> layers_;
};

}  // namespace

std::unique_ptr<GnnModel> MakeGcnii(const ModelConfig& config) {
  return std::make_unique<GcniiModel>(config);
}

}  // namespace ahg::zoo_internal
