// Jumping Knowledge network (Xu et al., 2018), max-pool variant: GCN
// backbone whose l-th exposed state is the elementwise max over the first l
// layer representations, so deeper outputs blend all receptive fields seen
// so far.
#include "autodiff/graph_ops.h"
#include "autodiff/ops.h"
#include "models/zoo_internal.h"
#include "nn/linear.h"

namespace ahg::zoo_internal {
namespace {

class JkMaxModel : public GnnModel {
 public:
  explicit JkMaxModel(const ModelConfig& config) : GnnModel(config) {
    Rng rng(config.seed);
    int in_dim = config.in_dim;
    for (int l = 0; l < config.num_layers; ++l) {
      layers_.emplace_back(&store_, in_dim, config.hidden_dim, /*bias=*/true,
                           &rng);
      in_dim = config.hidden_dim;
    }
  }

  std::vector<Var> LayerOutputs(const GnnContext& ctx, const Var& x) override {
    const SparseMatrix& adj =
        ctx.graph->Adjacency(AdjacencyKind::kSymNorm);
    std::vector<Var> outputs;
    Var h = x;
    Var jump;
    for (const Linear& layer : layers_) {
      h = Dropout(h, config_.dropout, ctx.training, ctx.rng);
      h = layer.ApplyRelu(Spmm(adj, h));
      jump = jump ? CWiseMax(jump, h) : h;
      outputs.push_back(jump);
    }
    return outputs;
  }

 private:
  std::vector<Linear> layers_;
};

// Dynamic neighborhood aggregation in the spirit of DNA (Fey, 2019),
// realized as a learned highway gate between the new aggregation and the
// previous state: g = sigmoid(H W_g); H^(l) = g .* ReLU(Ahat H W) +
// (1 - g) .* H^(l-1). (The first layer has no same-width predecessor and
// uses the plain aggregation.)
class DnaHighwayModel : public GnnModel {
 public:
  explicit DnaHighwayModel(const ModelConfig& config) : GnnModel(config) {
    Rng rng(config.seed);
    int in_dim = config.in_dim;
    for (int l = 0; l < config.num_layers; ++l) {
      layers_.emplace_back(&store_, in_dim, config.hidden_dim, /*bias=*/true,
                           &rng);
      if (l > 0) {
        // The first layer has no same-width predecessor to gate against.
        gates_.emplace_back(&store_, in_dim, config.hidden_dim,
                            /*bias=*/true, &rng);
      }
      in_dim = config.hidden_dim;
    }
  }

  std::vector<Var> LayerOutputs(const GnnContext& ctx, const Var& x) override {
    const SparseMatrix& adj =
        ctx.graph->Adjacency(AdjacencyKind::kSymNorm);
    std::vector<Var> outputs;
    Var h = x;
    for (int l = 0; l < config_.num_layers; ++l) {
      Var input = Dropout(h, config_.dropout, ctx.training, ctx.rng);
      Var agg = layers_[l].ApplyRelu(Spmm(adj, input));
      if (l == 0) {
        h = agg;
      } else {
        Var gate = Sigmoid(gates_[l - 1].Apply(input));
        Var ones = MakeConstant(
            Matrix::Constant(gate->rows(), gate->cols(), 1.0));
        h = Add(CWiseMul(gate, agg), CWiseMul(Sub(ones, gate), h));
      }
      outputs.push_back(h);
    }
    return outputs;
  }

 private:
  std::vector<Linear> layers_;
  std::vector<Linear> gates_;
};

}  // namespace

std::unique_ptr<GnnModel> MakeJkMax(const ModelConfig& config) {
  return std::make_unique<JkMaxModel>(config);
}

std::unique_ptr<GnnModel> MakeDnaHighway(const ModelConfig& config) {
  return std::make_unique<DnaHighwayModel>(config);
}

}  // namespace ahg::zoo_internal
