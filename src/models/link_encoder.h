// Link-prediction decoding on top of node embeddings: the standard
// dot-product decoder score(u, v) = z_u . z_v.
#ifndef AUTOHENS_MODELS_LINK_ENCODER_H_
#define AUTOHENS_MODELS_LINK_ENCODER_H_

#include <vector>

#include "autodiff/variable.h"
#include "graph/split.h"

namespace ahg {

// Returns an m x 1 logit column: row i scores pairs[i] from `embedding`
// (n x d node representations).
Var ScorePairs(const Var& embedding, const std::vector<NodePair>& pairs);

}  // namespace ahg

#endif  // AUTOHENS_MODELS_LINK_ENCODER_H_
