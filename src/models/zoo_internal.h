// Internal factory declarations for the model zoo; users go through
// BuildModel (models/model.h) or the candidate pool (models/model_zoo.h).
#ifndef AUTOHENS_MODELS_ZOO_INTERNAL_H_
#define AUTOHENS_MODELS_ZOO_INTERNAL_H_

#include <memory>

#include "models/model.h"

namespace ahg::zoo_internal {

std::unique_ptr<GnnModel> MakeGcn(const ModelConfig& config);
std::unique_ptr<GnnModel> MakeGraphSage(const ModelConfig& config);  // mean/pool
std::unique_ptr<GnnModel> MakeGat(const ModelConfig& config);
std::unique_ptr<GnnModel> MakeSgc(const ModelConfig& config);
std::unique_ptr<GnnModel> MakeTagcn(const ModelConfig& config);
std::unique_ptr<GnnModel> MakeAppnp(const ModelConfig& config);
std::unique_ptr<GnnModel> MakeGin(const ModelConfig& config);
std::unique_ptr<GnnModel> MakeGcnii(const ModelConfig& config);
std::unique_ptr<GnnModel> MakeJkMax(const ModelConfig& config);
std::unique_ptr<GnnModel> MakeDnaHighway(const ModelConfig& config);
std::unique_ptr<GnnModel> MakeMixHop(const ModelConfig& config);
std::unique_ptr<GnnModel> MakeDagnn(const ModelConfig& config);
std::unique_ptr<GnnModel> MakeCheb(const ModelConfig& config);
std::unique_ptr<GnnModel> MakeGatedGnn(const ModelConfig& config);
std::unique_ptr<GnnModel> MakeMlp(const ModelConfig& config);
std::unique_ptr<GnnModel> MakeArma(const ModelConfig& config);
std::unique_ptr<GnnModel> MakeGraphConv(const ModelConfig& config);
std::unique_ptr<GnnModel> MakeAgnn(const ModelConfig& config);

}  // namespace ahg::zoo_internal

#endif  // AUTOHENS_MODELS_ZOO_INTERNAL_H_
