// Gated Graph Neural Network (Li et al., 2016): message passing with a GRU
// state updater. m = Ahat H W_msg; H^(l) = GRU(m, H^(l-1)) with
// z = sigmoid(m W_z + H U_z), r = sigmoid(m W_r + H U_r),
// htilde = tanh(m W_h + (r .* H) U_h), H^(l) = (1 - z) .* H + z .* htilde.
#include "autodiff/graph_ops.h"
#include "autodiff/ops.h"
#include "models/zoo_internal.h"
#include "nn/linear.h"

namespace ahg::zoo_internal {
namespace {

class GatedGnnModel : public GnnModel {
 public:
  explicit GatedGnnModel(const ModelConfig& config) : GnnModel(config) {
    Rng rng(config.seed);
    const int d = config.hidden_dim;
    input_ = std::make_unique<Linear>(&store_, config.in_dim, d, true, &rng);
    msg_ = std::make_unique<Linear>(&store_, d, d, /*bias=*/false, &rng);
    wz_ = std::make_unique<Linear>(&store_, d, d, true, &rng);
    uz_ = std::make_unique<Linear>(&store_, d, d, false, &rng);
    wr_ = std::make_unique<Linear>(&store_, d, d, true, &rng);
    ur_ = std::make_unique<Linear>(&store_, d, d, false, &rng);
    wh_ = std::make_unique<Linear>(&store_, d, d, true, &rng);
    uh_ = std::make_unique<Linear>(&store_, d, d, false, &rng);
  }

  std::vector<Var> LayerOutputs(const GnnContext& ctx, const Var& x) override {
    const SparseMatrix& adj =
        ctx.graph->Adjacency(AdjacencyKind::kRowNorm);
    Var h =
        input_->ApplyRelu(Dropout(x, config_.dropout, ctx.training, ctx.rng));
    Var ones = MakeConstant(Matrix::Constant(h->rows(), h->cols(), 1.0));
    std::vector<Var> outputs;
    for (int l = 0; l < config_.num_layers; ++l) {
      Var m = msg_->Apply(Spmm(adj, h));
      Var z = Sigmoid(Add(wz_->Apply(m), uz_->Apply(h)));
      Var r = Sigmoid(Add(wr_->Apply(m), ur_->Apply(h)));
      Var candidate = Tanh(Add(wh_->Apply(m), uh_->Apply(CWiseMul(r, h))));
      h = Add(CWiseMul(Sub(ones, z), h), CWiseMul(z, candidate));
      outputs.push_back(h);
    }
    return outputs;
  }

 private:
  std::unique_ptr<Linear> input_, msg_, wz_, uz_, wr_, ur_, wh_, uh_;
};

}  // namespace

std::unique_ptr<GnnModel> MakeGatedGnn(const ModelConfig& config) {
  return std::make_unique<GatedGnnModel>(config);
}

}  // namespace ahg::zoo_internal
