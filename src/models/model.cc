#include "models/model.h"

namespace ahg {

Matrix GnnModel::ForwardInference(const Graph& graph, const Matrix& features) {
  ScopedInferenceMode frozen;
  GnnContext ctx;
  ctx.graph = &graph;
  ctx.training = false;
  std::vector<Var> layers = LayerOutputs(ctx, MakeConstant(features));
  AHG_CHECK(!layers.empty());
  return std::move(layers.back()->value);
}

const char* ModelFamilyName(ModelFamily family) {
  switch (family) {
    case ModelFamily::kGcn:
      return "GCN";
    case ModelFamily::kSageMean:
      return "GraphSAGE-mean";
    case ModelFamily::kSagePool:
      return "GraphSAGE-pool";
    case ModelFamily::kGat:
      return "GAT";
    case ModelFamily::kSgc:
      return "SGC";
    case ModelFamily::kTagcn:
      return "TAGC";
    case ModelFamily::kAppnp:
      return "APPNP";
    case ModelFamily::kGin:
      return "GIN";
    case ModelFamily::kGcnii:
      return "GCNII";
    case ModelFamily::kJkMax:
      return "JKNet";
    case ModelFamily::kDnaHighway:
      return "DNA";
    case ModelFamily::kMixHop:
      return "MixHop";
    case ModelFamily::kDagnn:
      return "DAGNN";
    case ModelFamily::kCheb:
      return "ChebNet";
    case ModelFamily::kGatedGnn:
      return "GatedGNN";
    case ModelFamily::kMlp:
      return "MLP";
    case ModelFamily::kArma:
      return "ARMA";
    case ModelFamily::kGraphConv:
      return "GraphConv";
    case ModelFamily::kAgnn:
      return "AGNN";
  }
  return "unknown";
}

}  // namespace ahg
