// Graph Isomorphism Network (Xu et al., 2019), GIN-0 variant: sum
// aggregation over the self-looped neighborhood followed by a two-layer MLP,
// H^(l) = MLP_l(A_raw H^(l-1)).
#include "autodiff/graph_ops.h"
#include "autodiff/ops.h"
#include "models/zoo_internal.h"
#include "nn/linear.h"

namespace ahg::zoo_internal {
namespace {

class GinModel : public GnnModel {
 public:
  explicit GinModel(const ModelConfig& config) : GnnModel(config) {
    Rng rng(config.seed);
    int in_dim = config.in_dim;
    for (int l = 0; l < config.num_layers; ++l) {
      mlp1_.emplace_back(&store_, in_dim, config.hidden_dim, /*bias=*/true,
                         &rng);
      mlp2_.emplace_back(&store_, config.hidden_dim, config.hidden_dim,
                         /*bias=*/true, &rng);
      in_dim = config.hidden_dim;
    }
  }

  std::vector<Var> LayerOutputs(const GnnContext& ctx, const Var& x) override {
    const SparseMatrix& adj =
        ctx.graph->Adjacency(AdjacencyKind::kRawSelfLoops);
    std::vector<Var> outputs;
    Var h = x;
    for (int l = 0; l < config_.num_layers; ++l) {
      h = Dropout(h, config_.dropout, ctx.training, ctx.rng);
      h = mlp2_[l].ApplyRelu(mlp1_[l].ApplyRelu(Spmm(adj, h)));
      outputs.push_back(h);
    }
    return outputs;
  }

 private:
  std::vector<Linear> mlp1_;
  std::vector<Linear> mlp2_;
};

}  // namespace

std::unique_ptr<GnnModel> MakeGin(const ModelConfig& config) {
  return std::make_unique<GinModel>(config);
}

}  // namespace ahg::zoo_internal
