// MixHop (Abu-El-Haija et al., 2019): each layer concatenates features
// propagated through different adjacency powers with separate weights,
// H^(l) = ReLU(||_{k=0..2} Ahat^k H^(l-1) W_k). Output widths of the power
// branches sum to hidden_dim.
#include "autodiff/graph_ops.h"
#include "autodiff/ops.h"
#include "models/zoo_internal.h"
#include "nn/linear.h"

namespace ahg::zoo_internal {
namespace {

constexpr int kNumPowers = 3;  // k = 0, 1, 2

class MixHopModel : public GnnModel {
 public:
  explicit MixHopModel(const ModelConfig& config) : GnnModel(config) {
    Rng rng(config.seed);
    int in_dim = config.in_dim;
    for (int l = 0; l < config.num_layers; ++l) {
      std::vector<Linear> branches;
      int remaining = config.hidden_dim;
      for (int k = 0; k < kNumPowers; ++k) {
        const int width = k == kNumPowers - 1
                              ? remaining
                              : config.hidden_dim / kNumPowers;
        remaining -= width;
        branches.emplace_back(&store_, in_dim, width, /*bias=*/true, &rng);
      }
      layers_.push_back(std::move(branches));
      in_dim = config.hidden_dim;
    }
  }

  std::vector<Var> LayerOutputs(const GnnContext& ctx, const Var& x) override {
    const SparseMatrix& adj =
        ctx.graph->Adjacency(AdjacencyKind::kSymNorm);
    std::vector<Var> outputs;
    Var h = x;
    for (const auto& branches : layers_) {
      h = Dropout(h, config_.dropout, ctx.training, ctx.rng);
      std::vector<Var> parts;
      Var power = h;
      for (int k = 0; k < kNumPowers; ++k) {
        parts.push_back(branches[k].Apply(power));
        if (k + 1 < kNumPowers) power = Spmm(adj, power);
      }
      h = Relu(ConcatCols(parts));
      outputs.push_back(h);
    }
    return outputs;
  }

 private:
  std::vector<std::vector<Linear>> layers_;
};

}  // namespace

std::unique_ptr<GnnModel> MakeMixHop(const ModelConfig& config) {
  return std::make_unique<MixHopModel>(config);
}

}  // namespace ahg::zoo_internal
