// DAGNN (Liu et al., 2020): decoupled transformation and propagation with a
// learned per-node gate over propagation depth. Z = ReLU(Dropout(X) W);
// H^(l) = Ahat^l Z, exposed as s_l .* H^(l) with s_l = sigmoid(H^(l) w).
#include "autodiff/graph_ops.h"
#include "autodiff/ops.h"
#include "models/zoo_internal.h"
#include "nn/init.h"
#include "nn/linear.h"

namespace ahg::zoo_internal {
namespace {

class DagnnModel : public GnnModel {
 public:
  explicit DagnnModel(const ModelConfig& config) : GnnModel(config) {
    Rng rng(config.seed);
    input_ = std::make_unique<Linear>(&store_, config.in_dim,
                                      config.hidden_dim, /*bias=*/true, &rng);
    gate_ = store_.Create(GlorotUniform(config.hidden_dim, 1, &rng));
  }

  std::vector<Var> LayerOutputs(const GnnContext& ctx, const Var& x) override {
    const SparseMatrix& adj =
        ctx.graph->Adjacency(AdjacencyKind::kSymNorm);
    Var h =
        input_->ApplyRelu(Dropout(x, config_.dropout, ctx.training, ctx.rng));
    std::vector<Var> outputs;
    for (int l = 0; l < config_.num_layers; ++l) {
      h = Spmm(adj, h);
      Var score = Sigmoid(MatMul(h, gate_));
      outputs.push_back(MulColBroadcast(h, score));
    }
    return outputs;
  }

 private:
  std::unique_ptr<Linear> input_;
  Var gate_;
};

}  // namespace

std::unique_ptr<GnnModel> MakeDagnn(const ModelConfig& config) {
  return std::make_unique<DagnnModel>(config);
}

}  // namespace ahg::zoo_internal
