// APPNP (Klicpera et al., 2019): predict-then-propagate with personalized
// PageRank. Z = ReLU(Dropout(X) W); H^(l) = (1 - a) Ahat H^(l-1) + a Z.
// Every propagation step is exposed as a layer output.
#include "autodiff/graph_ops.h"
#include "autodiff/ops.h"
#include "models/zoo_internal.h"
#include "nn/linear.h"

namespace ahg::zoo_internal {
namespace {

class AppnpModel : public GnnModel {
 public:
  explicit AppnpModel(const ModelConfig& config) : GnnModel(config) {
    Rng rng(config.seed);
    input_ = std::make_unique<Linear>(&store_, config.in_dim,
                                      config.hidden_dim, /*bias=*/true, &rng);
  }

  std::vector<Var> LayerOutputs(const GnnContext& ctx, const Var& x) override {
    const SparseMatrix& adj =
        ctx.graph->Adjacency(AdjacencyKind::kSymNorm);
    const double a = config_.teleport;
    Var z =
        input_->ApplyRelu(Dropout(x, config_.dropout, ctx.training, ctx.rng));
    Var teleport_term = ScalarMul(z, a);
    Var h = z;
    std::vector<Var> outputs;
    for (int l = 0; l < config_.num_layers; ++l) {
      h = Add(ScalarMul(Spmm(adj, h), 1.0 - a), teleport_term);
      outputs.push_back(h);
    }
    return outputs;
  }

 private:
  std::unique_ptr<Linear> input_;
};

}  // namespace

std::unique_ptr<GnnModel> MakeAppnp(const ModelConfig& config) {
  return std::make_unique<AppnpModel>(config);
}

}  // namespace ahg::zoo_internal
