// Graph Attention Network (Velickovic et al., 2018).
// Per layer and head: z = H W_h, e_ij = LeakyReLU(a_dst . z_i + a_src . z_j),
// attention-softmax over in-neighbors, heads concatenated, ELU activation.
// hidden_dim is rounded down to a multiple of `heads` per head, with the
// first head absorbing the remainder so the output width stays hidden_dim.
#include "autodiff/graph_ops.h"
#include "autodiff/ops.h"
#include "models/zoo_internal.h"
#include "nn/init.h"
#include "nn/linear.h"

namespace ahg::zoo_internal {
namespace {

class GatModel : public GnnModel {
 public:
  explicit GatModel(const ModelConfig& config) : GnnModel(config) {
    Rng rng(config.seed);
    const int heads = std::max(1, config.heads);
    int in_dim = config.in_dim;
    for (int l = 0; l < config.num_layers; ++l) {
      LayerParams layer;
      int remaining = config.hidden_dim;
      for (int h = 0; h < heads; ++h) {
        const int width = h == heads - 1
                              ? remaining
                              : config.hidden_dim / heads;
        remaining -= width;
        HeadParams head;
        head.transform =
            std::make_unique<Linear>(&store_, in_dim, width, false, &rng);
        head.attn_src = store_.Create(GlorotUniform(width, 1, &rng));
        head.attn_dst = store_.Create(GlorotUniform(width, 1, &rng));
        layer.heads.push_back(std::move(head));
      }
      layers_.push_back(std::move(layer));
      in_dim = config.hidden_dim;
    }
  }

  std::vector<Var> LayerOutputs(const GnnContext& ctx, const Var& x) override {
    const SparseMatrix& adj =
        ctx.graph->Adjacency(AdjacencyKind::kRawSelfLoops);
    std::vector<Var> outputs;
    Var h = x;
    for (auto& layer : layers_) {
      h = Dropout(h, config_.dropout, ctx.training, ctx.rng);
      std::vector<Var> head_outputs;
      head_outputs.reserve(layer.heads.size());
      for (auto& head : layer.heads) {
        Var z = head.transform->Apply(h);
        Var s_src = MatMul(z, head.attn_src);
        Var s_dst = MatMul(z, head.attn_dst);
        head_outputs.push_back(
            GatAggregate(adj, s_src, s_dst, z, config_.attention_slope));
      }
      h = Elu(head_outputs.size() == 1 ? head_outputs[0]
                                       : ConcatCols(head_outputs));
      outputs.push_back(h);
    }
    return outputs;
  }

 private:
  struct HeadParams {
    std::unique_ptr<Linear> transform;
    Var attn_src;
    Var attn_dst;
  };
  struct LayerParams {
    std::vector<HeadParams> heads;
  };
  std::vector<LayerParams> layers_;
};

}  // namespace

std::unique_ptr<GnnModel> MakeGat(const ModelConfig& config) {
  return std::make_unique<GatModel>(config);
}

}  // namespace ahg::zoo_internal
