// ARMA graph convolution (Bianchi et al., 2019): rational spectral filters
// realized as parallel recursive stacks. Using M = D^-1/2 A D^-1/2 (no self
// loops), each stack s iterates
//   X_s^(t) = sigma(M X_s^(t-1) W_s + X V_s)
// with the skip term anchored at the input features; stacks are averaged.
// Each recursion step is exposed as a layer output.
#include "autodiff/graph_ops.h"
#include "autodiff/ops.h"
#include "models/zoo_internal.h"
#include "nn/linear.h"

namespace ahg::zoo_internal {
namespace {

constexpr int kNumStacks = 2;

class ArmaModel : public GnnModel {
 public:
  explicit ArmaModel(const ModelConfig& config) : GnnModel(config) {
    Rng rng(config.seed);
    for (int s = 0; s < kNumStacks; ++s) {
      Stack stack;
      stack.input = std::make_unique<Linear>(&store_, config.in_dim,
                                             config.hidden_dim, true, &rng);
      stack.recur = std::make_unique<Linear>(
          &store_, config.hidden_dim, config.hidden_dim, false, &rng);
      stack.skip = std::make_unique<Linear>(&store_, config.in_dim,
                                            config.hidden_dim, false, &rng);
      stacks_.push_back(std::move(stack));
    }
  }

  std::vector<Var> LayerOutputs(const GnnContext& ctx, const Var& x) override {
    const SparseMatrix& m =
        ctx.graph->Adjacency(AdjacencyKind::kSymNormNoSelfLoops);
    Var input = Dropout(x, config_.dropout, ctx.training, ctx.rng);
    std::vector<Var> states;
    std::vector<Var> skips;
    for (auto& stack : stacks_) {
      states.push_back(stack.input->ApplyRelu(input));
      skips.push_back(stack.skip->Apply(input));
    }
    std::vector<Var> outputs;
    for (int l = 0; l < config_.num_layers; ++l) {
      std::vector<Var> next;
      for (size_t s = 0; s < stacks_.size(); ++s) {
        next.push_back(Relu(Add(
            stacks_[s].recur->Apply(Spmm(m, states[s])), skips[s])));
      }
      states = std::move(next);
      outputs.push_back(MeanOfVars(states));
    }
    return outputs;
  }

 private:
  struct Stack {
    std::unique_ptr<Linear> input;
    std::unique_ptr<Linear> recur;
    std::unique_ptr<Linear> skip;
  };
  std::vector<Stack> stacks_;
};

// Weisfeiler-Leman GraphConv (Morris et al., 2019): separate root and
// neighbor transforms with RAW weighted-sum aggregation (direction- and
// edge-weight-respecting), H^(l) = sigma(H W_root + A_raw H W_neigh).
class GraphConvModel : public GnnModel {
 public:
  explicit GraphConvModel(const ModelConfig& config) : GnnModel(config) {
    Rng rng(config.seed);
    int in_dim = config.in_dim;
    for (int l = 0; l < config.num_layers; ++l) {
      root_.emplace_back(&store_, in_dim, config.hidden_dim, true, &rng);
      neigh_.emplace_back(&store_, in_dim, config.hidden_dim, false, &rng);
      in_dim = config.hidden_dim;
    }
  }

  std::vector<Var> LayerOutputs(const GnnContext& ctx, const Var& x) override {
    const SparseMatrix& adj =
        ctx.graph->Adjacency(AdjacencyKind::kRawSelfLoops);
    std::vector<Var> outputs;
    Var h = x;
    for (int l = 0; l < config_.num_layers; ++l) {
      h = Dropout(h, config_.dropout, ctx.training, ctx.rng);
      h = Relu(Add(root_[l].Apply(h), neigh_[l].Apply(Spmm(adj, h))));
      outputs.push_back(h);
    }
    return outputs;
  }

 private:
  std::vector<Linear> root_;
  std::vector<Linear> neigh_;
};

}  // namespace

std::unique_ptr<GnnModel> MakeArma(const ModelConfig& config) {
  return std::make_unique<ArmaModel>(config);
}

std::unique_ptr<GnnModel> MakeGraphConv(const ModelConfig& config) {
  return std::make_unique<GraphConvModel>(config);
}

}  // namespace ahg::zoo_internal
