// Graph-agnostic MLP baseline (the "MLP" row of the paper's Table V): a
// plain feed-forward network over node features with no message passing.
// Exposed through the same per-layer interface so it slots into GSE and
// the ensembles like any other zoo member.
#include "autodiff/ops.h"
#include "models/zoo_internal.h"
#include "nn/linear.h"

namespace ahg::zoo_internal {
namespace {

class MlpModel : public GnnModel {
 public:
  explicit MlpModel(const ModelConfig& config) : GnnModel(config) {
    Rng rng(config.seed);
    int in_dim = config.in_dim;
    for (int l = 0; l < config.num_layers; ++l) {
      layers_.emplace_back(&store_, in_dim, config.hidden_dim, /*bias=*/true,
                           &rng);
      in_dim = config.hidden_dim;
    }
  }

  std::vector<Var> LayerOutputs(const GnnContext& ctx, const Var& x) override {
    std::vector<Var> outputs;
    Var h = x;
    for (const Linear& layer : layers_) {
      h = Dropout(h, config_.dropout, ctx.training, ctx.rng);
      h = layer.ApplyRelu(h);
      outputs.push_back(h);
    }
    return outputs;
  }

 private:
  std::vector<Linear> layers_;
};

}  // namespace

std::unique_ptr<GnnModel> MakeMlp(const ModelConfig& config) {
  return std::make_unique<MlpModel>(config);
}

}  // namespace ahg::zoo_internal
