#include "models/model_zoo.h"

#include "models/zoo_internal.h"
#include "util/logging.h"

namespace ahg {

std::unique_ptr<GnnModel> BuildModel(const ModelConfig& config) {
  AHG_CHECK_GT(config.in_dim, 0);
  using namespace zoo_internal;  // NOLINT: single dispatch site
  switch (config.family) {
    case ModelFamily::kGcn:
      return MakeGcn(config);
    case ModelFamily::kSageMean:
    case ModelFamily::kSagePool:
      return MakeGraphSage(config);
    case ModelFamily::kGat:
      return MakeGat(config);
    case ModelFamily::kSgc:
      return MakeSgc(config);
    case ModelFamily::kTagcn:
      return MakeTagcn(config);
    case ModelFamily::kAppnp:
      return MakeAppnp(config);
    case ModelFamily::kGin:
      return MakeGin(config);
    case ModelFamily::kGcnii:
      return MakeGcnii(config);
    case ModelFamily::kJkMax:
      return MakeJkMax(config);
    case ModelFamily::kDnaHighway:
      return MakeDnaHighway(config);
    case ModelFamily::kMixHop:
      return MakeMixHop(config);
    case ModelFamily::kDagnn:
      return MakeDagnn(config);
    case ModelFamily::kCheb:
      return MakeCheb(config);
    case ModelFamily::kGatedGnn:
      return MakeGatedGnn(config);
    case ModelFamily::kMlp:
      return MakeMlp(config);
    case ModelFamily::kArma:
      return MakeArma(config);
    case ModelFamily::kGraphConv:
      return MakeGraphConv(config);
    case ModelFamily::kAgnn:
      return MakeAgnn(config);
  }
  AHG_CHECK_MSG(false, "unhandled model family");
  return nullptr;
}

namespace {

CandidateSpec Spec(const std::string& name, ModelFamily family,
                   int num_layers, double dropout) {
  CandidateSpec spec;
  spec.name = name;
  spec.config.family = family;
  spec.config.num_layers = num_layers;
  spec.config.dropout = dropout;
  return spec;
}

}  // namespace

std::vector<CandidateSpec> DefaultCandidatePool() {
  std::vector<CandidateSpec> pool;
  // Spectral-style convolutional aggregators.
  pool.push_back(Spec("GCN", ModelFamily::kGcn, 2, 0.5));
  pool.push_back(Spec("GCN-3L", ModelFamily::kGcn, 3, 0.5));
  pool.push_back(Spec("ChebNet", ModelFamily::kCheb, 2, 0.5));
  {
    CandidateSpec s = Spec("TAGC", ModelFamily::kTagcn, 2, 0.5);
    s.config.poly_order = 3;
    pool.push_back(s);
  }
  pool.push_back(Spec("SGC", ModelFamily::kSgc, 3, 0.25));
  pool.push_back(Spec("ARMA", ModelFamily::kArma, 2, 0.5));
  // Spatial aggregators.
  pool.push_back(Spec("GraphSAGE-mean", ModelFamily::kSageMean, 2, 0.5));
  pool.push_back(Spec("GraphSAGE-pool", ModelFamily::kSagePool, 2, 0.5));
  pool.push_back(Spec("GIN", ModelFamily::kGin, 2, 0.5));
  pool.push_back(Spec("GraphConv", ModelFamily::kGraphConv, 2, 0.5));
  pool.push_back(Spec("MixHop", ModelFamily::kMixHop, 2, 0.5));
  // Attention aggregators.
  {
    CandidateSpec s = Spec("GAT", ModelFamily::kGat, 2, 0.5);
    s.config.heads = 4;
    pool.push_back(s);
  }
  pool.push_back(Spec("AGNN", ModelFamily::kAgnn, 3, 0.5));
  {
    CandidateSpec s = Spec("GAT-1h", ModelFamily::kGat, 2, 0.5);
    s.config.heads = 1;
    pool.push_back(s);
  }
  // Decoupled propagation.
  {
    CandidateSpec s = Spec("APPNP", ModelFamily::kAppnp, 6, 0.5);
    s.config.teleport = 0.1;
    pool.push_back(s);
  }
  {
    CandidateSpec s = Spec("APPNP-a2", ModelFamily::kAppnp, 6, 0.5);
    s.config.teleport = 0.2;
    pool.push_back(s);
  }
  pool.push_back(Spec("DAGNN", ModelFamily::kDagnn, 6, 0.5));
  // Deep / skip-connection models.
  {
    CandidateSpec s = Spec("GCNII", ModelFamily::kGcnii, 6, 0.5);
    s.config.gcnii_alpha = 0.1;
    s.config.gcnii_lambda = 0.5;
    pool.push_back(s);
  }
  {
    CandidateSpec s = Spec("GCNII-deep", ModelFamily::kGcnii, 10, 0.5);
    s.config.gcnii_alpha = 0.1;
    s.config.gcnii_lambda = 0.5;
    pool.push_back(s);
  }
  pool.push_back(Spec("JKNet", ModelFamily::kJkMax, 3, 0.5));
  pool.push_back(Spec("DNA", ModelFamily::kDnaHighway, 3, 0.5));
  // Gate updater.
  pool.push_back(Spec("GatedGNN", ModelFamily::kGatedGnn, 3, 0.5));
  // Graph-agnostic baseline.
  pool.push_back(Spec("MLP", ModelFamily::kMlp, 2, 0.5));
  // Low-dropout variants of the strongest shallow models round the pool
  // past 20 candidates.
  pool.push_back(Spec("GCN-d25", ModelFamily::kGcn, 2, 0.25));
  pool.push_back(Spec("GraphSAGE-d25", ModelFamily::kSageMean, 2, 0.25));
  pool.push_back(Spec("TAGC-d25", ModelFamily::kTagcn, 2, 0.25));
  return pool;
}

std::vector<CandidateSpec> CompactCandidatePool() {
  std::vector<CandidateSpec> pool;
  for (const char* name :
       {"GCN", "GAT", "GraphSAGE-mean", "TAGC", "APPNP", "GCNII", "SGC",
        "GIN"}) {
    pool.push_back(FindCandidate(name));
  }
  return pool;
}

CandidateSpec FindCandidate(const std::string& name) {
  for (const CandidateSpec& spec : DefaultCandidatePool()) {
    if (spec.name == name) return spec;
  }
  AHG_CHECK_MSG(false, "unknown candidate: " << name);
  return {};
}

}  // namespace ahg
