// Base interface of the GNN model zoo.
//
// Every architecture exposes its per-layer hidden states H^(1..L) with a
// uniform width (hidden_dim). This is what lets graph self-ensemble (Eqn 2
// of the paper) search the layer-aggregation vector alpha uniformly across
// architectures: the classifier head softmax((sum_l alpha_l H^(l)) W) is
// attached outside the model.
#ifndef AUTOHENS_MODELS_MODEL_H_
#define AUTOHENS_MODELS_MODEL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "autodiff/variable.h"
#include "graph/graph.h"
#include "nn/parameter_store.h"
#include "util/rng.h"

namespace ahg {

// Runtime inputs of a forward pass.
struct GnnContext {
  const Graph* graph = nullptr;
  bool training = false;
  Rng* rng = nullptr;  // dropout noise; required when training
};

enum class ModelFamily {
  kGcn = 0,
  kSageMean,
  kSagePool,
  kGat,
  kSgc,
  kTagcn,
  kAppnp,
  kGin,
  kGcnii,
  kJkMax,
  kDnaHighway,
  kMixHop,
  kDagnn,
  kCheb,
  kGatedGnn,
  kMlp,
  kArma,
  kGraphConv,
  kAgnn,
};

const char* ModelFamilyName(ModelFamily family);

// Architecture hyper-parameters. A single struct keeps zoo factories
// uniform; families ignore the knobs they do not use.
struct ModelConfig {
  ModelFamily family = ModelFamily::kGcn;
  int in_dim = 0;       // feature width; filled in from the graph
  int hidden_dim = 32;  // width of every per-layer output
  int num_layers = 2;   // L: how many per-layer outputs to expose
  double dropout = 0.5;
  int heads = 4;                 // GAT attention heads
  double attention_slope = 0.2;  // GAT LeakyReLU slope
  double teleport = 0.1;         // APPNP restart probability
  double gcnii_alpha = 0.1;      // GCNII initial-residual strength
  double gcnii_lambda = 0.5;     // GCNII identity-map decay
  int poly_order = 3;            // TAGCN / ChebNet polynomial order
  uint64_t seed = 1;             // weight-init seed (GSE varies this)
};

class GnnModel {
 public:
  virtual ~GnnModel() = default;

  // Returns H^(1..L), each num_nodes x hidden_dim. Must be re-invoked per
  // training step (dropout re-samples via ctx.rng).
  virtual std::vector<Var> LayerOutputs(const GnnContext& ctx,
                                        const Var& x) = 0;

  // Frozen serving forward: eval mode (no dropout) with the autodiff tape
  // disabled (ScopedInferenceMode), so no backward closures are retained and
  // intermediate activations free eagerly. Returns the last hidden layer
  // H^(L), num_nodes x hidden_dim, bitwise identical to the value the
  // training-path eval forward computes.
  Matrix ForwardInference(const Graph& graph, const Matrix& features);

  int num_layers() const { return config_.num_layers; }
  int hidden_dim() const { return config_.hidden_dim; }
  const ModelConfig& config() const { return config_; }
  ParameterStore* params() { return &store_; }

 protected:
  explicit GnnModel(const ModelConfig& config) : config_(config) {}

  ModelConfig config_;
  ParameterStore store_;
};

// Instantiates the architecture selected by `config.family`.
// config.in_dim must be set.
std::unique_ptr<GnnModel> BuildModel(const ModelConfig& config);

}  // namespace ahg

#endif  // AUTOHENS_MODELS_MODEL_H_
