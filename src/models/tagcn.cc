// Topology Adaptive GCN (Du et al., 2017): each layer applies a learned
// polynomial filter, H^(l) = ReLU(sum_{k=0..K} Ahat^k H^(l-1) W_k), realized
// as a concatenation of adjacency powers followed by one linear map.
#include "autodiff/graph_ops.h"
#include "autodiff/ops.h"
#include "models/zoo_internal.h"
#include "nn/linear.h"

namespace ahg::zoo_internal {
namespace {

class TagcnModel : public GnnModel {
 public:
  explicit TagcnModel(const ModelConfig& config) : GnnModel(config) {
    Rng rng(config.seed);
    int in_dim = config.in_dim;
    const int k = std::max(1, config.poly_order);
    for (int l = 0; l < config.num_layers; ++l) {
      layers_.emplace_back(&store_, in_dim * (k + 1), config.hidden_dim,
                           /*bias=*/true, &rng);
      in_dim = config.hidden_dim;
    }
  }

  std::vector<Var> LayerOutputs(const GnnContext& ctx, const Var& x) override {
    const SparseMatrix& adj =
        ctx.graph->Adjacency(AdjacencyKind::kSymNorm);
    const int k = std::max(1, config_.poly_order);
    std::vector<Var> outputs;
    Var h = x;
    for (const Linear& layer : layers_) {
      h = Dropout(h, config_.dropout, ctx.training, ctx.rng);
      std::vector<Var> powers{h};
      for (int p = 0; p < k; ++p) powers.push_back(Spmm(adj, powers.back()));
      h = layer.ApplyRelu(ConcatCols(powers));
      outputs.push_back(h);
    }
    return outputs;
  }

 private:
  std::vector<Linear> layers_;
};

}  // namespace

std::unique_ptr<GnnModel> MakeTagcn(const ModelConfig& config) {
  return std::make_unique<TagcnModel>(config);
}

}  // namespace ahg::zoo_internal
