#include "models/link_encoder.h"

#include "autodiff/ops.h"

namespace ahg {

Var ScorePairs(const Var& embedding, const std::vector<NodePair>& pairs) {
  std::vector<int> u_idx, v_idx;
  u_idx.reserve(pairs.size());
  v_idx.reserve(pairs.size());
  for (const NodePair& p : pairs) {
    u_idx.push_back(p.u);
    v_idx.push_back(p.v);
  }
  return RowDot(GatherRows(embedding, u_idx), GatherRows(embedding, v_idx));
}

}  // namespace ahg
