#include "models/graph_level.h"

#include "autodiff/graph_ops.h"

namespace ahg {

std::vector<Var> PooledLayerOutputs(GnnModel* model, const GraphBatch& batch,
                                    bool training, Rng* rng, bool mean_pool) {
  GnnContext ctx;
  ctx.graph = &batch.merged;
  ctx.training = training;
  ctx.rng = rng;
  Var x = MakeConstant(batch.merged.features());
  std::vector<Var> node_layers = model->LayerOutputs(ctx, x);
  std::vector<Var> pooled;
  pooled.reserve(node_layers.size());
  for (const Var& h : node_layers) {
    pooled.push_back(
        SegmentPool(h, batch.segment_ids, batch.num_graphs, mean_pool));
  }
  return pooled;
}

}  // namespace ahg
