// GraphSAGE (Hamilton et al., 2017) with mean and max-pool aggregators.
// Mean:  H^(l) = ReLU(H W_self + RowNorm(A) H W_neigh)
// Pool:  H^(l) = ReLU(H W_self + MaxPool_neighbors(ReLU(H W_pool)) W_neigh)
#include "autodiff/graph_ops.h"
#include "autodiff/ops.h"
#include "models/zoo_internal.h"
#include "nn/linear.h"

namespace ahg::zoo_internal {
namespace {

class GraphSageModel : public GnnModel {
 public:
  explicit GraphSageModel(const ModelConfig& config) : GnnModel(config) {
    pool_aggregator_ = config.family == ModelFamily::kSagePool;
    Rng rng(config.seed);
    int in_dim = config.in_dim;
    for (int l = 0; l < config.num_layers; ++l) {
      self_.emplace_back(&store_, in_dim, config.hidden_dim, /*bias=*/true,
                         &rng);
      neigh_.emplace_back(&store_, in_dim, config.hidden_dim, /*bias=*/false,
                          &rng);
      if (pool_aggregator_) {
        pool_.emplace_back(&store_, in_dim, in_dim, /*bias=*/true, &rng);
      }
      in_dim = config.hidden_dim;
    }
  }

  std::vector<Var> LayerOutputs(const GnnContext& ctx, const Var& x) override {
    const SparseMatrix& mean_adj =
        ctx.graph->Adjacency(AdjacencyKind::kRowNorm);
    const SparseMatrix& raw_adj =
        ctx.graph->Adjacency(AdjacencyKind::kRawSelfLoops);
    std::vector<Var> outputs;
    Var h = x;
    for (int l = 0; l < config_.num_layers; ++l) {
      h = Dropout(h, config_.dropout, ctx.training, ctx.rng);
      Var agg;
      if (pool_aggregator_) {
        agg = NeighborMaxPool(raw_adj, pool_[l].ApplyRelu(h));
      } else {
        agg = Spmm(mean_adj, h);
      }
      h = Relu(Add(self_[l].Apply(h), neigh_[l].Apply(agg)));
      outputs.push_back(h);
    }
    return outputs;
  }

 private:
  bool pool_aggregator_ = false;
  std::vector<Linear> self_;
  std::vector<Linear> neigh_;
  std::vector<Linear> pool_;
};

}  // namespace

std::unique_ptr<GnnModel> MakeGraphSage(const ModelConfig& config) {
  return std::make_unique<GraphSageModel>(config);
}

}  // namespace ahg::zoo_internal
