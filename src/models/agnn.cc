// Attention-based Graph Neural Network (Thekumparampil et al., 2018): a
// single feature projection followed by propagation layers whose attention
// weights are trainable-temperature cosine similarities between endpoint
// representations.
#include "autodiff/graph_ops.h"
#include "autodiff/ops.h"
#include "models/zoo_internal.h"
#include "nn/linear.h"

namespace ahg::zoo_internal {
namespace {

class AgnnModel : public GnnModel {
 public:
  explicit AgnnModel(const ModelConfig& config) : GnnModel(config) {
    Rng rng(config.seed);
    input_ = std::make_unique<Linear>(&store_, config.in_dim,
                                      config.hidden_dim, /*bias=*/true, &rng);
    for (int l = 0; l < config.num_layers; ++l) {
      // beta starts at 1 as in the original paper.
      betas_.push_back(store_.Create(Matrix::Constant(1, 1, 1.0)));
    }
  }

  std::vector<Var> LayerOutputs(const GnnContext& ctx, const Var& x) override {
    const SparseMatrix& adj =
        ctx.graph->Adjacency(AdjacencyKind::kRawSelfLoops);
    Var h =
        input_->ApplyRelu(Dropout(x, config_.dropout, ctx.training, ctx.rng));
    std::vector<Var> outputs;
    for (int l = 0; l < config_.num_layers; ++l) {
      h = CosineAttentionAggregate(adj, h, betas_[l]);
      outputs.push_back(h);
    }
    return outputs;
  }

 private:
  std::unique_ptr<Linear> input_;
  std::vector<Var> betas_;
};

}  // namespace

std::unique_ptr<GnnModel> MakeAgnn(const ModelConfig& config) {
  return std::make_unique<AgnnModel>(config);
}

}  // namespace ahg::zoo_internal
