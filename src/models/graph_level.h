// Graph-level adaptation of the node model zoo: per-layer node states are
// pooled per graph (sum or mean readout), yielding per-layer graph
// representations that the same GSE/ensemble machinery can consume.
#ifndef AUTOHENS_MODELS_GRAPH_LEVEL_H_
#define AUTOHENS_MODELS_GRAPH_LEVEL_H_

#include <vector>

#include "graph/graph_set.h"
#include "models/model.h"

namespace ahg {

// Runs `model` on the merged batch graph and pools each layer output with
// SegmentPool; returns num_graphs x hidden_dim per layer.
std::vector<Var> PooledLayerOutputs(GnnModel* model, const GraphBatch& batch,
                                    bool training, Rng* rng, bool mean_pool);

}  // namespace ahg

#endif  // AUTOHENS_MODELS_GRAPH_LEVEL_H_
