// Simplified Graph Convolution (Wu et al., 2019): a single linear feature
// map followed by repeated propagation, H^(l) = Ahat^l (X W). Exposing each
// power as a layer output lets alpha pick the effective propagation depth.
#include "autodiff/graph_ops.h"
#include "autodiff/ops.h"
#include "models/zoo_internal.h"
#include "nn/linear.h"

namespace ahg::zoo_internal {
namespace {

class SgcModel : public GnnModel {
 public:
  explicit SgcModel(const ModelConfig& config) : GnnModel(config) {
    Rng rng(config.seed);
    input_ = std::make_unique<Linear>(&store_, config.in_dim,
                                      config.hidden_dim, /*bias=*/true, &rng);
  }

  std::vector<Var> LayerOutputs(const GnnContext& ctx, const Var& x) override {
    const SparseMatrix& adj =
        ctx.graph->Adjacency(AdjacencyKind::kSymNorm);
    Var h = input_->Apply(Dropout(x, config_.dropout, ctx.training, ctx.rng));
    std::vector<Var> outputs;
    for (int l = 0; l < config_.num_layers; ++l) {
      h = Spmm(adj, h);
      outputs.push_back(h);
    }
    return outputs;
  }

 private:
  std::unique_ptr<Linear> input_;
};

}  // namespace

std::unique_ptr<GnnModel> MakeSgc(const ModelConfig& config) {
  return std::make_unique<SgcModel>(config);
}

}  // namespace ahg::zoo_internal
