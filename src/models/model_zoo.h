// The candidate pool: named architecture variants that proxy evaluation
// ranks (Section IV-B of the paper evaluates "more than 20 models with
// diverse designs of aggregators" — spectral/spatial convolutions,
// attention, skip connections, gate updaters).
#ifndef AUTOHENS_MODELS_MODEL_ZOO_H_
#define AUTOHENS_MODELS_MODEL_ZOO_H_

#include <string>
#include <vector>

#include "models/model.h"

namespace ahg {

struct CandidateSpec {
  std::string name;    // unique display name, e.g. "GAT-4h"
  ModelConfig config;  // in_dim and seed are filled in at build time
};

// The full 20+-entry pool used for proxy-evaluation experiments.
std::vector<CandidateSpec> DefaultCandidatePool();

// A reduced pool (one variant per major family) for quicker benches.
std::vector<CandidateSpec> CompactCandidatePool();

// Lookup by name in DefaultCandidatePool(); aborts if missing.
CandidateSpec FindCandidate(const std::string& name);

}  // namespace ahg

#endif  // AUTOHENS_MODELS_MODEL_ZOO_H_
