// ChebNet (Defferrard et al., 2016): spectral filtering with Chebyshev
// polynomials of the scaled Laplacian. With lambda_max ~= 2, the scaled
// Laplacian is Ltilde = -D^-1/2 A D^-1/2, so T_0 = H, T_1 = Ltilde H,
// T_k = 2 Ltilde T_{k-1} - T_{k-2}; H^(l) = ReLU(sum_k T_k W_k).
#include "autodiff/graph_ops.h"
#include "autodiff/ops.h"
#include "models/zoo_internal.h"
#include "nn/linear.h"

namespace ahg::zoo_internal {
namespace {

class ChebModel : public GnnModel {
 public:
  explicit ChebModel(const ModelConfig& config) : GnnModel(config) {
    Rng rng(config.seed);
    const int k = std::max(1, config.poly_order);
    int in_dim = config.in_dim;
    for (int l = 0; l < config.num_layers; ++l) {
      std::vector<Linear> filters;
      for (int i = 0; i <= k; ++i) {
        filters.emplace_back(&store_, in_dim, config.hidden_dim,
                             /*bias=*/i == 0, &rng);
      }
      layers_.push_back(std::move(filters));
      in_dim = config.hidden_dim;
    }
  }

  std::vector<Var> LayerOutputs(const GnnContext& ctx, const Var& x) override {
    const SparseMatrix& adj =
        ctx.graph->Adjacency(AdjacencyKind::kSymNormNoSelfLoops);
    std::vector<Var> outputs;
    Var h = x;
    for (const auto& filters : layers_) {
      h = Dropout(h, config_.dropout, ctx.training, ctx.rng);
      // Chebyshev recursion with Ltilde = -adj.
      Var t_prev = h;
      Var t_curr = ScalarMul(Spmm(adj, h), -1.0);
      std::vector<Var> terms;
      terms.push_back(filters[0].Apply(t_prev));
      for (size_t i = 1; i < filters.size(); ++i) {
        terms.push_back(filters[i].Apply(t_curr));
        if (i + 1 < filters.size()) {
          Var t_next =
              Sub(ScalarMul(Spmm(adj, t_curr), -2.0), t_prev);
          t_prev = t_curr;
          t_curr = t_next;
        }
      }
      h = Relu(AddN(terms));
      outputs.push_back(h);
    }
    return outputs;
  }

 private:
  std::vector<std::vector<Linear>> layers_;
};

}  // namespace

std::unique_ptr<GnnModel> MakeCheb(const ModelConfig& config) {
  return std::make_unique<ChebModel>(config);
}

}  // namespace ahg::zoo_internal
