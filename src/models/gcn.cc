// Graph Convolutional Network (Kipf & Welling, 2017).
// H^(l) = ReLU(Ahat * Dropout(H^(l-1)) * W_l) with the symmetric-normalized
// self-looped adjacency.
#include "autodiff/graph_ops.h"
#include "autodiff/ops.h"
#include "models/zoo_internal.h"
#include "nn/linear.h"

namespace ahg::zoo_internal {
namespace {

class GcnModel : public GnnModel {
 public:
  explicit GcnModel(const ModelConfig& config) : GnnModel(config) {
    Rng rng(config.seed);
    int in_dim = config.in_dim;
    for (int l = 0; l < config.num_layers; ++l) {
      layers_.emplace_back(&store_, in_dim, config.hidden_dim, /*bias=*/true,
                           &rng);
      in_dim = config.hidden_dim;
    }
  }

  std::vector<Var> LayerOutputs(const GnnContext& ctx, const Var& x) override {
    const SparseMatrix& adj =
        ctx.graph->Adjacency(AdjacencyKind::kSymNorm);
    std::vector<Var> outputs;
    Var h = x;
    for (const Linear& layer : layers_) {
      h = Dropout(h, config_.dropout, ctx.training, ctx.rng);
      h = layer.ApplyRelu(Spmm(adj, h));
      outputs.push_back(h);
    }
    return outputs;
  }

 private:
  std::vector<Linear> layers_;
};

}  // namespace

std::unique_ptr<GnnModel> MakeGcn(const ModelConfig& config) {
  return std::make_unique<GcnModel>(config);
}

}  // namespace ahg::zoo_internal
