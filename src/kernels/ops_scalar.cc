// Portable scalar reference tier. Every other tier must reproduce these
// kernels bit-for-bit; the blocked variants here only change how many
// output columns are held in register-resident accumulators, never the
// order any single element accumulates in.
#include <algorithm>
#include <cstdint>

#include "kernels/kernel_ops.h"

namespace ahg::kernels {
namespace {

constexpr int kGemmJBlocks[] = {1, 4, 8};
constexpr int kSpmmCBlocks[] = {4, 8};

void GemmPanelScalar(int jblock, const double* arow, int kc, const double* b,
                     int64_t ldb, int n, double* crow) {
  if (jblock == 0) jblock = 4;
  // Wider requests (a forced variant or profile tuned for a SIMD tier) clamp
  // to the widest the acc[] locals hold; blocking width never affects values.
  if (jblock > 8) jblock = 8;
  int j = 0;
  if (jblock >= 4) {
    // Hold `jblock` output columns in locals across the whole k panel.
    for (; j + jblock <= n; j += jblock) {
      double acc[8];
      for (int v = 0; v < jblock; ++v) acc[v] = crow[j + v];
      for (int k = 0; k < kc; ++k) {
        const double aik = arow[k];
        if (aik == 0.0) continue;
        const double* brow = b + static_cast<int64_t>(k) * ldb + j;
        for (int v = 0; v < jblock; ++v) acc[v] += aik * brow[v];
      }
      for (int v = 0; v < jblock; ++v) crow[j + v] = acc[v];
    }
  }
  // Unblocked remainder (also the jblock==1 whole-row path): k outer,
  // j inner — the original MatMul inner loop.
  if (j < n) {
    for (int k = 0; k < kc; ++k) {
      const double aik = arow[k];
      if (aik == 0.0) continue;
      const double* brow = b + static_cast<int64_t>(k) * ldb;
      for (int jj = j; jj < n; ++jj) crow[jj] += aik * brow[jj];
    }
  }
}

void SpmmRowScalar(int cblock, const double* values, const int* cols,
                   int64_t nnz, const double* x, int64_t ldx, int n,
                   double* yrow) {
  if (cblock == 0) cblock = 4;
  if (cblock > 8) cblock = 8;
  int c = 0;
  for (; c + cblock <= n; c += cblock) {
    double acc[8] = {0.0};
    for (int64_t e = 0; e < nnz; ++e) {
      const double v = values[e];
      const double* xrow = x + static_cast<int64_t>(cols[e]) * ldx + c;
      for (int l = 0; l < cblock; ++l) acc[l] += v * xrow[l];
    }
    for (int l = 0; l < cblock; ++l) yrow[c + l] = acc[l];
  }
  for (; c < n; ++c) {
    double acc = 0.0;
    for (int64_t e = 0; e < nnz; ++e) {
      acc += values[e] * x[static_cast<int64_t>(cols[e]) * ldx + c];
    }
    yrow[c] = acc;
  }
}

void SpmmHubRowScalar(int cblock, const double* values, const int* run_cols,
                      const int* run_lens, int num_runs, const double* x,
                      int64_t ldx, int n, double* yrow) {
  if (cblock == 0) cblock = 4;
  if (cblock > 8) cblock = 8;
  int c = 0;
  for (; c + cblock <= n; c += cblock) {
    double acc[8] = {0.0};
    const double* vp = values;
    for (int k = 0; k < num_runs; ++k) {
      // Decoded entry order equals stored order, so each acc[l] sees the
      // same value sequence as SpmmRowScalar over the flat arrays.
      const double* xrow = x + static_cast<int64_t>(run_cols[k]) * ldx + c;
      for (int i = 0; i < run_lens[k]; ++i, xrow += ldx, ++vp) {
        const double v = *vp;
        for (int l = 0; l < cblock; ++l) acc[l] += v * xrow[l];
      }
    }
    for (int l = 0; l < cblock; ++l) yrow[c + l] = acc[l];
  }
  for (; c < n; ++c) {
    double acc = 0.0;
    const double* vp = values;
    for (int k = 0; k < num_runs; ++k) {
      const double* xp = x + static_cast<int64_t>(run_cols[k]) * ldx + c;
      for (int i = 0; i < run_lens[k]; ++i, xp += ldx, ++vp) {
        acc += *vp * *xp;
      }
    }
    yrow[c] = acc;
  }
}

void Dot4Scalar(const double* arow, const double* b0, const double* b1,
                const double* b2, const double* b3, int n, double* out) {
  double d0 = 0.0, d1 = 0.0, d2 = 0.0, d3 = 0.0;
  for (int k = 0; k < n; ++k) {
    const double av = arow[k];
    d0 += av * b0[k];
    d1 += av * b1[k];
    d2 += av * b2[k];
    d3 += av * b3[k];
  }
  out[0] = d0;
  out[1] = d1;
  out[2] = d2;
  out[3] = d3;
}

double RowMaxScalar(const double* x, int n) {
  double m = x[0];
  for (int c = 1; c < n; ++c) m = std::max(m, x[c]);
  return m;
}

void DivInplaceScalar(double* x, int n, double denom) {
  for (int c = 0; c < n; ++c) x[c] /= denom;
}

void SubScalarScalar(const double* x, int n, double s, double* out) {
  for (int c = 0; c < n; ++c) out[c] = x[c] - s;
}

void BiasReluRowScalar(double* x, const double* bias, int n) {
  if (bias != nullptr) {
    for (int c = 0; c < n; ++c) {
      const double v = x[c] + bias[c];
      x[c] = v > 0.0 ? v : 0.0;
    }
  } else {
    for (int c = 0; c < n; ++c) {
      const double v = x[c];
      x[c] = v > 0.0 ? v : 0.0;
    }
  }
}

void AddInplaceScalar(double* x, const double* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) x[i] += y[i];
}

void AxpyInplaceScalar(double* x, double alpha, const double* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) x[i] += alpha * y[i];
}

void ScaleInplaceScalar(double* x, double alpha, int64_t n) {
  for (int64_t i = 0; i < n; ++i) x[i] *= alpha;
}

void CWiseMulScalar(const double* a, const double* b, int64_t n, double* out) {
  for (int64_t i = 0; i < n; ++i) out[i] = a[i] * b[i];
}

constexpr TierOps kScalarOps = {
    Tier::kScalar,
    kGemmJBlocks,
    static_cast<int>(sizeof(kGemmJBlocks) / sizeof(int)),
    kSpmmCBlocks,
    static_cast<int>(sizeof(kSpmmCBlocks) / sizeof(int)),
    GemmPanelScalar,
    SpmmRowScalar,
    Dot4Scalar,
    RowMaxScalar,
    DivInplaceScalar,
    SubScalarScalar,
    BiasReluRowScalar,
    AddInplaceScalar,
    AxpyInplaceScalar,
    ScaleInplaceScalar,
    CWiseMulScalar,
    SpmmHubRowScalar,
};

}  // namespace

const TierOps& ScalarOps() { return kScalarOps; }

}  // namespace ahg::kernels
