// AVX-512 tier: 8-lane double vectors (zmm), multiply and add kept separate
// (no FMA — compiled with -ffp-contract=off, no fmadd intrinsics), scalar
// tails identical to the reference. Requires AVX-512 F+VL+DQ at runtime
// (checked by dispatch); the 4-lane remainder blocks use VL-encoded ymm ops.
#include "kernels/kernel_ops.h"

#if defined(__AVX512F__) && defined(__AVX512VL__) && defined(__AVX512DQ__)

#include <immintrin.h>

#include <algorithm>
#include <cstdint>

namespace ahg::kernels {
namespace {

constexpr int kGemmJBlocks[] = {8, 16, 32, 64};
constexpr int kSpmmCBlocks[] = {8, 16, 32, 64};

// NV = number of 8-wide accumulators held across the k panel.
template <int NV>
inline void GemmPanelBlock(const double* arow, int kc, const double* b,
                           int64_t ldb, double* crow) {
  __m512d acc[NV];
  for (int v = 0; v < NV; ++v) acc[v] = _mm512_loadu_pd(crow + 8 * v);
  for (int k = 0; k < kc; ++k) {
    const double aik = arow[k];
    if (aik == 0.0) continue;
    const __m512d av = _mm512_set1_pd(aik);
    const double* brow = b + static_cast<int64_t>(k) * ldb;
    for (int v = 0; v < NV; ++v) {
      acc[v] = _mm512_add_pd(acc[v],
                             _mm512_mul_pd(av, _mm512_loadu_pd(brow + 8 * v)));
    }
  }
  for (int v = 0; v < NV; ++v) _mm512_storeu_pd(crow + 8 * v, acc[v]);
}

inline void GemmPanelBlock4(const double* arow, int kc, const double* b,
                            int64_t ldb, double* crow) {
  __m256d acc = _mm256_loadu_pd(crow);
  for (int k = 0; k < kc; ++k) {
    const double aik = arow[k];
    if (aik == 0.0) continue;
    const __m256d av = _mm256_set1_pd(aik);
    const double* brow = b + static_cast<int64_t>(k) * ldb;
    acc = _mm256_add_pd(acc, _mm256_mul_pd(av, _mm256_loadu_pd(brow)));
  }
  _mm256_storeu_pd(crow, acc);
}

void GemmPanelAvx512(int jblock, const double* arow, int kc, const double* b,
                     int64_t ldb, int n, double* crow) {
  if (jblock == 0) jblock = 32;
  int j = 0;
  switch (jblock) {
    case 64:
      for (; j + 64 <= n; j += 64) GemmPanelBlock<8>(arow, kc, b + j, ldb, crow + j);
      [[fallthrough]];
    case 32:
      for (; j + 32 <= n; j += 32) GemmPanelBlock<4>(arow, kc, b + j, ldb, crow + j);
      [[fallthrough]];
    case 16:
      for (; j + 16 <= n; j += 16) GemmPanelBlock<2>(arow, kc, b + j, ldb, crow + j);
      [[fallthrough]];
    default:
      for (; j + 8 <= n; j += 8) GemmPanelBlock<1>(arow, kc, b + j, ldb, crow + j);
  }
  for (; j + 4 <= n; j += 4) GemmPanelBlock4(arow, kc, b + j, ldb, crow + j);
  if (j < n) {
    for (int k = 0; k < kc; ++k) {
      const double aik = arow[k];
      if (aik == 0.0) continue;
      const double* brow = b + static_cast<int64_t>(k) * ldb;
      for (int jj = j; jj < n; ++jj) crow[jj] += aik * brow[jj];
    }
  }
}

template <int NV>
inline void SpmmRowBlock(const double* values, const int* cols, int64_t nnz,
                         const double* x, int64_t ldx, double* yrow) {
  __m512d acc[NV];
  for (int v = 0; v < NV; ++v) acc[v] = _mm512_setzero_pd();
  for (int64_t e = 0; e < nnz; ++e) {
    const __m512d ve = _mm512_set1_pd(values[e]);
    const double* xrow = x + static_cast<int64_t>(cols[e]) * ldx;
    for (int v = 0; v < NV; ++v) {
      acc[v] = _mm512_add_pd(acc[v],
                             _mm512_mul_pd(ve, _mm512_loadu_pd(xrow + 8 * v)));
    }
  }
  for (int v = 0; v < NV; ++v) _mm512_storeu_pd(yrow + 8 * v, acc[v]);
}

inline void SpmmRowBlock4(const double* values, const int* cols, int64_t nnz,
                          const double* x, int64_t ldx, double* yrow) {
  __m256d acc = _mm256_setzero_pd();
  for (int64_t e = 0; e < nnz; ++e) {
    const __m256d ve = _mm256_set1_pd(values[e]);
    const double* xrow = x + static_cast<int64_t>(cols[e]) * ldx;
    acc = _mm256_add_pd(acc, _mm256_mul_pd(ve, _mm256_loadu_pd(xrow)));
  }
  _mm256_storeu_pd(yrow, acc);
}

void SpmmRowAvx512(int cblock, const double* values, const int* cols,
                   int64_t nnz, const double* x, int64_t ldx, int n,
                   double* yrow) {
  if (cblock == 0) cblock = 32;
  int c = 0;
  switch (cblock) {
    case 64:
      for (; c + 64 <= n; c += 64) SpmmRowBlock<8>(values, cols, nnz, x + c, ldx, yrow + c);
      [[fallthrough]];
    case 32:
      for (; c + 32 <= n; c += 32) SpmmRowBlock<4>(values, cols, nnz, x + c, ldx, yrow + c);
      [[fallthrough]];
    case 16:
      for (; c + 16 <= n; c += 16) SpmmRowBlock<2>(values, cols, nnz, x + c, ldx, yrow + c);
      [[fallthrough]];
    default:
      for (; c + 8 <= n; c += 8) SpmmRowBlock<1>(values, cols, nnz, x + c, ldx, yrow + c);
  }
  for (; c + 4 <= n; c += 4) SpmmRowBlock4(values, cols, nnz, x + c, ldx, yrow + c);
  for (; c < n; ++c) {
    double acc = 0.0;
    for (int64_t e = 0; e < nnz; ++e) {
      acc += values[e] * x[static_cast<int64_t>(cols[e]) * ldx + c];
    }
    yrow[c] = acc;
  }
}

template <int NV>
inline void SpmmHubRowBlock(const double* values, const int* run_cols,
                            const int* run_lens, int num_runs,
                            const double* x, int64_t ldx, double* yrow) {
  __m512d acc[NV];
  for (int v = 0; v < NV; ++v) acc[v] = _mm512_setzero_pd();
  const double* vp = values;
  for (int k = 0; k < num_runs; ++k) {
    const double* xrow = x + static_cast<int64_t>(run_cols[k]) * ldx;
    for (int i = 0; i < run_lens[k]; ++i, xrow += ldx, ++vp) {
      const __m512d ve = _mm512_set1_pd(*vp);
      for (int v = 0; v < NV; ++v) {
        acc[v] = _mm512_add_pd(
            acc[v], _mm512_mul_pd(ve, _mm512_loadu_pd(xrow + 8 * v)));
      }
    }
  }
  for (int v = 0; v < NV; ++v) _mm512_storeu_pd(yrow + 8 * v, acc[v]);
}

inline void SpmmHubRowBlock4(const double* values, const int* run_cols,
                             const int* run_lens, int num_runs,
                             const double* x, int64_t ldx, double* yrow) {
  __m256d acc = _mm256_setzero_pd();
  const double* vp = values;
  for (int k = 0; k < num_runs; ++k) {
    const double* xrow = x + static_cast<int64_t>(run_cols[k]) * ldx;
    for (int i = 0; i < run_lens[k]; ++i, xrow += ldx, ++vp) {
      const __m256d ve = _mm256_set1_pd(*vp);
      acc = _mm256_add_pd(acc, _mm256_mul_pd(ve, _mm256_loadu_pd(xrow)));
    }
  }
  _mm256_storeu_pd(yrow, acc);
}

void SpmmHubRowAvx512(int cblock, const double* values, const int* run_cols,
                      const int* run_lens, int num_runs, const double* x,
                      int64_t ldx, int n, double* yrow) {
  if (cblock == 0) cblock = 32;
  int c = 0;
  switch (cblock) {
    case 64:
      for (; c + 64 <= n; c += 64) SpmmHubRowBlock<8>(values, run_cols, run_lens, num_runs, x + c, ldx, yrow + c);
      [[fallthrough]];
    case 32:
      for (; c + 32 <= n; c += 32) SpmmHubRowBlock<4>(values, run_cols, run_lens, num_runs, x + c, ldx, yrow + c);
      [[fallthrough]];
    case 16:
      for (; c + 16 <= n; c += 16) SpmmHubRowBlock<2>(values, run_cols, run_lens, num_runs, x + c, ldx, yrow + c);
      [[fallthrough]];
    default:
      for (; c + 8 <= n; c += 8) SpmmHubRowBlock<1>(values, run_cols, run_lens, num_runs, x + c, ldx, yrow + c);
  }
  for (; c + 4 <= n; c += 4) SpmmHubRowBlock4(values, run_cols, run_lens, num_runs, x + c, ldx, yrow + c);
  for (; c < n; ++c) {
    double acc = 0.0;
    const double* vp = values;
    for (int k = 0; k < num_runs; ++k) {
      const double* xp = x + static_cast<int64_t>(run_cols[k]) * ldx + c;
      for (int i = 0; i < run_lens[k]; ++i, xp += ldx, ++vp) {
        acc += *vp * *xp;
      }
    }
    yrow[c] = acc;
  }
}

// Same 4x4-transpose dot block as the AVX2 tier (VL-encoded); an 8-row zmm
// transpose buys little for the k-dot shape, so the 4-wide form is kept.
void Dot4Avx512(const double* arow, const double* b0, const double* b1,
                const double* b2, const double* b3, int n, double* out) {
  __m256d acc = _mm256_setzero_pd();
  int k = 0;
  for (; k + 4 <= n; k += 4) {
    const __m256d r0 = _mm256_loadu_pd(b0 + k);
    const __m256d r1 = _mm256_loadu_pd(b1 + k);
    const __m256d r2 = _mm256_loadu_pd(b2 + k);
    const __m256d r3 = _mm256_loadu_pd(b3 + k);
    const __m256d t0 = _mm256_unpacklo_pd(r0, r1);
    const __m256d t1 = _mm256_unpackhi_pd(r0, r1);
    const __m256d t2 = _mm256_unpacklo_pd(r2, r3);
    const __m256d t3 = _mm256_unpackhi_pd(r2, r3);
    const __m256d c0 = _mm256_permute2f128_pd(t0, t2, 0x20);
    const __m256d c1 = _mm256_permute2f128_pd(t1, t3, 0x20);
    const __m256d c2 = _mm256_permute2f128_pd(t0, t2, 0x31);
    const __m256d c3 = _mm256_permute2f128_pd(t1, t3, 0x31);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_set1_pd(arow[k]), c0));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_set1_pd(arow[k + 1]), c1));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_set1_pd(arow[k + 2]), c2));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_set1_pd(arow[k + 3]), c3));
  }
  _mm256_storeu_pd(out, acc);
  for (; k < n; ++k) {
    const double av = arow[k];
    out[0] += av * b0[k];
    out[1] += av * b1[k];
    out[2] += av * b2[k];
    out[3] += av * b3[k];
  }
}

double RowMaxAvx512(const double* x, int n) {
  int c;
  double m;
  if (n >= 8) {
    __m512d vm = _mm512_loadu_pd(x);
    for (c = 8; c + 8 <= n; c += 8) {
      vm = _mm512_max_pd(vm, _mm512_loadu_pd(x + c));
    }
    m = _mm512_reduce_max_pd(vm);
  } else {
    m = x[0];
    c = 1;
  }
  for (; c < n; ++c) m = std::max(m, x[c]);
  return m;
}

void DivInplaceAvx512(double* x, int n, double denom) {
  const __m512d vd = _mm512_set1_pd(denom);
  int c = 0;
  for (; c + 8 <= n; c += 8) {
    _mm512_storeu_pd(x + c, _mm512_div_pd(_mm512_loadu_pd(x + c), vd));
  }
  for (; c < n; ++c) x[c] /= denom;
}

void SubScalarAvx512(const double* x, int n, double s, double* out) {
  const __m512d vs = _mm512_set1_pd(s);
  int c = 0;
  for (; c + 8 <= n; c += 8) {
    _mm512_storeu_pd(out + c, _mm512_sub_pd(_mm512_loadu_pd(x + c), vs));
  }
  for (; c < n; ++c) out[c] = x[c] - s;
}

void BiasReluRowAvx512(double* x, const double* bias, int n) {
  const __m512d zero = _mm512_setzero_pd();
  int c = 0;
  if (bias != nullptr) {
    for (; c + 8 <= n; c += 8) {
      const __m512d v =
          _mm512_add_pd(_mm512_loadu_pd(x + c), _mm512_loadu_pd(bias + c));
      _mm512_storeu_pd(x + c, _mm512_max_pd(v, zero));
    }
    for (; c < n; ++c) {
      const double v = x[c] + bias[c];
      x[c] = v > 0.0 ? v : 0.0;
    }
  } else {
    for (; c + 8 <= n; c += 8) {
      _mm512_storeu_pd(x + c, _mm512_max_pd(_mm512_loadu_pd(x + c), zero));
    }
    for (; c < n; ++c) {
      const double v = x[c];
      x[c] = v > 0.0 ? v : 0.0;
    }
  }
}

void AddInplaceAvx512(double* x, const double* y, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_pd(
        x + i, _mm512_add_pd(_mm512_loadu_pd(x + i), _mm512_loadu_pd(y + i)));
  }
  for (; i < n; ++i) x[i] += y[i];
}

void AxpyInplaceAvx512(double* x, double alpha, const double* y, int64_t n) {
  const __m512d va = _mm512_set1_pd(alpha);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d prod = _mm512_mul_pd(va, _mm512_loadu_pd(y + i));
    _mm512_storeu_pd(x + i, _mm512_add_pd(_mm512_loadu_pd(x + i), prod));
  }
  for (; i < n; ++i) x[i] += alpha * y[i];
}

void ScaleInplaceAvx512(double* x, double alpha, int64_t n) {
  const __m512d va = _mm512_set1_pd(alpha);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_pd(x + i, _mm512_mul_pd(_mm512_loadu_pd(x + i), va));
  }
  for (; i < n; ++i) x[i] *= alpha;
}

void CWiseMulAvx512(const double* a, const double* b, int64_t n, double* out) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_pd(
        out + i, _mm512_mul_pd(_mm512_loadu_pd(a + i), _mm512_loadu_pd(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] * b[i];
}

constexpr TierOps kAvx512OpsTable = {
    Tier::kAvx512,
    kGemmJBlocks,
    static_cast<int>(sizeof(kGemmJBlocks) / sizeof(int)),
    kSpmmCBlocks,
    static_cast<int>(sizeof(kSpmmCBlocks) / sizeof(int)),
    GemmPanelAvx512,
    SpmmRowAvx512,
    Dot4Avx512,
    RowMaxAvx512,
    DivInplaceAvx512,
    SubScalarAvx512,
    BiasReluRowAvx512,
    AddInplaceAvx512,
    AxpyInplaceAvx512,
    ScaleInplaceAvx512,
    CWiseMulAvx512,
    SpmmHubRowAvx512,
};

}  // namespace

const TierOps* Avx512Ops() { return &kAvx512OpsTable; }

}  // namespace ahg::kernels

#else  // no AVX-512 build support

namespace ahg::kernels {
const TierOps* Avx512Ops() { return nullptr; }
}  // namespace ahg::kernels

#endif
