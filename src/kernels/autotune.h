// iSpLib-style per-shape kernel autotuner.
//
// Every tunable dimension (GEMM register-block width and k-panel size, SpMM
// column-block width and row- vs nnz-split scheduling) is *exact* — all
// variants produce bitwise-identical results (see kernel_ops.h) — so the
// tuner is free to benchmark candidates on first use and pick the fastest
// without perturbing any determinism guarantee. The winner is cached under a
// (tier, shape) key; profiles can be serialized ("ahg-tuning 1" text format)
// and persisted alongside models so serving and follow-up jobs skip the
// benchmark entirely.
#ifndef AUTOHENS_KERNELS_AUTOTUNE_H_
#define AUTOHENS_KERNELS_AUTOTUNE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "kernels/dispatch.h"

namespace ahg::kernels {

// GEMM variant: register-block width (output columns held in accumulators;
// 0 = tier default) and k-panel size for the packed inner loop.
struct GemmChoice {
  int jblock = 0;
  int kpanel = 128;
};

// SpMM variant: column-block width (0 = tier default) and whether the full
// Spmm partitions work by equal-nnz chunks instead of equal row counts.
// Row ownership never changes, so both schedules are exact.
struct SpmmChoice {
  int cblock = 0;
  bool nnz_split = false;
};

// Autotuning defaults on; AHG_AUTOTUNE=0 in the environment disables it
// (every shape then uses the tier-default variant with no benchmarking).
bool AutotuneEnabled();
void SetAutotuneEnabled(bool enabled);

// Shape keys. Large free dimensions (GEMM rows m, SpMM rows/nnz) are
// bucketed to powers of two so one profile entry covers near-identical
// workloads; the per-element dims that pick the kernel (k, n, cols) stay
// exact. Keys are tab- and newline-free (they are fields in the profile).
std::string GemmShapeKey(Tier tier, int k, int n, int64_t m);
std::string SpmmShapeKey(Tier tier, int64_t rows, int64_t nnz, int cols);

class KernelTuner {
 public:
  // Process-wide tuner used by the tensor layer; tests may construct their
  // own instances.
  static KernelTuner& Global();

  KernelTuner() = default;
  KernelTuner(const KernelTuner&) = delete;
  KernelTuner& operator=(const KernelTuner&) = delete;

  // Returns the cached winner for `key`, or benchmarks `candidates` via
  // `bench` (lower score wins; typically nanoseconds), caches, and returns
  // the winner. With autotuning disabled (or an empty candidate list) the
  // first candidate is cached without benchmarking. `bench` runs with the
  // tuner lock held — it must not call back into the tuner.
  GemmChoice GetGemm(const std::string& key,
                     const std::vector<GemmChoice>& candidates,
                     const std::function<double(const GemmChoice&)>& bench);
  SpmmChoice GetSpmm(const std::string& key,
                     const std::vector<SpmmChoice>& candidates,
                     const std::function<double(const SpmmChoice&)>& bench);
  // Transposed GEMM variants (MatMulTransA / MatMulTransB). Both reuse
  // GemmChoice with jblock = column/row tile width (0 = untiled default);
  // kpanel is unused and serialized as 0. Tiling only regroups which output
  // entries a pass touches — per-element accumulation order is unchanged —
  // so these variants are exact like every other tunable.
  GemmChoice GetGemmTransA(
      const std::string& key, const std::vector<GemmChoice>& candidates,
      const std::function<double(const GemmChoice&)>& bench);
  GemmChoice GetGemmTransB(
      const std::string& key, const std::vector<GemmChoice>& candidates,
      const std::function<double(const GemmChoice&)>& bench);

  bool LookupGemm(const std::string& key, GemmChoice* out) const;
  bool LookupSpmm(const std::string& key, SpmmChoice* out) const;
  bool LookupGemmTransA(const std::string& key, GemmChoice* out) const;
  bool LookupGemmTransB(const std::string& key, GemmChoice* out) const;

  // Direct inserts (profile merge); overwrite existing entries.
  void PutGemm(const std::string& key, const GemmChoice& choice);
  void PutSpmm(const std::string& key, const SpmmChoice& choice);
  void PutGemmTransA(const std::string& key, const GemmChoice& choice);
  void PutGemmTransB(const std::string& key, const GemmChoice& choice);

  int64_t entries() const;
  // Number of benchmarked tuning events since construction/Clear. A profile
  // load followed by hits must leave this unchanged — that is the "no
  // re-benchmark" guarantee tests assert on.
  int64_t benchmark_runs() const;
  void Clear();

  // Text profile, versioned. Deserialize *merges* into the current table
  // (later entries win) and tolerates unknown record kinds from newer
  // writers; it rejects a missing/mismatched header.
  std::string Serialize() const;
  bool Deserialize(const std::string& text);

  // Atomic save (tmp + rename). SaveFile of an empty tuner still writes a
  // valid header-only profile. LoadFile returns false if the file is
  // missing or malformed.
  bool SaveFile(const std::string& path) const;
  bool LoadFile(const std::string& path);

 private:
  GemmChoice GetGemmLocked(std::map<std::string, GemmChoice>* table,
                           const std::string& key,
                           const std::vector<GemmChoice>& candidates,
                           const std::function<double(const GemmChoice&)>& bench);

  mutable std::mutex mu_;
  std::map<std::string, GemmChoice> gemm_;
  std::map<std::string, SpmmChoice> spmm_;
  std::map<std::string, GemmChoice> gemm_ta_;
  std::map<std::string, GemmChoice> gemm_tb_;
  int64_t benchmark_runs_ = 0;
};

// Test hooks: force every GEMM/SpMM call in scope to one variant, bypassing
// the tuner. Used by the bitwise-identity matrix to sweep variants.
const GemmChoice* ForcedGemm();
const SpmmChoice* ForcedSpmm();
const GemmChoice* ForcedGemmTransA();
const GemmChoice* ForcedGemmTransB();

class ScopedForcedGemm {
 public:
  explicit ScopedForcedGemm(const GemmChoice& choice);
  ~ScopedForcedGemm();

 private:
  const GemmChoice* saved_;
  GemmChoice choice_;
};

class ScopedForcedSpmm {
 public:
  explicit ScopedForcedSpmm(const SpmmChoice& choice);
  ~ScopedForcedSpmm();

 private:
  const SpmmChoice* saved_;
  SpmmChoice choice_;
};

class ScopedForcedGemmTransA {
 public:
  explicit ScopedForcedGemmTransA(const GemmChoice& choice);
  ~ScopedForcedGemmTransA();

 private:
  const GemmChoice* saved_;
  GemmChoice choice_;
};

class ScopedForcedGemmTransB {
 public:
  explicit ScopedForcedGemmTransB(const GemmChoice& choice);
  ~ScopedForcedGemmTransB();

 private:
  const GemmChoice* saved_;
  GemmChoice choice_;
};

}  // namespace ahg::kernels

#endif  // AUTOHENS_KERNELS_AUTOTUNE_H_
