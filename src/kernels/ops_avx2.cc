// AVX2 tier: 4-lane double vectors, multiply and add kept separate (no FMA
// — this TU is compiled with -mavx2 -ffp-contract=off and without -mfma),
// scalar tails identical to the reference. Vector lanes are independent
// output elements, so per-element accumulation order matches ops_scalar.cc
// exactly and results are bitwise identical to it.
#include "kernels/kernel_ops.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <algorithm>
#include <cstdint>

namespace ahg::kernels {
namespace {

constexpr int kGemmJBlocks[] = {4, 8, 16, 32};
constexpr int kSpmmCBlocks[] = {4, 8, 16, 32};

// NV = number of 4-wide accumulators held across the k panel.
template <int NV>
inline void GemmPanelBlock(const double* arow, int kc, const double* b,
                           int64_t ldb, double* crow) {
  __m256d acc[NV];
  for (int v = 0; v < NV; ++v) acc[v] = _mm256_loadu_pd(crow + 4 * v);
  for (int k = 0; k < kc; ++k) {
    const double aik = arow[k];
    if (aik == 0.0) continue;
    const __m256d av = _mm256_set1_pd(aik);
    const double* brow = b + static_cast<int64_t>(k) * ldb;
    for (int v = 0; v < NV; ++v) {
      acc[v] = _mm256_add_pd(acc[v],
                             _mm256_mul_pd(av, _mm256_loadu_pd(brow + 4 * v)));
    }
  }
  for (int v = 0; v < NV; ++v) _mm256_storeu_pd(crow + 4 * v, acc[v]);
}

void GemmPanelAvx2(int jblock, const double* arow, int kc, const double* b,
                   int64_t ldb, int n, double* crow) {
  if (jblock == 0) jblock = 16;
  int j = 0;
  switch (jblock) {
    case 32:
      for (; j + 32 <= n; j += 32) GemmPanelBlock<8>(arow, kc, b + j, ldb, crow + j);
      [[fallthrough]];
    case 16:
      for (; j + 16 <= n; j += 16) GemmPanelBlock<4>(arow, kc, b + j, ldb, crow + j);
      [[fallthrough]];
    case 8:
      for (; j + 8 <= n; j += 8) GemmPanelBlock<2>(arow, kc, b + j, ldb, crow + j);
      [[fallthrough]];
    default:
      for (; j + 4 <= n; j += 4) GemmPanelBlock<1>(arow, kc, b + j, ldb, crow + j);
  }
  // Scalar remainder: k outer, j inner, zero-skip — the reference tail.
  if (j < n) {
    for (int k = 0; k < kc; ++k) {
      const double aik = arow[k];
      if (aik == 0.0) continue;
      const double* brow = b + static_cast<int64_t>(k) * ldb;
      for (int jj = j; jj < n; ++jj) crow[jj] += aik * brow[jj];
    }
  }
}

template <int NV>
inline void SpmmRowBlock(const double* values, const int* cols, int64_t nnz,
                         const double* x, int64_t ldx, double* yrow) {
  __m256d acc[NV];
  for (int v = 0; v < NV; ++v) acc[v] = _mm256_setzero_pd();
  for (int64_t e = 0; e < nnz; ++e) {
    const __m256d ve = _mm256_set1_pd(values[e]);
    const double* xrow = x + static_cast<int64_t>(cols[e]) * ldx;
    for (int v = 0; v < NV; ++v) {
      acc[v] = _mm256_add_pd(acc[v],
                             _mm256_mul_pd(ve, _mm256_loadu_pd(xrow + 4 * v)));
    }
  }
  for (int v = 0; v < NV; ++v) _mm256_storeu_pd(yrow + 4 * v, acc[v]);
}

void SpmmRowAvx2(int cblock, const double* values, const int* cols,
                 int64_t nnz, const double* x, int64_t ldx, int n,
                 double* yrow) {
  if (cblock == 0) cblock = 16;
  int c = 0;
  switch (cblock) {
    case 32:
      for (; c + 32 <= n; c += 32) SpmmRowBlock<8>(values, cols, nnz, x + c, ldx, yrow + c);
      [[fallthrough]];
    case 16:
      for (; c + 16 <= n; c += 16) SpmmRowBlock<4>(values, cols, nnz, x + c, ldx, yrow + c);
      [[fallthrough]];
    case 8:
      for (; c + 8 <= n; c += 8) SpmmRowBlock<2>(values, cols, nnz, x + c, ldx, yrow + c);
      [[fallthrough]];
    default:
      for (; c + 4 <= n; c += 4) SpmmRowBlock<1>(values, cols, nnz, x + c, ldx, yrow + c);
  }
  for (; c < n; ++c) {
    double acc = 0.0;
    for (int64_t e = 0; e < nnz; ++e) {
      acc += values[e] * x[static_cast<int64_t>(cols[e]) * ldx + c];
    }
    yrow[c] = acc;
  }
}

template <int NV>
inline void SpmmHubRowBlock(const double* values, const int* run_cols,
                            const int* run_lens, int num_runs,
                            const double* x, int64_t ldx, double* yrow) {
  __m256d acc[NV];
  for (int v = 0; v < NV; ++v) acc[v] = _mm256_setzero_pd();
  const double* vp = values;
  for (int k = 0; k < num_runs; ++k) {
    const double* xrow = x + static_cast<int64_t>(run_cols[k]) * ldx;
    for (int i = 0; i < run_lens[k]; ++i, xrow += ldx, ++vp) {
      const __m256d ve = _mm256_set1_pd(*vp);
      for (int v = 0; v < NV; ++v) {
        acc[v] = _mm256_add_pd(
            acc[v], _mm256_mul_pd(ve, _mm256_loadu_pd(xrow + 4 * v)));
      }
    }
  }
  for (int v = 0; v < NV; ++v) _mm256_storeu_pd(yrow + 4 * v, acc[v]);
}

void SpmmHubRowAvx2(int cblock, const double* values, const int* run_cols,
                    const int* run_lens, int num_runs, const double* x,
                    int64_t ldx, int n, double* yrow) {
  if (cblock == 0) cblock = 16;
  int c = 0;
  switch (cblock) {
    case 32:
      for (; c + 32 <= n; c += 32) SpmmHubRowBlock<8>(values, run_cols, run_lens, num_runs, x + c, ldx, yrow + c);
      [[fallthrough]];
    case 16:
      for (; c + 16 <= n; c += 16) SpmmHubRowBlock<4>(values, run_cols, run_lens, num_runs, x + c, ldx, yrow + c);
      [[fallthrough]];
    case 8:
      for (; c + 8 <= n; c += 8) SpmmHubRowBlock<2>(values, run_cols, run_lens, num_runs, x + c, ldx, yrow + c);
      [[fallthrough]];
    default:
      for (; c + 4 <= n; c += 4) SpmmHubRowBlock<1>(values, run_cols, run_lens, num_runs, x + c, ldx, yrow + c);
  }
  for (; c < n; ++c) {
    double acc = 0.0;
    const double* vp = values;
    for (int k = 0; k < num_runs; ++k) {
      const double* xp = x + static_cast<int64_t>(run_cols[k]) * ldx + c;
      for (int i = 0; i < run_lens[k]; ++i, xp += ldx, ++vp) {
        acc += *vp * *xp;
      }
    }
    yrow[c] = acc;
  }
}

void Dot4Avx2(const double* arow, const double* b0, const double* b1,
              const double* b2, const double* b3, int n, double* out) {
  __m256d acc = _mm256_setzero_pd();
  int k = 0;
  for (; k + 4 <= n; k += 4) {
    const __m256d r0 = _mm256_loadu_pd(b0 + k);
    const __m256d r1 = _mm256_loadu_pd(b1 + k);
    const __m256d r2 = _mm256_loadu_pd(b2 + k);
    const __m256d r3 = _mm256_loadu_pd(b3 + k);
    // 4x4 transpose: ck = {b0[k], b1[k], b2[k], b3[k]} etc., so lane l
    // accumulates dot(a, b_l) one k at a time in ascending order.
    const __m256d t0 = _mm256_unpacklo_pd(r0, r1);
    const __m256d t1 = _mm256_unpackhi_pd(r0, r1);
    const __m256d t2 = _mm256_unpacklo_pd(r2, r3);
    const __m256d t3 = _mm256_unpackhi_pd(r2, r3);
    const __m256d c0 = _mm256_permute2f128_pd(t0, t2, 0x20);
    const __m256d c1 = _mm256_permute2f128_pd(t1, t3, 0x20);
    const __m256d c2 = _mm256_permute2f128_pd(t0, t2, 0x31);
    const __m256d c3 = _mm256_permute2f128_pd(t1, t3, 0x31);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_set1_pd(arow[k]), c0));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_set1_pd(arow[k + 1]), c1));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_set1_pd(arow[k + 2]), c2));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_set1_pd(arow[k + 3]), c3));
  }
  _mm256_storeu_pd(out, acc);
  for (; k < n; ++k) {
    const double av = arow[k];
    out[0] += av * b0[k];
    out[1] += av * b1[k];
    out[2] += av * b2[k];
    out[3] += av * b3[k];
  }
}

double RowMaxAvx2(const double* x, int n) {
  int c;
  double m;
  if (n >= 4) {
    __m256d vm = _mm256_loadu_pd(x);
    for (c = 4; c + 4 <= n; c += 4) {
      vm = _mm256_max_pd(vm, _mm256_loadu_pd(x + c));
    }
    const __m128d lo = _mm256_castpd256_pd128(vm);
    const __m128d hi = _mm256_extractf128_pd(vm, 1);
    const __m128d m2 = _mm_max_pd(lo, hi);
    const __m128d m1 = _mm_max_sd(m2, _mm_unpackhi_pd(m2, m2));
    m = _mm_cvtsd_f64(m1);
  } else {
    m = x[0];
    c = 1;
  }
  for (; c < n; ++c) m = std::max(m, x[c]);
  return m;
}

void DivInplaceAvx2(double* x, int n, double denom) {
  const __m256d vd = _mm256_set1_pd(denom);
  int c = 0;
  for (; c + 4 <= n; c += 4) {
    _mm256_storeu_pd(x + c, _mm256_div_pd(_mm256_loadu_pd(x + c), vd));
  }
  for (; c < n; ++c) x[c] /= denom;
}

void SubScalarAvx2(const double* x, int n, double s, double* out) {
  const __m256d vs = _mm256_set1_pd(s);
  int c = 0;
  for (; c + 4 <= n; c += 4) {
    _mm256_storeu_pd(out + c, _mm256_sub_pd(_mm256_loadu_pd(x + c), vs));
  }
  for (; c < n; ++c) out[c] = x[c] - s;
}

void BiasReluRowAvx2(double* x, const double* bias, int n) {
  // max_pd(v, +0.0) returns +0.0 when v is -0.0, 0.0, or NaN — exactly the
  // scalar `v > 0 ? v : 0.0`.
  const __m256d zero = _mm256_setzero_pd();
  int c = 0;
  if (bias != nullptr) {
    for (; c + 4 <= n; c += 4) {
      const __m256d v =
          _mm256_add_pd(_mm256_loadu_pd(x + c), _mm256_loadu_pd(bias + c));
      _mm256_storeu_pd(x + c, _mm256_max_pd(v, zero));
    }
    for (; c < n; ++c) {
      const double v = x[c] + bias[c];
      x[c] = v > 0.0 ? v : 0.0;
    }
  } else {
    for (; c + 4 <= n; c += 4) {
      _mm256_storeu_pd(x + c, _mm256_max_pd(_mm256_loadu_pd(x + c), zero));
    }
    for (; c < n; ++c) {
      const double v = x[c];
      x[c] = v > 0.0 ? v : 0.0;
    }
  }
}

void AddInplaceAvx2(double* x, const double* y, int64_t n) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        x + i, _mm256_add_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i)));
  }
  for (; i < n; ++i) x[i] += y[i];
}

void AxpyInplaceAvx2(double* x, double alpha, const double* y, int64_t n) {
  const __m256d va = _mm256_set1_pd(alpha);
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d prod = _mm256_mul_pd(va, _mm256_loadu_pd(y + i));
    _mm256_storeu_pd(x + i, _mm256_add_pd(_mm256_loadu_pd(x + i), prod));
  }
  for (; i < n; ++i) x[i] += alpha * y[i];
}

void ScaleInplaceAvx2(double* x, double alpha, int64_t n) {
  const __m256d va = _mm256_set1_pd(alpha);
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(x + i, _mm256_mul_pd(_mm256_loadu_pd(x + i), va));
  }
  for (; i < n; ++i) x[i] *= alpha;
}

void CWiseMulAvx2(const double* a, const double* b, int64_t n, double* out) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        out + i, _mm256_mul_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] * b[i];
}

constexpr TierOps kAvx2OpsTable = {
    Tier::kAvx2,
    kGemmJBlocks,
    static_cast<int>(sizeof(kGemmJBlocks) / sizeof(int)),
    kSpmmCBlocks,
    static_cast<int>(sizeof(kSpmmCBlocks) / sizeof(int)),
    GemmPanelAvx2,
    SpmmRowAvx2,
    Dot4Avx2,
    RowMaxAvx2,
    DivInplaceAvx2,
    SubScalarAvx2,
    BiasReluRowAvx2,
    AddInplaceAvx2,
    AxpyInplaceAvx2,
    ScaleInplaceAvx2,
    CWiseMulAvx2,
    SpmmHubRowAvx2,
};

}  // namespace

const TierOps* Avx2Ops() { return &kAvx2OpsTable; }

}  // namespace ahg::kernels

#else  // !defined(__AVX2__)

namespace ahg::kernels {
const TierOps* Avx2Ops() { return nullptr; }
}  // namespace ahg::kernels

#endif
