#include "kernels/dispatch.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "kernels/kernel_ops.h"
#include "util/logging.h"

namespace ahg::kernels {
namespace {

bool CpuHasAvx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool CpuHasAvx512() {
#if defined(__x86_64__) || defined(__i386__)
  // The AVX-512 TU uses foundation + VL (256-bit forms) + DQ double ops.
  return __builtin_cpu_supports("avx512f") != 0 &&
         __builtin_cpu_supports("avx512vl") != 0 &&
         __builtin_cpu_supports("avx512dq") != 0;
#else
  return false;
#endif
}

Tier ClampToSupported(Tier tier) {
  if (tier == Tier::kAvx512 && TierSupported(Tier::kAvx512)) return tier;
  if (tier >= Tier::kAvx2 && TierSupported(Tier::kAvx2)) return Tier::kAvx2;
  return Tier::kScalar;
}

// Env overrides are read once; SetTier afterwards still clamps the same way.
Tier InitialTier() {
  const char* force_scalar = std::getenv("AHG_FORCE_SCALAR");
  if (force_scalar != nullptr && force_scalar[0] != '\0' &&
      std::strcmp(force_scalar, "0") != 0) {
    return Tier::kScalar;
  }
  const char* tier_env = std::getenv("AHG_KERNEL_TIER");
  if (tier_env != nullptr && tier_env[0] != '\0') {
    Tier requested = BestSupportedTier();
    if (std::strcmp(tier_env, "scalar") == 0) {
      requested = Tier::kScalar;
    } else if (std::strcmp(tier_env, "avx2") == 0) {
      requested = Tier::kAvx2;
    } else if (std::strcmp(tier_env, "avx512") == 0) {
      requested = Tier::kAvx512;
    } else {
      AHG_LOG(Warning) << "unknown AHG_KERNEL_TIER '" << tier_env
                       << "' (scalar|avx2|avx512); using "
                       << TierName(BestSupportedTier());
    }
    const Tier clamped = ClampToSupported(requested);
    if (clamped != requested) {
      AHG_LOG(Warning) << "AHG_KERNEL_TIER=" << TierName(requested)
                       << " unsupported on this host; clamped to "
                       << TierName(clamped);
    }
    return clamped;
  }
  return BestSupportedTier();
}

std::atomic<Tier>& ActiveTierState() {
  static std::atomic<Tier> tier{InitialTier()};
  return tier;
}

}  // namespace

const char* TierName(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return "scalar";
    case Tier::kAvx2:
      return "avx2";
    case Tier::kAvx512:
      return "avx512";
  }
  return "unknown";
}

bool TierSupported(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return true;
    case Tier::kAvx2:
      return Avx2Ops() != nullptr && CpuHasAvx2();
    case Tier::kAvx512:
      return Avx512Ops() != nullptr && CpuHasAvx512();
  }
  return false;
}

Tier BestSupportedTier() {
  if (TierSupported(Tier::kAvx512)) return Tier::kAvx512;
  if (TierSupported(Tier::kAvx2)) return Tier::kAvx2;
  return Tier::kScalar;
}

Tier ActiveTier() {
  return ActiveTierState().load(std::memory_order_relaxed);
}

void SetTier(Tier tier) {
  ActiveTierState().store(ClampToSupported(tier), std::memory_order_relaxed);
}

ScopedTier::ScopedTier(Tier tier) : saved_(ActiveTier()) { SetTier(tier); }

ScopedTier::~ScopedTier() {
  ActiveTierState().store(saved_, std::memory_order_relaxed);
}

const TierOps& OpsFor(Tier tier) {
  if (tier == Tier::kAvx512 && TierSupported(Tier::kAvx512)) {
    return *Avx512Ops();
  }
  if (tier >= Tier::kAvx2 && TierSupported(Tier::kAvx2)) {
    return *Avx2Ops();
  }
  return ScalarOps();
}

const TierOps& ActiveOps() { return OpsFor(ActiveTier()); }

}  // namespace ahg::kernels
