#include "kernels/autotune.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/logging.h"

namespace ahg::kernels {
namespace {

constexpr char kProfileHeader[] = "ahg-tuning 1";

std::atomic<bool>& AutotuneState() {
  static std::atomic<bool> enabled{[] {
    const char* env = std::getenv("AHG_AUTOTUNE");
    return !(env != nullptr && std::strcmp(env, "0") == 0);
  }()};
  return enabled;
}

int64_t Pow2Bucket(int64_t v) {
  if (v <= 1) return 1;
  int64_t b = 1;
  while (b < v && b < (int64_t{1} << 62)) b <<= 1;
  return b;
}

// Forced-variant hooks: set on the main thread before any parallel region,
// read-only while kernels run.
const GemmChoice* g_forced_gemm = nullptr;
const SpmmChoice* g_forced_spmm = nullptr;
const GemmChoice* g_forced_gemm_ta = nullptr;
const GemmChoice* g_forced_gemm_tb = nullptr;

}  // namespace

bool AutotuneEnabled() {
  return AutotuneState().load(std::memory_order_relaxed);
}

void SetAutotuneEnabled(bool enabled) {
  AutotuneState().store(enabled, std::memory_order_relaxed);
}

std::string GemmShapeKey(Tier tier, int k, int n, int64_t m) {
  std::ostringstream os;
  os << TierName(tier) << ":k" << k << ":n" << n << ":m" << Pow2Bucket(m);
  return os.str();
}

std::string SpmmShapeKey(Tier tier, int64_t rows, int64_t nnz, int cols) {
  std::ostringstream os;
  os << TierName(tier) << ":r" << Pow2Bucket(rows) << ":z" << Pow2Bucket(nnz)
     << ":c" << cols;
  return os.str();
}

KernelTuner& KernelTuner::Global() {
  static KernelTuner* tuner = new KernelTuner();
  return *tuner;
}

GemmChoice KernelTuner::GetGemmLocked(
    std::map<std::string, GemmChoice>* table, const std::string& key,
    const std::vector<GemmChoice>& candidates,
    const std::function<double(const GemmChoice&)>& bench) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = table->find(key);
  if (it != table->end()) return it->second;
  GemmChoice best;
  if (!candidates.empty()) best = candidates[0];
  if (candidates.size() > 1 && AutotuneEnabled() && bench) {
    double best_score = bench(best);
    for (size_t i = 1; i < candidates.size(); ++i) {
      const double score = bench(candidates[i]);
      if (score < best_score) {
        best_score = score;
        best = candidates[i];
      }
    }
    ++benchmark_runs_;
  }
  table->emplace(key, best);
  return best;
}

GemmChoice KernelTuner::GetGemm(
    const std::string& key, const std::vector<GemmChoice>& candidates,
    const std::function<double(const GemmChoice&)>& bench) {
  return GetGemmLocked(&gemm_, key, candidates, bench);
}

GemmChoice KernelTuner::GetGemmTransA(
    const std::string& key, const std::vector<GemmChoice>& candidates,
    const std::function<double(const GemmChoice&)>& bench) {
  return GetGemmLocked(&gemm_ta_, key, candidates, bench);
}

GemmChoice KernelTuner::GetGemmTransB(
    const std::string& key, const std::vector<GemmChoice>& candidates,
    const std::function<double(const GemmChoice&)>& bench) {
  return GetGemmLocked(&gemm_tb_, key, candidates, bench);
}

SpmmChoice KernelTuner::GetSpmm(
    const std::string& key, const std::vector<SpmmChoice>& candidates,
    const std::function<double(const SpmmChoice&)>& bench) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = spmm_.find(key);
  if (it != spmm_.end()) return it->second;
  SpmmChoice best;
  if (!candidates.empty()) best = candidates[0];
  if (candidates.size() > 1 && AutotuneEnabled() && bench) {
    double best_score = bench(best);
    for (size_t i = 1; i < candidates.size(); ++i) {
      const double score = bench(candidates[i]);
      if (score < best_score) {
        best_score = score;
        best = candidates[i];
      }
    }
    ++benchmark_runs_;
  }
  spmm_.emplace(key, best);
  return best;
}

bool KernelTuner::LookupGemm(const std::string& key, GemmChoice* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gemm_.find(key);
  if (it == gemm_.end()) return false;
  if (out != nullptr) *out = it->second;
  return true;
}

bool KernelTuner::LookupSpmm(const std::string& key, SpmmChoice* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = spmm_.find(key);
  if (it == spmm_.end()) return false;
  if (out != nullptr) *out = it->second;
  return true;
}

bool KernelTuner::LookupGemmTransA(const std::string& key,
                                   GemmChoice* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gemm_ta_.find(key);
  if (it == gemm_ta_.end()) return false;
  if (out != nullptr) *out = it->second;
  return true;
}

bool KernelTuner::LookupGemmTransB(const std::string& key,
                                   GemmChoice* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gemm_tb_.find(key);
  if (it == gemm_tb_.end()) return false;
  if (out != nullptr) *out = it->second;
  return true;
}

void KernelTuner::PutGemm(const std::string& key, const GemmChoice& choice) {
  std::lock_guard<std::mutex> lock(mu_);
  gemm_[key] = choice;
}

void KernelTuner::PutSpmm(const std::string& key, const SpmmChoice& choice) {
  std::lock_guard<std::mutex> lock(mu_);
  spmm_[key] = choice;
}

void KernelTuner::PutGemmTransA(const std::string& key,
                                const GemmChoice& choice) {
  std::lock_guard<std::mutex> lock(mu_);
  gemm_ta_[key] = choice;
}

void KernelTuner::PutGemmTransB(const std::string& key,
                                const GemmChoice& choice) {
  std::lock_guard<std::mutex> lock(mu_);
  gemm_tb_[key] = choice;
}

int64_t KernelTuner::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(gemm_.size() + spmm_.size() + gemm_ta_.size() +
                              gemm_tb_.size());
}

int64_t KernelTuner::benchmark_runs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return benchmark_runs_;
}

void KernelTuner::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  gemm_.clear();
  spmm_.clear();
  gemm_ta_.clear();
  gemm_tb_.clear();
  benchmark_runs_ = 0;
}

std::string KernelTuner::Serialize() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << kProfileHeader << "\n";
  for (const auto& [key, choice] : gemm_) {
    os << "gemm\t" << key << "\t" << choice.jblock << "\t" << choice.kpanel
       << "\n";
  }
  for (const auto& [key, choice] : spmm_) {
    os << "spmm\t" << key << "\t" << choice.cblock << "\t"
       << (choice.nnz_split ? 1 : 0) << "\n";
  }
  for (const auto& [key, choice] : gemm_ta_) {
    os << "gemm_ta\t" << key << "\t" << choice.jblock << "\t" << choice.kpanel
       << "\n";
  }
  for (const auto& [key, choice] : gemm_tb_) {
    os << "gemm_tb\t" << key << "\t" << choice.jblock << "\t" << choice.kpanel
       << "\n";
  }
  return os.str();
}

bool KernelTuner::Deserialize(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line) || line != kProfileHeader) return false;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string kind, key, f2, f3;
    if (!std::getline(fields, kind, '\t') || !std::getline(fields, key, '\t') ||
        !std::getline(fields, f2, '\t') || !std::getline(fields, f3, '\t')) {
      continue;  // malformed row; skip rather than drop the whole profile
    }
    char* end = nullptr;
    const long v2 = std::strtol(f2.c_str(), &end, 10);
    const bool v2_ok = end != nullptr && *end == '\0';
    end = nullptr;
    const long v3 = std::strtol(f3.c_str(), &end, 10);
    const bool v3_ok = end != nullptr && *end == '\0';
    if (!v2_ok || !v3_ok) continue;
    if (kind == "gemm") {
      PutGemm(key, GemmChoice{static_cast<int>(v2), static_cast<int>(v3)});
    } else if (kind == "spmm") {
      PutSpmm(key, SpmmChoice{static_cast<int>(v2), v3 != 0});
    } else if (kind == "gemm_ta") {
      PutGemmTransA(key,
                    GemmChoice{static_cast<int>(v2), static_cast<int>(v3)});
    } else if (kind == "gemm_tb") {
      PutGemmTransB(key,
                    GemmChoice{static_cast<int>(v2), static_cast<int>(v3)});
    }
    // Unknown kinds from newer writers are ignored.
  }
  return true;
}

bool KernelTuner::SaveFile(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out.is_open()) return false;
    out << Serialize();
    if (!out.good()) {
      out.close();
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

bool KernelTuner::LoadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  if (!Deserialize(buf.str())) {
    AHG_LOG(Warning) << "ignoring malformed tuning profile " << path;
    return false;
  }
  return true;
}

const GemmChoice* ForcedGemm() { return g_forced_gemm; }
const SpmmChoice* ForcedSpmm() { return g_forced_spmm; }

ScopedForcedGemm::ScopedForcedGemm(const GemmChoice& choice)
    : saved_(g_forced_gemm), choice_(choice) {
  g_forced_gemm = &choice_;
}

ScopedForcedGemm::~ScopedForcedGemm() { g_forced_gemm = saved_; }

ScopedForcedSpmm::ScopedForcedSpmm(const SpmmChoice& choice)
    : saved_(g_forced_spmm), choice_(choice) {
  g_forced_spmm = &choice_;
}

ScopedForcedSpmm::~ScopedForcedSpmm() { g_forced_spmm = saved_; }

const GemmChoice* ForcedGemmTransA() { return g_forced_gemm_ta; }
const GemmChoice* ForcedGemmTransB() { return g_forced_gemm_tb; }

ScopedForcedGemmTransA::ScopedForcedGemmTransA(const GemmChoice& choice)
    : saved_(g_forced_gemm_ta), choice_(choice) {
  g_forced_gemm_ta = &choice_;
}

ScopedForcedGemmTransA::~ScopedForcedGemmTransA() {
  g_forced_gemm_ta = saved_;
}

ScopedForcedGemmTransB::ScopedForcedGemmTransB(const GemmChoice& choice)
    : saved_(g_forced_gemm_tb), choice_(choice) {
  g_forced_gemm_tb = &choice_;
}

ScopedForcedGemmTransB::~ScopedForcedGemmTransB() {
  g_forced_gemm_tb = saved_;
}

}  // namespace ahg::kernels
