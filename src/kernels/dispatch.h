// Runtime CPU-feature dispatch for the SIMD kernel backend.
//
// The numeric kernels (dense GEMM and its TransA/TransB variants, CSR SpMM,
// fused Linear+ReLU, row-softmax, and the elementwise accumulators) exist in
// three tiers: a portable scalar reference, an AVX2 path, and an AVX-512
// path. Every tier preserves the scalar reference's per-output-element
// accumulation order and uses separate multiply and add (never FMA — its
// single rounding would change results), so outputs are bitwise identical
// across tiers, register-block widths, and thread counts; the bitwise
// identity matrix in tests/kernels_test.cc proves it on whatever tiers the
// host supports.
//
// Tier selection, resolved once at first use:
//   1. AHG_FORCE_SCALAR=1        -> scalar, unconditionally.
//   2. AHG_KERNEL_TIER=scalar|avx2|avx512
//                                -> that tier, clamped down to the best
//                                   supported tier at or below it.
//   3. otherwise                 -> best tier the CPU (and build) supports.
// SetTier()/ScopedTier override the resolved tier at runtime (tests force
// each tier in turn); overrides clamp to supported tiers the same way.
#ifndef AUTOHENS_KERNELS_DISPATCH_H_
#define AUTOHENS_KERNELS_DISPATCH_H_

namespace ahg::kernels {

enum class Tier { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

// "scalar", "avx2", "avx512".
const char* TierName(Tier tier);

// True when both the build (the tier's TU compiled on this architecture)
// and the running CPU support the tier. kScalar is always supported.
bool TierSupported(Tier tier);

// Highest supported tier.
Tier BestSupportedTier();

// The tier kernels dispatch to right now (env overrides applied at first
// call, SetTier/ScopedTier afterwards).
Tier ActiveTier();

// Sets the active tier, clamped down to the best supported tier <= `tier`.
// Process-global: kernels resolve their tier on the calling thread before
// entering parallel regions, so the switch is race-free for callers that
// serialize their kernel launches (tests do).
void SetTier(Tier tier);

// RAII tier override for tests.
class ScopedTier {
 public:
  explicit ScopedTier(Tier tier);
  ~ScopedTier();

  ScopedTier(const ScopedTier&) = delete;
  ScopedTier& operator=(const ScopedTier&) = delete;

 private:
  Tier saved_;
};

}  // namespace ahg::kernels

#endif  // AUTOHENS_KERNELS_DISPATCH_H_
