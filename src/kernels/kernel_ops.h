// The per-tier kernel function table behind the runtime dispatch.
//
// Each tier (scalar / AVX2 / AVX-512) fills one TierOps with raw-pointer
// micro-kernels; the tensor layer (tensor/matrix.cc, tensor/sparse_matrix.cc,
// autodiff/ops.cc) resolves ActiveOps() once per operation — on the calling
// thread, before entering any parallel region — and drives its loops through
// the table.
//
// Exactness contract: every kernel accumulates each output element in
// exactly the order the scalar reference does (k ascending for GEMM, entry
// ascending for SpMM), uses separate multiply and add (no FMA contraction;
// the SIMD TUs are compiled with -ffp-contract=off), and reproduces the
// scalar tail element-for-element. Register-block width only changes how
// many independent output columns are held in registers, never the order
// any single element accumulates in — so all tiers, widths, and thread
// counts produce bitwise-identical results, which is what lets the
// autotuner pick variants freely without perturbing the repo-wide
// determinism guarantees. (Max-reductions are order-independent for
// NaN-free input; a ±0.0 tie can differ in sign, which exp/log/div map to
// identical downstream values.)
#ifndef AUTOHENS_KERNELS_KERNEL_OPS_H_
#define AUTOHENS_KERNELS_KERNEL_OPS_H_

#include <cstdint>

#include "kernels/dispatch.h"

namespace ahg::kernels {

struct TierOps {
  Tier tier;

  // Register-block widths (output columns held in accumulators) the tier's
  // gemm_panel / spmm_row support, ascending. The autotuner picks among
  // these; 0 passed at call time means "tier default" (the widest entry).
  const int* gemm_jblocks;
  int num_gemm_jblocks;
  const int* spmm_cblocks;
  int num_spmm_cblocks;

  // GEMM k-panel: crow[j] += sum_{k < kc, arow[k] != 0} arow[k]*b[k*ldb+j]
  // for j in [0, n), k ascending per element, zero a-entries skipped
  // (matches the scalar GEMM exactly, including its +/-0.0 behavior).
  void (*gemm_panel)(int jblock, const double* arow, int kc, const double* b,
                     int64_t ldb, int n, double* crow);

  // One CSR row times a dense block: yrow[c] = sum_e values[e] *
  // x[cols[e]*ldx + c] for c in [0, n), entries ascending per element.
  void (*spmm_row)(int cblock, const double* values, const int* cols,
                   int64_t nnz, const double* x, int64_t ldx, int n,
                   double* yrow);

  // Four simultaneous dot products (A*B^T register block):
  // out[l] = sum_k arow[k] * b_l[k], k ascending within each lane.
  void (*dot4)(const double* arow, const double* b0, const double* b1,
               const double* b2, const double* b3, int n, double* out);

  // Max over x[0..n), n >= 1. Order-independent for NaN-free input.
  double (*row_max)(const double* x, int n);

  // x[i] /= denom (softmax normalization; lane-independent, exact).
  void (*div_inplace)(double* x, int n, double denom);

  // out[i] = x[i] - s (log-softmax shift).
  void (*sub_scalar)(const double* x, int n, double s, double* out);

  // x[i] = max(x[i] + bias[i], 0); bias may be null (plain ReLU). Matches
  // the scalar `v > 0 ? v : 0.0` bit-for-bit, including -0.0 and NaN
  // (both map to +0.0).
  void (*bias_relu_row)(double* x, const double* bias, int n);

  // x[i] += y[i].
  void (*add_inplace)(double* x, const double* y, int64_t n);

  // x[i] += alpha * y[i] (separate mul and add).
  void (*axpy_inplace)(double* x, double alpha, const double* y, int64_t n);

  // x[i] *= alpha.
  void (*scale_inplace)(double* x, double alpha, int64_t n);

  // out[i] = a[i] * b[i].
  void (*cwise_mul)(const double* a, const double* b, int64_t n, double* out);

  // One compressed hub-segment CSR row times a dense block (see
  // SparseMatrix::BuildHubSegments): the row's entries arrive as `num_runs`
  // runs of consecutive column ids — run k reads columns run_cols[k] ..
  // run_cols[k]+run_lens[k]-1 — with `values` holding the entry values in
  // the same stored order the runs decode to. Accumulation is entry
  // ascending per output element, exactly like spmm_row, so the result is
  // bitwise identical to spmm_row over the decoded (values, cols) arrays.
  void (*spmm_hub_row)(int cblock, const double* values, const int* run_cols,
                       const int* run_lens, int num_runs, const double* x,
                       int64_t ldx, int n, double* yrow);
};

// The scalar reference table (always available).
const TierOps& ScalarOps();

// Tier tables, or nullptr when the build lacks the instruction set (non-x86
// targets compile these TUs to empty stubs). CPU support is checked
// separately by TierSupported().
const TierOps* Avx2Ops();
const TierOps* Avx512Ops();

// Table for `tier`, falling back down to scalar when unsupported.
const TierOps& OpsFor(Tier tier);

// Table for ActiveTier().
const TierOps& ActiveOps();

}  // namespace ahg::kernels

#endif  // AUTOHENS_KERNELS_KERNEL_OPS_H_
