// Cooperative cancellation for long-running pipelines (proxy evaluation,
// architecture search, final training). A CancelToken is a sticky flag the
// owner sets from any thread; workers poll it at natural boundaries —
// candidate, probe, epoch — and unwind cleanly, leaving whatever durable
// checkpoints they have already written intact. Cancellation is advisory:
// a loop that never polls simply finishes its unit of work first.
#ifndef AUTOHENS_UTIL_CANCEL_H_
#define AUTOHENS_UTIL_CANCEL_H_

#include <atomic>

namespace ahg {

class CancelToken {
 public:
  CancelToken() = default;

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  // Requests cancellation. Idempotent and safe from any thread.
  void Cancel() { cancelled_.store(true, std::memory_order_release); }

  // Re-arms the token so it can gate another run (single-owner only; do not
  // reset while workers still poll the previous run).
  void Reset() { cancelled_.store(false, std::memory_order_release); }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

// Convenience for optional-token call sites: a null token never cancels.
inline bool IsCancelled(const CancelToken* token) {
  return token != nullptr && token->cancelled();
}

}  // namespace ahg

#endif  // AUTOHENS_UTIL_CANCEL_H_
