// Wall-clock stopwatch used by the runtime-statistics benches (Table VI,
// Figure 8) and by the time-budget guard in the end-to-end driver.
#ifndef AUTOHENS_UTIL_STOPWATCH_H_
#define AUTOHENS_UTIL_STOPWATCH_H_

#include <chrono>

namespace ahg {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  // Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  void Reset() { start_ = Clock::now(); }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ahg

#endif  // AUTOHENS_UTIL_STOPWATCH_H_
