#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace ahg {
namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

void LogMessage(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) <
      g_log_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::fprintf(stderr, "[%s] %s\n", LevelName(level), message.c_str());
}

void CheckFailed(const char* file, int line, const char* expr,
                 const std::string& message) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s %s\n", file, line, expr,
               message.c_str());
  std::abort();
}

}  // namespace ahg
