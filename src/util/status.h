// RocksDB-style error status for IO and user-facing APIs.
//
// Internal invariant violations use AHG_CHECK (util/logging.h) instead;
// Status is reserved for conditions the caller can reasonably handle
// (missing files, malformed input, invalid configuration).
#ifndef AUTOHENS_UTIL_STATUS_H_
#define AUTOHENS_UTIL_STATUS_H_

#include <string>
#include <utility>

namespace ahg {

class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kIOError,
    kInternal,
    kDeadlineExceeded,    // request missed its latency budget (serving)
    kResourceExhausted,   // admission control rejected the request (serving)
    kCancelled,           // cooperative cancellation was requested (jobs)
  };

  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(Code::kIOError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(Code::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(Code::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(Code::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  // Human-readable form, e.g. "IOError: no such file".
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

// Minimal StatusOr: either an error Status or a value of type T.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {}  // NOLINT
  StatusOr(T value) : value_(std::move(value)) {}          // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }
  const T& value() const& { return value_; }
  T& value() & { return value_; }
  T&& value() && { return std::move(value_); }

 private:
  Status status_;
  T value_{};
};

}  // namespace ahg

#endif  // AUTOHENS_UTIL_STATUS_H_
