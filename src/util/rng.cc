#include "util/rng.h"

#include <cmath>
#include <numeric>

#include "util/logging.h"

namespace ahg {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * Uniform();
}

int64_t Rng::UniformInt(int64_t n) {
  AHG_CHECK_GT(n, 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t un = static_cast<uint64_t>(n);
  const uint64_t limit = UINT64_MAX - UINT64_MAX % un;
  uint64_t v = Next();
  while (v >= limit) v = Next();
  return static_cast<int64_t>(v % un);
}

double Rng::Normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u1 = Uniform();
  double u2 = Uniform();
  while (u1 <= 1e-300) u1 = Uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  spare_normal_ = r * std::sin(theta);
  has_spare_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

Rng Rng::Fork() { return Rng(Next() ^ 0xa5a5a5a5a5a5a5a5ULL); }

std::vector<int> Rng::SampleWithoutReplacement(int n, int k) {
  AHG_CHECK_GE(n, k);
  AHG_CHECK_GE(k, 0);
  // Partial Fisher-Yates over an index array.
  std::vector<int> indices(n);
  std::iota(indices.begin(), indices.end(), 0);
  for (int i = 0; i < k; ++i) {
    int64_t j = i + UniformInt(n - i);
    std::swap(indices[i], indices[j]);
  }
  indices.resize(k);
  return indices;
}

RngState Rng::ExportState() const {
  RngState state;
  for (int i = 0; i < 4; ++i) state.s[i] = state_[i];
  state.has_spare_normal = has_spare_normal_;
  state.spare_normal = spare_normal_;
  return state;
}

void Rng::RestoreState(const RngState& state) {
  for (int i = 0; i < 4; ++i) state_[i] = state.s[i];
  has_spare_normal_ = state.has_spare_normal;
  spare_normal_ = state.spare_normal;
}

}  // namespace ahg
