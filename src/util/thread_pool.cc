#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace ahg {
namespace {

// 0 means "unset": fall back to hardware concurrency.
std::atomic<int> g_num_threads{0};

constexpr int64_t kDefaultMinParallelWork = 32768;
std::atomic<int64_t> g_min_parallel_work{kDefaultMinParallelWork};

// Depth of parallel regions on this thread; > 0 inside a worker task.
thread_local int tl_parallel_depth = 0;

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(lock,
                           [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void SetNumThreads(int num_threads) {
  g_num_threads.store(std::max(0, num_threads), std::memory_order_relaxed);
}

int GetNumThreads() {
  int n = g_num_threads.load(std::memory_order_relaxed);
  if (n <= 0) {
    n = static_cast<int>(std::thread::hardware_concurrency());
  }
  return std::max(1, n);
}

bool InParallelRegion() { return tl_parallel_depth > 0; }

ScopedNumThreads::ScopedNumThreads(int num_threads)
    : saved_(g_num_threads.load(std::memory_order_relaxed)),
      active_(num_threads > 0) {
  if (active_) SetNumThreads(num_threads);
}

ScopedNumThreads::~ScopedNumThreads() {
  if (active_) g_num_threads.store(saved_, std::memory_order_relaxed);
}

void SetMinParallelWork(int64_t min_work) {
  g_min_parallel_work.store(std::max<int64_t>(1, min_work),
                            std::memory_order_relaxed);
}

int64_t GetMinParallelWork() {
  return g_min_parallel_work.load(std::memory_order_relaxed);
}

ScopedMinParallelWork::ScopedMinParallelWork(int64_t min_work)
    : saved_(GetMinParallelWork()) {
  if (min_work > 0) SetMinParallelWork(min_work);
}

ScopedMinParallelWork::~ScopedMinParallelWork() { SetMinParallelWork(saved_); }

void ParallelFor(int n, int num_threads, const std::function<void(int)>& fn) {
  if (num_threads <= 1 || n <= 1 || tl_parallel_depth > 0) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool pool(std::min(num_threads, n));
  std::atomic<int> next{0};
  for (int w = 0; w < pool.num_threads(); ++w) {
    pool.Submit([&] {
      ++tl_parallel_depth;
      for (int i = next.fetch_add(1); i < n; i = next.fetch_add(1)) fn(i);
      --tl_parallel_depth;
    });
  }
  pool.Wait();
}

void ParallelForChunked(int64_t n, int64_t work_per_item,
                        const std::function<void(int64_t, int64_t)>& fn) {
  if (n <= 0) return;
  work_per_item = std::max<int64_t>(1, work_per_item);
  const int threads = GetNumThreads();
  if (threads <= 1 || tl_parallel_depth > 0 ||
      n * work_per_item <= GetMinParallelWork()) {
    fn(0, n);
    return;
  }
  // Chunk count: enough for dynamic load balancing (4 per worker), capped so
  // every chunk still clears the min-grain threshold.
  const int64_t by_grain =
      std::max<int64_t>(1, n * work_per_item / GetMinParallelWork());
  const int64_t num_chunks =
      std::min<int64_t>({n, by_grain, int64_t{threads} * 4});
  const int64_t chunk = (n + num_chunks - 1) / num_chunks;
  const int workers = static_cast<int>(std::min<int64_t>(threads, num_chunks));
  ThreadPool pool(workers);
  std::atomic<int64_t> next{0};
  for (int w = 0; w < workers; ++w) {
    pool.Submit([&] {
      ++tl_parallel_depth;
      for (int64_t c = next.fetch_add(1); c * chunk < n;
           c = next.fetch_add(1)) {
        const int64_t begin = c * chunk;
        fn(begin, std::min<int64_t>(begin + chunk, n));
      }
      --tl_parallel_depth;
    });
  }
  pool.Wait();
}

}  // namespace ahg
