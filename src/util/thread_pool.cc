#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace ahg {

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(lock,
                           [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ParallelFor(int n, int num_threads, const std::function<void(int)>& fn) {
  if (num_threads <= 1 || n <= 1) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool pool(std::min(num_threads, n));
  std::atomic<int> next{0};
  for (int w = 0; w < pool.num_threads(); ++w) {
    pool.Submit([&] {
      for (int i = next.fetch_add(1); i < n; i = next.fetch_add(1)) fn(i);
    });
  }
  pool.Wait();
}

}  // namespace ahg
