#include "util/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace ahg {

std::vector<std::string> StrSplit(const std::string& text, char delim) {
  std::vector<std::string> parts;
  std::string current;
  for (char c : text) {
    if (c == delim) {
      parts.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  parts.push_back(current);
  return parts;
}

std::string StrTrim(const std::string& text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin])))
    ++begin;
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1])))
    --end;
  return text.substr(begin, end - begin);
}

std::string StrFormat(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  const int size = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  std::string out(size > 0 ? size : 0, '\0');
  if (size > 0) {
    std::vsnprintf(out.data(), out.size() + 1, format, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string FormatFloat(double value, int precision) {
  return StrFormat("%.*f", precision, value);
}

}  // namespace ahg
