// Small string helpers shared by the dataset IO layer and bench printers.
#ifndef AUTOHENS_UTIL_STRING_UTIL_H_
#define AUTOHENS_UTIL_STRING_UTIL_H_

#include <string>
#include <vector>

namespace ahg {

// Splits `text` on `delim`, keeping empty fields.
std::vector<std::string> StrSplit(const std::string& text, char delim);

// Removes leading/trailing whitespace.
std::string StrTrim(const std::string& text);

// printf-style formatting into a std::string.
std::string StrFormat(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

// "12.3%" / "4.7x"-style fixed-precision float rendering.
std::string FormatFloat(double value, int precision);

}  // namespace ahg

#endif  // AUTOHENS_UTIL_STRING_UTIL_H_
