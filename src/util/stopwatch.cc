#include "util/stopwatch.h"

// Header-only; this translation unit exists so the target always has a
// definition home if non-inline helpers are added later.
