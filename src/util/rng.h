// Deterministic random number generation.
//
// Every stochastic component in the library (weight init, dropout, dataset
// generation, splits, sampling) draws from an explicitly seeded Rng so that
// experiments are reproducible bit-for-bit on a given platform.
#ifndef AUTOHENS_UTIL_RNG_H_
#define AUTOHENS_UTIL_RNG_H_

#include <cstdint>
#include <vector>

namespace ahg {

// Full generator state, exposed so checkpoint/resume paths (src/jobs) can
// persist an Rng mid-stream and continue the identical draw sequence.
struct RngState {
  uint64_t s[4] = {0, 0, 0, 0};
  bool has_spare_normal = false;
  double spare_normal = 0.0;
};

// xoshiro256** generator seeded via splitmix64. Not thread-safe; use one
// instance per thread (Fork() derives an independent stream).
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Next raw 64-bit value.
  uint64_t Next();

  // Uniform double in [0, 1).
  double Uniform();

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // Uniform integer in [0, n). Requires n > 0.
  int64_t UniformInt(int64_t n);

  // Standard normal via Box-Muller.
  double Normal();
  double Normal(double mean, double stddev);

  // True with probability p.
  bool Bernoulli(double p);

  // Derives an independent generator; deterministic given this Rng's state.
  Rng Fork();

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    for (int64_t i = static_cast<int64_t>(values->size()) - 1; i > 0; --i) {
      int64_t j = UniformInt(i + 1);
      std::swap((*values)[i], (*values)[j]);
    }
  }

  // Returns k distinct indices sampled uniformly from [0, n).
  std::vector<int> SampleWithoutReplacement(int n, int k);

  // Snapshot / restore of the exact generator state: a restored Rng
  // produces the same draw sequence bit-for-bit as the original would have.
  RngState ExportState() const;
  void RestoreState(const RngState& state);

 private:
  uint64_t state_[4];
  bool has_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace ahg

#endif  // AUTOHENS_UTIL_RNG_H_
