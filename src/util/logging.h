// CHECK macros and a minimal leveled logger.
//
// AHG_CHECK* abort the process with a source location; they guard internal
// invariants (shape mismatches, index bounds) that indicate programmer error
// rather than bad user input.
#ifndef AUTOHENS_UTIL_LOGGING_H_
#define AUTOHENS_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace ahg {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Sets the minimum level emitted by LogMessage; defaults to kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Writes one formatted line to stderr if `level` passes the threshold.
void LogMessage(LogLevel level, const std::string& message);

// Aborts the process after printing `message` with file/line context.
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& message);

namespace log_internal {

// Accumulates a log line via operator<< and emits it on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { LogMessage(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace log_internal
}  // namespace ahg

#define AHG_LOG(level) \
  ::ahg::log_internal::LogLine(::ahg::LogLevel::k##level)

#define AHG_CHECK(cond)                                            \
  do {                                                             \
    if (!(cond)) {                                                 \
      ::ahg::CheckFailed(__FILE__, __LINE__, #cond, "");           \
    }                                                              \
  } while (0)

#define AHG_CHECK_MSG(cond, msg)                                   \
  do {                                                             \
    if (!(cond)) {                                                 \
      std::ostringstream ahg_check_stream_;                        \
      ahg_check_stream_ << msg;                                    \
      ::ahg::CheckFailed(__FILE__, __LINE__, #cond,                \
                         ahg_check_stream_.str());                 \
    }                                                              \
  } while (0)

#define AHG_CHECK_EQ(a, b) AHG_CHECK_MSG((a) == (b), (a) << " vs " << (b))
#define AHG_CHECK_NE(a, b) AHG_CHECK_MSG((a) != (b), (a) << " vs " << (b))
#define AHG_CHECK_LT(a, b) AHG_CHECK_MSG((a) < (b), (a) << " vs " << (b))
#define AHG_CHECK_LE(a, b) AHG_CHECK_MSG((a) <= (b), (a) << " vs " << (b))
#define AHG_CHECK_GT(a, b) AHG_CHECK_MSG((a) > (b), (a) << " vs " << (b))
#define AHG_CHECK_GE(a, b) AHG_CHECK_MSG((a) >= (b), (a) << " vs " << (b))

#endif  // AUTOHENS_UTIL_LOGGING_H_
