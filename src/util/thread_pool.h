// Fixed-size worker pool used for parallel proxy evaluation (Section III-B of
// the paper: candidate models are small enough after proxying to evaluate in
// parallel). On a single-core host the pool degrades gracefully to one worker.
#ifndef AUTOHENS_UTIL_THREAD_POOL_H_
#define AUTOHENS_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ahg {

class ThreadPool {
 public:
  // Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Drains the queue and joins all workers.
  ~ThreadPool();

  // Enqueues a task; tasks run in FIFO order across workers.
  void Submit(std::function<void()> task);

  // Blocks until every submitted task has finished.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  int in_flight_ = 0;
  bool shutdown_ = false;
};

// Runs fn(i) for i in [0, n), distributing across `num_threads` workers.
// With num_threads <= 1 runs inline (deterministic order).
void ParallelFor(int n, int num_threads, const std::function<void(int)>& fn);

}  // namespace ahg

#endif  // AUTOHENS_UTIL_THREAD_POOL_H_
