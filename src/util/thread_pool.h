// Fixed-size worker pool plus the parallel-loop primitives the numeric hot
// path is built on (parallel SpMM / GEMM / row-softmax and parallel proxy
// evaluation). On a single-core host everything degrades gracefully to one
// worker.
//
// Threading model (see README "Threading model"):
//  - A process-global thread count, set via SetNumThreads() and defaulted
//    from std::thread::hardware_concurrency(), controls every kernel-level
//    ParallelForChunked() loop.
//  - Parallel regions never nest: a ParallelFor/ParallelForChunked issued
//    from inside a worker runs inline on that worker. This keeps the proxy
//    evaluator's candidate-level parallelism from multiplying with kernel
//    parallelism and makes nested calls trivially deadlock-free.
//  - Determinism: ParallelForChunked partitions [0, n) into contiguous
//    chunks and each index is processed by exactly one worker. Kernels that
//    write only index-owned state (one output row per index) are therefore
//    bitwise identical for every thread count.
#ifndef AUTOHENS_UTIL_THREAD_POOL_H_
#define AUTOHENS_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ahg {

class ThreadPool {
 public:
  // Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Drains the queue (queued tasks still run) and joins all workers.
  ~ThreadPool();

  // Enqueues a task; tasks are dequeued in FIFO order across workers.
  void Submit(std::function<void()> task);

  // Blocks until every submitted task has finished.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  int in_flight_ = 0;
  bool shutdown_ = false;
};

// Sets the process-global kernel thread count (clamped to >= 1). Pass 0 to
// reset to the hardware default.
void SetNumThreads(int num_threads);

// Current kernel thread count: the last SetNumThreads() value, or
// std::thread::hardware_concurrency() when unset.
int GetNumThreads();

// True when called from inside a ParallelFor/ParallelForChunked worker;
// parallel primitives use this to run nested loops inline.
bool InParallelRegion();

// RAII override of the global thread count; num_threads <= 0 is a no-op.
class ScopedNumThreads {
 public:
  explicit ScopedNumThreads(int num_threads);
  ~ScopedNumThreads();

  ScopedNumThreads(const ScopedNumThreads&) = delete;
  ScopedNumThreads& operator=(const ScopedNumThreads&) = delete;

 private:
  int saved_;
  bool active_;
};

// Minimum estimated work (in fused multiply-add units) a parallel loop must
// carry before threads are spawned; below it the loop runs inline so tiny
// graphs and unit-test-sized matrices pay no threading overhead. Tests drop
// it to 1 to force the threaded path on small inputs.
void SetMinParallelWork(int64_t min_work);
int64_t GetMinParallelWork();

// RAII override of the min-grain threshold (tests); min_work <= 0 no-ops.
class ScopedMinParallelWork {
 public:
  explicit ScopedMinParallelWork(int64_t min_work);
  ~ScopedMinParallelWork();

  ScopedMinParallelWork(const ScopedMinParallelWork&) = delete;
  ScopedMinParallelWork& operator=(const ScopedMinParallelWork&) = delete;

 private:
  int64_t saved_;
};

// Runs fn(i) for i in [0, n), distributing across `num_threads` workers.
// With num_threads <= 1 — or when already inside a parallel region — runs
// inline in index order.
void ParallelFor(int n, int num_threads, const std::function<void(int)>& fn);

// Runs fn(begin, end) over a partition of [0, n) into contiguous chunks,
// distributed across GetNumThreads() workers. `work_per_item` is the
// caller's estimate of per-index cost (in fused multiply-add units); when
// n * work_per_item falls below GetMinParallelWork(), or the loop is nested
// inside another parallel region, the whole range runs inline as
// fn(0, n). Chunks are claimed dynamically but each index belongs to
// exactly one chunk, so index-owned writes need no synchronization.
void ParallelForChunked(int64_t n, int64_t work_per_item,
                        const std::function<void(int64_t, int64_t)>& fn);

}  // namespace ahg

#endif  // AUTOHENS_UTIL_THREAD_POOL_H_
