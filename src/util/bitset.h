// Flat dynamic bitset used by the dynamic-graph subsystem to track dirty
// row sets during k-hop frontier expansion. Word-packed so membership
// testing over the 50k-node serving graphs stays cache-resident, unlike a
// std::unordered_set<int> of the same cardinality.
#ifndef AUTOHENS_UTIL_BITSET_H_
#define AUTOHENS_UTIL_BITSET_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace ahg {

class DynamicBitset {
 public:
  DynamicBitset() = default;
  explicit DynamicBitset(int size)
      : size_(size), words_((static_cast<size_t>(size) + 63) / 64, 0) {
    AHG_CHECK_GE(size, 0);
  }

  int size() const { return size_; }

  // Grows to `size` bits, preserving existing bits; never shrinks.
  void Resize(int size) {
    AHG_CHECK_GE(size, size_);
    size_ = size;
    words_.resize((static_cast<size_t>(size) + 63) / 64, 0);
  }

  bool Test(int i) const {
    AHG_CHECK(i >= 0 && i < size_);
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  // Sets bit i; returns true when the bit was previously clear (so callers
  // can maintain a count or frontier without a separate Test).
  bool Set(int i) {
    AHG_CHECK(i >= 0 && i < size_);
    uint64_t& w = words_[i >> 6];
    const uint64_t mask = uint64_t{1} << (i & 63);
    if (w & mask) return false;
    w |= mask;
    ++count_;
    return true;
  }

  // Number of set bits (maintained incrementally; O(1)).
  int Count() const { return count_; }

  // Set bits in ascending order.
  std::vector<int> ToSortedVector() const {
    std::vector<int> out;
    out.reserve(count_);
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t bits = words_[w];
      while (bits != 0) {
        const int b = __builtin_ctzll(bits);
        out.push_back(static_cast<int>(w * 64) + b);
        bits &= bits - 1;
      }
    }
    return out;
  }

  void Clear() {
    std::fill(words_.begin(), words_.end(), 0);
    count_ = 0;
  }

 private:
  int size_ = 0;
  int count_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace ahg

#endif  // AUTOHENS_UTIL_BITSET_H_
