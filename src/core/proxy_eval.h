// Proxy evaluation for model selection (Section III-B): candidates are
// ranked by training a *proxy model* (reduced hidden size, M_proxy) on a
// *proxy dataset* (sampled subgraph, D_proxy) with *proxy bagging* (B_proxy
// resplits). Accurate evaluation is the same procedure at ratio 1.0 / full
// bagging, so Figure 3's Kendall-vs-speedup sweeps reuse this API.
#ifndef AUTOHENS_CORE_PROXY_EVAL_H_
#define AUTOHENS_CORE_PROXY_EVAL_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "models/model_zoo.h"
#include "tasks/train_node.h"
#include "util/cancel.h"

namespace ahg {

struct CandidateScore {
  std::string name;
  ModelConfig config;           // with the proxy hidden size applied
  ModelConfig original_config;  // as supplied in the pool
  double mean_val_accuracy = 0.0;
  double stddev = 0.0;
  double seconds = 0.0;  // summed training time for this candidate
};

struct ProxyConfig {
  double dataset_ratio = 0.3;  // D_proxy: subgraph node fraction
  int bagging = 6;             // B_proxy: resplit count
  double model_ratio = 0.5;    // M_proxy: hidden-size multiplier
  double train_fraction = 0.6;
  double val_fraction = 0.2;
  bool grid_search = false;  // per-candidate lr/dropout search
  // Candidate-level parallelism (one worker per proxy model). Kernel-level
  // threads inside each candidate come from train.num_threads / the global
  // SetNumThreads() setting and automatically run inline when candidates
  // already execute in parallel (nested regions never spawn).
  int num_threads = 1;
  TrainConfig train;
  // Cooperative cancellation, polled before each candidate and (through
  // TrainConfig) at epoch boundaries inside each proxy training. Cancelled
  // candidates are left unscored and `interrupted` is set on the result.
  const CancelToken* cancel = nullptr;
  // Called as each candidate finishes, from the evaluating worker thread
  // (concurrent when num_threads > 1) — the job layer persists completed
  // scores here. Never called for cancelled/precomputed candidates.
  std::function<void(int index, const CandidateScore& score)>
      on_candidate_done;
  // Resume support: scores for candidates already evaluated by an earlier
  // (interrupted) run, keyed by pool index. These candidates are not
  // retrained; their stored scores enter the ranking unchanged, so a
  // resumed evaluation ranks identically to an uninterrupted one.
  std::map<int, CandidateScore> precomputed;
};

struct ProxyEvalResult {
  std::vector<CandidateScore> ranked;  // descending mean validation accuracy
  double total_seconds = 0.0;
  // True when cancellation stopped the evaluation early; `ranked` then holds
  // only the candidates that finished (completed before the cancel).
  bool interrupted = false;
};

ProxyEvalResult ProxyEvaluate(const std::vector<CandidateSpec>& pool,
                              const Graph& graph, const ProxyConfig& config,
                              uint64_t seed);

// Top-n specs from a ranking, with the original (non-proxy) hidden size.
std::vector<CandidateSpec> SelectTopCandidates(const ProxyEvalResult& result,
                                               int n);

}  // namespace ahg

#endif  // AUTOHENS_CORE_PROXY_EVAL_H_
