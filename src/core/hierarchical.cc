#include "core/hierarchical.h"

#include "ensemble/baselines.h"
#include "metrics/metrics.h"
#include "util/stopwatch.h"

namespace ahg {

HierarchicalResult TrainHierarchicalEnsemble(
    const std::vector<CandidateSpec>& pool,
    const std::vector<std::vector<int>>& layers,
    const std::vector<double>& beta, const Graph& graph,
    const DataSplit& split, const TrainConfig& train_config, uint64_t seed) {
  AHG_CHECK(!pool.empty());
  AHG_CHECK_EQ(pool.size(), layers.size());
  AHG_CHECK_EQ(pool.size(), beta.size());
  Stopwatch watch;
  HierarchicalResult result;
  for (size_t j = 0; j < pool.size(); ++j) {
    std::vector<Matrix> member_probs;
    for (size_t k = 0; k < layers[j].size(); ++k) {
      ModelConfig mcfg = pool[j].config;
      mcfg.num_layers = layers[j][k];
      mcfg.seed = seed + static_cast<uint64_t>(j) * 131 + k;
      TrainConfig tcfg = train_config;
      tcfg.seed = mcfg.seed ^ 0x2badULL;
      member_probs.push_back(
          TrainSingleNodeModel(mcfg, graph, split, tcfg).probs);
    }
    result.per_model_probs.push_back(AverageProbs(member_probs));
  }
  result.probs = WeightedProbs(result.per_model_probs, beta);
  if (!split.val.empty()) {
    result.val_accuracy = Accuracy(result.probs, graph.labels(), split.val);
  }
  if (!split.test.empty()) {
    result.test_accuracy = Accuracy(result.probs, graph.labels(), split.test);
  }
  result.train_seconds = watch.ElapsedSeconds();
  return result;
}

HierarchicalResult TrainGse(const CandidateSpec& spec,
                            const std::vector<int>& layers_per_member,
                            const Graph& graph, const DataSplit& split,
                            const TrainConfig& train_config, uint64_t seed) {
  return TrainHierarchicalEnsemble({spec}, {layers_per_member}, {1.0}, graph,
                                   split, train_config, seed);
}

}  // namespace ahg
