#include "core/proxy_eval.h"

#include <algorithm>
#include <cmath>

#include "graph/sampling.h"
#include "metrics/aggregate.h"
#include "obs/trace.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace ahg {

ProxyEvalResult ProxyEvaluate(const std::vector<CandidateSpec>& pool,
                              const Graph& graph, const ProxyConfig& config,
                              uint64_t seed) {
  AHG_TRACE_SPAN_ARG("search/proxy_eval", static_cast<int64_t>(pool.size()));
  Stopwatch total_watch;
  // One proxy graph + split per bagging round, shared by all candidates so
  // every model is ranked on identical data.
  struct Round {
    Subgraph sub;
    DataSplit split;
  };
  std::vector<Round> rounds(config.bagging);
  Rng rng(seed);
  for (int b = 0; b < config.bagging; ++b) {
    Rng round_rng = rng.Fork();
    if (config.dataset_ratio >= 1.0) {
      rounds[b].sub.graph = graph;
      rounds[b].sub.node_map.resize(graph.num_nodes());
      for (int i = 0; i < graph.num_nodes(); ++i) {
        rounds[b].sub.node_map[i] = i;
      }
    } else {
      rounds[b].sub =
          SampleInducedSubgraph(graph, config.dataset_ratio, &round_rng);
    }
    rounds[b].split = RandomSplit(rounds[b].sub.graph, config.train_fraction,
                                  config.val_fraction, &round_rng);
  }

  ProxyEvalResult result;
  result.ranked.resize(pool.size());
  // Tracks which slots finished; cancelled candidates never enter the
  // ranking (a partially trained score would not be reproducible).
  std::vector<char> scored(pool.size(), 0);
  ParallelFor(
      static_cast<int>(pool.size()), config.num_threads, [&](int i) {
        if (auto it = config.precomputed.find(i);
            it != config.precomputed.end()) {
          result.ranked[i] = it->second;
          scored[i] = 1;
          return;
        }
        if (IsCancelled(config.cancel)) return;
        AHG_TRACE_SPAN_ARG("search/proxy_candidate", i);
        const CandidateSpec& spec = pool[i];
        CandidateScore score;
        score.name = spec.name;
        score.config = spec.config;
        score.original_config = spec.config;
        score.config.hidden_dim = std::max(
            4, static_cast<int>(
                   std::lround(spec.config.hidden_dim * config.model_ratio)));
        Stopwatch watch;
        std::vector<double> accs;
        for (int b = 0; b < config.bagging; ++b) {
          if (IsCancelled(config.cancel)) return;
          ModelConfig mcfg = score.config;
          mcfg.seed = seed ^ (static_cast<uint64_t>(b) << 16) ^
                      (static_cast<uint64_t>(i) << 32);
          TrainConfig tcfg = config.train;
          tcfg.seed = mcfg.seed + 1;
          tcfg.cancel = config.cancel;
          NodeTrainResult trained;
          if (config.grid_search) {
            trained = GridSearchTrain(mcfg, rounds[b].sub.graph,
                                      rounds[b].split, tcfg,
                                      GridSearchSpace(), nullptr, nullptr);
          } else {
            trained = TrainSingleNodeModel(mcfg, rounds[b].sub.graph,
                                           rounds[b].split, tcfg);
          }
          // A cancel that fired mid-training produced a partial result;
          // drop the whole candidate rather than score it inconsistently.
          if (IsCancelled(config.cancel)) return;
          accs.push_back(trained.val_accuracy);
        }
        const RunStats stats = Summarize(accs);
        score.mean_val_accuracy = stats.mean;
        score.stddev = stats.stddev;
        score.seconds = watch.ElapsedSeconds();
        if (config.on_candidate_done) config.on_candidate_done(i, score);
        result.ranked[i] = std::move(score);
        scored[i] = 1;
      });

  result.interrupted = IsCancelled(config.cancel);
  // Compact away unscored slots (only possible after a cancel) before the
  // rank sort; index order is preserved, so the stable sort tie-breaks
  // exactly as an uninterrupted run would.
  std::vector<CandidateScore> complete;
  complete.reserve(pool.size());
  for (size_t i = 0; i < pool.size(); ++i) {
    if (scored[i]) complete.push_back(std::move(result.ranked[i]));
  }
  result.ranked = std::move(complete);
  std::stable_sort(result.ranked.begin(), result.ranked.end(),
                   [](const CandidateScore& a, const CandidateScore& b) {
                     return a.mean_val_accuracy > b.mean_val_accuracy;
                   });
  result.total_seconds = total_watch.ElapsedSeconds();
  return result;
}

std::vector<CandidateSpec> SelectTopCandidates(const ProxyEvalResult& result,
                                               int n) {
  std::vector<CandidateSpec> top;
  for (const CandidateScore& score : result.ranked) {
    if (static_cast<int>(top.size()) >= n) break;
    CandidateSpec spec;
    spec.name = score.name;
    spec.config = score.original_config;
    top.push_back(std::move(spec));
  }
  return top;
}

}  // namespace ahg
