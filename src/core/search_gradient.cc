#include "core/search_gradient.h"

#include <memory>

#include "autodiff/ops.h"
#include "core/gse.h"
#include "metrics/metrics.h"
#include "nn/optimizer.h"
#include "obs/trace.h"
#include "util/stopwatch.h"

namespace ahg {

GradientSearchResult SearchGradient(const std::vector<CandidateSpec>& pool,
                                    const Graph& graph,
                                    const DataSplit& split,
                                    const GradientSearchConfig& config) {
  AHG_CHECK(!pool.empty());
  AHG_TRACE_SPAN_ARG("search/gradient", static_cast<int64_t>(pool.size()));
  Stopwatch watch;
  const int n = static_cast<int>(pool.size());

  std::vector<std::unique_ptr<GraphSelfEnsemble>> ensembles;
  std::vector<Var> weight_params;
  std::vector<Var> arch_params;
  for (int j = 0; j < n; ++j) {
    auto gse = std::make_unique<GraphSelfEnsemble>(
        pool[j].config, config.k, graph.feature_dim(), graph.num_classes(),
        config.seed + static_cast<uint64_t>(j) * 1000,
        /*trainable_alpha=*/true);
    for (const Var& p : gse->WeightParams()) weight_params.push_back(p);
    for (const Var& p : gse->AlphaParams()) arch_params.push_back(p);
    ensembles.push_back(std::move(gse));
  }
  Var beta_raw = MakeParam(Matrix(1, n));
  arch_params.push_back(beta_raw);

  AdamConfig weight_cfg;
  weight_cfg.learning_rate = config.train.learning_rate;
  weight_cfg.weight_decay = config.train.weight_decay;
  Adam weight_optimizer(weight_params, weight_cfg);
  AdamConfig arch_cfg;
  arch_cfg.learning_rate = config.arch_learning_rate;
  arch_cfg.weight_decay = 0.0;
  Adam arch_optimizer(arch_params, arch_cfg);

  Rng dropout_rng(config.seed ^ 0x77aa55ULL);
  Var features = MakeConstant(graph.features());

  // Combined prediction of Eqn 4: sum_j beta_j * GSE_j probabilities.
  auto ensemble_probs = [&](bool training) {
    GnnContext ctx;
    ctx.graph = &graph;
    ctx.training = training;
    ctx.rng = &dropout_rng;
    std::vector<Var> per_model;
    per_model.reserve(ensembles.size());
    for (auto& gse : ensembles) per_model.push_back(gse->Probs(ctx, features));
    return SoftmaxWeightedSum(per_model, beta_raw);
  };
  auto zero_grads = [&] {
    for (const Var& p : weight_params) p->ZeroGrad();
    for (const Var& p : arch_params) p->ZeroGrad();
  };

  GradientSearchResult result;
  Matrix best_beta_raw = beta_raw->value;
  std::vector<Matrix> best_alphas;
  double best_val = -1.0;
  int epochs_since_best = 0;
  int start_epoch = 1;
  if (config.resume != nullptr) {
    const GradientSearchState& st = *config.resume;
    AHG_CHECK_EQ(static_cast<int>(st.weight_values.size()),
                 static_cast<int>(weight_params.size()));
    AHG_CHECK_EQ(static_cast<int>(st.arch_values.size()),
                 static_cast<int>(arch_params.size()));
    for (size_t i = 0; i < weight_params.size(); ++i) {
      weight_params[i]->value = st.weight_values[i];
    }
    for (size_t i = 0; i < arch_params.size(); ++i) {
      arch_params[i]->value = st.arch_values[i];
    }
    weight_optimizer.RestoreState(st.weight_opt);
    arch_optimizer.RestoreState(st.arch_opt);
    dropout_rng.RestoreState(st.dropout_rng);
    best_val = st.best_val;
    best_beta_raw = st.best_beta_raw;
    best_alphas = st.best_alphas;
    epochs_since_best = st.epochs_since_best;
    start_epoch = st.epoch + 1;
  }
  auto snapshot = [&](int epochs_done) {
    GradientSearchState st;
    st.epoch = epochs_done;
    st.weight_values.reserve(weight_params.size());
    for (const Var& p : weight_params) st.weight_values.push_back(p->value);
    st.arch_values.reserve(arch_params.size());
    for (const Var& p : arch_params) st.arch_values.push_back(p->value);
    st.weight_opt = weight_optimizer.ExportState();
    st.arch_opt = arch_optimizer.ExportState();
    st.dropout_rng = dropout_rng.ExportState();
    st.best_val = best_val;
    st.best_beta_raw = best_beta_raw;
    st.best_alphas = best_alphas;
    st.epochs_since_best = epochs_since_best;
    return st;
  };
  for (int epoch = start_epoch; epoch <= config.max_epochs; ++epoch) {
    if (IsCancelled(config.cancel)) {
      result.interrupted = true;
      result.search_seconds = watch.ElapsedSeconds();
      return result;
    }
    // Weight step on the training loss (Algorithm 1, line 5).
    zero_grads();
    Backward(MaskedNllFromProbs(ensemble_probs(true), graph.labels(),
                                split.train));
    weight_optimizer.Step();

    // Architecture step on the validation loss (lines 6-9).
    if (epoch % config.update_every == 0) {
      zero_grads();
      Backward(MaskedNllFromProbs(ensemble_probs(true), graph.labels(),
                                  split.val));
      arch_optimizer.Step();
    }

    Var eval = ensemble_probs(false);
    const double val_acc =
        Accuracy(eval->value, graph.labels(), split.val);
    if (val_acc > best_val) {
      best_val = val_acc;
      best_beta_raw = beta_raw->value;
      best_alphas.clear();
      for (auto& gse : ensembles) {
        for (const Var& a : gse->AlphaParams()) best_alphas.push_back(a->value);
      }
      epochs_since_best = 0;
    } else if (++epochs_since_best >= config.patience) {
      break;
    }
    if (config.checkpoint_every > 0 && config.on_checkpoint &&
        epoch % config.checkpoint_every == 0) {
      config.on_checkpoint(snapshot(epoch));
    }
  }

  // Restore the best-epoch architecture before discretizing.
  beta_raw->value = best_beta_raw;
  {
    size_t idx = 0;
    for (auto& gse : ensembles) {
      for (const Var& a : gse->AlphaParams()) {
        if (idx < best_alphas.size()) a->value = best_alphas[idx++];
      }
    }
  }

  result.val_accuracy = best_val;
  for (auto& gse : ensembles) result.layers.push_back(gse->SelectedLayers());
  const Matrix beta = RowSoftmax(beta_raw->value);
  result.beta.resize(n);
  for (int j = 0; j < n; ++j) result.beta[j] = beta(0, j);
  result.search_seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace ahg
