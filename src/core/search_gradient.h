// AutoHEnsGNN_Gradient (Section III-C2, Algorithm 1): jointly trains all
// N x K sub-models while treating the layer vectors alpha and ensemble
// weights beta as architecture parameters, alternating first-order updates
// of the weights (train loss) and of the architecture (validation loss).
#ifndef AUTOHENS_CORE_SEARCH_GRADIENT_H_
#define AUTOHENS_CORE_SEARCH_GRADIENT_H_

#include <vector>

#include "graph/split.h"
#include "models/model_zoo.h"
#include "tasks/train_node.h"

namespace ahg {

struct GradientSearchConfig {
  int k = 3;                 // sub-models per self-ensemble
  int update_every = 1;      // M: epochs between architecture updates
  double arch_learning_rate = 3e-4;
  int max_epochs = 60;
  int patience = 5;  // paper: early stop with patience 5 during search
  TrainConfig train;  // model-weight optimizer settings
  uint64_t seed = 1;
};

struct GradientSearchResult {
  // layers[j][i]: chosen (1-based) depth of sub-model i of pool model j.
  std::vector<std::vector<int>> layers;
  std::vector<double> beta;  // softmax-normalized ensemble weights
  double val_accuracy = 0.0;
  double search_seconds = 0.0;
};

GradientSearchResult SearchGradient(const std::vector<CandidateSpec>& pool,
                                    const Graph& graph,
                                    const DataSplit& split,
                                    const GradientSearchConfig& config);

}  // namespace ahg

#endif  // AUTOHENS_CORE_SEARCH_GRADIENT_H_
