// AutoHEnsGNN_Gradient (Section III-C2, Algorithm 1): jointly trains all
// N x K sub-models while treating the layer vectors alpha and ensemble
// weights beta as architecture parameters, alternating first-order updates
// of the weights (train loss) and of the architecture (validation loss).
#ifndef AUTOHENS_CORE_SEARCH_GRADIENT_H_
#define AUTOHENS_CORE_SEARCH_GRADIENT_H_

#include <functional>
#include <vector>

#include "graph/split.h"
#include "models/model_zoo.h"
#include "nn/optimizer.h"
#include "tasks/train_node.h"
#include "tensor/matrix.h"
#include "util/cancel.h"
#include "util/rng.h"

namespace ahg {

// Complete mutable state of a gradient search at an epoch boundary. Unlike
// proxy evaluation and adaptive probing (independently seeded units), the
// gradient search co-trains everything, so resuming mid-search bitwise
// identically requires every moving part: parameter values, both Adam
// moment/step states, the dropout RNG position, and best-epoch tracking.
struct GradientSearchState {
  int epoch = 0;  // number of completed epochs this state follows
  std::vector<Matrix> weight_values;  // model weights, construction order
  std::vector<Matrix> arch_values;    // alphas then beta_raw (last)
  AdamState weight_opt;
  AdamState arch_opt;
  RngState dropout_rng;
  double best_val = -1.0;
  Matrix best_beta_raw;
  std::vector<Matrix> best_alphas;
  int epochs_since_best = 0;
};

struct GradientSearchConfig {
  int k = 3;                 // sub-models per self-ensemble
  int update_every = 1;      // M: epochs between architecture updates
  double arch_learning_rate = 3e-4;
  int max_epochs = 60;
  int patience = 5;  // paper: early stop with patience 5 during search
  TrainConfig train;  // model-weight optimizer settings
  uint64_t seed = 1;
  // Cooperative cancellation, polled at epoch boundaries. A cancelled search
  // returns `interrupted = true`; its outputs are incomplete.
  const CancelToken* cancel = nullptr;
  // Snapshot cadence: every `checkpoint_every` completed epochs the search
  // calls `on_checkpoint` with its full state (0 disables). The state is
  // captured after the epoch's optimizer steps and best-epoch update, so a
  // resume continues at `epoch + 1` exactly as the uninterrupted run would.
  int checkpoint_every = 0;
  std::function<void(const GradientSearchState&)> on_checkpoint;
  // Resume support: when non-null the search restores this state (pool and k
  // must match the checkpointing run) and continues from `epoch + 1`. Not
  // owned; must outlive the call.
  const GradientSearchState* resume = nullptr;
};

struct GradientSearchResult {
  // layers[j][i]: chosen (1-based) depth of sub-model i of pool model j.
  std::vector<std::vector<int>> layers;
  std::vector<double> beta;  // softmax-normalized ensemble weights
  double val_accuracy = 0.0;
  double search_seconds = 0.0;
  // True when cancellation stopped the search early; layers/beta are then
  // incomplete and must not be used.
  bool interrupted = false;
};

GradientSearchResult SearchGradient(const std::vector<CandidateSpec>& pool,
                                    const Graph& graph,
                                    const DataSplit& split,
                                    const GradientSearchConfig& config);

}  // namespace ahg

#endif  // AUTOHENS_CORE_SEARCH_GRADIENT_H_
