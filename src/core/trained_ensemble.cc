#include "core/trained_ensemble.h"

#include <sys/stat.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "autodiff/ops.h"
#include "ensemble/baselines.h"
#include "io/model_store.h"
#include "metrics/metrics.h"
#include "nn/linear.h"
#include "nn/optimizer.h"
#include "util/string_util.h"

namespace ahg {
namespace {

// Trains one member and returns its best-validation parameter snapshot
// (model weights followed by the classifier head, in store order).
std::vector<Matrix> TrainMemberKeepWeights(const ModelConfig& config,
                                           const Graph& graph,
                                           const DataSplit& split,
                                           const TrainConfig& train_config,
                                           int num_classes) {
  std::unique_ptr<GnnModel> model = BuildModel(config);
  Rng head_rng(config.seed ^ 0x5ca1ab1eULL);
  Linear head(model->params(), config.hidden_dim, num_classes, /*bias=*/true,
              &head_rng);
  AdamConfig adam_config;
  adam_config.learning_rate = train_config.learning_rate;
  adam_config.weight_decay = train_config.weight_decay;
  Adam optimizer(model->params()->params(), adam_config);
  Rng dropout_rng(train_config.seed);
  Var features = MakeConstant(graph.features());

  auto forward_logits = [&](bool training) {
    GnnContext ctx{&graph, training, &dropout_rng};
    return head.Apply(model->LayerOutputs(ctx, features).back());
  };

  std::vector<Matrix> best_snapshot = model->params()->Snapshot();
  double best_val = -1.0;
  int since_best = 0;
  for (int epoch = 1; epoch <= train_config.max_epochs; ++epoch) {
    if (IsCancelled(train_config.cancel)) break;
    model->params()->ZeroGrad();
    Backward(MaskedCrossEntropy(forward_logits(true), graph.labels(),
                                split.train));
    optimizer.Step();
    if (train_config.lr_decay_every > 0 &&
        epoch % train_config.lr_decay_every == 0) {
      optimizer.set_learning_rate(optimizer.learning_rate() *
                                  train_config.lr_decay);
    }
    const Matrix probs = RowSoftmax(forward_logits(false)->value);
    const double val_acc =
        split.val.empty() ? 0.0
                          : Accuracy(probs, graph.labels(), split.val);
    if (epoch == 1 || val_acc > best_val) {
      best_val = val_acc;
      best_snapshot = model->params()->Snapshot();
      since_best = 0;
    } else if (++since_best >= train_config.patience) {
      break;
    }
  }
  return best_snapshot;
}

Status EnsureDir(const std::string& dir) {
  if (mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IOError("cannot create " + dir + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace

std::vector<MemberSpec> TrainedEnsemble::PlanMembers(
    const std::vector<CandidateSpec>& pool,
    const std::vector<std::vector<int>>& layers, const Graph& graph,
    const TrainConfig& train_config, uint64_t seed) {
  AHG_CHECK_EQ(pool.size(), layers.size());
  std::vector<MemberSpec> specs;
  for (size_t j = 0; j < pool.size(); ++j) {
    for (size_t k = 0; k < layers[j].size(); ++k) {
      MemberSpec spec;
      spec.config = pool[j].config;
      spec.config.in_dim = graph.feature_dim();
      spec.config.num_layers = layers[j][k];
      spec.config.seed = seed + static_cast<uint64_t>(j) * 131 + k;
      spec.train = train_config;
      spec.train.seed = spec.config.seed ^ 0x2badULL;
      spec.pool_index = static_cast<int>(j);
      spec.num_classes = graph.num_classes();
      specs.push_back(std::move(spec));
    }
  }
  return specs;
}

std::vector<Matrix> TrainedEnsemble::TrainMember(const MemberSpec& spec,
                                                 const Graph& graph,
                                                 const DataSplit& split) {
  return TrainMemberKeepWeights(spec.config, graph, split, spec.train,
                                spec.num_classes);
}

TrainedEnsemble TrainedEnsemble::FromParts(
    const std::vector<MemberSpec>& specs,
    std::vector<std::vector<Matrix>> params, const std::vector<double>& beta) {
  AHG_CHECK_EQ(specs.size(), params.size());
  TrainedEnsemble ensemble;
  ensemble.beta_ = beta;
  for (size_t i = 0; i < specs.size(); ++i) {
    AHG_CHECK_GE(specs[i].pool_index, 0);
    AHG_CHECK_LT(specs[i].pool_index, static_cast<int>(beta.size()));
    Member member;
    member.config = specs[i].config;
    member.params = std::move(params[i]);
    member.pool_index = specs[i].pool_index;
    member.num_classes = specs[i].num_classes;
    ensemble.members_.push_back(std::move(member));
  }
  return ensemble;
}

TrainedEnsemble TrainedEnsemble::Train(
    const std::vector<CandidateSpec>& pool,
    const std::vector<std::vector<int>>& layers,
    const std::vector<double>& beta, const Graph& graph,
    const DataSplit& split, const TrainConfig& train_config, uint64_t seed) {
  AHG_CHECK_EQ(pool.size(), beta.size());
  const std::vector<MemberSpec> specs =
      PlanMembers(pool, layers, graph, train_config, seed);
  std::vector<std::vector<Matrix>> params;
  params.reserve(specs.size());
  for (const MemberSpec& spec : specs) {
    params.push_back(TrainMember(spec, graph, split));
  }
  return FromParts(specs, std::move(params), beta);
}

int TrainedEnsemble::LeadMemberIndex() const {
  AHG_CHECK(!members_.empty());
  int best_pool = 0;
  for (size_t j = 1; j < beta_.size(); ++j) {
    if (beta_[j] > beta_[best_pool]) best_pool = static_cast<int>(j);
  }
  for (size_t i = 0; i < members_.size(); ++i) {
    if (members_[i].pool_index == best_pool) return static_cast<int>(i);
  }
  return 0;
}

Matrix TrainedEnsemble::PredictProba(const Graph& graph) const {
  AHG_CHECK(!members_.empty());
  const int num_arch = static_cast<int>(beta_.size());
  std::vector<std::vector<Matrix>> per_arch(num_arch);
  for (const Member& member : members_) {
    AHG_CHECK_EQ(member.config.in_dim, graph.feature_dim());
    std::unique_ptr<GnnModel> model = BuildModel(member.config);
    Rng head_rng(member.config.seed ^ 0x5ca1ab1eULL);
    Linear head(model->params(), member.config.hidden_dim,
                member.num_classes, /*bias=*/true, &head_rng);
    model->params()->Restore(member.params);
    GnnContext ctx{&graph, /*training=*/false, nullptr};
    Var x = MakeConstant(graph.features());
    Var logits = head.Apply(model->LayerOutputs(ctx, x).back());
    per_arch[member.pool_index].push_back(RowSoftmax(logits->value));
  }
  std::vector<Matrix> arch_probs;
  std::vector<double> weights;
  for (int j = 0; j < num_arch; ++j) {
    if (per_arch[j].empty()) continue;
    arch_probs.push_back(AverageProbs(per_arch[j]));
    weights.push_back(beta_[j]);
  }
  return WeightedProbs(arch_probs, weights);
}

Status TrainedEnsemble::Save(const std::string& dir) const {
  Status s = EnsureDir(dir);
  if (!s.ok()) return s;
  std::ofstream manifest(dir + "/manifest.tsv");
  if (!manifest.is_open()) {
    return Status::IOError("cannot write manifest in " + dir);
  }
  manifest << "beta";
  for (double b : beta_) manifest << "\t" << b;
  manifest << "\n";
  for (size_t i = 0; i < members_.size(); ++i) {
    const std::string file = StrFormat("member_%zu.ahgm", i);
    s = SaveModel(dir + "/" + file, members_[i].config, members_[i].params);
    if (!s.ok()) return s;
    manifest << file << "\t" << members_[i].pool_index << "\t"
             << members_[i].num_classes << "\n";
  }
  return Status::OK();
}

StatusOr<TrainedEnsemble> TrainedEnsemble::Load(const std::string& dir) {
  std::ifstream manifest(dir + "/manifest.tsv");
  if (!manifest.is_open()) {
    return Status::NotFound("no manifest in " + dir);
  }
  TrainedEnsemble ensemble;
  std::string line;
  if (!std::getline(manifest, line)) {
    return Status::InvalidArgument("empty manifest");
  }
  {
    const auto parts = StrSplit(line, '\t');
    if (parts.empty() || parts[0] != "beta") {
      return Status::InvalidArgument("manifest must start with beta row");
    }
    for (size_t i = 1; i < parts.size(); ++i) {
      ensemble.beta_.push_back(std::stod(parts[i]));
    }
  }
  while (std::getline(manifest, line)) {
    if (StrTrim(line).empty()) continue;
    const auto parts = StrSplit(line, '\t');
    if (parts.size() != 3) {
      return Status::InvalidArgument("malformed manifest row: " + line);
    }
    auto loaded = LoadModel(dir + "/" + parts[0]);
    if (!loaded.ok()) return loaded.status();
    Member member;
    member.config = loaded.value().config;
    member.params = std::move(loaded.value().params);
    member.pool_index = std::stoi(parts[1]);
    member.num_classes = std::stoi(parts[2]);
    if (member.pool_index < 0 ||
        member.pool_index >= static_cast<int>(ensemble.beta_.size())) {
      return Status::InvalidArgument("pool index out of range in manifest");
    }
    ensemble.members_.push_back(std::move(member));
  }
  if (ensemble.members_.empty()) {
    return Status::InvalidArgument("manifest lists no members");
  }
  return ensemble;
}

}  // namespace ahg
