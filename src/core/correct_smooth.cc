#include "core/correct_smooth.h"

#include <algorithm>
#include <cmath>

namespace ahg {
namespace {

// Z <- (1 - alpha) * Z0 + alpha * Ahat * Z, iterated.
Matrix Propagate(const SparseMatrix& adj, const Matrix& z0, int iterations,
                 double alpha) {
  Matrix z = z0;
  for (int it = 0; it < iterations; ++it) {
    Matrix az = adj.Spmm(z);
    for (int64_t i = 0; i < z.size(); ++i) {
      z.data()[i] = (1.0 - alpha) * z0.data()[i] + alpha * az.data()[i];
    }
  }
  return z;
}

Matrix OneHotLabels(const Graph& graph, const std::vector<int>& nodes) {
  Matrix y(graph.num_nodes(), graph.num_classes());
  for (int node : nodes) {
    const int label = graph.labels()[node];
    AHG_CHECK(label >= 0 && label < graph.num_classes());
    y(node, label) = 1.0;
  }
  return y;
}

void RenormalizeRows(Matrix* m) {
  for (int r = 0; r < m->rows(); ++r) {
    double* row = m->Row(r);
    double total = 0.0;
    for (int c = 0; c < m->cols(); ++c) {
      row[c] = std::max(row[c], 0.0);
      total += row[c];
    }
    if (total > 1e-12) {
      for (int c = 0; c < m->cols(); ++c) row[c] /= total;
    } else {
      for (int c = 0; c < m->cols(); ++c) {
        row[c] = 1.0 / m->cols();
      }
    }
  }
}

}  // namespace

Matrix CorrectAndSmooth(const Matrix& probs, const Graph& graph,
                        const std::vector<int>& train_nodes,
                        const CorrectSmoothConfig& config) {
  AHG_CHECK_EQ(probs.rows(), graph.num_nodes());
  AHG_CHECK_EQ(probs.cols(), graph.num_classes());
  const SparseMatrix& adj = graph.Adjacency(AdjacencyKind::kSymNorm);

  // Correct: propagate the training residual E = Y - P.
  Matrix residual(graph.num_nodes(), graph.num_classes());
  for (int node : train_nodes) {
    const int label = graph.labels()[node];
    for (int c = 0; c < graph.num_classes(); ++c) {
      residual(node, c) = (c == label ? 1.0 : 0.0) - probs(node, c);
    }
  }
  Matrix propagated = Propagate(adj, residual, config.correct_iterations,
                                config.correct_alpha);
  Matrix corrected = probs;
  corrected.AxpyInPlace(config.correct_scale, propagated);
  RenormalizeRows(&corrected);

  // Smooth: replace training rows by the true labels, then propagate.
  for (int node : train_nodes) {
    const int label = graph.labels()[node];
    for (int c = 0; c < graph.num_classes(); ++c) {
      corrected(node, c) = c == label ? 1.0 : 0.0;
    }
  }
  Matrix smoothed = Propagate(adj, corrected, config.smooth_iterations,
                              config.smooth_alpha);
  RenormalizeRows(&smoothed);
  return smoothed;
}

Matrix LabelPropagation(const Graph& graph,
                        const std::vector<int>& train_nodes, int iterations,
                        double alpha) {
  const SparseMatrix& adj = graph.Adjacency(AdjacencyKind::kSymNorm);
  Matrix seeded = OneHotLabels(graph, train_nodes);
  Matrix out = Propagate(adj, seeded, iterations, alpha);
  RenormalizeRows(&out);
  return out;
}

}  // namespace ahg
