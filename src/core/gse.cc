#include "core/gse.h"

#include "autodiff/ops.h"

namespace ahg {

GraphSelfEnsemble::GraphSelfEnsemble(const ModelConfig& base, int k,
                                     int in_dim, int num_classes,
                                     uint64_t seed_base, bool trainable_alpha)
    : base_(base), trainable_alpha_(trainable_alpha) {
  AHG_CHECK_GT(k, 0);
  base_.in_dim = in_dim;
  for (int i = 0; i < k; ++i) {
    Member member;
    ModelConfig cfg = base_;
    cfg.seed = seed_base + static_cast<uint64_t>(i);
    member.model = BuildModel(cfg);
    Rng head_rng(cfg.seed ^ 0x5ca1ab1eULL);
    member.head = std::make_unique<Linear>(member.model->params(),
                                           base_.hidden_dim, num_classes,
                                           /*bias=*/true, &head_rng);
    member.fixed_layer = base_.num_layers;
    if (trainable_alpha_) {
      // Registered in the model's own store would mingle w and alpha; alpha
      // lives as a free Var exposed through AlphaParams() instead.
      member.alpha_raw = MakeParam(Matrix(1, base_.num_layers));
    }
    members_.push_back(std::move(member));
  }
}

Var GraphSelfEnsemble::Probs(const GnnContext& ctx, const Var& x) {
  std::vector<Var> member_probs;
  member_probs.reserve(members_.size());
  for (Member& member : members_) {
    std::vector<Var> layers = member.model->LayerOutputs(ctx, x);
    AHG_CHECK_EQ(static_cast<int>(layers.size()), base_.num_layers);
    Var mixed;
    if (member.alpha_raw) {
      mixed = SoftmaxWeightedSum(layers, member.alpha_raw);
    } else {
      mixed = layers[member.fixed_layer - 1];
    }
    member_probs.push_back(RowSoftmaxOp(member.head->Apply(mixed)));
  }
  return MeanOfVars(member_probs);
}

std::vector<Var> GraphSelfEnsemble::WeightParams() const {
  std::vector<Var> params;
  for (const Member& member : members_) {
    const auto& model_params = member.model->params()->params();
    params.insert(params.end(), model_params.begin(), model_params.end());
  }
  return params;
}

std::vector<Var> GraphSelfEnsemble::AlphaParams() const {
  std::vector<Var> params;
  for (const Member& member : members_) {
    if (member.alpha_raw) params.push_back(member.alpha_raw);
  }
  return params;
}

std::vector<int> GraphSelfEnsemble::SelectedLayers() const {
  std::vector<int> layers;
  layers.reserve(members_.size());
  for (const Member& member : members_) {
    if (member.alpha_raw) {
      layers.push_back(member.alpha_raw->value.ArgMaxRow(0) + 1);
    } else {
      layers.push_back(member.fixed_layer);
    }
  }
  return layers;
}

void GraphSelfEnsemble::SetFixedLayers(const std::vector<int>& layers) {
  AHG_CHECK_EQ(layers.size(), members_.size());
  for (size_t i = 0; i < members_.size(); ++i) {
    AHG_CHECK(layers[i] >= 1 && layers[i] <= base_.num_layers);
    members_[i].fixed_layer = layers[i];
    members_[i].alpha_raw = nullptr;
  }
  trainable_alpha_ = false;
}

}  // namespace ahg
