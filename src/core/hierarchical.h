// Final-stage hierarchical ensemble: after search fixes the layer depths and
// ensemble weights, every sub-model is re-trained separately from scratch
// (paper Section III-C: "re-trained separately and aggregated in the way of
// the hierarchical ensemble") and predictions are combined as
//   Yhat = sum_j beta_j * (1/K) sum_k Yhat_{j,k}.
#ifndef AUTOHENS_CORE_HIERARCHICAL_H_
#define AUTOHENS_CORE_HIERARCHICAL_H_

#include <vector>

#include "graph/split.h"
#include "models/model_zoo.h"
#include "tasks/train_node.h"

namespace ahg {

struct HierarchicalResult {
  Matrix probs;  // combined full-graph probabilities
  double val_accuracy = 0.0;
  double test_accuracy = 0.0;
  double train_seconds = 0.0;
  // probs of each GSE (after the 1/K average), for diagnostics.
  std::vector<Matrix> per_model_probs;
};

// Trains pool[j] at depths layers[j][0..K-1] with per-member seeds derived
// from `seed`, averages each architecture's K members, then applies `beta`.
HierarchicalResult TrainHierarchicalEnsemble(
    const std::vector<CandidateSpec>& pool,
    const std::vector<std::vector<int>>& layers,
    const std::vector<double>& beta, const Graph& graph,
    const DataSplit& split, const TrainConfig& train_config, uint64_t seed);

// Convenience used by the robustness studies (Fig. 4): a single
// architecture's GSE with K differently-seeded members at depth
// `layers_per_member` (one entry per member).
HierarchicalResult TrainGse(const CandidateSpec& spec,
                            const std::vector<int>& layers_per_member,
                            const Graph& graph, const DataSplit& split,
                            const TrainConfig& train_config, uint64_t seed);

}  // namespace ahg

#endif  // AUTOHENS_CORE_HIERARCHICAL_H_
