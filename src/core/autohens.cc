#include "core/autohens.h"

#include "ensemble/baselines.h"
#include "metrics/metrics.h"
#include "obs/trace.h"
#include "util/stopwatch.h"

namespace ahg {

AutoHEnsResult RunAutoHEnsGnn(const Graph& graph, const DataSplit& split,
                              const std::vector<CandidateSpec>& candidates,
                              const AutoHEnsConfig& config) {
  AHG_TRACE_SPAN("pipeline/autohens");
  Stopwatch budget_watch;
  AutoHEnsResult result;

  // Stage 1: proxy evaluation -> pool of N architectures.
  std::vector<CandidateSpec> pool;
  if (!config.fixed_pool.empty()) {
    pool = config.fixed_pool;
  } else {
    Stopwatch watch;
    ProxyEvalResult ranking =
        ProxyEvaluate(candidates, graph, config.proxy, config.seed);
    pool = SelectTopCandidates(ranking, config.pool_size);
    result.selection_seconds = watch.ElapsedSeconds();
  }
  AHG_CHECK(!pool.empty());
  for (const auto& spec : pool) result.pool_names.push_back(spec.name);

  // Stage 2: architecture/ensemble-weight search on the base split.
  {
    AHG_TRACE_SPAN("pipeline/search");
    Stopwatch watch;
    if (config.algo == SearchAlgo::kGradient) {
      GradientSearchConfig gcfg = config.gradient;
      gcfg.k = config.k;
      gcfg.seed = config.seed ^ 0xa11ce5ULL;
      gcfg.train = config.train;
      GradientSearchResult search =
          SearchGradient(pool, graph, split, gcfg);
      result.layers = search.layers;
      result.beta = search.beta;
    } else {
      AdaptiveSearchConfig acfg = config.adaptive;
      acfg.k = config.k;
      acfg.seed = config.seed ^ 0xada9dULL;
      acfg.train = config.train;
      AdaptiveSearchResult search =
          SearchAdaptive(pool, graph, split, acfg);
      result.layers = search.layers;
      result.beta = search.beta;
    }
    result.search_seconds = watch.ElapsedSeconds();
  }

  // Stage 3: re-train from scratch and bag over train/val resplits
  // (Section III-B: "construct bagging of models trained on the different
  // splits of the dataset to reduce variance").
  {
    AHG_TRACE_SPAN("pipeline/retrain_bagging");
    Stopwatch watch;
    Rng resplit_rng(config.seed ^ 0xba99ULL);
    std::vector<Matrix> bagged;
    std::vector<double> val_accs;
    for (int round = 0; round < std::max(1, config.bagging_splits); ++round) {
      if (round > 0 && config.time_budget_seconds > 0.0 &&
          budget_watch.ElapsedSeconds() > config.time_budget_seconds) {
        break;  // shed remaining rounds to respect the budget
      }
      DataSplit round_split =
          round == 0 ? split
                     : ResplitTrainVal(split, config.val_fraction,
                                       &resplit_rng);
      HierarchicalResult trained = TrainHierarchicalEnsemble(
          pool, result.layers, result.beta, graph, round_split, config.train,
          config.seed + 7919 * static_cast<uint64_t>(round + 1));
      bagged.push_back(std::move(trained.probs));
      val_accs.push_back(trained.val_accuracy);
      ++result.bagging_rounds_run;
    }
    result.probs = AverageProbs(bagged);
    double total = 0.0;
    for (double v : val_accs) total += v;
    result.val_accuracy = total / static_cast<double>(val_accs.size());
    result.retrain_seconds = watch.ElapsedSeconds();
  }

  if (!split.test.empty()) {
    result.test_accuracy = Accuracy(result.probs, graph.labels(), split.test);
  }
  return result;
}

StatusOr<AutoHEnsResult> RunAutoHEnsGnnChecked(
    const Graph& graph, const DataSplit& split,
    const std::vector<CandidateSpec>& candidates,
    const AutoHEnsConfig& config) {
  if (graph.num_nodes() <= 0) {
    return Status::InvalidArgument("graph has no nodes");
  }
  if (graph.num_classes() <= 0) {
    return Status::InvalidArgument("graph has no classes");
  }
  if (candidates.empty() && config.fixed_pool.empty()) {
    return Status::InvalidArgument(
        "no candidate architectures (and no fixed pool)");
  }
  if (split.train.empty()) {
    return Status::InvalidArgument("split has no training nodes");
  }
  if (split.val.empty()) {
    return Status::InvalidArgument("split has no validation nodes");
  }
  for (const int node : split.train) {
    if (node < 0 || node >= graph.num_nodes()) {
      return Status::InvalidArgument("split train node out of range");
    }
  }
  for (const int node : split.val) {
    if (node < 0 || node >= graph.num_nodes()) {
      return Status::InvalidArgument("split val node out of range");
    }
  }
  for (const int node : split.test) {
    if (node < 0 || node >= graph.num_nodes()) {
      return Status::InvalidArgument("split test node out of range");
    }
  }
  if (config.pool_size <= 0) {
    return Status::InvalidArgument("pool_size must be positive");
  }
  if (config.k <= 0) {
    return Status::InvalidArgument("k must be positive");
  }
  if (config.val_fraction <= 0.0 || config.val_fraction >= 1.0) {
    return Status::InvalidArgument("val_fraction must be in (0, 1)");
  }
  if (config.time_budget_seconds < 0.0) {
    return Status::InvalidArgument("time_budget_seconds must be >= 0");
  }
  return RunAutoHEnsGnn(graph, split, candidates, config);
}

}  // namespace ahg
