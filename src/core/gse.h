// Graph self-ensemble (GSE), Section III-C1 of the paper: K copies of one
// architecture with different weight-init seeds, each predicting through a
// layer-aggregation vector alpha (Eqn 2), jointly averaged (Eqn 3).
//
// alpha has two modes:
//  * trainable (softmax-relaxed, Eqn 7) — used by AutoHEnsGNN_Gradient's
//    bi-level search, where alpha is an architecture parameter;
//  * fixed one-hot — used after search and by AutoHEnsGNN_Adaptive.
#ifndef AUTOHENS_CORE_GSE_H_
#define AUTOHENS_CORE_GSE_H_

#include <memory>
#include <vector>

#include "models/model.h"
#include "nn/linear.h"

namespace ahg {

class GraphSelfEnsemble {
 public:
  // Builds K members of the architecture described by `base` (whose
  // num_layers acts as the maximum depth L). Member i is initialized from
  // seed_base + i. When `trainable_alpha` is false every member starts at
  // the deepest layer; use SetFixedLayers to override.
  GraphSelfEnsemble(const ModelConfig& base, int k, int in_dim,
                    int num_classes, uint64_t seed_base, bool trainable_alpha);

  // Class probabilities (Eqn 3): mean over members of
  // softmax((sum_l alpha_l H^(l)) W).
  Var Probs(const GnnContext& ctx, const Var& x);

  // Model + head weights (the "w" of the bi-level problem).
  std::vector<Var> WeightParams() const;

  // The alpha architecture parameters (empty when alpha is fixed).
  std::vector<Var> AlphaParams() const;

  // 1-based layer choice per member: argmax alpha when trainable, the fixed
  // assignment otherwise.
  std::vector<int> SelectedLayers() const;

  // Pins each member to a one-hot layer (1-based; size K).
  void SetFixedLayers(const std::vector<int>& layers);

  int k() const { return static_cast<int>(members_.size()); }
  int max_layers() const { return base_.num_layers; }
  const ModelConfig& base_config() const { return base_; }

 private:
  struct Member {
    std::unique_ptr<GnnModel> model;
    std::unique_ptr<Linear> head;
    Var alpha_raw;    // 1 x L; null when alpha is fixed
    int fixed_layer;  // 1-based; used when alpha_raw is null
  };

  ModelConfig base_;
  bool trainable_alpha_;
  std::vector<Member> members_;
};

}  // namespace ahg

#endif  // AUTOHENS_CORE_GSE_H_
