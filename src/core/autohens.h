// End-to-end AutoHEnsGNN driver (Fig. 1 of the paper): proxy evaluation
// selects a pool of N promising architectures, a search algorithm fixes the
// hierarchical ensemble's configuration (alpha layer choices, beta weights),
// every sub-model is re-trained from scratch, and predictions are bagged
// over independent train/validation resplits. The whole pipeline is
// deterministic given the seed and honours an optional wall-clock budget
// (the KDD Cup constraint) by shedding bagging rounds.
#ifndef AUTOHENS_CORE_AUTOHENS_H_
#define AUTOHENS_CORE_AUTOHENS_H_

#include <string>
#include <vector>

#include "core/hierarchical.h"
#include "core/proxy_eval.h"
#include "core/search_adaptive.h"
#include "core/search_gradient.h"
#include "util/status.h"

namespace ahg {

enum class SearchAlgo { kGradient = 0, kAdaptive };

struct AutoHEnsConfig {
  int pool_size = 3;  // N
  int k = 3;          // K sub-models per GSE
  SearchAlgo algo = SearchAlgo::kGradient;
  ProxyConfig proxy;
  GradientSearchConfig gradient;
  AdaptiveSearchConfig adaptive;
  TrainConfig train;       // final re-training settings
  int bagging_splits = 2;  // outer bagging over train/val resplits
  double val_fraction = 0.2;
  // 0 = unlimited. When a deadline is set, remaining bagging rounds are
  // skipped once the budget is exceeded (at least one always runs).
  double time_budget_seconds = 0.0;
  uint64_t seed = 1;
  // Provide to skip proxy evaluation and use this pool directly.
  std::vector<CandidateSpec> fixed_pool;
};

struct AutoHEnsResult {
  Matrix probs;
  double val_accuracy = 0.0;  // mean over bagging rounds
  double test_accuracy = 0.0;
  std::vector<std::string> pool_names;
  std::vector<std::vector<int>> layers;
  std::vector<double> beta;
  // Stage timings (Table VI columns).
  double selection_seconds = 0.0;
  double search_seconds = 0.0;
  double retrain_seconds = 0.0;
  int bagging_rounds_run = 0;
};

// Runs the full pipeline on `graph` with the given base split. The split's
// test set is only used for final reporting, never for selection or search.
AutoHEnsResult RunAutoHEnsGnn(const Graph& graph, const DataSplit& split,
                              const std::vector<CandidateSpec>& candidates,
                              const AutoHEnsConfig& config);

// Validating wrapper for callers that must not crash on malformed input
// (CLIs, the job service): rejects empty graphs, empty candidate sets,
// unusable splits, and nonsensical configs with InvalidArgument instead of
// tripping an AHG_CHECK. The happy path delegates to RunAutoHEnsGnn and is
// bitwise identical to it.
StatusOr<AutoHEnsResult> RunAutoHEnsGnnChecked(
    const Graph& graph, const DataSplit& split,
    const std::vector<CandidateSpec>& candidates,
    const AutoHEnsConfig& config);

}  // namespace ahg

#endif  // AUTOHENS_CORE_AUTOHENS_H_
