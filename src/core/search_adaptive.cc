#include "core/search_adaptive.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "obs/trace.h"
#include "util/stopwatch.h"

namespace ahg {

std::vector<double> AdaptiveBeta(const std::vector<double>& val_accuracies,
                                 double avg_degree, double epsilon,
                                 double gamma, double lambda) {
  const int n = static_cast<int>(val_accuracies.size());
  if (n == 0) return {};  // empty pool -> empty weights, not a crash
  // Min-max normalize accuracies so the softmax sees a [0, 1] spread
  // ("normalized validation accuracy" in Eqn 8).
  const double lo =
      *std::min_element(val_accuracies.begin(), val_accuracies.end());
  const double hi =
      *std::max_element(val_accuracies.begin(), val_accuracies.end());
  std::vector<double> acc(n, 0.0);
  if (hi > lo) {
    for (int i = 0; i < n; ++i) acc[i] = (val_accuracies[i] - lo) / (hi - lo);
  }
  const double density_term =
      1.0 + std::min(epsilon, 1.0 + std::log(avg_degree + 1.0));
  const double tau = 1.0 + std::pow(density_term, lambda) / gamma;
  double max_z = -1e300;
  for (int i = 0; i < n; ++i) max_z = std::max(max_z, acc[i] / tau);
  std::vector<double> beta(n);
  double total = 0.0;
  for (int i = 0; i < n; ++i) {
    beta[i] = std::exp(acc[i] / tau - max_z);
    total += beta[i];
  }
  for (auto& b : beta) b /= total;
  return beta;
}

AdaptiveSearchResult SearchAdaptive(const std::vector<CandidateSpec>& pool,
                                    const Graph& graph,
                                    const DataSplit& split,
                                    const AdaptiveSearchConfig& config) {
  AHG_CHECK(!pool.empty());
  AHG_TRACE_SPAN_ARG("search/adaptive", static_cast<int64_t>(pool.size()));
  Stopwatch watch;
  AdaptiveSearchResult result;
  for (size_t j = 0; j < pool.size(); ++j) {
    const ModelConfig& base = pool[j].config;
    // Grid search over depth: probe-train the model at every depth
    // 1..L and rank depths by validation accuracy.
    std::vector<std::pair<double, int>> acc_by_depth;  // (val acc, depth)
    for (int depth = 1; depth <= base.num_layers; ++depth) {
      const auto key = std::make_pair(static_cast<int>(j), depth);
      if (auto it = config.precomputed_probes.find(key);
          it != config.precomputed_probes.end()) {
        acc_by_depth.push_back({it->second, depth});
        continue;
      }
      if (IsCancelled(config.cancel)) {
        result.interrupted = true;
        return result;
      }
      ModelConfig mcfg = base;
      mcfg.num_layers = depth;
      mcfg.seed = config.seed + static_cast<uint64_t>(j) * 97 + depth;
      TrainConfig tcfg = config.train;
      tcfg.seed = mcfg.seed ^ 0xbeefULL;
      tcfg.cancel = config.cancel;
      NodeTrainResult probe =
          TrainSingleNodeModel(mcfg, graph, split, tcfg);
      // Mid-probe cancels leave a partial training behind — discard it so a
      // resumed run retrains this probe from scratch (deterministically).
      if (IsCancelled(config.cancel)) {
        result.interrupted = true;
        return result;
      }
      if (config.on_probe_done) {
        config.on_probe_done(static_cast<int>(j), depth, probe.val_accuracy);
      }
      acc_by_depth.push_back({probe.val_accuracy, depth});
    }
    std::stable_sort(acc_by_depth.begin(), acc_by_depth.end(),
                     [](const auto& a, const auto& b) {
                       return a.first > b.first;
                     });
    // Members take the top-ranked depths cyclically, so K > #depths still
    // yields a diverse assignment.
    std::vector<int> member_layers;
    for (int i = 0; i < config.k; ++i) {
      member_layers.push_back(
          acc_by_depth[i % acc_by_depth.size()].second);
    }
    result.layers.push_back(std::move(member_layers));
    result.val_accuracies.push_back(acc_by_depth.front().first);
  }
  result.beta = AdaptiveBeta(result.val_accuracies, graph.AverageDegree(),
                             config.epsilon, config.gamma, config.lambda);
  result.search_seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace ahg
