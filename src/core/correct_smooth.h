// Correct & Smooth post-processing (Huang et al., 2021), the "C&S" trick of
// the paper's Table V: after any base predictor produces class
// probabilities, (1) propagate the residual error on the training nodes to
// correct nearby predictions, then (2) smooth the corrected predictions
// with label propagation seeded by the true training labels. Both phases
// iterate Z <- (1 - w) Z0 + w * Ahat Z on the symmetric-normalized
// adjacency; no gradients involved.
#ifndef AUTOHENS_CORE_CORRECT_SMOOTH_H_
#define AUTOHENS_CORE_CORRECT_SMOOTH_H_

#include <vector>

#include "graph/graph.h"
#include "graph/split.h"

namespace ahg {

struct CorrectSmoothConfig {
  int correct_iterations = 20;
  double correct_alpha = 0.6;  // residual-propagation mixing weight
  // Scales the propagated residual before adding it back ("autoscale" off).
  double correct_scale = 1.0;
  int smooth_iterations = 20;
  double smooth_alpha = 0.6;
};

// Returns post-processed probabilities (rows re-normalized to the simplex).
// `probs` is the base model's n x C output; training labels/nodes come from
// `graph`/`split.train`.
Matrix CorrectAndSmooth(const Matrix& probs, const Graph& graph,
                        const std::vector<int>& train_nodes,
                        const CorrectSmoothConfig& config);

// Pure label propagation from the training labels (the "smooth" phase run
// from a zero prior): a classic graph baseline in its own right.
Matrix LabelPropagation(const Graph& graph,
                        const std::vector<int>& train_nodes, int iterations,
                        double alpha);

}  // namespace ahg

#endif  // AUTOHENS_CORE_CORRECT_SMOOTH_H_
