// AutoHEnsGNN_Adaptive (Section III-C3): each self-ensemble is optimized in
// isolation (no co-training), layer depths come from a per-architecture grid
// search over probe trainings, and the ensemble weights follow the adaptive
// temperature rule of Eqn 8:
//   beta = softmax(acc / tau),
//   tau  = 1 + (1 + min(eps, 1 + log(#edges/#nodes + 1)))^lambda / gamma.
#ifndef AUTOHENS_CORE_SEARCH_ADAPTIVE_H_
#define AUTOHENS_CORE_SEARCH_ADAPTIVE_H_

#include <vector>

#include "graph/split.h"
#include "models/model_zoo.h"
#include "tasks/train_node.h"

namespace ahg {

struct AdaptiveSearchConfig {
  int k = 3;
  // Eqn 8 hyper-parameters (paper appendix A2 defaults).
  double epsilon = 3.0;
  double gamma = 8000.0;
  double lambda = 5.0;
  TrainConfig train;  // probe-training settings
  uint64_t seed = 1;
};

struct AdaptiveSearchResult {
  std::vector<std::vector<int>> layers;  // [pool][k], 1-based depths
  std::vector<double> beta;
  std::vector<double> val_accuracies;  // per pool model (best probe depth)
  double search_seconds = 0.0;
};

AdaptiveSearchResult SearchAdaptive(const std::vector<CandidateSpec>& pool,
                                    const Graph& graph,
                                    const DataSplit& split,
                                    const AdaptiveSearchConfig& config);

// Exposed separately for the Fig. 7 hyper-parameter sweep: computes the
// Eqn 8 weights from validation accuracies and the graph's average degree.
std::vector<double> AdaptiveBeta(const std::vector<double>& val_accuracies,
                                 double avg_degree, double epsilon,
                                 double gamma, double lambda);

}  // namespace ahg

#endif  // AUTOHENS_CORE_SEARCH_ADAPTIVE_H_
