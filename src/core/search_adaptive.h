// AutoHEnsGNN_Adaptive (Section III-C3): each self-ensemble is optimized in
// isolation (no co-training), layer depths come from a per-architecture grid
// search over probe trainings, and the ensemble weights follow the adaptive
// temperature rule of Eqn 8:
//   beta = softmax(acc / tau),
//   tau  = 1 + (1 + min(eps, 1 + log(#edges/#nodes + 1)))^lambda / gamma.
#ifndef AUTOHENS_CORE_SEARCH_ADAPTIVE_H_
#define AUTOHENS_CORE_SEARCH_ADAPTIVE_H_

#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "graph/split.h"
#include "models/model_zoo.h"
#include "tasks/train_node.h"
#include "util/cancel.h"

namespace ahg {

struct AdaptiveSearchConfig {
  int k = 3;
  // Eqn 8 hyper-parameters (paper appendix A2 defaults).
  double epsilon = 3.0;
  double gamma = 8000.0;
  double lambda = 5.0;
  TrainConfig train;  // probe-training settings
  uint64_t seed = 1;
  // Cooperative cancellation, polled before every probe training (and at
  // epoch boundaries inside each probe through TrainConfig). On cancel the
  // result carries `interrupted = true` and no beta/layers.
  const CancelToken* cancel = nullptr;
  // Called after each probe training with its validation accuracy; the job
  // layer persists these so an interrupted search resumes without retraining.
  std::function<void(int pool_index, int depth, double val_accuracy)>
      on_probe_done;
  // Resume support: validation accuracies of probes already trained by an
  // earlier (interrupted) run, keyed by (pool index, depth). Probes found
  // here are not retrained; every probe is independently seeded, so mixing
  // stored and fresh probe accuracies reproduces the uninterrupted search.
  std::map<std::pair<int, int>, double> precomputed_probes;
};

struct AdaptiveSearchResult {
  std::vector<std::vector<int>> layers;  // [pool][k], 1-based depths
  std::vector<double> beta;
  std::vector<double> val_accuracies;  // per pool model (best probe depth)
  double search_seconds = 0.0;
  // True when cancellation stopped the search before all probes ran; the
  // per-pool outputs above are then incomplete and must not be used.
  bool interrupted = false;
};

AdaptiveSearchResult SearchAdaptive(const std::vector<CandidateSpec>& pool,
                                    const Graph& graph,
                                    const DataSplit& split,
                                    const AdaptiveSearchConfig& config);

// Exposed separately for the Fig. 7 hyper-parameter sweep: computes the
// Eqn 8 weights from validation accuracies and the graph's average degree.
std::vector<double> AdaptiveBeta(const std::vector<double>& val_accuracies,
                                 double avg_degree, double epsilon,
                                 double gamma, double lambda);

}  // namespace ahg

#endif  // AUTOHENS_CORE_SEARCH_ADAPTIVE_H_
