// Random neural-architecture search over the zoo's configuration space —
// the paper's stated future-work extension ("one can first apply NAS to
// search novel architectures and then add them to the candidate pool for
// the ensemble", Section II-B). Sampled mutations of the base candidates
// are ranked by the same proxy evaluation as the fixed zoo, and the best
// novel configurations are returned for pool injection.
#ifndef AUTOHENS_CORE_NAS_RANDOM_H_
#define AUTOHENS_CORE_NAS_RANDOM_H_

#include <vector>

#include "core/proxy_eval.h"
#include "models/model_zoo.h"

namespace ahg {

struct NasSearchConfig {
  int num_samples = 12;  // random mutations to evaluate
  int top_to_keep = 2;   // winners returned for pool injection
  ProxyConfig proxy;     // how samples are scored (proxy evaluation)
  uint64_t seed = 1;
};

// Samples `num_samples` random mutations (family, depth, hidden width,
// dropout, heads, teleport/alpha knobs) seeded from `base`, proxy-evaluates
// them on `graph`, and returns the `top_to_keep` best as fresh
// CandidateSpecs named "NAS-<k>".
std::vector<CandidateSpec> RandomArchitectureSearch(
    const Graph& graph, const std::vector<CandidateSpec>& base,
    const NasSearchConfig& config);

}  // namespace ahg

#endif  // AUTOHENS_CORE_NAS_RANDOM_H_
