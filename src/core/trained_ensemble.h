// A persistent, inference-ready hierarchical ensemble. Unlike
// TrainHierarchicalEnsemble (which only returns transductive predictions),
// TrainedEnsemble keeps every member's weights, so the ensemble can
//   * predict on a DIFFERENT graph than it was trained on (our zoo models
//     are inductive: weights are independent of graph size), e.g. train on
//     a proxy subgraph and predict on the full graph, and
//   * be saved to / loaded from disk (one AHGM file per member plus a
//     manifest), the deployment artifact a competition submission ships.
#ifndef AUTOHENS_CORE_TRAINED_ENSEMBLE_H_
#define AUTOHENS_CORE_TRAINED_ENSEMBLE_H_

#include <string>
#include <vector>

#include "graph/split.h"
#include "models/model_zoo.h"
#include "tasks/train_node.h"
#include "util/status.h"

namespace ahg {

// One fully resolved member-training unit of a hierarchical ensemble: model
// config (depth + weight seed applied) and train config (dropout seed
// applied). Members are seeded independently of each other, so they can be
// trained one at a time, in any order, with identical results — the unit of
// per-member checkpointing in the job service.
struct MemberSpec {
  ModelConfig config;
  TrainConfig train;
  int pool_index = 0;
  int num_classes = 0;
};

class TrainedEnsemble {
 public:
  TrainedEnsemble() = default;

  // Trains pool[j] members at depths layers[j][k] (same protocol as
  // TrainHierarchicalEnsemble) but retains the best-validation weights of
  // every member. Equivalent to PlanMembers + TrainMember over every spec +
  // FromParts.
  static TrainedEnsemble Train(const std::vector<CandidateSpec>& pool,
                               const std::vector<std::vector<int>>& layers,
                               const std::vector<double>& beta,
                               const Graph& graph, const DataSplit& split,
                               const TrainConfig& train_config,
                               uint64_t seed);

  // Resolves the full member list Train() would process, without training.
  static std::vector<MemberSpec> PlanMembers(
      const std::vector<CandidateSpec>& pool,
      const std::vector<std::vector<int>>& layers, const Graph& graph,
      const TrainConfig& train_config, uint64_t seed);

  // Trains a single planned member and returns its best-validation weight
  // snapshot (model weights followed by the classifier head). Honors
  // spec.train.cancel at epoch boundaries; a cancelled training returns a
  // partial snapshot the caller must discard.
  static std::vector<Matrix> TrainMember(const MemberSpec& spec,
                                         const Graph& graph,
                                         const DataSplit& split);

  // Reassembles an ensemble from planned specs and their trained snapshots
  // (parallel arrays) — the resume path after per-member checkpointing.
  static TrainedEnsemble FromParts(const std::vector<MemberSpec>& specs,
                                   std::vector<std::vector<Matrix>> params,
                                   const std::vector<double>& beta);

  // Full-graph class probabilities on an arbitrary graph with the same
  // feature dimensionality and class count.
  Matrix PredictProba(const Graph& graph) const;

  // Serializes to `dir`: manifest.tsv (member file, architecture beta) plus
  // one .ahgm per member.
  Status Save(const std::string& dir) const;
  static StatusOr<TrainedEnsemble> Load(const std::string& dir);

  int num_members() const { return static_cast<int>(members_.size()); }
  const std::vector<double>& beta() const { return beta_; }

  // Lead member for single-model serving: the first (k = 0) member of the
  // architecture with the largest beta weight, lowest pool index on ties.
  int LeadMemberIndex() const;
  const ModelConfig& member_config(int i) const { return members_[i].config; }
  const std::vector<Matrix>& member_params(int i) const {
    return members_[i].params;
  }
  int member_num_classes(int i) const { return members_[i].num_classes; }

 private:
  struct Member {
    ModelConfig config;          // includes depth + seed
    std::vector<Matrix> params;  // model weights + classifier head (last 2)
    int pool_index = 0;          // which architecture this member belongs to
    int num_classes = 0;
  };

  std::vector<Member> members_;
  std::vector<double> beta_;  // one weight per architecture (pool index)
};

}  // namespace ahg

#endif  // AUTOHENS_CORE_TRAINED_ENSEMBLE_H_
