// A persistent, inference-ready hierarchical ensemble. Unlike
// TrainHierarchicalEnsemble (which only returns transductive predictions),
// TrainedEnsemble keeps every member's weights, so the ensemble can
//   * predict on a DIFFERENT graph than it was trained on (our zoo models
//     are inductive: weights are independent of graph size), e.g. train on
//     a proxy subgraph and predict on the full graph, and
//   * be saved to / loaded from disk (one AHGM file per member plus a
//     manifest), the deployment artifact a competition submission ships.
#ifndef AUTOHENS_CORE_TRAINED_ENSEMBLE_H_
#define AUTOHENS_CORE_TRAINED_ENSEMBLE_H_

#include <string>
#include <vector>

#include "graph/split.h"
#include "models/model_zoo.h"
#include "tasks/train_node.h"
#include "util/status.h"

namespace ahg {

class TrainedEnsemble {
 public:
  TrainedEnsemble() = default;

  // Trains pool[j] members at depths layers[j][k] (same protocol as
  // TrainHierarchicalEnsemble) but retains the best-validation weights of
  // every member.
  static TrainedEnsemble Train(const std::vector<CandidateSpec>& pool,
                               const std::vector<std::vector<int>>& layers,
                               const std::vector<double>& beta,
                               const Graph& graph, const DataSplit& split,
                               const TrainConfig& train_config,
                               uint64_t seed);

  // Full-graph class probabilities on an arbitrary graph with the same
  // feature dimensionality and class count.
  Matrix PredictProba(const Graph& graph) const;

  // Serializes to `dir`: manifest.tsv (member file, architecture beta) plus
  // one .ahgm per member.
  Status Save(const std::string& dir) const;
  static StatusOr<TrainedEnsemble> Load(const std::string& dir);

  int num_members() const { return static_cast<int>(members_.size()); }
  const std::vector<double>& beta() const { return beta_; }

 private:
  struct Member {
    ModelConfig config;          // includes depth + seed
    std::vector<Matrix> params;  // model weights + classifier head (last 2)
    int pool_index = 0;          // which architecture this member belongs to
    int num_classes = 0;
  };

  std::vector<Member> members_;
  std::vector<double> beta_;  // one weight per architecture (pool index)
};

}  // namespace ahg

#endif  // AUTOHENS_CORE_TRAINED_ENSEMBLE_H_
