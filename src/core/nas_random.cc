#include "core/nas_random.h"

#include <algorithm>

#include "util/string_util.h"

namespace ahg {
namespace {

// All families the mutation operator may jump to.
constexpr ModelFamily kFamilies[] = {
    ModelFamily::kGcn,    ModelFamily::kSageMean, ModelFamily::kSagePool,
    ModelFamily::kGat,    ModelFamily::kSgc,      ModelFamily::kTagcn,
    ModelFamily::kAppnp,  ModelFamily::kGin,      ModelFamily::kGcnii,
    ModelFamily::kJkMax,  ModelFamily::kDnaHighway,
    ModelFamily::kMixHop, ModelFamily::kDagnn,    ModelFamily::kCheb,
    ModelFamily::kGatedGnn};

template <typename T>
T Choice(const std::vector<T>& options, Rng* rng) {
  return options[rng->UniformInt(static_cast<int64_t>(options.size()))];
}

ModelConfig Mutate(const ModelConfig& base, Rng* rng) {
  ModelConfig cfg = base;
  // Jump family with probability 1/2, otherwise stay and perturb knobs.
  if (rng->Bernoulli(0.5)) {
    cfg.family = kFamilies[rng->UniformInt(std::size(kFamilies))];
  }
  cfg.num_layers = Choice<int>({1, 2, 3, 4, 6, 8}, rng);
  cfg.hidden_dim = Choice<int>({16, 24, 32, 48}, rng);
  cfg.dropout = Choice<double>({0.1, 0.25, 0.5}, rng);
  cfg.heads = Choice<int>({1, 2, 4}, rng);
  cfg.teleport = Choice<double>({0.05, 0.1, 0.2}, rng);
  cfg.gcnii_alpha = Choice<double>({0.1, 0.2}, rng);
  cfg.poly_order = Choice<int>({2, 3, 4}, rng);
  return cfg;
}

}  // namespace

std::vector<CandidateSpec> RandomArchitectureSearch(
    const Graph& graph, const std::vector<CandidateSpec>& base,
    const NasSearchConfig& config) {
  AHG_CHECK(!base.empty());
  AHG_CHECK_GT(config.num_samples, 0);
  Rng rng(config.seed);
  std::vector<CandidateSpec> samples;
  samples.reserve(config.num_samples);
  for (int i = 0; i < config.num_samples; ++i) {
    const CandidateSpec& parent =
        base[rng.UniformInt(static_cast<int64_t>(base.size()))];
    CandidateSpec sample;
    sample.name = StrFormat("NAS-%d", i);
    sample.config = Mutate(parent.config, &rng);
    samples.push_back(std::move(sample));
  }

  ProxyEvalResult ranking =
      ProxyEvaluate(samples, graph, config.proxy, config.seed ^ 0xa5ULL);
  std::vector<CandidateSpec> winners = SelectTopCandidates(
      ranking, std::min(config.top_to_keep, config.num_samples));
  return winners;
}

}  // namespace ahg
