#include "io/autograph_format.h"

#include <sys/stat.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <unordered_set>

#include "util/string_util.h"

namespace ahg {
namespace {

Status EnsureDirectory(const std::string& dir) {
  if (mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IOError("cannot create directory " + dir + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

Status OpenForWrite(const std::string& path, std::ofstream* out) {
  out->open(path);
  if (!out->is_open()) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  return Status::OK();
}

Status OpenForRead(const std::string& path, std::ifstream* in) {
  in->open(path);
  if (!in->is_open()) {
    return Status::NotFound("cannot open " + path);
  }
  return Status::OK();
}

StatusOr<std::vector<int>> ReadIndexFile(const std::string& path) {
  std::ifstream in;
  Status s = OpenForRead(path, &in);
  if (!s.ok()) return s;
  std::vector<int> indices;
  std::string line;
  while (std::getline(in, line)) {
    line = StrTrim(line);
    if (line.empty()) continue;
    indices.push_back(std::stoi(line));
  }
  return indices;
}

}  // namespace

Status WriteAutographDataset(const std::string& dir, const Graph& graph,
                             const std::vector<int>& train_nodes,
                             const std::vector<int>& test_nodes,
                             double time_budget_seconds) {
  Status s = EnsureDirectory(dir);
  if (!s.ok()) return s;

  {
    std::ofstream out;
    if (s = OpenForWrite(dir + "/train_node_id.txt", &out); !s.ok()) return s;
    for (int node : train_nodes) out << node << "\n";
  }
  {
    std::ofstream out;
    if (s = OpenForWrite(dir + "/test_node_id.txt", &out); !s.ok()) return s;
    for (int node : test_nodes) out << node << "\n";
  }
  {
    std::ofstream out;
    if (s = OpenForWrite(dir + "/edge.tsv", &out); !s.ok()) return s;
    for (const Edge& e : graph.edges()) {
      out << e.src << "\t" << e.dst << "\t" << e.weight << "\n";
    }
  }
  {
    std::ofstream out;
    if (s = OpenForWrite(dir + "/feature.tsv", &out); !s.ok()) return s;
    for (int i = 0; i < graph.num_nodes(); ++i) {
      out << i;
      for (int c = 0; c < graph.feature_dim(); ++c) {
        out << "\t" << graph.features()(i, c);
      }
      out << "\n";
    }
  }
  {
    std::unordered_set<int> test_set(test_nodes.begin(), test_nodes.end());
    std::ofstream out;
    if (s = OpenForWrite(dir + "/train_label.tsv", &out); !s.ok()) return s;
    for (int node : train_nodes) {
      if (test_set.count(node) > 0) continue;
      const int label = graph.labels()[node];
      if (label >= 0) out << node << "\t" << label << "\n";
    }
  }
  {
    std::ofstream out;
    if (s = OpenForWrite(dir + "/config.yml", &out); !s.ok()) return s;
    out << "time_budget: " << time_budget_seconds << "\n";
    out << "n_class: " << graph.num_classes() << "\n";
    out << "directed: " << (graph.directed() ? 1 : 0) << "\n";
  }
  return Status::OK();
}

StatusOr<AutographDataset> ReadAutographDataset(const std::string& dir) {
  AutographDataset ds;

  auto train = ReadIndexFile(dir + "/train_node_id.txt");
  if (!train.ok()) return train.status();
  ds.train_nodes = std::move(train.value());
  auto test = ReadIndexFile(dir + "/test_node_id.txt");
  if (!test.ok()) return test.status();
  ds.test_nodes = std::move(test.value());

  int n_class = 0;
  {
    std::ifstream in;
    Status s = OpenForRead(dir + "/config.yml", &in);
    if (!s.ok()) return s;
    std::string line;
    while (std::getline(in, line)) {
      const auto parts = StrSplit(line, ':');
      if (parts.size() != 2) continue;
      const std::string key = StrTrim(parts[0]);
      const std::string value = StrTrim(parts[1]);
      if (key == "time_budget") ds.time_budget_seconds = std::stod(value);
      if (key == "n_class") n_class = std::stoi(value);
      if (key == "directed") ds.directed = std::stoi(value) != 0;
    }
    if (n_class <= 0) {
      return Status::InvalidArgument("config.yml missing n_class");
    }
  }

  // Features determine the node count.
  std::vector<std::vector<double>> feature_rows;
  {
    std::ifstream in;
    Status s = OpenForRead(dir + "/feature.tsv", &in);
    if (!s.ok()) return s;
    std::string line;
    while (std::getline(in, line)) {
      if (StrTrim(line).empty()) continue;
      const auto parts = StrSplit(line, '\t');
      if (parts.size() < 2) {
        return Status::InvalidArgument("malformed feature row: " + line);
      }
      const int idx = std::stoi(parts[0]);
      if (idx != static_cast<int>(feature_rows.size())) {
        return Status::InvalidArgument(
            "feature.tsv rows must be dense and ordered");
      }
      std::vector<double> row;
      row.reserve(parts.size() - 1);
      for (size_t i = 1; i < parts.size(); ++i) {
        row.push_back(std::stod(parts[i]));
      }
      feature_rows.push_back(std::move(row));
    }
    if (feature_rows.empty()) {
      return Status::InvalidArgument("feature.tsv is empty");
    }
  }
  const int n = static_cast<int>(feature_rows.size());

  std::vector<Edge> edges;
  {
    std::ifstream in;
    Status s = OpenForRead(dir + "/edge.tsv", &in);
    if (!s.ok()) return s;
    std::string line;
    while (std::getline(in, line)) {
      if (StrTrim(line).empty()) continue;
      const auto parts = StrSplit(line, '\t');
      if (parts.size() != 3) {
        return Status::InvalidArgument("malformed edge row: " + line);
      }
      Edge e;
      e.src = std::stoi(parts[0]);
      e.dst = std::stoi(parts[1]);
      e.weight = std::stod(parts[2]);
      if (e.src < 0 || e.src >= n || e.dst < 0 || e.dst >= n) {
        return Status::InvalidArgument("edge endpoint out of range: " + line);
      }
      edges.push_back(e);
    }
  }

  std::vector<int> labels(n, -1);
  {
    std::ifstream in;
    Status s = OpenForRead(dir + "/train_label.tsv", &in);
    if (!s.ok()) return s;
    std::string line;
    while (std::getline(in, line)) {
      if (StrTrim(line).empty()) continue;
      const auto parts = StrSplit(line, '\t');
      if (parts.size() != 2) {
        return Status::InvalidArgument("malformed label row: " + line);
      }
      const int node = std::stoi(parts[0]);
      const int label = std::stoi(parts[1]);
      if (node < 0 || node >= n || label < 0 || label >= n_class) {
        return Status::InvalidArgument("label row out of range: " + line);
      }
      labels[node] = label;
    }
  }

  StatusOr<Graph> graph =
      Graph::CreateChecked(n, std::move(edges), ds.directed,
                           Matrix::FromRows(feature_rows), std::move(labels),
                           n_class);
  if (!graph.ok()) return graph.status();
  ds.graph = std::move(graph).value();
  return ds;
}

}  // namespace ahg
