// Binary persistence for trained models: the architecture configuration
// plus a parameter snapshot (the Matrices from ParameterStore::Snapshot),
// so a search result or competition submission can be re-materialized
// without retraining.
//
// Format (little-endian): magic "AHGM", u32 version, the ModelConfig
// fields, u32 tensor count, then per tensor: u32 rows, u32 cols, doubles.
#ifndef AUTOHENS_IO_MODEL_STORE_H_
#define AUTOHENS_IO_MODEL_STORE_H_

#include <string>
#include <vector>

#include "models/model.h"
#include "util/status.h"

namespace ahg {

struct SavedModel {
  ModelConfig config;
  std::vector<Matrix> params;
};

// Writes `config` + `params` to `path` (overwrites).
Status SaveModel(const std::string& path, const ModelConfig& config,
                 const std::vector<Matrix>& params);

// Reads a model saved by SaveModel; validates magic/version and tensor
// framing. Untrusted input is safe: dimensions are hard-capped, rows*cols is
// computed overflow-free, and claimed payloads are checked against the bytes
// remaining in the file, so corruption yields InvalidArgument rather than an
// oversized allocation.
StatusOr<SavedModel> LoadModel(const std::string& path);

}  // namespace ahg

#endif  // AUTOHENS_IO_MODEL_STORE_H_
