#include "io/model_store.h"

#include <cstdint>
#include <cstring>
#include <fstream>

namespace ahg {
namespace {

constexpr char kMagic[4] = {'A', 'H', 'G', 'M'};
constexpr uint32_t kVersion = 1;

// Hard caps on untrusted tensor framing. A corrupt or malicious header must
// fail with InvalidArgument before any allocation is attempted, never with a
// multi-gigabyte bad_alloc: dimensions are bounded individually, the
// rows*cols product is bounded in 64-bit arithmetic (so the multiply itself
// cannot overflow), and the claimed payload is checked against the bytes
// actually remaining in the file.
constexpr uint64_t kMaxTensorDim = 1u << 27;        // 134M rows or cols
constexpr uint64_t kMaxTensorElements = 1u << 28;   // 2 GiB of doubles
constexpr uint32_t kMaxTensorCount = 100000;

void WriteU32(std::ofstream& out, uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void WriteU64(std::ofstream& out, uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void WriteF64(std::ofstream& out, double v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool ReadU32(std::ifstream& in, uint32_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return in.good();
}

bool ReadU64(std::ifstream& in, uint64_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return in.good();
}

bool ReadF64(std::ifstream& in, double* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return in.good();
}

}  // namespace

Status SaveModel(const std::string& path, const ModelConfig& config,
                 const std::vector<Matrix>& params) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  out.write(kMagic, sizeof(kMagic));
  WriteU32(out, kVersion);
  WriteU32(out, static_cast<uint32_t>(config.family));
  WriteU32(out, static_cast<uint32_t>(config.in_dim));
  WriteU32(out, static_cast<uint32_t>(config.hidden_dim));
  WriteU32(out, static_cast<uint32_t>(config.num_layers));
  WriteF64(out, config.dropout);
  WriteU32(out, static_cast<uint32_t>(config.heads));
  WriteF64(out, config.attention_slope);
  WriteF64(out, config.teleport);
  WriteF64(out, config.gcnii_alpha);
  WriteF64(out, config.gcnii_lambda);
  WriteU32(out, static_cast<uint32_t>(config.poly_order));
  WriteU64(out, config.seed);
  WriteU32(out, static_cast<uint32_t>(params.size()));
  for (const Matrix& m : params) {
    WriteU32(out, static_cast<uint32_t>(m.rows()));
    WriteU32(out, static_cast<uint32_t>(m.cols()));
    out.write(reinterpret_cast<const char*>(m.data()),
              static_cast<std::streamsize>(m.size() * sizeof(double)));
  }
  if (!out.good()) return Status::IOError("short write to " + path);
  return Status::OK();
}

StatusOr<SavedModel> LoadModel(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::NotFound("cannot open " + path);
  in.seekg(0, std::ios::end);
  const uint64_t file_size = static_cast<uint64_t>(in.tellg());
  in.seekg(0, std::ios::beg);
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in.good() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument(path + " is not an AHGM model file");
  }
  uint32_t version = 0;
  if (!ReadU32(in, &version) || version != kVersion) {
    return Status::InvalidArgument("unsupported model file version");
  }
  SavedModel model;
  uint32_t family = 0, in_dim = 0, hidden = 0, layers = 0, heads = 0,
           poly = 0, count = 0;
  uint64_t seed = 0;
  if (!ReadU32(in, &family) || !ReadU32(in, &in_dim) ||
      !ReadU32(in, &hidden) || !ReadU32(in, &layers) ||
      !ReadF64(in, &model.config.dropout) || !ReadU32(in, &heads) ||
      !ReadF64(in, &model.config.attention_slope) ||
      !ReadF64(in, &model.config.teleport) ||
      !ReadF64(in, &model.config.gcnii_alpha) ||
      !ReadF64(in, &model.config.gcnii_lambda) || !ReadU32(in, &poly) ||
      !ReadU64(in, &seed) || !ReadU32(in, &count)) {
    return Status::InvalidArgument("truncated model header in " + path);
  }
  model.config.family = static_cast<ModelFamily>(family);
  model.config.in_dim = static_cast<int>(in_dim);
  model.config.hidden_dim = static_cast<int>(hidden);
  model.config.num_layers = static_cast<int>(layers);
  model.config.heads = static_cast<int>(heads);
  model.config.poly_order = static_cast<int>(poly);
  model.config.seed = seed;
  if (count > kMaxTensorCount) {
    return Status::InvalidArgument("implausible tensor count");
  }
  model.params.reserve(count);
  for (uint32_t t = 0; t < count; ++t) {
    uint32_t rows = 0, cols = 0;
    if (!ReadU32(in, &rows) || !ReadU32(in, &cols)) {
      return Status::InvalidArgument("truncated tensor header in " + path);
    }
    if (rows > kMaxTensorDim || cols > kMaxTensorDim) {
      return Status::InvalidArgument("implausible tensor dimensions in " +
                                     path);
    }
    const uint64_t elements = static_cast<uint64_t>(rows) * cols;
    if (elements > kMaxTensorElements) {
      return Status::InvalidArgument("implausible tensor size in " + path);
    }
    // Reject a payload the file cannot possibly hold before allocating it.
    const uint64_t offset = static_cast<uint64_t>(in.tellg());
    if (offset > file_size || elements * sizeof(double) > file_size - offset) {
      return Status::InvalidArgument("truncated tensor data in " + path);
    }
    Matrix m(static_cast<int>(rows), static_cast<int>(cols));
    in.read(reinterpret_cast<char*>(m.data()),
            static_cast<std::streamsize>(m.size() * sizeof(double)));
    if (!in.good()) return Status::InvalidArgument("truncated tensor data in " +
                                                   path);
    model.params.push_back(std::move(m));
  }
  return model;
}

}  // namespace ahg
