// Reader/writer for the KDD Cup 2020 AutoGraph on-disk dataset layout
// (Table X of the paper): a directory holding
//   train_node_id.txt  one training node index per line
//   test_node_id.txt   one test node index per line
//   edge.tsv           src<TAB>dst<TAB>weight
//   feature.tsv        node_index<TAB>f0<TAB>f1<TAB>...
//   train_label.tsv    node_index<TAB>class
//   config.yml         "time_budget: <seconds>" and "n_class: <count>"
// Test-node labels are withheld (label -1) exactly as in the challenge.
#ifndef AUTOHENS_IO_AUTOGRAPH_FORMAT_H_
#define AUTOHENS_IO_AUTOGRAPH_FORMAT_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace ahg {

struct AutographDataset {
  Graph graph;  // labels set only on training nodes
  std::vector<int> train_nodes;
  std::vector<int> test_nodes;
  double time_budget_seconds = 0.0;
  bool directed = false;
};

// Serializes `graph` into `dir` (created if absent). Labels of nodes in
// `test_nodes` are withheld from train_label.tsv.
Status WriteAutographDataset(const std::string& dir, const Graph& graph,
                             const std::vector<int>& train_nodes,
                             const std::vector<int>& test_nodes,
                             double time_budget_seconds);

// Parses a dataset directory written in the layout above.
StatusOr<AutographDataset> ReadAutographDataset(const std::string& dir);

}  // namespace ahg

#endif  // AUTOHENS_IO_AUTOGRAPH_FORMAT_H_
