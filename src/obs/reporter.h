// Background thread that invokes a report callback on a fixed interval —
// the serving demo uses it to print a metrics line while the trace replays.
#ifndef AUTOHENS_OBS_REPORTER_H_
#define AUTOHENS_OBS_REPORTER_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>

namespace ahg::obs {

class PeriodicReporter {
 public:
  // Calls `report` every `interval_seconds` until destruction; the callback
  // runs on the reporter's own thread. interval_seconds <= 0 or a null
  // callback constructs an inert reporter.
  PeriodicReporter(double interval_seconds, std::function<void()> report);

  // Stops the thread; an in-progress callback finishes first.
  ~PeriodicReporter();

  PeriodicReporter(const PeriodicReporter&) = delete;
  PeriodicReporter& operator=(const PeriodicReporter&) = delete;

 private:
  void Loop(double interval_seconds);

  std::function<void()> report_;
  std::mutex mu_;
  std::condition_variable stop_cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace ahg::obs

#endif  // AUTOHENS_OBS_REPORTER_H_
