#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/logging.h"
#include "util/string_util.h"

namespace ahg::obs {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  for (size_t i = 1; i < bounds_.size(); ++i) {
    AHG_CHECK_MSG(bounds_[i - 1] < bounds_[i],
                  "histogram bounds must be strictly increasing");
  }
}

void Histogram::Observe(double value) {
  const size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

std::vector<int64_t> Histogram::BucketCounts() const {
  std::vector<int64_t> out(buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

std::vector<double> DefaultLatencyBucketsMs() {
  return {0.05, 0.1, 0.25, 0.5, 1, 2.5, 5,    10,   25,
          50,   100, 250,  500, 1000, 2500, 5000, 10000};
}

std::vector<double> DefaultFractionBuckets() {
  return {0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
          0.1,   0.2,    0.35,  0.5,  0.75,  1.0};
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(std::move(bounds));
  return slot.get();
}

namespace {

std::string BoundLabel(double bound) {
  // Render integral bounds without a trailing ".000".
  if (bound == static_cast<int64_t>(bound)) {
    return StrFormat("%lld", static_cast<long long>(bound));
  }
  return FormatFloat(bound, 3);
}

}  // namespace

std::string MetricsRegistry::ExportText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  auto row = [&out](const std::string& field, const std::string& value) {
    out << "  " << field;
    for (size_t i = field.size(); i < 34; ++i) out << ' ';
    out << value << "\n";
  };
  for (const auto& [name, counter] : counters_) {
    row(name, StrFormat("%lld", static_cast<long long>(counter->Value())));
  }
  for (const auto& [name, gauge] : gauges_) {
    row(name, FormatFloat(gauge->Value(), 3));
  }
  for (const auto& [name, histogram] : histograms_) {
    row(name + "_count",
        StrFormat("%lld", static_cast<long long>(histogram->TotalCount())));
    row(name + "_sum", FormatFloat(histogram->Sum(), 3));
    const std::vector<int64_t> counts = histogram->BucketCounts();
    for (size_t b = 0; b < counts.size(); ++b) {
      if (counts[b] == 0) continue;
      const std::string label =
          b < histogram->bounds().size()
              ? "le=" + BoundLabel(histogram->bounds()[b])
              : "le=+inf";
      row("  " + name + "{" + label + "}",
          StrFormat("%lld", static_cast<long long>(counts[b])));
    }
  }
  return out.str();
}

std::string MetricsRegistry::ExportTsv() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  for (const auto& [name, counter] : counters_) {
    out << name << "\tcounter\t" << counter->Value() << "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    out << name << "\tgauge\t" << FormatFloat(gauge->Value(), 6) << "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    const std::vector<int64_t> counts = histogram->BucketCounts();
    for (size_t b = 0; b < counts.size(); ++b) {
      const std::string label = b < histogram->bounds().size()
                                    ? BoundLabel(histogram->bounds()[b])
                                    : "+inf";
      out << name << "{le=" << label << "}\thistogram\t" << counts[b] << "\n";
    }
    out << name << "_count\thistogram\t" << histogram->TotalCount() << "\n";
    out << name << "_sum\thistogram\t" << FormatFloat(histogram->Sum(), 6)
        << "\n";
  }
  return out.str();
}

Status MetricsRegistry::WriteTsv(const std::string& path) const {
  const std::string tsv = ExportTsv();
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::IOError("cannot open metrics output " + path);
  }
  const size_t written = std::fwrite(tsv.data(), 1, tsv.size(), file);
  const bool closed = std::fclose(file) == 0;
  if (written != tsv.size() || !closed) {
    return Status::IOError("short write to metrics output " + path);
  }
  return Status::OK();
}

}  // namespace ahg::obs
