#include "obs/trace.h"

#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <sstream>

namespace ahg::obs {

std::atomic<bool> g_trace_enabled{false};

// Per-thread ring of completed spans. The owning thread appends under mu;
// the lock is uncontended except while a Drain() is copying this buffer, so
// the record path stays a few nanoseconds. The recorder's registry holds a
// shared_ptr, keeping events from exited threads alive until drained.
struct TraceRecorder::ThreadBuffer {
  std::mutex mu;
  std::vector<TraceEvent> events;  // ring once size reaches capacity
  size_t next = 0;                 // overwrite cursor when full
  int64_t overwritten = 0;
  uint32_t tid = 0;
};

struct TraceRecorder::Impl {
  std::chrono::steady_clock::time_point epoch;
  std::mutex registry_mu;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  uint32_t next_tid = 0;
};

TraceRecorder::TraceRecorder() : impl_(new Impl) {
  impl_->epoch = std::chrono::steady_clock::now();
}

TraceRecorder& TraceRecorder::Instance() {
  static TraceRecorder* recorder = new TraceRecorder();  // never destroyed
  return *recorder;
}

uint64_t TraceRecorder::NowMicros() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - impl_->epoch)
          .count());
}

TraceRecorder::ThreadBuffer* TraceRecorder::BufferForThisThread() {
  // The recorder is a process-wide singleton, so one cached buffer per
  // thread suffices; the registry keeps it alive past thread exit.
  thread_local std::shared_ptr<ThreadBuffer> tl_buffer;
  if (tl_buffer == nullptr) {
    auto buffer = std::make_shared<ThreadBuffer>();
    buffer->events.reserve(256);
    {
      std::lock_guard<std::mutex> lock(impl_->registry_mu);
      buffer->tid = impl_->next_tid++;
      impl_->buffers.push_back(buffer);
    }
    tl_buffer = std::move(buffer);
  }
  return tl_buffer.get();
}

void TraceRecorder::Emit(const char* name, uint64_t start_us, uint64_t dur_us,
                         int64_t arg) {
  ThreadBuffer* buffer = BufferForThisThread();
  TraceEvent event;
  event.name = name;
  event.start_us = start_us;
  event.dur_us = dur_us;
  event.arg = arg;
  std::lock_guard<std::mutex> lock(buffer->mu);
  event.tid = buffer->tid;
  if (buffer->events.size() < kThreadBufferCapacity) {
    buffer->events.push_back(event);
  } else {
    buffer->events[buffer->next] = event;
    buffer->next = (buffer->next + 1) % kThreadBufferCapacity;
    ++buffer->overwritten;
  }
}

std::vector<TraceEvent> TraceRecorder::Drain() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(impl_->registry_mu);
    buffers = impl_->buffers;
  }
  std::vector<TraceEvent> out;
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    // Oldest-first: [next, end) wrapped before [0, next).
    for (size_t i = buffer->next; i < buffer->events.size(); ++i) {
      out.push_back(buffer->events[i]);
    }
    for (size_t i = 0; i < buffer->next; ++i) {
      out.push_back(buffer->events[i]);
    }
    buffer->events.clear();
    buffer->next = 0;
    buffer->overwritten = 0;  // dropped() reports per-drain-interval counts
  }
  return out;
}

int64_t TraceRecorder::dropped() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(impl_->registry_mu);
    buffers = impl_->buffers;
  }
  int64_t total = 0;
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    total += buffer->overwritten;
  }
  return total;
}

std::string TraceRecorder::ChromeTraceJson() {
  std::vector<TraceEvent> events = Drain();
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (i > 0) out << ",";
    out << "\n{\"name\":\"" << e.name << "\",\"cat\":\"ahg\",\"ph\":\"X\""
        << ",\"ts\":" << e.start_us << ",\"dur\":" << e.dur_us
        << ",\"pid\":1,\"tid\":" << e.tid;
    if (e.arg >= 0) out << ",\"args\":{\"v\":" << e.arg << "}";
    out << "}";
  }
  out << "\n]\n";
  return out.str();
}

Status TraceRecorder::WriteChromeTrace(const std::string& path) {
  const std::string json = ChromeTraceJson();
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::IOError("cannot open trace output " + path);
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), file);
  const bool closed = std::fclose(file) == 0;
  if (written != json.size() || !closed) {
    return Status::IOError("short write to trace output " + path);
  }
  return Status::OK();
}

void TraceSpan::Begin(const char* name, int64_t arg) {
  active_ = true;
  name_ = name;
  arg_ = arg;
  start_us_ = TraceRecorder::Instance().NowMicros();
}

void TraceSpan::End() {
  TraceRecorder& recorder = TraceRecorder::Instance();
  recorder.Emit(name_, start_us_, recorder.NowMicros() - start_us_, arg_);
}

}  // namespace ahg::obs
