#include "obs/reporter.h"

#include <chrono>

namespace ahg::obs {

PeriodicReporter::PeriodicReporter(double interval_seconds,
                                   std::function<void()> report)
    : report_(std::move(report)) {
  if (interval_seconds > 0.0 && report_) {
    thread_ = std::thread(&PeriodicReporter::Loop, this, interval_seconds);
  }
}

PeriodicReporter::~PeriodicReporter() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void PeriodicReporter::Loop(double interval_seconds) {
  const auto interval =
      std::chrono::duration<double>(interval_seconds);
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    if (stop_cv_.wait_for(lock, interval, [this] { return stop_; })) break;
    lock.unlock();
    report_();
    lock.lock();
  }
}

}  // namespace ahg::obs
