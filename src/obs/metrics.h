// Named counters, gauges and fixed-bucket histograms with a text/TSV
// exporter — the metrics half of the observability layer. Generalizes what
// ServeStats did for the serving stack: any component registers a metric
// once (registration takes a lock; the returned handle is stable for the
// registry's lifetime) and then updates it with relaxed atomics, so the
// record path is lock-free and safe from any thread.
//
// Naming convention: dotted lowercase paths, subsystem first —
// "serve.completed", "serve.latency_ms", "tensor.spmm_calls".
#ifndef AUTOHENS_OBS_METRICS_H_
#define AUTOHENS_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"

namespace ahg::obs {

// Monotonically increasing 64-bit count.
class Counter {
 public:
  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Last-write-wins scalar (e.g. bytes currently pinned by a cache).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Fixed-bucket histogram. `bounds` are strictly increasing upper edges with
// "less-or-equal" semantics (a value lands in the first bucket whose bound
// is >= value); values above the last bound land in an implicit +inf
// bucket, so BucketCounts() has bounds.size() + 1 entries.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  std::vector<int64_t> BucketCounts() const;
  int64_t TotalCount() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  const std::vector<double> bounds_;
  std::vector<std::atomic<int64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// Default latency bucket edges in milliseconds (sub-ms to 10s, roughly
// geometric), shared by the serve histograms.
std::vector<double> DefaultLatencyBucketsMs();

// Bucket edges for ratio-valued observations in [0, 1] (e.g. the dirty-set
// fraction per dynamic-graph refresh batch).
std::vector<double> DefaultFractionBuckets();

class MetricsRegistry {
 public:
  // Process-wide registry used by all built-in instrumentation. Tests may
  // construct private registries.
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Find-or-create by name. A histogram's bounds are fixed by the first
  // registration; later callers get the existing instance.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> bounds);

  // Aligned human-readable dump (one metric per line, histograms as
  // bucket rows), for periodic reporters and demo output.
  std::string ExportText() const;

  // Machine-readable TSV: `name<TAB>type<TAB>value`. Histograms expand to
  // one `name{le=BOUND}` row per bucket plus `_count` / `_sum` rows.
  std::string ExportTsv() const;
  Status WriteTsv(const std::string& path) const;

 private:
  mutable std::mutex mu_;  // guards the maps, not the metric values
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace ahg::obs

#endif  // AUTOHENS_OBS_METRICS_H_
