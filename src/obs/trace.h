// Low-overhead tracing for the whole stack: RAII TraceSpan scopes recorded
// into per-thread ring buffers and exported as chrome://tracing JSON.
//
// Design (see DESIGN.md "Observability"):
//  - A process-global enabled flag, read with one relaxed atomic load. A
//    TraceSpan constructed while tracing is disabled does nothing else, so
//    instrumented hot kernels (SpMM/GEMM) stay at their current speed; the
//    AHG_OBS_FORCE_OFF compile-time switch additionally turns the macros
//    into nothing for builds that must not carry even the branch.
//  - Each thread appends completed spans to its own fixed-capacity ring
//    buffer (single short uncontended lock per event; no global lock on the
//    record path). When a ring wraps, the oldest events are overwritten and
//    counted as dropped — recording never blocks on a slow reader.
//  - Drain()/WriteChromeTrace() collect every thread's buffer on demand.
//    Buffers outlive their threads (the recorder keeps them alive), so
//    short-lived pool workers lose no events.
//
// Span names must be string literals (or otherwise outlive the recorder);
// events store the pointer, not a copy.
#ifndef AUTOHENS_OBS_TRACE_H_
#define AUTOHENS_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace ahg::obs {

// Internal; read through TracingEnabled().
extern std::atomic<bool> g_trace_enabled;

// One relaxed load: the only cost instrumentation pays when tracing is off.
inline bool TracingEnabled() {
  return g_trace_enabled.load(std::memory_order_relaxed);
}

// A completed span. Times are microseconds since the recorder's epoch
// (construction of the process-wide instance).
struct TraceEvent {
  const char* name = nullptr;
  uint64_t start_us = 0;
  uint64_t dur_us = 0;
  uint32_t tid = 0;   // dense thread id, assigned on a thread's first event
  int64_t arg = -1;   // optional numeric payload; -1 = none
};

class TraceRecorder {
 public:
  // Events each thread's ring retains before overwriting the oldest.
  static constexpr size_t kThreadBufferCapacity = 1 << 16;

  static TraceRecorder& Instance();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  void Enable() { g_trace_enabled.store(true, std::memory_order_relaxed); }
  void Disable() { g_trace_enabled.store(false, std::memory_order_relaxed); }

  // Microseconds since the recorder epoch (steady clock).
  uint64_t NowMicros() const;

  // Appends a completed span to the calling thread's ring. Used by
  // TraceSpan, and directly for spans whose start predates the caller
  // (e.g. a request's queue wait, reconstructed at batch-execution time).
  void Emit(const char* name, uint64_t start_us, uint64_t dur_us,
            int64_t arg = -1);

  // Removes and returns every buffered event, oldest-first per thread.
  std::vector<TraceEvent> Drain();

  // Events overwritten by ring wrap-around since the last Drain().
  int64_t dropped() const;

  // Drains into a chrome://tracing "trace event" JSON array (load via
  // chrome://tracing or https://ui.perfetto.dev).
  std::string ChromeTraceJson();
  Status WriteChromeTrace(const std::string& path);

 private:
  TraceRecorder();
  struct ThreadBuffer;
  ThreadBuffer* BufferForThisThread();

  struct Impl;
  Impl* const impl_;
};

// Enabled-path helpers live out of line (and cold) so the code inlined into
// an instrumented function is only the relaxed load and an untaken branch —
// keeping register pressure and frame layout in hot kernels unperturbed.
#if defined(__GNUC__)
#define AHG_OBS_UNLIKELY(x) __builtin_expect(!!(x), 0)
#define AHG_OBS_COLD __attribute__((noinline, cold))
#else
#define AHG_OBS_UNLIKELY(x) (x)
#define AHG_OBS_COLD
#endif

// RAII scope: records [construction, destruction) as one span when tracing
// is enabled at construction time; otherwise a no-op.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, int64_t arg = -1) {
    if (AHG_OBS_UNLIKELY(TracingEnabled())) Begin(name, arg);
  }

  ~TraceSpan() {
    if (AHG_OBS_UNLIKELY(active_)) End();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  AHG_OBS_COLD void Begin(const char* name, int64_t arg);
  AHG_OBS_COLD void End();

  bool active_ = false;
  const char* name_ = nullptr;
  int64_t arg_ = -1;
  uint64_t start_us_ = 0;
};

// Instrumentation macros. AHG_OBS_FORCE_OFF removes spans at compile time;
// otherwise the per-call cost with tracing disabled is one relaxed atomic
// load and an untaken branch.
#if defined(AHG_OBS_FORCE_OFF)
#define AHG_TRACE_SPAN(name) \
  do {                       \
  } while (false)
#define AHG_TRACE_SPAN_ARG(name, arg) \
  do {                                \
  } while (false)
#else
#define AHG_OBS_CONCAT_INNER(a, b) a##b
#define AHG_OBS_CONCAT(a, b) AHG_OBS_CONCAT_INNER(a, b)
#define AHG_TRACE_SPAN(name) \
  ::ahg::obs::TraceSpan AHG_OBS_CONCAT(ahg_trace_span_, __LINE__)(name)
#define AHG_TRACE_SPAN_ARG(name, arg) \
  ::ahg::obs::TraceSpan AHG_OBS_CONCAT(ahg_trace_span_, __LINE__)(name, (arg))
#endif

}  // namespace ahg::obs

#endif  // AUTOHENS_OBS_TRACE_H_
