#include "jobs/job_store.h"

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace ahg::jobs {
namespace {

Status EnsureDir(const std::string& dir) {
  if (mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IOError("cannot create " + dir + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

bool FileExists(const std::string& path) {
  struct stat st;
  return stat(path.c_str(), &st) == 0;
}

// One line per field keeps the file greppable and the parser trivial.
constexpr char kStateHeader[] = "ahg-job-state\t1";

}  // namespace

const char* JobStatusName(JobStatus status) {
  switch (status) {
    case JobStatus::kQueued:
      return "queued";
    case JobStatus::kRunning:
      return "running";
    case JobStatus::kCheckpointed:
      return "checkpointed";
    case JobStatus::kPublished:
      return "published";
    case JobStatus::kFailed:
      return "failed";
    case JobStatus::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

std::string JobStore::JobDir(const std::string& job_id) const {
  return root_ + "/" + job_id;
}

std::string JobStore::EnsembleDir(const std::string& job_id) const {
  return JobDir(job_id) + "/ensemble";
}

std::string JobStore::StatePath(const std::string& job_id) const {
  return JobDir(job_id) + "/state.tsv";
}

Status JobStore::Init() const { return EnsureDir(root_); }

Status JobStore::CreateJob(const SearchJobSpec& spec) const {
  if (spec.job_id.empty()) {
    return Status::InvalidArgument("job id must be non-empty");
  }
  if (spec.job_id.find('/') != std::string::npos ||
      spec.job_id.find("..") != std::string::npos) {
    return Status::InvalidArgument("job id must not contain '/' or '..'");
  }
  Status s = Init();
  if (!s.ok()) return s;
  const std::string dir = JobDir(spec.job_id);
  if (FileExists(dir + "/spec.bin")) {
    return Status::InvalidArgument("job " + spec.job_id + " already exists");
  }
  s = EnsureDir(dir);
  if (!s.ok()) return s;
  s = SaveSpec(dir + "/spec.bin", spec);
  if (!s.ok()) return s;
  return SaveState(spec.job_id, JobState{});
}

StatusOr<SearchJobSpec> JobStore::LoadJobSpec(const std::string& job_id) const {
  return LoadSpec(JobDir(job_id) + "/spec.bin");
}

StatusOr<JobState> JobStore::LoadState(const std::string& job_id) const {
  std::ifstream in(StatePath(job_id));
  if (!in.is_open()) {
    return Status::NotFound("no state for job " + job_id);
  }
  std::string line;
  if (!std::getline(in, line) || line != kStateHeader) {
    return Status::InvalidArgument("bad state header for job " + job_id);
  }
  JobState state;
  while (std::getline(in, line)) {
    const auto parts = StrSplit(line, '\t');
    if (parts.size() < 2) continue;
    if (parts[0] == "status") {
      bool known = false;
      for (int code = 0; code <= static_cast<int>(JobStatus::kCancelled);
           ++code) {
        if (parts[1] == JobStatusName(static_cast<JobStatus>(code))) {
          state.status = static_cast<JobStatus>(code);
          known = true;
          break;
        }
      }
      if (!known) {
        return Status::InvalidArgument("unknown job status " + parts[1]);
      }
    } else if (parts[0] == "attempts") {
      state.attempts = std::stoi(parts[1]);
    } else if (parts[0] == "checkpoints_written") {
      state.checkpoints_written = std::stoll(parts[1]);
    } else if (parts[0] == "published_version") {
      state.published_version = std::stoi(parts[1]);
    } else if (parts[0] == "message") {
      state.message = parts[1];
    }
  }
  return state;
}

Status JobStore::SaveState(const std::string& job_id,
                           const JobState& state) const {
  const std::string path = StatePath(job_id);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out.is_open()) {
      return Status::IOError("cannot write state for job " + job_id);
    }
    std::string message = state.message;
    std::replace(message.begin(), message.end(), '\t', ' ');
    std::replace(message.begin(), message.end(), '\n', ' ');
    out << kStateHeader << "\n"
        << "status\t" << JobStatusName(state.status) << "\n"
        << "attempts\t" << state.attempts << "\n"
        << "checkpoints_written\t" << state.checkpoints_written << "\n"
        << "published_version\t" << state.published_version << "\n"
        << "message\t" << message << "\n";
    if (!out.good()) return Status::IOError("short state write for " + job_id);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IOError("cannot rename state for job " + job_id);
  }
  return Status::OK();
}

Status JobStore::SaveJobCheckpoint(
    const std::string& job_id, const SearchJobCheckpoint& checkpoint) const {
  return SaveCheckpoint(JobDir(job_id) + "/checkpoint.bin", checkpoint);
}

StatusOr<SearchJobCheckpoint> JobStore::LoadJobCheckpoint(
    const std::string& job_id) const {
  return LoadCheckpoint(JobDir(job_id) + "/checkpoint.bin");
}

bool JobStore::HasCheckpoint(const std::string& job_id) const {
  return FileExists(JobDir(job_id) + "/checkpoint.bin");
}

Status JobStore::CreateTaskJob(const TaskJobSpec& spec) const {
  if (spec.job_id.empty()) {
    return Status::InvalidArgument("job id must be non-empty");
  }
  if (spec.job_id.find('/') != std::string::npos ||
      spec.job_id.find("..") != std::string::npos) {
    return Status::InvalidArgument("job id must not contain '/' or '..'");
  }
  Status s = Init();
  if (!s.ok()) return s;
  const std::string dir = JobDir(spec.job_id);
  if (FileExists(dir + "/task_spec.bin") || FileExists(dir + "/spec.bin")) {
    return Status::InvalidArgument("job " + spec.job_id + " already exists");
  }
  s = EnsureDir(dir);
  if (!s.ok()) return s;
  s = SaveTaskSpec(dir + "/task_spec.bin", spec);
  if (!s.ok()) return s;
  return SaveState(spec.job_id, JobState{});
}

StatusOr<TaskJobSpec> JobStore::LoadTaskJobSpec(
    const std::string& job_id) const {
  return LoadTaskSpec(JobDir(job_id) + "/task_spec.bin");
}

Status JobStore::SaveTaskJobCheckpoint(
    const std::string& job_id, const TaskJobCheckpoint& checkpoint) const {
  return SaveTaskCheckpoint(JobDir(job_id) + "/task_checkpoint.bin",
                            checkpoint);
}

StatusOr<TaskJobCheckpoint> JobStore::LoadTaskJobCheckpoint(
    const std::string& job_id) const {
  return LoadTaskCheckpoint(JobDir(job_id) + "/task_checkpoint.bin");
}

bool JobStore::HasTaskCheckpoint(const std::string& job_id) const {
  return FileExists(JobDir(job_id) + "/task_checkpoint.bin");
}

std::string JobStore::WinnerPath(const std::string& job_id) const {
  return JobDir(job_id) + "/winner.ahgm";
}

std::vector<std::string> JobStore::ListJobs() const {
  std::vector<std::string> jobs;
  DIR* dir = opendir(root_.c_str());
  if (dir == nullptr) return jobs;
  while (dirent* entry = readdir(dir)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    if (FileExists(root_ + "/" + name + "/spec.bin") ||
        FileExists(root_ + "/" + name + "/task_spec.bin")) {
      jobs.push_back(name);
    }
  }
  closedir(dir);
  std::sort(jobs.begin(), jobs.end());
  return jobs;
}

StatusOr<std::vector<std::string>> JobStore::RecoverInterrupted() const {
  std::vector<std::string> recovered;
  for (const std::string& job_id : ListJobs()) {
    auto state = LoadState(job_id);
    if (!state.ok()) return state.status();
    if (state.value().status != JobStatus::kRunning) continue;
    JobState next = state.value();
    next.status = JobStatus::kCheckpointed;
    next.message = "recovered: worker died mid-run";
    Status s = SaveState(job_id, next);
    if (!s.ok()) return s;
    recovered.push_back(job_id);
  }
  return recovered;
}

}  // namespace ahg::jobs
